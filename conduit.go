// Package conduit is the public API of the Conduit reproduction: a
// programmer-transparent near-data-processing framework for SSDs
// (Nadig et al., HPCA 2026).
//
// The workflow mirrors the paper's two halves:
//
//  1. Compile-time preprocessing: express the application as loop nests
//     over arrays (Source), and Compile auto-vectorizes it into
//     page-aligned SIMD instructions with embedded metadata.
//  2. Runtime offloading: a System deploys the binary to a simulated
//     Conduit-capable SSD over the NVMe firmware-update path and executes
//     it under an offloading policy — Conduit's holistic cost function or
//     any of the paper's baselines — returning timing, energy, and
//     per-instruction offloading decisions.
//
// A minimal end-to-end use:
//
//	sys := conduit.NewSystem(conduit.DefaultConfig())
//	res, err := sys.Run(src, "Conduit")
//
// The experiments in cmd/experiments and bench_test.go regenerate every
// table and figure of the paper's evaluation through this API.
//
// # Reuse and concurrency contract
//
// A RunResult is an immutable value snapshot: its latency reservoir,
// decision trace, and counters are deep copies taken at completion, so
// later activity on any device can never mutate a result already handed
// out.
//
// A simulated drive's loaded data image is consumed by execution: running
// a program mutates pages, calendars, and coherence state, so each
// ssd.Device executes at most one Run (a second Run fails fast). To
// execute many policies over one workload without paying the full NVMe
// deploy path per run, use Deploy: it performs the deploy once and the
// returned Deployment restores a pristine post-deploy device in O(state)
// per run via a deep clone.
//
// System, Compiled, and Deployment are safe for concurrent use by
// multiple goroutines; every run executes on its own cloned device, and
// policy instances are constructed per run. An ssd.Device itself is
// single-goroutine — never share one across goroutines. The
// Experiments.RunGrid sweep engine builds on this contract to execute a
// workload x policy grid across a worker pool with results byte-identical
// to the serial path.
//
// # Serving
//
// Above the one-shot API sits a request-serving layer for sustained
// traffic: a Server registers applications (compile + deploy once each),
// attaches a DevicePool of pre-forked clones per deployment so the
// serving hot path never pays the copy inline, and dispatches concurrent
// multi-tenant requests through the internal/serve engine — admission
// queue, bounded concurrency, optional batching of identical in-flight
// requests, per-tenant latency/energy accounting, and graceful drain.
// Because every run is a deterministic function of (workload, policy),
// served responses are byte-identical to a serial loop over the same
// requests.
//
// Admission is two-mode: Server.Do is closed-loop (blocks for queue
// space, then the response), Server.Submit is open-loop (never blocks —
// a full queue sheds with ErrOverloaded, and a request whose Deadline
// expires while queued is dropped with ErrDeadlineExceeded before it can
// consume a pooled fork). Per-tenant wall-clock latency and SLO
// attainment are tracked in bounded, exactly-mergeable histograms
// (LatencyHistogram). cmd/conduit-serve wraps both modes in
// deterministic load generators — closed-loop clients or open-loop
// Poisson/burst/diurnal arrival schedules (internal/loadgen) — with
// JSONL trace recording and time-scaled replay; Experiments.LatencyCurve
// sweeps offered load into throughput-latency/goodput curves.
//
// # Scale-out
//
// A Cluster (System.DeployCluster, Server.RegisterSharded) shards a
// workload's arrays row-block-wise across N independent simulated
// drives — broadcast arrays replicate per the workload's shardability
// metadata — deploying one compiled binary per shard through the same
// Deployment machinery. Run scatters a request into concurrent
// per-shard sub-runs on pooled forks and gathers the partials through a
// deterministic merge (max-of-shards for the parallel phase, shard-order
// sums and unions, plus a modeled host-side reduction for reduce-shaped
// kernels). A 1-shard cluster run is byte-identical to Deployment.Run,
// and N-shard concurrent execution is byte-identical to serial
// shard-by-shard execution (Cluster.RunSerial) — both enforced by tests.
package conduit

import (
	"fmt"
	"strings"
	"sync"

	"conduit/internal/compiler"
	"conduit/internal/config"
	"conduit/internal/host"
	"conduit/internal/isa"
	"conduit/internal/nvme"
	"conduit/internal/offload"
	"conduit/internal/sim"
	"conduit/internal/ssd"
	"conduit/internal/stats"
	"conduit/internal/trace"
)

// Re-exported building blocks for constructing applications.
type (
	// Config is the simulated system configuration (Table 2).
	Config = config.Config
	// Source is an application: arrays plus loop nests.
	Source = compiler.Source
	// Stmt is a top-level statement (Loop or ScalarWork).
	Stmt = compiler.Stmt
	// Array declares application data.
	Array = compiler.Array
	// Loop is an affine loop nest over lanes.
	Loop = compiler.Loop
	// Assign is one loop-body statement.
	Assign = compiler.Assign
	// ScalarWork is an inherently sequential control region.
	ScalarWork = compiler.ScalarWork
	// Expr is a loop-body expression.
	Expr = compiler.Expr
	// Ref reads an array at the loop index plus an offset.
	Ref = compiler.Ref
	// Lit is a broadcast literal.
	Lit = compiler.Lit
	// Bin is a binary operation.
	Bin = compiler.Bin
	// Un is a unary operation.
	Un = compiler.Un
	// Cond is lanewise predication.
	Cond = compiler.Cond
	// Compiled is a vectorized program with metadata.
	Compiled = compiler.Compiled
	// Decision is one runtime offloading decision.
	Decision = ssd.Decision
	// Reservoir holds latency samples with exact percentiles.
	Reservoir = stats.Reservoir
	// Counters is a named set of substrate activity tallies.
	Counters = stats.Counters
	// Table renders experiment output.
	Table = stats.Table
	// Time is simulated time in nanoseconds.
	Time = sim.Time
)

// Source-level operations.
const (
	OpAdd = compiler.OpAdd
	OpSub = compiler.OpSub
	OpMul = compiler.OpMul
	OpDiv = compiler.OpDiv
	OpAnd = compiler.OpAnd
	OpOr  = compiler.OpOr
	OpXor = compiler.OpXor
	OpNot = compiler.OpNot
	OpShl = compiler.OpShl
	OpShr = compiler.OpShr
	OpLT  = compiler.OpLT
	OpGT  = compiler.OpGT
	OpEQ  = compiler.OpEQ
	OpMin = compiler.OpMin
	OpMax = compiler.OpMax
)

// DefaultConfig returns the evaluated Table-2 configuration.
func DefaultConfig() Config { return config.Default() }

// Compile runs Conduit's compile-time preprocessing for the given device
// configuration.
func Compile(src *Source, cfg *Config) (*Compiled, error) {
	return compiler.Compile(src, cfg.SSD.PageSize)
}

// policyEntry couples a policy name with its in-SSD implementation
// constructor; device is nil for the host and ideal runners, which the
// Run switches handle directly. policyTable is the single source of
// policy-name truth: Policies, AblationPolicies, KnownPolicy,
// devicePolicy, and errUnknownPolicy all derive from it, so a policy
// added here is advertised, validated, and constructible everywhere at
// once.
type policyEntry struct {
	name     string
	ablation bool
	device   func() offload.Policy
}

var policyTable = []policyEntry{
	// Main lineup, in the order the paper's figures present it.
	{name: "CPU"},
	{name: "GPU"},
	{name: "ISP", device: func() offload.Policy { return offload.ISPOnly{} }},
	{name: "PuD-SSD", device: func() offload.Policy { return offload.PuDSSD{} }},
	{name: "Flash-Cosmos", device: func() offload.Policy { return offload.FlashCosmos{} }},
	{name: "Ares-Flash", device: func() offload.Policy { return offload.AresFlash{} }},
	{name: "BW-Offloading", device: func() offload.Policy { return offload.BWOffloading{} }},
	{name: "DM-Offloading", device: func() offload.Policy { return offload.DMOffloading{} }},
	{name: "Conduit", device: func() offload.Policy { return offload.Conduit{} }},
	{name: "Ideal"},
	// Ablations and combinations: the naive IFP+ISP of the §3.1 case
	// study, and Conduit with one cost-function term removed (the
	// AblationCostFeatures experiment).
	{name: "IFP+ISP", ablation: true, device: func() offload.Policy { return &offload.NaiveCombo{} }},
	{name: "Conduit-noqueue", ablation: true, device: func() offload.Policy { return offload.Ablated{DropQueue: true} }},
	{name: "Conduit-nodep", ablation: true, device: func() offload.Policy { return offload.Ablated{DropDep: true} }},
	{name: "Conduit-nomove", ablation: true, device: func() offload.Policy { return offload.Ablated{DropMove: true} }},
}

func policyNames(ablation bool) []string {
	var out []string
	for _, e := range policyTable {
		if e.ablation == ablation {
			out = append(out, e.name)
		}
	}
	return out
}

// Policies lists every evaluated execution policy, in the order the
// paper's figures present them. The ablation and combination policies the
// evaluation additionally exercises are listed by AblationPolicies; both
// sets are accepted wherever a policy name is taken.
func Policies() []string { return policyNames(false) }

// AblationPolicies lists the ablation and combination policies the
// evaluation uses beyond the main lineup.
func AblationPolicies() []string { return policyNames(true) }

// KnownPolicy reports whether name is accepted by the Run methods —
// a member of Policies or AblationPolicies.
func KnownPolicy(name string) bool {
	for _, e := range policyTable {
		if e.name == name {
			return true
		}
	}
	return false
}

// errUnknownPolicy is the uniform rejection for a policy name neither
// Policies nor AblationPolicies knows.
func errUnknownPolicy(name string) error {
	return fmt.Errorf("conduit: unknown policy %q (valid: %s; ablations: %s)",
		name, strings.Join(Policies(), ", "), strings.Join(AblationPolicies(), ", "))
}

// devicePolicy returns a fresh in-SSD policy instance by name, or nil for
// host/ideal runners and unknown names.
func devicePolicy(name string) offload.Policy {
	for _, e := range policyTable {
		if e.name == name && e.device != nil {
			return e.device()
		}
	}
	return nil
}

// RunResult is the unified outcome of executing a workload under one
// policy (host, in-SSD, or ideal).
type RunResult struct {
	Policy         string
	Elapsed        Time
	ComputeEnergy  float64 // joules
	MovementEnergy float64 // joules
	InstLatencies  *Reservoir
	// Decisions is the offloading trace; nil for host executions.
	Decisions []Decision
	// OverheadTime is the runtime offloader overhead (§4.5); zero for
	// host and ideal executions.
	OverheadTime Time
	// Counters holds substrate activity (senses, bbops, migrations ...);
	// nil for host executions. Cluster runs report the shard-order sum.
	Counters *Counters
	// Device exposes the drive after an in-SSD run for inspection; nil
	// otherwise — in particular nil on served and cluster-merged results,
	// which have no single drive to expose.
	Device *ssd.Device
}

// TotalEnergy is compute plus movement energy in joules.
func (r *RunResult) TotalEnergy() float64 { return r.ComputeEnergy + r.MovementEnergy }

// System compiles, deploys, and executes applications on a simulated
// Conduit-capable SSD and on the host baselines.
type System struct {
	cfg Config
}

// NewSystem returns a System for cfg. The system runs in timing-only
// mode: the simulated data plane carries no payloads, which makes runs
// far faster while producing byte-identical Results (every modeled
// latency is data-independent). Page contents are not materialized, so
// Device.PageBytes and the NVMe payload-read path report an error; use
// NewReferenceSystem when the computed bytes themselves are needed.
func NewSystem(cfg Config) *System {
	cfg.SSD.TimingOnly = true
	return &System{cfg: cfg}
}

// NewReferenceSystem returns a System that executes the full functional
// data plane: every kernel computes real page payloads, which can be
// read back through Device.PageBytes or the NVMe read path. It is the
// oracle against which the timing-only fast path is differentially
// tested, and is typically several times slower.
func NewReferenceSystem(cfg Config) *System {
	cfg.SSD.TimingOnly = false
	return &System{cfg: cfg}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Run compiles src and executes it under the named policy (see Policies).
func (s *System) Run(src *Source, policy string) (*RunResult, error) {
	c, err := Compile(src, &s.cfg)
	if err != nil {
		return nil, err
	}
	return s.RunCompiled(c, policy)
}

// RunCompiled executes an already-compiled program under the named policy.
// Each call deploys onto a fresh simulated drive through the full NVMe
// path, since execution consumes the loaded data image. Sweeps over many
// policies should Deploy once and run on the Deployment instead.
func (s *System) RunCompiled(c *Compiled, policy string) (*RunResult, error) {
	switch policy {
	case "CPU", "GPU":
		return s.runHost(c, policy)
	case "Ideal":
		dev, err := s.deploy(c)
		if err != nil {
			return nil, err
		}
		return runIdealOn(dev)
	default:
		if devicePolicy(policy) == nil {
			return nil, errUnknownPolicy(policy)
		}
		dev, err := s.deploy(c)
		if err != nil {
			return nil, err
		}
		return runPolicyOn(dev, policy)
	}
}

// runHost executes c on one of the OSP baselines (no drive involved).
func (s *System) runHost(c *Compiled, policy string) (*RunResult, error) {
	kind := host.CPU
	if policy == "GPU" {
		kind = host.GPU
	}
	res, _, err := host.New(&s.cfg, kind).Run(c.Prog, c.Inputs)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Policy:         policy,
		Elapsed:        res.Elapsed,
		ComputeEnergy:  res.ComputeEnergy,
		MovementEnergy: res.MovementEnergy,
		InstLatencies:  res.InstLatencies,
	}, nil
}

// runIdealOn executes the unrealizable Ideal policy on a deployed device.
func runIdealOn(dev *ssd.Device) (*RunResult, error) {
	res, _, err := dev.RunIdeal()
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Policy:         "Ideal",
		Elapsed:        res.Elapsed,
		ComputeEnergy:  res.ComputeEnergy,
		MovementEnergy: res.MovementEnergy,
		InstLatencies:  res.InstLatencies,
		Decisions:      res.Decisions,
		Counters:       res.Counters,
		Device:         dev,
	}, nil
}

// runPolicyOn executes the named in-SSD policy on a deployed device,
// consuming its loaded image. A fresh policy instance is constructed per
// call (some baselines, e.g. IFP+ISP, carry per-run state).
func runPolicyOn(dev *ssd.Device, policy string) (*RunResult, error) {
	pol := devicePolicy(policy)
	if pol == nil {
		return nil, errUnknownPolicy(policy)
	}
	dev.EnterComputationMode()
	res, err := dev.Run(pol)
	dev.ExitComputationMode()
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Policy:         policy,
		Elapsed:        res.Elapsed,
		ComputeEnergy:  res.ComputeEnergy,
		MovementEnergy: res.MovementEnergy,
		InstLatencies:  res.InstLatencies,
		Decisions:      res.Decisions,
		OverheadTime:   res.OverheadTime,
		Counters:       res.Counters,
		Device:         dev,
	}, nil
}

// A Deployment is a compiled program deployed onto a simulated drive,
// reusable across runs. The NVMe deploy (per-page I/O writes, chunked
// fw-download, fw-commit) executes exactly once, in Deploy; each Run then
// restores the post-deploy device in O(state) by deep-cloning the pristine
// master instead of re-driving the NVMe path. Runs on one Deployment are
// independent and safe to issue from multiple goroutines concurrently;
// results are byte-identical to deploying freshly per run.
type Deployment struct {
	sys    *System
	c      *Compiled
	master *ssd.Device // pristine post-deploy image; never executed

	poolMu sync.Mutex
	pool   *DevicePool // optional prefork pool (see Prefork); nil = clone inline
}

// Deploy compiles nothing and runs nothing: it installs the already
// compiled program on a fresh drive over the NVMe path and captures the
// result as a reusable Deployment.
func (s *System) Deploy(c *Compiled) (*Deployment, error) {
	dev, err := s.deploy(c)
	if err != nil {
		return nil, err
	}
	// The master is cloned per Run and never executed itself: freeze its
	// large tables so each fork aliases them copy-on-write.
	dev.Freeze()
	return &Deployment{sys: s, c: c, master: dev}, nil
}

// Compiled returns the deployed program.
func (d *Deployment) Compiled() *Compiled { return d.c }

// Fork returns a fresh device restored to the post-deploy state. The
// caller owns the returned device exclusively; the pristine master is
// never handed out. With a prefork pool attached (Prefork), the fork is
// served from the pool's buffer of ready clones; on an empty buffer it
// is cloned inline. Either way the device is byte-identical. Once the
// pool has been closed (the deployment was drained) Fork fails with
// ErrPoolClosed instead of silently cloning.
func (d *Deployment) Fork() (*ssd.Device, error) { return d.fork(nil) }

// fork serves a Fork and, when a span rides along, reports the pool
// disposition on it. Hit vs. miss depends on the race against the
// background refiller, so the event is confined to the operational
// (wall-clocked) timeline — a deterministic trace never records it.
func (d *Deployment) fork(sp *trace.Span) (*ssd.Device, error) {
	d.poolMu.Lock()
	p := d.pool
	d.poolMu.Unlock()
	if p == nil {
		return d.master.Clone(), nil
	}
	dev, hit, err := p.get()
	if err != nil {
		return nil, err
	}
	if sp.WallClocked() {
		name := "pool_miss"
		if hit {
			name = "pool_hit"
		}
		sp.Event(name, 0)
	}
	return dev, nil
}

// Run executes the deployed program under the named policy on a restored
// post-deploy device (host baselines need no device and use the compiled
// program directly). Safe for concurrent use.
func (d *Deployment) Run(policy string) (*RunResult, error) { return d.run(policy, nil) }

// run is Run with a tracing seam threaded through the fork path.
func (d *Deployment) run(policy string, sp *trace.Span) (*RunResult, error) {
	switch policy {
	case "CPU", "GPU":
		return d.sys.runHost(d.c, policy)
	case "Ideal":
		dev, err := d.fork(sp)
		if err != nil {
			return nil, err
		}
		return runIdealOn(dev)
	default:
		// Reject unknown policies before paying for the device clone.
		if devicePolicy(policy) == nil {
			return nil, errUnknownPolicy(policy)
		}
		dev, err := d.fork(sp)
		if err != nil {
			return nil, err
		}
		return runPolicyOn(dev, policy)
	}
}

// runTraced implements the serving layer's traced-run seam: the
// device execution becomes a "device.run" child span whose simulated
// extent is the run's elapsed simulated time, and pool activity lands
// on it as events.
func (d *Deployment) runTraced(policy string, sp *trace.Span) (*RunResult, error) {
	if sp == nil {
		return d.run(policy, nil)
	}
	child := sp.Child("device.run", "", 0)
	child.SetAttr("policy", policy)
	r, err := d.run(policy, child)
	if err != nil {
		child.End(0)
		return nil, err
	}
	child.End(int64(r.Elapsed))
	return r, nil
}

// deploy provisions a fresh drive and installs the program through the
// NVMe path: stage inputs via I/O writes, transfer the binary with
// fw-download, and activate it with the flagged fw-commit (§4.4).
func (s *System) deploy(c *Compiled) (*ssd.Device, error) {
	cfg := s.cfg
	dev := ssd.New(&cfg)
	ctrl := nvme.NewController(dev)
	for p, data := range c.Inputs {
		if err := ctrl.WritePage(p, data); err != nil {
			return nil, err
		}
	}
	img, err := nvme.MarshalProgram(c.Prog)
	if err != nil {
		return nil, err
	}
	const chunk = 64 << 10
	for off := 0; off < len(img); off += chunk {
		end := off + chunk
		if end > len(img) {
			end = len(img)
		}
		if err := ctrl.FWDownload(img[off:end], off); err != nil {
			return nil, err
		}
	}
	if err := ctrl.FWCommit(true); err != nil {
		return nil, err
	}
	return dev, nil
}

// ResourceName names an SSD computation resource index in Fractions order.
func ResourceName(i int) string { return isa.Resource(i).String() }

// NumResources is the number of SSD computation resources.
const NumResources = isa.NumResources

// Fractions reports the share of instructions offloaded to each resource
// in a decision trace (Fig. 9).
func Fractions(decisions []Decision) [NumResources]float64 {
	var out [NumResources]float64
	if len(decisions) == 0 {
		return out
	}
	for _, d := range decisions {
		out[d.Resource]++
	}
	for i := range out {
		out[i] /= float64(len(decisions))
	}
	return out
}
