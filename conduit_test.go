package conduit_test

import (
	"math"
	"strconv"
	"strings"
	"testing"

	conduit "conduit"
)

// quickstartSource is a minimal application for facade tests.
func quickstartSource(n int) *conduit.Source {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 3)
	}
	return &conduit.Source{
		Name: "quickstart",
		Arrays: []*conduit.Array{
			{Name: "in", Elem: 1, Len: n, Input: true, Data: data},
			{Name: "out", Elem: 1, Len: n},
		},
		Stmts: []conduit.Stmt{
			conduit.Loop{Name: "kernel", N: n, Body: []conduit.Assign{
				{Target: "out", Value: conduit.Bin{Op: conduit.OpXor,
					X: conduit.Bin{Op: conduit.OpMul, X: conduit.Ref{Name: "in"}, Y: conduit.Lit{Value: 7}},
					Y: conduit.Lit{Value: 0x5A}}},
			}},
		},
	}
}

func TestSystemRunAllPolicies(t *testing.T) {
	sys := conduit.NewSystem(conduit.DefaultConfig())
	src := quickstartSource(2 * 16384)
	for _, p := range conduit.Policies() {
		res, err := sys.Run(src, p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("%s: zero elapsed time", p)
		}
		if res.Policy != p {
			t.Fatalf("result policy %q, want %q", res.Policy, p)
		}
	}
	if _, err := sys.Run(src, "nonsense"); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestCompileExposesReport(t *testing.T) {
	cfg := conduit.DefaultConfig()
	c, err := conduit.Compile(quickstartSource(2*16384), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Report.VectorizablePercent() != 100 {
		t.Fatalf("quickstart should fully vectorize, got %v%%", c.Report.VectorizablePercent())
	}
	if len(c.ArrayPages("out")) == 0 {
		t.Fatal("symbol table missing output array")
	}
}

func TestDeviceDecisionsExposed(t *testing.T) {
	sys := conduit.NewSystem(conduit.DefaultConfig())
	res, err := sys.Run(quickstartSource(2*16384), "Conduit")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) == 0 {
		t.Fatal("in-SSD run must expose its offloading trace")
	}
	fr := conduit.Fractions(res.Decisions)
	sum := fr[0] + fr[1] + fr[2]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %v", sum)
	}
	if res.OverheadTime <= 0 {
		t.Fatal("offloader overhead must be reported")
	}
}

// TestEvaluationShape runs the full experiment matrix at smoke-test scale
// and asserts the qualitative relations the paper's figures rest on (see
// EXPERIMENTS.md). Absolute factors are scale-dependent and not asserted.
func TestEvaluationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation sweep")
	}
	e := conduit.NewExperiments(conduit.DefaultConfig(), 2)

	geo := func(policy string) float64 {
		var logSum float64
		var n int
		for _, w := range e.Workloads() {
			s, err := e.Speedup(w, policy)
			if err != nil {
				t.Fatalf("%s/%s: %v", w, policy, err)
			}
			logSum += math.Log(s)
			n++
		}
		return math.Exp(logSum / float64(n))
	}

	conduitGeo := geo("Conduit")
	dmGeo := geo("DM-Offloading")
	bwGeo := geo("BW-Offloading")
	ispGeo := geo("ISP")
	idealGeo := geo("Ideal")

	// Ideal bounds everything (it is the stated upper bound).
	for _, w := range e.Workloads() {
		for _, p := range []string{"Conduit", "DM-Offloading", "BW-Offloading", "ISP", "PuD-SSD"} {
			sp, _ := e.Speedup(w, p)
			si, _ := e.Speedup(w, "Ideal")
			if sp > si*1.001 {
				t.Errorf("%s: %s (%.3f) exceeded Ideal (%.3f)", w, p, sp, si)
			}
		}
	}
	// Conduit does not lose to the prior offloading policies on geomean.
	if conduitGeo < dmGeo*0.97 {
		t.Errorf("Conduit geomean %.3f below DM-Offloading %.3f", conduitGeo, dmGeo)
	}
	if conduitGeo < bwGeo {
		t.Errorf("Conduit geomean %.3f below BW-Offloading %.3f", conduitGeo, bwGeo)
	}
	// Dynamic multi-resource offloading beats single-resource ISP.
	if conduitGeo < ispGeo {
		t.Errorf("Conduit geomean %.3f below ISP-only %.3f", conduitGeo, ispGeo)
	}
	if idealGeo < conduitGeo {
		t.Errorf("Ideal geomean %.3f below Conduit %.3f", idealGeo, conduitGeo)
	}

	// Energy: every in-SSD policy beats the hosts on the bitwise workload.
	cpuE, _ := e.Run("AES", "CPU")
	conduitE, _ := e.Run("AES", "Conduit")
	if conduitE.TotalEnergy() >= cpuE.TotalEnergy() {
		t.Errorf("Conduit AES energy %.3g should undercut CPU %.3g",
			conduitE.TotalEnergy(), cpuE.TotalEnergy())
	}

	// Fig 9 shape: memory-bound workloads barely use ISP under Conduit
	// (§6.4: 0.4% for AES).
	aes, _ := e.Run("AES", "Conduit")
	fr := conduit.Fractions(aes.Decisions)
	if fr[0] > 0.15 {
		t.Errorf("Conduit AES ISP fraction %.3f, want small (§6.4)", fr[0])
	}

	// Fig 8 shape: Conduit's p99.99 does not exceed BW-Offloading's
	// (contention-aware balancing, §6.3).
	for _, w := range []string{"LlaMA2 Inference", "jacobi-1d"} {
		c, _ := e.Run(w, "Conduit")
		b, _ := e.Run(w, "BW-Offloading")
		if c.InstLatencies.P9999() > b.InstLatencies.P9999() {
			t.Errorf("%s: Conduit p99.99 %v above BW-Offloading %v",
				w, c.InstLatencies.P9999(), b.InstLatencies.P9999())
		}
	}
}

func TestEveryExperimentRendersAtSmokeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	e := conduit.NewExperiments(conduit.DefaultConfig(), 1)
	runs := []struct {
		name string
		fn   func() (*conduit.Table, error)
	}{
		{"table3", e.Table3},
		{"fig4", e.Fig4},
		{"fig5", e.Fig5},
		{"fig7a", e.Fig7a},
		{"fig7b", e.Fig7b},
		{"fig8", e.Fig8},
		{"fig9", e.Fig9},
		{"fig10", func() (*conduit.Table, error) { return e.Fig10(2000, 40) }},
		{"overhead", e.Overhead},
		{"ablation", e.AblationCostFeatures},
	}
	for _, r := range runs {
		tab, err := r.fn()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if tab.NumRows() == 0 {
			t.Fatalf("%s: empty table", r.name)
		}
		if !strings.Contains(tab.String(), "-") {
			t.Fatalf("%s: render looks wrong", r.name)
		}
	}
}

func TestOverheadMatchesPaperEnvelope(t *testing.T) {
	e := conduit.NewExperiments(conduit.DefaultConfig(), 1)
	tab, err := e.Overhead()
	if err != nil {
		t.Fatal(err)
	}
	// §4.5: 3.77 µs average per instruction (up to 33 µs); our mean per
	// workload must stay in that envelope.
	for i := 0; i < tab.NumRows(); i++ {
		cell := tab.Cell(i, 1)
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", cell, err)
		}
		if v < 0.5 || v > 33 {
			t.Errorf("%s: per-instruction overhead %vµs outside §4.5 envelope", tab.Cell(i, 0), v)
		}
	}
}
