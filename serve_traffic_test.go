package conduit_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	conduit "conduit"
	"conduit/internal/loadgen"
)

// TestServeDrainRaceLeavesConsistentPools is the drain/Do race contract,
// exercised with -race on both application shapes: while clients issue
// closed-loop requests, Drain begins concurrently. Every Do must return
// either a served response or ErrDraining (never a leaked hang, panic,
// or partial state), and afterwards every pool — the pooled deployment's
// and every shard's of the sharded registration — must be closed with
// zero buffered forks and self-consistent counters.
func TestServeDrainRaceLeavesConsistentPools(t *testing.T) {
	cfg := conduit.DefaultConfig()
	srv := conduit.NewServer(cfg, conduit.ServeOptions{Concurrency: 4, Prefork: 2})
	if err := srv.Register("pooled", quickstartSource(2*16384)); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterSharded("sharded", xorFilterSource(2*16384), 2); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var served, refused int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			workload := "pooled"
			if i%2 == 1 {
				workload = "sharded"
			}
			for j := 0; ; j++ {
				resp, err := srv.Do(conduit.Request{Tenant: "t", Workload: workload, Policy: "Conduit"})
				if errors.Is(err, conduit.ErrDraining) {
					atomic.AddInt64(&refused, 1)
					return
				}
				if err != nil {
					t.Errorf("client %d request %d: %v", i, j, err)
					return
				}
				if conduit.ResultOf(resp) == nil {
					t.Errorf("client %d request %d: served response carries no result", i, j)
					return
				}
				atomic.AddInt64(&served, 1)
			}
		}(i)
	}
	close(start)
	// Let traffic flow briefly, then drain underneath it.
	time.Sleep(30 * time.Millisecond)
	srv.Drain()
	wg.Wait()

	if refused == 0 {
		t.Error("no client observed ErrDraining — drain did not race any Do")
	}
	pools := srv.PoolStats()
	wantPools := []string{"pooled", "sharded#0", "sharded#1"}
	for _, name := range wantPools {
		ps, ok := pools[name]
		if !ok {
			t.Fatalf("pool %q missing after drain (have %v)", name, pools)
		}
		if !ps.Closed {
			t.Errorf("pool %q still open after drain", name)
		}
		if ps.Idle != 0 {
			t.Errorf("pool %q: %d forks still buffered after drain", name, ps.Idle)
		}
		// Counter consistency: every buffer-served fork was produced by
		// the refiller, and nothing the pool produced is unaccounted for
		// beyond the clones Close legitimately discarded (preforked =
		// hits + idle + discarded, idle = 0 here).
		if ps.Hits > ps.Preforked {
			t.Errorf("pool %q: %d hits exceed %d preforked clones", name, ps.Hits, ps.Preforked)
		}
	}
	// Accounting agrees with what the clients saw.
	var accounted int64
	for _, ts := range srv.Tenants() {
		accounted += ts.Requests
	}
	if accounted != served {
		t.Errorf("accounted %d requests, clients saw %d served", accounted, served)
	}
}

// TestServeOverloadShedsWithoutConsumingForks is the overload acceptance
// pin at the facade level: a one-worker, one-slot server flooded
// open-loop must shed with ErrOverloaded, and the shed requests must
// never execute — provable from the pool counters, because every
// executed device request consumes exactly one fork (Hits + Misses).
func TestServeOverloadShedsWithoutConsumingForks(t *testing.T) {
	cfg := conduit.DefaultConfig()
	srv := conduit.NewServer(cfg, conduit.ServeOptions{
		Concurrency: 1, QueueDepth: 1, Prefork: 1,
	})
	if err := srv.Register("app", quickstartSource(2*16384)); err != nil {
		t.Fatal(err)
	}

	const offered = 40
	var chans []<-chan *conduit.Response
	var shed int64
	for i := 0; i < offered; i++ {
		c, err := srv.Submit(conduit.Request{Tenant: "t", Workload: "app", Policy: "Conduit"})
		switch {
		case err == nil:
			chans = append(chans, c)
		case errors.Is(err, conduit.ErrOverloaded):
			shed++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	var servedOK int64
	for _, c := range chans {
		if resp := <-c; resp.Err == nil {
			servedOK++
		} else {
			t.Errorf("admitted request failed: %v", resp.Err)
		}
	}
	srv.Drain()

	if shed == 0 {
		t.Fatal("flooding a 1-worker/1-slot server shed nothing — open-loop admission is not shedding")
	}
	if servedOK+shed != offered {
		t.Fatalf("conservation: %d served + %d shed != %d offered", servedOK, shed, offered)
	}
	ps, ok := srv.PoolStats()["app"]
	if !ok {
		t.Fatal("pool stats missing")
	}
	if forks := ps.Hits + ps.Misses; forks != servedOK {
		t.Fatalf("%d forks consumed for %d executed requests — a shed request consumed a fork", forks, servedOK)
	}
	total := srv.Total()
	if total.Shed != shed || total.Requests != servedOK {
		t.Fatalf("shed accounting: %+v (want shed=%d requests=%d)", total, shed, servedOK)
	}
	if lat := srv.Latencies(); lat.Count() != servedOK {
		t.Fatalf("latency histogram holds %d samples, want %d (completed responses only)", lat.Count(), servedOK)
	}
}

// TestServeReplayedTraceMatchesGeneratedRun wires the whole subsystem
// end to end: an open-loop Poisson schedule is generated, issued against
// a server while being recorded, and the recorded trace is then replayed
// against a second, identically configured server. With shedding
// impossible (ample queue), both runs must serve the identical request
// multiset per tenant and per workload — the replay IS the run, as an
// artifact.
func TestServeReplayedTraceMatchesGeneratedRun(t *testing.T) {
	schedule, err := loadgen.Generate(loadgen.Spec{
		Arrival: "poisson", QPS: 4000, Duration: 60 * time.Millisecond,
		Seed: 3, Tenants: 2,
		Workloads: []string{"app"},
		Policies:  []string{"Conduit", "CPU"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(schedule) == 0 {
		t.Fatal("empty schedule")
	}

	runOnce := func(events []loadgen.Event, rec *loadgen.Recorder) map[string]int64 {
		cfg := conduit.DefaultConfig()
		srv := conduit.NewServer(cfg, conduit.ServeOptions{
			Concurrency: 4, QueueDepth: 4 * len(events), Prefork: 2,
		})
		if err := srv.Register("app", quickstartSource(2*16384)); err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var chans []<-chan *conduit.Response
		loadgen.Replay(events, 50, func(ev loadgen.Event) {
			if rec != nil {
				rec.Record(ev.Tenant, ev.Workload, ev.Policy, ev.Deadline)
			}
			c, err := srv.Submit(conduit.Request{
				Tenant: ev.Tenant, Workload: ev.Workload, Policy: ev.Policy, Deadline: ev.Deadline,
			})
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			mu.Lock()
			chans = append(chans, c)
			mu.Unlock()
		})
		counts := make(map[string]int64)
		for _, c := range chans {
			resp := <-c
			if resp.Err != nil {
				t.Errorf("response: %v", resp.Err)
				continue
			}
			counts[resp.Request.Tenant+"|"+resp.Request.Workload+"|"+resp.Request.Policy]++
		}
		srv.Drain()
		return counts
	}

	rec := loadgen.NewRecorder()
	first := runOnce(schedule, rec)
	trace := rec.Events()
	if len(trace) != len(schedule) {
		t.Fatalf("recorded %d events for %d issued", len(trace), len(schedule))
	}
	second := runOnce(trace, nil)
	if len(first) == 0 {
		t.Fatal("no cells served")
	}
	for k, n := range first {
		if second[k] != n {
			t.Errorf("cell %s: generated run served %d, replayed trace served %d", k, n, second[k])
		}
	}
	for k := range second {
		if _, ok := first[k]; !ok {
			t.Errorf("replay served cell %s the generated run never issued", k)
		}
	}
}
