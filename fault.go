package conduit

import (
	"errors"
	"fmt"
	"strconv"

	"conduit/internal/cluster"
	"conduit/internal/faultinject"
	"conduit/internal/serve"
	"conduit/internal/sim"
	"conduit/internal/trace"
)

// Fault-injection building blocks, re-exported like the compiler types.
type (
	// FaultConfig sets the per-seam injection rates and the chaos seed
	// (internal/faultinject). The zero value injects nothing.
	FaultConfig = faultinject.Config
	// Fault is one recorded injected fault; slices of them round-trip
	// through JSONL (WriteFaultLog/ReadFaultLog) for record/replay.
	Fault = faultinject.Fault
	// FaultKind names what a recorded fault did (Fault.Kind).
	FaultKind = faultinject.Kind
	// Recovery is the per-request fault-recovery accounting the serving
	// layer aggregates per tenant (attempts, retries, hedges, fallbacks,
	// simulated backoff time).
	Recovery = serve.Recovery
	// BreakerStatus is one circuit breaker's snapshot (Server.Breakers).
	BreakerStatus = faultinject.BreakerStatus
)

// WriteFaultLog and ReadFaultLog round-trip a recorded fault schedule
// through JSONL, one fault per line (see internal/faultinject).
var (
	WriteFaultLog = faultinject.WriteFile
	ReadFaultLog  = faultinject.ReadFile
)

// FaultsAtRate maps one master fault rate onto the per-seam injection
// rates the availability experiment and conduit-serve -faults share:
// shard failures and slow shards at rate, fork failures and poisoned
// forks at rate/2, dispatch backend errors at rate/4 — device faults
// dominate, matching a storage-centric failure model. slowFactor <= 1
// selects the injector's default latency multiplier.
func FaultsAtRate(rate, slowFactor float64, seed uint64) FaultConfig {
	return FaultConfig{
		Seed:         seed,
		ShardFail:    rate,
		SlowShard:    rate,
		SlowFactor:   slowFactor,
		ForkFail:     rate / 2,
		PoisonFork:   rate / 2,
		BackendError: rate / 4,
	}
}

// ErrInjected marks errors manufactured by the fault-injection layer;
// match with errors.Is to tell injected chaos from organic failures.
var ErrInjected = errors.New("injected fault")

// ErrCircuitOpen is returned when a shard's circuit breaker is open and
// no fallback policy is configured to degrade to.
var ErrCircuitOpen = errors.New("circuit breaker open")

// RecoveryOptions tunes the fault-tolerant dispatch path: retries with
// capped deterministic backoff, hedged duplicate dispatch against
// straggler shards, per-(workload, shard) circuit breakers, and graceful
// degradation to a fallback policy. The zero value performs a single
// attempt with no recovery machinery, byte-identical to plain dispatch.
//
// All recovery costs are charged to simulated time: backoff between
// retries, the burnt simulated time of failed attempts, and the
// degraded-but-discarded time of slow shards all land on the request's
// RunResult.Elapsed, never on the wall clock — so recovery behavior is
// as deterministic as the runs it protects.
type RecoveryOptions struct {
	// MaxAttempts bounds tries per shard sub-run (and per dispatch);
	// < 1 selects 1 — no retries.
	MaxAttempts int
	// BackoffBase is the simulated backoff before the first retry,
	// doubling per retry; <= 0 selects 100µs.
	BackoffBase Time
	// BackoffCap caps the doubling; <= 0 selects 10ms.
	BackoffCap Time
	// Hedge enables duplicate dispatch against the slowest shard of a
	// cluster scatter when it straggles past HedgeThreshold times the
	// fastest shard; the faster of primary and hedge wins (ties keep
	// the primary, so hedging never perturbs a fault-free run).
	Hedge bool
	// HedgeThreshold is the straggler multiple that triggers a hedge;
	// <= 1 selects 2.
	HedgeThreshold float64
	// BreakerThreshold trips a shard's circuit breaker after that many
	// consecutive failures; 0 disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how many refused requests an open breaker
	// absorbs before admitting a half-open probe; < 1 selects 8.
	BreakerCooldown int
	// FallbackPolicy, when set, serves requests that hit an open
	// breaker under this (typically host) policy instead of refusing
	// them with ErrCircuitOpen. Fallback runs bypass the injection
	// seams: recovery must not be chaos's victim too.
	FallbackPolicy string
}

func (o RecoveryOptions) maxAttempts() int {
	if o.MaxAttempts < 1 {
		return 1
	}
	return o.MaxAttempts
}

func (o RecoveryOptions) backoffBase() Time {
	if o.BackoffBase <= 0 {
		return 100 * sim.Microsecond
	}
	return o.BackoffBase
}

func (o RecoveryOptions) backoffCap() Time {
	if o.BackoffCap <= 0 {
		return 10 * sim.Millisecond
	}
	return o.BackoffCap
}

func (o RecoveryOptions) hedgeThreshold() float64 {
	if o.HedgeThreshold <= 1 {
		return 2
	}
	return o.HedgeThreshold
}

func (o RecoveryOptions) breakerCooldown() int {
	if o.BreakerCooldown < 1 {
		return 8
	}
	return o.BreakerCooldown
}

// enabled reports whether the options ask for any recovery machinery
// beyond plain single-attempt dispatch.
func (o RecoveryOptions) enabled() bool {
	return o.MaxAttempts > 1 || o.Hedge || o.BreakerThreshold > 0 || o.FallbackPolicy != ""
}

// resilient is the fault-tolerant dispatcher wrapped around one
// registered application: it threads every run through the injection
// seams and recovers with retries, hedging, breakers, and fallback per
// its RecoveryOptions. A nil injector disables injection but keeps the
// recovery machinery live for organic failures. Safe for concurrent use
// (the injector and breakers lock internally; options are immutable).
type resilient struct {
	name string
	app  application
	inj  *faultinject.Injector
	rec  RecoveryOptions
	brk  *faultinject.BreakerSet // nil when breakers are disabled
}

func newResilient(name string, app application, inj *faultinject.Injector, rec RecoveryOptions) *resilient {
	r := &resilient{name: name, app: app, inj: inj, rec: rec}
	if rec.BreakerThreshold > 0 {
		r.brk = faultinject.NewBreakerSet(rec.BreakerThreshold, rec.breakerCooldown())
	}
	return r
}

// run executes one request through the dispatch seam and the shard-level
// recovery machinery, returning the merged result plus the request's
// recovery accounting. Injected dispatch-seam backend errors retry with
// backoff up to MaxAttempts; shard-level faults are retried per shard by
// runShard, so the two retry budgets never multiply.
//
// sp is the request's execution span (nil unless sampled). Every
// recovery action — injected faults, retries, breaker trips, hedges,
// fallbacks — lands on it as an event whose simulated offset is the
// backoff penalty charged so far, so the trace is as deterministic as
// the fault schedule that produced it.
func (r *resilient) run(policy string, sp *trace.Span) (*RunResult, serve.Recovery, error) {
	var rec serve.Recovery
	max := r.rec.maxAttempts()
	var penalty Time
	for attempt := 1; ; attempt++ {
		if r.inj.Dispatch(r.name, attempt) {
			rec.Injected++
			sp.Event("fault_injected", int64(penalty),
				trace.Attr{Key: "kind", Value: "dispatch-error"})
			if attempt >= max {
				return nil, rec, fmt.Errorf("conduit: dispatch %s: backend error after %d attempts: %w",
					r.name, attempt, ErrInjected)
			}
			rec.Retries++
			b := faultinject.Backoff(r.rec.backoffBase(), r.rec.backoffCap(), attempt)
			rec.BackoffSim += b
			penalty += b
			sp.Event("retry", int64(penalty),
				trace.Attr{Key: "attempt", Value: strconv.Itoa(attempt + 1)})
			continue
		}
		res, err := r.runApp(policy, &rec, sp)
		if err != nil {
			return nil, rec, err
		}
		res.Elapsed += penalty
		return res, rec, nil
	}
}

// runApp dispatches to the shard-aware cluster path or the single-shard
// deployment path; unknown application kinds run unprotected.
func (r *resilient) runApp(policy string, rec *serve.Recovery, sp *trace.Span) (*RunResult, error) {
	switch app := r.app.(type) {
	case *Cluster:
		return r.runCluster(app, policy, rec, sp)
	case *Deployment:
		return r.runShard(app, 0, policy, rec, sp)
	default:
		return app.runTraced(policy, sp)
	}
}

// runCluster scatters the request across the shards with per-shard
// recovery, then optionally hedges the straggler: a duplicate sub-run
// against the slowest shard, first-wins in simulated time (the primary
// keeps ties, so a deterministic tie — e.g. a fault-free duplicate —
// never changes the merged result). Per-shard recovery accounting is
// merged into rec in shard order.
func (r *resilient) runCluster(cl *Cluster, policy string, rec *serve.Recovery, sp *trace.Span) (*RunResult, error) {
	if !KnownPolicy(policy) {
		return nil, errUnknownPolicy(policy)
	}
	recs := make([]serve.Recovery, len(cl.deps))
	parts := make([]*RunResult, len(cl.deps))
	gather := func(i int, dep *Deployment) (*RunResult, error) {
		ssp := sp.Child("cluster.shard", strconv.Itoa(i), 0)
		ssp.SetAttr("shard", strconv.Itoa(i))
		res, err := r.runShard(dep, i, policy, &recs[i], ssp)
		parts[i] = res
		if res != nil {
			ssp.End(int64(res.Elapsed))
		} else {
			ssp.End(0)
		}
		return res, err
	}
	merged, err := cl.runShards(gather)
	for i := range recs {
		rec.Merge(recs[i])
	}
	if err != nil {
		return nil, err
	}
	if r.rec.Hedge && len(cl.deps) >= 2 {
		elapsed := make([]Time, len(parts))
		for i, p := range parts {
			elapsed[i] = p.Elapsed
		}
		if s := cluster.HedgePick(elapsed, r.rec.hedgeThreshold()); s >= 0 {
			rec.Hedges++
			sp.Event("hedge", int64(parts[s].Elapsed),
				trace.Attr{Key: "shard", Value: strconv.Itoa(s)})
			var hrec serve.Recovery
			hsp := sp.Child("cluster.shard", "hedge:"+strconv.Itoa(s), 0)
			hsp.SetAttr("shard", strconv.Itoa(s))
			hsp.SetAttr("hedge", "true")
			dup, derr := guardShardRun(s, func() (*RunResult, error) {
				return r.runShard(cl.deps[s], s, policy, &hrec, hsp)
			})
			if dup != nil {
				hsp.End(int64(dup.Elapsed))
			} else {
				hsp.End(0)
			}
			rec.Merge(hrec)
			if derr == nil && dup.Elapsed < parts[s].Elapsed {
				// The hedge won: in simulated time the duplicate finishes
				// first, the straggling primary is cancelled, and the
				// merge sees only the winner.
				rec.HedgeWins++
				sp.Event("hedge_win", int64(dup.Elapsed),
					trace.Attr{Key: "shard", Value: strconv.Itoa(s)})
				parts[s] = dup
				return cl.merge(parts), nil
			}
		}
	}
	return merged, nil
}

// runShard serves one shard's sub-run with the full per-shard recovery
// stack: breaker admission (checked before every attempt, so a breaker
// tripping mid-request degrades the request's remaining attempts),
// injected fork/shard faults, retries with simulated backoff, and
// fallback. The simulated time burnt by failed attempts and backoff is
// charged to the winning attempt's Elapsed.
func (r *resilient) runShard(dep *Deployment, shard int, policy string, rec *serve.Recovery, sp *trace.Span) (*RunResult, error) {
	var b *faultinject.Breaker
	if r.brk != nil {
		b = r.brk.Get(fmt.Sprintf("%s#%d", r.name, shard))
	}
	max := r.rec.maxAttempts()
	var penalty Time
	var lastErr error
	for attempt := 1; attempt <= max; attempt++ {
		if b != nil && !b.Allow() {
			sp.Event("breaker_open", int64(penalty),
				trace.Attr{Key: "shard", Value: strconv.Itoa(shard)})
			if fb := r.rec.FallbackPolicy; fb != "" {
				rec.Fallbacks++
				sp.Event("fallback", int64(penalty),
					trace.Attr{Key: "policy", Value: fb})
				res, err := guardShardRun(shard, func() (*RunResult, error) { return dep.Run(fb) })
				if err != nil {
					return nil, err
				}
				res.Elapsed += penalty
				return res, nil
			}
			return nil, fmt.Errorf("conduit: %s shard %d: %w", r.name, shard, ErrCircuitOpen)
		}
		rec.Attempts++
		if attempt > 1 {
			rec.Retries++
			back := faultinject.Backoff(r.rec.backoffBase(), r.rec.backoffCap(), attempt-1)
			rec.BackoffSim += back
			penalty += back
			sp.Event("retry", int64(penalty),
				trace.Attr{Key: "attempt", Value: strconv.Itoa(attempt)})
		}
		res, cost, err := r.attemptShard(dep, shard, policy, attempt, rec, sp)
		if err == nil {
			if b != nil {
				b.Success()
			}
			res.Elapsed += penalty
			return res, nil
		}
		if b != nil {
			b.Failure()
		}
		penalty += cost
		lastErr = err
	}
	return nil, fmt.Errorf("conduit: %s shard %d: %d attempts exhausted: %w",
		r.name, shard, max, lastErr)
}

// attemptShard executes one attempt through the pool and device seams.
// cost is the simulated time the attempt burnt if it failed (a failed
// run still ran; a slow-then-failed run burnt its degraded time); it is
// zero on success, where the run's own time lives in res.Elapsed.
func (r *resilient) attemptShard(dep *Deployment, shard int, policy string, attempt int, rec *serve.Recovery, sp *trace.Span) (*RunResult, Time, error) {
	// Injection events carry the attempt number rather than a simulated
	// offset of their own: the draws happen "at" the attempt, and the
	// deterministic offsets of interest (backoff penalties) live on the
	// surrounding retry events.
	inject := func(kind string) {
		sp.Event("fault_injected", 0,
			trace.Attr{Key: "kind", Value: kind},
			trace.Attr{Key: "attempt", Value: strconv.Itoa(attempt)})
	}
	if policy == "CPU" || policy == "GPU" {
		// Host baselines fork no device and touch no pool: only the
		// dispatch seam applies to them.
		res, err := guardShardRun(shard, func() (*RunResult, error) { return dep.Run(policy) })
		return res, 0, err
	}
	if fd := r.inj.Fork(r.name, shard, attempt); fd.Fail || fd.Poison {
		rec.Injected++
		if fd.Fail {
			inject("fork-fail")
			return nil, 0, fmt.Errorf("conduit: %s shard %d: fork acquisition failed: %w",
				r.name, shard, ErrInjected)
		}
		inject("poison-fork")
		// A poisoned clone really consumes a fork, is found unusable, and
		// is discarded; the pool quarantines the slot and repairs it by
		// re-cloning in the background.
		if _, err := dep.Fork(); err != nil {
			return nil, 0, err
		}
		if p := dep.Pool(); p != nil {
			p.Quarantine()
			sp.Event("pool_quarantine", 0,
				trace.Attr{Key: "attempt", Value: strconv.Itoa(attempt)})
		}
		return nil, 0, fmt.Errorf("conduit: %s shard %d: poisoned fork: %w",
			r.name, shard, ErrInjected)
	}
	sd := r.inj.Shard(r.name, shard, attempt)
	if sd.Panic {
		rec.Injected++
		inject("shard-panic")
		_, err := guardShardRun(shard, func() (*RunResult, error) {
			panic(fmt.Sprintf("faultinject: injected panic (%s shard %d attempt %d)", r.name, shard, attempt))
		})
		return nil, 0, err
	}
	res, err := guardShardRun(shard, func() (*RunResult, error) { return dep.Run(policy) })
	if err != nil {
		return nil, 0, err
	}
	if sd.Slowdown > 1 {
		res.Elapsed = Time(float64(res.Elapsed) * sd.Slowdown)
	}
	if sd.Fail {
		// The run completed but its result is injected-lost; its (possibly
		// degraded) simulated time was still burnt and charges the retry.
		rec.Injected++
		inject("shard-fail")
		return nil, res.Elapsed, fmt.Errorf("conduit: %s shard %d: shard run failed: %w",
			r.name, shard, ErrInjected)
	}
	if sd.Slowdown > 1 {
		rec.Injected++
		inject("slow-shard")
	}
	return res, 0, nil
}
