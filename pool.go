package conduit

import (
	"errors"
	"sync"
	"sync/atomic"

	"conduit/internal/ssd"
)

// ErrPoolClosed is returned by DevicePool.Get — and therefore by
// Deployment.Fork and Run — once the pool has been closed: a drained
// deployment refuses new device runs instead of silently cloning a
// master whose serving lifecycle has ended.
var ErrPoolClosed = errors.New("conduit: device pool closed")

// DevicePool keeps a bounded buffer of pre-forked clones of a Deployment's
// pristine post-deploy master. Cloning a device is O(state) — cheap next
// to the NVMe deploy path, but not free on a serving hot path — so a
// background refiller produces clones ahead of demand and Fork/Get hands
// them out without paying the copy inline.
//
// Every clone of the master is byte-identical, so a pool-served fork is
// observationally indistinguishable from one cloned on demand; the pool
// changes who pays the copy, never what executes. Get never blocks: an
// empty buffer (demand outran the refiller) falls back to an inline clone.
//
// The pool also tracks fork health: Quarantine reports a poisoned fork
// back, which flushes the buffered clones as suspect and lets the
// background refiller repair the buffer by re-cloning from the pristine
// master (counted in PoolStats.Quarantined/Repairs).
//
// A DevicePool is safe for concurrent use. Close it to stop the refiller
// and release buffered devices; Get on a closed pool returns
// ErrPoolClosed. A pool always belongs to exactly one Deployment — a
// sharded Cluster attaches one pool per shard (Cluster.Prefork), never
// one shared pool, since clones of different shard masters are not
// interchangeable.
type DevicePool struct {
	dep     *Deployment
	free    chan *ssd.Device
	room    chan struct{} // one token per unfilled buffer slot
	stop    chan struct{}
	done    chan struct{} // refiller exited
	drained chan struct{} // Close finished emptying the buffer

	closeOnce sync.Once

	preforked   int64 // clones produced by the refiller
	hits        int64 // Gets served from the buffer
	misses      int64 // Gets that cloned inline
	quarantined int64 // poisoned forks reported back (Quarantine calls)
	repairs     int64 // buffer flush+re-clone repair cycles completed
}

// PoolStats is a point-in-time snapshot of a pool's activity.
type PoolStats struct {
	// Preforked counts clones the background refiller produced.
	Preforked int64
	// Hits counts forks served from the pre-fork buffer.
	Hits int64
	// Misses counts forks cloned inline because the buffer was empty
	// (or the pool was closed).
	Misses int64
	// Quarantined counts forks reported poisoned via Quarantine.
	Quarantined int64
	// Repairs counts completed quarantine repair cycles: buffered
	// clones flushed as suspect and their slots handed back to the
	// refiller to re-clone from the pristine master.
	Repairs int64
	// Idle is the number of pre-forked clones currently buffered.
	Idle int
	// Closed reports whether Close has begun.
	Closed bool
}

// Prefork attaches a pool of depth pre-forked clones to the deployment and
// returns it. Fork (and therefore Run) is served from the pool from now
// on. A previously attached pool is closed and replaced. depth < 1 is
// treated as 1.
func (d *Deployment) Prefork(depth int) *DevicePool {
	if depth < 1 {
		depth = 1
	}
	p := &DevicePool{
		dep:     d,
		free:    make(chan *ssd.Device, depth),
		room:    make(chan struct{}, depth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		drained: make(chan struct{}),
	}
	for i := 0; i < depth; i++ {
		p.room <- struct{}{}
	}
	go p.refill()
	d.poolMu.Lock()
	old := d.pool
	d.pool = p
	d.poolMu.Unlock()
	if old != nil {
		old.Close()
	}
	return p
}

// Pool returns the deployment's attached prefork pool, or nil.
func (d *Deployment) Pool() *DevicePool {
	d.poolMu.Lock()
	defer d.poolMu.Unlock()
	return d.pool
}

// Close closes the deployment's prefork pool, if any. Forks already
// handed out are unaffected; later Forks (and device-policy Runs) fail
// with ErrPoolClosed. The closed pool stays attached so its final Stats
// remain inspectable.
func (d *Deployment) Close() {
	if p := d.Pool(); p != nil {
		p.Close()
	}
}

// poolStats implements the serving layer's application interface: a
// deployment contributes its pool snapshot under its registered name.
func (d *Deployment) poolStats(name string, out map[string]PoolStats) {
	if p := d.Pool(); p != nil {
		out[name] = p.Stats()
	}
}

// refill keeps the buffer full until stopped. A room token is acquired
// before cloning, so the pool holds at most depth clones at any moment
// (buffered plus the one in the refiller's hand). The clone produced when
// the stop signal wins the select is simply dropped — clones carry no
// external resources.
func (p *DevicePool) refill() {
	defer close(p.done)
	for {
		select {
		case <-p.stop:
			return
		case <-p.room:
		}
		dev := p.dep.master.Clone()
		select {
		case <-p.stop:
			return
		case p.free <- dev:
			atomic.AddInt64(&p.preforked, 1)
		}
	}
}

// Get returns a fresh post-deploy fork, preferring a pre-forked clone. It
// never blocks: on an empty buffer (demand outran the refiller) it clones
// inline, exactly like Deployment.Fork without a pool. On a closed pool
// it returns ErrPoolClosed — never a silent inline clone of a deployment
// whose serving lifecycle has ended.
func (p *DevicePool) Get() (*ssd.Device, error) {
	dev, _, err := p.get()
	return dev, err
}

// get is Get plus the buffer-hit disposition. The tracing seam reports
// hit vs. miss as a span event on the operational (wall-clocked)
// timeline only: whether a particular Get wins the race against the
// background refiller is scheduling-dependent, so the disposition must
// never enter a deterministic trace.
func (p *DevicePool) get() (*ssd.Device, bool, error) {
	select {
	case dev, ok := <-p.free:
		if !ok {
			return nil, false, ErrPoolClosed
		}
		// Hand the freed slot back to the refiller.
		select {
		case p.room <- struct{}{}:
		default:
		}
		atomic.AddInt64(&p.hits, 1)
		return dev, true, nil
	default:
	}
	select {
	case <-p.stop:
		return nil, false, ErrPoolClosed
	default:
	}
	atomic.AddInt64(&p.misses, 1)
	return p.dep.master.Clone(), false, nil
}

// Quarantine reports that a fork served from this pool turned out to be
// poisoned. The handed-out fork is the caller's to discard (forks never
// return to the buffer anyway); the pool treats the buffered clones as
// suspect, flushes them, and hands their slots back to the background
// refiller, which repairs the buffer by re-cloning from the pristine
// master. On a closed pool only the quarantine count is recorded.
func (p *DevicePool) Quarantine() {
	atomic.AddInt64(&p.quarantined, 1)
	for {
		select {
		case _, ok := <-p.free:
			if !ok {
				return // closed and drained: nothing to repair
			}
			select {
			case p.room <- struct{}{}:
			default:
			}
		default:
			select {
			case <-p.stop:
			default:
				atomic.AddInt64(&p.repairs, 1)
			}
			return
		}
	}
}

// Close stops the refiller and discards every buffered clone; it blocks
// until the refiller has exited and the buffer is empty, so after Close
// returns no fork is held by the pool. Close is idempotent.
func (p *DevicePool) Close() {
	p.closeOnce.Do(func() {
		close(p.stop)
		<-p.done
		close(p.free)
		for range p.free {
		}
		close(p.drained)
	})
	// Losers of the Once race wait for the winner to finish draining, so
	// every Close call observes the empty-pool postcondition.
	<-p.drained
}

// Stats returns a snapshot of the pool's counters.
func (p *DevicePool) Stats() PoolStats {
	closed := false
	select {
	case <-p.stop:
		closed = true
	default:
	}
	return PoolStats{
		Preforked:   atomic.LoadInt64(&p.preforked),
		Hits:        atomic.LoadInt64(&p.hits),
		Misses:      atomic.LoadInt64(&p.misses),
		Quarantined: atomic.LoadInt64(&p.quarantined),
		Repairs:     atomic.LoadInt64(&p.repairs),
		Idle:        len(p.free),
		Closed:      closed,
	}
}
