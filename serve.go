package conduit

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"conduit/internal/faultinject"
	"conduit/internal/histo"
	"conduit/internal/metrics"
	"conduit/internal/serve"
	"conduit/internal/trace"
	"conduit/internal/workloads"
)

// Serving-layer building blocks, re-exported like the compiler types.
type (
	// Request names one offload execution on behalf of a tenant; its
	// Deadline (0 = none) is the request's SLO budget from submission.
	Request = serve.Request
	// Response is the served result of one request; its Outcome.Value
	// holds the *RunResult (see ResultOf).
	Response = serve.Response
	// TenantSnapshot is one tenant's accounting totals.
	TenantSnapshot = serve.TenantSnapshot
	// LatencyHistogram is a bounded log-linear wall-clock latency
	// histogram (nanosecond samples, exactly mergeable; internal/histo).
	LatencyHistogram = histo.Histogram
	// TraceOptions configures the server's request tracer
	// (internal/trace): sampling cadence, the optional wall-clock source,
	// and the retained-trace bound. The zero value records only requests
	// whose wire context demands sampling, and keeps every span on the
	// deterministic simulated timeline.
	TraceOptions = trace.Options
	// TraceCtx is a propagated trace context: requests carrying one with
	// Sampled set are recorded regardless of the sampling cadence, letting
	// a router stitch fleet-wide traces out of per-target spans.
	TraceCtx = trace.Ctx
	// TraceSpan is one recorded span (see internal/trace for the span
	// model and the dual-timeline rule).
	TraceSpan = trace.Span
	// MetricSample is one series in a metrics snapshot (internal/metrics).
	MetricSample = metrics.Sample
)

// ErrDraining is returned by Server.Do and Server.Submit once Drain has
// begun.
var ErrDraining = serve.ErrDraining

// ErrOverloaded is returned by Server.Submit when the admission queue is
// full: the request is shed without ever executing.
var ErrOverloaded = serve.ErrOverloaded

// ErrDeadlineExceeded is the Response.Err of a request whose Deadline
// expired while it waited in the admission queue; it never consumed a
// pooled fork.
var ErrDeadlineExceeded = serve.ErrDeadlineExceeded

// ServeOptions tunes a Server.
type ServeOptions struct {
	// Concurrency bounds simultaneously executing requests; < 1 selects
	// GOMAXPROCS.
	Concurrency int
	// QueueDepth is the admission-queue capacity; < 1 selects
	// 4 x Concurrency.
	QueueDepth int
	// Prefork is the per-application device-pool depth: how many restored
	// post-deploy clones to keep ready ahead of demand. Sharded
	// registrations apply it per shard — each device in the cluster gets
	// its own pool of this depth. < 1 disables pooling (forks clone
	// inline).
	Prefork int
	// Coalesce shares one execution among identical in-flight requests.
	Coalesce bool
	// Memoize caches each (workload, policy) result for the lifetime of
	// the server. Sound because runs are deterministic; implies Coalesce.
	Memoize bool
	// Faults enables the deterministic chaos layer: the server injects
	// faults at the dispatch, pool, and device seams per the config's
	// seeded rates (internal/faultinject) and records every injection.
	// Nil serves fault-free with the plain dispatch path. Enabling
	// faults forces Coalesce and Memoize off: injection draws are
	// per-request, so requests must not share executions.
	Faults *FaultConfig
	// ReplayFaults, when non-nil, replays the given recorded fault
	// schedule instead of drawing fresh: each seam consults the log and
	// re-injects exactly the faults it recorded, yielding the identical
	// outcome sequence. Takes precedence over Faults' rates.
	ReplayFaults []Fault
	// Recovery tunes the fault-tolerance machinery (retries, hedging,
	// circuit breakers, fallback). The zero value performs plain
	// single-attempt dispatch; a non-zero value activates the
	// fault-tolerant path even without Faults, protecting against
	// organic failures.
	Recovery RecoveryOptions
	// Trace arms the per-request tracer. Nil disables tracing entirely
	// (the hot path pays one nil check). A non-nil value records a span
	// tree for every sampled request — see TraceOptions for the cadence
	// and Server.Tracer for retrieval.
	Trace *TraceOptions
}

// application is the serving-layer view of a registered app: one-shot
// policy runs, pool teardown, and pool reporting. Both a single-device
// Deployment and a sharded Cluster satisfy it, so the engine serves
// either transparently.
type application interface {
	Run(policy string) (*RunResult, error)
	// runTraced is Run with span recording: shard scatter/gather and
	// device runs become children of sp. A nil sp must behave exactly
	// like Run.
	runTraced(policy string, sp *trace.Span) (*RunResult, error)
	Close()
	// poolStats contributes the application's device-pool snapshots to
	// out, keying each entry off the registered name (a cluster adds one
	// "name#shard" entry per pooled shard). Pool-less apps add nothing.
	poolStats(name string, out map[string]PoolStats)
}

// Server serves offload requests for a set of registered applications —
// single-device Deployments or sharded Clusters — over pool-managed
// forks. Each application is compiled and NVMe-deployed exactly once per
// device, at registration; every request then runs on restored
// post-deploy clones, so sustained traffic never re-drives the deploy
// path. All methods are safe for concurrent use.
type Server struct {
	sys    *System
	opts   ServeOptions
	eng    *serve.Engine
	inj    *faultinject.Injector // nil = no injection
	tracer *trace.Tracer         // nil = tracing disabled

	mu       sync.Mutex
	apps     map[string]application
	res      map[string]*resilient // fault-tolerant dispatchers, same keys as apps
	draining bool
}

// NewServer starts a serving engine over a fresh System for cfg. Callers
// must Drain it when done.
func NewServer(cfg Config, opts ServeOptions) *Server {
	s := &Server{
		sys:  NewSystem(cfg),
		opts: opts,
		apps: make(map[string]application),
		res:  make(map[string]*resilient),
	}
	switch {
	case opts.ReplayFaults != nil:
		s.inj = faultinject.NewReplay(opts.ReplayFaults)
	case opts.Faults != nil:
		s.inj = faultinject.New(*opts.Faults)
	}
	if s.inj != nil {
		// Injection draws are per-request: sharing one execution among
		// requests would let a single draw decide many requests' fates
		// and desynchronize the recorded schedule from the request
		// stream, so chaos configs force batching off.
		opts.Coalesce, opts.Memoize = false, false
		s.opts.Coalesce, s.opts.Memoize = false, false
	}
	if opts.Trace != nil {
		s.tracer = trace.New(*opts.Trace)
	}
	s.eng = serve.NewEngine(serve.RunnerFunc(s.runCell), serve.Config{
		Concurrency: opts.Concurrency,
		QueueDepth:  opts.QueueDepth,
		Coalesce:    opts.Coalesce,
		Memoize:     opts.Memoize,
		Tracer:      s.tracer,
	})
	return s
}

// Register compiles src and installs it under name (see RegisterCompiled).
func (s *Server) Register(name string, src *Source) error {
	c, err := Compile(src, &s.sys.cfg)
	if err != nil {
		return err
	}
	return s.RegisterCompiled(name, c)
}

// RegisterCompiled deploys c once over the NVMe path, attaches a prefork
// pool of opts.Prefork ready clones, and makes the application requestable
// under name. Registering a name twice is an error.
func (s *Server) RegisterCompiled(name string, c *Compiled) error {
	return s.install(name, func() (application, error) {
		dep, err := s.sys.Deploy(c)
		if err != nil {
			return nil, err
		}
		if s.opts.Prefork > 0 {
			dep.Prefork(s.opts.Prefork)
		}
		return dep, nil
	})
}

// RegisterSharded shards src row-block-wise across a cluster of the given
// number of simulated drives (see System.DeployCluster) and makes it
// requestable under name: each request scatters into per-shard sub-runs
// on pooled clones — opts.Prefork applies per shard — and gathers a
// merged result. Partitionable vs broadcast arrays follow the workload's
// shardability metadata. shards <= 1 registers a single-device cluster,
// which serves byte-identically to Register.
func (s *Server) RegisterSharded(name string, src *Source, shards int) error {
	return s.install(name, func() (application, error) {
		return s.sys.DeployCluster(src, ClusterOptions{
			Shards:  shards,
			Prefork: s.opts.Prefork,
		})
	})
}

// install runs the registration protocol around a deploy: check the name
// (and drain state) before paying for the deploy, build, then re-check at
// insertion in case of a concurrent registration of the same name or a
// concurrent Drain — tearing the freshly built application down if it
// lost either race.
func (s *Server) install(name string, build func() (application, error)) error {
	errDup := fmt.Errorf("conduit: application %q already registered", name)
	s.mu.Lock()
	_, dup := s.apps[name]
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return ErrDraining
	}
	if dup {
		return errDup
	}
	app, err := build()
	if err != nil {
		return err
	}
	s.mu.Lock()
	_, dup = s.apps[name]
	draining = s.draining
	if !dup && !draining {
		s.apps[name] = app
		if s.inj != nil || s.opts.Recovery.enabled() {
			s.res[name] = newResilient(name, app, s.inj, s.opts.Recovery)
		}
	}
	s.mu.Unlock()
	if dup || draining {
		app.Close()
		if draining {
			return ErrDraining
		}
		return errDup
	}
	return nil
}

// RegisterSuite registers the paper's six evaluation workloads at the
// given scale factor under their figure names.
func (s *Server) RegisterSuite(scale int) error {
	for _, w := range workloads.All(scale) {
		if err := s.Register(w.Name, w.Source); err != nil {
			return err
		}
	}
	return nil
}

// Applications lists registered application names, sorted.
func (s *Server) Applications() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.apps))
	for name := range s.apps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// runCell is the serve.Runner backend: one request = one policy run on
// pool-managed forks of the workload's deployment (every shard's, for a
// clustered application). sp is the engine's execution span for the
// request (nil when the request is unsampled); shard and device work
// recorded under it stays on the simulated timeline.
func (s *Server) runCell(workload, policy string, sp *trace.Span) (serve.Outcome, error) {
	s.mu.Lock()
	app := s.apps[workload]
	ft := s.res[workload]
	s.mu.Unlock()
	if app == nil {
		return serve.Outcome{}, fmt.Errorf("conduit: no application %q registered (have: %s)",
			workload, strings.Join(s.Applications(), ", "))
	}
	var (
		r   *RunResult
		rec serve.Recovery
		err error
	)
	if ft != nil {
		r, rec, err = ft.run(policy, sp)
	} else {
		r, err = app.runTraced(policy, sp)
	}
	if err != nil {
		// A failed request still reports its recovery accounting: the
		// retries it burnt are real work the books must show.
		return serve.Outcome{Recovery: rec}, err
	}
	// Served results never expose the executed drive: a coalesced or
	// memoized response is shared between requests, and an ssd.Device is
	// single-goroutine. The rest of a RunResult is an immutable snapshot
	// and safe to share (the Reservoir locks internally).
	r.Device = nil
	return serve.Outcome{Value: r, Elapsed: r.Elapsed, EnergyJ: r.TotalEnergy(), Recovery: rec}, nil
}

// Do submits one request and blocks until it is served (closed-loop). The
// returned error is ErrDraining after Drain, otherwise Response.Err.
func (s *Server) Do(req Request) (*Response, error) { return s.eng.Do(req) }

// Submit admits one request without blocking (open-loop): the returned
// channel delivers the response when served. When the admission queue is
// full the request is shed with ErrOverloaded — it never executes and
// never consumes a pooled fork — and after Drain the error is
// ErrDraining. Open-loop load generators pace Submit calls off a
// schedule (internal/loadgen), so overload surfaces as shed requests and
// queueing delay instead of silently throttling the generator.
func (s *Server) Submit(req Request) (<-chan *Response, error) { return s.eng.Submit(req) }

// ResultOf unwraps the RunResult a successful response carries; it returns
// nil for a nil or failed response.
func ResultOf(resp *Response) *RunResult {
	if resp == nil || resp.Err != nil {
		return nil
	}
	r, _ := resp.Outcome.Value.(*RunResult)
	return r
}

// Drain stops admission, waits for every in-flight request to complete,
// and closes every application's prefork pools — every shard's, for
// clustered applications. After Drain returns, no fork is buffered
// anywhere, Do rejects with ErrDraining, and further registrations are
// refused. Idempotent.
func (s *Server) Drain() {
	s.eng.Drain()
	s.mu.Lock()
	s.draining = true
	names := make([]string, 0, len(s.apps))
	for name := range s.apps {
		names = append(names, name)
	}
	sort.Strings(names)
	apps := make([]application, 0, len(names))
	for _, name := range names {
		apps = append(apps, s.apps[name])
	}
	s.mu.Unlock()
	// Close in registration-name order so shutdown (and any pool-stats
	// snapshot taken concurrently) is reproducible run to run.
	for _, app := range apps {
		app.Close()
	}
}

// Report renders the per-tenant service metrics table (request counts,
// wall-clock latency percentiles, simulated time and energy consumed).
func (s *Server) Report() *Table { return s.eng.Report() }

// Tenants returns per-tenant accounting totals sorted by tenant name.
func (s *Server) Tenants() []TenantSnapshot { return s.eng.Snapshot() }

// Total returns the all-tenants aggregate accounting snapshot.
func (s *Server) Total() TenantSnapshot { return s.eng.Total() }

// Latencies returns an independent copy of the all-tenants wall-clock
// latency histogram (completed responses, nanoseconds). Copies merge
// exactly across servers or runs via LatencyHistogram.Merge.
func (s *Server) Latencies() *LatencyHistogram { return s.eng.Wall() }

// FaultLog returns the faults injected so far in injection order — the
// replayable record of this server's chaos schedule (WriteFaultLog
// persists it; ServeOptions.ReplayFaults re-runs it). It returns nil
// when the server was built without Faults or ReplayFaults.
func (s *Server) FaultLog() []Fault { return s.inj.Log() }

// Breakers reports every circuit breaker's state, sorted by breaker name
// ("workload#shard"), across all registered applications. Empty unless
// RecoveryOptions.BreakerThreshold is set.
func (s *Server) Breakers() []BreakerStatus {
	s.mu.Lock()
	names := make([]string, 0, len(s.res))
	for name := range s.res {
		names = append(names, name)
	}
	sort.Strings(names)
	sets := make([]*faultinject.BreakerSet, 0, len(names))
	for _, name := range names {
		if b := s.res[name].brk; b != nil {
			sets = append(sets, b)
		}
	}
	s.mu.Unlock()
	var out []BreakerStatus
	for _, set := range sets {
		out = append(out, set.Snapshot()...)
	}
	return out
}

// PoolStats reports each registered application's device-pool counters,
// keyed by application name — a clustered application contributes one
// entry per shard, keyed "name#shard". Applications (and shards) without
// a pool are omitted.
func (s *Server) PoolStats() map[string]PoolStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]PoolStats, len(s.apps))
	for name, app := range s.apps {
		app.poolStats(name, out)
	}
	return out
}

// Tracer returns the server's request tracer, or nil when ServeOptions.
// Trace was not set. Retained traces are read via Tracer().Spans() (or
// per-trace via Traces()); exporting is the caller's business — see
// trace.WriteJSONL and trace.WritePerfetto.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Metrics snapshots the server's unified metrics registry: per-tenant
// serving counters and latency histograms (from the engine's accounting),
// per-pool fork counters, and circuit-breaker state gauges. The registry
// is filled at scrape time from the same authoritative counters the
// report tables read, so scraping costs the hot path nothing. Samples are
// sorted by series identity; merge fleet-wide with metrics.Registry.Add
// after metrics.Relabel.
func (s *Server) Metrics() []MetricSample {
	reg := metrics.New()
	s.eng.FillMetrics(reg)
	pools := s.PoolStats()
	names := make([]string, 0, len(pools))
	for name := range pools {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ps := pools[name]
		lbl := metrics.Label{Key: "pool", Value: name}
		reg.Count("conduit_pool_preforked_total", ps.Preforked, lbl)
		reg.Count("conduit_pool_hits_total", ps.Hits, lbl)
		reg.Count("conduit_pool_misses_total", ps.Misses, lbl)
		reg.Count("conduit_pool_quarantined_total", ps.Quarantined, lbl)
		reg.Count("conduit_pool_repairs_total", ps.Repairs, lbl)
		reg.SetGauge("conduit_pool_idle", float64(ps.Idle), lbl)
	}
	for _, b := range s.Breakers() {
		lbl := metrics.Label{Key: "breaker", Value: b.Name}
		reg.SetGauge("conduit_breaker_state", float64(b.State), lbl)
		reg.Count("conduit_breaker_trips_total", b.Trips, lbl)
	}
	return reg.Snapshot()
}
