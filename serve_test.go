package conduit_test

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	conduit "conduit"
)

// xorFilterSource is a second tiny application so serving tests cover more
// than one registered app per server.
func xorFilterSource(n int) *conduit.Source {
	a := make([]byte, n)
	b := make([]byte, n)
	for i := range a {
		a[i] = byte(i * 11)
		b[i] = byte(i*7 + 3)
	}
	return &conduit.Source{
		Name: "mini-xor",
		Arrays: []*conduit.Array{
			{Name: "a", Elem: 1, Len: n, Input: true, Data: a},
			{Name: "b", Elem: 1, Len: n, Input: true, Data: b},
			{Name: "out", Elem: 1, Len: n},
		},
		Stmts: []conduit.Stmt{
			conduit.Loop{Name: "fold", N: n, Body: []conduit.Assign{
				{Target: "out", Value: conduit.Bin{Op: conduit.OpXor,
					X: conduit.Ref{Name: "a"}, Y: conduit.Ref{Name: "b"}}},
			}},
		},
	}
}

// TestServeConcurrentMatchesSerial is the serving determinism guarantee:
// N concurrent requests for each (workload, policy) cell, multiplexed over
// pool-managed pre-forked devices, produce results byte-identical to a
// serial loop of fresh full-deploy runs. Run with -race to also exercise
// the engine's concurrency contract.
func TestServeConcurrentMatchesSerial(t *testing.T) {
	cfg := conduit.DefaultConfig()
	apps := map[string]*conduit.Source{
		"quickstart": quickstartSource(2 * 16384),
		"mini-xor":   xorFilterSource(2 * 16384),
	}
	policies := []string{"CPU", "Conduit", "Ares-Flash", "Ideal"}

	// Serial reference: a fresh NVMe deploy per cell, strictly sequential.
	sys := conduit.NewSystem(cfg)
	serial := make(map[string]resultKey)
	for name, src := range apps {
		c, err := conduit.Compile(src, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range policies {
			r, err := sys.RunCompiled(c, p)
			if err != nil {
				t.Fatalf("serial %s/%s: %v", name, p, err)
			}
			serial[name+"|"+p] = keyOf(r)
		}
	}

	// Served path: every cell requested concurrently from several clients,
	// with pre-forking on and coalescing off so each request really
	// executes on its own pooled fork.
	srv := conduit.NewServer(cfg, conduit.ServeOptions{
		Concurrency: 4, Prefork: 2,
	})
	for name, src := range apps {
		if err := srv.Register(name, src); err != nil {
			t.Fatal(err)
		}
	}
	const clientsPerCell = 3
	var wg sync.WaitGroup
	for name := range apps {
		for _, p := range policies {
			for i := 0; i < clientsPerCell; i++ {
				wg.Add(1)
				go func(name, p string) {
					defer wg.Done()
					resp, err := srv.Do(conduit.Request{Tenant: "t-" + p, Workload: name, Policy: p})
					if err != nil {
						t.Errorf("%s/%s: %v", name, p, err)
						return
					}
					r := conduit.ResultOf(resp)
					if r == nil {
						t.Errorf("%s/%s: no result", name, p)
						return
					}
					if got, want := keyOf(r), serial[name+"|"+p]; !reflect.DeepEqual(got, want) {
						t.Errorf("%s under %s: served result differs from serial fresh-deploy run\n got: %+v\nwant: %+v",
							name, p, got, want)
					}
				}(name, p)
			}
		}
	}
	wg.Wait()

	// Per-tenant accounting saw every request.
	var total int64
	for _, ts := range srv.Tenants() {
		total += ts.Requests
		if ts.Errors != 0 {
			t.Errorf("tenant %s: %d errors", ts.Tenant, ts.Errors)
		}
	}
	if want := int64(len(apps) * len(policies) * clientsPerCell); total != want {
		t.Errorf("accounted %d requests, want %d", total, want)
	}
	srv.Drain()
}

// TestServeCoalescedMatchesSerial: with batching on, concurrent identical
// requests may share one execution — and the shared responses must still
// be byte-identical to the serial path.
func TestServeCoalescedMatchesSerial(t *testing.T) {
	cfg := conduit.DefaultConfig()
	src := quickstartSource(2 * 16384)
	c, err := conduit.Compile(src, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := conduit.NewSystem(cfg).RunCompiled(c, "Conduit")
	if err != nil {
		t.Fatal(err)
	}
	wantKey := keyOf(want)

	srv := conduit.NewServer(cfg, conduit.ServeOptions{
		Concurrency: 8, Prefork: 2, Coalesce: true,
	})
	if err := srv.RegisterCompiled("quickstart", c); err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := srv.Do(conduit.Request{Tenant: "t", Workload: "quickstart", Policy: "Conduit"})
			if err != nil {
				t.Error(err)
				return
			}
			if got := keyOf(conduit.ResultOf(resp)); !reflect.DeepEqual(got, wantKey) {
				t.Errorf("coalesced response differs from serial run")
			}
		}()
	}
	wg.Wait()
}

// TestServeDrainLeavesNoLeakedForks: draining the server stops every
// pool's refiller and releases every buffered fork; admission is closed.
func TestServeDrainLeavesNoLeakedForks(t *testing.T) {
	cfg := conduit.DefaultConfig()
	srv := conduit.NewServer(cfg, conduit.ServeOptions{Concurrency: 2, Prefork: 3})
	if err := srv.Register("quickstart", quickstartSource(2*16384)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := srv.Do(conduit.Request{Tenant: "t", Workload: "quickstart", Policy: "Conduit"}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Drain()
	srv.Drain() // idempotent

	if _, err := srv.Do(conduit.Request{Tenant: "t", Workload: "quickstart", Policy: "Conduit"}); !errors.Is(err, conduit.ErrDraining) {
		t.Fatalf("Do after Drain: err=%v, want ErrDraining", err)
	}
	// Registration after Drain must refuse instead of leaking a fresh
	// pool refiller.
	if err := srv.Register("late", xorFilterSource(2*16384)); !errors.Is(err, conduit.ErrDraining) {
		t.Fatalf("Register after Drain: err=%v, want ErrDraining", err)
	}
	pools := srv.PoolStats()
	ps, ok := pools["quickstart"]
	if !ok {
		t.Fatal("pool stats missing after drain")
	}
	if !ps.Closed {
		t.Error("pool refiller still running after drain")
	}
	if ps.Idle != 0 {
		t.Errorf("%d forks still buffered after drain", ps.Idle)
	}
	// Every device-run request was served through the pool path.
	if ps.Hits+ps.Misses < 4 {
		t.Errorf("pool served %d forks, want >= 4", ps.Hits+ps.Misses)
	}
}

// TestDeploymentPreforkMatchesInlineFork: a pool-served fork runs
// byte-identically to an inline clone of the same deployment.
func TestDeploymentPreforkMatchesInlineFork(t *testing.T) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	c, err := conduit.Compile(quickstartSource(2*16384), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	inline, err := dep.Run("Conduit") // no pool yet: inline clone
	if err != nil {
		t.Fatal(err)
	}
	pool := dep.Prefork(2)
	defer dep.Close()
	pooled, err := dep.Run("Conduit") // pool-managed fork
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keyOf(inline), keyOf(pooled)) {
		t.Fatal("pool-served fork differs from inline clone")
	}
	if st := pool.Stats(); st.Hits+st.Misses == 0 {
		t.Fatal("pooled run bypassed the pool")
	}
}

// TestUnknownPolicyErrorListsAllNames: the Policies()/devicePolicy
// mismatch fix — rejections must name every valid policy, including the
// ablations that Policies() does not advertise.
func TestUnknownPolicyErrorListsAllNames(t *testing.T) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	src := quickstartSource(2 * 16384)
	c, err := conduit.Compile(src, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	all := append(conduit.Policies(), conduit.AblationPolicies()...)
	check := func(label string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: unknown policy accepted", label)
		}
		for _, name := range all {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("%s: error does not name valid policy %q: %v", label, name, err)
			}
		}
	}
	_, err = sys.Run(src, "bogus")
	check("System.Run", err)
	_, err = sys.RunCompiled(c, "bogus")
	check("System.RunCompiled", err)
	_, err = dep.Run("bogus")
	check("Deployment.Run", err)
}

// TestAblationPoliciesAllRun: every name AblationPolicies advertises is
// actually runnable.
func TestAblationPoliciesAllRun(t *testing.T) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	c, err := conduit.Compile(quickstartSource(2*16384), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range conduit.AblationPolicies() {
		r, err := dep.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if r.Policy != p || r.Elapsed <= 0 {
			t.Fatalf("%s: malformed result %+v", p, r)
		}
	}
}
