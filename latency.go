package conduit

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"conduit/internal/histo"
	"conduit/internal/loadgen"
	"conduit/internal/stats"
	"conduit/internal/workloads"
)

// LatencyOptions configures the open-loop throughput-latency sweep
// (Experiments.LatencyCurve). Zero values select the documented defaults.
type LatencyOptions struct {
	// Workloads is the request mix each point draws from (default: the
	// full evaluation suite). Workloads that cannot shard to a swept
	// cluster size are skipped at that size, like ClusterScaling.
	Workloads []string
	// Policies are swept one curve each (default: Conduit).
	Policies []string
	// Shards are the cluster sizes swept (default: {1}).
	Shards []int
	// Loads are the offered-load points in requests/s (default:
	// {100, 200, 400}).
	Loads []float64
	// Duration is each point's schedule span (default 300ms).
	Duration time.Duration
	// Arrival names the arrival process: poisson, burst, or diurnal
	// (default poisson).
	Arrival string
	// SLO is the per-request deadline; requests served within it count
	// as goodput (default 50ms; negative disables deadlines).
	SLO time.Duration
	// Seed is the root RNG seed; every point derives its own substream
	// (default 1).
	Seed uint64
	// Concurrency/QueueDepth/Prefork tune the server under test
	// (defaults: 4 workers, 4x queue, prefork 2).
	Concurrency int
	QueueDepth  int
	Prefork     int
}

func (o *LatencyOptions) defaults() {
	if len(o.Policies) == 0 {
		o.Policies = []string{"Conduit"}
	}
	if len(o.Shards) == 0 {
		o.Shards = []int{1}
	}
	if len(o.Loads) == 0 {
		o.Loads = []float64{100, 200, 400}
	}
	if o.Duration <= 0 {
		o.Duration = 300 * time.Millisecond
	}
	if o.Arrival == "" {
		o.Arrival = "poisson"
	}
	switch {
	case o.SLO == 0:
		o.SLO = 50 * time.Millisecond
	case o.SLO < 0:
		o.SLO = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Concurrency < 1 {
		o.Concurrency = 4
	}
	if o.Prefork == 0 {
		o.Prefork = 2
	}
}

// latencyPoint is one measured (policy, shards, load) cell. served
// counts successfully executed responses only — expired drops recycle
// the queue in microseconds, so counting them would make "achieved"
// track offered load instead of saturating at service capacity.
type latencyPoint struct {
	offered       float64
	served        int64
	shed, expired int64
	attained      int64
	elapsed       time.Duration
	wall          *histo.Histogram
}

// LatencyCurve drives the serving stack open-loop across a grid of
// offered loads and reports the throughput-latency curve per policy and
// cluster size: offered vs achieved requests/s, goodput (responses
// within the SLO per second), shed/expired counts, and p50/p99/p999
// wall-clock latency from the bounded histogram. Unlike every other
// experiment this one measures the *serving* layer under real
// wall-clock arrivals — the schedule is deterministic (seed-split per
// point), the measured latencies are operational.
//
// Each swept cluster size deploys one server (every workload compiled
// and NVMe-deployed once, then pool-forked per request); each (policy,
// load) point replays a fresh deterministic schedule against it and
// accounts responses client-side in per-collector histograms merged at
// the end — the merge-exactness of histo is what makes that sound.
func (e *Experiments) LatencyCurve(opts LatencyOptions) (*Table, error) {
	opts.defaults()
	for _, p := range opts.Policies {
		if !KnownPolicy(p) {
			return nil, errUnknownPolicy(p)
		}
	}
	names := opts.Workloads
	if len(names) == 0 {
		for _, w := range workloads.All(1) {
			names = append(names, w.Name)
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("Latency: open-loop %s arrivals, SLO %v, %v per point", opts.Arrival, opts.SLO, opts.Duration),
		"policy", "shards", "offered_qps", "achieved_qps", "goodput_qps",
		"shed", "expired", "p50_ms", "p99_ms", "p999_ms")
	point := 0
	for _, shards := range opts.Shards {
		srv := NewServer(e.sys.cfg, ServeOptions{
			Concurrency: opts.Concurrency,
			QueueDepth:  opts.QueueDepth,
			Prefork:     opts.Prefork,
		})
		mix, err := registerMix(srv, names, e.scale, shards)
		if err != nil {
			srv.Drain()
			return nil, err
		}
		if len(mix) == 0 {
			srv.Drain()
			continue // every workload is too small for this cluster size
		}
		for _, policy := range opts.Policies {
			for _, load := range opts.Loads {
				schedule, err := loadgen.Generate(loadgen.Spec{
					Arrival:   opts.Arrival,
					QPS:       load,
					Duration:  opts.Duration,
					Seed:      loadgen.Stream(opts.Seed, uint64(point)),
					Tenants:   4,
					Workloads: mix,
					Policies:  []string{policy},
					SLO:       opts.SLO,
				})
				point++
				if err != nil {
					srv.Drain()
					return nil, err
				}
				pt := servePoint(srv, schedule, load)
				sec := pt.elapsed.Seconds()
				t.AddRowf(policy, shards, pt.offered,
					float64(pt.served)/sec,
					float64(pt.attained)/sec,
					pt.shed, pt.expired,
					float64(pt.wall.P50())/1e6,
					float64(pt.wall.P99())/1e6,
					float64(pt.wall.P999())/1e6)
			}
		}
		srv.Drain()
	}
	return t, nil
}

// registerMix registers each named workload on srv (sharded when shards
// > 1), skipping workloads the cluster planner rejects as too small to
// shard that wide, and returns the names actually registered.
func registerMix(srv *Server, names []string, scale, shards int) ([]string, error) {
	var mix []string
	for _, name := range names {
		w, ok := workloads.Find(name, scale)
		if !ok {
			return nil, fmt.Errorf("conduit: unknown workload %q", name)
		}
		var err error
		if shards > 1 {
			err = srv.RegisterSharded(w.Name, w.Source, shards)
			if errors.Is(err, ErrTooManyShards) {
				continue
			}
		} else {
			err = srv.Register(w.Name, w.Source)
		}
		if err != nil {
			return nil, fmt.Errorf("register %s at %d shards: %w", w.Name, shards, err)
		}
		mix = append(mix, w.Name)
	}
	return mix, nil
}

// servePoint replays one schedule against srv open-loop and accounts the
// responses client-side: submissions pace off the schedule's wall-clock
// arrivals, responses drain into per-collector histograms (merged after
// the point — exact, by histo's merge algebra), and shed submissions
// count against goodput.
func servePoint(srv *Server, schedule []loadgen.Event, offered float64) latencyPoint {
	const collectors = 4
	type collector struct {
		wall              *histo.Histogram
		served            int64
		expired, attained int64
	}
	// Sized for the whole schedule so the issue callback can never block
	// on a slow collector: back-pressure here would delay scheduled
	// arrivals and silently turn the open-loop measurement closed-loop.
	chans := make(chan (<-chan *Response), len(schedule))
	var workers [collectors]collector
	var wg sync.WaitGroup
	for i := range workers {
		c := &workers[i]
		c.wall = histo.New()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ch := range chans {
				resp := <-ch
				if errors.Is(resp.Err, ErrDeadlineExceeded) {
					c.expired++
					continue
				}
				if resp.Err != nil {
					continue
				}
				// The curve reports service latency: only executed
				// responses enter the histogram (an expired drop's
				// "latency" is just its queue wait).
				c.served++
				c.wall.Add(resp.Latency.Nanoseconds())
				if resp.Request.Deadline == 0 || resp.Latency <= resp.Request.Deadline {
					c.attained++
				}
			}
		}()
	}

	pt := latencyPoint{offered: offered, wall: histo.New()}
	start := time.Now()
	loadgen.Replay(schedule, 1, func(ev loadgen.Event) {
		ch, err := srv.Submit(Request{
			Tenant: ev.Tenant, Workload: ev.Workload, Policy: ev.Policy, Deadline: ev.Deadline,
		})
		if err != nil {
			pt.shed++ // ErrOverloaded: shed at the door, never executed
			return
		}
		chans <- ch
	})
	close(chans)
	wg.Wait()
	pt.elapsed = time.Since(start)
	for i := range workers {
		pt.wall.Merge(workers[i].wall)
		pt.served += workers[i].served
		pt.expired += workers[i].expired
		pt.attained += workers[i].attained
	}
	return pt
}
