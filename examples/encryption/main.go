// Encryption example: run the AES workload (14-round, bitwise-dominated,
// high reuse — the paper's flagship in-flash-friendly application) across
// every execution policy and print the speedup-over-CPU column of
// Fig. 7(a) for it, plus the result of reading the ciphertext back over
// the NVMe path.
//
//	go run ./examples/encryption
package main

import (
	"fmt"
	"log"

	conduit "conduit"
	"conduit/internal/workloads"
)

func main() {
	const scale = 2
	src := workloads.AES(scale)
	cfg := conduit.DefaultConfig()
	compiled, err := conduit.Compile(src, &cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AES: %d instructions, %.0f%% vectorizable\n\n",
		len(compiled.Prog.Insts), compiled.Report.VectorizablePercent())

	sys := conduit.NewSystem(cfg)
	var cpu conduit.Time
	fmt.Printf("%-15s %-12s %-10s %s\n", "policy", "elapsed", "speedup", "energy vs CPU")
	var cpuEnergy float64
	for _, policy := range conduit.Policies() {
		res, err := sys.RunCompiled(compiled, policy)
		if err != nil {
			log.Fatal(err)
		}
		if policy == "CPU" {
			cpu = res.Elapsed
			cpuEnergy = res.TotalEnergy()
		}
		fmt.Printf("%-15s %-12v %-10.2f %.3f\n",
			policy, res.Elapsed, float64(cpu)/float64(res.Elapsed),
			res.TotalEnergy()/cpuEnergy)
	}

	// Verify the in-SSD ciphertext equals the host CPU's result: the
	// functional reference system computes real bytes on every substrate
	// (the default timing-only system elides payloads entirely).
	conduitRun, err := conduit.NewReferenceSystem(cfg).RunCompiled(compiled, "Conduit")
	if err != nil {
		log.Fatal(err)
	}
	statePages := compiled.ArrayPages("state")
	got, err := conduitRun.Device.PageBytes(statePages[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst ciphertext bytes (in-SSD): % x ...\n", got[:16])
}
