// Stencil example: the polybench heat-3d and jacobi-1d solvers — the
// workloads where GPU and PuD-SSD shine and where the cost-function
// ablation is most visible. The example sweeps the flash-channel count to
// show sensitivity to SSD-internal parallelism, then prints the
// cost-function ablation.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	conduit "conduit"
	"conduit/internal/workloads"
)

func main() {
	const scale = 2
	cfg := conduit.DefaultConfig()

	for _, w := range []struct {
		name string
		src  *conduit.Source
	}{
		{"heat-3d", workloads.Heat3D(scale)},
		{"jacobi-1d", workloads.Jacobi1D(scale)},
	} {
		compiled, err := conduit.Compile(w.src, &cfg)
		if err != nil {
			log.Fatal(err)
		}
		sys := conduit.NewSystem(cfg)
		fmt.Printf("== %s (%d instructions) ==\n", w.name, len(compiled.Prog.Insts))
		var cpu conduit.Time
		for _, policy := range []string{"CPU", "GPU", "PuD-SSD", "DM-Offloading", "Conduit"} {
			res, err := sys.RunCompiled(compiled, policy)
			if err != nil {
				log.Fatal(err)
			}
			if policy == "CPU" {
				cpu = res.Elapsed
			}
			fmt.Printf("  %-15s elapsed=%-10v speedup=%.2f\n",
				policy, res.Elapsed, float64(cpu)/float64(res.Elapsed))
		}
		fmt.Println()
	}

	e := conduit.NewExperiments(conduit.DefaultConfig(), scale)
	ablation, err := e.AblationCostFeatures()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ablation)
	channels, err := e.AblationChannels()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(channels)
}
