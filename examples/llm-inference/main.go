// LLM inference example: the INT8 LLaMA2-style decode workload whose
// execution trace the paper dissects in §6.5/Fig. 10. This example runs it
// under the three dynamic offloading policies and renders the
// instruction-to-resource strips, showing how Conduit routes
// multiplication-heavy attention phases differently from the priors.
//
//	go run ./examples/llm-inference
package main

import (
	"fmt"
	"log"

	conduit "conduit"
)

func main() {
	e := conduit.NewExperiments(conduit.DefaultConfig(), 2)

	fmt.Println("running LLaMA2 inference under BW-Offloading, DM-Offloading, Conduit...")
	tab, err := e.Fig10(6000, 72)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab)
	fmt.Println("strip legend: I = ISP core, P = PuD-SSD, F = in-flash;")
	fmt.Println("op strip:     a = arithmetic, b = bitwise, p = predication, m = move, c = control")

	fmt.Println()
	for _, p := range []string{"CPU", "GPU", "DM-Offloading", "Conduit"} {
		r, err := e.Run("LlaMA2 Inference", p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s elapsed=%-10v p99=%-10v p99.99=%v\n",
			p, r.Elapsed, r.InstLatencies.P99(), r.InstLatencies.P9999())
	}
}
