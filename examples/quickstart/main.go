// Quickstart: write a small data-parallel kernel as loop nests, let
// Conduit's compiler auto-vectorize it, and run it on the simulated SSD
// under the Conduit offloading policy — then compare against the host CPU.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	conduit "conduit"
)

func main() {
	const n = 8 * 16384 // eight 16 KiB pages of INT8 lanes

	// Application data: a table of scores and a bitmask of valid entries.
	scores := make([]byte, n)
	valid := make([]byte, n)
	for i := range scores {
		scores[i] = byte(i * 37)
		if i%3 != 0 {
			valid[i] = 0xFF
		}
	}

	// The application, written as plain loops over arrays — no Conduit
	// API beyond declaring the data. This is the programmer-transparency
	// claim: the same code shape an auto-vectorizer sees.
	src := &conduit.Source{
		Name: "quickstart",
		Arrays: []*conduit.Array{
			{Name: "scores", Elem: 1, Len: n, Input: true, Data: scores},
			{Name: "valid", Elem: 1, Len: n, Input: true, Data: valid},
			{Name: "boosted", Elem: 1, Len: n},
		},
		Stmts: []conduit.Stmt{
			// boosted[i] = valid[i] ? min(scores[i]*2+1, 200) : 0
			conduit.Loop{Name: "boost", N: n, Body: []conduit.Assign{
				{Target: "boosted", Value: conduit.Cond{
					Mask: conduit.Ref{Name: "valid"},
					A: conduit.Bin{Op: conduit.OpMin,
						X: conduit.Bin{Op: conduit.OpAdd,
							X: conduit.Bin{Op: conduit.OpMul, X: conduit.Ref{Name: "scores"}, Y: conduit.Lit{Value: 2}},
							Y: conduit.Lit{Value: 1}},
						Y: conduit.Lit{Value: 200}},
					B: conduit.Lit{Value: 0},
				}},
			}},
		},
	}

	cfg := conduit.DefaultConfig()
	compiled, err := conduit.Compile(src, &cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d vector instructions (%.0f%% of the code vectorized)\n",
		len(compiled.Prog.Insts), compiled.Report.VectorizablePercent())

	sys := conduit.NewSystem(cfg)
	for _, policy := range []string{"CPU", "Conduit"} {
		res, err := sys.RunCompiled(compiled, policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s elapsed=%-10v energy=%.2gJ", policy, res.Elapsed, res.TotalEnergy())
		if len(res.Decisions) > 0 {
			fr := conduit.Fractions(res.Decisions)
			fmt.Printf("  offloaded: ISP %.0f%%  PuD-SSD %.0f%%  IFP %.0f%%",
				100*fr[0], 100*fr[1], 100*fr[2])
		}
		fmt.Println()
	}
}
