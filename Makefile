# Developer entry points. CI runs the same commands; see
# .github/workflows/ci.yml.

GOBIN := $(shell go env GOPATH)/bin

.PHONY: all build test test-oracle race lint bench fmt

all: build lint test

build:
	go build ./...

test:
	go test ./...

# test-oracle runs the differential suites that pin the fast engine to
# its reference implementations under the race detector: the sim
# package's property/differential tests (bucket engine vs heap engine,
# ReserveBatch vs Reserve loop, via internal/sim/simtest), the
# top-level golden identity tests (timing-only fast path vs functional
# reference system, byte for byte), and the wire tier's multi-process
# equivalence harness (routed fleet vs in-process Server.Submit, byte
# for byte, plus drain-under-traffic and fault-replay determinism).
test-oracle:
	go test -race ./internal/sim/...
	go test -race -run 'FastVsReference|ToReference' .
	go test -race ./internal/wire ./internal/router ./internal/wiretest

race:
	go test -race ./...

# lint builds the repo's own analyzer suite and runs it through the
# standard vet driver, so diagnostics integrate with go's build cache
# and package loading. `go run ./cmd/conduitlint ./...` works too (a
# standalone mode that needs no install), but this is the checked form:
# CI fails on any diagnostic not covered by the committed allowlist in
# internal/lint/allow/conduitlint.allow.
lint:
	go install ./cmd/conduitlint
	go vet -vettool=$(GOBIN)/conduitlint ./...

fmt:
	gofmt -w .

bench:
	./scripts/bench.sh
