package conduit_test

// The serve benchmarks quantify the serving engine against the naive
// alternative on the same request stream:
//
//	go test -bench=Serve -benchtime=1x
//
// BenchmarkServeNaivePerRequestDeploy answers every request the way the
// seed code could: a full NVMe deploy (per-page I/O writes + chunked
// fw-download + fw-commit) followed by the run, one request at a time.
// BenchmarkServePooled serves the identical stream through a Server:
// one deploy per workload ever, requests dispatched concurrently over
// pre-forked pool-managed clones. Responses are byte-identical across the
// two paths (see TestServeConcurrentMatchesSerial).

import (
	"testing"

	conduit "conduit"
)

// servePolicies is the request mix both serve benchmarks draw from.
var servePolicies = []string{"Conduit", "DM-Offloading", "BW-Offloading"}

// servingSource models the shape request serving exists for: a large
// resident dataset (deployed to the drive once) against which each request
// runs a comparatively small kernel. The naive path re-ships the whole
// dataset over the NVMe deploy path on every request; the served path
// ships it once and restores pool-managed clones.
func servingSource(datasetPages, kernelLanes int) *conduit.Source {
	const lanes = 16 << 10
	data := make([]byte, datasetPages*lanes)
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	return &conduit.Source{
		Name: "serving",
		Arrays: []*conduit.Array{
			{Name: "dataset", Elem: 1, Len: len(data), Input: true, Data: data},
			{Name: "out", Elem: 1, Len: kernelLanes},
		},
		Stmts: []conduit.Stmt{
			conduit.Loop{Name: "probe", N: kernelLanes, Body: []conduit.Assign{
				{Target: "out", Value: conduit.Bin{Op: conduit.OpXor,
					X: conduit.Bin{Op: conduit.OpMul, X: conduit.Ref{Name: "dataset"}, Y: conduit.Lit{Value: 3}},
					Y: conduit.Lit{Value: 0xA5}}},
			}},
		},
	}
}

func BenchmarkServeNaivePerRequestDeploy(b *testing.B) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	c, err := conduit.Compile(servingSource(64, 2*16384), &cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunCompiled(c, servePolicies[i%len(servePolicies)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeOpenLoopSubmit measures the open-loop serving path at
// saturation: b.N requests submitted back-to-back without pacing (the
// queue is sized so nothing sheds), then every response collected. It is
// the per-request cost ceiling of the Submit/notify/histogram-accounting
// machinery on top of the same pooled execution BenchmarkServePooled
// measures closed-loop.
func BenchmarkServeOpenLoopSubmit(b *testing.B) {
	cfg := conduit.DefaultConfig()
	c, err := conduit.Compile(servingSource(64, 2*16384), &cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Waves keep the submitted-but-undrained window under the queue
	// depth, so saturation never trips the shedding this benchmark is
	// not measuring.
	const wave = 4096
	srv := conduit.NewServer(cfg, conduit.ServeOptions{
		Concurrency: 2, QueueDepth: 2 * wave, Prefork: 2,
	})
	if err := srv.RegisterCompiled("serving", c); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	chans := make([]<-chan *conduit.Response, 0, wave)
	for submitted := 0; submitted < b.N; {
		n := wave
		if rest := b.N - submitted; rest < n {
			n = rest
		}
		chans = chans[:0]
		for i := 0; i < n; i++ {
			ch, err := srv.Submit(conduit.Request{
				Tenant:   "bench",
				Workload: "serving",
				Policy:   servePolicies[(submitted+i)%len(servePolicies)],
			})
			if err != nil {
				b.Fatal(err)
			}
			chans = append(chans, ch)
		}
		for _, ch := range chans {
			if resp := <-ch; resp.Err != nil {
				b.Fatal(resp.Err)
			}
		}
		submitted += n
	}
	b.StopTimer()
	srv.Drain()
}

// BenchmarkServeFaultFree is the zero-overhead pin for the fault-tolerant
// dispatch path: the same open-loop stream as BenchmarkServeOpenLoopSubmit,
// but served through a Server with the whole chaos and recovery stack
// enabled at zero injection rate. The resilient dispatcher sits on the hot
// path for every request (draws from the injector, consults the breaker),
// so this bench is what keeps that tax at noise level — compare against
// BenchmarkServeOpenLoopSubmit.
func BenchmarkServeFaultFree(b *testing.B) {
	cfg := conduit.DefaultConfig()
	c, err := conduit.Compile(servingSource(64, 2*16384), &cfg)
	if err != nil {
		b.Fatal(err)
	}
	const wave = 4096
	faults := conduit.FaultConfig{Seed: 7} // all rates zero
	srv := conduit.NewServer(cfg, conduit.ServeOptions{
		Concurrency: 2, QueueDepth: 2 * wave, Prefork: 2,
		Faults: &faults,
		Recovery: conduit.RecoveryOptions{
			MaxAttempts:      3,
			Hedge:            true,
			HedgeThreshold:   8,
			BreakerThreshold: 4,
			FallbackPolicy:   "CPU",
		},
	})
	if err := srv.RegisterCompiled("serving", c); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	chans := make([]<-chan *conduit.Response, 0, wave)
	for submitted := 0; submitted < b.N; {
		n := wave
		if rest := b.N - submitted; rest < n {
			n = rest
		}
		chans = chans[:0]
		for i := 0; i < n; i++ {
			ch, err := srv.Submit(conduit.Request{
				Tenant:   "bench",
				Workload: "serving",
				Policy:   servePolicies[(submitted+i)%len(servePolicies)],
			})
			if err != nil {
				b.Fatal(err)
			}
			chans = append(chans, ch)
		}
		for _, ch := range chans {
			if resp := <-ch; resp.Err != nil {
				b.Fatal(resp.Err)
			}
		}
		submitted += n
	}
	b.StopTimer()
	srv.Drain()
}

// BenchmarkServeTraceOff is the zero-overhead pin for the tracing seam:
// the same open-loop stream as BenchmarkServeOpenLoopSubmit, served
// through a Server with a tracer armed but sampling off — the
// configuration every fleet target runs in. The disabled path is one
// sampling check at admission; compare against
// BenchmarkServeOpenLoopSubmit to hold it at noise.
func BenchmarkServeTraceOff(b *testing.B) {
	cfg := conduit.DefaultConfig()
	c, err := conduit.Compile(servingSource(64, 2*16384), &cfg)
	if err != nil {
		b.Fatal(err)
	}
	const wave = 4096
	srv := conduit.NewServer(cfg, conduit.ServeOptions{
		Concurrency: 2, QueueDepth: 2 * wave, Prefork: 2,
		Trace: &conduit.TraceOptions{},
	})
	if err := srv.RegisterCompiled("serving", c); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	chans := make([]<-chan *conduit.Response, 0, wave)
	for submitted := 0; submitted < b.N; {
		n := wave
		if rest := b.N - submitted; rest < n {
			n = rest
		}
		chans = chans[:0]
		for i := 0; i < n; i++ {
			ch, err := srv.Submit(conduit.Request{
				Tenant:   "bench",
				Workload: "serving",
				Policy:   servePolicies[(submitted+i)%len(servePolicies)],
			})
			if err != nil {
				b.Fatal(err)
			}
			chans = append(chans, ch)
		}
		for _, ch := range chans {
			if resp := <-ch; resp.Err != nil {
				b.Fatal(resp.Err)
			}
		}
		submitted += n
	}
	b.StopTimer()
	srv.Drain()
}

func BenchmarkServePooled(b *testing.B) {
	cfg := conduit.DefaultConfig()
	c, err := conduit.Compile(servingSource(64, 2*16384), &cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv := conduit.NewServer(cfg, conduit.ServeOptions{Concurrency: 2, Prefork: 2})
	if err := srv.RegisterCompiled("serving", c); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := conduit.Request{
			Tenant:   "bench",
			Workload: "serving",
			Policy:   servePolicies[i%len(servePolicies)],
		}
		if _, err := srv.Do(req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	srv.Drain()
}
