package conduit_test

import (
	"reflect"
	"sync"
	"testing"

	conduit "conduit"
	"conduit/internal/workloads"
)

// TestSharedResultConcurrentPercentiles: memoized grid cells hand the
// same *RunResult to every caller, and percentile queries sort lazily —
// concurrent readers of a shared result must be race-free (run with
// -race).
func TestSharedResultConcurrentPercentiles(t *testing.T) {
	e := conduit.NewExperiments(conduit.DefaultConfig(), 1)
	e.SetWorkers(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := e.Run("jacobi-1d", "Conduit")
			if err != nil {
				t.Error(err)
				return
			}
			if r.InstLatencies.P99() > r.InstLatencies.P9999() {
				t.Error("p99 above p99.99")
			}
			_ = r.InstLatencies.Mean()
			_ = r.InstLatencies.Max()
		}()
	}
	wg.Wait()
}

// sweepWorkloads / sweepPolicies keep the determinism sweep small enough
// to run under -race on every CI push while still covering host, ideal,
// and every in-SSD resource class.
var sweepPolicies = []string{"CPU", "ISP", "Ares-Flash", "DM-Offloading", "Conduit", "Ideal"}

func sweepWorkloads(e *conduit.Experiments) []string {
	ws := e.Workloads()
	if len(ws) > 3 {
		ws = ws[:3]
	}
	return ws
}

// resultKey flattens the fields of a RunResult that experiments consume
// into a comparable snapshot.
type resultKey struct {
	Policy         string
	Elapsed        conduit.Time
	ComputeEnergy  float64
	MovementEnergy float64
	OverheadTime   conduit.Time
	LatCount       int
	LatSum         conduit.Time
	LatP99         conduit.Time
	LatP9999       conduit.Time
	Decisions      []conduit.Decision
}

func keyOf(r *conduit.RunResult) resultKey {
	return resultKey{
		Policy:         r.Policy,
		Elapsed:        r.Elapsed,
		ComputeEnergy:  r.ComputeEnergy,
		MovementEnergy: r.MovementEnergy,
		OverheadTime:   r.OverheadTime,
		LatCount:       r.InstLatencies.Count(),
		LatSum:         r.InstLatencies.Sum(),
		LatP99:         r.InstLatencies.P99(),
		LatP9999:       r.InstLatencies.P9999(),
		Decisions:      r.Decisions,
	}
}

// TestParallelGridMatchesSerialSweep is the tentpole determinism
// guarantee: the worker-pool, snapshot-restoring RunGrid engine must
// produce RunResult tables byte-identical to the serial seed path (a full
// fresh NVMe deploy per cell via System.RunCompiled). Run with -race to
// also exercise the concurrency contract.
func TestParallelGridMatchesSerialSweep(t *testing.T) {
	cfg := conduit.DefaultConfig()

	// Serial reference: fresh deploy per cell, strictly sequential.
	sys := conduit.NewSystem(cfg)
	e := conduit.NewExperiments(cfg, 1)
	ws := sweepWorkloads(e)
	serial := make(map[string]resultKey)
	for _, w := range ws {
		c := compiledWorkload(t, sys, w)
		for _, p := range sweepPolicies {
			r, err := sys.RunCompiled(c, p)
			if err != nil {
				t.Fatalf("serial %s/%s: %v", w, p, err)
			}
			serial[w+"|"+p] = keyOf(r)
		}
	}

	// Parallel engine: one deploy per workload, snapshot-restored runs
	// across 4 workers.
	e.SetWorkers(4)
	grid, err := e.RunGrid(ws, sweepPolicies)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		for j, p := range sweepPolicies {
			got := keyOf(grid[i][j])
			want := serial[w+"|"+p]
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s under %s: parallel grid differs from serial sweep\n got: %+v\nwant: %+v",
					w, p, got, want)
			}
		}
	}

	// The grid is memoized: a second pass returns identical values.
	again, err := e.RunGrid(ws, sweepPolicies)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ws {
		for j := range sweepPolicies {
			if again[i][j] != grid[i][j] {
				t.Fatalf("memoized grid cell %d/%d was re-run", i, j)
			}
		}
	}
}

// TestDeploymentAmortizesDeploys: a Deployment runs many policies off one
// NVMe deploy, each matching the fresh-deploy result exactly, and
// concurrent Runs on one Deployment are safe (exercised under -race).
func TestDeploymentAmortizesDeploys(t *testing.T) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	c, err := conduit.Compile(quickstartSource(2*16384), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}

	type out struct {
		key resultKey
		err error
	}
	results := make([]out, len(sweepPolicies))
	done := make(chan int)
	for i, p := range sweepPolicies {
		go func(i int, p string) {
			r, err := dep.Run(p)
			if err == nil {
				results[i] = out{key: keyOf(r)}
			} else {
				results[i] = out{err: err}
			}
			done <- i
		}(i, p)
	}
	for range sweepPolicies {
		<-done
	}
	for i, p := range sweepPolicies {
		if results[i].err != nil {
			t.Fatalf("%s: %v", p, results[i].err)
		}
		fresh, err := sys.RunCompiled(c, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i].key, keyOf(fresh)) {
			t.Errorf("%s: deployment run differs from fresh-deploy run", p)
		}
	}
}

// compiledWorkload compiles the named evaluation workload at scale 1,
// mirroring the harness's compile path.
func compiledWorkload(t *testing.T, sys *conduit.System, name string) *conduit.Compiled {
	t.Helper()
	cfg := sys.Config()
	for _, w := range workloads.All(1) {
		if w.Name == name {
			c, err := conduit.Compile(w.Source, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
	}
	t.Fatalf("unknown workload %q", name)
	return nil
}
