package conduit_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// paper-vs-measured results). Each bench prints its table once, then
// reports the wall-time of regenerating it:
//
//	go test -bench=. -benchmem
//
// benchScale sets the workload sizes; raise it (-ldflags is not needed,
// the experiments CLI accepts -scale) for longer, closer-to-paper streams.

import (
	"fmt"
	"testing"

	conduit "conduit"
	"conduit/internal/workloads"
)

const benchScale = 2

// benchHarness memoizes one Experiments instance per scale across benches
// so shared sweeps (Figs. 5/7a/7b/9) run once.
var benchHarness = map[int]*conduit.Experiments{}

func harness(scale int) *conduit.Experiments {
	if e, ok := benchHarness[scale]; ok {
		return e
	}
	e := conduit.NewExperiments(conduit.DefaultConfig(), scale)
	benchHarness[scale] = e
	return e
}

func benchTable(b *testing.B, fn func() (*conduit.Table, error)) {
	b.Helper()
	tab, err := fn()
	if err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + tab.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Characteristics regenerates Table 3 (workload
// characteristics: vectorizable %, reuse, op mix).
func BenchmarkTable3Characteristics(b *testing.B) {
	benchTable(b, harness(benchScale).Table3)
}

// BenchmarkFig4CaseStudy regenerates Fig. 4 (the §3.1 case study: OSP vs
// ISP vs IFP vs naive IFP+ISP per workload class).
func BenchmarkFig4CaseStudy(b *testing.B) {
	benchTable(b, harness(benchScale).Fig4)
}

// BenchmarkFig5Motivation regenerates Fig. 5 (speedups of the prior
// techniques and Ideal over CPU, §3.2).
func BenchmarkFig5Motivation(b *testing.B) {
	benchTable(b, harness(benchScale).Fig5)
}

// BenchmarkFig7aSpeedup regenerates Fig. 7(a) (speedup over CPU with
// Conduit, §6.1).
func BenchmarkFig7aSpeedup(b *testing.B) {
	benchTable(b, harness(benchScale).Fig7a)
}

// BenchmarkFig7bEnergy regenerates Fig. 7(b) (energy normalized to CPU
// with the movement share, §6.2).
func BenchmarkFig7bEnergy(b *testing.B) {
	benchTable(b, harness(benchScale).Fig7b)
}

// BenchmarkFig8TailLatency regenerates Fig. 8 (p99/p99.99 latencies of
// Ideal/Conduit/BW/DM on LLaMA2 inference and jacobi-1d, §6.3).
func BenchmarkFig8TailLatency(b *testing.B) {
	benchTable(b, harness(benchScale).Fig8)
}

// BenchmarkFig9OffloadingDecisions regenerates Fig. 9 (fraction of
// instructions per computation resource, §6.4).
func BenchmarkFig9OffloadingDecisions(b *testing.B) {
	benchTable(b, harness(benchScale).Fig9)
}

// BenchmarkFig10Timeline regenerates Fig. 10 (the instruction-to-resource
// map over a window of LLaMA2 inference, §6.5).
func BenchmarkFig10Timeline(b *testing.B) {
	benchTable(b, func() (*conduit.Table, error) {
		return harness(benchScale).Fig10(12000, 72)
	})
}

// BenchmarkOverheadAnalysis regenerates the §4.5 runtime-overhead numbers.
func BenchmarkOverheadAnalysis(b *testing.B) {
	benchTable(b, harness(benchScale).Overhead)
}

// BenchmarkAblationCostFeatures regenerates the cost-function feature
// ablation (DESIGN.md ablation index).
func BenchmarkAblationCostFeatures(b *testing.B) {
	benchTable(b, harness(benchScale).AblationCostFeatures)
}

// BenchmarkAblationVectorWidth regenerates the vector-width/page-size
// sweep (the -force-vector-width design point of §4.3.1).
func BenchmarkAblationVectorWidth(b *testing.B) {
	benchTable(b, harness(benchScale).AblationVectorWidth)
}

// BenchmarkAblationChannels regenerates the flash-channel sweep.
func BenchmarkAblationChannels(b *testing.B) {
	benchTable(b, harness(benchScale).AblationChannels)
}

// --- Sweep engine ------------------------------------------------------------
//
// The two sweep benchmarks quantify the deploy-amortized, concurrent grid
// engine against the serial seed path on the same workload x policy grid:
//
//	go test -bench='Sweep' -benchtime=1x
//
// BenchmarkSweepSerialFullDeploy pays a complete NVMe deploy (per-page
// I/O writes + chunked fw-download + fw-commit) for every cell and runs
// cells one at a time. BenchmarkSweepGridSnapshot4Workers deploys each
// workload once, restores the post-deploy snapshot per policy, and
// executes cells on a 4-worker pool — the configuration the ISSUE's
// >=2x acceptance bar refers to. Results are byte-identical across the
// two paths (see TestParallelGridMatchesSerialSweep).

// sweepGridPolicies is the full Fig. 7 lineup the grid benches sweep.
var sweepGridPolicies = conduit.Policies()

func BenchmarkSweepSerialFullDeploy(b *testing.B) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	e := conduit.NewExperiments(cfg, 1)
	comp := make([]*conduit.Compiled, 0, len(e.Workloads()))
	for _, w := range e.Workloads() {
		c, err := compileWorkload(&cfg, w, 1)
		if err != nil {
			b.Fatal(err)
		}
		comp = append(comp, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range comp {
			for _, p := range sweepGridPolicies {
				if _, err := sys.RunCompiled(c, p); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkSweepGridSnapshot4Workers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// A fresh harness per iteration: the memo cache would otherwise
		// turn later iterations into lookups.
		e := conduit.NewExperiments(conduit.DefaultConfig(), 1)
		e.SetWorkers(4)
		if _, err := e.RunGrid(e.Workloads(), sweepGridPolicies); err != nil {
			b.Fatal(err)
		}
	}
}

func compileWorkload(cfg *conduit.Config, name string, scale int) (*conduit.Compiled, error) {
	for _, w := range workloads.All(scale) {
		if w.Name == name {
			return conduit.Compile(w.Source, cfg)
		}
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

// BenchmarkDeviceRunHot measures one full Conduit-policy device run at
// benchScale with the deploy amortized away (fork-per-iteration from a
// post-deploy master): the data-plane hot path the kernel and
// buffer-reuse work targets, free of NVMe-deploy noise. Run with
// -benchmem: allocs/op is the page-churn regression signal.
func BenchmarkDeviceRunHot(b *testing.B) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	c, err := compileWorkload(&cfg, "LlaMA2 Inference", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := sys.Deploy(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Run("Conduit"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOffloaderDecision measures the raw per-instruction offloading
// path (feature collection + policy + transformation) in host time —
// the engineering cost of the runtime half.
func BenchmarkOffloaderDecision(b *testing.B) {
	sys := conduit.NewSystem(conduit.DefaultConfig())
	src := quickstartSource(8 * 16384)
	cfg := sys.Config()
	c, err := conduit.Compile(src, &cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunCompiled(c, "Conduit"); err != nil {
			b.Fatal(err)
		}
	}
}
