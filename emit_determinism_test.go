package conduit_test

import (
	"strings"
	"testing"

	"conduit"
)

// TestTable3EmissionStable pins the report/CSV emission path end to end:
// two independently constructed harnesses must render Table 3 — the
// workload-characteristics table, which walks the compiler's array
// symbol table — byte-identically, in both the human table and CSV
// encodings. This is the regression test for the map-iteration-order
// class of bug: a range over an unsorted map anywhere on the path shows
// up here as row or aggregate drift between fresh processes' worth of
// state.
func TestTable3EmissionStable(t *testing.T) {
	render := func() (string, string) {
		e := conduit.NewExperiments(conduit.DefaultConfig(), 1)
		tab, err := e.Table3()
		if err != nil {
			t.Fatalf("Table3: %v", err)
		}
		var csv strings.Builder
		tab.CSV(&csv)
		return tab.String(), csv.String()
	}
	text1, csv1 := render()
	text2, csv2 := render()
	if text1 != text2 {
		t.Errorf("Table 3 text rendering differs between fresh harnesses:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
	if csv1 != csv2 {
		t.Errorf("Table 3 CSV differs between fresh harnesses:\n--- first ---\n%s\n--- second ---\n%s", csv1, csv2)
	}
	if !strings.Contains(csv1, "workload") {
		t.Fatalf("CSV missing header row:\n%s", csv1)
	}
}
