package conduit_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	conduit "conduit"
)

// This file is the golden fast-vs-reference identity suite: the
// timing-only fast path (NewSystem / NewExperiments) must render every
// figure byte-identically to the functional reference path
// (NewReferenceSystem / NewReferenceExperiments), which computes real
// page payloads on every substrate. Every modeled latency is
// data-independent, so the two paths are required to agree not just
// statistically but byte for byte — any drift means the fast path
// changed the model, not just its speed.

// assertIdentical renders one experiment table on a fresh fast harness
// and a fresh reference harness and requires both the text and the CSV
// encodings to match byte for byte.
func assertIdentical(t *testing.T, name string, run func(e *conduit.Experiments) (*conduit.Table, error)) {
	t.Helper()
	render := func(e *conduit.Experiments) (string, string) {
		tab, err := run(e)
		if err != nil {
			t.Fatal(err)
		}
		var csv strings.Builder
		tab.CSV(&csv)
		return tab.String(), csv.String()
	}
	fastText, fastCSV := render(conduit.NewExperiments(conduit.DefaultConfig(), 1))
	refText, refCSV := render(conduit.NewReferenceExperiments(conduit.DefaultConfig(), 1))
	if fastText != refText {
		t.Errorf("%s text rendering differs fast vs reference:\n--- fast ---\n%s\n--- reference ---\n%s", name, fastText, refText)
	}
	if fastCSV != refCSV {
		t.Errorf("%s CSV differs fast vs reference:\n--- fast ---\n%s\n--- reference ---\n%s", name, fastCSV, refCSV)
	}
}

// TestFig4ByteIdenticalFastVsReference pins the case-study figure: the
// full workload x policy sweep behind it must not notice whether the
// data plane carries payloads.
func TestFig4ByteIdenticalFastVsReference(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep on two harnesses")
	}
	assertIdentical(t, "Fig4",
		func(e *conduit.Experiments) (*conduit.Table, error) { return e.Fig4() })
}

// TestTable3ByteIdenticalFastVsReference pins the workload
// characteristics table (compiler-side, no device execution) the same
// way, closing the loop on the emission path.
func TestTable3ByteIdenticalFastVsReference(t *testing.T) {
	assertIdentical(t, "Table3",
		func(e *conduit.Experiments) (*conduit.Table, error) { return e.Table3() })
}

// TestClusterScalingByteIdenticalFastVsReference pins the multi-device
// scaling curve: sharded deploys, scatter-gather runs, and the merge
// arithmetic must all be payload-blind.
func TestClusterScalingByteIdenticalFastVsReference(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep on two harnesses")
	}
	assertIdentical(t, "ClusterScaling",
		func(e *conduit.Experiments) (*conduit.Table, error) {
			return e.ClusterScaling("Conduit", []int{1, 2})
		})
}

// TestClusterShardIdentityFastVsReference is the 1-shard/N-shard
// identity re-check on the fast engine: for each shard count, a cluster
// run on the timing-only system must match the same run on the
// functional reference system field for field — elapsed, energy,
// latency distribution, decision trace, and substrate counters.
func TestClusterShardIdentityFastVsReference(t *testing.T) {
	cfg := conduit.DefaultConfig()
	src := xorFilterSource(4 * 16384)
	for _, shards := range []int{1, 3} {
		fastCl, err := conduit.NewSystem(cfg).DeployCluster(src, conduit.ClusterOptions{Shards: shards})
		if err != nil {
			t.Fatalf("fast deploy at %d shards: %v", shards, err)
		}
		refCl, err := conduit.NewReferenceSystem(cfg).DeployCluster(src, conduit.ClusterOptions{Shards: shards})
		if err != nil {
			t.Fatalf("reference deploy at %d shards: %v", shards, err)
		}
		for _, policy := range []string{"Conduit", "Ares-Flash", "Ideal"} {
			fast, err := fastCl.Run(policy)
			if err != nil {
				t.Fatalf("%s fast at %d shards: %v", policy, shards, err)
			}
			ref, err := refCl.Run(policy)
			if err != nil {
				t.Fatalf("%s reference at %d shards: %v", policy, shards, err)
			}
			if !reflect.DeepEqual(keyOf(fast), keyOf(ref)) {
				t.Errorf("%s at %d shards: fast result differs from reference\n fast: %+v\n  ref: %+v",
					policy, shards, keyOf(fast), keyOf(ref))
			}
			if !reflect.DeepEqual(countersKey(fast.Counters), countersKey(ref.Counters)) {
				t.Errorf("%s at %d shards: fast counters differ from reference", policy, shards)
			}
		}
		fastCl.Close()
		refCl.Close()
	}
}

// TestServedResponseByteIdenticalToReference drives the serving stack
// (which always runs the timing-only fast path) and checks the served
// simulation result against a direct run on the functional reference
// system. This is the per-request identity that the LatencyCurve sweep
// aggregates; the rendered curve itself mixes in operational wall-clock
// latencies and so cannot be byte-compared across processes.
func TestServedResponseByteIdenticalToReference(t *testing.T) {
	cfg := conduit.DefaultConfig()
	src := quickstartSource(2 * 16384)
	c, err := conduit.Compile(src, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := conduit.NewReferenceSystem(cfg).RunCompiled(c, "Conduit")
	if err != nil {
		t.Fatal(err)
	}
	srv := conduit.NewServer(cfg, conduit.ServeOptions{Concurrency: 2, Prefork: 1})
	defer srv.Drain()
	if err := srv.RegisterCompiled("quickstart", c); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Do(conduit.Request{Tenant: "t", Workload: "quickstart", Policy: "Conduit"})
	if err != nil {
		t.Fatal(err)
	}
	if got := keyOf(conduit.ResultOf(resp)); !reflect.DeepEqual(got, keyOf(want)) {
		t.Errorf("served fast-path response differs from functional reference run\n got: %+v\nwant: %+v",
			got, keyOf(want))
	}
}

// TestZeroFaultServingByteIdenticalToReference extends the served
// identity to the fault-tolerant dispatch path: a server with the whole
// chaos and recovery stack enabled but every injection rate at zero must
// serve results byte-identical to a direct run on the functional
// reference system. This is the zero-overhead contract that licenses
// wiring the resilient dispatcher into the hot path at all.
func TestZeroFaultServingByteIdenticalToReference(t *testing.T) {
	cfg := conduit.DefaultConfig()
	src := quickstartSource(2 * 16384)
	c, err := conduit.Compile(src, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := conduit.NewReferenceSystem(cfg).RunCompiled(c, "Conduit")
	if err != nil {
		t.Fatal(err)
	}
	faults := conduit.FaultConfig{Seed: 99} // all rates zero
	srv := conduit.NewServer(cfg, conduit.ServeOptions{
		Concurrency: 2,
		Prefork:     1,
		Faults:      &faults,
		Recovery: conduit.RecoveryOptions{
			MaxAttempts:      3,
			Hedge:            true,
			BreakerThreshold: 4,
			FallbackPolicy:   "CPU",
		},
	})
	defer srv.Drain()
	if err := srv.RegisterCompiled("quickstart", c); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Do(conduit.Request{Tenant: "t", Workload: "quickstart", Policy: "Conduit"})
	if err != nil {
		t.Fatal(err)
	}
	if got := keyOf(conduit.ResultOf(resp)); !reflect.DeepEqual(got, keyOf(want)) {
		t.Errorf("zero-fault resilient response differs from functional reference run\n got: %+v\nwant: %+v",
			got, keyOf(want))
	}
	if log := srv.FaultLog(); len(log) != 0 {
		t.Errorf("zero-rate chaos injected %d faults", len(log))
	}
	rec := resp.Outcome.Recovery
	if rec.Retries != 0 || rec.Hedges != 0 || rec.Fallbacks != 0 || rec.BackoffSim != 0 {
		t.Errorf("zero-fault request accrued recovery costs: %+v", rec)
	}
}

// TestAvailabilityByteIdenticalFastVsReference pins the availability
// sweep the same way as the paper figures: chaos draws, recovery
// machinery, and the table rendering must all be payload-blind.
func TestAvailabilityByteIdenticalFastVsReference(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep on two harnesses")
	}
	assertIdentical(t, "Availability",
		func(e *conduit.Experiments) (*conduit.Table, error) {
			return e.Availability(conduit.AvailabilityOptions{
				Requests:   15,
				FaultRates: []float64{0, 0.1},
			})
		})
}

// TestLatencyCurveStructureIdenticalFastVsReference runs the open-loop
// sweep once per harness and compares the deterministic projection of
// the table: the header and the (policy, shards, offered) identity of
// every row. The measured columns are wall-clock operational values and
// differ run to run even on one engine, so they are excluded by
// construction, not by tolerance.
func TestLatencyCurveStructureIdenticalFastVsReference(t *testing.T) {
	if testing.Short() {
		t.Skip("open-loop wall-clock sweep")
	}
	opts := conduit.LatencyOptions{
		Workloads: []string{"AES"},
		Loads:     []float64{200},
		Duration:  50 * time.Millisecond,
		Prefork:   1,
	}
	shape := func(e *conduit.Experiments) []string {
		tab, err := e.LatencyCurve(opts)
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]string, 0, tab.NumRows())
		for r := 0; r < tab.NumRows(); r++ {
			rows = append(rows, tab.Cell(r, 0)+"|"+tab.Cell(r, 1)+"|"+tab.Cell(r, 2))
		}
		return rows
	}
	fast := shape(conduit.NewExperiments(conduit.DefaultConfig(), 1))
	ref := shape(conduit.NewReferenceExperiments(conduit.DefaultConfig(), 1))
	if !reflect.DeepEqual(fast, ref) {
		t.Errorf("latency sweep shape differs fast vs reference:\n fast: %v\n  ref: %v", fast, ref)
	}
}
