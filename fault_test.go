package conduit_test

import (
	"errors"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	conduit "conduit"
	"conduit/internal/workloads"
)

// mustWorkloadSource pulls an evaluation-suite workload source at smoke
// scale; the chaos tests use aes for its naturally skewed 2-shard plan.
func mustWorkloadSource(t *testing.T, name string) *conduit.Source {
	t.Helper()
	w, ok := workloads.Find(name, 1)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	return w.Source
}

// chaosServeOptions is the full-recovery chaos config the serving tests
// share: every seam injecting, every recovery mechanism on.
func chaosServeOptions(rate float64, seed uint64) conduit.ServeOptions {
	cfg := conduit.FaultsAtRate(rate, 4, seed)
	return conduit.ServeOptions{
		Concurrency: 1, // serial service: the outcome sequence is the determinism witness
		Prefork:     2,
		Faults:      &cfg,
		Recovery: conduit.RecoveryOptions{
			MaxAttempts:      3,
			Hedge:            true,
			HedgeThreshold:   8,
			BreakerThreshold: 4,
			FallbackPolicy:   "CPU",
		},
	}
}

// chaosOutcomes serves n identical sharded requests one by one and
// returns the per-request outcome transcript plus the fault log.
func chaosOutcomes(t *testing.T, opts conduit.ServeOptions, n int) ([]string, []conduit.Fault) {
	t.Helper()
	srv := conduit.NewServer(conduit.DefaultConfig(), opts)
	defer srv.Drain()
	if err := srv.RegisterSharded("aes", mustWorkloadSource(t, "aes"), 2); err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		resp, err := srv.Do(conduit.Request{Tenant: "t", Workload: "aes", Policy: "Conduit"})
		switch {
		case err != nil:
			out = append(out, "err:"+err.Error())
		default:
			r := conduit.ResultOf(resp)
			out = append(out, "ok:"+r.Elapsed.String()+
				"/retries="+strconv.FormatInt(resp.Outcome.Recovery.Retries, 10)+
				"/hedges="+strconv.FormatInt(resp.Outcome.Recovery.Hedges, 10))
		}
	}
	return out, srv.FaultLog()
}

// TestChaosDeterministicSameSeed: the same chaos seed and request
// sequence must yield an identical outcome transcript and an identical
// per-site fault schedule across two fresh servers.
func TestChaosDeterministicSameSeed(t *testing.T) {
	a, logA := chaosOutcomes(t, chaosServeOptions(0.1, 7), 25)
	b, logB := chaosOutcomes(t, chaosServeOptions(0.1, 7), 25)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged across identically seeded runs:\n a: %s\n b: %s", i, a[i], b[i])
		}
	}
	if len(logA) != len(logB) {
		t.Fatalf("fault log lengths diverged: %d vs %d", len(logA), len(logB))
	}
	// Serial service makes even the global injection order reproducible.
	for i := range logA {
		if logA[i] != logB[i] {
			t.Fatalf("fault %d diverged: %+v vs %+v", i, logA[i], logB[i])
		}
	}
	if len(logA) == 0 {
		t.Fatal("chaos run at 10% injected nothing; the test is vacuous")
	}
}

// TestChaosRecordReplayIdenticalOutcomes: replaying a recorded fault
// schedule (ServeOptions.ReplayFaults) against the same request sequence
// must reproduce the identical outcome transcript without consulting the
// chaos RNG at all — and re-record the identical schedule.
func TestChaosRecordReplayIdenticalOutcomes(t *testing.T) {
	recorded, log := chaosOutcomes(t, chaosServeOptions(0.1, 7), 25)
	opts := chaosServeOptions(0, 0)
	opts.Faults = nil
	opts.ReplayFaults = log
	replayed, relog := chaosOutcomes(t, opts, 25)
	for i := range recorded {
		if recorded[i] != replayed[i] {
			t.Fatalf("request %d: replay diverged from recording:\n recorded: %s\n replayed: %s",
				i, recorded[i], replayed[i])
		}
	}
	if len(relog) != len(log) {
		t.Fatalf("replay re-recorded %d faults, recording had %d", len(relog), len(log))
	}
}

// TestChaosFaultLogRoundTripsThroughFile: the JSONL record written by
// WriteFaultLog replays identically after a disk round trip.
func TestChaosFaultLogRoundTripsThroughFile(t *testing.T) {
	recorded, log := chaosOutcomes(t, chaosServeOptions(0.1, 11), 10)
	path := filepath.Join(t.TempDir(), "faults.jsonl")
	if err := conduit.WriteFaultLog(path, log); err != nil {
		t.Fatal(err)
	}
	loaded, err := conduit.ReadFaultLog(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosServeOptions(0, 0)
	opts.Faults = nil
	opts.ReplayFaults = loaded
	replayed, _ := chaosOutcomes(t, opts, 10)
	for i := range recorded {
		if recorded[i] != replayed[i] {
			t.Fatalf("request %d: file-replayed outcome diverged:\n recorded: %s\n replayed: %s",
				i, recorded[i], replayed[i])
		}
	}
}

// TestInjectedPanicContained: a certain-panic chaos config must surface
// as a per-request `shard N panicked` error — the process (and the
// serving workers) survive, matching the serve engine's containment
// contract.
func TestInjectedPanicContained(t *testing.T) {
	cfg := conduit.FaultConfig{Seed: 3, PanicRate: 1}
	srv := conduit.NewServer(conduit.DefaultConfig(), conduit.ServeOptions{
		Concurrency: 1,
		Prefork:     1,
		Faults:      &cfg,
	})
	defer srv.Drain()
	if err := srv.RegisterSharded("aes", mustWorkloadSource(t, "aes"), 2); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Do(conduit.Request{Tenant: "t", Workload: "aes", Policy: "Conduit"})
	if err == nil {
		t.Fatal("certain injected panic served successfully")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("injected panic surfaced as %q, want a contained `shard N panicked` error", err)
	}
	// The server is still alive, and host policies see only the dispatch
	// seam (rate 0 here): the follow-up CPU request must serve cleanly.
	if _, err := srv.Do(conduit.Request{Tenant: "t", Workload: "aes", Policy: "CPU"}); err != nil {
		t.Fatalf("CPU request after contained panic: %v", err)
	}
}

// TestBreakerFallbackServesThroughOpenCircuit: with every shard run
// failing, breakers must trip and the fallback policy must keep serving
// requests successfully.
func TestBreakerFallbackServesThroughOpenCircuit(t *testing.T) {
	cfg := conduit.FaultConfig{Seed: 5, ShardFail: 1}
	srv := conduit.NewServer(conduit.DefaultConfig(), conduit.ServeOptions{
		Concurrency: 1,
		Prefork:     1,
		Faults:      &cfg,
		Recovery: conduit.RecoveryOptions{
			MaxAttempts:      2,
			BreakerThreshold: 3,
			FallbackPolicy:   "CPU",
		},
	})
	defer srv.Drain()
	if err := srv.RegisterSharded("aes", mustWorkloadSource(t, "aes"), 2); err != nil {
		t.Fatal(err)
	}
	var served int
	for i := 0; i < 10; i++ {
		if _, err := srv.Do(conduit.Request{Tenant: "t", Workload: "aes", Policy: "Conduit"}); err == nil {
			served++
		}
	}
	if served == 0 {
		t.Fatal("no request served: breakers never degraded to the CPU fallback")
	}
	trips := int64(0)
	states := srv.Breakers()
	if len(states) == 0 {
		t.Fatal("no breaker state reported")
	}
	for _, b := range states {
		trips += b.Trips
	}
	if trips == 0 {
		t.Fatal("certain shard failure never tripped a breaker")
	}
	if total := srv.Total(); total.Recovery.Fallbacks == 0 {
		t.Error("served through open breakers without accounting any fallbacks")
	}
}

// TestPoolClosedAfterDrain pins the ErrPoolClosed satellite: a drained
// pool refuses Get (and therefore device-policy Runs) explicitly instead
// of silently cloning inline.
func TestPoolClosedAfterDrain(t *testing.T) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	c, err := conduit.Compile(mustWorkloadSource(t, "aes"), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	pool := dep.Prefork(2)
	dep.Close()
	if _, err := pool.Get(); !errors.Is(err, conduit.ErrPoolClosed) {
		t.Fatalf("Get on closed pool: err = %v, want ErrPoolClosed", err)
	}
	if _, err := dep.Run("Conduit"); !errors.Is(err, conduit.ErrPoolClosed) {
		t.Fatalf("device-policy Run on drained deployment: err = %v, want ErrPoolClosed", err)
	}
	// Host policies never touch the pool and must keep working.
	if _, err := dep.Run("CPU"); err != nil {
		t.Fatalf("host run after Close: %v", err)
	}
}

// TestPoolQuarantineRepairs pins the quarantine satellite: quarantining
// a poisoned fork counts it, and the repair (a background re-clone by
// the refiller) is accounted immediately.
func TestPoolQuarantineRepairs(t *testing.T) {
	cfg := conduit.DefaultConfig()
	sys := conduit.NewSystem(cfg)
	c, err := conduit.Compile(mustWorkloadSource(t, "aes"), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	pool := dep.Prefork(2)
	pool.Quarantine()
	st := pool.Stats()
	if st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", st.Quarantined)
	}
	if st.Repairs != 1 {
		t.Errorf("Repairs = %d, want 1", st.Repairs)
	}
	// The repaired pool still serves byte-identical forks.
	if _, err := dep.Run("Conduit"); err != nil {
		t.Fatalf("run after quarantine/repair: %v", err)
	}
}

// TestAvailabilityDeterministic: the availability sweep runs entirely in
// simulated time, so two fresh harnesses must render it byte-identically.
func TestAvailabilityDeterministic(t *testing.T) {
	opts := conduit.AvailabilityOptions{Requests: 20, FaultRates: []float64{0, 0.1}}
	render := func() (string, string) {
		tab, err := conduit.NewExperiments(conduit.DefaultConfig(), 1).Availability(opts)
		if err != nil {
			t.Fatal(err)
		}
		var csv strings.Builder
		tab.CSV(&csv)
		return tab.String(), csv.String()
	}
	aText, aCSV := render()
	bText, bCSV := render()
	if aText != bText {
		t.Errorf("availability text rendering differs across identical runs:\n--- a ---\n%s\n--- b ---\n%s", aText, bText)
	}
	if aCSV != bCSV {
		t.Errorf("availability CSV differs across identical runs")
	}
}

// TestAvailabilityRecoveryBeatsBaseline pins the headline robustness
// claim: at a 5% master fault rate the full recovery stack must serve
// strictly more requests successfully — and attain strictly more SLOs —
// than the no-recovery baseline.
func TestAvailabilityRecoveryBeatsBaseline(t *testing.T) {
	tab, err := conduit.NewExperiments(conduit.DefaultConfig(), 1).Availability(conduit.AvailabilityOptions{
		Requests:   100,
		FaultRates: []float64{0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	cell := func(row int, col int) float64 {
		v, err := strconv.ParseFloat(tab.Cell(row, col), 64)
		if err != nil {
			t.Fatalf("cell (%d,%d) %q: %v", row, col, tab.Cell(row, col), err)
		}
		return v
	}
	var base, full int = -1, -1
	for r := 0; r < tab.NumRows(); r++ {
		switch tab.Cell(r, 1) {
		case "none":
			base = r
		case "retry+hedge+breaker":
			full = r
		}
	}
	if base < 0 || full < 0 {
		t.Fatal("availability table is missing the none / retry+hedge+breaker rows")
	}
	const okCol, sloCol = 2, 3
	if cell(base, okCol) >= 100 {
		t.Fatalf("no-recovery baseline served %.1f%% at 5%% faults; chaos is not biting", cell(base, okCol))
	}
	if got, want := cell(full, okCol), cell(base, okCol); got <= want {
		t.Errorf("full recovery ok_pct = %.1f, not above baseline %.1f", got, want)
	}
	if got, want := cell(full, sloCol), cell(base, sloCol); got <= want {
		t.Errorf("full recovery slo_pct = %.1f, not above baseline %.1f", got, want)
	}
}
