package histo

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format for histogram snapshots (the per-target latency state the
// router merges into fleet-wide percentiles):
//
//	byte    codecVersion
//	uvarint count
//	uvarint sum                         (present only when count > 0)
//	uvarint min, uvarint max            (present only when count > 0)
//	uvarint nonzero-bucket entries
//	entries: uvarint index-delta, uvarint bucket-count
//
// Bucket indexes are delta-encoded in strictly ascending order (the
// first entry's delta is its absolute index), so the encoding of a
// histogram is canonical: equal histograms encode to equal bytes, and
// the decoder can enforce ordering as a validity check. All counts are
// non-negative by construction, so plain uvarints suffice.
const codecVersion = 1

// maxEncodedSize bounds any valid encoding: version byte plus four
// 10-byte uvarints plus one (delta, count) pair per bucket.
const maxEncodedSize = 1 + 4*10 + numBuckets*20

// AppendBinary appends the canonical encoding of h to b and returns the
// extended slice. The encoding is a pure function of the histogram's
// state: byte-equal encodings iff the histograms are equal.
func (h *Histogram) AppendBinary(b []byte) []byte {
	b = append(b, codecVersion)
	b = binary.AppendUvarint(b, uint64(h.count))
	if h.count == 0 {
		return binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(h.sum))
	b = binary.AppendUvarint(b, uint64(h.min))
	b = binary.AppendUvarint(b, uint64(h.max))
	nonzero := 0
	for _, c := range h.counts {
		if c != 0 {
			nonzero++
		}
	}
	b = binary.AppendUvarint(b, uint64(nonzero))
	prev := 0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		b = binary.AppendUvarint(b, uint64(i-prev))
		b = binary.AppendUvarint(b, uint64(c))
		prev = i
	}
	return b
}

// MarshalBinary returns the canonical encoding of h.
func (h *Histogram) MarshalBinary() []byte { return h.AppendBinary(nil) }

// errTruncated is the shared decode failure for inputs that end before
// the structure they promise.
var errTruncated = fmt.Errorf("histo: truncated encoding")

// uvarint reads one uvarint from b, returning the value and the rest.
func uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errTruncated
	}
	return v, b[n:], nil
}

// Decode parses a canonical encoding produced by AppendBinary. It
// validates strictly — version, bucket ordering and bounds, count
// arithmetic, min/max consistency, and exact input consumption — and
// never panics or allocates proportionally to attacker-controlled
// lengths (the histogram's storage is a fixed-size array). Adversarial
// inputs yield an error, not a corrupt histogram.
func Decode(b []byte) (*Histogram, error) {
	if len(b) == 0 {
		return nil, errTruncated
	}
	if b[0] != codecVersion {
		return nil, fmt.Errorf("histo: unknown codec version %d", b[0])
	}
	b = b[1:]
	count, b, err := uvarint(b)
	if err != nil {
		return nil, err
	}
	if count > math.MaxInt64 {
		return nil, fmt.Errorf("histo: implausible sample count %d", count)
	}
	h := New()
	h.count = int64(count)
	if count > 0 {
		var sum, min, max uint64
		if sum, b, err = uvarint(b); err != nil {
			return nil, err
		}
		if min, b, err = uvarint(b); err != nil {
			return nil, err
		}
		if max, b, err = uvarint(b); err != nil {
			return nil, err
		}
		// sum round-trips as raw int64 bits: with 2^63 samples near the
		// top of the value range the accumulated sum can wrap, and the
		// codec's job is to reproduce the histogram's state exactly, not
		// to relitigate it. min and max are clamped non-negative by Add,
		// so out-of-range values there are malformed input.
		if min > math.MaxInt64 || max > math.MaxInt64 {
			return nil, fmt.Errorf("histo: field overflows int64")
		}
		h.sum, h.min, h.max = int64(sum), int64(min), int64(max)
		if h.min > h.max {
			return nil, fmt.Errorf("histo: min %d > max %d", h.min, h.max)
		}
	}
	entries, b, err := uvarint(b)
	if err != nil {
		return nil, err
	}
	if entries > numBuckets {
		return nil, fmt.Errorf("histo: %d bucket entries exceed the %d-bucket layout", entries, numBuckets)
	}
	if count == 0 && entries != 0 {
		return nil, fmt.Errorf("histo: empty histogram with %d bucket entries", entries)
	}
	if count > 0 && entries == 0 {
		return nil, fmt.Errorf("histo: %d samples with no bucket entries", count)
	}
	idx, total := -1, uint64(0)
	for i := uint64(0); i < entries; i++ {
		var delta, c uint64
		if delta, b, err = uvarint(b); err != nil {
			return nil, err
		}
		if c, b, err = uvarint(b); err != nil {
			return nil, err
		}
		if c == 0 {
			return nil, fmt.Errorf("histo: zero-count bucket entry %d", i)
		}
		next := idx
		if i == 0 {
			next = int(delta)
		} else {
			if delta == 0 {
				return nil, fmt.Errorf("histo: bucket indexes not strictly ascending at entry %d", i)
			}
			if delta > uint64(numBuckets) {
				return nil, fmt.Errorf("histo: bucket delta %d out of range", delta)
			}
			next = idx + int(delta)
		}
		if next < 0 || next >= numBuckets {
			return nil, fmt.Errorf("histo: bucket index %d out of range", next)
		}
		total += c
		if total > count {
			return nil, fmt.Errorf("histo: bucket counts exceed sample count %d", count)
		}
		h.counts[next] = int64(c)
		idx = next
	}
	if total != count {
		return nil, fmt.Errorf("histo: bucket counts sum to %d, want %d", total, count)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("histo: %d trailing bytes after encoding", len(b))
	}
	if count > 0 {
		// The exact min/max must be consistent with the populated buckets:
		// each lies inside its own bucket's range, and those buckets are
		// the extremes of the occupied set.
		lo := bucketIndex(h.min)
		hi := bucketIndex(h.max)
		first, last := -1, -1
		for i, c := range h.counts {
			if c != 0 {
				if first < 0 {
					first = i
				}
				last = i
			}
		}
		if lo != first || hi != last {
			return nil, fmt.Errorf("histo: min/max inconsistent with occupied buckets")
		}
	}
	return h, nil
}
