package histo

import (
	"testing"

	"conduit/internal/sim"
)

// BenchmarkHistogramAdd is the per-sample accounting cost on the serving
// hot path (one Add per completed response, under the engine's
// accounting lock). It must stay allocation-free.
func BenchmarkHistogramAdd(b *testing.B) {
	h := New()
	rng := sim.NewRNG(1)
	samples := make([]int64, 4096)
	for i := range samples {
		samples[i] = int64(rng.Uint64() % (1 << 34))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(samples[i%len(samples)])
	}
}

// BenchmarkHistogramMerge folds two populated histograms — the
// per-collector aggregation step of the open-loop load generator.
func BenchmarkHistogramMerge(b *testing.B) {
	a := fillBench(1)
	o := fillBench(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Merge(o)
	}
}

func fillBench(seed uint64) *Histogram {
	h := New()
	rng := sim.NewRNG(seed)
	for i := 0; i < 10000; i++ {
		h.Add(int64(rng.Uint64() % (1 << 34)))
	}
	return h
}
