package histo

import (
	"bytes"
	"strings"
	"testing"

	"conduit/internal/sim"
)

// randomHisto fills a histogram with n samples drawn from a seeded RNG,
// mixing the linear range, mid tiers, and far tail so encodings cover
// sparse and dense bucket sets.
func randomHisto(seed uint64, n int) *Histogram {
	rng := sim.NewRNG(seed)
	h := New()
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			h.Add(int64(rng.Intn(subBuckets)))
		case 1:
			h.Add(int64(rng.Intn(1 << 20)))
		case 2:
			h.Add(int64(rng.Intn(1 << 40)))
		default:
			h.Add(int64(1)<<62 + int64(rng.Intn(1<<30)))
		}
	}
	return h
}

// roundTrip encodes h and decodes the bytes, failing the test on any
// codec error.
func roundTrip(t *testing.T, h *Histogram) *Histogram {
	t.Helper()
	dec, err := Decode(h.MarshalBinary())
	if err != nil {
		t.Fatalf("decode of canonical encoding failed: %v", err)
	}
	return dec
}

// TestCodecRoundTripExact: decode(encode(h)) reproduces every bucket,
// the exact min/max/sum/count, and therefore every quantile.
func TestCodecRoundTripExact(t *testing.T) {
	cases := []*Histogram{
		New(),
		randomHisto(1, 1),
		randomHisto(2, 10),
		randomHisto(3, 1000),
		randomHisto(4, 100000),
	}
	one := New()
	one.Add(0)
	cases = append(cases, one)
	for i, h := range cases {
		dec := roundTrip(t, h)
		if !h.equalTo(dec) {
			t.Errorf("case %d: decoded histogram differs from original", i)
		}
		// Canonical: re-encoding the decoded histogram reproduces the bytes.
		if !bytes.Equal(h.MarshalBinary(), dec.MarshalBinary()) {
			t.Errorf("case %d: re-encoding is not canonical", i)
		}
	}
}

// TestCodecMergeEqualsInProcessMerge is the wire-merge identity the
// router's fleet aggregation rests on: merging decoded snapshots is
// exactly merging the originals — same buckets, same count/sum/min/max,
// and therefore byte-identical canonical encodings.
func TestCodecMergeEqualsInProcessMerge(t *testing.T) {
	a, b := randomHisto(10, 5000), randomHisto(11, 3000)

	direct := a.Clone()
	direct.Merge(b)

	viaWire := roundTrip(t, a)
	viaWire.Merge(roundTrip(t, b))

	if !direct.equalTo(viaWire) {
		t.Fatal("merge of decoded snapshots differs from in-process merge")
	}
	if !bytes.Equal(direct.MarshalBinary(), viaWire.MarshalBinary()) {
		t.Fatal("merged encodings differ byte-wise")
	}
}

// TestCodecMergeAlgebraAcrossWire re-pins the merge algebra when every
// operand crosses the wire: associativity, commutativity, and the empty
// histogram as identity.
func TestCodecMergeAlgebraAcrossWire(t *testing.T) {
	a, b, c := randomHisto(20, 2000), randomHisto(21, 1), randomHisto(22, 700)

	// (a ⊕ b) ⊕ c
	left := roundTrip(t, a)
	left.Merge(roundTrip(t, b))
	left = roundTrip(t, left)
	left.Merge(roundTrip(t, c))

	// a ⊕ (b ⊕ c)
	bc := roundTrip(t, b)
	bc.Merge(roundTrip(t, c))
	right := roundTrip(t, a)
	right.Merge(roundTrip(t, bc))

	if !left.equalTo(right) {
		t.Fatal("wire merge is not associative")
	}

	ab := roundTrip(t, a)
	ab.Merge(roundTrip(t, b))
	ba := roundTrip(t, b)
	ba.Merge(roundTrip(t, a))
	if !ab.equalTo(ba) {
		t.Fatal("wire merge is not commutative")
	}

	id := roundTrip(t, a)
	id.Merge(roundTrip(t, New()))
	if !id.equalTo(a) {
		t.Fatal("empty snapshot is not a merge identity across the wire")
	}
}

// TestCodecFleetQuantileIdentity models the router's aggregation: N
// per-target histograms, each snapshotted over the wire, merged into a
// fleet histogram — whose quantiles must equal both (a) the merge of
// the in-process originals and (b) a single histogram fed every sample
// directly. (a) is exact structural equality; (b) holds because merge
// introduces no error beyond each sample's original bucketing.
func TestCodecFleetQuantileIdentity(t *testing.T) {
	const targets = 4
	fleetDirect := New()
	fleetWire := New()
	union := New()
	for i := 0; i < targets; i++ {
		rng := sim.NewRNG(uint64(100 + i))
		part := New()
		for j := 0; j < 2500; j++ {
			v := int64(rng.Intn(1 << uint(10+4*i)))
			part.Add(v)
			union.Add(v)
		}
		fleetDirect.Merge(part)
		fleetWire.Merge(roundTrip(t, part))
	}
	if !fleetDirect.equalTo(fleetWire) {
		t.Fatal("fleet merge via wire snapshots differs from direct merge")
	}
	if !fleetWire.equalTo(union) {
		t.Fatal("fleet merge differs from the all-samples histogram")
	}
	for _, p := range []float64{0, 25, 50, 90, 99, 99.9, 100} {
		if got, want := fleetWire.Percentile(p), union.Percentile(p); got != want {
			t.Errorf("p%v: fleet %d, union %d", p, got, want)
		}
	}
	if fleetWire.Mean() != union.Mean() || fleetWire.Max() != union.Max() || fleetWire.Min() != union.Min() {
		t.Error("fleet mean/min/max differ from the all-samples histogram")
	}
}

// TestCodecRejectsAdversarialInputs: the decoder must error — never
// panic, never trust a length — on malformed frames.
func TestCodecRejectsAdversarialInputs(t *testing.T) {
	valid := randomHisto(30, 500).MarshalBinary()

	// Every strict prefix of a valid encoding is truncated or
	// inconsistent, never accepted.
	for i := 0; i < len(valid); i++ {
		if _, err := Decode(valid[:i]); err == nil {
			t.Fatalf("prefix of length %d accepted", i)
		}
	}

	cases := map[string][]byte{
		"empty":          {},
		"bad version":    {99},
		"trailing bytes": append(append([]byte{}, valid...), 0),
		// count=1 with no further fields.
		"count without fields": {codecVersion, 1},
		// count=0 but one bucket entry claimed.
		"empty with entries": {codecVersion, 0, 1},
		// count=2, sum=5, min=2, max=3, 1 entry: bucket 2 count 3 (> count).
		"bucket counts exceed count": {codecVersion, 2, 5, 2, 3, 1, 2, 3},
		// count=1, sum=5, min=3, max=2 (min > max).
		"min above max": {codecVersion, 1, 5, 3, 2, 1, 3, 1},
		// count=1, sum=0, min=0, max=0, 1 entry with zero count.
		"zero-count entry": {codecVersion, 1, 0, 0, 0, 1, 0, 0},
		// count=2, two entries with delta 0 (not ascending).
		"non-ascending buckets": {codecVersion, 2, 2, 1, 1, 2, 1, 1, 0, 1},
		// count=1 in a bucket inconsistent with min/max (min=max=0 but
		// the entry sits in bucket 5).
		"min max bucket mismatch": {codecVersion, 1, 0, 0, 0, 1, 5, 1},
		// implausible sample count (2^63-ish uvarint).
		"implausible count": {codecVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 0},
	}
	for name, in := range cases {
		if _, err := Decode(in); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Out-of-range bucket index via a huge first delta.
	big := []byte{codecVersion, 1, 0, 0, 0, 1}
	big = append(big, 0xff, 0xff, 0xff, 0x7f) // delta ~2^28
	big = append(big, 1)
	if _, err := Decode(big); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("huge bucket index: got %v", err)
	}
}
