package histo

import (
	"fmt"
	"math/bits"
)

// Bucket layout: values in [0, 1<<subBits) get one bucket each (exact).
// Above that, each doubling of the value range ("tier") is split into
// subBuckets/2 equal-width buckets, so the bucket width at value v is at
// most v/(subBuckets/2) — a fixed relative error. The layout is total
// over non-negative int64, so the histogram is bounded by construction:
// no clamping, no overflow bucket, no allocation after New.
const (
	subBits    = 7
	subBuckets = 1 << subBits   // exact one-unit buckets: [0, 128)
	halfSub    = subBuckets / 2 // buckets per tier above the linear range
	tiers      = 63 - subBits   // doublings needed to reach 1<<62 .. int64 max
	numBuckets = subBuckets + tiers*halfSub
)

// Histogram is a bounded log-linear histogram over non-negative int64
// samples (the serving layer records wall-clock nanoseconds). The zero
// value is NOT ready to use; call New. Methods are not synchronized —
// callers that share a Histogram across goroutines must provide their own
// exclusion (the serve engine accounts under its accounting mutex; the
// load generator keeps one histogram per collector and merges).
type Histogram struct {
	counts [numBuckets]int64
	count  int64
	sum    int64
	min    int64 // exact; valid only when count > 0
	max    int64 // exact; valid only when count > 0
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	t := bits.Len64(u) - subBits // tier, >= 1
	return subBuckets + (t-1)*halfSub + int(u>>uint(t)) - halfSub
}

// bucketBounds returns the inclusive value range bucket idx covers.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < subBuckets {
		return int64(idx), int64(idx)
	}
	j := idx - subBuckets
	t := uint(j/halfSub + 1)
	s := int64(j%halfSub + halfSub)
	lo = s << t
	return lo, lo + (1 << t) - 1
}

// Width reports the width (number of representable values) of the bucket
// containing v — the granularity at which the histogram remembers v, and
// therefore the bound on any quantile's distance from the exact sample.
// Negative values share bucket 0 with zero.
func Width(v int64) int64 {
	if v < 0 {
		v = 0
	}
	lo, hi := bucketBounds(bucketIndex(v))
	return hi - lo + 1
}

// RelativeError is the worst-case relative half-width of any bucket: a
// quantile answer q differs from the exact sample by at most
// q * RelativeError (and by at most Width(q)/2 absolutely).
func RelativeError() float64 { return 1.0 / halfSub }

// Add records one sample. Negative samples (clock skew artifacts) clamp
// to zero rather than corrupting the layout.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.sum += v
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count }

// Sum reports the exact total of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample, exactly (0 if empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample, exactly (0 if empty).
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean rounded to the nearest unit (0 if
// empty). The sum is exact, so the mean carries no bucketing error.
func (h *Histogram) Mean() int64 {
	if h.count == 0 {
		return 0
	}
	return (h.sum + h.count/2) / h.count
}

// Percentile returns the p'th percentile (0 <= p <= 100) under the same
// nearest-rank semantics as stats.Reservoir: the returned value lies in
// the bucket holding the rank-ceil(p/100*n) smallest sample, so it is
// within Width of the exact nearest-rank answer (and clamped to the exact
// observed [Min, Max]). It returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) int64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("histo: percentile %v out of range", p))
	}
	if h.count == 0 {
		return 0
	}
	rank := int64(p / 100 * float64(h.count))
	if float64(rank) < p/100*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for idx, c := range h.counts {
		cum += c
		if cum >= rank {
			lo, hi := bucketBounds(idx)
			mid := lo + (hi-lo)/2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max // unreachable: cum reaches count >= rank
}

// P50 is the median.
func (h *Histogram) P50() int64 { return h.Percentile(50) }

// P99 is the 99th percentile.
func (h *Histogram) P99() int64 { return h.Percentile(99) }

// P999 is the 99.9th percentile.
func (h *Histogram) P999() int64 { return h.Percentile(99.9) }

// Merge folds o into h bucket-wise. Because buckets align exactly across
// all histograms, merging introduces no error beyond each sample's
// original bucketing, and the operation is associative and commutative:
// any grouping and order of merges yields identical counts, sum, min, and
// max. A nil o is a no-op; o is never modified.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Clone returns an independent copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// equalTo reports deep equality including every bucket; it backs the
// white-box merge-algebra tests.
func (h *Histogram) equalTo(o *Histogram) bool {
	if h.count != o.count || h.sum != o.sum {
		return false
	}
	if h.count > 0 && (h.min != o.min || h.max != o.max) {
		return false
	}
	return h.counts == o.counts
}
