// Package histo provides a bounded, mergeable, log-linear latency
// histogram (HDR-style) for the serving layer's wall-clock path.
//
// The experiment harness keeps every simulated-time sample exact in
// stats.Reservoir — instruction streams are bounded, and the paper's
// figures want exact percentiles. The serving path is different: an
// open-loop load generator at production rates produces an unbounded
// sample stream, and per-tenant Reservoirs would grow without limit for
// the lifetime of the server. A Histogram spends a fixed ~30 KiB per
// tracked series instead, admits samples in O(1) without allocating, and
// answers quantiles with a bounded relative error (see
// Histogram.RelativeError).
//
// Merge adds bucket counts pairwise, so it is exact (no re-sketching
// error), associative, and commutative — per-worker histograms can be
// folded in any grouping or order and always yield the same aggregate.
// That is what lets the open-loop load generator account latency in
// per-collector histograms with no shared lock and merge them at report
// time.
package histo
