package histo

import (
	"math"
	"sort"
	"testing"

	"conduit/internal/sim"
	"conduit/internal/stats"
)

// TestBucketLayoutIsTotalAndMonotonic: every non-negative int64 maps to
// exactly one in-range bucket whose bounds contain it, bucket index is
// monotone in the value, and adjacent buckets tile the value space with
// no gaps or overlaps.
func TestBucketLayoutIsTotalAndMonotonic(t *testing.T) {
	// Exhaustive over the linear range and the first tiers, then spot
	// checks up to int64 max including every power-of-two boundary.
	var vals []int64
	for v := int64(0); v < 4*subBuckets; v++ {
		vals = append(vals, v)
	}
	for shift := uint(0); shift < 63; shift++ {
		p := int64(1) << shift
		vals = append(vals, p-1, p, p+1)
	}
	vals = append(vals, math.MaxInt64-1, math.MaxInt64)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	lastIdx := -1
	for _, v := range vals {
		if v < 0 {
			continue
		}
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("value %d: bucket %d out of range [0,%d)", v, idx, numBuckets)
		}
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d: bucket %d bounds [%d,%d] do not contain it", v, idx, lo, hi)
		}
		if idx < lastIdx {
			t.Fatalf("bucket index not monotone at value %d", v)
		}
		lastIdx = idx
	}
	// Tiling: bucket i's hi + 1 == bucket i+1's lo, across every bucket.
	for i := 0; i < numBuckets-1; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if hi+1 != lo {
			t.Fatalf("buckets %d,%d do not tile: hi=%d lo=%d", i, i+1, hi, lo)
		}
	}
	// The last bucket reaches int64 max, so no sample can escape.
	if _, hi := bucketBounds(numBuckets - 1); hi != math.MaxInt64 {
		t.Fatalf("last bucket tops out at %d, want int64 max", hi)
	}
}

// TestWidthIsRelativeErrorBound: the bucket width at v never exceeds
// v * 2 * RelativeError (and is 1 — exact — in the linear range).
func TestWidthIsRelativeErrorBound(t *testing.T) {
	for v := int64(0); v < subBuckets; v++ {
		if Width(v) != 1 {
			t.Fatalf("linear-range value %d has width %d, want 1", v, Width(v))
		}
	}
	rng := sim.NewRNG(11)
	for i := 0; i < 20000; i++ {
		v := int64(rng.Uint64() >> 1) // non-negative
		if w := Width(v); float64(w) > float64(v)*2*RelativeError()+1 {
			t.Fatalf("value %d: width %d exceeds relative bound", v, w)
		}
	}
	if Width(-5) != Width(0) {
		t.Fatal("negative values must share bucket 0")
	}
}

func fill(seed uint64, n int, spread int64) *Histogram {
	h := New()
	rng := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		h.Add(int64(rng.Uint64() % uint64(spread)))
	}
	return h
}

// TestMergeAssociativeCommutative pins the merge algebra white-box: full
// bucket-array equality, not just summary statistics, for (A+B)+C vs
// A+(B+C) and A+B vs B+A — including merges with empty histograms.
func TestMergeAssociativeCommutative(t *testing.T) {
	a := fill(1, 5000, 1<<40)
	b := fill(2, 3000, 1<<12)
	c := fill(3, 1, 1<<60)
	empty := New()

	merged := func(parts ...*Histogram) *Histogram {
		out := New()
		for _, p := range parts {
			out.Merge(p)
		}
		return out
	}

	// Commutativity.
	if !merged(a, b).equalTo(merged(b, a)) {
		t.Fatal("A+B != B+A")
	}
	// Associativity: ((A+B)+C) vs (A+(B+C)).
	ab := merged(a, b)
	ab.Merge(c)
	bc := merged(b, c)
	acc := a.Clone()
	acc.Merge(bc)
	if !ab.equalTo(acc) {
		t.Fatal("(A+B)+C != A+(B+C)")
	}
	// Identity: empty is a two-sided unit, and merging never mutates the
	// source.
	before := a.Clone()
	if !merged(a, empty).equalTo(a) || !merged(empty, a).equalTo(a) {
		t.Fatal("empty histogram is not a merge identity")
	}
	if !a.equalTo(before) {
		t.Fatal("Merge mutated its source")
	}
	// Merge equals adding the union of samples directly.
	direct := New()
	for _, seed := range []uint64{1, 2} {
		rng := sim.NewRNG(seed)
		n, spread := 5000, int64(1<<40)
		if seed == 2 {
			n, spread = 3000, 1<<12
		}
		for i := 0; i < n; i++ {
			direct.Add(int64(rng.Uint64() % uint64(spread)))
		}
	}
	if !direct.equalTo(merged(a, b)) {
		t.Fatal("merge differs from adding the union of samples")
	}
}

// TestPercentileDifferentialAgainstReservoir bounds the histogram's
// quantile error against the exact nearest-rank Reservoir: for every
// percentile, |histo - exact| <= Width(exact)/2 rounded up — i.e. the
// histogram's answer sits in (the midpoint of) the bucket holding the
// exact sample. Several sample shapes, including heavy tails.
func TestPercentileDifferentialAgainstReservoir(t *testing.T) {
	shapes := map[string]func(rng *sim.RNG) int64{
		"uniform-small": func(rng *sim.RNG) int64 { return int64(rng.Uint64() % 100) },
		"uniform-wide":  func(rng *sim.RNG) int64 { return int64(rng.Uint64() % (1 << 34)) },
		"heavy-tail": func(rng *sim.RNG) int64 {
			base := int64(rng.Uint64() % 1000)
			if rng.Float64() < 0.01 {
				return base + int64(rng.Uint64()%(1<<30))
			}
			return base
		},
		"constant": func(rng *sim.RNG) int64 { return 4242 },
	}
	percentiles := []float64{0, 0.1, 1, 25, 50, 75, 90, 99, 99.9, 99.99, 100}
	for name, gen := range shapes {
		h := New()
		r := stats.NewReservoir()
		rng := sim.NewRNG(99)
		for i := 0; i < 20000; i++ {
			v := gen(rng)
			h.Add(v)
			r.Add(sim.Time(v))
		}
		for _, p := range percentiles {
			exact := int64(r.Percentile(p))
			got := h.Percentile(p)
			bound := Width(exact)/2 + 1
			if d := got - exact; d > bound || d < -bound {
				t.Errorf("%s p%v: histo %d vs exact %d (|diff| %d > bucket half-width %d)",
					name, p, got, exact, d, bound)
			}
		}
		if h.Count() != int64(r.Count()) {
			t.Errorf("%s: count %d vs %d", name, h.Count(), r.Count())
		}
		if h.Max() != int64(r.Max()) {
			t.Errorf("%s: max %d vs %d (max is tracked exactly)", name, h.Max(), r.Max())
		}
		if h.Mean() != int64(r.Mean()) {
			t.Errorf("%s: mean %d vs %d (sum is exact)", name, h.Mean(), r.Mean())
		}
	}
}

// TestPercentileEdgeCases: empty, single-sample, p0/p100, negative
// clamping, and range panics — mirroring the Reservoir contract.
func TestPercentileEdgeCases(t *testing.T) {
	h := New()
	if h.Percentile(50) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Add(777)
	for _, p := range []float64{0, 50, 100} {
		if got := h.Percentile(p); got != 777 {
			t.Fatalf("single sample p%v = %d, want 777", p, got)
		}
	}
	h.Add(-3) // clamps to 0
	if h.Min() != 0 || h.Percentile(0) != 0 {
		t.Fatal("negative sample must clamp to 0")
	}
	for _, bad := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", bad)
				}
			}()
			h.Percentile(bad)
		}()
	}
}
