// Package cores models the SSD controller's embedded processors: five ARM
// Cortex-R8 class cores at 1.5 GHz (Table 2). One core executes offloaded
// computation through the M-Profile Vector Extension (MVE) with a 32-byte
// datapath — the in-storage processing (ISP) resource; the paper reserves
// the remaining cores for FTL functions, host communication, and Conduit's
// offloading and instruction transformation (§4.3.2 footnote 3).
//
// ISP's defining limitation — narrow SIMD — falls directly out of the
// datapath width: a 16 KiB page takes 512 MVE beats, so page-sized vector
// work is orders of magnitude less parallel than PuD or IFP.
package cores
