package cores

import (
	"bytes"
	"testing"
	"testing/quick"

	"conduit/internal/config"
	"conduit/internal/energy"
	"conduit/internal/isa"
	"conduit/internal/sim"
)

func newTestCore() (*Core, *config.SSD, *energy.Account) {
	cfg := config.TestScale()
	en := energy.NewAccount()
	return New(&cfg.SSD, en), &cfg.SSD, en
}

func TestCyclesScaleWithVectorSize(t *testing.T) {
	cfg := config.TestScale()
	small := Cycles(&cfg.SSD, isa.OpAdd, 64, 1)
	big := Cycles(&cfg.SSD, isa.OpAdd, 16384, 1)
	if big <= small {
		t.Fatal("larger vectors must take more cycles")
	}
	// A full 16 KiB page at 32 B/beat is 512 beats (+ overhead).
	if want := int64(512 + loopOverheadCycles); big != want {
		t.Fatalf("page add cycles = %d, want %d", big, want)
	}
	// Multiplication costs twice the beats of addition.
	mul := Cycles(&cfg.SSD, isa.OpMul, 16384, 1)
	if mul != 2*512+loopOverheadCycles {
		t.Fatalf("page mul cycles = %d", mul)
	}
	if div := Cycles(&cfg.SSD, isa.OpDiv, 16384, 1); div <= mul {
		t.Fatal("div must cost more than mul")
	}
}

func TestExecLatencyMatchesExec(t *testing.T) {
	c, cfg, _ := newTestCore()
	a := make([]byte, cfg.PageSize)
	b := make([]byte, cfg.PageSize)
	_, done, err := c.Exec(0, 0, isa.OpAdd, [][]byte{a, b}, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := ExecLatency(cfg, isa.OpAdd, cfg.PageSize, 1); done != want {
		t.Fatalf("uncontended exec = %v, want estimator %v", done, want)
	}
}

func TestExecFunctionalAddMul(t *testing.T) {
	c, cfg, _ := newTestCore()
	a := make([]byte, cfg.PageSize)
	b := make([]byte, cfg.PageSize)
	for i := range a {
		a[i] = byte(i)
		b[i] = byte(2 * i)
	}
	sum, _, err := c.Exec(0, 0, isa.OpAdd, [][]byte{a, b}, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sum {
		if sum[i] != byte(3*i) {
			t.Fatalf("add lane %d = %d", i, sum[i])
		}
	}
	prod, _, err := c.Exec(0, 0, isa.OpMul, [][]byte{a, a}, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prod {
		if prod[i] != byte(i)*byte(i) {
			t.Fatalf("mul lane %d = %d", i, prod[i])
		}
	}
}

func TestExecImmediateAndBroadcast(t *testing.T) {
	c, cfg, _ := newTestCore()
	a := make([]byte, cfg.PageSize)
	for i := range a {
		a[i] = byte(i)
	}
	out, _, err := c.Exec(0, 0, isa.OpAdd, [][]byte{a}, 1, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out[10] != 15 {
		t.Fatalf("imm add = %d, want 15", out[10])
	}
	bc, _, err := c.Exec(0, 0, isa.OpBroadcast, nil, 2, true, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	if bc[0] != 0xEF || bc[1] != 0xBE {
		t.Fatal("broadcast lanes wrong")
	}
	if len(bc) != cfg.PageSize {
		t.Fatal("broadcast should produce a full page")
	}
}

func TestExecDivSaturatesOnZero(t *testing.T) {
	c, cfg, _ := newTestCore()
	a := make([]byte, cfg.PageSize)
	z := make([]byte, cfg.PageSize)
	a[0] = 10
	out, _, err := c.Exec(0, 0, isa.OpDiv, [][]byte{a, z}, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xFF {
		t.Fatalf("div by zero = %d, want saturation 0xFF", out[0])
	}
}

func TestExecShuffleRotates(t *testing.T) {
	c, cfg, _ := newTestCore()
	a := make([]byte, cfg.PageSize)
	for i := range a {
		a[i] = byte(i)
	}
	out, _, err := c.Exec(0, 0, isa.OpShuffle, [][]byte{a}, 1, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != a[3] || out[1] != a[4] {
		t.Fatal("shuffle should rotate lanes left by imm")
	}
}

func TestExecReduceAddBroadcastsSum(t *testing.T) {
	c, cfg, _ := newTestCore()
	a := make([]byte, cfg.PageSize)
	a[0], a[1], a[2] = 1, 2, 3
	out, _, err := c.Exec(0, 0, isa.OpReduceAdd, [][]byte{a}, 4, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, cfg.PageSize)
	for i := 0; i < cfg.PageSize; i += 4 {
		want[i] = 0x01 + 0x02 // little-endian lanes: lane0 = 0x030201
		want[i], want[i+1], want[i+2] = 0x01, 0x02, 0x03
	}
	_ = want
	// lane0 of a as uint32 = 0x00030201; all output lanes equal that sum.
	if !(out[0] == 0x01 && out[1] == 0x02 && out[2] == 0x03 && out[4] == 0x01) {
		t.Fatalf("reduce_add lanes = % x", out[:8])
	}
}

func TestExecValidation(t *testing.T) {
	c, cfg, _ := newTestCore()
	a := make([]byte, cfg.PageSize)
	if _, _, err := c.Exec(0, 0, isa.OpAdd, [][]byte{a}, 1, false, 0); err == nil {
		t.Error("missing operand should fail")
	}
	short := make([]byte, 8)
	if _, _, err := c.Exec(0, 0, isa.OpAdd, [][]byte{a, short}, 1, false, 0); err == nil {
		t.Error("operand size mismatch should fail")
	}
	if _, _, err := c.Exec(0, 0, isa.OpScalar, nil, 1, false, 0); err == nil {
		t.Error("scalar op through Exec should fail")
	}
}

func TestExecScalarAndQueueing(t *testing.T) {
	c, cfg, en := newTestCore()
	done, err := c.ExecScalar(0, 0, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if done != sim.Microsecond {
		t.Fatalf("1500 cycles @1.5GHz = %v, want 1µs", done)
	}
	// A second op issued at t=0 queues behind the first.
	done2, _ := c.ExecScalar(0, 0, 1500)
	if done2 != 2*sim.Microsecond {
		t.Fatalf("queued scalar done = %v, want 2µs", done2)
	}
	if _, err := c.ExecScalar(0, 0, 0); err == nil {
		t.Error("zero-cycle scalar should fail")
	}
	if en.ComputeBy("isp") <= 0 {
		t.Error("core work must record ISP energy")
	}
	st := c.Stats()
	if st["scalar_ops"] != 2 || st["cycles"] != 3000 {
		t.Fatalf("stats = %v", st)
	}
	_ = cfg
}

// Property: Exec agrees with Apply (the shared functional kernel) for
// random operands — i.e. timing never perturbs semantics.
func TestExecMatchesApplyProperty(t *testing.T) {
	cfg := config.TestScale()
	ops := []isa.Op{isa.OpAnd, isa.OpXor, isa.OpAdd, isa.OpSub, isa.OpMul,
		isa.OpLT, isa.OpMin, isa.OpEQ}
	f := func(seed uint64, opSel, elemSel uint8) bool {
		op := ops[int(opSel)%len(ops)]
		elem := []int{1, 2, 4}[int(elemSel)%3]
		c := New(&cfg.SSD, energy.NewAccount())
		r := sim.NewRNG(seed)
		a := make([]byte, cfg.SSD.PageSize)
		b := make([]byte, cfg.SSD.PageSize)
		r.Bytes(a)
		r.Bytes(b)
		got, _, err := c.Exec(0, 0, op, [][]byte{a, b}, elem, false, 0)
		if err != nil {
			return false
		}
		want := make([]byte, cfg.SSD.PageSize)
		if err := Apply(op, want, [][]byte{a, b}, elem, false, 0); err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
