package cores

import (
	"fmt"

	"conduit/internal/config"
	"conduit/internal/energy"
	"conduit/internal/isa"
	"conduit/internal/sim"
	"conduit/internal/vecmath"
)

// cyclesPerBeat is the per-32-byte-beat cycle cost of each IR operation on
// the MVE pipeline, calibrated to embedded ARM instruction timings:
// single-cycle logic/add, dual-issue-blocking multiply, long-latency
// divide.
func cyclesPerBeat(op isa.Op) int64 {
	switch op {
	case isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpNot, isa.OpNand, isa.OpNor,
		isa.OpShl, isa.OpShr, isa.OpCopy, isa.OpBroadcast:
		return 1
	case isa.OpAdd, isa.OpSub, isa.OpLT, isa.OpGT, isa.OpEQ,
		isa.OpMin, isa.OpMax:
		return 1
	case isa.OpSelect:
		return 2
	case isa.OpMul:
		return 2
	case isa.OpDiv:
		return 12
	case isa.OpReduceAdd:
		return 1 // pairwise-accumulating VADDV
	case isa.OpShuffle:
		return 2 // VLDR with gather pattern
	default:
		panic(fmt.Sprintf("cores: no beat cost for %v", op))
	}
}

// loopOverheadCycles is the per-vector-instruction loop and address
// bookkeeping on the scalar pipeline.
const loopOverheadCycles = 16

// Cycles reports the core cycles a full vector instruction takes:
// ceil(bytes/MVE width) beats times the per-beat cost, plus loop overhead.
func Cycles(cfg *config.SSD, op isa.Op, lanes, elem int) int64 {
	if op == isa.OpScalar {
		panic("cores: Cycles of scalar region; use the instruction's ScalarCycles")
	}
	bytes := int64(lanes * elem)
	beats := (bytes + int64(cfg.MVEWidthBytes) - 1) / int64(cfg.MVEWidthBytes)
	return beats*cyclesPerBeat(op) + loopOverheadCycles
}

// ExecLatency is the contention-free latency of one vector instruction on
// the compute core — the ISP entry of the offloader's precomputed
// computation-latency table (§4.5).
func ExecLatency(cfg *config.SSD, op isa.Op, lanes, elem int) sim.Time {
	return cfg.CoreCycles(Cycles(cfg, op, lanes, elem))
}

// UnvectorizedCycles is the lane-serial cycle cost of running a vector
// operation the compiler could not vectorize (§7): one scalar
// load/op/store sequence per lane on the in-order pipeline.
func UnvectorizedCycles(lanes int) int64 {
	return int64(lanes)*isa.ScalarCyclesPerLane + loopOverheadCycles
}

// Core is the functional + timed ISP compute core.
type Core struct {
	cfg *config.SSD
	en  *energy.Account
	cal *sim.Calendar

	vecOps, scalarOps, cycles int64
}

// New returns the compute core for cfg, charging energy to en.
func New(cfg *config.SSD, en *energy.Account) *Core {
	return &Core{cfg: cfg, en: en, cal: sim.NewCalendar("isp-core")}
}

// Calendar exposes the core's timing calendar (for queue-delay observation
// by offloading policies).
func (c *Core) Calendar() *sim.Calendar { return c.cal }

// Exec executes op over the operand buffers and returns the result bytes
// and completion time. Operands must already be resident in SSD DRAM; the
// caller models that movement. srcs must match the operation's vector
// arity (after immediate substitution); all buffers share the same length.
//
// Functional semantics notes: OpShuffle rotates lanes left by Imm;
// OpReduceAdd broadcasts the modular lane sum to every output lane.
func (c *Core) Exec(now, ready sim.Time, op isa.Op, srcs [][]byte, elem int, useImm bool, imm uint64) ([]byte, sim.Time, error) {
	if op == isa.OpScalar {
		return nil, 0, fmt.Errorf("cores: scalar regions go through ExecScalar")
	}
	arity := op.Arity()
	if useImm && op.ImmReplacesSrc() {
		arity--
	}
	if len(srcs) != arity {
		return nil, 0, fmt.Errorf("cores: %v needs %d vector sources, got %d", op, arity, len(srcs))
	}
	var size int
	if len(srcs) > 0 {
		size = len(srcs[0])
		for _, s := range srcs[1:] {
			if len(s) != size {
				return nil, 0, fmt.Errorf("cores: operand size mismatch")
			}
		}
	} else {
		size = c.cfg.PageSize
	}
	lanes := size / elem

	cyc := Cycles(c.cfg, op, lanes, elem)
	_, done := c.cal.Reserve(now, ready, c.cfg.CoreCycles(cyc))
	c.vecOps++
	c.cycles += cyc
	c.en.Compute("isp", float64(cyc)*c.cfg.ECorePerCycle)

	out := make([]byte, size)
	if err := apply(op, out, srcs, elem, useImm, imm); err != nil {
		return nil, 0, err
	}
	return out, done, nil
}

// ExecStreaming executes op like Exec but additionally occupies the core
// for stream time: the in-order Cortex-R8 stalls while loading operands
// from and storing results to the SSD DRAM, so its execution queue must
// reflect that occupancy.
func (c *Core) ExecStreaming(now, ready sim.Time, op isa.Op, srcs [][]byte, elem int, useImm bool, imm uint64, stream sim.Time) ([]byte, sim.Time, error) {
	if op == isa.OpScalar {
		return nil, 0, fmt.Errorf("cores: scalar regions go through ExecScalar")
	}
	arity := op.Arity()
	if useImm && op.ImmReplacesSrc() {
		arity--
	}
	if len(srcs) != arity {
		return nil, 0, fmt.Errorf("cores: %v needs %d vector sources, got %d", op, arity, len(srcs))
	}
	var size int
	if len(srcs) > 0 {
		size = len(srcs[0])
		for _, s := range srcs[1:] {
			if len(s) != size {
				return nil, 0, fmt.Errorf("cores: operand size mismatch")
			}
		}
	} else {
		size = c.cfg.PageSize
	}
	lanes := size / elem

	cyc := Cycles(c.cfg, op, lanes, elem)
	_, done := c.cal.Reserve(now, ready, c.cfg.CoreCycles(cyc)+stream)
	c.vecOps++
	c.cycles += cyc
	c.en.Compute("isp", float64(cyc)*c.cfg.ECorePerCycle)

	out := make([]byte, size)
	if err := apply(op, out, srcs, elem, useImm, imm); err != nil {
		return nil, 0, err
	}
	return out, done, nil
}

// ExecUnvectorized executes op lane-serially on the scalar pipeline —
// the fate of loops the vectorizer rejected. Semantics are identical to
// Exec; only the cycle cost differs.
func (c *Core) ExecUnvectorized(now, ready sim.Time, op isa.Op, srcs [][]byte, elem int, useImm bool, imm uint64) ([]byte, sim.Time, error) {
	if op == isa.OpScalar {
		return nil, 0, fmt.Errorf("cores: scalar regions go through ExecScalar")
	}
	var size int
	if len(srcs) > 0 {
		size = len(srcs[0])
	} else {
		size = c.cfg.PageSize
	}
	cyc := UnvectorizedCycles(size / elem)
	_, done := c.cal.Reserve(now, ready, c.cfg.CoreCycles(cyc))
	c.scalarOps++
	c.cycles += cyc
	c.en.Compute("isp", float64(cyc)*c.cfg.ECorePerCycle)

	out := make([]byte, size)
	if err := apply(op, out, srcs, elem, useImm, imm); err != nil {
		return nil, 0, err
	}
	return out, done, nil
}

// ExecScalar runs a non-vectorized control region of the given cycle cost.
func (c *Core) ExecScalar(now, ready sim.Time, cyc int64) (sim.Time, error) {
	if cyc <= 0 {
		return 0, fmt.Errorf("cores: scalar region needs positive cycles, got %d", cyc)
	}
	_, done := c.cal.Reserve(now, ready, c.cfg.CoreCycles(cyc))
	c.scalarOps++
	c.cycles += cyc
	c.en.Compute("isp", float64(cyc)*c.cfg.ECorePerCycle)
	return done, nil
}

// Clone returns an independent copy of the core (calendar and counters),
// charging future energy to en.
func (c *Core) Clone(en *energy.Account) *Core {
	cp := *c
	cp.en = en
	cp.cal = c.cal.Clone()
	return &cp
}

// Stats reports operation counts for experiment tables.
func (c *Core) Stats() map[string]int64 {
	return map[string]int64{
		"vector_ops": c.vecOps,
		"scalar_ops": c.scalarOps,
		"cycles":     c.cycles,
	}
}

// apply computes the functional result of op. It is shared with the host
// models via Apply.
func apply(op isa.Op, out []byte, srcs [][]byte, elem int, useImm bool, imm uint64) error {
	vecmath.CheckElem(elem)
	bin := func(f func(x, y uint64) uint64) error {
		if useImm {
			vecmath.BinaryImm(out, srcs[0], elem, imm&vecmath.Mask(elem), f)
			return nil
		}
		vecmath.Binary(out, srcs[0], srcs[1], elem, f)
		return nil
	}
	switch op {
	case isa.OpAnd:
		return bin(func(x, y uint64) uint64 { return x & y })
	case isa.OpOr:
		return bin(func(x, y uint64) uint64 { return x | y })
	case isa.OpXor:
		return bin(func(x, y uint64) uint64 { return x ^ y })
	case isa.OpNand:
		return bin(func(x, y uint64) uint64 { return ^(x & y) })
	case isa.OpNor:
		return bin(func(x, y uint64) uint64 { return ^(x | y) })
	case isa.OpNot:
		vecmath.Unary(out, srcs[0], elem, func(x uint64) uint64 { return ^x })
	case isa.OpAdd:
		return bin(func(x, y uint64) uint64 { return x + y })
	case isa.OpSub:
		return bin(func(x, y uint64) uint64 { return x - y })
	case isa.OpMul:
		return bin(func(x, y uint64) uint64 { return x * y })
	case isa.OpDiv:
		return bin(func(x, y uint64) uint64 {
			if y == 0 {
				return vecmath.Mask(elem) // saturate on division by zero
			}
			return x / y
		})
	case isa.OpShl:
		vecmath.Unary(out, srcs[0], elem, func(x uint64) uint64 { return x << imm })
	case isa.OpShr:
		vecmath.Unary(out, srcs[0], elem, func(x uint64) uint64 { return x >> imm })
	case isa.OpLT:
		return bin(func(x, y uint64) uint64 {
			return vecmath.Bool(vecmath.ToSigned(x, elem) < vecmath.ToSigned(y, elem), elem)
		})
	case isa.OpGT:
		return bin(func(x, y uint64) uint64 {
			return vecmath.Bool(vecmath.ToSigned(x, elem) > vecmath.ToSigned(y, elem), elem)
		})
	case isa.OpEQ:
		return bin(func(x, y uint64) uint64 { return vecmath.Bool(x == y, elem) })
	case isa.OpMin:
		return bin(func(x, y uint64) uint64 {
			if vecmath.ToSigned(x, elem) < vecmath.ToSigned(y, elem) {
				return x
			}
			return y
		})
	case isa.OpMax:
		return bin(func(x, y uint64) uint64 {
			if vecmath.ToSigned(x, elem) > vecmath.ToSigned(y, elem) {
				return x
			}
			return y
		})
	case isa.OpSelect:
		mask, a := srcs[0], srcs[1]
		var b []byte
		if useImm {
			b = make([]byte, len(out))
			vecmath.Broadcast(b, elem, imm)
		} else {
			b = srcs[2]
		}
		n := len(out) / elem
		for i := 0; i < n; i++ {
			if vecmath.Load(mask, i, elem) != 0 {
				vecmath.Store(out, i, elem, vecmath.Load(a, i, elem))
			} else {
				vecmath.Store(out, i, elem, vecmath.Load(b, i, elem))
			}
		}
	case isa.OpCopy:
		copy(out, srcs[0])
	case isa.OpBroadcast:
		vecmath.Broadcast(out, elem, imm)
	case isa.OpReduceAdd:
		sum := vecmath.ReduceAdd(srcs[0], elem)
		vecmath.Broadcast(out, elem, sum)
	case isa.OpShuffle:
		n := len(out) / elem
		rot := int(imm) % n
		for i := 0; i < n; i++ {
			vecmath.Store(out, i, elem, vecmath.Load(srcs[0], (i+rot)%n, elem))
		}
	default:
		return fmt.Errorf("cores: unknown op %v", op)
	}
	return nil
}

// Apply computes the functional result of a vector operation without any
// timing or energy effects. The host models and the compiler's reference
// interpreter share it so every execution substrate agrees bit-for-bit.
func Apply(op isa.Op, out []byte, srcs [][]byte, elem int, useImm bool, imm uint64) error {
	return apply(op, out, srcs, elem, useImm, imm)
}
