package cores

import (
	"fmt"

	"conduit/internal/arena"
	"conduit/internal/config"
	"conduit/internal/energy"
	"conduit/internal/isa"
	"conduit/internal/sim"
	"conduit/internal/vecmath"
)

// cyclesPerBeat is the per-32-byte-beat cycle cost of each IR operation on
// the MVE pipeline, calibrated to embedded ARM instruction timings:
// single-cycle logic/add, dual-issue-blocking multiply, long-latency
// divide.
func cyclesPerBeat(op isa.Op) int64 {
	switch op {
	case isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpNot, isa.OpNand, isa.OpNor,
		isa.OpShl, isa.OpShr, isa.OpCopy, isa.OpBroadcast:
		return 1
	case isa.OpAdd, isa.OpSub, isa.OpLT, isa.OpGT, isa.OpEQ,
		isa.OpMin, isa.OpMax:
		return 1
	case isa.OpSelect:
		return 2
	case isa.OpMul:
		return 2
	case isa.OpDiv:
		return 12
	case isa.OpReduceAdd:
		return 1 // pairwise-accumulating VADDV
	case isa.OpShuffle:
		return 2 // VLDR with gather pattern
	default:
		panic(fmt.Sprintf("cores: no beat cost for %v", op))
	}
}

// loopOverheadCycles is the per-vector-instruction loop and address
// bookkeeping on the scalar pipeline.
const loopOverheadCycles = 16

// Cycles reports the core cycles a full vector instruction takes:
// ceil(bytes/MVE width) beats times the per-beat cost, plus loop overhead.
func Cycles(cfg *config.SSD, op isa.Op, lanes, elem int) int64 {
	if op == isa.OpScalar {
		panic("cores: Cycles of scalar region; use the instruction's ScalarCycles")
	}
	bytes := int64(lanes * elem)
	beats := (bytes + int64(cfg.MVEWidthBytes) - 1) / int64(cfg.MVEWidthBytes)
	return beats*cyclesPerBeat(op) + loopOverheadCycles
}

// ExecLatency is the contention-free latency of one vector instruction on
// the compute core — the ISP entry of the offloader's precomputed
// computation-latency table (§4.5).
func ExecLatency(cfg *config.SSD, op isa.Op, lanes, elem int) sim.Time {
	return cfg.CoreCycles(Cycles(cfg, op, lanes, elem))
}

// UnvectorizedCycles is the lane-serial cycle cost of running a vector
// operation the compiler could not vectorize (§7): one scalar
// load/op/store sequence per lane on the in-order pipeline.
func UnvectorizedCycles(lanes int) int64 {
	return int64(lanes)*isa.ScalarCyclesPerLane + loopOverheadCycles
}

// Core is the functional + timed ISP compute core. With cfg.TimingOnly
// set results are never computed and Exec returns a nil payload; cycle
// counts are sized by the configured page (device operands are always
// whole pages), so timing, energy, and counters are identical to a
// functional core.
type Core struct {
	cfg    *config.SSD
	en     *energy.Account
	timing bool
	cal    *sim.Calendar

	// pool recycles page-sized result buffers. A result returned by Exec
	// is freshly allocated (private) until the caller stores it; callers
	// that copy the result onward (the ssd runtime writes it into DRAM,
	// which copies) hand the buffer back via Recycle.
	pool *arena.Pool

	vecOps, scalarOps, cycles int64
}

// New returns the compute core for cfg, charging energy to en.
func New(cfg *config.SSD, en *energy.Account) *Core {
	return &Core{cfg: cfg, en: en, timing: cfg.TimingOnly, cal: sim.NewCalendar("isp-core"), pool: arena.New(cfg.PageSize)}
}

// outBuffer returns a result buffer of the given size, recycling dead
// page-sized buffers. Every operation fully overwrites its result, so
// stale contents are fine.
func (c *Core) outBuffer(size int) []byte {
	if size == c.pool.Size() {
		return c.pool.Get()
	}
	return make([]byte, size)
}

// Recycle returns a dead result buffer to the core's free list. Only call
// it with a buffer obtained from Exec/ExecStreaming/ExecUnvectorized that
// nothing else references (e.g. after copying it into DRAM).
func (c *Core) Recycle(b []byte) { c.pool.Put(b) }

// Calendar exposes the core's timing calendar (for queue-delay observation
// by offloading policies).
func (c *Core) Calendar() *sim.Calendar { return c.cal }

// Exec executes op over the operand buffers and returns the result bytes
// and completion time. Operands must already be resident in SSD DRAM; the
// caller models that movement. srcs must match the operation's vector
// arity (after immediate substitution); all buffers share the same length.
//
// Functional semantics notes: OpShuffle rotates lanes left by Imm;
// OpReduceAdd broadcasts the modular lane sum to every output lane.
func (c *Core) Exec(now, ready sim.Time, op isa.Op, srcs [][]byte, elem int, useImm bool, imm uint64) ([]byte, sim.Time, error) {
	if op == isa.OpScalar {
		return nil, 0, fmt.Errorf("cores: scalar regions go through ExecScalar")
	}
	arity := op.Arity()
	if useImm && op.ImmReplacesSrc() {
		arity--
	}
	if len(srcs) != arity {
		return nil, 0, fmt.Errorf("cores: %v needs %d vector sources, got %d", op, arity, len(srcs))
	}
	size := c.operandSize(srcs)
	if size < 0 {
		return nil, 0, fmt.Errorf("cores: operand size mismatch")
	}
	lanes := size / elem

	cyc := Cycles(c.cfg, op, lanes, elem)
	_, done := c.cal.Reserve(now, ready, c.cfg.CoreCycles(cyc))
	c.vecOps++
	c.cycles += cyc
	c.en.Compute("isp", float64(cyc)*c.cfg.ECorePerCycle)

	if c.timing {
		return nil, done, nil
	}
	out := c.outBuffer(size)
	if err := apply(op, out, srcs, elem, useImm, imm); err != nil {
		c.pool.Put(out)
		return nil, 0, err
	}
	return out, done, nil
}

// operandSize reports the common operand length, c.cfg.PageSize when
// there are no operands, or -1 on a mismatch. A timing-only core carries
// elided (nil) operands and always sizes by the configured page — which
// is what the device paths stream in a functional run too.
func (c *Core) operandSize(srcs [][]byte) int {
	if c.timing || len(srcs) == 0 {
		return c.cfg.PageSize
	}
	size := len(srcs[0])
	for _, s := range srcs[1:] {
		if len(s) != size {
			return -1
		}
	}
	return size
}

// ExecStreaming executes op like Exec but additionally occupies the core
// for stream time: the in-order Cortex-R8 stalls while loading operands
// from and storing results to the SSD DRAM, so its execution queue must
// reflect that occupancy.
func (c *Core) ExecStreaming(now, ready sim.Time, op isa.Op, srcs [][]byte, elem int, useImm bool, imm uint64, stream sim.Time) ([]byte, sim.Time, error) {
	if op == isa.OpScalar {
		return nil, 0, fmt.Errorf("cores: scalar regions go through ExecScalar")
	}
	arity := op.Arity()
	if useImm && op.ImmReplacesSrc() {
		arity--
	}
	if len(srcs) != arity {
		return nil, 0, fmt.Errorf("cores: %v needs %d vector sources, got %d", op, arity, len(srcs))
	}
	size := c.operandSize(srcs)
	if size < 0 {
		return nil, 0, fmt.Errorf("cores: operand size mismatch")
	}
	lanes := size / elem

	cyc := Cycles(c.cfg, op, lanes, elem)
	_, done := c.cal.Reserve(now, ready, c.cfg.CoreCycles(cyc)+stream)
	c.vecOps++
	c.cycles += cyc
	c.en.Compute("isp", float64(cyc)*c.cfg.ECorePerCycle)

	if c.timing {
		return nil, done, nil
	}
	out := c.outBuffer(size)
	if err := apply(op, out, srcs, elem, useImm, imm); err != nil {
		c.pool.Put(out)
		return nil, 0, err
	}
	return out, done, nil
}

// ExecUnvectorized executes op lane-serially on the scalar pipeline —
// the fate of loops the vectorizer rejected. Semantics are identical to
// Exec; only the cycle cost differs.
func (c *Core) ExecUnvectorized(now, ready sim.Time, op isa.Op, srcs [][]byte, elem int, useImm bool, imm uint64) ([]byte, sim.Time, error) {
	if op == isa.OpScalar {
		return nil, 0, fmt.Errorf("cores: scalar regions go through ExecScalar")
	}
	size := c.cfg.PageSize
	if !c.timing && len(srcs) > 0 {
		size = len(srcs[0])
	}
	cyc := UnvectorizedCycles(size / elem)
	_, done := c.cal.Reserve(now, ready, c.cfg.CoreCycles(cyc))
	c.scalarOps++
	c.cycles += cyc
	c.en.Compute("isp", float64(cyc)*c.cfg.ECorePerCycle)

	if c.timing {
		return nil, done, nil
	}
	out := c.outBuffer(size)
	if err := apply(op, out, srcs, elem, useImm, imm); err != nil {
		c.pool.Put(out)
		return nil, 0, err
	}
	return out, done, nil
}

// ExecScalar runs a non-vectorized control region of the given cycle cost.
func (c *Core) ExecScalar(now, ready sim.Time, cyc int64) (sim.Time, error) {
	if cyc <= 0 {
		return 0, fmt.Errorf("cores: scalar region needs positive cycles, got %d", cyc)
	}
	_, done := c.cal.Reserve(now, ready, c.cfg.CoreCycles(cyc))
	c.scalarOps++
	c.cycles += cyc
	c.en.Compute("isp", float64(cyc)*c.cfg.ECorePerCycle)
	return done, nil
}

// Clone returns an independent copy of the core (calendar and counters),
// charging future energy to en. The clone gets its own empty buffer pool:
// free lists hold only dead buffers and are never shared.
func (c *Core) Clone(en *energy.Account) *Core {
	cp := *c
	cp.en = en
	cp.cal = c.cal.Clone()
	cp.pool = arena.New(c.cfg.PageSize)
	return &cp
}

// Stats reports operation counts for experiment tables.
func (c *Core) Stats() map[string]int64 {
	return map[string]int64{
		"vector_ops": c.vecOps,
		"scalar_ops": c.scalarOps,
		"cycles":     c.cycles,
	}
}

// kernelOp maps a binary vector IR operation onto the shared vecmath
// kernel vocabulary (the specialized, word-parallel data plane).
func kernelOp(op isa.Op) (vecmath.Op, bool) {
	switch op {
	case isa.OpAnd:
		return vecmath.OpAnd, true
	case isa.OpOr:
		return vecmath.OpOr, true
	case isa.OpXor:
		return vecmath.OpXor, true
	case isa.OpNand:
		return vecmath.OpNand, true
	case isa.OpNor:
		return vecmath.OpNor, true
	case isa.OpAdd:
		return vecmath.OpAdd, true
	case isa.OpSub:
		return vecmath.OpSub, true
	case isa.OpMul:
		return vecmath.OpMul, true
	case isa.OpDiv:
		return vecmath.OpDiv, true
	case isa.OpLT:
		return vecmath.OpLT, true
	case isa.OpGT:
		return vecmath.OpGT, true
	case isa.OpEQ:
		return vecmath.OpEQ, true
	case isa.OpMin:
		return vecmath.OpMin, true
	case isa.OpMax:
		return vecmath.OpMax, true
	default:
		return 0, false
	}
}

// apply computes the functional result of op through the specialized
// vecmath kernels (one dispatch per page, no per-element closures). It is
// shared with the host models via Apply. Every path fully overwrites out.
func apply(op isa.Op, out []byte, srcs [][]byte, elem int, useImm bool, imm uint64) error {
	vecmath.CheckElem(elem)
	if k, ok := kernelOp(op); ok {
		if useImm {
			vecmath.ApplyImm(k, out, srcs[0], elem, imm)
		} else {
			vecmath.Apply(k, out, srcs[0], srcs[1], elem)
		}
		return nil
	}
	switch op {
	case isa.OpNot:
		vecmath.ApplyUnary(vecmath.OpNot, out, srcs[0], elem, 0)
	case isa.OpShl:
		vecmath.ApplyUnary(vecmath.OpShl, out, srcs[0], elem, imm)
	case isa.OpShr:
		vecmath.ApplyUnary(vecmath.OpShr, out, srcs[0], elem, imm)
	case isa.OpSelect:
		if useImm {
			vecmath.SelectImm(out, srcs[0], srcs[1], elem, imm)
		} else {
			vecmath.Select(out, srcs[0], srcs[1], srcs[2], elem)
		}
	case isa.OpCopy:
		copy(out, srcs[0])
	case isa.OpBroadcast:
		vecmath.Broadcast(out, elem, imm)
	case isa.OpReduceAdd:
		vecmath.Broadcast(out, elem, vecmath.ReduceAdd(srcs[0], elem))
	case isa.OpShuffle:
		vecmath.Shuffle(out, srcs[0], elem, int(imm))
	default:
		return fmt.Errorf("cores: unknown op %v", op)
	}
	return nil
}

// Apply computes the functional result of a vector operation without any
// timing or energy effects. The host models and the compiler's reference
// interpreter share it so every execution substrate agrees bit-for-bit.
func Apply(op isa.Op, out []byte, srcs [][]byte, elem int, useImm bool, imm uint64) error {
	return apply(op, out, srcs, elem, useImm, imm)
}
