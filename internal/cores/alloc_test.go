package cores

import (
	"testing"

	"conduit/internal/isa"
	"conduit/internal/sim"
)

// TestExecSteadyStateAllocs pins the allocation behavior of the ISP data
// plane: with the caller returning consumed result buffers via Recycle
// (as the ssd runtime does after copying them into DRAM), a vector
// operation allocates nothing in steady state.
func TestExecSteadyStateAllocs(t *testing.T) {
	c, cfg, _ := newTestCore()
	a := make([]byte, cfg.PageSize)
	b := make([]byte, cfg.PageSize)
	for i := range a {
		a[i] = byte(i)
		b[i] = byte(i * 7)
	}
	srcs := [][]byte{a, b}

	var now sim.Time
	exec := func() {
		out, done, err := c.Exec(now, now, isa.OpAdd, srcs, 4, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		c.Recycle(out)
	}
	exec() // warm the free list
	if got := testing.AllocsPerRun(50, exec); got > 0 {
		t.Fatalf("steady-state Exec allocates %.1f objects/op, want 0", got)
	}
}

// TestExecStreamingSteadyStateAllocs covers the streaming path the ssd
// runtime actually uses for vectorized instructions.
func TestExecStreamingSteadyStateAllocs(t *testing.T) {
	c, cfg, _ := newTestCore()
	a := make([]byte, cfg.PageSize)
	srcs := [][]byte{a}

	var now sim.Time
	exec := func() {
		out, done, err := c.ExecStreaming(now, now, isa.OpNot, srcs, 1, false, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		c.Recycle(out)
	}
	exec()
	if got := testing.AllocsPerRun(50, exec); got > 0 {
		t.Fatalf("steady-state ExecStreaming allocates %.1f objects/op, want 0", got)
	}
}
