package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Event is one scheduled (or observed) request arrival. Durations
// serialize as integer nanoseconds, so a trace line is portable and
// diffable: {"at":1500000,"tenant":"tenant-00","workload":"aes",...}.
type Event struct {
	// At is the arrival offset from the start of the run.
	At time.Duration `json:"at"`
	// Tenant is the accounting principal the request bills to.
	Tenant string `json:"tenant"`
	// Workload names the registered application.
	Workload string `json:"workload"`
	// Policy is the execution policy.
	Policy string `json:"policy"`
	// Deadline is the request's latency budget from submission (its SLO);
	// 0 means none.
	Deadline time.Duration `json:"deadline,omitempty"`
}

// Write emits events as JSONL: one JSON object per line, in slice order.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("loadgen: write trace event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSONL trace, skipping blank lines. Errors name the
// offending line.
func Read(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for line := 1; sc.Scan(); line++ {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("loadgen: trace line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: read trace: %w", err)
	}
	return events, nil
}

// WriteFile records events to path (overwriting).
func WriteFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a JSONL trace from path.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// A Recorder captures a live run as a trace: each issued request is
// recorded with its actual wall-clock offset from the recorder's start,
// so the resulting trace replays the run as it really unfolded —
// including closed-loop pacing, which exists nowhere but in the observed
// timestamps. Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
}

// NewRecorder starts recording; offsets are measured from this call.
func NewRecorder() *Recorder { return &Recorder{start: time.Now()} }

// Record captures one issued request at the current wall-clock offset.
func (r *Recorder) Record(tenant, workload, policy string, deadline time.Duration) {
	at := time.Since(r.start)
	r.mu.Lock()
	r.events = append(r.events, Event{
		At: at, Tenant: tenant, Workload: workload, Policy: policy, Deadline: deadline,
	})
	r.mu.Unlock()
}

// Events returns the recording so far, sorted by offset (stable, so
// same-instant events keep their capture order). Concurrent recorders
// interleave nondeterministically in capture order; sorting by the
// recorded offset makes the trace itself the canonical artifact.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Replay re-issues a schedule against the wall clock: event i fires at
// offset events[i].At/speed from the call (speed 2 replays twice as
// fast; <= 0 selects 1, exact recorded spacing). issue is called on the
// caller's goroutine, strictly in slice order — the request *sequence* is
// exactly the trace regardless of timing, which is what makes replays
// deterministic; only the wall-clock spacing is best-effort. For open-loop
// semantics issue must not block on request completion (submit, don't
// wait).
func Replay(events []Event, speed float64, issue func(Event)) {
	if speed <= 0 {
		speed = 1
	}
	start := time.Now()
	for _, ev := range events {
		target := start.Add(time.Duration(float64(ev.At) / speed))
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		issue(ev)
	}
}
