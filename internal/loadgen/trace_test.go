package loadgen

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleSchedule(t *testing.T) []Event {
	t.Helper()
	evs, err := Generate(Spec{
		Arrival: "burst", QPS: 3000, Duration: 100 * time.Millisecond,
		Seed: 11, Tenants: 2,
		Workloads: []string{"aes", "llama2-inference"},
		Policies:  []string{"Conduit", "DM-Offloading"},
		SLO:       25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) < 10 {
		t.Fatalf("schedule too small for a meaningful test: %d events", len(evs))
	}
	return evs
}

// TestTraceRoundTrip: Write then Read reproduces the event slice exactly,
// through both an in-memory buffer and the file helpers; the format is
// one JSON object per line.
func TestTraceRoundTrip(t *testing.T) {
	evs := sampleSchedule(t)
	var buf bytes.Buffer
	if err := Write(&buf, evs); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(evs) {
		t.Fatalf("trace has %d lines for %d events", lines, len(evs))
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("in-memory trace round-trip lost information")
	}

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := WriteFile(path, evs); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("file trace round-trip lost information")
	}

	// Blank lines are tolerated; corrupt lines fail with the line number.
	if _, err := Read(strings.NewReader("\n" + `{"at":5,"tenant":"t","workload":"w","policy":"p"}` + "\n\n")); err != nil {
		t.Fatalf("blank lines must be tolerated: %v", err)
	}
	if _, err := Read(strings.NewReader(`{"at":5}` + "\nnot json\n")); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("corrupt trace error must name the line: %v", err)
	}
}

// TestReplayReproducesSequence is the replay-determinism pin: replaying a
// schedule re-issues the identical request sequence — every field, in
// order — regardless of replay speed, including through a
// record->write->read round trip.
func TestReplayReproducesSequence(t *testing.T) {
	evs := sampleSchedule(t)
	for _, speed := range []float64{0, 1000} { // 0 selects exact spacing
		if speed == 0 {
			// Exact spacing of a 100ms schedule is too slow for a unit
			// test loop; compress the schedule instead of skipping it.
			compressed := make([]Event, len(evs))
			copy(compressed, evs)
			for i := range compressed {
				compressed[i].At /= 50
			}
			var got []Event
			Replay(compressed, speed, func(ev Event) { got = append(got, ev) })
			if !reflect.DeepEqual(got, compressed) {
				t.Fatal("exact-spacing replay did not reproduce the sequence")
			}
			continue
		}
		var got []Event
		Replay(evs, speed, func(ev Event) { got = append(got, ev) })
		if !reflect.DeepEqual(got, evs) {
			t.Fatalf("replay at speed %v did not reproduce the sequence", speed)
		}
	}

	// Round trip through the trace format, then replay: still identical.
	var buf bytes.Buffer
	if err := Write(&buf, evs); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	Replay(loaded, 1e6, func(ev Event) { got = append(got, ev) })
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("record -> trace -> replay did not reproduce the sequence")
	}
}

// TestReplayPacing: replay takes at least the scaled span of the
// schedule (sleeps guarantee a lower bound; upper bounds would flake).
func TestReplayPacing(t *testing.T) {
	evs := []Event{
		{At: 0, Tenant: "t", Workload: "w", Policy: "p"},
		{At: 40 * time.Millisecond, Tenant: "t", Workload: "w", Policy: "p"},
	}
	start := time.Now()
	Replay(evs, 2, func(Event) {}) // 40ms span at 2x -> >= 20ms
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("replay finished in %v, want >= 20ms of pacing", elapsed)
	}
}

// TestRecorderCapturesAndSorts: concurrent Records all survive, and
// Events returns them ordered by observed offset so the trace is a
// canonical artifact.
func TestRecorderCapturesAndSorts(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				rec.Record("t", "w", "Conduit", time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	evs := rec.Events()
	if len(evs) != 200 {
		t.Fatalf("recorded %d events, want 200", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("recorded trace not sorted by offset")
		}
	}
	if evs[0].Deadline != time.Millisecond || evs[0].Workload != "w" {
		t.Fatalf("recorded event lost fields: %+v", evs[0])
	}
}
