package loadgen

import (
	"fmt"
	"math"
	"time"

	"conduit/internal/sim"
)

// Stream derives the seed of substream i of root seed, SplitMix64-style:
// the root state is advanced i+1 golden-gamma steps and passed through
// the SplitMix64 finalizer, which is exactly how SplitMix64 defines
// split(). The finalizer matters: it scrambles the arithmetic progression
// so derived seeds land pseudo-randomly in the generator's state space
// and substreams are decorrelated.
//
// The linear derivation it replaces — seed + id*0x9e3779b9 — handed the
// raw progression to the generator: stream states differed by small
// multiples of a 32-bit constant, so nearby (seed, id) pairs collided
// trivially (seed s with id k equals seed s+k*0x9e3779b9 with id 0,
// making "adjacent" seeds share whole client streams) and un-finalized
// states in arithmetic progression are exactly the inputs SplitMix64's
// own stream-splitting rule exists to avoid.
func Stream(seed, i uint64) uint64 {
	z := seed + (i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// An Arrival produces successive inter-arrival gaps from an explicitly
// seeded RNG. Implementations are stateful iterators (a burst process
// remembers which phase it is in); create a fresh value per schedule.
type Arrival interface {
	// Gap returns the time between the previous arrival and the next.
	Gap(rng *sim.RNG) time.Duration
}

// expGap draws an exponentially distributed gap at the given mean rate
// (requests per second) — the memoryless inter-arrival law of a Poisson
// process.
func expGap(rng *sim.RNG, qps float64) time.Duration {
	u := rng.Float64() // [0, 1)
	return time.Duration(-math.Log1p(-u) / qps * float64(time.Second))
}

// Poisson is the open-loop memoryless arrival process at a constant mean
// rate: independent exponential gaps, the standard model for aggregate
// request traffic from many independent clients.
type Poisson struct {
	QPS float64
}

// Gap implements Arrival.
func (p *Poisson) Gap(rng *sim.RNG) time.Duration { return expGap(rng, p.QPS) }

// Burst is a two-state Markov-modulated Poisson process (on-off MMPP):
// the arrival rate alternates between a high and a low phase with
// exponentially distributed dwell times, producing the flash-crowd /
// quiet-period texture closed-loop generators can never emit. Rates are
// normalized so the long-run mean offered load is QPS.
type Burst struct {
	// QPS is the long-run mean rate.
	QPS float64
	// Factor is the high:low rate ratio (default 8).
	Factor float64
	// Dwell is the mean phase duration (default 200ms).
	Dwell time.Duration

	started   bool
	high      bool
	remaining time.Duration
}

func (b *Burst) defaults() (factor float64, dwell time.Duration) {
	factor = b.Factor
	if factor <= 1 {
		factor = 8
	}
	dwell = b.Dwell
	if dwell <= 0 {
		dwell = 200 * time.Millisecond
	}
	return factor, dwell
}

// rate returns the current phase's rate. With mean phase durations equal,
// the long-run mean is (hi+lo)/2 = QPS when hi = 2F/(F+1)*QPS, lo = hi/F.
func (b *Burst) rate() float64 {
	f, _ := b.defaults()
	hi := b.QPS * 2 * f / (f + 1)
	if b.high {
		return hi
	}
	return hi / f
}

// Gap implements Arrival: it consumes phase dwell time until an arrival
// fires, toggling phases (and redrawing an exponential dwell) whenever
// the candidate gap overruns the current phase.
func (b *Burst) Gap(rng *sim.RNG) time.Duration {
	_, dwell := b.defaults()
	if !b.started {
		b.started = true
		b.high = true
		b.remaining = expGap(rng, 1/dwell.Seconds())
	}
	var gap time.Duration
	for {
		d := expGap(rng, b.rate())
		if d <= b.remaining {
			b.remaining -= d
			return gap + d
		}
		gap += b.remaining
		b.high = !b.high
		b.remaining = expGap(rng, 1/dwell.Seconds())
	}
}

// Diurnal modulates a Poisson process with a sinusoidal rate — a
// compressed day/night cycle: rate(t) = QPS * (1 + Amplitude*sin(2πt/Period)).
type Diurnal struct {
	// QPS is the mean rate over a whole period.
	QPS float64
	// Amplitude in [0, 1) is the peak-to-mean swing (default 0.8).
	Amplitude float64
	// Period is the cycle length (default 10s — a compressed day).
	Period time.Duration

	at time.Duration
}

// Gap implements Arrival: each gap is exponential at the instantaneous
// rate, evaluated at the process's accumulated position in the cycle.
func (d *Diurnal) Gap(rng *sim.RNG) time.Duration {
	amp := d.Amplitude
	if amp <= 0 || amp >= 1 {
		amp = 0.8
	}
	period := d.Period
	if period <= 0 {
		period = 10 * time.Second
	}
	rate := d.QPS * (1 + amp*math.Sin(2*math.Pi*d.at.Seconds()/period.Seconds()))
	gap := expGap(rng, rate)
	d.at += gap
	return gap
}

// Closed is the degenerate closed-loop "arrival" process: zero gaps. The
// schedule carries no timing — pacing comes from completions, i.e. the
// issuer must block on each request (Server.Do) instead of pacing
// submissions. It exists so closed-loop runs draw their (tenant,
// workload, policy) picks from the same seed-split machinery and can be
// recorded and replayed like any other trace.
type Closed struct{}

// Gap implements Arrival.
func (Closed) Gap(*sim.RNG) time.Duration { return 0 }

// NewArrival builds the named arrival process at the given mean rate.
// Names: "poisson", "burst", "diurnal", "closed".
func NewArrival(name string, qps float64) (Arrival, error) {
	if name != "closed" && qps <= 0 {
		return nil, fmt.Errorf("loadgen: arrival %q needs a positive rate (got %v)", name, qps)
	}
	switch name {
	case "poisson":
		return &Poisson{QPS: qps}, nil
	case "burst":
		return &Burst{QPS: qps}, nil
	case "diurnal":
		return &Diurnal{QPS: qps}, nil
	case "closed":
		return Closed{}, nil
	}
	return nil, fmt.Errorf("loadgen: unknown arrival process %q (have poisson, burst, diurnal, closed)", name)
}

// Spec describes a deterministic traffic schedule.
type Spec struct {
	// Arrival names the arrival process: "poisson", "burst", "diurnal"
	// (open-loop, timed by QPS) or "closed" (untimed; needs MaxEvents).
	Arrival string
	// QPS is the mean offered load for open-loop arrivals.
	QPS float64
	// Duration bounds the schedule's span (events with At < Duration).
	Duration time.Duration
	// MaxEvents caps the schedule length; 0 means Duration-bounded only.
	MaxEvents int
	// Seed is the root RNG seed; every stochastic choice below draws from
	// a Stream-derived substream of it.
	Seed uint64
	// Tenants is the number of accounting principals events round-robin
	// across (min 1), named "tenant-00", "tenant-01", ...
	Tenants int
	// Workloads and Policies are the pick sets each event draws from.
	Workloads []string
	Policies  []string
	// SLO, when nonzero, stamps every event with a deadline budget.
	SLO time.Duration
}

// Generate expands spec into its timestamped event schedule. The same
// spec always yields the identical schedule: arrivals, workload picks,
// and policy picks each consume an independent substream of spec.Seed, so
// changing the pick sets never perturbs the arrival timing and vice
// versa.
func Generate(spec Spec) ([]Event, error) {
	if len(spec.Workloads) == 0 || len(spec.Policies) == 0 {
		return nil, fmt.Errorf("loadgen: schedule needs at least one workload and one policy")
	}
	arr, err := NewArrival(spec.Arrival, spec.QPS)
	if err != nil {
		return nil, err
	}
	if _, closed := arr.(Closed); closed && spec.MaxEvents <= 0 {
		return nil, fmt.Errorf("loadgen: closed-loop schedule needs MaxEvents (it has no timing to bound it)")
	}
	if spec.Duration <= 0 && spec.MaxEvents <= 0 {
		return nil, fmt.Errorf("loadgen: schedule needs a Duration or MaxEvents bound")
	}
	tenants := spec.Tenants
	if tenants < 1 {
		tenants = 1
	}
	var (
		arrivals  = sim.NewRNG(Stream(spec.Seed, 0))
		workloads = sim.NewRNG(Stream(spec.Seed, 1))
		policies  = sim.NewRNG(Stream(spec.Seed, 2))
	)
	var events []Event
	var at time.Duration
	for i := 0; spec.MaxEvents <= 0 || i < spec.MaxEvents; i++ {
		at += arr.Gap(arrivals)
		if spec.Duration > 0 && at >= spec.Duration {
			break
		}
		events = append(events, Event{
			At:       at,
			Tenant:   fmt.Sprintf("tenant-%02d", i%tenants),
			Workload: spec.Workloads[workloads.Intn(len(spec.Workloads))],
			Policy:   spec.Policies[policies.Intn(len(spec.Policies))],
			Deadline: spec.SLO,
		})
	}
	return events, nil
}
