package loadgen

import (
	"math"
	"reflect"
	"testing"
	"time"

	"conduit/internal/sim"
)

// TestStreamIsSplitMixSplit pins the stream-split algorithm to its
// definition — Stream(seed, i) is the (i+1)-th output of a SplitMix64
// generator seeded with seed, i.e. the split IS a generator step — so
// replay determinism cannot drift across versions.
func TestStreamIsSplitMixSplit(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		r := sim.NewRNG(seed)
		for i := uint64(0); i < 16; i++ {
			if want, got := r.Uint64(), Stream(seed, i); got != want {
				t.Fatalf("Stream(%d,%d) = %#x, want RNG output %#x", seed, i, got, want)
			}
		}
	}
}

// TestStreamReplacesLinearDerivation: the bug the helper fixes — under
// seed + id*0x9e3779b9, nearby (seed, id) pairs share entire client
// streams; under Stream they do not, and a dense (seed, id) grid derives
// all-distinct stream seeds.
func TestStreamReplacesLinearDerivation(t *testing.T) {
	const g32 = 0x9e3779b9
	// The linear scheme collides exactly: seed s with client id 2 is the
	// same stream as seed s+2*g32 with client id 0.
	s := uint64(1)
	if old1, old2 := s+2*g32, (s+2*g32)+0*g32; old1 != old2 {
		t.Fatal("test premise broken")
	}
	if Stream(s, 2) == Stream(s+2*g32, 0) {
		t.Error("Stream still collides on the linear scheme's collision pair")
	}
	// Dense grid of small seeds x client ids: every derived seed distinct.
	seen := make(map[uint64][2]uint64)
	for seed := uint64(0); seed < 64; seed++ {
		for id := uint64(0); id < 64; id++ {
			v := Stream(seed, id)
			if prev, dup := seen[v]; dup {
				t.Fatalf("Stream(%d,%d) == Stream(%d,%d)", seed, id, prev[0], prev[1])
			}
			seen[v] = [2]uint64{seed, id}
		}
	}
}

// TestGenerateDeterministicAndSeedSensitive: the same spec yields the
// identical schedule; a different seed yields a different one; and the
// pick substreams are independent — changing the policy set does not
// perturb arrival times or workload picks.
func TestGenerateDeterministicAndSeedSensitive(t *testing.T) {
	spec := Spec{
		Arrival: "poisson", QPS: 5000, Duration: 200 * time.Millisecond,
		Seed: 7, Tenants: 3,
		Workloads: []string{"aes", "jacobi-1d", "heat-3d"},
		Policies:  []string{"Conduit", "BW-Offloading"},
		SLO:       40 * time.Millisecond,
	}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	spec2 := spec
	spec2.Seed = 8
	c, _ := Generate(spec2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated the same schedule")
	}
	// Substream independence: a different policy set must leave arrival
	// times, workloads, and tenants untouched.
	spec3 := spec
	spec3.Policies = []string{"Ideal"}
	d, err := Generate(spec3)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != len(a) {
		t.Fatalf("policy set changed the schedule length: %d vs %d", len(d), len(a))
	}
	for i := range d {
		if d[i].At != a[i].At || d[i].Workload != a[i].Workload || d[i].Tenant != a[i].Tenant {
			t.Fatalf("event %d: policy set perturbed an independent substream", i)
		}
	}
	// Every event respects the spec.
	var last time.Duration
	for i, ev := range a {
		if ev.At < last {
			t.Fatalf("event %d: arrivals not monotone", i)
		}
		last = ev.At
		if ev.At >= spec.Duration || ev.Deadline != spec.SLO {
			t.Fatalf("event %d out of spec: %+v", i, ev)
		}
		if ev.Tenant != []string{"tenant-00", "tenant-01", "tenant-02"}[i%3] {
			t.Fatalf("event %d: tenant %q not round-robin", i, ev.Tenant)
		}
	}
}

// TestArrivalRatesAndShapes: each open-loop process hits its mean rate
// (deterministically, so exact tolerances are safe), gaps are
// non-negative, and the burst process is visibly burstier than Poisson.
func TestArrivalRatesAndShapes(t *testing.T) {
	// 10s spans one full default diurnal period: the sinusoid's high and
	// low halves must both be inside the window for the mean to be QPS.
	const qps, dur = 2000.0, 10 * time.Second
	gapsOf := func(name string) []time.Duration {
		arr, err := NewArrival(name, qps)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(Stream(123, 0))
		var gaps []time.Duration
		var at time.Duration
		for at < dur {
			g := arr.Gap(rng)
			if g < 0 {
				t.Fatalf("%s: negative gap %v", name, g)
			}
			at += g
			gaps = append(gaps, g)
		}
		return gaps
	}
	cv := func(gaps []time.Duration) float64 {
		var sum, sumsq float64
		for _, g := range gaps {
			s := g.Seconds()
			sum += s
			sumsq += s * s
		}
		n := float64(len(gaps))
		mean := sum / n
		return math.Sqrt(sumsq/n-mean*mean) / mean
	}
	for _, name := range []string{"poisson", "burst", "diurnal"} {
		gaps := gapsOf(name)
		rate := float64(len(gaps)) / dur.Seconds()
		if rate < 0.80*qps || rate > 1.20*qps {
			t.Errorf("%s: achieved %.0f qps, want %.0f +-20%%", name, rate, qps)
		}
	}
	if pcv, bcv := cv(gapsOf("poisson")), cv(gapsOf("burst")); bcv <= pcv {
		t.Errorf("burst process not burstier than poisson: cv %.2f vs %.2f", bcv, pcv)
	}
}

// TestGenerateValidation: the error cases that keep a bad flag from
// becoming an infinite loop or an empty silent run.
func TestGenerateValidation(t *testing.T) {
	base := Spec{Arrival: "poisson", QPS: 100, Duration: time.Second,
		Workloads: []string{"w"}, Policies: []string{"p"}}
	bad := []func(*Spec){
		func(s *Spec) { s.Workloads = nil },
		func(s *Spec) { s.Policies = nil },
		func(s *Spec) { s.QPS = 0 },
		func(s *Spec) { s.Arrival = "bogus" },
		func(s *Spec) { s.Arrival = "closed"; s.MaxEvents = 0 }, // untimed needs a count
		func(s *Spec) { s.Duration = 0; s.MaxEvents = 0 },
	}
	for i, mutate := range bad {
		s := base
		mutate(&s)
		if _, err := Generate(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	// Closed-loop with a count works and carries no timing.
	s := base
	s.Arrival, s.QPS, s.MaxEvents, s.Duration = "closed", 0, 10, 0
	evs, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 10 {
		t.Fatalf("closed schedule has %d events, want 10", len(evs))
	}
	for _, ev := range evs {
		if ev.At != 0 {
			t.Fatal("closed-loop schedule must carry no arrival timing")
		}
	}
}
