// Package loadgen is the open-loop traffic subsystem: deterministic
// arrival processes, schedule generation, and trace record/replay for the
// serving layer.
//
// The closed-loop generator the serving command started with (-clients
// goroutines issuing back-to-back) self-throttles: when the server slows
// down, the offered load drops with it, so overload, queueing, and
// tail-latency behavior never appear. Production traffic is open-loop —
// arrivals do not wait for completions — and that is what this package
// models. An Arrival process turns an explicitly seeded RNG into a stream
// of inter-arrival gaps (Poisson, bursty on-off MMPP, diurnal ramp, or
// degenerate closed-loop), Generate expands a Spec into a timestamped
// schedule of (tenant, workload, policy, deadline) events, and Replay
// paces any schedule against the wall clock at an arbitrary time scale.
//
// Determinism is the organizing constraint, exactly as in the simulator:
// every stochastic choice draws from a SplitMix64 substream derived with
// Stream, so the same Spec always yields the identical event sequence,
// and a recorded trace (JSONL, one Event per line — see Read/Write) is a
// reproducible artifact: replaying it re-issues the identical request
// sequence with the recorded arrival spacing, optionally time-scaled.
package loadgen
