package wiretest

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"conduit/internal/loadgen"
	"conduit/internal/router"
	"conduit/internal/wire"
)

// TestTwoTargetPlacementAndMerge: a two-target fleet places each
// workload on its consistent-hash home, and the fleet report is the
// exact merge of the per-target snapshots.
func TestTwoTargetPlacementAndMerge(t *testing.T) {
	names := resolveNames(t, []string{"aes", "jacobi-1d"})
	events := equivSchedule(t, 20, names)

	t0 := startTarget(t, "-name", "t0", "-mix", "aes,jacobi-1d", "-scale", "1", "-prefork", "0")
	t1 := startTarget(t, "-name", "t1", "-mix", "aes,jacobi-1d", "-scale", "1", "-prefork", "0")
	rt := dialFleet(t, router.Options{Retries: 2}, t0, t1)

	homes := map[string]string{}
	for _, w := range names {
		homes[w] = rt.Home(w)
	}

	for i, ev := range events {
		resp, from, err := rt.Do(wire.Request{Tenant: ev.Tenant, Workload: ev.Workload, Policy: ev.Policy})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Code != wire.CodeOK {
			t.Fatalf("request %d: code %v (%s)", i, resp.Code, resp.Error)
		}
		if from != homes[ev.Workload] {
			t.Errorf("request %d (%s) served by %s, home is %s", i, ev.Workload, from, homes[ev.Workload])
		}
	}

	fleet, missing := rt.Snapshot()
	if len(missing) != 0 {
		t.Fatalf("snapshot missing targets: %v", missing)
	}
	if len(fleet.Targets) != 2 {
		t.Fatalf("fleet has %d snapshots, want 2", len(fleet.Targets))
	}

	// The merged report equals merging the per-target rows in either
	// order (commutativity) and any grouping (associativity).
	a, b := fleet.Targets[0].Tenants, fleet.Targets[1].Tenants
	ab := encodeReport(t, router.MergeTenants(a, b))
	ba := encodeReport(t, router.MergeTenants(b, a))
	nested := encodeReport(t, router.MergeTenants(router.MergeTenants(a), b))
	if !bytes.Equal(ab, ba) || !bytes.Equal(ab, nested) {
		t.Error("tenant merge is order- or grouping-dependent")
	}
	if got := encodeReport(t, fleet.Tenants); !bytes.Equal(got, ab) {
		t.Error("fleet report is not the merge of its per-target snapshots")
	}

	var total int64
	for _, row := range fleet.Tenants {
		total += row.Requests
	}
	if total != int64(len(events)) {
		t.Errorf("merged report accounts %d requests, want %d", total, len(events))
	}
	var wallTotal int64
	for _, snap := range fleet.Targets {
		wallTotal += snap.Wall.Count()
	}
	if fleet.Wall.Count() != wallTotal || wallTotal != int64(len(events)) {
		t.Errorf("fleet wall merge: %d samples (targets sum %d), want %d",
			fleet.Wall.Count(), wallTotal, len(events))
	}
}

// TestKillTargetMidRunFailover: SIGKILL a workload's home target mid
// run; the router must fail the connection over to the survivor and
// keep answering.
func TestKillTargetMidRunFailover(t *testing.T) {
	t0 := startTarget(t, "-name", "t0", "-mix", "aes", "-scale", "1", "-prefork", "0")
	t1 := startTarget(t, "-name", "t1", "-mix", "aes", "-scale", "1", "-prefork", "0")
	rt := dialFleet(t, router.Options{Retries: 2}, t0, t1)

	aes := resolveNames(t, []string{"aes"})[0]
	byName := map[string]*fleetTarget{"t0": t0, "t1": t1}
	home := byName[rt.Home(aes)]

	do := func(i int) wire.Response {
		t.Helper()
		resp, _, err := rt.Do(wire.Request{Tenant: "t", Workload: aes, Policy: "Conduit"})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		return resp
	}
	before := do(0)
	if before.Code != wire.CodeOK {
		t.Fatalf("warmup request failed: %v (%s)", before.Code, before.Error)
	}

	home.kill()

	for i := 1; i <= 4; i++ {
		resp := do(i)
		if resp.Code != wire.CodeOK {
			t.Fatalf("request %d after kill: code %v (%s)", i, resp.Code, resp.Error)
		}
		// The survivor computes the identical deterministic result.
		if resp.ElapsedSimNS != before.ElapsedSimNS || resp.EnergyJ != before.EnergyJ {
			t.Errorf("request %d after failover changed the simulated outcome: %+v vs %+v",
				i, resp, before)
		}
	}
	if s := rt.Stats(); s.Retries < 1 {
		t.Errorf("failover recorded no retries: %+v", s)
	}
	if _, missing := rt.Snapshot(); len(missing) != 1 {
		t.Errorf("snapshot should miss exactly the killed target, missed %v", missing)
	}
}

// chaosRun drives one lock-step schedule through a fresh single-target
// fleet replaying the given fault schedule, with router breakers armed,
// and returns the observable sequence: per-request outcome labels plus
// final router stats and breaker trips.
func chaosRun(t *testing.T, faultLog string, events []loadgen.Event) ([]string, router.Stats, int64) {
	t.Helper()
	ft := startTarget(t, "-name", "chaos", "-mix", "aes", "-scale", "1",
		"-concurrency", "1", "-prefork", "0", "-faultreplay", faultLog, "-retries", "1")
	rt := dialFleet(t, router.Options{Retries: 1, BreakerThreshold: 2, BreakerCooldown: 2}, ft)

	var seq []string
	for _, ev := range events {
		resp, _, err := rt.Do(wire.Request{Tenant: ev.Tenant, Workload: ev.Workload, Policy: ev.Policy})
		switch {
		case errors.Is(err, router.ErrBreakerOpen) || (err != nil && errors.Is(err, router.ErrNoTargets)):
			seq = append(seq, "refused")
		case err != nil:
			t.Fatalf("unexpected transport error: %v", err)
		default:
			seq = append(seq, fmt.Sprintf("code=%d", resp.Code))
		}
	}
	var trips int64
	for _, b := range rt.Breakers() {
		trips += b.Trips
	}
	return seq, rt.Stats(), trips
}

// TestBreakerTripsDeterministicUnderFaultReplay: record a fault
// schedule once, then replay it into two fresh fleets; the router's
// breaker trips, refusal pattern, and stats must be identical runs —
// cooldown is counted in requests, not wall time, so chaos recovery is
// as replayable across processes as it is inside one.
func TestBreakerTripsDeterministicUnderFaultReplay(t *testing.T) {
	events := equivSchedule(t, 24, []string{"aes"})
	logPath := t.TempDir() + "/faults.jsonl"

	// Record: a high fault rate with a single attempt per request, so
	// injected faults surface as response errors.
	rec := startTarget(t, "-name", "rec", "-mix", "aes", "-scale", "1",
		"-concurrency", "1", "-prefork", "0", "-faults", "0.9", "-faultseed", "5",
		"-retries", "1", "-faultlog", logPath)
	rtRec := dialFleet(t, router.Options{Retries: 1}, rec)
	sawError := false
	for _, ev := range events {
		resp, _, err := rtRec.Do(wire.Request{Tenant: ev.Tenant, Workload: ev.Workload, Policy: ev.Policy})
		if err == nil && resp.Code == wire.CodeError {
			sawError = true
		}
	}
	rtRec.DrainAll() // flushes the fault log before acking
	if !sawError {
		t.Fatal("recording run produced no injected errors; raise the rate")
	}
	if fi, err := os.Stat(logPath); err != nil || fi.Size() == 0 {
		t.Fatalf("fault log not written: %v", err)
	}

	seq1, stats1, trips1 := chaosRun(t, logPath, events)
	seq2, stats2, trips2 := chaosRun(t, logPath, events)

	if trips1 < 1 {
		t.Errorf("replayed chaos never tripped the router breaker (stats %+v, seq %v)", stats1, seq1)
	}
	if fmt.Sprint(seq1) != fmt.Sprint(seq2) {
		t.Errorf("outcome sequences differ across identical replays\nrun1: %v\nrun2: %v", seq1, seq2)
	}
	if stats1 != stats2 {
		t.Errorf("router stats differ across identical replays\nrun1: %+v\nrun2: %+v", stats1, stats2)
	}
	if trips1 != trips2 {
		t.Errorf("breaker trips differ across identical replays: %d vs %d", trips1, trips2)
	}
}

// TestDrainDuringTrafficNoLeakedForks is the -race workout for the
// router <-> target path: concurrent clients hammer a two-target fleet
// with pooling enabled while one target is gracefully SIGTERMed mid
// run. Traffic must keep succeeding (failover), the drained target
// must exit cleanly, and after DrainAll no device pool anywhere may
// hold an unclosed fork.
func TestDrainDuringTrafficNoLeakedForks(t *testing.T) {
	t0 := startTarget(t, "-name", "t0", "-mix", "aes", "-scale", "1",
		"-prefork", "2", "-concurrency", "4")
	t1 := startTarget(t, "-name", "t1", "-mix", "aes", "-scale", "1",
		"-prefork", "2", "-concurrency", "4")
	rt := dialFleet(t, router.Options{Retries: 3}, t0, t1)

	aes := resolveNames(t, []string{"aes"})[0]
	// Drain the target actually serving the traffic, so failover (not
	// placement luck) is what keeps requests succeeding.
	byName := map[string]*fleetTarget{"t0": t0, "t1": t1}
	home, other := byName[rt.Home(aes)], t1
	if home == t1 {
		other = t0
	}
	const clients, perClient = 4, 40
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		ok      int
		failed  int
		started = make(chan struct{})
		once    sync.Once
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, _, err := rt.Do(wire.Request{
					Tenant: fmt.Sprintf("tenant-%02d", c), Workload: aes, Policy: "Conduit",
				})
				mu.Lock()
				if err == nil && resp.Code == wire.CodeOK {
					ok++
					if ok >= 8 {
						once.Do(func() { close(started) })
					}
				} else {
					failed++
				}
				mu.Unlock()
			}
		}(c)
	}
	// Once traffic is demonstrably flowing, gracefully drain the home
	// target while the bulk of the run is still in flight.
	<-started
	home.sigterm()
	wg.Wait()

	if err := home.waitExit(30 * time.Second); err != nil {
		t.Errorf("SIGTERMed target exited non-zero: %v", err)
	}
	if ok == 0 {
		t.Fatalf("no request succeeded (%d failed)", failed)
	}

	acks := rt.DrainAll()
	if len(acks) == 0 {
		t.Fatal("no drain acks from the fleet")
	}
	for _, td := range acks {
		for _, p := range td.Ack.Pools {
			if !p.Closed {
				t.Errorf("target %s: pool %s not closed after drain", td.Target, p.Name)
			}
			if p.Idle != 0 {
				t.Errorf("target %s: pool %s leaked %d idle fork(s) after drain", td.Target, p.Name, p.Idle)
			}
		}
	}
	if err := other.waitExit(30 * time.Second); err != nil {
		t.Errorf("drained target exited non-zero: %v", err)
	}
	t.Logf("traffic: %d ok, %d failed during drain; stats %+v", ok, failed, rt.Stats())
}
