package wiretest

import (
	"bytes"
	"os"
	"reflect"
	"testing"
	"time"

	conduit "conduit"
	"conduit/internal/histo"
	"conduit/internal/loadgen"
	"conduit/internal/router"
	"conduit/internal/target"
	"conduit/internal/wire"
	"conduit/internal/workloads"
)

// resolveNames maps workload aliases ("aes") to their registered
// names ("AES") — requests must name workloads exactly as the server
// registered them, on both sides of the wire.
func resolveNames(t *testing.T, names []string) []string {
	t.Helper()
	out := make([]string, len(names))
	for i, name := range names {
		w, ok := workloads.Find(name, 1)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		out[i] = w.Name
	}
	return out
}

// equivSchedule is the deterministic request sequence both serving
// modes replay lock-step: closed arrivals (no timing), seeded picks.
func equivSchedule(t *testing.T, n int, names []string) []loadgen.Event {
	t.Helper()
	events, err := loadgen.Generate(loadgen.Spec{
		Arrival: "closed", MaxEvents: n, Seed: 7, Tenants: 3,
		Workloads: resolveNames(t, names), Policies: []string{"Conduit", "CPU"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatalf("schedule has %d events, want %d", len(events), n)
	}
	return events
}

// inProcessFrames replays the schedule lock-step against an in-process
// conduit.Server and projects every response through the same
// conversion the target server applies, yielding the reference frame
// sequence plus the final tenant rows and pool rows.
func inProcessFrames(t *testing.T, opts conduit.ServeOptions, names []string, events []loadgen.Event) ([][]byte, []wire.TenantRow, []wire.PoolRow) {
	t.Helper()
	srv := conduit.NewServer(conduit.DefaultConfig(), opts)
	for _, name := range names {
		w, ok := workloads.Find(name, 1)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		if err := srv.Register(w.Name, w.Source); err != nil {
			t.Fatal(err)
		}
	}
	frames := make([][]byte, 0, len(events))
	for i, ev := range events {
		id := uint64(i + 1)
		ch, err := srv.Submit(conduit.Request{
			Tenant: ev.Tenant, Workload: ev.Workload, Policy: ev.Policy, Deadline: ev.Deadline,
		})
		var frame wire.Response
		if err != nil {
			frame = target.WireResponse(id, nil, err)
		} else {
			resp := <-ch
			frame = target.WireResponse(id, resp, resp.Err)
		}
		frames = append(frames, wire.Append(nil, frame))
	}
	rows := target.WireTenants(srv.Tenants())
	srv.Drain()
	pools := target.WirePools(srv.PoolStats())
	return frames, rows, pools
}

// routedFrames replays the same schedule lock-step through a router
// over the given fleet and returns the re-encoded response frames.
func routedFrames(t *testing.T, rt *router.Router, events []loadgen.Event) [][]byte {
	t.Helper()
	frames := make([][]byte, 0, len(events))
	for i, ev := range events {
		resp, _, err := rt.Do(wire.Request{
			Tenant: ev.Tenant, Workload: ev.Workload, Policy: ev.Policy,
			DeadlineNS: int64(ev.Deadline),
		})
		if err != nil {
			t.Fatalf("request %d (%s/%s): %v", i, ev.Workload, ev.Policy, err)
		}
		frames = append(frames, wire.Append(nil, resp))
	}
	return frames
}

// encodeReport canonicalizes tenant rows for byte comparison by
// wrapping them in a Snapshot frame with a fixed envelope and an empty
// wall histogram (wall-clock latency is the one legitimately
// nondeterministic quantity, shipped separately by design).
func encodeReport(t *testing.T, rows []wire.TenantRow) []byte {
	t.Helper()
	return wire.Append(nil, wire.Snapshot{ID: 1, Target: "report", Tenants: rows, Wall: histo.New()})
}

// TestRoutedByteIdenticalToInProcess is the wire tier's equivalence
// proof: a one-target fleet driven lock-step through a real OS target
// process answers every request with a response frame byte-identical
// to the in-process Server.Submit projection, and its final tenant
// report and pool accounting are byte-identical too. Serving options
// pin the deterministic configuration (no pooling, no coalescing,
// concurrency 1) so the two runs share every counter exactly.
func TestRoutedByteIdenticalToInProcess(t *testing.T) {
	names := []string{"aes", "jacobi-1d"}
	events := equivSchedule(t, 24, names)

	wantFrames, wantRows, wantPools := inProcessFrames(t, conduit.ServeOptions{
		Concurrency: 1, Prefork: 0, Coalesce: false,
	}, names, events)

	ft := startTarget(t, "-name", "t0", "-mix", "aes,jacobi-1d", "-scale", "1",
		"-concurrency", "1", "-prefork", "0", "-coalesce=false")
	rt := dialFleet(t, router.Options{Retries: 1}, ft)

	gotFrames := routedFrames(t, rt, events)
	for i := range wantFrames {
		if !bytes.Equal(gotFrames[i], wantFrames[i]) {
			t.Fatalf("response %d differs across the wire\nrouted:     %x\nin-process: %x",
				i, gotFrames[i], wantFrames[i])
		}
	}

	fleet, missing := rt.Snapshot()
	if len(missing) != 0 {
		t.Fatalf("snapshot missing targets: %v", missing)
	}
	if got, want := encodeReport(t, fleet.Tenants), encodeReport(t, wantRows); !bytes.Equal(got, want) {
		t.Errorf("tenant report differs across the wire\nrouted:     %+v\nin-process: %+v",
			fleet.Tenants, wantRows)
	}
	if got, want := fleet.Wall.Count(), int64(len(events)); got != want {
		t.Errorf("fleet wall histogram holds %d samples, want %d", got, want)
	}

	acks := rt.DrainAll()
	var ack wire.DrainAck
	ok := false
	for _, td := range acks {
		if td.Target == "t0" {
			ack, ok = td.Ack, true
		}
	}
	if !ok {
		t.Fatalf("no drain ack from t0 (acks: %v)", acks)
	}
	if !reflect.DeepEqual(ack.Pools, wantPools) {
		t.Errorf("drained pool rows differ\nrouted:     %+v\nin-process: %+v", ack.Pools, wantPools)
	}
	if err := ft.waitExit(30 * time.Second); err != nil {
		t.Errorf("target exited non-zero after drain: %v", err)
	}
}

// TestTargetRejectsBadRequests: protocol-level validation happens
// before the serving engine sees (and accounts) the request.
func TestTargetRejectsBadRequests(t *testing.T) {
	ft := startTarget(t, "-name", "t0", "-mix", "aes", "-scale", "1", "-prefork", "0")
	rt := dialFleet(t, router.Options{Retries: 1}, ft)

	aes := resolveNames(t, []string{"aes"})[0]
	for _, tc := range []struct {
		name string
		req  wire.Request
	}{
		{"unknown workload", wire.Request{Tenant: "t", Workload: "no-such", Policy: "Conduit"}},
		{"unknown policy", wire.Request{Tenant: "t", Workload: aes, Policy: "no-such"}},
		{"partial shard set", wire.Request{Tenant: "t", Workload: aes, Policy: "Conduit", Shards: []uint32{0, 1}}},
	} {
		resp, _, err := rt.Do(tc.req)
		if err != nil {
			t.Fatalf("%s: transport error: %v", tc.name, err)
		}
		if resp.Code != wire.CodeBadRequest {
			t.Errorf("%s: code %v, want CodeBadRequest (%q)", tc.name, resp.Code, resp.Error)
		}
	}
	fleet, _ := rt.Snapshot()
	for _, row := range fleet.Tenants {
		if row.Requests != 0 {
			t.Errorf("rejected requests reached tenant accounting: %+v", row)
		}
	}
}

// TestZeroFaultRoutedMatchesFaultFree pins the recovery ladder's
// zero-overhead contract across the wire: a routed run with the whole
// recovery stack armed but an empty replayed fault schedule produces
// exactly one clean attempt per request (Attempts 1, everything else
// zero) and — once that deliberate attempt bookkeeping is normalized —
// response frames and tenant reports byte-identical to a routed run
// with no chaos configured at all.
func TestZeroFaultRoutedMatchesFaultFree(t *testing.T) {
	names := []string{"aes"}
	events := equivSchedule(t, 16, names)
	empty := t.TempDir() + "/empty-faults.jsonl"
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	common := []string{"-mix", "aes", "-scale", "1", "-concurrency", "1", "-prefork", "0", "-coalesce=false"}
	armed := startTarget(t, append([]string{"-name", "armed", "-faultreplay", empty,
		"-retries", "3", "-hedge", "-breaker", "4", "-fallback", "CPU"}, common...)...)
	plain := startTarget(t, append([]string{"-name", "plain"}, common...)...)

	rtArmed := dialFleet(t, router.Options{Retries: 1}, armed)
	rtPlain := dialFleet(t, router.Options{Retries: 1}, plain)

	armedFrames := routedResponses(t, rtArmed, events)
	plainFrames := routedResponses(t, rtPlain, events)
	for i := range events {
		a, p := armedFrames[i], plainFrames[i]
		if a.Recovery != (wire.Recovery{Attempts: 1}) {
			t.Fatalf("response %d: armed zero-fault run accrued recovery costs: %+v", i, a.Recovery)
		}
		if p.Recovery != (wire.Recovery{}) {
			t.Fatalf("response %d: plain run accrued recovery costs: %+v", i, p.Recovery)
		}
		a.Recovery, p.Recovery = wire.Recovery{}, wire.Recovery{}
		if !bytes.Equal(wire.Append(nil, a), wire.Append(nil, p)) {
			t.Fatalf("response %d differs between zero-fault and fault-free runs\narmed: %+v\nplain: %+v", i, a, p)
		}
	}

	fa, _ := rtArmed.Snapshot()
	fp, _ := rtPlain.Snapshot()
	for i := range fa.Tenants {
		fa.Tenants[i].Recovery = wire.Recovery{}
	}
	for i := range fp.Tenants {
		fp.Tenants[i].Recovery = wire.Recovery{}
	}
	if got, want := encodeReport(t, fa.Tenants), encodeReport(t, fp.Tenants); !bytes.Equal(got, want) {
		t.Errorf("tenant reports differ between zero-fault and fault-free runs\narmed: %+v\nplain: %+v",
			fa.Tenants, fp.Tenants)
	}
}

// routedResponses is routedFrames keeping the decoded responses.
func routedResponses(t *testing.T, rt *router.Router, events []loadgen.Event) []wire.Response {
	t.Helper()
	out := make([]wire.Response, 0, len(events))
	for i, ev := range events {
		resp, _, err := rt.Do(wire.Request{
			Tenant: ev.Tenant, Workload: ev.Workload, Policy: ev.Policy,
			DeadlineNS: int64(ev.Deadline),
		})
		if err != nil {
			t.Fatalf("request %d (%s/%s): %v", i, ev.Workload, ev.Policy, err)
		}
		out = append(out, resp)
	}
	return out
}
