package wiretest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"conduit/internal/metrics"
	"conduit/internal/router"
	"conduit/internal/trace"
	"conduit/internal/wire"
)

// tracedFleetRun drives one fixed sequential schedule through a fresh
// two-target fleet with the router tracer armed (unclocked — only the
// simulated timeline is recorded) and returns the fleet-merged trace
// export plus the router and remote span sets.
func tracedFleetRun(t *testing.T) ([]byte, []*trace.Span, map[string][]*trace.Span, *router.Router) {
	t.Helper()
	names := resolveNames(t, []string{"aes", "jacobi-1d"})
	events := equivSchedule(t, 16, names)

	// Coalescing off and pooling off: both are wall-clock-shaped
	// behaviors (who arrives while whom is in flight; what the refiller
	// got to first), and this test pins simulated-time bytes.
	t0 := startTarget(t, "-name", "t0", "-mix", "aes,jacobi-1d", "-scale", "1",
		"-prefork", "0", "-coalesce=false")
	t1 := startTarget(t, "-name", "t1", "-mix", "aes,jacobi-1d", "-scale", "1",
		"-prefork", "0", "-coalesce=false")
	tracer := trace.New(trace.Options{SampleEvery: 1})
	rt := dialFleet(t, router.Options{Retries: 2, Tracer: tracer}, t0, t1)

	for i, ev := range events {
		resp, _, err := rt.Do(wire.Request{Tenant: ev.Tenant, Workload: ev.Workload, Policy: ev.Policy})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Code != wire.CodeOK {
			t.Fatalf("request %d: code %v (%s)", i, resp.Code, resp.Error)
		}
	}

	remote := rt.RemoteSpans()
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "# process router")
	if err := trace.WriteJSONL(&buf, tracer.Spans()); err != nil {
		t.Fatal(err)
	}
	targets := make([]string, 0, len(remote))
	for name := range remote {
		targets = append(targets, name)
	}
	sort.Strings(targets)
	for _, name := range targets {
		spans := remote[name]
		trace.SortSpans(spans)
		fmt.Fprintf(&buf, "# process target %s\n", name)
		if err := trace.WriteJSONL(&buf, spans); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), tracer.Spans(), remote, rt
}

// TestRoutedTraceByteIdenticalAcrossFleets is the cross-process half of
// the determinism pin: the same seed and request schedule, driven into
// two entirely fresh fleets (new processes, new ports, new goroutine
// interleavings), must export byte-identical fleet-merged sim-time
// traces — router placement spans, per-target serve spans and all.
func TestRoutedTraceByteIdenticalAcrossFleets(t *testing.T) {
	first, routerSpans, remote, _ := tracedFleetRun(t)
	second, _, _, _ := tracedFleetRun(t)

	if len(routerSpans) == 0 {
		t.Fatal("router recorded no spans")
	}
	if len(remote) == 0 {
		t.Fatal("no remote spans came back over the wire")
	}
	if !bytes.Equal(first, second) {
		t.Errorf("fleet traces differ across fresh fleets\n--- first ---\n%s\n--- second ---\n%s",
			first, second)
	}
	for _, want := range []string{`"router.request"`, `"router.attempt"`, `"serve.request"`, "# process target t0", "# process target t1"} {
		if !bytes.Contains(first, []byte(want)) {
			t.Errorf("fleet trace missing %s", want)
		}
	}
	if bytes.Contains(first, []byte(`"wall_`)) {
		t.Error("fleet trace leaked a wall-clock field across the wire")
	}
}

// TestFleetTracePerfettoAndMetrics: the merged fleet trace renders as
// valid Perfetto trace_event JSON (one process per participant), and
// the fleet metrics fold produces a non-empty scrape covering every
// target.
func TestFleetTracePerfettoAndMetrics(t *testing.T) {
	_, routerSpans, remote, rt := tracedFleetRun(t)

	procs := []trace.Process{{Name: "router", Spans: routerSpans}}
	targets := make([]string, 0, len(remote))
	for name := range remote {
		targets = append(targets, name)
	}
	sort.Strings(targets)
	for _, name := range targets {
		spans := remote[name]
		trace.SortSpans(spans)
		procs = append(procs, trace.Process{Name: "target " + name, Spans: spans})
	}
	var buf bytes.Buffer
	if err := trace.WritePerfetto(&buf, procs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("fleet Perfetto export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("fleet Perfetto export holds no events")
	}

	samples, missing := rt.FleetMetrics()
	if len(missing) != 0 {
		t.Fatalf("fleet scrape missing targets: %v", missing)
	}
	var scrape bytes.Buffer
	if err := metrics.WriteText(&scrape, samples); err != nil {
		t.Fatal(err)
	}
	text := scrape.String()
	if text == "" {
		t.Fatal("fleet metrics scrape is empty")
	}
	for _, want := range []string{
		"conduit_router_requests_total",
		`conduit_serve_requests_total{`,
		`target="t0"`,
		`target="t1"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fleet scrape missing %s:\n%s", want, text)
		}
	}
}
