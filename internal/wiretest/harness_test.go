package wiretest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"conduit/internal/router"
	"conduit/internal/target"
)

// TestMain doubles as the target executable: when the harness re-execs
// the test binary with WIRETEST_TARGET=1, we run target.Main instead of
// the test suite — the same entry point cmd/conduit-target wraps, so
// the processes under test are real targets, not mocks.
func TestMain(m *testing.M) {
	if os.Getenv("WIRETEST_TARGET") == "1" {
		var args []string
		if raw := os.Getenv("WIRETEST_ARGS"); raw != "" {
			if err := json.Unmarshal([]byte(raw), &args); err != nil {
				fmt.Fprintf(os.Stderr, "wiretest child: bad WIRETEST_ARGS: %v\n", err)
				os.Exit(2)
			}
		}
		os.Exit(target.Main(args, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// fleetTarget is one spawned target process.
type fleetTarget struct {
	t      *testing.T
	cmd    *exec.Cmd
	addr   string
	stderr *prefixBuffer
	done   chan error

	mu      sync.Mutex
	stopped bool
}

// prefixBuffer collects child stderr for post-mortem dumps.
type prefixBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (p *prefixBuffer) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.Write(b)
}

func (p *prefixBuffer) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.String()
}

// startTarget re-execs the test binary as a conduit-target with the
// given flags (a "-listen 127.0.0.1:0" is prepended so the kernel
// picks the port) and waits for its LISTENING line. The process is
// killed at test cleanup if the test did not already stop it.
func startTarget(t *testing.T, args ...string) *fleetTarget {
	t.Helper()
	argv := append([]string{"-listen", "127.0.0.1:0"}, args...)
	enc, err := json.Marshal(argv)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "WIRETEST_TARGET=1", "WIRETEST_ARGS="+string(enc))
	errBuf := &prefixBuffer{}
	cmd.Stderr = errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawning target: %v", err)
	}
	ft := &fleetTarget{t: t, cmd: cmd, stderr: errBuf, done: make(chan error, 1)}

	lines := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if addr, ok := strings.CutPrefix(lines.Text(), "LISTENING "); ok {
				addrCh <- addr
				break
			}
		}
		close(addrCh)
		io.Copy(io.Discard, stdout) // keep the child's stdout drained
	}()
	go func() { ft.done <- cmd.Wait() }()

	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			t.Fatalf("target exited before LISTENING; stderr:\n%s", errBuf.String())
		}
		ft.addr = addr
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("target never printed LISTENING; stderr:\n%s", errBuf.String())
	}
	t.Cleanup(func() {
		ft.kill()
		if t.Failed() {
			t.Logf("target %s stderr:\n%s", ft.addr, ft.stderr.String())
		}
	})
	return ft
}

// kill force-terminates the target (SIGKILL) and reaps it. Idempotent;
// safe after a graceful exit.
func (ft *fleetTarget) kill() {
	ft.mu.Lock()
	if ft.stopped {
		ft.mu.Unlock()
		return
	}
	ft.stopped = true
	ft.mu.Unlock()
	ft.cmd.Process.Kill()
	<-ft.done
}

// sigterm delivers the graceful-drain signal without waiting.
func (ft *fleetTarget) sigterm() {
	ft.t.Helper()
	if err := ft.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		ft.t.Fatalf("SIGTERM: %v", err)
	}
}

// waitExit blocks until the process exits and returns its wait error
// (nil for exit status 0).
func (ft *fleetTarget) waitExit(timeout time.Duration) error {
	ft.t.Helper()
	select {
	case err := <-ft.done:
		ft.mu.Lock()
		ft.stopped = true
		ft.mu.Unlock()
		ft.done <- err // re-arm for kill()
		return err
	case <-time.After(timeout):
		ft.t.Fatalf("target %s did not exit within %v; stderr:\n%s", ft.addr, timeout, ft.stderr.String())
		return nil
	}
}

// dialFleet connects a router to the given targets.
func dialFleet(t *testing.T, opts router.Options, fts ...*fleetTarget) *router.Router {
	t.Helper()
	clients := make([]*router.Client, len(fts))
	for i, ft := range fts {
		c, err := router.Dial(ft.addr)
		if err != nil {
			t.Fatalf("dialing target %s: %v", ft.addr, err)
		}
		clients[i] = c
	}
	rt, err := router.New(clients, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}
