// Package wiretest is the multi-process equivalence harness for the
// conduit wire tier. Its tests re-exec the test binary into real
// conduit-target OS processes (TestMain intercepts the child via an
// environment gate and runs target.Main), dial them with
// internal/router clients, and drive deterministic load through the
// framed protocol.
//
// The headline test pins the tier's license to exist: a one-target
// routed fleet, driven lock-step by the PR5 load generator, produces
// response frames and a tenant report byte-identical to the same
// requests submitted to an in-process conduit.Server — the wire adds
// nothing and loses nothing. The rest of the suite exercises the parts
// a single process cannot: placement and exact snapshot merging across
// two targets, failover when a target is killed mid-run, deterministic
// router breaker trips under replayed fault schedules, and graceful
// drain during concurrent traffic with no leaked pool forks (run under
// -race by `make test-oracle`).
//
// The package itself is test-only; this file exists so the package has
// a buildable (empty) non-test compilation unit.
package wiretest
