package dram

import (
	"testing"

	"conduit/internal/config"
	"conduit/internal/energy"
)

// Tests for the in-array data-movement operations (RowClone/LISA shuffle,
// bit-serial shifts) added on top of the 16 published compute operations.

func moveFixture(t *testing.T) (*Module, *config.SSD) {
	t.Helper()
	cfg := config.TestScale()
	m := NewModule(&cfg.SSD, energy.NewAccount())
	a := make([]byte, cfg.SSD.PageSize)
	for i := range a {
		a[i] = byte(i)
	}
	m.SetSlotForTest(0, a)
	return m, &cfg.SSD
}

func TestShuffleRotatesLanes(t *testing.T) {
	m, cfg := moveFixture(t)
	if _, err := m.Exec(0, 0, OpShuffle, 1, []int{0}, 1, false, 5); err != nil {
		t.Fatal(err)
	}
	in := m.Data(0)
	out := m.Data(1)
	n := cfg.PageSize
	for i := 0; i < 16; i++ {
		if out[i] != in[(i+5)%n] {
			t.Fatalf("shuffle lane %d = %d, want %d", i, out[i], in[(i+5)%n])
		}
	}
	// Rotation cost is constant and small (LISA copies).
	if Rounds(OpShuffle, 1) >= Rounds(OpAdd, 1) {
		t.Error("shuffle must be cheaper than bit-serial addition")
	}
}

func TestShiftOps(t *testing.T) {
	m, _ := moveFixture(t)
	if _, err := m.Exec(0, 0, OpShl, 1, []int{0}, 1, false, 3); err != nil {
		t.Fatal(err)
	}
	in := m.Data(0)
	out := m.Data(1)
	for i := 0; i < 32; i++ {
		if out[i] != in[i]<<3 {
			t.Fatalf("shl lane %d = %d, want %d", i, out[i], in[i]<<3)
		}
	}
	if _, err := m.Exec(0, 0, OpShr, 2, []int{0}, 1, false, 2); err != nil {
		t.Fatal(err)
	}
	out = m.Data(2)
	for i := 0; i < 32; i++ {
		if out[i] != in[i]>>2 {
			t.Fatalf("shr lane %d = %d, want %d", i, out[i], in[i]>>2)
		}
	}
	// Bit-serial shifts are row renames: constant rounds.
	if Rounds(OpShl, 4) != Rounds(OpShl, 1) {
		t.Error("shift rounds must not depend on element width")
	}
}

func TestShiftOfWideLanes(t *testing.T) {
	m, cfg := moveFixture(t)
	if _, err := m.Exec(0, 0, OpShl, 1, []int{0}, 4, false, 8); err != nil {
		t.Fatal(err)
	}
	in := m.Data(0)
	out := m.Data(1)
	for i := 0; i < cfg.PageSize/4; i += 97 {
		var x, y uint32
		for b := 0; b < 4; b++ {
			x |= uint32(in[i*4+b]) << (8 * b)
			y |= uint32(out[i*4+b]) << (8 * b)
		}
		if y != x<<8 {
			t.Fatalf("shl32 lane %d = %#x, want %#x", i, y, x<<8)
		}
	}
}

func TestMoveOpsAreSingleSource(t *testing.T) {
	m, _ := moveFixture(t)
	if _, err := m.Exec(0, 0, OpShuffle, 1, []int{0, 0}, 1, false, 1); err == nil {
		t.Error("shuffle with two sources must fail")
	}
	if OpShuffle.Arity() != 1 || OpShl.Arity() != 1 || OpShr.Arity() != 1 {
		t.Error("movement ops take one source")
	}
}
