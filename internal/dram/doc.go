// Package dram models the SSD-internal DRAM as a processing-using-DRAM
// (PuD-SSD) substrate: an LPDDR4-1866 module whose banks execute bulk
// bitwise operations by charge sharing (Ambit-style triple-row activation)
// and bit-serial arithmetic built on them (SIMDRAM/MIMDRAM/Proteus — the
// frameworks the paper adopts for PuD-SSD, §4.3.2).
//
// Data lives in page-sized slots striped across the banks. The model is
// functional: slots hold real bytes and every operation computes real
// results. Bit-transposition of operands (required by bit-serial
// execution) is folded into the flash->DRAM DMA path, following Proteus.
package dram
