package dram

import (
	"testing"

	"conduit/internal/sim"
)

// TestExecSteadyStateAllocs pins the allocation behavior of the PuD data
// plane: once the destination slot has been populated once, an Exec that
// replaces it reuses the dead payload through the module's free list —
// zero heap allocations per operation. A regression here silently
// reintroduces one garbage page per simulated operation.
func TestExecSteadyStateAllocs(t *testing.T) {
	m, cfg, _ := newTestModule()
	page := make([]byte, cfg.PageSize)
	for i := range page {
		page[i] = byte(i)
	}
	m.SetSlotForTest(0, page)
	m.SetSlotForTest(1, page)

	var now sim.Time
	exec := func() {
		done, err := m.Exec(now, now, OpAdd, 2, []int{0, 1}, 4, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	exec() // populate dst; its payload becomes the recycled buffer
	if got := testing.AllocsPerRun(50, exec); got > 0 {
		t.Fatalf("steady-state Exec allocates %.1f objects/op, want 0", got)
	}
}

// TestExecImmediateSteadyStateAllocs covers the broadcast-immediate path,
// which used to materialize a fresh broadcast page per operation.
func TestExecImmediateSteadyStateAllocs(t *testing.T) {
	m, cfg, _ := newTestModule()
	page := make([]byte, cfg.PageSize)
	m.SetSlotForTest(0, page)

	var now sim.Time
	exec := func() {
		done, err := m.Exec(now, now, OpMul, 3, []int{0, -1}, 2, true, 0x5A5A)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	exec()
	if got := testing.AllocsPerRun(50, exec); got > 0 {
		t.Fatalf("steady-state immediate Exec allocates %.1f objects/op, want 0", got)
	}
}

// TestCloneStopsPayloadRecycling proves the privacy tracking: after a
// Clone, the original must not recycle payloads the clone references, and
// the clone must see stable data while the original keeps executing.
func TestCloneStopsPayloadRecycling(t *testing.T) {
	m, cfg, en := newTestModule()
	page := make([]byte, cfg.PageSize)
	for i := range page {
		page[i] = 0x11
	}
	m.SetSlotForTest(0, page)
	m.SetSlotForTest(1, page)
	if _, err := m.Exec(0, 0, OpAdd, 2, []int{0, 1}, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	c := m.Clone(en)
	want := c.Data(2)

	// Keep replacing slot 2 in the original; the clone's view must not move.
	for i := 0; i < 8; i++ {
		if _, err := m.Exec(0, 0, OpXor, 2, []int{0, 2}, 1, false, 0); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Data(2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("clone slot 2 byte %d changed from %#x to %#x after original kept executing", i, want[i], got[i])
		}
	}
}
