package dram

import (
	"bytes"
	"testing"
	"testing/quick"

	"conduit/internal/config"
	"conduit/internal/energy"
	"conduit/internal/sim"
	"conduit/internal/vecmath"
)

func newTestModule() (*Module, *config.SSD, *energy.Account) {
	cfg := config.TestScale()
	en := energy.NewAccount()
	return NewModule(&cfg.SSD, en), &cfg.SSD, en
}

func TestCapacity(t *testing.T) {
	m, cfg, _ := newTestModule()
	want := int(cfg.DRAMSize / int64(cfg.PageSize))
	if m.Capacity() != want {
		t.Fatalf("capacity = %d, want %d", m.Capacity(), want)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m, cfg, en := newTestModule()
	data := make([]byte, cfg.PageSize)
	for i := range data {
		data[i] = byte(i * 3)
	}
	done := m.Write(0, 0, 7, data)
	if want := cfg.DRAMTransferTime(cfg.PageSize); done != want {
		t.Fatalf("write done at %v, want %v", done, want)
	}
	got, rdone := m.Read(done, done, 7)
	if !bytes.Equal(got, data) {
		t.Fatal("read returned different data")
	}
	if rdone <= done {
		t.Fatal("read should take bus time")
	}
	if en.MoveBy("dram-bus") <= 0 {
		t.Fatal("transfers must record bus energy")
	}
}

func TestUnwrittenSlotReadsZero(t *testing.T) {
	m, cfg, _ := newTestModule()
	if !bytes.Equal(m.Data(3), make([]byte, cfg.PageSize)) {
		t.Fatal("unwritten slot should read zero")
	}
	if m.Populated(3) {
		t.Fatal("unwritten slot reported populated")
	}
}

func TestRoundsStructure(t *testing.T) {
	// Bitwise ops are constant; add is linear in bits; mul is quadratic.
	if Rounds(OpAnd, 1) != Rounds(OpAnd, 4) {
		t.Error("bitwise rounds should not depend on element size")
	}
	add8, add32 := Rounds(OpAdd, 1), Rounds(OpAdd, 4)
	if add32 <= add8 || add32 > 5*add8 {
		t.Errorf("add rounds 8b=%d 32b=%d: want ~4x linear growth", add8, add32)
	}
	mul8, mul32 := Rounds(OpMul, 1), Rounds(OpMul, 4)
	if mul32 < 10*mul8 {
		t.Errorf("mul rounds 8b=%d 32b=%d: want quadratic growth", mul8, mul32)
	}
	if mul8 <= add8 {
		t.Error("mul must cost more than add")
	}
}

func TestExecLatencyMatchesExec(t *testing.T) {
	m, cfg, _ := newTestModule()
	p := make([]byte, cfg.PageSize)
	m.SetSlotForTest(0, p)
	m.SetSlotForTest(1, p)
	done, err := m.Exec(0, 0, OpMul, 2, []int{0, 1}, 1, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := ExecLatency(cfg, OpMul, 1); done != want {
		t.Fatalf("uncontended exec = %v, want estimator value %v", done, want)
	}
}

func TestExecFunctionalOps(t *testing.T) {
	m, cfg, _ := newTestModule()
	a := make([]byte, cfg.PageSize)
	b := make([]byte, cfg.PageSize)
	for i := range a {
		a[i] = byte(i)
		b[i] = byte(3*i + 1)
	}
	m.SetSlotForTest(0, a)
	m.SetSlotForTest(1, b)

	cases := []struct {
		op   Op
		want func(x, y uint64) uint64
	}{
		{OpAnd, func(x, y uint64) uint64 { return x & y }},
		{OpOr, func(x, y uint64) uint64 { return x | y }},
		{OpXor, func(x, y uint64) uint64 { return x ^ y }},
		{OpNand, func(x, y uint64) uint64 { return ^(x & y) & 0xFF }},
		{OpAdd, func(x, y uint64) uint64 { return (x + y) & 0xFF }},
		{OpSub, func(x, y uint64) uint64 { return (x - y) & 0xFF }},
		{OpMul, func(x, y uint64) uint64 { return (x * y) & 0xFF }},
	}
	for _, c := range cases {
		if _, err := m.Exec(0, 0, c.op, 2, []int{0, 1}, 1, false, 0); err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		got := m.Data(2)
		for i := 0; i < cfg.PageSize; i++ {
			want := byte(c.want(uint64(a[i]), uint64(b[i])))
			if got[i] != want {
				t.Fatalf("%v lane %d = %d, want %d", c.op, i, got[i], want)
			}
		}
	}
}

func TestExecSignedRelationalAndMinMax(t *testing.T) {
	m, cfg, _ := newTestModule()
	a := make([]byte, cfg.PageSize)
	b := make([]byte, cfg.PageSize)
	a[0], b[0] = 0xFF, 0x01 // -1 < 1 signed
	a[1], b[1] = 0x05, 0x05
	m.SetSlotForTest(0, a)
	m.SetSlotForTest(1, b)
	if _, err := m.Exec(0, 0, OpLT, 2, []int{0, 1}, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	lt := m.Data(2)
	if lt[0] != 0xFF {
		t.Error("-1 < 1 should be true under signed compare")
	}
	if lt[1] != 0x00 {
		t.Error("5 < 5 should be false")
	}
	if _, err := m.Exec(0, 0, OpMin, 3, []int{0, 1}, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	if m.Data(3)[0] != 0xFF { // signed min(-1, 1) = -1
		t.Error("signed min wrong")
	}
	if _, err := m.Exec(0, 0, OpEQ, 4, []int{0, 1}, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	if m.Data(4)[1] != 0xFF || m.Data(4)[0] != 0 {
		t.Error("EQ lanes wrong")
	}
}

func TestExecSelect(t *testing.T) {
	m, cfg, _ := newTestModule()
	mask := make([]byte, cfg.PageSize)
	a := make([]byte, cfg.PageSize)
	b := make([]byte, cfg.PageSize)
	for i := range mask {
		if i%2 == 0 {
			mask[i] = 0xFF
		}
		a[i] = 0xAA
		b[i] = 0x55
	}
	m.SetSlotForTest(0, mask)
	m.SetSlotForTest(1, a)
	m.SetSlotForTest(2, b)
	if _, err := m.Exec(0, 0, OpSelect, 3, []int{0, 1, 2}, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	out := m.Data(3)
	for i := range out {
		want := byte(0x55)
		if i%2 == 0 {
			want = 0xAA
		}
		if out[i] != want {
			t.Fatalf("select lane %d = %#x, want %#x", i, out[i], want)
		}
	}
}

func TestExecImmediateBroadcast(t *testing.T) {
	m, cfg, _ := newTestModule()
	a := make([]byte, cfg.PageSize)
	for i := range a {
		a[i] = byte(i)
	}
	m.SetSlotForTest(0, a)
	if _, err := m.Exec(0, 0, OpAdd, 1, []int{0, -1}, 1, true, 7); err != nil {
		t.Fatal(err)
	}
	got := m.Data(1)
	for i := range got {
		if got[i] != byte(i)+7 {
			t.Fatalf("imm add lane %d = %d", i, got[i])
		}
	}
}

func TestExecValidation(t *testing.T) {
	m, _, _ := newTestModule()
	if _, err := m.Exec(0, 0, OpAdd, 1, []int{0}, 1, false, 0); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := m.Exec(0, 0, OpAdd, 1, []int{0, 2}, 1, false, 0); err == nil {
		t.Error("unpopulated source should fail")
	}
}

func TestComputeDoesNotOccupyBus(t *testing.T) {
	m, cfg, _ := newTestModule()
	p := make([]byte, cfg.PageSize)
	m.SetSlotForTest(0, p)
	m.SetSlotForTest(1, p)
	if _, err := m.Exec(0, 0, OpMul, 2, []int{0, 1}, 4, false, 0); err != nil {
		t.Fatal(err)
	}
	if m.Bus().Horizon() != 0 {
		t.Fatal("in-array compute must not occupy the data bus")
	}
	if m.Units().Earliest().Horizon() != 0 {
		// 4 units, one op: at least one other unit... Earliest returns the
		// least-loaded, which must still be idle.
		t.Fatal("only one compute unit should be busy")
	}
}

func TestConcurrentUnitsThenQueueing(t *testing.T) {
	m, cfg, _ := newTestModule()
	p := make([]byte, cfg.PageSize)
	for s := 0; s < 2; s++ {
		m.SetSlotForTest(s, p)
	}
	lat := ExecLatency(cfg, OpAdd, 1)
	var last sim.Time
	// First ComputeUnits ops run concurrently; the next one queues.
	for i := 0; i < ComputeUnits+1; i++ {
		done, err := m.Exec(0, 0, OpAdd, 3, []int{0, 1}, 1, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		last = done
	}
	if last != 2*lat {
		t.Fatalf("op %d finished at %v, want queued 2x latency %v", ComputeUnits+1, last, 2*lat)
	}
}

// refLane is an independent scalar oracle for the binary PuD operations.
func refLane(op Op, x, y uint64, elem int) uint64 {
	mask := vecmath.Mask(elem)
	sx, sy := vecmath.ToSigned(x, elem), vecmath.ToSigned(y, elem)
	switch op {
	case OpAnd:
		return x & y
	case OpOr:
		return x | y
	case OpXor:
		return x ^ y
	case OpNand:
		return ^(x & y) & mask
	case OpNor:
		return ^(x | y) & mask
	case OpAdd:
		return (x + y) & mask
	case OpSub:
		return (x - y) & mask
	case OpMul:
		return (x * y) & mask
	case OpLT:
		return vecmath.Bool(sx < sy, elem)
	case OpGT:
		return vecmath.Bool(sx > sy, elem)
	case OpEQ:
		return vecmath.Bool(x == y, elem)
	case OpMin:
		if sx < sy {
			return x
		}
		return y
	case OpMax:
		if sx > sy {
			return x
		}
		return y
	}
	panic("unreachable")
}

// Property: every binary PuD op agrees lane-by-lane with an independent
// scalar oracle for random slot contents and element sizes.
func TestExecMatchesOracleProperty(t *testing.T) {
	cfg := config.TestScale()
	binOps := []Op{OpAnd, OpOr, OpXor, OpNand, OpNor, OpAdd, OpSub, OpMul, OpLT, OpGT, OpEQ, OpMin, OpMax}
	f := func(seed uint64, opSel, elemSel uint8) bool {
		op := binOps[int(opSel)%len(binOps)]
		elem := []int{1, 2, 4}[int(elemSel)%3]
		m := NewModule(&cfg.SSD, energy.NewAccount())
		r := sim.NewRNG(seed)
		a := make([]byte, cfg.SSD.PageSize)
		b := make([]byte, cfg.SSD.PageSize)
		r.Bytes(a)
		r.Bytes(b)
		m.SetSlotForTest(0, a)
		m.SetSlotForTest(1, b)
		if _, err := m.Exec(0, 0, op, 2, []int{0, 1}, elem, false, 0); err != nil {
			return false
		}
		got := m.Data(2)
		for i := 0; i < cfg.SSD.PageSize/elem; i++ {
			x := vecmath.Load(a, i, elem)
			y := vecmath.Load(b, i, elem)
			if vecmath.Load(got, i, elem) != refLane(op, x, y, elem) {
				return false
			}
		}
		return bytes.Equal(got, m.Data(2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
