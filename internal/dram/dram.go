package dram

import (
	"fmt"
	"sync/atomic"

	"conduit/internal/arena"
	"conduit/internal/config"
	"conduit/internal/energy"
	"conduit/internal/sim"
	"conduit/internal/vecmath"
)

// Op enumerates the 16 operations the PuD-SSD substrate supports
// (§4.3.2: "PuD-SSD supports 16 operations, including arithmetic,
// predication, and relational operations").
type Op int

// PuD operation kinds.
const (
	OpAnd Op = iota
	OpOr
	OpNot
	OpXor
	OpNand
	OpNor
	OpAdd
	OpSub
	OpMul
	OpLT
	OpGT
	OpEQ
	OpMin
	OpMax
	OpSelect
	OpCopy
	// OpShuffle is a lane rotation implemented as RowClone/LISA-style
	// shifted inter-subarray copies. It is data movement inside the
	// arrays, not one of the 16 published compute operations.
	OpShuffle
	// OpShl and OpShr shift each lane by an immediate. Under the
	// bit-serial (vertical) data layout these are row renames plus a
	// clearing copy, nearly free (Proteus-style flexible precision).
	OpShl
	OpShr
)

// NumOps is the size of the published PuD compute-operation set.
const NumOps = 16

// String names the operation.
func (o Op) String() string {
	names := [...]string{"and", "or", "not", "xor", "nand", "nor", "add", "sub",
		"mul", "lt", "gt", "eq", "min", "max", "select", "copy", "shuffle", "shl", "shr"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("dram.Op(%d)", int(o))
}

// Arity reports how many source slots the operation consumes.
func (o Op) Arity() int {
	switch o {
	case OpNot, OpCopy, OpShuffle, OpShl, OpShr:
		return 1
	case OpSelect:
		return 3
	default:
		return 2
	}
}

// Rounds reports how many bbop rounds (row-activation triples) one
// operation needs on elem-byte lanes. These constants follow the published
// SIMDRAM/MIMDRAM cost structure: constant for bulk bitwise operations,
// linear in bit width for addition/comparison, quadratic for
// multiplication.
func Rounds(o Op, elem int) int {
	vecmath.CheckElem(elem)
	bits := elem * 8
	switch o {
	case OpCopy, OpNot: // RowClone / row inversion
		return 2
	case OpShuffle: // LISA-style shifted inter-subarray copy
		return 4
	case OpShl, OpShr: // bit-serial row rename + clearing copy
		return 2
	case OpAnd, OpOr, OpNand, OpNor: // one TRA plus operand/result copies
		return 4
	case OpXor: // two TRAs plus copies
		return 6
	case OpSelect: // mask AND/ANDN/OR composition
		return 10
	case OpAdd, OpSub: // bit-serial full adder chain
		return 4*bits + 1
	case OpLT, OpGT, OpEQ: // bit-serial compare
		return 2*bits + 4
	case OpMin, OpMax: // compare then select
		return 3*bits + 8
	case OpMul: // shift-and-add partial products
		return 2*bits*bits + 3*bits
	default:
		panic(fmt.Sprintf("dram: unknown op %d", o))
	}
}

// ExecLatency is the contention-free latency of one PuD operation — the
// "expected computation latency" entry the offloader precomputes (§4.5).
func ExecLatency(cfg *config.SSD, o Op, elem int) sim.Time {
	return sim.Time(Rounds(o, elem)) * cfg.TBbop
}

// Module is the functional + timed PuD-SSD substrate. With cfg.TimingOnly
// set the data plane is elided: slots are tracked as populated/empty with
// nil payloads, results are never computed, and timing, energy, counters,
// and every validation error path stay identical to a functional module.
type Module struct {
	cfg    *config.SSD
	en     *energy.Account
	timing bool
	units  *sim.Group    // concurrent subarray compute sets (MIMDRAM)
	bus    *sim.Calendar // shared LPDDR4 data bus for transfers in/out

	slots    map[int][]byte
	capacity int

	// pool recycles dead page payloads; priv marks slots whose current
	// payload this module instance allocated and has not shared. Payloads
	// are replace-on-write (see Clone), so a slot's payload may be
	// recycled on replacement or invalidation only while its priv bit
	// holds. shared is raised by Clone (which may run concurrently with
	// other Clones of the same module, hence the atomic); the next
	// mutation drops every priv bit, because the clone now references
	// the same payloads.
	pool   *arena.Pool
	priv   map[int]bool
	shared atomic.Bool

	// valScratch is the reusable operand-pointer slice of Exec.
	valScratch [][]byte

	opImm uint64 // rotation/shift amount of the in-flight operation

	bbops, reads, writes int64
	bytesMoved           int64
}

// ComputeUnits is the number of concurrently usable subarray compute sets.
// MIMDRAM executes independent fine-grained operations in different
// subarrays (mats); with 8 banks and two active subarray sets per bank the
// module sustains 16 concurrent bulk operations.
const ComputeUnits = 16

// NewModule builds the PuD substrate for cfg, charging energy to en.
func NewModule(cfg *config.SSD, en *energy.Account) *Module {
	capacity := int(cfg.DRAMSize / int64(cfg.PageSize))
	return &Module{
		cfg:      cfg,
		en:       en,
		timing:   cfg.TimingOnly,
		units:    sim.NewGroup("pud-unit", ComputeUnits),
		bus:      sim.NewCalendar("dram-bus"),
		slots:    make(map[int][]byte),
		capacity: capacity,
		pool:     arena.New(cfg.PageSize),
		priv:     make(map[int]bool),
	}
}

// unshare lazily drops payload privacy after a Clone: every payload that
// existed at clone time is now referenced by the clone too, so none of
// them may be recycled.
func (m *Module) unshare() {
	if m.shared.Load() {
		m.shared.Store(false)
		clear(m.priv)
	}
}

// setSlot installs a freshly allocated (private) payload into slot,
// recycling the payload it replaces when that one is provably unshared.
func (m *Module) setSlot(slot int, data []byte) {
	m.unshare()
	if old, ok := m.slots[slot]; ok && m.priv[slot] {
		m.pool.Put(old)
	}
	m.slots[slot] = data
	m.priv[slot] = true
}

// Recycle returns a dead page buffer to the module's free list. Only call
// it with a buffer obtained from Read/Data that nothing else references.
func (m *Module) Recycle(b []byte) { m.pool.Put(b) }

// Capacity reports the number of page-sized slots.
func (m *Module) Capacity() int { return m.capacity }

// Units exposes the compute-unit calendars (for queue-delay observation).
func (m *Module) Units() *sim.Group { return m.units }

// Bus exposes the data-bus calendar.
func (m *Module) Bus() *sim.Calendar { return m.bus }

func (m *Module) checkSlot(s int) {
	if s < 0 || s >= m.capacity {
		panic(fmt.Sprintf("dram: slot %d out of range [0,%d)", s, m.capacity))
	}
}

// Write stores data into slot, occupying the DRAM bus. A timing-only
// module accepts an elided (nil) payload and records the slot as
// populated; writes always move whole pages, so the transfer is sized by
// the page, not the payload.
func (m *Module) Write(now, ready sim.Time, slot int, data []byte) sim.Time {
	m.checkSlot(slot)
	if len(data) != m.cfg.PageSize && !(m.timing && data == nil) {
		panic(fmt.Sprintf("dram: write size %d != page size %d", len(data), m.cfg.PageSize))
	}
	_, done := m.bus.Reserve(now, ready, m.cfg.DRAMTransferTime(m.cfg.PageSize))
	var payload []byte
	if !m.timing {
		payload = m.pool.GetCopy(data)
	}
	m.setSlot(slot, payload)
	m.writes++
	m.bytesMoved += int64(m.cfg.PageSize)
	m.en.Move("dram-bus", float64(m.cfg.PageSize)*m.cfg.EDRAMPerByte)
	return done
}

// Read returns a copy of slot's contents, occupying the DRAM bus.
func (m *Module) Read(now, ready sim.Time, slot int) ([]byte, sim.Time) {
	m.checkSlot(slot)
	_, done := m.bus.Reserve(now, ready, m.cfg.DRAMTransferTime(m.cfg.PageSize))
	m.reads++
	m.bytesMoved += int64(m.cfg.PageSize)
	m.en.Move("dram-bus", float64(m.cfg.PageSize)*m.cfg.EDRAMPerByte)
	if m.timing {
		return nil, done
	}
	return m.Data(slot), done
}

// Data returns a copy of slot contents without timing effects (test and
// verification hook). Unwritten slots read as zero. A timing-only module
// has no payloads and returns nil.
func (m *Module) Data(slot int) []byte {
	m.checkSlot(slot)
	if m.timing {
		return nil
	}
	if d, ok := m.slots[slot]; ok {
		return m.pool.GetCopy(d)
	}
	return m.pool.GetZeroed()
}

// Populated reports whether the slot has been written.
func (m *Module) Populated(slot int) bool {
	_, ok := m.slots[slot]
	return ok
}

// Invalidate drops slot contents (eviction), recycling the payload when
// it is provably unshared.
func (m *Module) Invalidate(slot int) {
	m.unshare()
	if old, ok := m.slots[slot]; ok && m.priv[slot] {
		m.pool.Put(old)
	}
	delete(m.slots, slot)
	delete(m.priv, slot)
}

// Exec performs op on the source slots, writing the result slot. srcs must
// match op.Arity(); for OpSelect the sources are (mask, a, b) and each lane
// of the result is a where the mask lane is non-zero, else b. If useImm is
// set, the final source slot is replaced by a broadcast immediate.
//
// Computation happens inside the DRAM arrays: only the compute units are
// occupied, not the data bus.
func (m *Module) Exec(now, ready sim.Time, op Op, dst int, srcs []int, elem int, useImm bool, imm uint64) (sim.Time, error) {
	vecmath.CheckElem(elem)
	m.checkSlot(dst)
	arity := op.Arity()
	if len(srcs) != arity {
		return 0, fmt.Errorf("dram: %v needs %d sources, got %d", op, arity, len(srcs))
	}
	m.opImm = 0
	if op == OpShuffle || op == OpShl || op == OpShr {
		m.opImm = imm
		useImm = false
	}
	// With useImm the final operand is a broadcast immediate; the kernels
	// consume it directly, so no broadcast page is materialized.
	nvals := arity
	if useImm {
		nvals--
	}
	var vals [][]byte
	if !m.timing {
		if cap(m.valScratch) < nvals {
			m.valScratch = make([][]byte, nvals)
		}
		vals = m.valScratch[:nvals]
		// Drop the borrowed payload references on every exit (including
		// error returns) so the scratch slice never pins a dead page
		// against GC.
		defer func() {
			for i := range vals {
				vals[i] = nil
			}
		}()
	}
	for i, s := range srcs {
		if useImm && i == arity-1 {
			continue
		}
		m.checkSlot(s)
		if !m.Populated(s) {
			return 0, fmt.Errorf("dram: %v source slot %d not populated", op, s)
		}
		if !m.timing {
			vals[i] = m.slots[s]
		}
	}

	rounds := Rounds(op, elem)
	_, done := m.units.Reserve(now, ready, sim.Time(rounds)*m.cfg.TBbop)
	m.bbops += int64(rounds)
	m.en.Compute("pud", float64(rounds)*m.cfg.EBbop)

	if m.timing {
		m.setSlot(dst, nil)
		return done, nil
	}
	out := m.pool.Get() // fully overwritten by apply
	m.apply(op, out, vals, elem, useImm, imm)
	m.setSlot(dst, out)
	return done, nil
}

// kernelOp maps a PuD operation onto the shared vecmath kernel
// vocabulary (binary operations only; movement and unary operations are
// dispatched directly in apply).
func kernelOp(op Op) (vecmath.Op, bool) {
	switch op {
	case OpAnd:
		return vecmath.OpAnd, true
	case OpOr:
		return vecmath.OpOr, true
	case OpXor:
		return vecmath.OpXor, true
	case OpNand:
		return vecmath.OpNand, true
	case OpNor:
		return vecmath.OpNor, true
	case OpAdd:
		return vecmath.OpAdd, true
	case OpSub:
		return vecmath.OpSub, true
	case OpMul:
		return vecmath.OpMul, true
	case OpLT:
		return vecmath.OpLT, true
	case OpGT:
		return vecmath.OpGT, true
	case OpEQ:
		return vecmath.OpEQ, true
	case OpMin:
		return vecmath.OpMin, true
	case OpMax:
		return vecmath.OpMax, true
	default:
		return 0, false
	}
}

// apply computes the functional result of op through the specialized
// vecmath kernels. vals excludes the immediate operand when useImm is
// set. Every path fully overwrites out.
func (m *Module) apply(op Op, out []byte, vals [][]byte, elem int, useImm bool, imm uint64) {
	if k, ok := kernelOp(op); ok {
		if useImm {
			vecmath.ApplyImm(k, out, vals[0], elem, imm)
		} else {
			vecmath.Apply(k, out, vals[0], vals[1], elem)
		}
		return
	}
	switch op {
	case OpCopy:
		if useImm {
			vecmath.Broadcast(out, elem, imm) // isa.OpBroadcast lowers to an immediate copy
		} else {
			copy(out, vals[0])
		}
	case OpNot:
		if useImm {
			vecmath.Broadcast(out, elem, ^imm&vecmath.Mask(elem))
		} else {
			vecmath.ApplyUnary(vecmath.OpNot, out, vals[0], elem, 0)
		}
	case OpSelect:
		if useImm {
			vecmath.SelectImm(out, vals[0], vals[1], elem, imm)
		} else {
			vecmath.Select(out, vals[0], vals[1], vals[2], elem)
		}
	case OpShuffle:
		vecmath.Shuffle(out, vals[0], elem, int(m.opImm))
	case OpShl:
		vecmath.ApplyUnary(vecmath.OpShl, out, vals[0], elem, m.opImm)
	case OpShr:
		vecmath.ApplyUnary(vecmath.OpShr, out, vals[0], elem, m.opImm)
	default:
		panic(fmt.Sprintf("dram: unknown op %d", op))
	}
}

// Clone returns an independent copy of the module — slot contents,
// calendars, and activity counters — charging future energy to en. Clones
// share only immutable state, so a clone and its original can be driven
// from different goroutines. Slot payloads are shared, not copied: every
// mutation path (Write, Exec, SetSlotForTest) replaces the stored slice
// with a freshly allocated one, so a stored payload is immutable for its
// lifetime.
func (m *Module) Clone(en *energy.Account) *Module {
	c := &Module{
		cfg:        m.cfg,
		en:         en,
		timing:     m.timing,
		units:      m.units.Clone(),
		bus:        m.bus.Clone(),
		slots:      make(map[int][]byte, len(m.slots)),
		capacity:   m.capacity,
		pool:       arena.New(m.cfg.PageSize),
		priv:       make(map[int]bool),
		opImm:      m.opImm,
		bbops:      m.bbops,
		reads:      m.reads,
		writes:     m.writes,
		bytesMoved: m.bytesMoved,
	}
	for s, d := range m.slots {
		c.slots[s] = d // payloads are replace-on-write; see doc comment
	}
	// Payloads are now referenced from both modules: the original must stop
	// recycling them on replacement. The flag (not a direct priv wipe)
	// keeps Clone read-only on m, so concurrent Clones of one module stay
	// safe; m applies it at its next mutation.
	m.shared.Store(true)
	return c
}

// SetSlotForTest force-writes slot contents without timing (fixture hook).
func (m *Module) SetSlotForTest(slot int, data []byte) {
	m.checkSlot(slot)
	if len(data) != m.cfg.PageSize {
		panic("dram: SetSlotForTest size mismatch")
	}
	m.setSlot(slot, m.pool.GetCopy(data))
}

// Stats reports operation counts for experiment tables.
func (m *Module) Stats() map[string]int64 {
	return map[string]int64{
		"bbops":       m.bbops,
		"reads":       m.reads,
		"writes":      m.writes,
		"bytes_moved": m.bytesMoved,
	}
}
