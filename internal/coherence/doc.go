// Package coherence implements the paper's lazy coherence mechanism for
// data shared across SSD computation resources (§4.4). Each logical page
// carries three fields in the L2P table: the owner (which resource holds
// the latest version), the modification state (clean/dirty), and a one-byte
// monotonically increasing version counter that orders updates and detects
// stale copies. Data is synchronized only on the five paper-defined
// triggers, not on every modification.
package coherence
