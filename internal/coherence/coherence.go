package coherence

import "fmt"

// Location identifies where the latest copy of a logical page lives.
type Location uint8

// Page locations.
const (
	LocFlash  Location = iota // NAND flash (the home location)
	LocDRAM                   // SSD-internal DRAM slot
	LocBuffer                 // a plane's page-buffer latches
)

// String names the location.
func (l Location) String() string {
	return [...]string{"flash", "dram", "buffer"}[l]
}

// State is the modification state of a page.
type State uint8

// Modification states.
const (
	Clean State = iota
	Dirty
)

// String names the state.
func (s State) String() string {
	return [...]string{"clean", "dirty"}[s]
}

// SyncReason enumerates the five §4.4 synchronization triggers.
type SyncReason uint8

// Synchronization triggers.
const (
	SyncCrossResource SyncReason = iota // another resource requests the page
	SyncHostTransfer                    // result returned to the host
	SyncEviction                        // temporary location reclaimed
	SyncGC                              // FTL garbage collection touches it
	SyncPowerCycle                      // device power cycle
	numSyncReasons
)

// String names the trigger.
func (r SyncReason) String() string {
	return [...]string{"cross-resource", "host-transfer", "eviction", "gc", "power-cycle"}[r]
}

// maxVersion is the wrap limit of the one-byte version counter. The
// protocol flushes a page before its counter can wrap (§4.4 footnote 4).
const maxVersion = 255

// Entry is one page's coherence metadata (the three L2P fields).
type Entry struct {
	Owner   Location
	State   State
	Version uint8
}

// Directory tracks coherence metadata for every logical page.
type Directory struct {
	entries []Entry
	syncs   [numSyncReasons]int64
	mods    int64
}

// NewDirectory creates metadata for pages logical pages, all initially
// clean and flash-resident.
func NewDirectory(pages int) *Directory {
	return &Directory{entries: make([]Entry, pages)}
}

// Pages reports the tracked page count.
func (d *Directory) Pages() int { return len(d.entries) }

// Entry returns the metadata of page p.
func (d *Directory) Entry(p int) Entry { return d.entries[p] }

// Owner reports which resource holds the latest copy of page p.
func (d *Directory) Owner(p int) Location { return d.entries[p].Owner }

// NeedsFlush reports whether page p must be committed to flash before the
// next modification (version counter about to wrap).
func (d *Directory) NeedsFlush(p int) bool {
	return d.entries[p].Version >= maxVersion
}

// Modify records that owner produced a new version of page p. Per §4.4:
// the owner field moves to the modifying resource, the state becomes
// dirty, and the version increments. Repeated modification by the same
// owner only bumps the version. It panics if the version would wrap —
// the runtime must honor NeedsFlush first; wrapping silently would
// break stale-copy detection.
func (d *Directory) Modify(p int, owner Location) {
	e := &d.entries[p]
	if e.Version >= maxVersion {
		panic(fmt.Sprintf("coherence: page %d version would wrap; flush first", p))
	}
	e.Owner = owner
	e.State = Dirty
	e.Version++
	d.mods++
}

// Relocate records that the latest version of page p moved to owner
// without being modified (e.g. a latch-resident result copied out to DRAM
// before the latches are reused). State and version are unchanged.
func (d *Directory) Relocate(p int, owner Location) {
	d.entries[p].Owner = owner
}

// IsStale reports whether a copy of page p held at loc with version v is
// out of date.
func (d *Directory) IsStale(p int, loc Location, v uint8) bool {
	e := d.entries[p]
	return loc != e.Owner || v != e.Version
}

// Sync records that page p was committed to NAND flash because of reason:
// the owner reverts to flash, the state to clean, and the version resets
// (§4.4). It reports whether the page was actually dirty (i.e. a write-back
// was required).
func (d *Directory) Sync(p int, reason SyncReason) bool {
	e := &d.entries[p]
	wasDirty := e.State == Dirty
	e.Owner = LocFlash
	e.State = Clean
	e.Version = 0
	d.syncs[reason]++
	return wasDirty
}

// SyncCount reports how many synchronizations each trigger caused.
func (d *Directory) SyncCount(r SyncReason) int64 { return d.syncs[r] }

// Clone returns an independent copy of the directory.
func (d *Directory) Clone() *Directory {
	return &Directory{
		entries: append([]Entry(nil), d.entries...),
		syncs:   d.syncs,
		mods:    d.mods,
	}
}

// Modifications reports the total number of recorded modifications.
func (d *Directory) Modifications() int64 { return d.mods }
