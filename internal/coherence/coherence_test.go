package coherence

import (
	"testing"
	"testing/quick"
)

func TestInitialStateFlashClean(t *testing.T) {
	d := NewDirectory(4)
	for p := 0; p < 4; p++ {
		e := d.Entry(p)
		if e.Owner != LocFlash || e.State != Clean || e.Version != 0 {
			t.Fatalf("page %d initial entry = %+v", p, e)
		}
	}
	if d.Pages() != 4 {
		t.Fatal("wrong page count")
	}
}

func TestModifyTransfersOwnershipAndBumpsVersion(t *testing.T) {
	d := NewDirectory(2)
	d.Modify(0, LocDRAM)
	e := d.Entry(0)
	if e.Owner != LocDRAM || e.State != Dirty || e.Version != 1 {
		t.Fatalf("after modify: %+v", e)
	}
	// Same-owner modification only bumps the version (§4.4).
	d.Modify(0, LocDRAM)
	if got := d.Entry(0); got.Version != 2 || got.Owner != LocDRAM {
		t.Fatalf("after second modify: %+v", got)
	}
	// A different resource taking over changes the owner.
	d.Modify(0, LocBuffer)
	if got := d.Entry(0); got.Owner != LocBuffer || got.Version != 3 {
		t.Fatalf("after buffer modify: %+v", got)
	}
	if d.Modifications() != 3 {
		t.Fatalf("modifications = %d", d.Modifications())
	}
}

func TestSyncCommitsToFlashAndResets(t *testing.T) {
	d := NewDirectory(1)
	d.Modify(0, LocDRAM)
	if !d.Sync(0, SyncCrossResource) {
		t.Fatal("syncing a dirty page should report a required write-back")
	}
	e := d.Entry(0)
	if e.Owner != LocFlash || e.State != Clean || e.Version != 0 {
		t.Fatalf("after sync: %+v", e)
	}
	// Syncing an already-clean page needs no write-back.
	if d.Sync(0, SyncHostTransfer) {
		t.Fatal("clean page should not need a write-back")
	}
	if d.SyncCount(SyncCrossResource) != 1 || d.SyncCount(SyncHostTransfer) != 1 {
		t.Fatal("sync trigger counters wrong")
	}
}

func TestStaleness(t *testing.T) {
	d := NewDirectory(1)
	d.Modify(0, LocDRAM) // version 1 in DRAM
	if d.IsStale(0, LocDRAM, 1) {
		t.Fatal("current copy reported stale")
	}
	if !d.IsStale(0, LocFlash, 0) {
		t.Fatal("old flash copy should be stale")
	}
	if !d.IsStale(0, LocDRAM, 0) {
		t.Fatal("old DRAM version should be stale")
	}
}

func TestVersionWrapIsPreventedByFlush(t *testing.T) {
	d := NewDirectory(1)
	for i := 0; i < 255; i++ {
		if d.NeedsFlush(0) {
			t.Fatalf("premature NeedsFlush at version %d", i)
		}
		d.Modify(0, LocDRAM)
	}
	if !d.NeedsFlush(0) {
		t.Fatal("NeedsFlush must trigger at the wrap limit")
	}
	// Flushing resets the counter and modification proceeds.
	d.Sync(0, SyncEviction)
	d.Modify(0, LocDRAM)
	if d.Entry(0).Version != 1 {
		t.Fatal("version should restart after flush")
	}
}

func TestVersionWrapPanics(t *testing.T) {
	d := NewDirectory(1)
	for i := 0; i < 255; i++ {
		d.Modify(0, LocDRAM)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("modifying past the wrap limit must panic")
		}
	}()
	d.Modify(0, LocDRAM)
}

// Property: after any interleaving of modifications and syncs, the
// invariants hold: version 0 iff never modified since last sync; dirty iff
// version > 0; owner is flash whenever clean.
func TestProtocolInvariantsProperty(t *testing.T) {
	f := func(script []uint8) bool {
		d := NewDirectory(3)
		for _, b := range script {
			p := int(b) % 3
			switch (b >> 4) % 3 {
			case 0:
				if !d.NeedsFlush(p) {
					d.Modify(p, LocDRAM)
				}
			case 1:
				if !d.NeedsFlush(p) {
					d.Modify(p, LocBuffer)
				}
			case 2:
				d.Sync(p, SyncReason(int(b)%int(numSyncReasons)))
			}
			e := d.Entry(p)
			dirty := e.State == Dirty
			if dirty != (e.Version > 0) {
				return false
			}
			if !dirty && e.Owner != LocFlash {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if LocFlash.String() != "flash" || LocDRAM.String() != "dram" || LocBuffer.String() != "buffer" {
		t.Fatal("location names wrong")
	}
	if Clean.String() != "clean" || Dirty.String() != "dirty" {
		t.Fatal("state names wrong")
	}
	if SyncGC.String() != "gc" || SyncPowerCycle.String() != "power-cycle" {
		t.Fatal("reason names wrong")
	}
}
