package config

import (
	"fmt"

	"conduit/internal/sim"
)

// SSD describes the simulated solid-state drive (Table 2: 48-WL-layer 3D
// TLC NAND, 2 TB, 8 channels x 8 dies x 2 planes).
type SSD struct {
	// Geometry.
	Channels       int // flash channels, each with one flash controller
	DiesPerChannel int // independently operating dies per channel
	PlanesPerDie   int // planes per die (multi-plane operations)
	BlocksPerPlane int // blocks per plane
	PagesPerBlock  int // wordlines per block (4 x 48 WL layers = 196)
	PageSize       int // bytes per page

	// Interfaces.
	PCIeBandwidth    float64 // host link, bytes/second (PCIe 4.0 x4: 8 GB/s)
	ChannelBandwidth float64 // per flash channel, bytes/second (1.2 GB/s)

	// NAND latencies (SLC mode, Table 2).
	TRead          sim.Time // page sensing (tR)
	TProg          sim.Time // page program
	TErase         sim.Time // block erase (tBERS)
	TAndOr         sim.Time // in-flash multi-wordline AND/OR
	TLatchTransfer sim.Time // page-buffer latch-to-latch transfer
	TXor           sim.Time // in-flash XOR via latches
	TDMA           sim.Time // page buffer <-> flash controller DMA

	// NAND energies (Table 2).
	EReadPerChannel float64 // J per page sense, per channel
	EAndOrPerKB     float64 // J per KiB for in-flash AND/OR
	ELatchPerKB     float64 // J per KiB for latch transfers
	EXorPerKB       float64 // J per KiB for in-flash XOR
	EDMAPerChannel  float64 // J per DMA transfer, per channel

	// SSD-internal DRAM (2 GB LPDDR4-1866, 1 channel, 1 rank, 8 banks).
	DRAMSize         int64    // bytes
	DRAMBanks        int      // independent banks
	DRAMRowSize      int      // bytes per row per bank
	DRAMBusBandwidth float64  // bytes/second on the shared LPDDR4 bus
	TBbop            sim.Time // one bulk bitwise operation round (49 ns)
	TRCD             sim.Time // row activate-to-column delay
	TRP              sim.Time // row precharge
	EBbop            float64  // J per bbop round
	EDRAMPerByte     float64  // J per byte moved over the DRAM bus

	// SSD controller (5 ARM Cortex-R8 @ 1.5 GHz).
	Cores         int     // embedded cores; one runs offloaded computation
	CoreClockHz   float64 // core frequency
	MVEWidthBytes int     // M-Profile Vector Extension datapath width
	ECorePerCycle float64 // J per active core cycle

	// Runtime offloader overheads (§4.5).
	TL2PLookupDRAM  sim.Time // L2P lookup when the mapping entry is cached
	TL2PLookupFlash sim.Time // L2P lookup when the entry must be fetched
	TDepTrack       sim.Time // data-dependence delay estimation, per queue
	TQueueTrack     sim.Time // resource queueing-delay lookup, per resource
	TDMLookup       sim.Time // precomputed data-movement latency lookup
	TCompLookup     sim.Time // precomputed computation latency lookup
	TTranslate      sim.Time // instruction transformation table lookup

	// FTL.
	MappingCacheRatio float64 // fraction of L2P entries resident in DRAM
	GCThreshold       float64 // free-block fraction that triggers GC
	OPRatio           float64 // over-provisioning fraction

	// TimingOnly is a simulation-engine switch, not a hardware parameter:
	// when set, the data plane is elided — page payloads are never stored
	// or computed, only timing, energy, and activity counters are tracked.
	// Every latency in the model is data-independent (transfer times are
	// functions of the page size, compute times of lane count and element
	// width), so a timing-only run produces byte-identical Results to a
	// functional run; only the payload-readback hooks (Device.PageBytes
	// and the NVMe read path) become unavailable. Control flow, including
	// every validation error path, is unchanged.
	TimingOnly bool
}

// Host describes the outside-storage-processing baselines (Table 2: Xeon
// Gold 5118 and NVIDIA A100) as calibrated roofline models.
type Host struct {
	// CPU.
	CPUCores      int     // physical cores
	CPUClockHz    float64 // sustained clock
	CPUSIMDBytes  int     // vector datapath bytes per cycle per core (AVX-512)
	CPUPowerWatts float64 // package power while computing
	MemBandwidth  float64 // host DRAM, bytes/second (19.2 GB/s)
	LLCBytes      int64   // last-level cache capacity

	// GPU.
	GPUSMs         int     // streaming multiprocessors
	GPUClockHz     float64 // base clock
	GPULanesPerSM  int     // INT8 operations per SM per cycle
	GPUPowerWatts  float64 // board power while computing
	HBMBandwidth   float64 // device memory bandwidth, bytes/second
	GPUMemoryBytes int64   // device memory capacity

	EPCIePerByte float64 // J per byte over the host link
	EHostPerByte float64 // J per byte through host DRAM
}

// Config is the complete simulated system.
type Config struct {
	SSD  SSD
	Host Host
}

// Default returns the evaluated configuration of Table 2. The flash
// geometry is scaled down from the paper's 2 TB drive (2048 blocks/plane)
// to keep functional simulation in memory; all experiments size workload
// footprints relative to the configured capacity, so contention and
// data-movement ratios are preserved (see DESIGN.md, substitutions).
func Default() Config {
	return Config{
		SSD: SSD{
			Channels:       8,
			DiesPerChannel: 8,
			PlanesPerDie:   2,
			BlocksPerPlane: 32, // paper: 2048; scaled, see doc comment
			PagesPerBlock:  196,
			PageSize:       16 << 10, // one 4096-lane x 32-bit vector (§4.3.1)

			PCIeBandwidth:    8e9,
			ChannelBandwidth: 1.2e9,

			TRead:          sim.Time(22500),        // 22.5 µs SLC-mode sense
			TProg:          400 * sim.Microsecond,  // SLC-mode program
			TErase:         3500 * sim.Microsecond, // tBERS
			TAndOr:         20 * sim.Nanosecond,    // Flash-Cosmos MWS
			TLatchTransfer: 20 * sim.Nanosecond,    // ParaBit/Ares-Flash latches
			TXor:           30 * sim.Nanosecond,    // in-flash XOR
			TDMA:           sim.Time(3300),         // 3.3 µs page DMA

			EReadPerChannel: 20.5e-6,
			EAndOrPerKB:     10e-9,
			ELatchPerKB:     10e-9,
			EXorPerKB:       20e-9,
			EDMAPerChannel:  7.656e-6,

			// The paper's 2 TB drive carries 2 GB of DRAM and workload
			// footprints exceed memory capacity (§5.4): hot working sets
			// fit, but streamed data (round keys, model weights, filter
			// banks) does not and continuously evicts. The scaled
			// geometry preserves that pressure: 8 MiB of DRAM (512 page
			// slots) against multi-thousand-page streams.
			DRAMSize:         8 << 20,
			DRAMBanks:        8,
			DRAMRowSize:      2 << 10,
			DRAMBusBandwidth: 7.46e9, // LPDDR4-1866 x32
			TBbop:            49 * sim.Nanosecond,
			TRCD:             18 * sim.Nanosecond,
			TRP:              18 * sim.Nanosecond,
			EBbop:            0.864e-9,
			EDRAMPerByte:     20e-12,

			Cores:         5,
			CoreClockHz:   1.5e9,
			MVEWidthBytes: 32,
			ECorePerCycle: 0.2e-9, // Cortex-R8 class embedded core

			TL2PLookupDRAM:  100 * sim.Nanosecond,
			TL2PLookupFlash: 30 * sim.Microsecond,
			TDepTrack:       1 * sim.Microsecond,
			TQueueTrack:     1 * sim.Microsecond,
			TDMLookup:       100 * sim.Nanosecond,
			TCompLookup:     150 * sim.Nanosecond,
			TTranslate:      300 * sim.Nanosecond,

			MappingCacheRatio: 0.25, // DFTL-style demand mapping cache
			GCThreshold:       0.10,
			OPRatio:           0.07,
		},
		Host: Host{
			CPUCores:      6,
			CPUClockHz:    3.2e9,
			CPUSIMDBytes:  64, // AVX-512
			CPUPowerWatts: 105,
			MemBandwidth:  19.2e9,
			LLCBytes:      8 << 20,

			GPUSMs:         108,
			GPUClockHz:     1.4e9,
			GPULanesPerSM:  256, // INT8 ops/SM/cycle, tensor-core class
			GPUPowerWatts:  250,
			HBMBandwidth:   1555e9,
			GPUMemoryBytes: 40 << 30,

			EPCIePerByte: 100e-12,
			EHostPerByte: 30e-12,
		},
	}
}

// TestScale returns Default shrunk further (fewer blocks) for fast unit
// tests. Experiments use Default.
func TestScale() Config {
	c := Default()
	c.SSD.BlocksPerPlane = 8
	c.SSD.PagesPerBlock = 48
	c.SSD.DRAMSize = 2 << 20 // 128 page slots, preserving capacity pressure
	return c
}

// Validate checks internal consistency and returns a descriptive error for
// the first violated constraint.
func (c *Config) Validate() error {
	s := &c.SSD
	checks := []struct {
		ok  bool
		msg string
	}{
		{s.Channels > 0, "Channels must be positive"},
		{s.DiesPerChannel > 0, "DiesPerChannel must be positive"},
		{s.PlanesPerDie > 0, "PlanesPerDie must be positive"},
		{s.BlocksPerPlane > 1, "BlocksPerPlane must exceed 1 (GC needs a spare)"},
		{s.PagesPerBlock > 0, "PagesPerBlock must be positive"},
		{s.PageSize > 0 && s.PageSize%512 == 0, "PageSize must be a positive multiple of 512"},
		{s.PCIeBandwidth > 0, "PCIeBandwidth must be positive"},
		{s.ChannelBandwidth > 0, "ChannelBandwidth must be positive"},
		{s.TRead > 0 && s.TProg > 0 && s.TErase > 0, "flash latencies must be positive"},
		{s.DRAMBanks > 0 && s.DRAMRowSize > 0, "DRAM geometry must be positive"},
		{s.DRAMBusBandwidth > 0, "DRAMBusBandwidth must be positive"},
		{s.Cores >= 2, "need >=2 controller cores (firmware + compute, §4.3.2)"},
		{s.CoreClockHz > 0, "CoreClockHz must be positive"},
		{s.MVEWidthBytes > 0 && s.PageSize%s.MVEWidthBytes == 0, "MVEWidthBytes must divide PageSize"},
		{s.MappingCacheRatio > 0 && s.MappingCacheRatio <= 1, "MappingCacheRatio must be in (0,1]"},
		{s.GCThreshold > 0 && s.GCThreshold < 1, "GCThreshold must be in (0,1)"},
		{c.Host.CPUCores > 0 && c.Host.GPUSMs > 0, "host geometry must be positive"},
		{c.Host.MemBandwidth > 0 && c.Host.HBMBandwidth > 0, "host bandwidths must be positive"},
	}
	for _, ch := range checks {
		if !ch.ok {
			return fmt.Errorf("config: %s", ch.msg)
		}
	}
	return nil
}

// TotalPages reports the number of physical flash pages.
func (s *SSD) TotalPages() int {
	return s.Channels * s.DiesPerChannel * s.PlanesPerDie * s.BlocksPerPlane * s.PagesPerBlock
}

// TotalDies reports the number of independently operating flash dies.
func (s *SSD) TotalDies() int { return s.Channels * s.DiesPerChannel }

// CapacityBytes reports raw flash capacity.
func (s *SSD) CapacityBytes() int64 {
	return int64(s.TotalPages()) * int64(s.PageSize)
}

// UsablePages reports logical capacity after over-provisioning.
func (s *SSD) UsablePages() int {
	return int(float64(s.TotalPages()) * (1 - s.OPRatio))
}

// ChannelTransferTime is the time to move n bytes over one flash channel.
func (s *SSD) ChannelTransferTime(n int) sim.Time {
	return sim.Time(float64(n) / s.ChannelBandwidth * 1e9)
}

// DRAMTransferTime is the time to move n bytes over the SSD DRAM bus.
func (s *SSD) DRAMTransferTime(n int) sim.Time {
	return sim.Time(float64(n) / s.DRAMBusBandwidth * 1e9)
}

// PCIeTransferTime is the time to move n bytes over the host link.
func (s *SSD) PCIeTransferTime(n int) sim.Time {
	return sim.Time(float64(n) / s.PCIeBandwidth * 1e9)
}

// CoreCycles converts a cycle count on a controller core into time.
func (s *SSD) CoreCycles(n int64) sim.Time {
	return sim.Time(float64(n) / s.CoreClockHz * 1e9)
}
