package config

import (
	"testing"

	"conduit/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("Default config invalid: %v", err)
	}
	ts := TestScale()
	if err := ts.Validate(); err != nil {
		t.Fatalf("TestScale config invalid: %v", err)
	}
}

func TestDefaultMatchesTable2(t *testing.T) {
	c := Default()
	s := c.SSD
	if s.Channels != 8 || s.DiesPerChannel != 8 || s.PlanesPerDie != 2 {
		t.Errorf("geometry %d/%d/%d does not match Table 2 (8/8/2)",
			s.Channels, s.DiesPerChannel, s.PlanesPerDie)
	}
	if s.TRead != sim.Time(22500) {
		t.Errorf("TRead = %v, want 22.5µs", s.TRead)
	}
	if s.TProg != 400*sim.Microsecond {
		t.Errorf("TProg = %v, want 400µs", s.TProg)
	}
	if s.TErase != 3500*sim.Microsecond {
		t.Errorf("TErase = %v, want 3.5ms", s.TErase)
	}
	if s.TAndOr != 20 || s.TLatchTransfer != 20 || s.TXor != 30 {
		t.Errorf("in-flash op latencies %v/%v/%v, want 20/20/30ns",
			s.TAndOr, s.TLatchTransfer, s.TXor)
	}
	if s.TBbop != 49 {
		t.Errorf("TBbop = %v, want 49ns", s.TBbop)
	}
	if s.ChannelBandwidth != 1.2e9 || s.PCIeBandwidth != 8e9 {
		t.Errorf("bandwidths %v/%v, want 1.2GB/s and 8GB/s",
			s.ChannelBandwidth, s.PCIeBandwidth)
	}
	if s.Cores != 5 || s.CoreClockHz != 1.5e9 {
		t.Errorf("controller %d cores @%v, want 5 @1.5GHz", s.Cores, s.CoreClockHz)
	}
	if c.Host.CPUCores != 6 || c.Host.GPUSMs != 108 {
		t.Errorf("host %d cores / %d SMs, want 6 / 108", c.Host.CPUCores, c.Host.GPUSMs)
	}
}

func TestValidateRejectsBrokenConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero channels", func(c *Config) { c.SSD.Channels = 0 }},
		{"one block per plane", func(c *Config) { c.SSD.BlocksPerPlane = 1 }},
		{"unaligned page size", func(c *Config) { c.SSD.PageSize = 1000 }},
		{"negative read latency", func(c *Config) { c.SSD.TRead = -1 }},
		{"single core", func(c *Config) { c.SSD.Cores = 1 }},
		{"mve does not divide page", func(c *Config) { c.SSD.MVEWidthBytes = 48 }},
		{"cache ratio too big", func(c *Config) { c.SSD.MappingCacheRatio = 1.5 }},
		{"gc threshold 1", func(c *Config) { c.SSD.GCThreshold = 1 }},
		{"no host cores", func(c *Config) { c.Host.CPUCores = 0 }},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken config", m.name)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	c := Default()
	s := &c.SSD
	wantPages := 8 * 8 * 2 * 32 * 196
	if got := s.TotalPages(); got != wantPages {
		t.Errorf("TotalPages = %d, want %d", got, wantPages)
	}
	if got := s.TotalDies(); got != 64 {
		t.Errorf("TotalDies = %d, want 64", got)
	}
	if got := s.CapacityBytes(); got != int64(wantPages)*int64(s.PageSize) {
		t.Errorf("CapacityBytes = %d", got)
	}
	if got := s.UsablePages(); got >= wantPages || got <= 0 {
		t.Errorf("UsablePages = %d not in (0, total)", got)
	}
}

func TestTransferTimes(t *testing.T) {
	c := Default()
	s := &c.SSD
	// 1.2 GB over a 1.2 GB/s channel takes 1 s.
	if got := s.ChannelTransferTime(1.2e9); got != sim.Second {
		t.Errorf("ChannelTransferTime(1.2e9) = %v, want 1s", got)
	}
	// One 16 KiB page over the channel: 16384/1.2e9 s ≈ 13.65 µs.
	got := s.ChannelTransferTime(s.PageSize)
	if got < 13*sim.Microsecond || got > 14*sim.Microsecond {
		t.Errorf("page channel transfer = %v, want ≈13.65µs", got)
	}
	// PCIe is faster than the flash channel for the same payload.
	if s.PCIeTransferTime(s.PageSize) >= got {
		t.Error("PCIe transfer should beat one flash channel")
	}
	// 1500 core cycles at 1.5 GHz = 1 µs.
	if got := s.CoreCycles(1500); got != sim.Microsecond {
		t.Errorf("CoreCycles(1500) = %v, want 1µs", got)
	}
}
