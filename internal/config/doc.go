// Package config holds every parameter of the simulated system: the SSD
// geometry and timing/energy constants of Table 2 of the paper, the host
// CPU/GPU models, and the runtime-overhead constants of §4.5.
//
// Experiments construct a Config once (usually via Default) and thread it
// through every model; nothing in the simulator reads global state.
package config
