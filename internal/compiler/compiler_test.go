package compiler

import (
	"bytes"
	"testing"
	"testing/quick"

	"conduit/internal/cores"
	"conduit/internal/isa"
	"conduit/internal/sim"
	"conduit/internal/vecmath"
)

const testPage = 256 // small pages keep tests fast

// irRun executes a compiled program with a functional map interpreter (the
// same semantics every device substrate implements).
func irRun(t *testing.T, c *Compiled) map[isa.PageID][]byte {
	t.Helper()
	mem := make(map[isa.PageID][]byte)
	load := func(p isa.PageID) []byte {
		if b, ok := mem[p]; ok {
			return b
		}
		if b, ok := c.Inputs[p]; ok {
			cp := append([]byte(nil), b...)
			mem[p] = cp
			return cp
		}
		b := make([]byte, c.pageSize)
		mem[p] = b
		return b
	}
	for i := range c.Prog.Insts {
		in := &c.Prog.Insts[i]
		if in.Op == isa.OpScalar {
			continue
		}
		srcs := make([][]byte, 0, len(in.Srcs))
		for _, s := range in.Srcs {
			srcs = append(srcs, load(s))
		}
		out := make([]byte, c.pageSize)
		if err := cores.Apply(in.Op, out, srcs, in.Elem, in.UseImm, in.Imm); err != nil {
			t.Fatalf("ir inst %d (%v): %v", i, in.Op, err)
		}
		mem[in.Dst] = out
	}
	return mem
}

// checkEquivalence compiles src, runs both the scalar interpreter and the
// vectorized IR, and compares every array.
func checkEquivalence(t *testing.T, src *Source) *Compiled {
	t.Helper()
	c, err := Compile(src, testPage)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	want, err := Interpret(src, testPage)
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	got := irRun(t, c)
	for _, a := range src.Arrays {
		pages := c.ArrayPages(a.Name)
		for i, p := range pages {
			var gp []byte
			if b, ok := got[p]; ok {
				gp = b
			} else if b, ok := c.Inputs[p]; ok {
				gp = b
			} else {
				gp = make([]byte, testPage)
			}
			wp := want[a.Name][i*testPage : (i+1)*testPage]
			if !bytes.Equal(gp, wp) {
				t.Fatalf("array %q page %d: vectorized != scalar", a.Name, i)
			}
		}
	}
	return c
}

func bytesOf(vals []uint8) []byte { return append([]byte(nil), vals...) }

func seqData(n int, f func(i int) byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func TestCompileSimpleElementwise(t *testing.T) {
	n := 3 * (testPage / 1) // three blocks of int8 lanes
	src := &Source{
		Name: "axpy",
		Arrays: []*Array{
			{Name: "a", Elem: 1, Len: n, Input: true, Data: seqData(n, func(i int) byte { return byte(i) })},
			{Name: "b", Elem: 1, Len: n, Input: true, Data: seqData(n, func(i int) byte { return byte(3 * i) })},
			{Name: "c", Elem: 1, Len: n},
		},
		Stmts: []Stmt{
			Loop{Name: "axpy", N: n, Body: []Assign{
				{Target: "c", Value: Bin{OpAdd, Bin{OpMul, Ref{Name: "a"}, Lit{2}}, Ref{Name: "b"}}},
			}},
		},
	}
	c := checkEquivalence(t, src)
	if got := c.Report.VectorizablePercent(); got != 100 {
		t.Errorf("vectorizable%% = %v, want 100", got)
	}
	// Immediate folding: the multiply by 2 must use an immediate, not a
	// broadcast temp.
	sawImmMul := false
	for _, in := range c.Prog.Insts {
		if in.Op == isa.OpMul && in.UseImm {
			sawImmMul = true
		}
	}
	if !sawImmMul {
		t.Error("literal multiplier should fold into an immediate operand")
	}
}

func TestStencilShufflesAndMatches(t *testing.T) {
	n := 2 * testPage
	src := &Source{
		Name: "jacobi-like",
		Arrays: []*Array{
			{Name: "x", Elem: 1, Len: n, Input: true, Data: seqData(n, func(i int) byte { return byte(i * 7) })},
			{Name: "y", Elem: 1, Len: n},
		},
		Stmts: []Stmt{
			Loop{Name: "stencil", N: n, Body: []Assign{
				{Target: "y", Value: Bin{OpAdd,
					Bin{OpAdd, Ref{Name: "x", Offset: -1}, Ref{Name: "x"}},
					Ref{Name: "x", Offset: 1}}},
			}},
		},
	}
	c := checkEquivalence(t, src)
	shuffles := 0
	for _, in := range c.Prog.Insts {
		if in.Op == isa.OpShuffle {
			shuffles++
		}
	}
	if shuffles == 0 {
		t.Error("neighbor accesses must lower to shuffles")
	}
}

func TestPredicationLowersToSelect(t *testing.T) {
	n := testPage
	src := &Source{
		Name: "clamp",
		Arrays: []*Array{
			{Name: "x", Elem: 1, Len: n, Input: true, Data: seqData(n, func(i int) byte { return byte(i) })},
			{Name: "y", Elem: 1, Len: n},
		},
		Stmts: []Stmt{
			Loop{Name: "clamp", N: n, Body: []Assign{
				{Target: "y", Value: Cond{
					Mask: Bin{OpGT, Ref{Name: "x"}, Lit{100}},
					A:    Lit{100},
					B:    Ref{Name: "x"},
				}},
			}},
		},
	}
	c := checkEquivalence(t, src)
	found := false
	for _, in := range c.Prog.Insts {
		if in.Op == isa.OpSelect {
			found = true
		}
	}
	if !found {
		t.Error("conditional must lower to a select")
	}
}

func TestReductionLowering(t *testing.T) {
	n := 2 * (testPage / 4)
	src := &Source{
		Name: "dot",
		Arrays: []*Array{
			{Name: "a", Elem: 4, Len: n, Input: true, Data: seqData(4*n, func(i int) byte { return byte(i % 5) })},
			{Name: "b", Elem: 4, Len: n, Input: true, Data: seqData(4*n, func(i int) byte { return byte(i % 3) })},
			{Name: "dot", Elem: 4, Len: n},
		},
		Stmts: []Stmt{
			Loop{Name: "dot", N: n, Body: []Assign{
				{Target: "dot", Reduce: true, Value: Bin{OpMul, Ref{Name: "a"}, Ref{Name: "b"}}},
			}},
		},
	}
	c := checkEquivalence(t, src)
	found := false
	for _, in := range c.Prog.Insts {
		if in.Op == isa.OpReduceAdd {
			found = true
		}
	}
	if !found {
		t.Error("reduction must lower to reduce_add")
	}
}

func TestLoopCarriedDependenceRejected(t *testing.T) {
	n := 2 * testPage
	src := &Source{
		Name: "prefix",
		Arrays: []*Array{
			{Name: "x", Elem: 1, Len: n, Input: true, Data: seqData(n, func(i int) byte { return byte(i) })},
		},
		Stmts: []Stmt{
			// x[i] = x[i-1] + x[i]: classic recurrence.
			Loop{Name: "prefix", N: n, Body: []Assign{
				{Target: "x", Value: Bin{OpAdd, Ref{Name: "x", Offset: -1}, Ref{Name: "x"}}},
			}},
		},
	}
	c, err := Compile(src, testPage)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Report.Loops) != 1 || c.Report.Loops[0].Vectorized {
		t.Fatalf("recurrence must not vectorize: %+v", c.Report.Loops)
	}
	if c.Report.Loops[0].Reason == "" {
		t.Error("rejection must carry a reason (vectorization remark)")
	}
	// Every emitted data instruction must be marked un-vectorized.
	for _, in := range c.Prog.Insts {
		if in.Op != isa.OpScalar && !in.Meta.Unvectorized {
			t.Fatalf("inst %v from a scalar loop not marked un-vectorized", in.Op)
		}
	}
	if c.Report.VectorizablePercent() != 0 {
		t.Error("vectorizable%% must be 0")
	}
}

func TestForceScalarAndShortLoops(t *testing.T) {
	n := 4 * testPage
	src := &Source{
		Name: "mixed",
		Arrays: []*Array{
			{Name: "x", Elem: 1, Len: n, Input: true, Data: seqData(n, func(i int) byte { return byte(i) })},
			{Name: "y", Elem: 1, Len: n},
		},
		Stmts: []Stmt{
			Loop{Name: "vec", N: n, Body: []Assign{
				{Target: "y", Value: Bin{OpXor, Ref{Name: "x"}, Lit{0xFF}}},
			}},
			Loop{Name: "forced", N: n, ForceScalar: true, Body: []Assign{
				{Target: "y", Value: Bin{OpAdd, Ref{Name: "y"}, Lit{1}}},
			}},
			Loop{Name: "short", N: 8, Body: []Assign{
				{Target: "y", Value: Bin{OpAdd, Ref{Name: "y"}, Lit{1}}},
			}},
			ScalarWork{Name: "bookkeeping", Cycles: 10000},
		},
	}
	c := checkEquivalence(t, src)
	if len(c.Report.Loops) != 3 {
		t.Fatalf("loop reports = %d", len(c.Report.Loops))
	}
	if !c.Report.Loops[0].Vectorized || c.Report.Loops[1].Vectorized || c.Report.Loops[2].Vectorized {
		t.Fatalf("vectorization outcomes wrong: %+v", c.Report.Loops)
	}
	pct := c.Report.VectorizablePercent()
	if pct <= 0 || pct >= 100 {
		t.Fatalf("mixed program vectorizable%% = %v, want strictly between 0 and 100", pct)
	}
	// The control region must appear as an OpScalar instruction.
	sawScalar := false
	for _, in := range c.Prog.Insts {
		if in.Op == isa.OpScalar {
			sawScalar = true
		}
	}
	if !sawScalar {
		t.Error("ScalarWork must lower to an OpScalar instruction")
	}
}

func TestCompileErrors(t *testing.T) {
	base := func() *Source {
		return &Source{
			Name: "bad",
			Arrays: []*Array{
				{Name: "x", Elem: 1, Len: testPage, Input: true},
				{Name: "short", Elem: 1, Len: 8},
			},
			Stmts: []Stmt{
				Loop{Name: "l", N: testPage, Body: []Assign{
					{Target: "x", Value: Bin{OpAdd, Ref{Name: "x"}, Lit{1}}},
				}},
			},
		}
	}
	// Loop over an array shorter than its range.
	s := base()
	s.Stmts = []Stmt{Loop{Name: "l", N: testPage, Body: []Assign{
		{Target: "short", Value: Bin{OpAdd, Ref{Name: "x"}, Lit{1}}},
	}}}
	if _, err := Compile(s, testPage); err == nil {
		t.Error("loop exceeding array bounds must fail")
	}
	// Undeclared array.
	s = base()
	s.Stmts = []Stmt{Loop{Name: "l", N: 8, Body: []Assign{
		{Target: "nope", Value: Lit{1}},
	}}}
	if _, err := Compile(s, testPage); err == nil {
		t.Error("undeclared target must fail")
	}
	// Mixed element sizes.
	s = base()
	s.Arrays = append(s.Arrays, &Array{Name: "wide", Elem: 4, Len: 8})
	if _, err := Compile(s, testPage); err == nil {
		t.Error("mixed element sizes must fail")
	}
	// Variable shift amount.
	s = base()
	s.Stmts = []Stmt{Loop{Name: "l", N: testPage, Body: []Assign{
		{Target: "x", Value: Bin{OpShl, Ref{Name: "x"}, Ref{Name: "x"}}},
	}}}
	if _, err := Compile(s, testPage); err == nil {
		t.Error("non-literal shift amount must fail")
	}
	// Bad page size.
	s = base()
	if _, err := Compile(s, 0); err == nil {
		t.Error("zero page size must fail")
	}
}

// Property: for random elementwise expressions over two arrays, the
// vectorized program matches the scalar interpreter bit-for-bit.
func TestVectorizerEquivalenceProperty(t *testing.T) {
	ops := []OpCode{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpMin, OpMax, OpLT}
	f := func(seed uint64, o1, o2 uint8, off int8) bool {
		r := sim.NewRNG(seed)
		n := 2 * testPage
		da := make([]byte, n)
		db := make([]byte, n)
		r.Bytes(da)
		r.Bytes(db)
		src := &Source{
			Name: "prop",
			Arrays: []*Array{
				{Name: "a", Elem: 1, Len: n, Input: true, Data: da},
				{Name: "b", Elem: 1, Len: n, Input: true, Data: db},
				{Name: "c", Elem: 1, Len: n},
			},
			Stmts: []Stmt{Loop{Name: "l", N: n, Body: []Assign{
				{Target: "c", Value: Bin{
					ops[int(o1)%len(ops)],
					Bin{ops[int(o2)%len(ops)], Ref{Name: "a", Offset: int(off % 8)}, Ref{Name: "b"}},
					Ref{Name: "a"},
				}},
			}}},
		}
		c, err := Compile(src, testPage)
		if err != nil {
			return false
		}
		want, err := Interpret(src, testPage)
		if err != nil {
			return false
		}
		got := irRun(t, c)
		for i, p := range c.ArrayPages("c") {
			if !bytes.Equal(got[p], want["c"][i*testPage:(i+1)*testPage]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataEmbedded(t *testing.T) {
	n := testPage
	src := &Source{
		Name: "meta",
		Arrays: []*Array{
			{Name: "x", Elem: 1, Len: n, Input: true, Data: seqData(n, func(i int) byte { return byte(i) })},
			{Name: "y", Elem: 1, Len: n},
		},
		Stmts: []Stmt{Loop{Name: "l", N: n, Body: []Assign{
			{Target: "y", Value: Bin{OpMul, Ref{Name: "x"}, Ref{Name: "x"}}},
		}}},
	}
	c, err := Compile(src, testPage)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range c.Prog.Insts {
		if in.Op == isa.OpScalar {
			continue
		}
		if in.Meta.OperandBytes == 0 {
			t.Fatalf("inst %v missing operand-size metadata", in.Op)
		}
		if in.Meta.Class != in.Op.Class() {
			t.Fatalf("inst %v metadata class mismatch", in.Op)
		}
		if in.Lanes != testPage || in.Elem != 1 {
			t.Fatalf("inst %v geometry wrong", in.Op)
		}
	}
	_ = vecmath.Mask // anchor import
}
