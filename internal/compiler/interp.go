package compiler

import (
	"fmt"

	"conduit/internal/arena"
	"conduit/internal/vecmath"
)

// Interpret executes src scalar-wise, lane by lane — the reference
// semantics the vectorized program must reproduce bit-for-bit.
//
// Loops execute over whole vector blocks (iteration counts round up to the
// vector width, matching the padded page layout), and neighbor references
// A[i+k] wrap within their vector block, exactly as the emitted shuffle
// instructions behave. The returned map holds each array's final contents
// (padded to whole blocks).
//
// The evaluation itself is block-vectorized through the specialized
// vecmath kernels — the scalar semantics are defined by evalLane (kept as
// the oracle for the interpreter's own differential test), and every
// kernel is differentially tested against the same scalar semantics, so
// the result is bit-identical to lane-serial evaluation.
func Interpret(src *Source, pageSize int) (map[string][]byte, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	elem := src.Elem()
	if pageSize <= 0 || pageSize%elem != 0 {
		return nil, fmt.Errorf("compiler: page size %d incompatible with element size %d", pageSize, elem)
	}
	lanes := pageSize / elem
	mem := make(map[string][]byte, len(src.Arrays))
	for _, a := range src.Arrays {
		blocks := (a.Len + lanes - 1) / lanes
		buf := make([]byte, blocks*pageSize)
		if a.Input && a.Data != nil {
			copy(buf, a.Data)
		}
		mem[a.Name] = buf
	}

	ev := &blockEval{
		mem:   mem,
		elem:  elem,
		lanes: lanes,
		pool:  arena.New(pageSize),
	}
	mask := vecmath.Mask(elem)
	for _, st := range src.Stmts {
		l, ok := st.(Loop)
		if !ok {
			continue // pure control work has no data effect
		}
		blocks := (l.N + lanes - 1) / lanes
		for b := 0; b < blocks; b++ {
			base := b * lanes
			for _, a := range l.Body {
				out, owned, err := ev.eval(a.Value, base)
				if err != nil {
					return nil, err
				}
				tgt := mem[a.Target][base*elem : (base+lanes)*elem]
				if a.Reduce {
					sum := vecmath.ReduceAdd(out, elem) & mask
					vecmath.Broadcast(tgt, elem, sum)
				} else {
					copy(tgt, out)
				}
				if owned {
					ev.pool.Put(out)
				}
			}
		}
	}
	return mem, nil
}

// blockEval evaluates expressions over one vector block at a time,
// producing pageSize-byte buffers. Returned buffers are either owned
// (pool-allocated intermediates the caller must Put back) or borrowed
// views into mem (never written).
type blockEval struct {
	mem   map[string][]byte
	elem  int
	lanes int
	pool  *arena.Pool
}

// eval computes e for the block starting at lane base.
func (ev *blockEval) eval(e Expr, base int) ([]byte, bool, error) {
	elem, lanes := ev.elem, ev.lanes
	switch v := e.(type) {
	case Lit:
		buf := ev.pool.Get()
		vecmath.Broadcast(buf, elem, v.Value)
		return buf, true, nil
	case Ref:
		block := ev.mem[v.Name][base*elem : (base+lanes)*elem]
		rot := ((v.Offset % lanes) + lanes) % lanes
		if rot == 0 {
			return block, false, nil
		}
		buf := ev.pool.Get()
		vecmath.Shuffle(buf, block, elem, rot)
		return buf, true, nil
	case Un:
		if v.Op != OpNot {
			return nil, false, fmt.Errorf("compiler: unary %d unsupported", v.Op)
		}
		x, owned, err := ev.eval(v.X, base)
		if err != nil {
			return nil, false, err
		}
		dst := x
		if !owned {
			dst = ev.pool.Get()
		}
		vecmath.ApplyUnary(vecmath.OpNot, dst, x, elem, 0)
		return dst, true, nil
	case Bin:
		k, ok := kernelLaneOp(v.Op)
		if !ok {
			return nil, false, fmt.Errorf("compiler: unmapped lane op %d", v.Op)
		}
		x, xo, err := ev.eval(v.X, base)
		if err != nil {
			return nil, false, err
		}
		// Literal right operands take the immediate kernels directly.
		if lit, isLit := v.Y.(Lit); isLit {
			dst := x
			if !xo {
				dst = ev.pool.Get()
			}
			if k == vecmath.OpShl || k == vecmath.OpShr {
				// The literal shift count participates as a masked lane
				// value, exactly as evalLane computes it.
				vecmath.ApplyUnary(k, dst, x, elem, lit.Value&vecmath.Mask(elem))
			} else {
				vecmath.ApplyImm(k, dst, x, elem, lit.Value)
			}
			return dst, true, nil
		}
		y, yo, err := ev.eval(v.Y, base)
		if err != nil {
			if xo {
				ev.pool.Put(x)
			}
			return nil, false, err
		}
		dst := x
		switch {
		case xo:
		case yo:
			dst = y
		default:
			dst = ev.pool.Get()
		}
		vecmath.Apply(k, dst, x, y, elem)
		if xo && yo {
			ev.pool.Put(y) // dst reused x; y is now dead
		}
		return dst, true, nil
	case Cond:
		m, mo, err := ev.eval(v.Mask, base)
		if err != nil {
			return nil, false, err
		}
		a, ao, err := ev.eval(v.A, base)
		if err != nil {
			if mo {
				ev.pool.Put(m)
			}
			return nil, false, err
		}
		b, bo, err := ev.eval(v.B, base)
		if err != nil {
			if mo {
				ev.pool.Put(m)
			}
			if ao {
				ev.pool.Put(a)
			}
			return nil, false, err
		}
		// Both branches are pure (division by zero saturates rather than
		// trapping), so evaluating them unconditionally is lane-exact for
		// every valid source. The one divergence from the lane-serial
		// oracle is error behavior: an unsupported operation inside a
		// never-selected branch errors here, where per-lane short-circuit
		// evaluation would have skipped it.
		var dst []byte
		switch {
		case mo:
			dst = m
		case ao:
			dst = a
		case bo:
			dst = b
		default:
			dst = ev.pool.Get()
		}
		vecmath.Select(dst, m, a, b, elem)
		if mo && &dst[0] != &m[0] {
			ev.pool.Put(m)
		}
		if ao && &dst[0] != &a[0] {
			ev.pool.Put(a)
		}
		if bo && &dst[0] != &b[0] {
			ev.pool.Put(b)
		}
		return dst, true, nil
	default:
		return nil, false, fmt.Errorf("compiler: unknown expression %T", e)
	}
}

// kernelLaneOp maps a source binary operation onto the vecmath kernel
// vocabulary.
func kernelLaneOp(op OpCode) (vecmath.Op, bool) {
	switch op {
	case OpAdd:
		return vecmath.OpAdd, true
	case OpSub:
		return vecmath.OpSub, true
	case OpMul:
		return vecmath.OpMul, true
	case OpDiv:
		return vecmath.OpDiv, true
	case OpAnd:
		return vecmath.OpAnd, true
	case OpOr:
		return vecmath.OpOr, true
	case OpXor:
		return vecmath.OpXor, true
	case OpShl:
		return vecmath.OpShl, true
	case OpShr:
		return vecmath.OpShr, true
	case OpLT:
		return vecmath.OpLT, true
	case OpGT:
		return vecmath.OpGT, true
	case OpEQ:
		return vecmath.OpEQ, true
	case OpMin:
		return vecmath.OpMin, true
	case OpMax:
		return vecmath.OpMax, true
	default:
		return 0, false
	}
}

// evalLane evaluates e for lane base+i with block-circular indexing: the
// scalar reference semantics of one lane, retained as the oracle for
// TestInterpretMatchesLaneReference.
func evalLane(src *Source, mem map[string][]byte, e Expr, base, i, lanes, elem int) (uint64, error) {
	mask := vecmath.Mask(elem)
	switch v := e.(type) {
	case Lit:
		return v.Value & mask, nil
	case Ref:
		j := ((i+v.Offset)%lanes + lanes) % lanes
		return vecmath.Load(mem[v.Name], base+j, elem), nil
	case Un:
		x, err := evalLane(src, mem, v.X, base, i, lanes, elem)
		if err != nil {
			return 0, err
		}
		if v.Op != OpNot {
			return 0, fmt.Errorf("compiler: unary %d unsupported", v.Op)
		}
		return ^x & mask, nil
	case Bin:
		x, err := evalLane(src, mem, v.X, base, i, lanes, elem)
		if err != nil {
			return 0, err
		}
		y, err := evalLane(src, mem, v.Y, base, i, lanes, elem)
		if err != nil {
			return 0, err
		}
		return applyLane(v.Op, x, y, elem), nil
	case Cond:
		m, err := evalLane(src, mem, v.Mask, base, i, lanes, elem)
		if err != nil {
			return 0, err
		}
		if m != 0 {
			return evalLane(src, mem, v.A, base, i, lanes, elem)
		}
		return evalLane(src, mem, v.B, base, i, lanes, elem)
	default:
		return 0, fmt.Errorf("compiler: unknown expression %T", e)
	}
}

// applyLane is the scalar semantics of each binary source operation.
func applyLane(op OpCode, x, y uint64, elem int) uint64 {
	mask := vecmath.Mask(elem)
	sx, sy := vecmath.ToSigned(x, elem), vecmath.ToSigned(y, elem)
	switch op {
	case OpAdd:
		return (x + y) & mask
	case OpSub:
		return (x - y) & mask
	case OpMul:
		return (x * y) & mask
	case OpDiv:
		if y == 0 {
			return mask
		}
		return (x / y) & mask
	case OpAnd:
		return x & y
	case OpOr:
		return x | y
	case OpXor:
		return x ^ y
	case OpShl:
		return (x << y) & mask
	case OpShr:
		return x >> y
	case OpLT:
		return vecmath.Bool(sx < sy, elem)
	case OpGT:
		return vecmath.Bool(sx > sy, elem)
	case OpEQ:
		return vecmath.Bool(x == y, elem)
	case OpMin:
		if sx < sy {
			return x
		}
		return y
	case OpMax:
		if sx > sy {
			return x
		}
		return y
	default:
		panic(fmt.Sprintf("compiler: unmapped lane op %d", op))
	}
}
