package compiler

import (
	"fmt"

	"conduit/internal/vecmath"
)

// Interpret executes src scalar-wise, lane by lane — the reference
// semantics the vectorized program must reproduce bit-for-bit.
//
// Loops execute over whole vector blocks (iteration counts round up to the
// vector width, matching the padded page layout), and neighbor references
// A[i+k] wrap within their vector block, exactly as the emitted shuffle
// instructions behave. The returned map holds each array's final contents
// (padded to whole blocks).
func Interpret(src *Source, pageSize int) (map[string][]byte, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	elem := src.Elem()
	if pageSize <= 0 || pageSize%elem != 0 {
		return nil, fmt.Errorf("compiler: page size %d incompatible with element size %d", pageSize, elem)
	}
	lanes := pageSize / elem
	mem := make(map[string][]byte, len(src.Arrays))
	for _, a := range src.Arrays {
		blocks := (a.Len + lanes - 1) / lanes
		buf := make([]byte, blocks*pageSize)
		if a.Input && a.Data != nil {
			copy(buf, a.Data)
		}
		mem[a.Name] = buf
	}

	mask := vecmath.Mask(elem)
	for _, st := range src.Stmts {
		l, ok := st.(Loop)
		if !ok {
			continue // pure control work has no data effect
		}
		blocks := (l.N + lanes - 1) / lanes
		for b := 0; b < blocks; b++ {
			base := b * lanes
			for _, a := range l.Body {
				out := make([]uint64, lanes)
				for i := 0; i < lanes; i++ {
					v, err := evalLane(src, mem, a.Value, base, i, lanes, elem)
					if err != nil {
						return nil, err
					}
					out[i] = v
				}
				tgt := mem[a.Target]
				if a.Reduce {
					var sum uint64
					for _, v := range out {
						sum += v
					}
					sum &= mask
					for i := 0; i < lanes; i++ {
						vecmath.Store(tgt, base+i, elem, sum)
					}
					continue
				}
				for i := 0; i < lanes; i++ {
					vecmath.Store(tgt, base+i, elem, out[i])
				}
			}
		}
	}
	return mem, nil
}

// evalLane evaluates e for lane base+i with block-circular indexing.
func evalLane(src *Source, mem map[string][]byte, e Expr, base, i, lanes, elem int) (uint64, error) {
	mask := vecmath.Mask(elem)
	switch v := e.(type) {
	case Lit:
		return v.Value & mask, nil
	case Ref:
		j := ((i+v.Offset)%lanes + lanes) % lanes
		return vecmath.Load(mem[v.Name], base+j, elem), nil
	case Un:
		x, err := evalLane(src, mem, v.X, base, i, lanes, elem)
		if err != nil {
			return 0, err
		}
		if v.Op != OpNot {
			return 0, fmt.Errorf("compiler: unary %d unsupported", v.Op)
		}
		return ^x & mask, nil
	case Bin:
		x, err := evalLane(src, mem, v.X, base, i, lanes, elem)
		if err != nil {
			return 0, err
		}
		y, err := evalLane(src, mem, v.Y, base, i, lanes, elem)
		if err != nil {
			return 0, err
		}
		return applyLane(v.Op, x, y, elem), nil
	case Cond:
		m, err := evalLane(src, mem, v.Mask, base, i, lanes, elem)
		if err != nil {
			return 0, err
		}
		if m != 0 {
			return evalLane(src, mem, v.A, base, i, lanes, elem)
		}
		return evalLane(src, mem, v.B, base, i, lanes, elem)
	default:
		return 0, fmt.Errorf("compiler: unknown expression %T", e)
	}
}

// applyLane is the scalar semantics of each binary source operation.
func applyLane(op OpCode, x, y uint64, elem int) uint64 {
	mask := vecmath.Mask(elem)
	sx, sy := vecmath.ToSigned(x, elem), vecmath.ToSigned(y, elem)
	switch op {
	case OpAdd:
		return (x + y) & mask
	case OpSub:
		return (x - y) & mask
	case OpMul:
		return (x * y) & mask
	case OpDiv:
		if y == 0 {
			return mask
		}
		return (x / y) & mask
	case OpAnd:
		return x & y
	case OpOr:
		return x | y
	case OpXor:
		return x ^ y
	case OpShl:
		return (x << y) & mask
	case OpShr:
		return x >> y
	case OpLT:
		return vecmath.Bool(sx < sy, elem)
	case OpGT:
		return vecmath.Bool(sx > sy, elem)
	case OpEQ:
		return vecmath.Bool(x == y, elem)
	case OpMin:
		if sx < sy {
			return x
		}
		return y
	case OpMax:
		if sx > sy {
			return x
		}
		return y
	default:
		panic(fmt.Sprintf("compiler: unmapped lane op %d", op))
	}
}
