package compiler

import "testing"

func TestScalarWorkCodeUnits(t *testing.T) {
	src := &Source{
		Name: "units",
		Arrays: []*Array{
			{Name: "x", Elem: 1, Len: testPage, Input: true, Data: make([]byte, testPage)},
		},
		Stmts: []Stmt{
			Loop{Name: "v", N: testPage, Body: []Assign{
				{Target: "x", Value: Bin{OpAdd, Ref{Name: "x"}, Lit{1}}},
			}},
			// Tiny runtime, but declared as a big share of the code.
			ScalarWork{Name: "ctl", Cycles: 100, CodeUnits: 6},
		},
	}
	c, err := Compile(src, testPage)
	if err != nil {
		t.Fatal(err)
	}
	// Vector work = 2 static ops (add + store); scalar = 6 units.
	if got := c.Report.VectorizablePercent(); got < 20 || got > 30 {
		t.Fatalf("vectorizable%% = %v, want 2/(2+6) = 25%%", got)
	}
	// Without CodeUnits the same cycles are nearly invisible statically.
	src.Stmts[1] = ScalarWork{Name: "ctl", Cycles: 100}
	c2, err := Compile(src, testPage)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Report.VectorizablePercent() <= c.Report.VectorizablePercent() {
		t.Fatal("estimated scalar units should be smaller than explicit CodeUnits here")
	}
}

func TestStaticWorkIndependentOfDataSize(t *testing.T) {
	build := func(n int) *Source {
		return &Source{
			Name: "sized",
			Arrays: []*Array{
				{Name: "x", Elem: 1, Len: n, Input: true, Data: make([]byte, n)},
			},
			Stmts: []Stmt{
				Loop{Name: "v", N: n, Body: []Assign{
					{Target: "x", Value: Bin{OpXor, Ref{Name: "x"}, Lit{1}}},
				}},
			},
		}
	}
	small, err := Compile(build(testPage), testPage)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Compile(build(8*testPage), testPage)
	if err != nil {
		t.Fatal(err)
	}
	// Table 3 characterizes code: the metric must not change with the
	// dataset size, even though the instruction count does.
	if small.Report.TotalWork != big.Report.TotalWork {
		t.Fatalf("static work changed with data size: %d vs %d",
			small.Report.TotalWork, big.Report.TotalWork)
	}
	if len(big.Prog.Insts) <= len(small.Prog.Insts) {
		t.Fatal("instruction count must scale with data size")
	}
}

func TestInterpretRejectsBadInput(t *testing.T) {
	src := &Source{
		Name:   "bad",
		Arrays: []*Array{{Name: "x", Elem: 1, Len: 8}},
	}
	if _, err := Interpret(src, 0); err == nil {
		t.Fatal("zero page size must fail")
	}
	src.Arrays = nil
	if _, err := Interpret(src, testPage); err == nil {
		t.Fatal("array-less source must fail")
	}
}

func TestTempPoolsAreChunkDisjoint(t *testing.T) {
	n := 4 * testPage // four chunks
	src := &Source{
		Name: "temps",
		Arrays: []*Array{
			{Name: "x", Elem: 1, Len: n, Input: true, Data: make([]byte, n)},
			{Name: "y", Elem: 1, Len: n},
		},
		Stmts: []Stmt{
			Loop{Name: "v", N: n, Body: []Assign{
				{Target: "y", Value: Bin{OpAdd,
					Bin{OpMul, Ref{Name: "x"}, Lit{3}},
					Bin{OpXor, Ref{Name: "x"}, Lit{9}}}},
			}},
		},
	}
	c, err := Compile(src, testPage)
	if err != nil {
		t.Fatal(err)
	}
	// Collect the temp pages used per chunk (loop iteration block) from
	// the emitted stream; no temp page may appear in two chunks.
	lastArray := c.ArrayPages("y")[len(c.ArrayPages("y"))-1]
	chunkOf := map[int]int{}
	chunk := 0
	for _, in := range c.Prog.Insts {
		if in.Dst > lastArray { // a temp page
			if prev, ok := chunkOf[int(in.Dst)]; ok && prev != chunk {
				t.Fatalf("temp page %d reused across chunks %d and %d", in.Dst, prev, chunk)
			}
			chunkOf[int(in.Dst)] = chunk
		}
		if in.Dst == c.ArrayPages("y")[min(chunk, len(c.ArrayPages("y"))-1)] {
			chunk++
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
