package compiler

import (
	"bytes"
	"testing"
	"testing/quick"

	"conduit/internal/sim"
	"conduit/internal/vecmath"
)

// interpretLaneSerial is the original lane-serial interpreter loop, built
// on the retained evalLane oracle. The block-vectorized Interpret must
// reproduce it bit for bit.
func interpretLaneSerial(t *testing.T, src *Source, pageSize int) map[string][]byte {
	t.Helper()
	if err := src.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	elem := src.Elem()
	lanes := pageSize / elem
	mem := make(map[string][]byte, len(src.Arrays))
	for _, a := range src.Arrays {
		blocks := (a.Len + lanes - 1) / lanes
		buf := make([]byte, blocks*pageSize)
		if a.Input && a.Data != nil {
			copy(buf, a.Data)
		}
		mem[a.Name] = buf
	}
	mask := vecmath.Mask(elem)
	for _, st := range src.Stmts {
		l, ok := st.(Loop)
		if !ok {
			continue
		}
		blocks := (l.N + lanes - 1) / lanes
		for b := 0; b < blocks; b++ {
			base := b * lanes
			for _, a := range l.Body {
				out := make([]uint64, lanes)
				for i := 0; i < lanes; i++ {
					v, err := evalLane(src, mem, a.Value, base, i, lanes, elem)
					if err != nil {
						t.Fatalf("evalLane: %v", err)
					}
					out[i] = v
				}
				tgt := mem[a.Target]
				if a.Reduce {
					var sum uint64
					for _, v := range out {
						sum += v
					}
					sum &= mask
					for i := 0; i < lanes; i++ {
						vecmath.Store(tgt, base+i, elem, sum)
					}
					continue
				}
				for i := 0; i < lanes; i++ {
					vecmath.Store(tgt, base+i, elem, out[i])
				}
			}
		}
	}
	return mem
}

func diffInterp(t *testing.T, src *Source, pageSize int) {
	t.Helper()
	got, err := Interpret(src, pageSize)
	if err != nil {
		t.Fatalf("Interpret: %v", err)
	}
	want := interpretLaneSerial(t, src, pageSize)
	for name, w := range want {
		if !bytes.Equal(got[name], w) {
			for i := range w {
				if got[name][i] != w[i] {
					t.Fatalf("array %q byte %d: vectorized %#02x != lane-serial %#02x",
						name, i, got[name][i], w[i])
				}
			}
		}
	}
}

// TestInterpretMatchesLaneReference drives the vectorized interpreter
// against the lane-serial oracle over every expression shape: literals,
// offset references (positive and negative), unary NOT, all binary
// operations including division by zero and variable shifts, nested
// conditionals, and reductions, at every element width.
func TestInterpretMatchesLaneReference(t *testing.T) {
	for _, elem := range []int{1, 2, 4} {
		n := 3*testPage/elem + 5 // odd tail block
		r := sim.NewRNG(uint64(elem))
		da := make([]byte, n*elem)
		db := make([]byte, n*elem)
		r.Bytes(da)
		r.Bytes(db)
		src := &Source{
			Name: "diff",
			Arrays: []*Array{
				{Name: "a", Elem: elem, Len: n, Input: true, Data: da},
				{Name: "b", Elem: elem, Len: n, Input: true, Data: db},
				{Name: "c", Elem: elem, Len: n},
				{Name: "d", Elem: elem, Len: n},
				{Name: "s", Elem: elem, Len: n},
			},
			Stmts: []Stmt{Loop{Name: "l", N: n, Body: []Assign{
				{Target: "c", Value: Bin{OpDiv, Ref{Name: "a"}, Ref{Name: "b"}}},
				{Target: "c", Value: Bin{OpShl, Ref{Name: "c"}, Bin{OpAnd, Ref{Name: "b"}, Lit{Value: 7}}}},
				{Target: "d", Value: Cond{
					Mask: Bin{OpLT, Ref{Name: "a", Offset: -3}, Ref{Name: "b", Offset: 2}},
					A:    Bin{OpMul, Ref{Name: "c"}, Lit{Value: 0x81}},
					B:    Un{Op: OpNot, X: Bin{OpMax, Ref{Name: "a"}, Ref{Name: "b"}}},
				}},
				{Target: "d", Value: Bin{OpShr, Ref{Name: "d"}, Lit{Value: 3}}},
				{Target: "s", Value: Bin{OpAdd, Ref{Name: "d"}, Ref{Name: "c"}}, Reduce: true},
			}}},
		}
		diffInterp(t, src, testPage)
	}
}

// TestInterpretQuickProperty fuzzes random expression trees over random
// inputs and element widths against the lane-serial oracle.
func TestInterpretQuickProperty(t *testing.T) {
	ops := []OpCode{OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpLT, OpGT, OpEQ, OpMin, OpMax}
	f := func(seed uint64, o1, o2, o3 uint8, off int8, lit uint64, elemSel uint8, reduce bool) bool {
		elem := []int{1, 2, 4}[int(elemSel)%3]
		lanes := testPage / elem
		n := 2*lanes + lanes/2 // partial final block
		r := sim.NewRNG(seed)
		da := make([]byte, n*elem)
		db := make([]byte, n*elem)
		r.Bytes(da)
		r.Bytes(db)
		expr := Cond{
			Mask: Bin{ops[int(o3)%len(ops)], Ref{Name: "b", Offset: int(off % 5)}, Lit{Value: lit}},
			A:    Bin{ops[int(o1)%len(ops)], Ref{Name: "a", Offset: int(off % 11)}, Ref{Name: "b"}},
			B:    Bin{ops[int(o2)%len(ops)], Ref{Name: "a"}, Lit{Value: lit >> 3}},
		}
		src := &Source{
			Name: "quick",
			Arrays: []*Array{
				{Name: "a", Elem: elem, Len: n, Input: true, Data: da},
				{Name: "b", Elem: elem, Len: n, Input: true, Data: db},
				{Name: "c", Elem: elem, Len: n},
			},
			Stmts: []Stmt{Loop{Name: "l", N: n, Body: []Assign{
				{Target: "c", Value: expr, Reduce: reduce},
			}}},
		}
		got, err := Interpret(src, testPage)
		if err != nil {
			t.Logf("Interpret: %v", err)
			return false
		}
		want := interpretLaneSerial(t, src, testPage)
		return bytes.Equal(got["c"], want["c"])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
