// Package compiler implements Conduit's compile-time preprocessing
// (§4.3.1): it takes application code expressed as affine loop nests over
// arrays, auto-vectorizes the vectorizable loops into page-aligned SIMD
// instructions (vector width = PageSize/ElementSize, i.e. 4096 lanes for
// 32-bit operands, mirroring -force-vector-width=4096), strip-mines
// partially vectorizable code, embeds the per-instruction metadata the
// runtime offloader consumes, and reports vectorization coverage
// (Table 3's "vectorizable code %").
//
// The paper drives LLVM 12 over C sources; we substitute a small loop IR
// that yields the same artifact — the vectorized instruction stream with
// metadata — as DESIGN.md's substitution table records.
//
// Language semantics note: a neighbor access A[i+k] wraps at vector-block
// granularity (the lane rotation a SIMD shifted load performs). The scalar
// reference interpreter implements exactly the same semantics, so
// vectorized and scalar execution agree bit-for-bit.
package compiler
