package compiler

import "fmt"

// Expr is an expression over the loop index.
type Expr interface {
	exprNode()
}

// Ref reads array Name at the loop index plus Offset lanes.
type Ref struct {
	Name   string
	Offset int
}

// Lit is an integer literal broadcast across lanes.
type Lit struct {
	Value uint64
}

// Bin applies a binary vector operation to two subexpressions.
type Bin struct {
	Op   OpCode
	X, Y Expr
}

// Un applies a unary vector operation.
type Un struct {
	Op OpCode
	X  Expr
}

// Cond selects lanewise: Mask != 0 ? A : B (vector predication).
type Cond struct {
	Mask, A, B Expr
}

func (Ref) exprNode()  {}
func (Lit) exprNode()  {}
func (Bin) exprNode()  {}
func (Un) exprNode()   {}
func (Cond) exprNode() {}

// OpCode is the source-level operation vocabulary (a subset of the vector
// IR, excluding movement/control internals).
type OpCode uint8

// Source operations.
const (
	OpAdd OpCode = iota
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl
	OpShr
	OpLT
	OpGT
	OpEQ
	OpMin
	OpMax
	OpSelect3 // used only via Select helper
)

// Assign is one statement of a loop body:
//
//	Target[i] = Value        (elementwise)
//	Target[block] = Σ Value  (when Reduce is set: per-block lane reduction)
type Assign struct {
	Target string
	Offset int // lane offset on the target (usually 0)
	Value  Expr
	Reduce bool
}

// Stmt is a top-level statement.
type Stmt interface {
	stmtNode()
}

// Loop iterates i over [0, N) lanes, executing Body elementwise.
type Loop struct {
	Name string
	N    int // iteration (lane) count
	Body []Assign
	// ForceScalar marks the loop non-vectorizable for reasons outside
	// the dependence test (complex control flow, aliasing, atomics —
	// §7's auto-vectorization limits). The compiler also proves
	// non-vectorizability itself for loop-carried dependences.
	ForceScalar bool
}

// ScalarWork is an inherently sequential region (bookkeeping, control,
// pointer chasing) costing Cycles controller-core cycles per occurrence.
// CodeUnits is its static size in operation-equivalents for the
// vectorizable-code metric (Table 3 characterizes code, not runtime); when
// zero, it is estimated from Cycles.
type ScalarWork struct {
	Name      string
	Cycles    int64
	CodeUnits int64
}

func (Loop) stmtNode()       {}
func (ScalarWork) stmtNode() {}

// Array declares a data object of Len lanes of Elem bytes. Input arrays
// carry initial Data (lane-packed, little-endian); non-input arrays start
// zeroed.
type Array struct {
	Name  string
	Elem  int
	Len   int
	Input bool
	Data  []byte
}

// Source is a complete application.
type Source struct {
	Name   string
	Arrays []*Array
	Stmts  []Stmt
}

// Validate checks declaration consistency.
func (s *Source) Validate() error {
	if len(s.Arrays) == 0 {
		return fmt.Errorf("compiler: %s declares no arrays", s.Name)
	}
	elem := s.Arrays[0].Elem
	seen := map[string]bool{}
	for _, a := range s.Arrays {
		if a.Name == "" || a.Len <= 0 {
			return fmt.Errorf("compiler: array %q has invalid shape", a.Name)
		}
		if a.Elem != elem {
			return fmt.Errorf("compiler: mixed element sizes (%d vs %d); quantize first (§5.4)", a.Elem, elem)
		}
		if seen[a.Name] {
			return fmt.Errorf("compiler: duplicate array %q", a.Name)
		}
		seen[a.Name] = true
		if a.Input && a.Data != nil && len(a.Data) != a.Len*a.Elem {
			return fmt.Errorf("compiler: array %q data is %d bytes, want %d", a.Name, len(a.Data), a.Len*a.Elem)
		}
	}
	var check func(e Expr) error
	check = func(e Expr) error {
		switch v := e.(type) {
		case Ref:
			if !seen[v.Name] {
				return fmt.Errorf("compiler: reference to undeclared array %q", v.Name)
			}
		case Bin:
			if err := check(v.X); err != nil {
				return err
			}
			return check(v.Y)
		case Un:
			return check(v.X)
		case Cond:
			if err := check(v.Mask); err != nil {
				return err
			}
			if err := check(v.A); err != nil {
				return err
			}
			return check(v.B)
		}
		return nil
	}
	for _, st := range s.Stmts {
		l, ok := st.(Loop)
		if !ok {
			continue
		}
		if l.N <= 0 {
			return fmt.Errorf("compiler: loop %q has %d iterations", l.Name, l.N)
		}
		for _, a := range l.Body {
			if !seen[a.Target] {
				return fmt.Errorf("compiler: loop %q assigns undeclared array %q", l.Name, a.Target)
			}
			if err := check(a.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// Elem reports the shared element size of the source's arrays.
func (s *Source) Elem() int { return s.Arrays[0].Elem }

// array looks up a declared array.
func (s *Source) array(name string) *Array {
	for _, a := range s.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RefsOf returns every array reference in an expression, in evaluation
// order. The cluster planner uses it to classify loops by the arrays they
// touch.
func RefsOf(e Expr) []Ref {
	var out []Ref
	refsIn(e, &out)
	return out
}

// refsIn collects every array reference in an expression.
func refsIn(e Expr, out *[]Ref) {
	switch v := e.(type) {
	case Ref:
		*out = append(*out, v)
	case Bin:
		refsIn(v.X, out)
		refsIn(v.Y, out)
	case Un:
		refsIn(v.X, out)
	case Cond:
		refsIn(v.Mask, out)
		refsIn(v.A, out)
		refsIn(v.B, out)
	}
}

// loopCarried reports whether the loop has a lane-carried dependence: some
// assignment's target array is read at a different lane offset within the
// same loop, making in-order lane execution semantically required.
func loopCarried(l Loop) bool {
	writes := map[string]int{}
	for _, a := range l.Body {
		writes[a.Target] = a.Offset
	}
	for _, a := range l.Body {
		var refs []Ref
		refsIn(a.Value, &refs)
		for _, r := range refs {
			if w, ok := writes[r.Name]; ok && r.Offset != w {
				return true
			}
		}
		if a.Reduce {
			// Reductions vectorize via the reduce instruction.
			continue
		}
	}
	return false
}

// opsIn counts operation nodes in an expression (work estimation).
func opsIn(e Expr) int {
	switch v := e.(type) {
	case Bin:
		return 1 + opsIn(v.X) + opsIn(v.Y)
	case Un:
		return 1 + opsIn(v.X)
	case Cond:
		return 1 + opsIn(v.Mask) + opsIn(v.A) + opsIn(v.B)
	default:
		return 0
	}
}
