package compiler

import (
	"fmt"
	"sort"

	"conduit/internal/isa"
)

// irOp maps a source operation to its vector IR operation.
func irOp(op OpCode) isa.Op {
	switch op {
	case OpAdd:
		return isa.OpAdd
	case OpSub:
		return isa.OpSub
	case OpMul:
		return isa.OpMul
	case OpDiv:
		return isa.OpDiv
	case OpAnd:
		return isa.OpAnd
	case OpOr:
		return isa.OpOr
	case OpXor:
		return isa.OpXor
	case OpNot:
		return isa.OpNot
	case OpShl:
		return isa.OpShl
	case OpShr:
		return isa.OpShr
	case OpLT:
		return isa.OpLT
	case OpGT:
		return isa.OpGT
	case OpEQ:
		return isa.OpEQ
	case OpMin:
		return isa.OpMin
	case OpMax:
		return isa.OpMax
	case OpSelect3:
		return isa.OpSelect
	default:
		panic(fmt.Sprintf("compiler: unmapped opcode %d", op))
	}
}

// commutative reports whether lane order of operands is irrelevant.
func commutative(op isa.Op) bool {
	switch op {
	case isa.OpAdd, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpNand, isa.OpNor, isa.OpEQ, isa.OpMin, isa.OpMax:
		return true
	}
	return false
}

// tempsPerChunk is the number of temporary pages the compiler cycles
// through for expression intermediates within one vector chunk. Chunks get
// disjoint pools (up to maxTempChunks before pools wrap) so temporaries
// never couple the operand groups of independent chunks — which would
// defeat the loader's NDP-aware placement.
const tempsPerChunk = 24

// maxTempChunks bounds the number of disjoint per-chunk temp pools.
const maxTempChunks = 64

// LoopReport records the vectorization outcome of one loop (the
// -Rpass=loop-vectorize remarks of the paper's toolchain).
type LoopReport struct {
	Name       string
	Vectorized bool
	Reason     string // why vectorization was rejected, when it was
	Work       int64  // lane-operations in the loop
}

// Report summarizes compilation for Table 3. Work is measured statically
// (operation nodes in the source), matching Table 3's "vectorizable code
// %", which characterizes the code, not its dynamic instruction count.
type Report struct {
	Loops      []LoopReport
	TotalWork  int64 // static operation count plus scalar-region equivalents
	VectorWork int64 // static operations inside vectorized loops
}

// VectorizablePercent is Table 3's "vectorizable code %".
func (r *Report) VectorizablePercent() float64 {
	if r.TotalWork == 0 {
		return 0
	}
	return 100 * float64(r.VectorWork) / float64(r.TotalWork)
}

// Compiled is the output of compile-time preprocessing: the vectorized
// instruction stream with metadata, the initial data image, and the
// array-to-page symbol table.
type Compiled struct {
	Prog   *isa.Program
	Inputs map[isa.PageID][]byte
	Report Report

	pageSize int
	elem     int
	arrays   map[string][]isa.PageID
	arrayLen map[string]int
}

// ArrayPages returns the logical pages backing an array.
func (c *Compiled) ArrayPages(name string) []isa.PageID {
	return append([]isa.PageID(nil), c.arrays[name]...)
}

// ArrayNames lists the declared arrays in page-layout order.
func (c *Compiled) ArrayNames() []string {
	names := make([]string, 0, len(c.arrays))
	for n := range c.arrays {
		names = append(names, n)
	}
	// Order by first page for determinism (arrays never share pages, so
	// the first page is a total order).
	sort.Slice(names, func(i, j int) bool {
		return c.arrays[names[i]][0] < c.arrays[names[j]][0]
	})
	return names
}

// Lanes reports the vector width for this compilation (PageSize/Elem).
func (c *Compiled) Lanes() int { return c.pageSize / c.elem }

// Compile vectorizes src for a device with the given page size.
func Compile(src *Source, pageSize int) (*Compiled, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	elem := src.Elem()
	if pageSize <= 0 || pageSize%elem != 0 {
		return nil, fmt.Errorf("compiler: page size %d incompatible with element size %d", pageSize, elem)
	}
	c := &compilation{
		Compiled: Compiled{
			Inputs:   make(map[isa.PageID][]byte),
			pageSize: pageSize,
			elem:     elem,
			arrays:   make(map[string][]isa.PageID),
			arrayLen: make(map[string]int),
		},
		lanes: pageSize / elem,
	}

	// Lay out arrays: sequential pages, padded to whole vector blocks.
	var next isa.PageID
	var inputPages []isa.PageID
	for _, a := range src.Arrays {
		pages := (a.Len + c.lanes - 1) / c.lanes
		ids := make([]isa.PageID, pages)
		for i := range ids {
			ids[i] = next
			next++
		}
		c.arrays[a.Name] = ids
		c.arrayLen[a.Name] = a.Len
		if a.Input {
			for i, id := range ids {
				page := make([]byte, pageSize)
				if a.Data != nil {
					start := i * pageSize
					if start < len(a.Data) {
						copy(page, a.Data[start:])
					}
				}
				c.Inputs[id] = page
				inputPages = append(inputPages, id)
			}
		}
	}
	// Per-chunk temporary pools.
	c.tempBase = next
	next += isa.PageID(tempsPerChunk * maxTempChunks)
	c.totalPages = int(next)

	for _, st := range src.Stmts {
		switch s := st.(type) {
		case Loop:
			if err := c.compileLoop(src, s); err != nil {
				return nil, err
			}
		case ScalarWork:
			c.emitScalar(s.Cycles)
			if s.CodeUnits > 0 {
				c.Report.TotalWork += s.CodeUnits
			} else {
				c.Report.TotalWork += staticScalarUnits(s.Cycles)
			}
		default:
			return nil, fmt.Errorf("compiler: unknown statement %T", st)
		}
	}

	var outputPages []isa.PageID
	for _, a := range src.Arrays {
		outputPages = append(outputPages, c.arrays[a.Name]...)
	}
	prog := &isa.Program{
		Name:        src.Name,
		Insts:       c.insts,
		Pages:       c.totalPages,
		InputPages:  inputPages,
		OutputPages: outputPages,
	}
	prog.InferDeps()
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: emitted invalid program: %w", err)
	}
	c.Prog = prog
	out := c.Compiled
	return &out, nil
}

// compilation carries emission state.
type compilation struct {
	Compiled
	lanes      int
	insts      []isa.Inst
	tempBase   isa.PageID
	tempNext   map[int]int
	totalPages int
	loopID     int
}

// staticScalarUnits converts an opaque control region's cycle cost into
// static code units comparable to loop-body operation counts.
func staticScalarUnits(cycles int64) int64 {
	u := cycles >> 16
	if u < 1 {
		u = 1
	}
	return u
}

func (c *compilation) temp(b int) isa.PageID {
	chunk := b % maxTempChunks
	if c.tempNext == nil {
		c.tempNext = make(map[int]int)
	}
	idx := c.tempNext[chunk] % tempsPerChunk
	c.tempNext[chunk]++
	return c.tempBase + isa.PageID(chunk*tempsPerChunk+idx)
}

// operand is an expression result: either a page or an immediate.
type operand struct {
	page isa.PageID
	imm  uint64
	lit  bool
}

func (c *compilation) compileLoop(src *Source, l Loop) error {
	c.loopID++
	// Bounds check: every referenced array must cover the loop's lanes.
	blocks := (l.N + c.lanes - 1) / c.lanes
	checkLen := func(name string) error {
		if c.arrayLen[name] < l.N {
			return fmt.Errorf("compiler: loop %q iterates %d lanes but array %q has %d",
				l.Name, l.N, name, c.arrayLen[name])
		}
		return nil
	}
	var work int64
	for _, a := range l.Body {
		if err := checkLen(a.Target); err != nil {
			return err
		}
		var refs []Ref
		refsIn(a.Value, &refs)
		for _, r := range refs {
			if err := checkLen(r.Name); err != nil {
				return err
			}
		}
		work += int64(opsIn(a.Value) + 1)
	}

	vectorized := true
	reason := ""
	switch {
	case l.ForceScalar:
		vectorized, reason = false, "marked non-vectorizable (control flow/aliasing)"
	case loopCarried(l):
		vectorized, reason = false, "loop-carried dependence"
	case l.N < c.lanes:
		vectorized, reason = false, fmt.Sprintf("iteration count %d below vector width %d", l.N, c.lanes)
	}
	c.Report.Loops = append(c.Report.Loops, LoopReport{
		Name: l.Name, Vectorized: vectorized, Reason: reason, Work: work,
	})
	c.Report.TotalWork += work
	if vectorized {
		c.Report.VectorWork += work
	}

	for b := 0; b < blocks; b++ {
		for _, a := range l.Body {
			val, err := c.emitExpr(a.Value, b, vectorized, nil)
			if err != nil {
				return err
			}
			target := c.arrays[a.Target][b]
			switch {
			case a.Reduce:
				page := c.materialize(val, b, vectorized)
				c.emit(isa.OpReduceAdd, target, []isa.PageID{page}, 0, false, vectorized)
			case val.lit:
				c.emit(isa.OpBroadcast, target, nil, val.imm, true, vectorized)
			case val.page != target:
				// Try to fold the copy by re-emitting the root with the
				// target as destination; for plain refs a copy is needed.
				c.emit(isa.OpCopy, target, []isa.PageID{val.page}, 0, false, vectorized)
			}
		}
	}
	return nil
}

// emitExpr lowers e for block b, returning its result operand. When dst is
// non-nil, the root operation writes *dst instead of a temporary.
func (c *compilation) emitExpr(e Expr, b int, vectorized bool, dst *isa.PageID) (operand, error) {
	switch v := e.(type) {
	case Lit:
		return operand{imm: v.Value, lit: true}, nil
	case Ref:
		page := c.arrays[v.Name][b]
		if v.Offset == 0 {
			return operand{page: page}, nil
		}
		rot := ((v.Offset % c.lanes) + c.lanes) % c.lanes
		out := c.destOr(dst, b)
		c.emit(isa.OpShuffle, out, []isa.PageID{page}, uint64(rot), true, vectorized)
		return operand{page: out}, nil
	case Un:
		x, err := c.emitExpr(v.X, b, vectorized, nil)
		if err != nil {
			return operand{}, err
		}
		xp := c.materialize(x, b, vectorized)
		out := c.destOr(dst, b)
		c.emit(irOp(v.Op), out, []isa.PageID{xp}, 0, false, vectorized)
		return operand{page: out}, nil
	case Bin:
		op := irOp(v.Op)
		x, err := c.emitExpr(v.X, b, vectorized, nil)
		if err != nil {
			return operand{}, err
		}
		y, err := c.emitExpr(v.Y, b, vectorized, nil)
		if err != nil {
			return operand{}, err
		}
		if x.lit && y.lit {
			// Constant subexpression: materialize X and fold Y.
			x = operand{page: c.materialize(x, b, vectorized)}
		}
		if x.lit && commutative(op) {
			x, y = y, x
		}
		out := c.destOr(dst, b)
		switch {
		case op == isa.OpShl || op == isa.OpShr:
			if !y.lit {
				return operand{}, fmt.Errorf("compiler: shift amount must be a literal")
			}
			xp := c.materialize(x, b, vectorized)
			c.emit(op, out, []isa.PageID{xp}, y.imm, true, vectorized)
		case y.lit && op.ImmReplacesSrc():
			xp := c.materialize(x, b, vectorized)
			c.emit(op, out, []isa.PageID{xp}, y.imm, true, vectorized)
		default:
			xp := c.materialize(x, b, vectorized)
			yp := c.materialize(y, b, vectorized)
			c.emit(op, out, []isa.PageID{xp, yp}, 0, false, vectorized)
		}
		return operand{page: out}, nil
	case Cond:
		m, err := c.emitExpr(v.Mask, b, vectorized, nil)
		if err != nil {
			return operand{}, err
		}
		a, err := c.emitExpr(v.A, b, vectorized, nil)
		if err != nil {
			return operand{}, err
		}
		bb, err := c.emitExpr(v.B, b, vectorized, nil)
		if err != nil {
			return operand{}, err
		}
		mp := c.materialize(m, b, vectorized)
		ap := c.materialize(a, b, vectorized)
		out := c.destOr(dst, b)
		if bb.lit {
			c.emit(isa.OpSelect, out, []isa.PageID{mp, ap}, bb.imm, true, vectorized)
		} else {
			bp := c.materialize(bb, b, vectorized)
			c.emit(isa.OpSelect, out, []isa.PageID{mp, ap, bp}, 0, false, vectorized)
		}
		return operand{page: out}, nil
	default:
		return operand{}, fmt.Errorf("compiler: unknown expression %T", e)
	}
}

func (c *compilation) destOr(dst *isa.PageID, b int) isa.PageID {
	if dst != nil {
		return *dst
	}
	return c.temp(b)
}

// materialize turns an operand into a page, broadcasting literals.
func (c *compilation) materialize(o operand, b int, vectorized bool) isa.PageID {
	if !o.lit {
		return o.page
	}
	t := c.temp(b)
	c.emit(isa.OpBroadcast, t, nil, o.imm, true, vectorized)
	return t
}

// emit appends one vector instruction with compiler metadata (§4.3.1:
// instruction type, operand pointers, element sizes, vector length).
func (c *compilation) emit(op isa.Op, dst isa.PageID, srcs []isa.PageID, imm uint64, useImm bool, vectorized bool) {
	in := isa.Inst{
		ID:     len(c.insts),
		Op:     op,
		Dst:    dst,
		Srcs:   srcs,
		Imm:    imm,
		UseImm: useImm,
		Elem:   c.elem,
		Lanes:  c.lanes,
		Meta: isa.Meta{
			Class:        op.Class(),
			Unvectorized: !vectorized,
			LoopID:       c.loopID,
			OperandBytes: (len(srcs) + 1) * c.pageSize,
		},
	}
	c.insts = append(c.insts, in)
}

// emitScalar appends an opaque control region.
func (c *compilation) emitScalar(cycles int64) {
	c.insts = append(c.insts, isa.Inst{
		ID:           len(c.insts),
		Op:           isa.OpScalar,
		Dst:          isa.NoPage,
		ScalarCycles: cycles,
		Meta:         isa.Meta{Class: isa.ClassControl, LoopID: c.loopID},
	})
}
