package compiler

import (
	"testing"
)

// TestArrayNamesStableAcrossCompiles pins the symbol-table ordering that
// every report path inherits: ArrayNames must come back in the same
// (page-layout) order on every fresh compile, even though the symbol
// table itself is a map. Without the explicit sort this fails within a
// handful of iterations — Go randomizes map iteration per loop.
func TestArrayNamesStableAcrossCompiles(t *testing.T) {
	build := func() *Source {
		n := testPage
		arrays := []*Array{
			{Name: "in0", Elem: 1, Len: n, Input: true, Data: seqData(n, func(i int) byte { return byte(i) })},
			{Name: "zz", Elem: 1, Len: n, Input: true, Data: seqData(n, func(i int) byte { return byte(2 * i) })},
			{Name: "mid", Elem: 1, Len: n},
			{Name: "aa", Elem: 1, Len: n},
			{Name: "out", Elem: 1, Len: n},
		}
		return &Source{
			Name:   "order-probe",
			Arrays: arrays,
			Stmts: []Stmt{
				Loop{Name: "l0", N: n, Body: []Assign{
					{Target: "mid", Value: Bin{OpAdd, Ref{Name: "in0"}, Ref{Name: "zz"}}},
					{Target: "aa", Value: Bin{OpMul, Ref{Name: "mid"}, Lit{3}}},
					{Target: "out", Value: Bin{OpXor, Ref{Name: "aa"}, Ref{Name: "in0"}}},
				}},
			},
		}
	}
	first, err := Compile(build(), testPage)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	want := first.ArrayNames()
	if len(want) != 5 {
		t.Fatalf("ArrayNames = %v, want 5 names", want)
	}
	for run := 0; run < 20; run++ {
		c, err := Compile(build(), testPage)
		if err != nil {
			t.Fatalf("compile %d: %v", run, err)
		}
		got := c.ArrayNames()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("run %d: ArrayNames = %v, want %v (order drifted)", run, got, want)
			}
		}
		// The documented contract, not just run-to-run agreement: names
		// are ordered by their first backing page.
		for i := 1; i < len(got); i++ {
			if c.arrays[got[i-1]][0] >= c.arrays[got[i]][0] {
				t.Fatalf("run %d: %q (page %d) not before %q (page %d)",
					run, got[i-1], c.arrays[got[i-1]][0], got[i], c.arrays[got[i]][0])
			}
		}
	}
}
