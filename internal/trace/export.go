package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SortSpans orders spans by (TraceID, ID) — the canonical export order.
// Content-derived IDs make this a total order that two runs of one
// schedule agree on, no matter how goroutines interleaved.
func SortSpans(spans []*Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].TraceID != spans[j].TraceID {
			return spans[i].TraceID < spans[j].TraceID
		}
		return spans[i].ID < spans[j].ID
	})
}

// WriteJSONL writes one JSON object per span, in the order given.
// Wall-clock fields are omitted when zero, so a tracer armed without a
// clock produces byte-identical output across runs of one schedule.
func WriteJSONL(w io.Writer, spans []*Span) error {
	for _, sp := range spans {
		b, err := json.Marshal(sp)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Process groups spans under one named process for the Perfetto export:
// the serving CLI uses a single process, the router uses one per target
// plus one for itself.
type Process struct {
	Name  string
	Spans []*Span
}

// perfettoEvent is one Chrome trace_event object. Timestamps are
// microseconds (float); we place spans on the simulated timeline and
// use the trace ID as the thread ID, so one request reads as one track.
type perfettoEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// WritePerfetto writes the spans as Chrome/Perfetto trace_event JSON
// ({"traceEvents": [...]}), loadable in ui.perfetto.dev or
// chrome://tracing. Spans render on the simulated timeline; each
// Process becomes one Perfetto process row and each trace one thread
// within it.
func WritePerfetto(w io.Writer, procs []Process) error {
	events := make([]perfettoEvent, 0, 64)
	for i, proc := range procs {
		pid := i + 1
		events = append(events, perfettoEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid,
			Args: map[string]string{"name": proc.Name},
		})
		spans := make([]*Span, len(proc.Spans))
		copy(spans, proc.Spans)
		SortSpans(spans)
		for _, sp := range spans {
			dur := float64(sp.SimEndNS-sp.SimStartNS) / 1e3
			events = append(events, perfettoEvent{
				Name: sp.Name,
				Ph:   "X",
				Pid:  pid,
				Tid:  sp.TraceID,
				Ts:   float64(sp.SimStartNS) / 1e3,
				Dur:  &dur,
				Args: spanArgs(sp),
			})
			for _, ev := range sp.Events {
				events = append(events, perfettoEvent{
					Name: ev.Name,
					Ph:   "i",
					S:    "t",
					Pid:  pid,
					Tid:  sp.TraceID,
					Ts:   float64(ev.SimNS) / 1e3,
					Args: attrArgs(ev.Attrs),
				})
			}
		}
	}
	out := struct {
		TraceEvents []perfettoEvent `json:"traceEvents"`
	}{TraceEvents: events}
	b, err := json.Marshal(out)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

func spanArgs(sp *Span) map[string]string {
	args := attrArgs(sp.Attrs)
	if args == nil {
		args = make(map[string]string, 1)
	}
	args["span_id"] = fmt.Sprintf("%016x", sp.ID)
	return args
}

func attrArgs(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	args := make(map[string]string, len(attrs))
	for _, a := range attrs {
		args[a.Key] = a.Value
	}
	return args
}
