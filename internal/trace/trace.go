// Package trace implements deterministic request tracing for the
// conduit serving stack.
//
// Every span carries two timelines. The simulated timeline
// (SimStartNS/SimEndNS, and SimNS on events) is derived exclusively
// from simulator quantities — elapsed simulated nanoseconds, charged
// backoff penalties — so the same seed and fault schedule produce a
// byte-identical trace on every run. The wall-clock timeline
// (WallStartNS/WallEndNS) is populated only when the Tracer was armed
// with an injected clock via Options.Now; this package never calls
// time.Now itself, which keeps it clean under conduitlint's nondeterm
// analyzer with no allowlist entry. With Options.Now nil every wall
// field stays zero and is omitted from exports, so deterministic and
// operational deployments share one span model.
//
// Span identity is content-derived: a span's ID is an FNV-1a hash of
// (trace ID, parent span ID, name, sibling key). Two runs of the same
// schedule mint the same IDs no matter how goroutines interleave, and
// exports sort by (TraceID, ID), so registration order never shows
// through.
//
// Every method on Tracer, Trace, and Span is nil-receiver safe and
// turns into a no-op, so call sites thread spans unconditionally and
// the disabled path costs one nil check.
package trace

import "sync"

// Ctx is the trace identity that crosses process boundaries: it rides
// in a wire Request so a target continues the issuer's trace instead of
// starting its own.
type Ctx struct {
	// ID is the trace ID; 0 means untraced.
	ID uint64
	// Parent is the span at the issuer that dispatched the request.
	Parent uint64
	// Sampled asks the receiver to record spans for this request.
	Sampled bool
}

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Event is one point-in-time occurrence inside a span: a retry, an
// injected fault, a breaker trip, a pool quarantine.
type Event struct {
	Name string `json:"name"`
	// SimNS is the event's offset on the request's simulated timeline.
	SimNS int64 `json:"sim_ns"`
	// WallNS is set only when the tracer holds an injected wall clock.
	WallNS int64  `json:"wall_ns,omitempty"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// Span is one timed operation in a trace. Exported fields are written
// once while the span is open and read only after it ends (or under the
// span's lock via the mutating methods), and they marshal directly to
// the JSONL export format.
type Span struct {
	TraceID uint64 `json:"trace_id"`
	ID      uint64 `json:"span_id"`
	Parent  uint64 `json:"parent_id,omitempty"`
	Name    string `json:"name"`
	// SimStartNS/SimEndNS bound the span on the request's simulated
	// timeline (nanoseconds from admission of that request).
	SimStartNS int64 `json:"sim_start_ns"`
	SimEndNS   int64 `json:"sim_end_ns"`
	// WallStartNS/WallEndNS are zero (and omitted from exports) unless
	// the tracer was armed with an injected clock.
	WallStartNS int64   `json:"wall_start_ns,omitempty"`
	WallEndNS   int64   `json:"wall_end_ns,omitempty"`
	Attrs       []Attr  `json:"attrs,omitempty"`
	Events      []Event `json:"events,omitempty"`

	tr *Trace
	mu sync.Mutex
}

// Trace is one request's span collection.
type Trace struct {
	ID uint64

	tracer *Tracer
	mu     sync.Mutex
	spans  []*Span
}

// Options configures a Tracer.
type Options struct {
	// SampleEvery samples every Nth locally admitted request (1 traces
	// everything). 0 disables local sampling: only requests whose
	// incoming wire context carries a set Sampled bit are traced, which
	// is how fleet targets defer the decision to the router.
	SampleEvery int
	// Now supplies wall-clock nanoseconds for the operational timeline.
	// It is the only wall-clock seam in this package: nil leaves every
	// wall field zero, keeping exports byte-deterministic.
	Now func() int64
	// MaxTraces bounds retained traces; once full, the oldest trace is
	// dropped. 0 means the default of 4096.
	MaxTraces int
}

// DefaultMaxTraces bounds retained traces when Options.MaxTraces is 0.
const DefaultMaxTraces = 4096

// Tracer mints and retains traces. A nil Tracer is valid and records
// nothing.
type Tracer struct {
	opts Options

	mu     sync.Mutex
	traces []*Trace
}

// New returns a Tracer with the given options.
func New(opts Options) *Tracer {
	if opts.MaxTraces <= 0 {
		opts.MaxTraces = DefaultMaxTraces
	}
	return &Tracer{opts: opts}
}

// ShouldSample reports whether the locally originated request with
// 1-based admission sequence seq should be traced.
func (t *Tracer) ShouldSample(seq uint64) bool {
	if t == nil || t.opts.SampleEvery <= 0 || seq == 0 {
		return false
	}
	return (seq-1)%uint64(t.opts.SampleEvery) == 0
}

// WallClocked reports whether the tracer holds an injected wall clock;
// call sites use it to gate events that are only meaningful (and only
// deterministic) on the operational timeline.
func (t *Tracer) WallClocked() bool { return t != nil && t.opts.Now != nil }

func (t *Tracer) now() int64 {
	if t == nil || t.opts.Now == nil {
		return 0
	}
	return t.opts.Now()
}

// Start registers and returns a new trace with the given ID. The ID is
// the caller's to choose; deterministic call sites use their admission
// sequence number so two runs of one schedule mint identical IDs.
func (t *Tracer) Start(id uint64) *Trace {
	if t == nil {
		return nil
	}
	tr := &Trace{ID: id, tracer: t}
	t.mu.Lock()
	if len(t.traces) >= t.opts.MaxTraces {
		n := copy(t.traces, t.traces[1:])
		t.traces = t.traces[:n]
	}
	t.traces = append(t.traces, tr)
	t.mu.Unlock()
	return tr
}

// Traces returns the retained traces in start order.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, len(t.traces))
	copy(out, t.traces)
	return out
}

// Spans returns every retained span sorted by (TraceID, ID) — the
// canonical export order, independent of goroutine interleaving.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	var out []*Span
	for _, tr := range t.Traces() {
		out = append(out, tr.Spans()...)
	}
	SortSpans(out)
	return out
}

// Root opens the trace's root span. parent is the span ID at a remote
// issuer (0 when the trace originates here); simStart is the span's
// offset on the request's simulated timeline.
func (tr *Trace) Root(name string, parent uint64, simStart int64) *Span {
	if tr == nil {
		return nil
	}
	return tr.newSpan(name, parent, "", simStart)
}

// Spans returns the trace's spans sorted by span ID.
func (tr *Trace) Spans() []*Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	out := make([]*Span, len(tr.spans))
	copy(out, tr.spans)
	tr.mu.Unlock()
	SortSpans(out)
	return out
}

// wallNow is the trace's wall clock; zero when the trace is nil (a
// rehydrated remote span has no backing trace) or the tracer unclocked.
func (tr *Trace) wallNow() int64 {
	if tr == nil {
		return 0
	}
	return tr.tracer.now()
}

func (tr *Trace) newSpan(name string, parent uint64, key string, simStart int64) *Span {
	sp := &Span{
		TraceID:     tr.ID,
		ID:          spanID(tr.ID, parent, name, key),
		Parent:      parent,
		Name:        name,
		SimStartNS:  simStart,
		SimEndNS:    simStart,
		WallStartNS: tr.tracer.now(),
		tr:          tr,
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
	return sp
}

// Child opens a child span. key disambiguates siblings that share a
// name (a shard index, an attempt number); two runs of one schedule
// mint the same child ID regardless of interleaving.
func (sp *Span) Child(name, key string, simStart int64) *Span {
	if sp == nil || sp.tr == nil {
		return nil
	}
	return sp.tr.newSpan(name, sp.ID, key, simStart)
}

// End closes the span at the given simulated offset and stamps the wall
// end if the tracer holds a clock.
func (sp *Span) End(simEnd int64) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.SimEndNS = simEnd
	sp.WallEndNS = sp.tr.wallNow()
	sp.mu.Unlock()
}

// Event records a point-in-time occurrence at the given simulated
// offset.
func (sp *Span) Event(name string, simNS int64, attrs ...Attr) {
	if sp == nil {
		return
	}
	ev := Event{Name: name, SimNS: simNS, WallNS: sp.tr.wallNow(), Attrs: attrs}
	sp.mu.Lock()
	sp.Events = append(sp.Events, ev)
	sp.mu.Unlock()
}

// SetAttr annotates the span.
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: value})
	sp.mu.Unlock()
}

// WallClocked reports whether the span's tracer holds an injected wall
// clock. Call sites use it to gate events whose presence depends on
// scheduling races (a pool hit vs. miss) so deterministic traces never
// record them.
func (sp *Span) WallClocked() bool {
	if sp == nil || sp.tr == nil {
		return false
	}
	return sp.tr.tracer.WallClocked()
}

// Ctx returns the wire context that makes a downstream request continue
// this span's trace. The nil span yields the zero Ctx (untraced).
func (sp *Span) Ctx() Ctx {
	if sp == nil {
		return Ctx{}
	}
	return Ctx{ID: sp.TraceID, Parent: sp.ID, Sampled: true}
}

// FNV-1a, the 64-bit variant, inlined so ID minting allocates nothing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvU64(h, v uint64) uint64 {
	for shift := 56; shift >= 0; shift -= 8 {
		h = (h ^ (v >> uint(shift) & 0xff)) * fnvPrime64
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// spanID derives a span's identity from its position in the trace tree:
// the trace, the parent, the name, and a sibling key. The result is
// interleaving-independent. 0 is reserved for "no span", so a zero hash
// is nudged to 1.
func spanID(traceID, parent uint64, name, key string) uint64 {
	h := uint64(fnvOffset64)
	h = fnvU64(h, traceID)
	h = fnvU64(h, parent)
	h = fnvString(h, name)
	h = (h ^ 0) * fnvPrime64 // separator between name and key
	h = fnvString(h, key)
	if h == 0 {
		return 1
	}
	return h
}
