package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// driveTrace records one representative request trace: a root, two
// keyed children, events, and attrs. order permutes which child is
// opened first so tests can prove interleaving-independence.
func driveTrace(t *Tracer, id uint64, swap bool) {
	tr := t.Start(id)
	root := tr.Root("serve.request", 0, 0)
	root.SetAttr("tenant", "tenant-00")
	open := func(key string) {
		c := root.Child("cluster.shard", key, 0)
		c.Event("retry", 100, Attr{Key: "attempt", Value: "1"})
		c.End(500)
	}
	if swap {
		open("1")
		open("0")
	} else {
		open("0")
		open("1")
	}
	root.Event("coalesced", 0)
	root.End(1000)
}

func exportJSONL(t *testing.T, tr *Tracer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeterministicExport: the same logical schedule produces a
// byte-identical JSONL export regardless of the order siblings were
// opened in — span IDs are content-derived and exports sort.
func TestDeterministicExport(t *testing.T) {
	a := New(Options{SampleEvery: 1})
	b := New(Options{SampleEvery: 1})
	for id := uint64(1); id <= 3; id++ {
		driveTrace(a, id, false)
		driveTrace(b, id, id%2 == 0) // permuted sibling order
	}
	got, want := exportJSONL(t, b), exportJSONL(t, a)
	if !bytes.Equal(got, want) {
		t.Errorf("exports differ under interleaving:\n%s\nvs:\n%s", got, want)
	}
	if len(got) == 0 {
		t.Fatal("empty export")
	}
}

// TestWallFieldsOmittedWithoutClock: with Options.Now nil no wall field
// reaches the export; with a clock they do.
func TestWallFieldsOmittedWithoutClock(t *testing.T) {
	cold := New(Options{SampleEvery: 1})
	driveTrace(cold, 1, false)
	if !bytes.Contains(exportJSONL(t, cold), []byte("sim_start_ns")) {
		t.Error("export lost the simulated timeline")
	}
	if bytes.Contains(exportJSONL(t, cold), []byte("wall_")) {
		t.Error("unclocked tracer leaked wall fields into the export")
	}
	if cold.WallClocked() {
		t.Error("unclocked tracer claims WallClocked")
	}

	var tick int64
	warm := New(Options{SampleEvery: 1, Now: func() int64 { tick += 10; return tick }})
	driveTrace(warm, 1, false)
	if !bytes.Contains(exportJSONL(t, warm), []byte("wall_start_ns")) {
		t.Error("clocked tracer recorded no wall fields")
	}
	if !warm.WallClocked() {
		t.Error("clocked tracer denies WallClocked")
	}
}

// TestSpanIDProperties: IDs never collide across distinct (parent,
// name, key) positions in a modest tree, never mint zero, and are
// stable across runs.
func TestSpanIDProperties(t *testing.T) {
	seen := make(map[uint64]string)
	for _, trID := range []uint64{1, 2, 99} {
		for _, name := range []string{"serve.request", "cluster.shard", "device.run"} {
			for _, key := range []string{"", "0", "1", "hedge:0"} {
				id := spanID(trID, 7, name, key)
				if id == 0 {
					t.Fatalf("zero span ID for %d/%s/%s", trID, name, key)
				}
				pos := name + "/" + key
				if prev, ok := seen[id]; ok && !strings.HasSuffix(prev, pos) {
					t.Errorf("ID collision: %s vs %s", prev, pos)
				}
				seen[id] = pos
				if again := spanID(trID, 7, name, key); again != id {
					t.Errorf("unstable ID for %s", pos)
				}
			}
		}
	}
	// The key is hashed after a separator, so (name="a", key="b")
	// differs from (name="ab", key="").
	if spanID(1, 0, "a", "b") == spanID(1, 0, "ab", "") {
		t.Error("name/key boundary not separated in the hash")
	}
}

// TestSampling: SampleEvery selects the 1st, N+1th, ... admitted
// request; 0 defers entirely to the wire bit.
func TestSampling(t *testing.T) {
	tr := New(Options{SampleEvery: 3})
	var sampled []uint64
	for seq := uint64(1); seq <= 7; seq++ {
		if tr.ShouldSample(seq) {
			sampled = append(sampled, seq)
		}
	}
	if want := []uint64{1, 4, 7}; len(sampled) != len(want) || sampled[0] != 1 || sampled[1] != 4 || sampled[2] != 7 {
		t.Errorf("SampleEvery=3 sampled %v, want %v", sampled, want)
	}
	off := New(Options{})
	for seq := uint64(1); seq <= 100; seq++ {
		if off.ShouldSample(seq) {
			t.Fatalf("SampleEvery=0 sampled seq %d", seq)
		}
	}
}

// TestNilSafety: every method on nil receivers is a no-op, so call
// sites thread spans unconditionally.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.ShouldSample(1) || tr.WallClocked() || tr.Start(1) != nil || tr.Spans() != nil {
		t.Error("nil Tracer did something")
	}
	var trace *Trace
	if trace.Root("x", 0, 0) != nil || trace.Spans() != nil {
		t.Error("nil Trace did something")
	}
	var sp *Span
	sp.End(1)
	sp.Event("e", 0)
	sp.SetAttr("k", "v")
	if sp.Child("c", "", 0) != nil || sp.WallClocked() || sp.Ctx() != (Ctx{}) {
		t.Error("nil Span did something")
	}
}

// TestMaxTracesRing: the tracer retains at most MaxTraces traces,
// dropping the oldest.
func TestMaxTracesRing(t *testing.T) {
	tr := New(Options{SampleEvery: 1, MaxTraces: 3})
	for id := uint64(1); id <= 5; id++ {
		tr.Start(id)
	}
	traces := tr.Traces()
	if len(traces) != 3 {
		t.Fatalf("retained %d traces, want 3", len(traces))
	}
	if traces[0].ID != 3 || traces[2].ID != 5 {
		t.Errorf("ring kept IDs %d..%d, want 3..5", traces[0].ID, traces[2].ID)
	}
}

// TestPerfettoShape: the Perfetto export is valid trace_event JSON with
// process metadata, complete spans, and instant events.
func TestPerfettoShape(t *testing.T) {
	tr := New(Options{SampleEvery: 1})
	driveTrace(tr, 1, false)
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, []Process{{Name: "proc-a", Spans: tr.Spans()}}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.Bytes())
	}
	var meta, complete, instant int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
		case "i":
			instant++
		}
	}
	if meta != 1 || complete != 3 || instant != 3 {
		t.Errorf("event mix M=%d X=%d i=%d, want 1/3/3", meta, complete, instant)
	}
}

// TestWireRoundTrip: spans survive the wire projection with their
// simulated timeline, attrs, and events intact — and wall fields never
// cross.
func TestWireRoundTrip(t *testing.T) {
	var tick int64
	tr := New(Options{SampleEvery: 1, Now: func() int64 { tick++; return tick }})
	driveTrace(tr, 9, false)
	spans := tr.Spans()
	back := FromWire(ToWire(spans))
	if len(back) != len(spans) {
		t.Fatalf("round trip kept %d of %d spans", len(back), len(spans))
	}
	for i, sp := range back {
		want := spans[i]
		if sp.TraceID != want.TraceID || sp.ID != want.ID || sp.Parent != want.Parent ||
			sp.Name != want.Name || sp.SimStartNS != want.SimStartNS || sp.SimEndNS != want.SimEndNS {
			t.Errorf("span %d identity changed over the wire", i)
		}
		if sp.WallStartNS != 0 || sp.WallEndNS != 0 {
			t.Errorf("span %d: wall fields crossed the wire", i)
		}
		if len(sp.Attrs) != len(want.Attrs) || len(sp.Events) != len(want.Events) {
			t.Errorf("span %d lost annotations", i)
		}
	}
	// Rehydrated spans have no backing trace; their methods must still
	// be safe no-ops for End/Event via the nil-trace wall path.
	back[0].End(123)
	back[0].Event("late", 0)
	if back[0].WallClocked() {
		t.Error("rehydrated span claims a wall clock")
	}
}
