package trace

import "conduit/internal/wire"

// ToWire projects spans into their wire form: identity, simulated
// timeline, annotations. Wall-clock fields are dropped on the floor —
// the wire tier's contract is that responses carry only quantities
// both ends agree on deterministically, and a target's wall clock is
// not one of them. The result is sorted by (TraceID, ID).
func ToWire(spans []*Span) []wire.Span {
	if len(spans) == 0 {
		return nil
	}
	sorted := make([]*Span, len(spans))
	copy(sorted, spans)
	SortSpans(sorted)
	out := make([]wire.Span, 0, len(sorted))
	for _, sp := range sorted {
		ws := wire.Span{
			TraceID:    sp.TraceID,
			ID:         sp.ID,
			Parent:     sp.Parent,
			Name:       sp.Name,
			SimStartNS: sp.SimStartNS,
			SimEndNS:   sp.SimEndNS,
			Attrs:      attrsToWire(sp.Attrs),
		}
		if len(sp.Events) > 0 {
			ws.Events = make([]wire.SpanEvent, 0, len(sp.Events))
			for _, ev := range sp.Events {
				ws.Events = append(ws.Events, wire.SpanEvent{
					Name:  ev.Name,
					SimNS: ev.SimNS,
					Attrs: attrsToWire(ev.Attrs),
				})
			}
		}
		out = append(out, ws)
	}
	return out
}

// FromWire rehydrates wire spans for merging into a local export. The
// results carry no backing trace: they can be sorted and exported but
// not extended, and their wall fields stay zero.
func FromWire(spans []wire.Span) []*Span {
	if len(spans) == 0 {
		return nil
	}
	out := make([]*Span, 0, len(spans))
	for _, ws := range spans {
		sp := &Span{
			TraceID:    ws.TraceID,
			ID:         ws.ID,
			Parent:     ws.Parent,
			Name:       ws.Name,
			SimStartNS: ws.SimStartNS,
			SimEndNS:   ws.SimEndNS,
			Attrs:      attrsFromWire(ws.Attrs),
		}
		if len(ws.Events) > 0 {
			sp.Events = make([]Event, 0, len(ws.Events))
			for _, ev := range ws.Events {
				sp.Events = append(sp.Events, Event{
					Name:  ev.Name,
					SimNS: ev.SimNS,
					Attrs: attrsFromWire(ev.Attrs),
				})
			}
		}
		out = append(out, sp)
	}
	return out
}

func attrsToWire(attrs []Attr) []wire.Attr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]wire.Attr, len(attrs))
	for i, a := range attrs {
		out[i] = wire.Attr{Key: a.Key, Value: a.Value}
	}
	return out
}

func attrsFromWire(attrs []wire.Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]Attr, len(attrs))
	for i, a := range attrs {
		out[i] = Attr{Key: a.Key, Value: a.Value}
	}
	return out
}
