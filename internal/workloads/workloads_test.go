package workloads

import (
	"testing"

	"conduit/internal/compiler"
	"conduit/internal/config"
)

func compileAll(t *testing.T, scale int) map[string]*compiler.Compiled {
	t.Helper()
	cfg := config.TestScale()
	out := map[string]*compiler.Compiled{}
	for _, w := range All(scale) {
		c, err := compiler.Compile(w.Source, cfg.SSD.PageSize)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		out[w.Name] = c
	}
	return out
}

func TestAllWorkloadsCompile(t *testing.T) {
	compiled := compileAll(t, 1)
	if len(compiled) != 6 {
		t.Fatalf("want 6 workloads, got %d", len(compiled))
	}
	for name, c := range compiled {
		if len(c.Prog.Insts) == 0 {
			t.Errorf("%s produced an empty program", name)
		}
		if err := c.Prog.Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", name, err)
		}
	}
}

func TestScaleGrowsInstructionStream(t *testing.T) {
	small := compileAll(t, 1)
	big := compileAll(t, 2)
	for name := range small {
		if len(big[name].Prog.Insts) <= len(small[name].Prog.Insts) {
			t.Errorf("%s: scale 2 (%d insts) not larger than scale 1 (%d)",
				name, len(big[name].Prog.Insts), len(small[name].Prog.Insts))
		}
	}
}

// TestTable3Shape checks the qualitative structure of Table 3: relative
// vectorization coverage, reuse ordering, and the dominant op class per
// workload. Absolute numbers are reported by the Table 3 bench.
func TestTable3Shape(t *testing.T) {
	compiled := compileAll(t, 1)
	ch := map[string]Characteristics{}
	for name, c := range compiled {
		ch[name] = Characterize(name, c)
	}

	// Vectorizable coverage: stencils > LLMs > AES > XOR filter.
	if !(ch["heat-3d"].VectorizablePct > 90 && ch["jacobi-1d"].VectorizablePct > 90) {
		t.Errorf("stencils should vectorize >90%%: heat=%v jacobi=%v",
			ch["heat-3d"].VectorizablePct, ch["jacobi-1d"].VectorizablePct)
	}
	if ch["XOR Filter"].VectorizablePct > 30 {
		t.Errorf("XOR filter should barely vectorize, got %v%%", ch["XOR Filter"].VectorizablePct)
	}
	aes := ch["AES"].VectorizablePct
	if aes < 40 || aes > 90 {
		t.Errorf("AES vectorizable%% = %v, want mid-range (Table 3: 65%%)", aes)
	}
	for _, llm := range []string{"LlaMA2 Inference", "LLM Training"} {
		v := ch[llm].VectorizablePct
		if v < 40 || v > 95 {
			t.Errorf("%s vectorizable%% = %v, want Table-3-like mid/high range", llm, v)
		}
	}

	// Op mix: AES is bitwise (low) dominated with no high-latency ops;
	// the stencils and LLMs have no low-latency ops to speak of and a
	// substantial multiply share; training is more add-dominated than
	// inference.
	if ch["AES"].LowPct < 60 {
		t.Errorf("AES low-latency share = %v%%, want dominant", ch["AES"].LowPct)
	}
	if ch["AES"].HighPct > 5 {
		t.Errorf("AES high-latency share = %v%%, want ~0", ch["AES"].HighPct)
	}
	for _, name := range []string{"heat-3d", "jacobi-1d"} {
		if ch[name].HighPct < 20 {
			t.Errorf("%s multiply share = %v%%, want substantial", name, ch[name].HighPct)
		}
		if ch[name].MediumPct < ch[name].HighPct {
			t.Errorf("%s should be add-dominated over mul", name)
		}
	}
	if ch["LlaMA2 Inference"].HighPct <= ch["LLM Training"].HighPct {
		t.Errorf("inference (%v%%) should be more multiply-heavy than training (%v%%)",
			ch["LlaMA2 Inference"].HighPct, ch["LLM Training"].HighPct)
	}

	// Reuse: AES and heat-3d high; XOR filter and LLaMA inference low.
	if ch["AES"].AvgReuse < 2*ch["XOR Filter"].AvgReuse {
		t.Errorf("AES reuse (%v) should far exceed XOR filter (%v)",
			ch["AES"].AvgReuse, ch["XOR Filter"].AvgReuse)
	}
	if ch["heat-3d"].AvgReuse <= ch["LlaMA2 Inference"].AvgReuse {
		t.Errorf("heat-3d reuse (%v) should exceed LLaMA2 inference (%v)",
			ch["heat-3d"].AvgReuse, ch["LlaMA2 Inference"].AvgReuse)
	}
	if ch["LLM Training"].AvgReuse <= ch["LlaMA2 Inference"].AvgReuse {
		t.Errorf("training reuse (%v) should exceed inference (%v)",
			ch["LLM Training"].AvgReuse, ch["LlaMA2 Inference"].AvgReuse)
	}
}

func TestWorkloadSemanticEquivalence(t *testing.T) {
	// Every workload's vectorized program must match its scalar
	// interpretation (spot-checked through the compiler test helpers is
	// not enough: these sources use every language feature).
	cfg := config.TestScale()
	for _, w := range All(1) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			c, err := compiler.Compile(w.Source, cfg.SSD.PageSize)
			if err != nil {
				t.Fatal(err)
			}
			want, err := compiler.Interpret(w.Source, cfg.SSD.PageSize)
			if err != nil {
				t.Fatal(err)
			}
			// Execute the IR functionally.
			mem := map[int][]byte{}
			_ = mem
			got := execIR(t, c, cfg.SSD.PageSize)
			for _, arr := range w.Source.Arrays {
				pages := c.ArrayPages(arr.Name)
				for i, p := range pages {
					var gp []byte
					if b, ok := got[p]; ok {
						gp = b
					} else if b, ok := c.Inputs[p]; ok {
						gp = b
					} else {
						gp = make([]byte, cfg.SSD.PageSize)
					}
					wp := want[arr.Name][i*cfg.SSD.PageSize : (i+1)*cfg.SSD.PageSize]
					for j := range wp {
						if gp[j] != wp[j] {
							t.Fatalf("array %q page %d byte %d: %d != %d",
								arr.Name, i, j, gp[j], wp[j])
						}
					}
				}
			}
		})
	}
}

func TestCharacterizeCountsInstructions(t *testing.T) {
	cfg := config.TestScale()
	w := All(1)[0]
	c, err := compiler.Compile(w.Source, cfg.SSD.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	ch := Characterize(w.Name, c)
	if ch.Instructions != len(c.Prog.Insts) {
		t.Fatal("instruction count mismatch")
	}
	if ch.LowPct+ch.MediumPct+ch.HighPct < 99.9 {
		t.Fatalf("op mix sums to %v", ch.LowPct+ch.MediumPct+ch.HighPct)
	}
}

// TestPartitionMetadata checks the shardability rules: every evaluated
// workload's declared arrays split into a non-empty partitionable set,
// broadcast arrays match the documented structures (key schedules, filter
// banks, transformer weights), and unknown workloads partition everything.
func TestPartitionMetadata(t *testing.T) {
	wantBroadcast := map[string]func(string) bool{
		"AES":              func(a string) bool { return len(a) > 2 && a[:2] == "rk" },
		"XOR Filter":       func(a string) bool { return len(a) > 4 && a[:4] == "bank" },
		"heat-3d":          func(string) bool { return false },
		"jacobi-1d":        func(string) bool { return false },
		"LlaMA2 Inference": func(a string) bool { return a[0] == 'w' && a != "x" },
		"LLM Training":     func(a string) bool { return a[0] == 'w' },
	}
	for _, w := range All(1) {
		part := Partition(w.Name)
		var nPart, nBcast int
		for _, arr := range w.Source.Arrays {
			if part(arr.Name) {
				nPart++
				if wantBroadcast[w.Name](arr.Name) {
					t.Errorf("%s: array %q partitioned, want broadcast", w.Name, arr.Name)
				}
			} else {
				nBcast++
				if !wantBroadcast[w.Name](arr.Name) {
					t.Errorf("%s: array %q broadcast, want partitioned", w.Name, arr.Name)
				}
			}
		}
		if nPart == 0 {
			t.Errorf("%s: no partitionable arrays — the workload cannot shard", w.Name)
		}
	}
	// Unknown workloads partition every array (safe default: exact for
	// page-local kernels).
	if p := Partition("no-such-workload"); !p("anything") {
		t.Error("unknown workload did not default to partition-everything")
	}
	// The predicate matches under Canonical, like Find does.
	if p := Partition("LlaMA2 Inference"); p("wq_0_1") || !p("x") {
		t.Error("display-name lookup did not resolve the transformer rules")
	}
}
