package workloads

import (
	"fmt"
	"strings"

	"conduit/internal/compiler"
	"conduit/internal/isa"
	"conduit/internal/sim"
)

// Named couples a workload with its display name (figure row order).
type Named struct {
	Name   string
	Source *compiler.Source
}

// builders lists the evaluated workloads in the order the paper's figures
// present them, each paired with its source constructor.
var builders = []struct {
	name  string
	build func(scale int) *compiler.Source
}{
	{"AES", AES},
	{"XOR Filter", XORFilter},
	{"heat-3d", Heat3D},
	{"jacobi-1d", Jacobi1D},
	{"LlaMA2 Inference", LlamaInference},
	{"LLM Training", LLMTraining},
}

// All returns the six evaluated workloads at the given scale, in the order
// the paper's figures list them.
func All(scale int) []Named {
	out := make([]Named, 0, len(builders))
	for _, b := range builders {
		out = append(out, Named{b.name, b.build(scale)})
	}
	return out
}

// Canonical normalizes a workload name for command-line lookup: lowercase
// with spaces as dashes ("LlaMA2 Inference" -> "llama2-inference").
func Canonical(s string) string {
	return strings.ReplaceAll(strings.ToLower(s), " ", "-")
}

// Find returns the evaluation workload whose name matches name under
// Canonical, built at the given scale. Only the matching workload's
// source is constructed.
func Find(name string, scale int) (Named, bool) {
	want := Canonical(name)
	for _, b := range builders {
		if Canonical(b.name) == want {
			return Named{b.name, b.build(scale)}, true
		}
	}
	return Named{}, false
}

// broadcastPrefixes records, per canonical workload name, the array-name
// prefixes that are *broadcast* when the workload is sharded across a
// multi-device cluster: replicated whole to every shard instead of sliced
// row-block-wise. The choice mirrors how each application distributes in
// practice — AES replicates the key schedule, the XOR filter replicates
// its probe banks (a shared lookup structure), and the transformer
// workloads replicate weights while sharding activations (classic data
// parallelism). Every array not matching a prefix partitions. The
// stencils have no broadcast state at all: both grids slice cleanly.
var broadcastPrefixes = map[string][]string{
	"aes":              {"rk"},
	"xor-filter":       {"bank"},
	"heat-3d":          nil,
	"jacobi-1d":        nil,
	"llama2-inference": {"wq_", "wk_", "wv_", "wo_", "wff_"},
	"llm-training":     {"wq_", "wk_", "wv_", "wo_", "wff_"},
}

// Partition returns the cluster-sharding predicate for the named workload
// (matched under Canonical): it reports whether a given array is
// partitionable — sliced row-block-wise across shards — as opposed to
// broadcast, replicated whole to every shard. Unknown workloads default
// to partitioning every array, which is exact for any kernel whose array
// references stay page-local (the compiler lowers Ref offsets to in-page
// rotations, so block-aligned slices compute the same bytes per page).
func Partition(name string) func(array string) bool {
	prefixes := broadcastPrefixes[Canonical(name)]
	return func(array string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(array, p) {
				return false
			}
		}
		return true
	}
}

// lanes is the INT8 vector width of one 16 KiB page.
const lanes = 16 << 10

func clampScale(scale int) int {
	if scale < 1 {
		return 1
	}
	return scale
}

func randBytes(seed uint64, n int) []byte {
	r := sim.NewRNG(seed)
	b := make([]byte, n)
	r.Bytes(b)
	return b
}

// AES builds an AES-256-structured encryption kernel: 14 rounds of
// AddRoundKey (XOR), a bitsliced affine S-box approximation (AND/XOR/NOT/
// shift network — the lowering in-flash AES implementations use), and a
// MixColumns-style diffusion layer (xtime via shift+conditional XOR). The
// key schedule and block chaining run as a non-vectorized control loop,
// which keeps vectorization coverage near Table 3's 65%.
//
// State pages are reused every round, giving the high data reuse (≈15)
// that makes AES latch-friendly in flash.
func AES(scale int) *compiler.Source {
	scale = clampScale(scale)
	n := scale * 4 * lanes // plaintext lanes; footprint exceeds SSD DRAM (§5.4)
	const rounds = 14
	arrays := []*compiler.Array{
		{Name: "state", Elem: 1, Len: n, Input: true, Data: randBytes(0xAE5, n)},
		{Name: "tmp", Elem: 1, Len: n},
	}
	for r := 0; r <= rounds; r++ {
		arrays = append(arrays, &compiler.Array{
			Name: keyName(r), Elem: 1, Len: n, Input: true,
			Data: randBytes(0x6E7+uint64(r), n),
		})
	}
	var stmts []compiler.Stmt
	state := func() compiler.Ref { return compiler.Ref{Name: "state"} }
	// Initial whitening.
	stmts = append(stmts, compiler.Loop{Name: "whiten", N: n, Body: []compiler.Assign{
		{Target: "state", Value: compiler.Bin{Op: compiler.OpXor, X: state(), Y: compiler.Ref{Name: keyName(0)}}},
	}})
	for r := 1; r <= rounds; r++ {
		// Bitsliced affine S-box approximation: x ^= (x<<1 & 0xAA) ^ ~(x>>1).
		stmts = append(stmts, compiler.Loop{Name: fmt.Sprintf("sbox%d", r), N: n, Body: []compiler.Assign{
			{Target: "tmp", Value: compiler.Bin{Op: compiler.OpAnd,
				X: compiler.Bin{Op: compiler.OpShl, X: state(), Y: compiler.Lit{Value: 1}},
				Y: compiler.Lit{Value: 0xAA}}},
			{Target: "state", Value: compiler.Bin{Op: compiler.OpXor,
				X: compiler.Bin{Op: compiler.OpXor, X: state(), Y: compiler.Ref{Name: "tmp"}},
				Y: compiler.Un{Op: compiler.OpNot, X: compiler.Bin{Op: compiler.OpShr, X: state(), Y: compiler.Lit{Value: 1}}}}},
		}})
		if r < rounds {
			// MixColumns-style diffusion: xtime(x) = (x<<1) ^ (0x1B when
			// the high bit was set), merged with the round key.
			stmts = append(stmts, compiler.Loop{Name: fmt.Sprintf("mix%d", r), N: n, Body: []compiler.Assign{
				{Target: "tmp", Value: compiler.Cond{
					Mask: compiler.Bin{Op: compiler.OpAnd, X: state(), Y: compiler.Lit{Value: 0x80}},
					A:    compiler.Bin{Op: compiler.OpXor, X: compiler.Bin{Op: compiler.OpShl, X: state(), Y: compiler.Lit{Value: 1}}, Y: compiler.Lit{Value: 0x1B}},
					B:    compiler.Bin{Op: compiler.OpShl, X: state(), Y: compiler.Lit{Value: 1}},
				}},
				{Target: "state", Value: compiler.Bin{Op: compiler.OpXor,
					X: compiler.Bin{Op: compiler.OpXor, X: state(), Y: compiler.Ref{Name: "tmp"}},
					Y: compiler.Ref{Name: keyName(r)}}},
			}})
		} else {
			stmts = append(stmts, compiler.Loop{Name: "final", N: n, Body: []compiler.Assign{
				{Target: "state", Value: compiler.Bin{Op: compiler.OpXor, X: state(), Y: compiler.Ref{Name: keyName(r)}}},
			}})
		}
	}
	// Key schedule and block chaining: inherently sequential (each word
	// depends on the previous), so these loops never vectorize. They run
	// over the key material (a small fraction of the data), but as code
	// they are a third of the kernel — which is how Table 3's AES sits at
	// 65% vectorizable while the non-vectorized work stays modest.
	keyLanes := n / 16
	for r := 0; r < rounds; r++ {
		k := keyName(r)
		stmts = append(stmts, compiler.Loop{
			Name: fmt.Sprintf("keymix%d", r), N: keyLanes, ForceScalar: true,
			Body: []compiler.Assign{
				{Target: "tmp", Value: compiler.Bin{Op: compiler.OpAdd,
					X: compiler.Bin{Op: compiler.OpAdd, X: compiler.Ref{Name: k, Offset: -1}, Y: compiler.Ref{Name: k}},
					Y: compiler.Lit{Value: uint64(r + 1)}}},
				{Target: "tmp", Value: compiler.Bin{Op: compiler.OpAdd,
					X: compiler.Ref{Name: "tmp"}, Y: compiler.Ref{Name: keyName(r + 1)}}},
			}})
	}
	stmts = append(stmts, compiler.ScalarWork{Name: "block-chaining", Cycles: int64(n) / 8})
	return &compiler.Source{Name: "aes", Arrays: arrays, Stmts: stmts}
}

func keyName(r int) string { return fmt.Sprintf("rk%d", r) }

// XORFilter builds an XOR-filter membership structure and queries it:
// three multiplicative hashes locate filter slots whose XOR must equal the
// key fingerprint. The slot gathers are data-dependent random accesses, so
// the bulk of the work is a non-vectorizable probe loop (Table 3:
// 16% vectorizable, almost entirely medium-latency operations).
func XORFilter(scale int) *compiler.Source {
	scale = clampScale(scale)
	n := scale * 6 * lanes // streamed keys+banks exceed SSD DRAM (§5.4)
	arrays := []*compiler.Array{
		{Name: "keys", Elem: 1, Len: n, Input: true, Data: randBytes(0xF117E2, n)},
		{Name: "fp", Elem: 1, Len: n},
		{Name: "member", Elem: 1, Len: n},
	}
	// Three filter banks, each probed at a hashed location.
	for b := 0; b < 3; b++ {
		arrays = append(arrays, &compiler.Array{
			Name: fmt.Sprintf("bank%d", b), Elem: 1, Len: n, Input: true,
			Data: randBytes(0xBA7C+uint64(b), n),
		})
	}
	stmts := []compiler.Stmt{
		// Fingerprint: one multiplicative hash (the only vector-friendly
		// phase — Table 3: 16% vectorizable).
		compiler.Loop{Name: "fingerprint", N: n, Body: []compiler.Assign{
			{Target: "fp", Value: compiler.Bin{Op: compiler.OpXor,
				X: compiler.Bin{Op: compiler.OpMul, X: compiler.Ref{Name: "keys"}, Y: compiler.Lit{Value: 0x9D}},
				Y: compiler.Bin{Op: compiler.OpShr, X: compiler.Ref{Name: "keys"}, Y: compiler.Lit{Value: 3}}}},
		}},
	}
	// Probe loops: gather-style slot accesses defeat vectorization; they
	// lower lane-serially, and their adds and equality tests are Table 3's
	// 98% medium-latency operations. Each bank is streamed twice — the
	// low (≈2) data reuse of the workload.
	for probe := 0; probe < 3; probe++ {
		bank := fmt.Sprintf("bank%d", probe)
		stmts = append(stmts, compiler.Loop{
			Name: fmt.Sprintf("probe%d", probe), N: n / 8, ForceScalar: true,
			Body: []compiler.Assign{
				{Target: "member", Value: compiler.Bin{Op: compiler.OpAdd,
					X: compiler.Ref{Name: "member"},
					Y: compiler.Bin{Op: compiler.OpEQ,
						X: compiler.Bin{Op: compiler.OpAdd,
							X: compiler.Ref{Name: bank, Offset: probe*61 + 1},
							Y: compiler.Bin{Op: compiler.OpAdd, X: compiler.Ref{Name: bank}, Y: compiler.Lit{Value: uint64(probe*37 + 1)}}},
						Y: compiler.Ref{Name: "fp"}}}},
			}})
	}
	stmts = append(stmts, compiler.ScalarWork{Name: "bucket-bookkeeping", Cycles: int64(n) / 8})
	return &compiler.Source{Name: "xor-filter", Arrays: arrays, Stmts: stmts}
}

// Heat3D is the polybench heat-3d stencil: each point mixes its six
// neighbors and itself with coefficient multiplies across time steps,
// INT8-quantized. Nearly everything vectorizes (Table 3: 95%); the op mix
// combines medium-latency adds/shuffles with high-latency multiplies, and
// grid pages are reused across time steps (reuse ≈ steps).
func Heat3D(scale int) *compiler.Source {
	scale = clampScale(scale)
	nx := 64 // lane stride between z-planes: kept inside one vector block
	n := scale * 2 * lanes
	steps := 8
	arrays := []*compiler.Array{
		{Name: "A", Elem: 1, Len: n, Input: true, Data: randBytes(0x3EA7, n)},
		{Name: "B", Elem: 1, Len: n},
	}
	var stmts []compiler.Stmt
	mix := func(src string, dst string, step int) compiler.Stmt {
		s := func(off int) compiler.Expr { return compiler.Ref{Name: src, Offset: off} }
		return compiler.Loop{Name: fmt.Sprintf("step%d", step), N: n, Body: []compiler.Assign{
			{Target: dst, Value: compiler.Bin{Op: compiler.OpAdd,
				X: compiler.Bin{Op: compiler.OpMul, X: s(0), Y: compiler.Lit{Value: 3}},
				Y: compiler.Bin{Op: compiler.OpAdd,
					X: compiler.Bin{Op: compiler.OpMul,
						X: compiler.Bin{Op: compiler.OpAdd, X: s(-1), Y: s(1)},
						Y: compiler.Lit{Value: 5}},
					Y: compiler.Bin{Op: compiler.OpMul,
						X: compiler.Bin{Op: compiler.OpAdd,
							X: compiler.Bin{Op: compiler.OpAdd, X: s(-nx), Y: s(nx)},
							Y: compiler.Bin{Op: compiler.OpAdd, X: s(-nx * nx), Y: s(nx * nx)}},
						Y: compiler.Lit{Value: 7}}}}},
		}}
	}
	for t := 0; t < steps; t++ {
		if t%2 == 0 {
			stmts = append(stmts, mix("A", "B", t))
		} else {
			stmts = append(stmts, mix("B", "A", t))
		}
	}
	stmts = append(stmts, compiler.ScalarWork{Name: "boundary-conditions", Cycles: int64(n) / 64})
	return &compiler.Source{Name: "heat-3d", Arrays: arrays, Stmts: stmts}
}

// Jacobi1D is the polybench jacobi-1d solver: a three-point stencil with a
// relaxation multiply, ping-ponging between two vectors (Table 3: 95%
// vectorizable, reuse ≈ 3, one third high-latency multiplies).
func Jacobi1D(scale int) *compiler.Source {
	scale = clampScale(scale)
	n := scale * 2 * lanes
	steps := 3
	arrays := []*compiler.Array{
		{Name: "A", Elem: 1, Len: n, Input: true, Data: randBytes(0x1ACB1, n)},
		{Name: "B", Elem: 1, Len: n},
	}
	var stmts []compiler.Stmt
	relax := func(src, dst string, step int) compiler.Stmt {
		s := func(off int) compiler.Expr { return compiler.Ref{Name: src, Offset: off} }
		return compiler.Loop{Name: fmt.Sprintf("sweep%d", step), N: n, Body: []compiler.Assign{
			{Target: dst, Value: compiler.Bin{Op: compiler.OpMul,
				X: compiler.Bin{Op: compiler.OpAdd,
					X: compiler.Bin{Op: compiler.OpAdd, X: s(-1), Y: s(0)},
					Y: s(1)},
				Y: compiler.Lit{Value: 85}}}, // ~1/3 in Q8 fixed point
		}}
	}
	for t := 0; t < steps; t++ {
		if t%2 == 0 {
			stmts = append(stmts, relax("A", "B", t))
		} else {
			stmts = append(stmts, relax("B", "A", t))
		}
	}
	stmts = append(stmts, compiler.ScalarWork{Name: "convergence-check", Cycles: int64(n) / 64})
	return &compiler.Source{Name: "jacobi-1d", Arrays: arrays, Stmts: stmts}
}

// llmConfig shapes the transformer kernels.
type llmConfig struct {
	layers  int
	dModel  int // lanes per activation page set
	weights int // weight pages streamed per projection
}

// LlamaInference is INT8 decode of a LLaMA2-style transformer: per layer,
// RMSNorm-approximation, Q/K/V projections (multiply-accumulate sweeps
// over streamed weight pages), attention scores with shuffles and a
// softmax approximation (max/sub/shift), and the FFN. Sampling and KV
// bookkeeping run as control regions. Weights are touched once per token
// (reuse ≈ 2, Table 3), and roughly half the operations are high-latency
// multiplies.
func LlamaInference(scale int) *compiler.Source {
	scale = clampScale(scale)
	cfg := llmConfig{layers: 2 * scale, dModel: 4 * lanes, weights: 3}
	return buildTransformer("llama2-inference", cfg, false)
}

// LLMTraining is the INT8 training counterpart: the forward pass plus
// backpropagated gradient accumulation and optimizer updates. The
// update-heavy phases push the op mix toward medium-latency adds and raise
// weight reuse (forward, backward, and update all touch each weight page).
func LLMTraining(scale int) *compiler.Source {
	scale = clampScale(scale)
	cfg := llmConfig{layers: 2 * scale, dModel: 4 * lanes, weights: 2}
	return buildTransformer("llm-training", cfg, true)
}

func buildTransformer(name string, cfg llmConfig, training bool) *compiler.Source {
	n := cfg.dModel
	arrays := []*compiler.Array{
		{Name: "x", Elem: 1, Len: n, Input: true, Data: randBytes(0x11A, n)},
		{Name: "norm", Elem: 1, Len: n},
		{Name: "q", Elem: 1, Len: n},
		{Name: "k", Elem: 1, Len: n},
		{Name: "v", Elem: 1, Len: n},
		{Name: "score", Elem: 1, Len: n},
		{Name: "smax", Elem: 1, Len: n},
		{Name: "attn", Elem: 1, Len: n},
		{Name: "ffn", Elem: 1, Len: n},
	}
	if training {
		arrays = append(arrays,
			&compiler.Array{Name: "grad", Elem: 1, Len: n},
			&compiler.Array{Name: "m", Elem: 1, Len: n},
		)
	}
	for l := 0; l < cfg.layers; l++ {
		for w := 0; w < cfg.weights; w++ {
			for _, proj := range []string{"wq", "wk", "wv", "wo", "wff"} {
				arrays = append(arrays, &compiler.Array{
					Name: wName(proj, l, w),
					Elem: 1, Len: n, Input: true,
					Data: randBytes(uint64(l*131+w*17)+hashName(proj), n),
				})
			}
		}
	}

	var stmts []compiler.Stmt
	xr := compiler.Ref{Name: "x"}
	for l := 0; l < cfg.layers; l++ {
		// RMSNorm approximation: norm = (x + (x>>2)) (scale folding).
		stmts = append(stmts, compiler.Loop{Name: lName("rmsnorm", l), N: n, Body: []compiler.Assign{
			{Target: "norm", Value: compiler.Bin{Op: compiler.OpAdd, X: xr,
				Y: compiler.Bin{Op: compiler.OpShr, X: xr, Y: compiler.Lit{Value: 2}}}},
		}})
		// Q/K/V projections: multiply-accumulate over streamed weights.
		for _, proj := range []struct{ dst, w string }{{"q", "wq"}, {"k", "wk"}, {"v", "wv"}} {
			for w := 0; w < cfg.weights; w++ {
				acc := compiler.Expr(compiler.Bin{Op: compiler.OpMul,
					X: compiler.Ref{Name: "norm"}, Y: compiler.Ref{Name: wName(proj.w, l, w)}})
				if w > 0 {
					acc = compiler.Bin{Op: compiler.OpAdd, X: compiler.Ref{Name: proj.dst}, Y: acc}
				}
				stmts = append(stmts, compiler.Loop{Name: lName(proj.dst, l*10+w), N: n, Body: []compiler.Assign{
					{Target: proj.dst, Value: acc},
				}})
			}
		}
		// Attention scores: q x shifted k (head interleave via shuffle),
		// then a softmax approximation (max-subtract, shift as exp2).
		stmts = append(stmts, compiler.Loop{Name: lName("scores", l), N: n, Body: []compiler.Assign{
			{Target: "score", Value: compiler.Bin{Op: compiler.OpMul,
				X: compiler.Ref{Name: "q"},
				Y: compiler.Ref{Name: "k", Offset: 64}}},
		}})
		stmts = append(stmts, compiler.Loop{Name: lName("rowmax", l), N: n, Body: []compiler.Assign{
			{Target: "smax", Value: compiler.Bin{Op: compiler.OpMax,
				X: compiler.Ref{Name: "score"}, Y: compiler.Ref{Name: "score", Offset: 128}}},
		}})
		stmts = append(stmts, compiler.Loop{Name: lName("softmax", l), N: n, Body: []compiler.Assign{
			{Target: "score", Value: compiler.Bin{Op: compiler.OpSub,
				X: compiler.Ref{Name: "score"}, Y: compiler.Ref{Name: "smax"}}},
			{Target: "attn", Value: compiler.Bin{Op: compiler.OpMul,
				X: compiler.Bin{Op: compiler.OpShr, X: compiler.Ref{Name: "score"}, Y: compiler.Lit{Value: 4}},
				Y: compiler.Ref{Name: "v"}}},
		}})
		// Output projection + FFN.
		for w := 0; w < cfg.weights; w++ {
			stmts = append(stmts, compiler.Loop{Name: lName("ffn", l*10+w), N: n, Body: []compiler.Assign{
				{Target: "ffn", Value: compiler.Bin{Op: compiler.OpAdd,
					X: compiler.Bin{Op: compiler.OpMul, X: compiler.Ref{Name: "attn"}, Y: compiler.Ref{Name: wName("wo", l, w)}},
					Y: compiler.Bin{Op: compiler.OpMul, X: compiler.Ref{Name: "ffn"}, Y: compiler.Ref{Name: wName("wff", l, w)}}}},
			}})
		}
		// Residual.
		stmts = append(stmts, compiler.Loop{Name: lName("residual", l), N: n, Body: []compiler.Assign{
			{Target: "x", Value: compiler.Bin{Op: compiler.OpAdd, X: xr, Y: compiler.Ref{Name: "ffn"}}},
		}})
		if training {
			// Backward: gradient accumulation and optimizer update —
			// addition-dominated (Table 3: 88% medium).
			stmts = append(stmts, compiler.Loop{Name: lName("backward", l), N: n, Body: []compiler.Assign{
				{Target: "grad", Value: compiler.Bin{Op: compiler.OpAdd,
					X: compiler.Ref{Name: "grad"},
					Y: compiler.Bin{Op: compiler.OpAdd, X: compiler.Ref{Name: "ffn"}, Y: compiler.Ref{Name: "attn"}}}},
				{Target: "m", Value: compiler.Bin{Op: compiler.OpAdd,
					X: compiler.Ref{Name: "m"},
					Y: compiler.Bin{Op: compiler.OpShr, X: compiler.Ref{Name: "grad"}, Y: compiler.Lit{Value: 3}}}},
			}})
			for w := 0; w < cfg.weights; w++ {
				stmts = append(stmts, compiler.Loop{Name: lName("update", l*10+w), N: n, Body: []compiler.Assign{
					{Target: wName("wq", l, w), Value: compiler.Bin{Op: compiler.OpSub,
						X: compiler.Ref{Name: wName("wq", l, w)},
						Y: compiler.Bin{Op: compiler.OpShr, X: compiler.Ref{Name: "m"}, Y: compiler.Lit{Value: 5}}}},
					{Target: wName("wff", l, w), Value: compiler.Bin{Op: compiler.OpSub,
						X: compiler.Ref{Name: wName("wff", l, w)},
						Y: compiler.Bin{Op: compiler.OpShr, X: compiler.Ref{Name: "m"}, Y: compiler.Lit{Value: 5}}}},
				}})
			}
		}
		// KV-cache management / sampling control: little runtime, but a
		// substantial share of the code (Table 3: 70%/60% vectorizable).
		ctrl := int64(n) / 4
		units := int64(24)
		if training {
			ctrl = int64(n) / 2 // data loading + loss bookkeeping
			units = 48
		}
		stmts = append(stmts, compiler.ScalarWork{Name: lName("control", l), Cycles: ctrl, CodeUnits: units})
	}
	return &compiler.Source{Name: name, Arrays: arrays, Stmts: stmts}
}

func wName(kind string, layer, w int) string { return fmt.Sprintf("%s_%d_%d", kind, layer, w) }
func lName(kind string, i int) string        { return fmt.Sprintf("%s%d", kind, i) }

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Characteristics summarizes a compiled workload the way Table 3 does.
type Characteristics struct {
	Name            string
	VectorizablePct float64
	AvgReuse        float64
	LowPct          float64 // bitwise/logical operations
	MediumPct       float64 // adds, predication, shuffles
	HighPct         float64 // multiplication and longer
	Instructions    int
}

// Characterize computes Table 3's workload characteristics from a
// compiled program: vectorization coverage from the compiler report,
// average data reuse (reads of each page version before it is overwritten),
// and the latency-band mix of the data-processing instructions.
func Characterize(name string, c *compiler.Compiled) Characteristics {
	ch := Characteristics{
		Name:            name,
		VectorizablePct: c.Report.VectorizablePercent(),
		Instructions:    len(c.Prog.Insts),
	}
	// Reuse: operations consuming each page before it is replaced —
	// approximated as total source reads over distinct pages read
	// (temporaries excluded: they are register-like, not data).
	pageReads := make(map[isa.PageID]int64)
	var bands [3]int64
	for i := range c.Prog.Insts {
		in := &c.Prog.Insts[i]
		if in.Op == isa.OpScalar {
			continue
		}
		for _, s := range in.Srcs {
			pageReads[s]++
		}
		switch in.Op {
		case isa.OpCopy, isa.OpBroadcast:
			// Data movement, not computation: excluded from the op mix.
		default:
			bands[in.Op.Band()]++
		}
	}
	// Restrict to declared-array pages (drop the temp pool).
	var totalReads, distinct int64
	for _, arr := range c.ArrayNames() {
		for _, p := range c.ArrayPages(arr) {
			if r, ok := pageReads[p]; ok && r > 0 {
				totalReads += r
				distinct++
			}
		}
	}
	if distinct > 0 {
		ch.AvgReuse = float64(totalReads) / float64(distinct)
	}
	total := bands[0] + bands[1] + bands[2]
	if total > 0 {
		ch.LowPct = 100 * float64(bands[0]) / float64(total)
		ch.MediumPct = 100 * float64(bands[1]) / float64(total)
		ch.HighPct = 100 * float64(bands[2]) / float64(total)
	}
	return ch
}
