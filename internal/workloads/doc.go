// Package workloads builds the six data-intensive applications the paper
// evaluates (§5.4, Table 3) as compiler sources: AES encryption, an XOR
// membership filter, the heat-3d and jacobi-1d polybench stencils, and
// INT8 LLaMA2-style inference and training. Each builder is parameterized
// by a scale factor so unit tests stay fast while benchmarks approach the
// paper's instruction-stream sizes (Fig. 10 analyzes a 12,000-instruction
// window of LLaMA2 inference).
//
// All workloads are INT8-quantized (§5.4: floating point is quantized to
// INT8 so the SSD computation resources can execute everything), and are
// sized so Characterize reproduces the qualitative structure of Table 3:
// AES is bitwise-dominated with high reuse; the XOR filter is barely
// vectorizable; the stencils vectorize almost fully with medium/high
// arithmetic; the LLM workloads mix multiplication-heavy attention with
// control regions.
//
// Each workload also carries shardability metadata (Partition) for the
// cluster layer: which arrays slice row-block-wise across a multi-device
// deployment and which are broadcast — replicated whole to every shard —
// the way the real application distributes (AES key schedules, XOR-filter
// probe banks, and transformer weights broadcast; data arrays partition).
package workloads
