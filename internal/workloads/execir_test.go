package workloads

import (
	"testing"

	"conduit/internal/compiler"
	"conduit/internal/cores"
	"conduit/internal/isa"
)

// execIR runs a compiled program with the shared functional kernel.
func execIR(t *testing.T, c *compiler.Compiled, pageSize int) map[isa.PageID][]byte {
	t.Helper()
	mem := make(map[isa.PageID][]byte)
	load := func(p isa.PageID) []byte {
		if b, ok := mem[p]; ok {
			return b
		}
		if b, ok := c.Inputs[p]; ok {
			cp := append([]byte(nil), b...)
			mem[p] = cp
			return cp
		}
		b := make([]byte, pageSize)
		mem[p] = b
		return b
	}
	for i := range c.Prog.Insts {
		in := &c.Prog.Insts[i]
		if in.Op == isa.OpScalar {
			continue
		}
		srcs := make([][]byte, 0, len(in.Srcs))
		for _, s := range in.Srcs {
			srcs = append(srcs, load(s))
		}
		out := make([]byte, pageSize)
		if err := cores.Apply(in.Op, out, srcs, in.Elem, in.UseImm, in.Imm); err != nil {
			t.Fatalf("inst %d (%v): %v", i, in.Op, err)
		}
		mem[in.Dst] = out
	}
	return mem
}
