// Package nondeterm implements the conduitlint analyzer that forbids
// nondeterministic inputs inside the deterministic simulator packages.
package nondeterm

import (
	"go/ast"
	"go/types"

	"conduit/internal/lint/analysis"
)

// Analyzer flags wall-clock reads, global math/rand state, and
// GOMAXPROCS-dependent constructs.
var Analyzer = &analysis.Analyzer{
	Name: "nondeterm",
	Doc: `forbid nondeterministic inputs in deterministic simulator code

The simulator's headline contract is that a run is a pure function of
(workload, policy, configuration, seed): concurrent and serial sweeps
are byte-identical, cluster shard merges are exact, and every committed
figure is reproducible. That contract cannot survive code that reads
the wall clock (time.Now/Since/Sleep/...), draws from the process-global
math/rand generator (shared, lockstep-unseeded state), or branches on
machine shape (runtime.GOMAXPROCS/NumCPU). This analyzer flags every
such call. Simulated time must come from sim.Time; randomness from an
explicitly seeded rand.New(rand.NewSource(seed)) or loadgen.Stream;
worker counts from configuration.

The serving layer measures real latency and paces real arrivals, so
wall-clock use there is the product, not a bug: those packages are
exempted by the committed allowlist (internal/lint/allow), never by
inline pragmas. Test files are skipped: tests assert determinism from
outside and may time out, sleep, or seed as they please.`,
	Run: run,
}

// bannedFuncs maps package path -> function name -> why it breaks
// determinism.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":       "reads the wall clock",
		"Since":     "reads the wall clock",
		"Until":     "reads the wall clock",
		"Sleep":     "couples execution to the wall clock",
		"After":     "couples execution to the wall clock",
		"AfterFunc": "couples execution to the wall clock",
		"Tick":      "couples execution to the wall clock",
		"NewTimer":  "couples execution to the wall clock",
		"NewTicker": "couples execution to the wall clock",
	},
	"runtime": {
		"GOMAXPROCS":   "makes behavior depend on machine shape",
		"NumCPU":       "makes behavior depend on machine shape",
		"NumGoroutine": "makes behavior depend on scheduler state",
	},
}

// globalRandConstructors are the only math/rand package-level functions
// that do NOT touch the global generator.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (e.g. (*rand.Rand).Intn on a seeded local) are
			// always fine; only package-level functions are global state.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			pkg := fn.Pkg().Path()
			switch pkg {
			case "math/rand", "math/rand/v2":
				if !globalRandConstructors[fn.Name()] {
					pass.Reportf(call.Pos(),
						"%s.%s draws from the process-global generator; deterministic packages must use an explicitly seeded rand.New(rand.NewSource(seed))", fn.Pkg().Name(), fn.Name())
				}
			default:
				if why, ok := bannedFuncs[pkg][fn.Name()]; ok {
					pass.Reportf(call.Pos(),
						"%s.%s %s; deterministic packages must derive time from sim.Time and concurrency from configuration", fn.Pkg().Name(), fn.Name(), why)
				}
			}
			return true
		})
	}
	return nil
}
