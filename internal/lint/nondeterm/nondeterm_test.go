package nondeterm_test

import (
	"testing"

	"conduit/internal/lint/analysistest"
	"conduit/internal/lint/nondeterm"
)

func TestNondeterm(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterm.Analyzer, "a")
}
