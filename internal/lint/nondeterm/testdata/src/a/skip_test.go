// Test files are exempt: tests assert determinism from the outside and
// may freely time and sleep. Nothing here may be reported.
package a

import "time"

func testClock() time.Time {
	return time.Now()
}
