// Package a is nondeterm golden-test input: wall-clock, global-rand,
// and machine-shape reads must be flagged; seeded and method-based
// randomness must not.
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
	"runtime"
	"time"
)

func clock() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

func pause() {
	time.Sleep(time.Millisecond) // want `time.Sleep couples execution to the wall clock`
}

func globalRand() int {
	return rand.Intn(10) // want `rand.Intn draws from the process-global generator`
}

func globalRandV2() int {
	return randv2.IntN(10) // want `rand.IntN draws from the process-global generator`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the process-global generator`
}

func seededOK() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

func shape() int {
	return runtime.GOMAXPROCS(0) // want `runtime.GOMAXPROCS makes behavior depend on machine shape`
}

func cpus() int {
	return runtime.NumCPU() // want `runtime.NumCPU makes behavior depend on machine shape`
}

func fineRuntime() {
	runtime.GC()
}
