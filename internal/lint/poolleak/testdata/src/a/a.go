// Package a is poolleak golden-test input: function-local pools that can
// reach a return without Close must be flagged; defers, all-path closes,
// deployment-level closes, and ownership transfers must not.
package a

import "conduit"

func use(p *conduit.DevicePool) {}

func work() {}

func newPool() *conduit.DevicePool { return &conduit.DevicePool{} }

func leak(dep *conduit.Deployment) {
	p := dep.Prefork(4) // want `pool acquired here may reach a return without Close`
	_ = p
}

func onePathLeaks(dep *conduit.Deployment, fast bool) {
	p := dep.Prefork(2) // want `pool acquired here may reach a return without Close`
	if fast {
		return
	}
	p.Close()
}

func bareLeak(sys *conduit.System) {
	dep := sys.Deploy("app")
	dep.Prefork(4) // want `pool acquired here may reach a return without Close`
	work()
}

func discardLeak() {
	_ = newPool() // want `result of newPool discarded and never reachable for Close`
}

func sliceLeak(cl *conduit.Cluster) {
	pools := cl.Prefork(4) // want `pool acquired here may reach a return without Close`
	_ = pools
}

func deferOK(dep *conduit.Deployment) {
	p := dep.Prefork(4)
	defer p.Close()
	use(p)
}

func bothPathsOK(dep *conduit.Deployment, fast bool) int {
	p := dep.Prefork(2)
	if fast {
		p.Close()
		return 0
	}
	n := p.Depth()
	p.Close()
	return n
}

func panicPathOK(dep *conduit.Deployment, ok bool) {
	p := dep.Prefork(2)
	if !ok {
		panic("deploy failed")
	}
	p.Close()
}

// depCloseOK discharges through the deployment: Deployment.Close tears
// down the attached pool, the facade's canonical shutdown.
func depCloseOK(sys *conduit.System) {
	dep := sys.Deploy("app")
	p := dep.Prefork(4)
	_ = p
	dep.Close()
}

// bareOK: a bare Prefork on a deployment this function created is fine
// as long as the deployment itself is closed.
func bareOK(sys *conduit.System) {
	dep := sys.Deploy("app")
	dep.Prefork(4)
	dep.Close()
}

// escapeReturnOK hands the pool to the caller, who now owns the Close.
func escapeReturnOK(dep *conduit.Deployment) *conduit.DevicePool {
	p := dep.Prefork(4)
	return p
}

// callerOwnedOK: the deployment is a parameter — its owner still reaches
// the pool through it and carries the Close obligation.
func callerOwnedOK(dep *conduit.Deployment) {
	dep.Prefork(4)
}

// captureOK: the pool's Close moves into a returned shutdown closure.
func captureOK(dep *conduit.Deployment) func() {
	p := dep.Prefork(2)
	return func() { p.Close() }
}

// transferOK passes the pool to another function, which takes ownership.
func transferOK(dep *conduit.Deployment) {
	p := dep.Prefork(2)
	use(p)
}
