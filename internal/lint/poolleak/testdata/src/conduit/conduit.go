// Package conduit is a golden-test stub of the real facade: just the
// Deploy/Prefork/Close lifecycle poolleak tracks, with none of the
// simulator behind it.
package conduit

type System struct{}

func NewSystem() *System { return &System{} }

func (s *System) Deploy(name string) *Deployment { return &Deployment{} }

type Deployment struct {
	pool *DevicePool
}

func (d *Deployment) Prefork(depth int) *DevicePool {
	d.pool = &DevicePool{depth: depth}
	return d.pool
}

func (d *Deployment) Close() {
	if d.pool != nil {
		d.pool.Close()
	}
}

type DevicePool struct {
	depth int
}

func (p *DevicePool) Depth() int { return p.depth }

func (p *DevicePool) Close() {}

type Cluster struct{}

func (c *Cluster) Prefork(depth int) []*DevicePool {
	return []*DevicePool{{depth: depth}}
}

func (c *Cluster) Close() {}
