package poolleak_test

import (
	"testing"

	"conduit/internal/lint/analysistest"
	"conduit/internal/lint/poolleak"
)

func TestPoolleak(t *testing.T) {
	analysistest.Run(t, "testdata", poolleak.Analyzer, "a")
}
