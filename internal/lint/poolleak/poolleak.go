// Package poolleak implements the conduitlint analyzer that checks
// DevicePool lifecycles: every pool a function owns must reach Close on
// all non-panic paths.
package poolleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"conduit/internal/lint/analysis"
	"conduit/internal/lint/cfg"
)

// Analyzer checks that owned DevicePools are closed on every path.
var Analyzer = &analysis.Analyzer{
	Name: "poolleak",
	Doc: `require Close on every non-panic path for owned DevicePools

Deployment.Prefork attaches a DevicePool: a background refiller
goroutine plus a buffer of pre-forked device clones. The serving tier's
"drain leaves no leaked forks" property (pinned dynamically by the
drain tests) holds only if every pool is eventually Closed — an
unclosed pool leaks its refiller and up to depth full device images for
the life of the process. This analyzer pins the static half: within a
function, any pool obtained from Prefork (or a DevicePool returned by
any call) that stays function-local must reach Close on every
control-flow path that returns normally.

The obligation is discharged, lostcancel-style, when on a path the pool
(or the deployment it is attached to) is Closed — directly or in a
defer — or when ownership demonstrably leaves the function: the pool or
its deployment is returned, stored into a field, global, slice, map, or
channel, captured by a closure, or passed to another call. A bare
"dep.Prefork(n)" statement transfers the obligation to the receiving
deployment, matching the facade's idiom of closing pools through
Deployment.Close / Cluster.Close / Server drain. Paths that end in
panic or os.Exit are exempt, as are functions using goto (skipped, not
guessed) and test files.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// An obligation is one acquisition that must be discharged.
type obligation struct {
	pos  token.Pos
	stmt ast.Node       // the acquiring statement (node in the CFG)
	vars []types.Object // pool var and/or receiver deployment var
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var obls []obligation
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed as its own function
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !acquiresPool(pass, call) {
				return true
			}
			var vars []types.Object
			allBlank := true
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					return true // stored straight into a structure: escapes
				}
				if id.Name == "_" {
					continue
				}
				allBlank = false
				if obj := pass.TypesInfo.ObjectOf(id); isLocalVar(obj) {
					vars = append(vars, obj)
				} else {
					return true // assigned to a global or similar: escapes
				}
			}
			if r := localReceiver(pass, call, body); r != nil {
				vars = append(vars, r)
			} else if allBlank {
				// Result discarded and the receiver is not a trackable
				// body-local: nothing to pin the obligation to (e.g. the
				// deployment is a field or parameter and its owner
				// carries the Close).
				if receiverOwnedElsewhere(pass, call, body) {
					return true
				}
			}
			if len(vars) == 0 && allBlank {
				pass.Reportf(call.Pos(),
					"result of %s discarded and never reachable for Close; the pool's refiller goroutine and buffered forks leak", callName(call))
				return true
			}
			obls = append(obls, obligation{pos: call.Pos(), stmt: n, vars: vars})
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok || !acquiresPool(pass, call) {
				return true
			}
			if r := localReceiver(pass, call, body); r != nil {
				obls = append(obls, obligation{pos: call.Pos(), stmt: n, vars: []types.Object{r}})
			}
			// Receiver escapes or is non-local: the caller of this
			// function owns the deployment and its Close.
		}
		return true
	})
	if len(obls) == 0 {
		return
	}
	g := cfg.New(body, pass.TypesInfo)
	if g.Unsupported {
		return
	}
	for _, o := range obls {
		check(pass, g, o)
	}
}

// check walks every path from the obligation's statement looking for one
// that reaches Exit without discharging it.
func check(pass *analysis.Pass, g *cfg.Graph, o obligation) {
	// Locate the obligation's block and node index.
	var start *cfg.Block
	idx := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == o.stmt {
				start, idx = b, i
				break
			}
		}
		if start != nil {
			break
		}
	}
	if start == nil {
		return // unreachable code
	}
	// A discharge in a defer covers every exit path.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if d, ok := n.(*ast.DeferStmt); ok && discharges(pass, d, o.vars) {
				return
			}
		}
	}
	// DFS over blocks; a block is "clean" if traversal may pass through
	// it without discharging. Memoize visited blocks to terminate loops.
	if leaks(pass, start, idx+1, o, map[*cfg.Block]bool{}, g) {
		pass.Reportf(o.pos,
			"pool acquired here may reach a return without Close; close it (or its deployment) on every non-panic path")
	}
}

func leaks(pass *analysis.Pass, b *cfg.Block, from int, o obligation, seen map[*cfg.Block]bool, g *cfg.Graph) bool {
	for i := from; i < len(b.Nodes); i++ {
		if discharges(pass, b.Nodes[i], o.vars) {
			return false
		}
	}
	if b == g.Exit {
		return true
	}
	if len(b.Succs) == 0 {
		return false // panic/exit path
	}
	for _, s := range b.Succs {
		if seen[s] {
			continue
		}
		seen[s] = true
		if leaks(pass, s, 0, o, seen, g) {
			return true
		}
	}
	return false
}

// discharges reports whether node n releases or transfers any of vars.
func discharges(pass *analysis.Pass, n ast.Node, vars []types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.Close() / dep.Close() discharge; so does passing the
			// pool or deployment to any other call (ownership transfer).
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if obj := identObj(pass, sel.X); obj != nil && isTracked(obj, vars) {
					if sel.Sel.Name == "Close" {
						found = true
						return false
					}
				}
			}
			for _, arg := range n.Args {
				if obj := identObj(pass, arg); obj != nil && isTracked(obj, vars) {
					found = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsTracked(pass, res, vars) {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			// Storing the pool anywhere non-local transfers ownership.
			for i, lhs := range n.Lhs {
				if _, ok := lhs.(*ast.Ident); ok {
					// Local rebinding of another var; only an escape if
					// the LHS is non-local and RHS mentions a tracked var.
					if obj := pass.TypesInfo.ObjectOf(lhs.(*ast.Ident)); obj != nil && !isLocalVar(obj) {
						if i < len(n.Rhs) && mentionsTracked(pass, n.Rhs[i], vars) {
							found = true
							return false
						}
					}
					continue
				}
				if i < len(n.Rhs) && mentionsTracked(pass, n.Rhs[i], vars) {
					found = true
					return false
				}
			}
		case *ast.SendStmt:
			if mentionsTracked(pass, n.Value, vars) {
				found = true
				return false
			}
		case *ast.FuncLit:
			for _, v := range vars {
				if capturesObj(pass, n, v) {
					found = true
					return false
				}
			}
			return false
		}
		return true
	})
	return found
}

func isTracked(obj types.Object, vars []types.Object) bool {
	for _, v := range vars {
		if v == obj {
			return true
		}
	}
	return false
}

func mentionsTracked(pass *analysis.Pass, e ast.Expr, vars []types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && isTracked(obj, vars) {
				found = true
			}
		}
		return !found
	})
	return found
}

func capturesObj(pass *analysis.Pass, fn *ast.FuncLit, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// acquiresPool reports whether call returns a *DevicePool (the facade's
// Prefork, or any constructor-shaped source of a pool).
func acquiresPool(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	// Pool() accessors return the already-attached pool without
	// transferring ownership; only Prefork-shaped acquisitions oblige.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name != "Prefork" {
		return false
	}
	return isDevicePoolType(t) || isDevicePoolSlice(t)
}

func isDevicePoolSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isDevicePoolType(s.Elem())
}

func isDevicePoolType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "DevicePool"
}

// localReceiver returns the receiver object when call is a method call
// on a variable declared inside body (dep.Prefork(...) on a dep this
// function created), else nil. Parameters, fields, and globals are owned
// by someone who can still reach the deployment and close it.
func localReceiver(pass *analysis.Pass, call *ast.CallExpr, body *ast.BlockStmt) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := identObj(pass, sel.X)
	if isLocalVar(obj) && obj.Pos() >= body.Pos() && obj.Pos() <= body.End() {
		return obj
	}
	return nil
}

// receiverOwnedElsewhere reports whether the method receiver is anything
// but a body-declared local (a field, global, parameter, element, or
// call result): such a deployment outlives this function and carries the
// Close obligation with its owner.
func receiverOwnedElsewhere(pass *analysis.Pass, call *ast.CallExpr, body *ast.BlockStmt) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if _, ok := sel.X.(*ast.Ident); !ok {
		return true
	}
	return localReceiver(pass, call, body) == nil
}

// isLocalVar reports whether obj is a function-local variable (including
// parameters, whose pools the caller can still reach and close).
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return !v.IsField() && v.Parent() != v.Pkg().Scope()
}

// callName renders the callee for a diagnostic (e.g. "dep.Prefork").
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		return pass.TypesInfo.ObjectOf(id)
	}
	return nil
}
