package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"conduit/internal/lint"
	"conduit/internal/lint/allow"
	"conduit/internal/lint/driver"
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestAllowlistCurrent pins the two-sided contract between the tree and
// the committed allowlist: the tree is lint-clean (every raw finding is
// covered by an entry), and the allowlist is tight (every entry still
// suppresses at least one finding, and carries a justification). An
// entry that no longer matches anything is stale — the code was fixed —
// and must be deleted, so the list can only shrink.
func TestAllowlistCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes the whole module via go list")
	}
	root := moduleRoot(t)
	raw, err := driver.Analyze(root, []string{"./..."}, lint.Analyzers())
	if err != nil {
		t.Fatalf("analyzing module: %v", err)
	}
	list := allow.Default()

	for _, f := range driver.Filter(raw, list) {
		t.Errorf("finding not covered by the allowlist: %s", f)
	}

	for _, e := range list.Entries() {
		if e.Justification == "" {
			t.Errorf("conduitlint.allow:%d: entry %q has no justification", e.Line, e)
			continue
		}
		live := false
		for _, f := range raw {
			if e.Matches(f.Analyzer, f.Pkg, f.Position.Filename) {
				live = true
				break
			}
		}
		if !live {
			t.Errorf("conduitlint.allow:%d: stale entry %q no longer suppresses any finding; delete it", e.Line, e)
		}
	}
}

// TestObservabilityPackagesNeedNoExemptions pins the tracing tier's
// determinism posture from the static side: internal/trace and
// internal/metrics must produce zero raw findings — no allowlist entry,
// no exemption. Wall-clock time enters tracing only through the
// injected Options.Now seam (the CLIs supply it), so the packages
// themselves never read a clock; if a time.Now or global-rand call ever
// sneaks in, this fails before any golden trace test does.
func TestObservabilityPackagesNeedNoExemptions(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes packages via go list")
	}
	root := moduleRoot(t)
	raw, err := driver.Analyze(root,
		[]string{"./internal/trace/...", "./internal/metrics/..."}, lint.Analyzers())
	if err != nil {
		t.Fatalf("analyzing observability packages: %v", err)
	}
	for _, f := range raw {
		t.Errorf("observability package has a raw finding (must be clean without exemptions): %s", f)
	}
}
