package driver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"conduit/internal/lint/allow"
	"conduit/internal/lint/analysis"
)

// Main is the entry point of cmd/conduitlint. It implements the flag
// protocol `go vet -vettool` requires (-V=full, -flags, <unit>.cfg) and
// a standalone package-pattern mode, and exits with vet's conventions:
// 0 clean, 1 findings, 2 operational error.
func Main(analyzers []*analysis.Analyzer) {
	progname := "conduitlint"
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (vet protocol)")
	allowPath := flag.String("allow", "", "allowlist file overriding the committed internal/lint/allow list")
	flag.Var(versionFlag{}, "V", "print version and exit (vet protocol)")
	// Legacy vet flag shims so `go vet` option forwarding never breaks.
	_ = flag.Bool("json", false, "no effect (accepted for vet compatibility)")
	_ = flag.Int("c", -1, "no effect (accepted for vet compatibility)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `%[1]s checks the conduit simulator's determinism and ownership invariants.

Usage:
	%[1]s [packages]        # standalone, e.g. %[1]s ./...
	go vet -vettool=$(go env GOPATH)/bin/%[1]s ./...
	%[1]s help              # list analyzers

Analyzers:
`, progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "    %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		os.Exit(2)
	}
	flag.Parse()
	if *printflags {
		printFlags()
		os.Exit(0)
	}

	list := allow.Default()
	if *allowPath != "" {
		data, err := os.ReadFile(*allowPath)
		if err != nil {
			log.Fatal(err)
		}
		list, err = allow.Parse(string(data))
		if err != nil {
			log.Fatal(err)
		}
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "help" {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		os.Exit(0)
	}

	// Vet tool mode: a single JSON config file from the go command.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		findings, err := RunVetUnit(args[0], analyzers, list)
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: %s (conduitlint:%s)\n", f.Position, f.Message, f.Analyzer)
		}
		if len(findings) > 0 {
			os.Exit(1)
		}
		os.Exit(0)
	}

	// Standalone mode.
	if len(args) == 0 {
		args = []string{"./..."}
	}
	findings, err := Analyze(".", args, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	findings = Filter(findings, list)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// printFlags implements the -flags half of the vet protocol: the go
// command asks which flags the tool understands before forwarding any.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements -V=full: the go command hashes the reply into
// its build cache key so edited analyzers invalidate cached vet results.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel conduitlint buildID=%02x\n", exe, h.Sum(nil))
	os.Exit(0)
	return nil
}
