// Package driver loads type-checked packages and executes the
// conduitlint analyzers in the suite's two modes:
//
//   - standalone: `conduitlint ./...` enumerates packages with
//     `go list -export -json -deps`, type-checks each main-module
//     package against the build cache's export data, and runs every
//     analyzer — no network, no module downloads, nothing beyond the
//     standard toolchain;
//
//   - vet tool: `go vet -vettool=conduitlint ./...` speaks the vet
//     command-line protocol (-V=full for build caching, -flags for
//     flag discovery, and a JSON <unit>.cfg per compilation unit),
//     the same contract x/tools' unitchecker implements.
//
// Both modes filter diagnostics through the committed allowlist
// (internal/lint/allow); analysistest and the staleness meta-test see
// raw diagnostics instead.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"conduit/internal/lint/allow"
	"conduit/internal/lint/analysis"
)

// A Finding is one diagnostic with enough context to print, filter, and
// compare against the allowlist.
type Finding struct {
	Analyzer string
	Pkg      string // import path
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (conduitlint:%s)", f.Position, f.Message, f.Analyzer)
}

// runPass executes every analyzer over one type-checked package.
func runPass(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, pkgPath string) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Pkg:      pkgPath,
					Position: fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkgPath, a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Position.Filename != out[j].Position.Filename {
			return out[i].Position.Filename < out[j].Position.Filename
		}
		if out[i].Position.Line != out[j].Position.Line {
			return out[i].Position.Line < out[j].Position.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// Filter drops findings the allowlist exempts.
func Filter(fs []Finding, l *allow.List) []Finding {
	if l == nil {
		return fs
	}
	var out []Finding
	for _, f := range fs {
		if !l.Allows(f.Analyzer, f.Pkg, f.Position.Filename) {
			out = append(out, f)
		}
	}
	return out
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ---- standalone mode: go list -export ----

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
	CgoFiles   []string
	Module     *struct {
		Path string
		Main bool
	}
}

// Analyze loads the packages matching patterns (resolved in dir, the
// module root) plus their dependencies' export data, and returns every
// raw (unfiltered) finding across the main-module packages.
func Analyze(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Export,Standard,GoFiles,CgoFiles,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	exports := make(map[string]string) // import path -> export data file
	var units []listPkg
	dec := json.NewDecoder(outPipe)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.Main {
			units = append(units, p)
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var all []Finding
	for _, u := range units {
		if len(u.GoFiles) == 0 || len(u.CgoFiles) > 0 {
			continue
		}
		var files []*ast.File
		for _, name := range u.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(u.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := &types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", build.Default.GOARCH),
		}
		pkg, err := conf.Check(u.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", u.ImportPath, err)
		}
		fs, err := runPass(analyzers, fset, files, pkg, info, u.ImportPath)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	return all, nil
}

// exportImporter reads gc export data located by lookup.
func exportImporter(fset *token.FileSet, lookup func(string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// ---- vet tool mode: the unitchecker config protocol ----

// vetConfig mirrors the JSON config `go vet` hands a -vettool per
// compilation unit (the fields unitchecker.Config documents).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetUnit analyzes the single compilation unit described by the
// config file and returns its allowlist-filtered findings. A non-nil
// error is an operational failure (bad config, typecheck error with
// SucceedOnTypecheckFailure unset), not a finding.
func RunVetUnit(configFile string, analyzers []*analysis.Analyzer, l *allow.List) ([]Finding, error) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", configFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		// The go command does not ask vet tools about file-less packages.
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}

	// The go command requires the facts file to exist even though the
	// conduitlint analyzers are fact-free.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, fmt.Errorf("failed to export analysis facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil // the compiler will report it better
			}
			return nil, err
		}
		files = append(files, f)
	}
	compilerImp := exportImporter(fset, func(path string) (string, bool) {
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	conf := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath] // resolve vendoring etc.
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImp.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: strings.TrimSuffix(cfg.GoVersion, " "),
	}
	info := newInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	fs, err := runPass(analyzers, fset, files, pkg, info, cfg.ImportPath)
	if err != nil {
		return nil, err
	}
	return Filter(fs, l), nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
