package driver_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetTool builds cmd/conduitlint and drives it exactly the way CI
// does — go vet -vettool — against a scratch module, proving the vet
// unitchecker protocol end to end: a wall-clock call fails the build
// with a pointed diagnostic, and clean code passes silently. This is
// the "fails without its check" guarantee for the whole binary, not
// just the in-process analyzers.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the lint binary and shells out to go vet")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "conduitlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/conduitlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building conduitlint: %v\n%s", err, out)
	}

	vet := func(t *testing.T, src string) (string, error) {
		t.Helper()
		dir := t.TempDir()
		writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.24.0\n")
		writeFile(t, filepath.Join(dir, "main.go"), src)
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	t.Run("dirty", func(t *testing.T) {
		out, err := vet(t, `package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now())
}
`)
		if err == nil {
			t.Fatalf("go vet passed code that reads the wall clock; output:\n%s", out)
		}
		if !strings.Contains(out, "time.Now reads the wall clock") {
			t.Errorf("diagnostic missing from vet output:\n%s", out)
		}
	})

	t.Run("clean", func(t *testing.T) {
		out, err := vet(t, `package main

import (
	"fmt"
	"math/rand"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	fmt.Println(rng.Intn(10))
}
`)
		if err != nil {
			t.Fatalf("go vet failed on clean code: %v\n%s", err, out)
		}
	})
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
