// Package arena is a golden-test stub of the real internal/arena: just
// enough surface (Pool.Get/GetZeroed/GetCopy/Put) for arenaowner's
// receiver-type matching, with none of the real free-list machinery.
package arena

type Pool struct {
	free [][]byte
	size int
}

func NewPool(size int) *Pool { return &Pool{size: size} }

func (p *Pool) Get() []byte {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return make([]byte, p.size)
}

func (p *Pool) GetZeroed() []byte {
	b := p.Get()
	for i := range b {
		b[i] = 0
	}
	return b
}

func (p *Pool) GetCopy(src []byte) []byte {
	b := p.Get()
	copy(b, src)
	return b
}

func (p *Pool) Put(b []byte) { p.free = append(p.free, b) }
