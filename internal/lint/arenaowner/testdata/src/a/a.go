// Package a is arenaowner golden-test input: double recycles and
// uses-after-recycle along control-flow paths must be flagged; ownership
// transfers, rebinding, and path-sensitive conditionals must not.
package a

import "conduit/internal/arena"

// Module mirrors the data-plane wrappers that forward to Pool.Put.
type Module struct {
	pool *arena.Pool
}

func (m *Module) Recycle(b []byte) { m.pool.Put(b) }

type device struct {
	buf []byte
}

func doubleRecycle(pool *arena.Pool) {
	b := pool.Get()
	b[0] = 1
	pool.Put(b)
	pool.Put(b) // want `page "b" may already be recycled on this path`
}

func useAfterRecycle(pool *arena.Pool) {
	b := pool.GetZeroed()
	pool.Put(b)
	b[0] = 1 // want `page "b" used after Recycle`
}

func readAfterRecycle(pool *arena.Pool) byte {
	b := pool.Get()
	pool.Put(b)
	return b[0] // want `page "b" returned after Recycle`
}

func recycleViaWrapper(m *Module, pool *arena.Pool) {
	b := pool.GetCopy([]byte("seed"))
	m.Recycle(b)
	b[0] = 1 // want `page "b" used after Recycle`
}

func conditionalDouble(pool *arena.Pool, drop bool) {
	b := pool.Get()
	if drop {
		pool.Put(b)
	}
	pool.Put(b) // want `page "b" may already be recycled on this path`
}

func loopDouble(pool *arena.Pool, n int) {
	b := pool.Get()
	for i := 0; i < n; i++ {
		pool.Put(b) // want `page "b" may already be recycled on this path`
	}
}

func capturedAfterRecycle(pool *arena.Pool) func() byte {
	b := pool.Get()
	pool.Put(b)
	return func() byte { // want `page "b" captured by closure after Recycle`
		return b[0]
	}
}

// conditionalOK recycles on an early-exit path only; the fallthrough
// path still owns a live page.
func conditionalOK(pool *arena.Pool, drop bool) byte {
	b := pool.Get()
	if drop {
		pool.Put(b)
		return 0
	}
	v := b[0]
	pool.Put(b)
	return v
}

// storeOK transfers ownership into a device structure; the page lives on
// there and is no longer this function's to recycle.
func storeOK(pool *arena.Pool, d *device) {
	b := pool.Get()
	b[0] = 1
	d.buf = b
}

// rebindOK rebinds the variable to a fresh page after recycling.
func rebindOK(pool *arena.Pool) {
	b := pool.Get()
	pool.Put(b)
	b = pool.Get()
	b[0] = 1
	pool.Put(b)
}

// returnOK hands a live page to the caller.
func returnOK(pool *arena.Pool) []byte {
	b := pool.GetZeroed()
	return b
}

// copyOK: builtins only read; the page stays owned and is recycled once.
func copyOK(pool *arena.Pool, src []byte) int {
	b := pool.Get()
	n := copy(b, src)
	pool.Put(b)
	return n
}
