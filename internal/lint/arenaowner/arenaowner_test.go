package arenaowner_test

import (
	"testing"

	"conduit/internal/lint/analysistest"
	"conduit/internal/lint/arenaowner"
)

func TestArenaowner(t *testing.T) {
	analysistest.Run(t, "testdata", arenaowner.Analyzer, "a")
}
