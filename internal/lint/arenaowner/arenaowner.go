// Package arenaowner implements the conduitlint analyzer that encodes
// the arena page ownership rule: a page is recycled at most once and is
// dead — never read, stored, or returned — afterwards.
package arenaowner

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"conduit/internal/lint/analysis"
	"conduit/internal/lint/cfg"
)

// Analyzer checks arena page lifetimes along control-flow paths.
var Analyzer = &analysis.Analyzer{
	Name: "arenaowner",
	Doc: `enforce the arena page ownership rule along control-flow paths

internal/arena free lists make the data plane allocation-free only
because of a discipline the type system cannot see: a page obtained
from a Pool (Get/GetZeroed/GetCopy) is privately owned until it is
stored into a device structure, and once handed back — Pool.Put or any
Recycle wrapper — it is dead. Recycling twice puts the same buffer on
the free list twice, so two future Gets alias one page and silently
corrupt results; touching or retaining a recycled page reads memory a
later Get may already be overwriting. Both bugs are heisenbugs the
example-based tests only catch when the reuse pattern lines up.

The analyzer tracks, within each function, every variable bound to a
fresh arena page and walks the function's control-flow graph:
  - a path on which the page may already be recycled reaching another
    Put/Recycle is reported (double recycle);
  - a path on which the page is definitely recycled reaching a read,
    store, return, send, or closure capture of it is reported
    (use after recycle).
Storing a live page (field/global/slice/map assignment, passing it to a
non-recycle call, returning it) transfers ownership and ends tracking.
Functions using goto are skipped rather than analyzed unsoundly. Test
files are skipped.`,
	Run: run,
}

// varState is the per-variable abstract state: a set over {live,
// recycled} since several paths merge at a join.
type varState uint8

const (
	mayLive varState = 1 << iota
	mayRecycled
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// tracked maps page variables to their acquisition position.
	tracked map[types.Object]token.Pos
	// reported dedupes diagnostics across fixpoint iterations.
	reported map[token.Pos]bool
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{
		pass:     pass,
		tracked:  make(map[types.Object]token.Pos),
		reported: make(map[token.Pos]bool),
	}
	// Pass 1: find page acquisitions (v := pool.Get()). No pages, no CFG.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested closures are checked as their own functions
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isArenaGet(pass, call) {
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			c.tracked[obj] = id.Pos()
		}
		return true
	})
	if len(c.tracked) == 0 {
		return
	}
	g := cfg.New(body, pass.TypesInfo)
	if g.Unsupported {
		return
	}
	// Pass 2: forward dataflow to fixpoint. in[b] is the merged state at
	// b's entry; union is the join.
	in := make([]map[types.Object]varState, len(g.Blocks))
	for i := range in {
		in[i] = make(map[types.Object]varState)
	}
	worklist := []*cfg.Block{g.Entry}
	onList := map[*cfg.Block]bool{g.Entry: true}
	for len(worklist) > 0 {
		b := worklist[0]
		worklist = worklist[1:]
		onList[b] = false
		out := c.transfer(b, clone(in[b.Index]))
		for _, s := range b.Succs {
			if mergeInto(in[s.Index], out) && !onList[s] {
				worklist = append(worklist, s)
				onList[s] = true
			}
		}
	}
}

func clone(m map[types.Object]varState) map[types.Object]varState {
	out := make(map[types.Object]varState, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeInto unions src into dst and reports whether dst changed.
func mergeInto(dst, src map[types.Object]varState) bool {
	changed := false
	for k, v := range src {
		if dst[k]|v != dst[k] {
			dst[k] |= v
			changed = true
		}
	}
	return changed
}

// transfer applies a block's nodes to state, reporting violations.
func (c *checker) transfer(b *cfg.Block, state map[types.Object]varState) map[types.Object]varState {
	for _, n := range b.Nodes {
		c.node(n, state)
	}
	return state
}

func (c *checker) node(n ast.Node, state map[types.Object]varState) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure capturing a tracked page retains it: treat as a
			// use (bug if recycled) and an ownership transfer.
			for obj := range c.capturedTracked(n) {
				c.useVar(n.Pos(), obj, state, "captured by closure")
				delete(state, obj)
			}
			return false
		case *ast.AssignStmt:
			c.assign(n, state)
			return false
		case *ast.DeferStmt, *ast.GoStmt:
			// A deferred (or spawned) call runs later: its arguments are
			// read now, but a deferred Put recycles at exit, not here.
			// Model conservatively: check the reads, then stop tracking
			// every page the call mentions.
			var call *ast.CallExpr
			if d, ok := n.(*ast.DeferStmt); ok {
				call = d.Call
			} else {
				call = n.(*ast.GoStmt).Call
			}
			c.exprUses(call.Fun, state, "used")
			for _, arg := range call.Args {
				c.exprUses(arg, state, "used")
			}
			for obj := range c.mentioned(call) {
				delete(state, obj)
			}
			return false
		case *ast.CallExpr:
			c.call(n, state)
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				c.exprUses(res, state, "returned")
			}
			for _, res := range n.Results {
				if obj := identObj(c.pass, res); obj != nil {
					delete(state, obj) // ownership moves to the caller
				}
			}
			return false
		case *ast.SendStmt:
			c.exprUses(n.Value, state, "sent on channel")
			if obj := identObj(c.pass, n.Value); obj != nil {
				delete(state, obj)
			}
			c.exprUses(n.Chan, state, "used")
			return false
		case *ast.Ident:
			if obj := c.pass.TypesInfo.ObjectOf(n); obj != nil {
				c.useVar(n.Pos(), obj, state, "used")
			}
			return true
		}
		return true
	})
}

// assign handles writes to and reads of tracked variables.
func (c *checker) assign(a *ast.AssignStmt, state map[types.Object]varState) {
	// RHS first: reads happen before the store.
	isGet := false
	if len(a.Rhs) == 1 {
		if call, ok := a.Rhs[0].(*ast.CallExpr); ok && isArenaGet(c.pass, call) {
			isGet = true
			// Still check the call's own arguments (GetCopy(src)).
			c.call(call, state)
		}
	}
	if !isGet {
		for _, rhs := range a.Rhs {
			c.node(rhs, state)
		}
	}
	for i, lhs := range a.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			obj := c.pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				continue
			}
			if _, tracked := c.tracked[obj]; !tracked {
				continue
			}
			if isGet && len(a.Lhs) == 1 {
				state[obj] = mayLive // rebound to a fresh page
			} else {
				delete(state, obj) // rebound to something else entirely
			}
			continue
		}
		// Storing INTO a structure: x.f = v, s[i] = v, *p = v. The
		// stored value escapes; reads inside the index expression and
		// the stored value itself must not be recycled.
		c.exprUses(lhs, state, "used")
		if i < len(a.Rhs) {
			if obj := identObj(c.pass, a.Rhs[i]); obj != nil {
				if _, tracked := c.tracked[obj]; tracked {
					c.useVar(a.Rhs[i].Pos(), obj, state, "stored after being recycled")
					delete(state, obj) // ownership transferred
				}
			}
		}
	}
}

// call handles Put/Recycle releases and escapes through arguments.
func (c *checker) call(call *ast.CallExpr, state map[types.Object]varState) {
	// Examine nested calls in arguments first.
	for _, arg := range call.Args {
		if inner, ok := arg.(*ast.CallExpr); ok {
			c.call(inner, state)
		}
	}
	if isRecycleCall(c.pass, call) && len(call.Args) == 1 {
		if obj := identObj(c.pass, call.Args[0]); obj != nil {
			if _, tracked := c.tracked[obj]; tracked {
				if state[obj]&mayRecycled != 0 {
					c.report(call.Pos(), "page %q may already be recycled on this path; recycling twice aliases one buffer to two future Gets", obj.Name())
				}
				state[obj] = mayRecycled
				return
			}
		}
	}
	// Receiver and plain arguments are reads; passing a page to a
	// non-recycle, non-builtin call transfers ownership (e.g. storing it
	// in a device). Builtins (copy, len, cap, clear, ...) only read.
	builtin := false
	if id, ok := call.Fun.(*ast.Ident); ok {
		_, builtin = c.pass.TypesInfo.Uses[id].(*types.Builtin)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		c.exprUses(sel.X, state, "used")
	}
	for _, arg := range call.Args {
		c.exprUses(arg, state, "passed to a call")
		if builtin {
			continue
		}
		if obj := identObj(c.pass, arg); obj != nil {
			delete(state, obj)
		}
	}
}

// mentioned returns every tracked object referenced anywhere in n.
func (c *checker) mentioned(n ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				if _, tracked := c.tracked[obj]; tracked {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// exprUses reports any tracked, definitely-recycled variable read within
// e. A closure literal inside e is a capture, not a plain read, wherever
// it appears (returned, sent, stored).
func (c *checker) exprUses(e ast.Expr, state map[types.Object]varState, how string) {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			for obj := range c.capturedTracked(fl) {
				c.useVar(fl.Pos(), obj, state, "captured by closure")
				delete(state, obj)
			}
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				c.useVar(id.Pos(), obj, state, how)
			}
		}
		return true
	})
}

// useVar reports a use of obj when it is definitely recycled. "May"
// states at joins stay silent to keep the analyzer precise on the
// conditional-recycle idioms the data plane actually uses.
func (c *checker) useVar(pos token.Pos, obj types.Object, state map[types.Object]varState, how string) {
	if _, tracked := c.tracked[obj]; !tracked {
		return
	}
	if state[obj] == mayRecycled {
		c.report(pos, "page %q %s after Recycle; a recycled page may already back another Get", obj.Name(), how)
	}
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// capturedTracked returns tracked objects referenced inside fn.
func (c *checker) capturedTracked(fn *ast.FuncLit) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				if _, tracked := c.tracked[obj]; tracked {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isArenaGet reports whether call is (*arena.Pool).Get/GetZeroed/GetCopy.
func isArenaGet(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	switch fn.Name() {
	case "Get", "GetZeroed", "GetCopy":
	default:
		return false
	}
	return isArenaPoolMethod(fn)
}

// isRecycleCall reports whether call hands a page back to a free list:
// (*arena.Pool).Put, or any single-[]byte-parameter method named
// Recycle (the modules' wrappers: Core.Recycle, Module.Recycle, ...).
func isRecycleCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Name() == "Put" && isArenaPoolMethod(fn) {
		return true
	}
	if fn.Name() != "Recycle" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 1 {
		return false
	}
	slice, ok := sig.Params().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}

func isArenaPoolMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/arena")
}

func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		return pass.TypesInfo.ObjectOf(id)
	}
	return nil
}
