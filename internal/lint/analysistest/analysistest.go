// Package analysistest runs a conduitlint analyzer over golden test
// packages and checks its diagnostics against // want annotations, in
// the manner of golang.org/x/tools/go/analysis/analysistest.
//
// Test packages live under <analyzer dir>/testdata/src/<importpath>/,
// mirroring the upstream GOPATH-shaped layout. Imports resolve against
// testdata/src first — so a test package may import a stub
// "conduit/internal/arena" that declares just the Pool surface — and
// fall back to the real standard library, type-checked from source.
//
// An expectation is a comment of the form
//
//	v := pool.Get() // want `regexp`
//	pool.Put(v)     // want "one" "two"
//
// Each string (raw or interpreted Go literal) must match, in order, a
// diagnostic reported on that line; unmatched expectations and
// unexpected diagnostics both fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"conduit/internal/lint/analysis"
)

// Run applies a to each test package under dir/src and reports
// mismatches through t. dir is usually "testdata".
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := newLoader(dir)
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			runPkg(t, ld, a, pkg)
		})
	}
}

func runPkg(t *testing.T, ld *loader, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	lp, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      ld.fset,
		Files:     lp.files,
		Pkg:       lp.pkg,
		TypesInfo: lp.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	wants := collectWants(t, ld.fset, lp.files)
	for _, d := range diags {
		posn := ld.fset.Position(d.Pos)
		key := lineKey{filepath.Base(posn.Filename), posn.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matched `%s`", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]*want {
	t.Helper()
	out := make(map[lineKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				key := lineKey{filepath.Base(posn.Filename), posn.Line}
				for _, lit := range splitLiterals(m[1]) {
					pat, err := unquote(lit)
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", posn, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, pat, err)
					}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}

// splitLiterals splits `"a" "b"` or "`a` `b`" into string literals.
func splitLiterals(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			break
		}
		end := strings.IndexByte(s[1:], quote)
		for quote == '"' && end >= 0 && s[end] == '\\' { // skip escaped quote
			next := strings.IndexByte(s[end+2:], quote)
			if next < 0 {
				end = -1
				break
			}
			end += next + 1
		}
		if end < 0 {
			break
		}
		out = append(out, s[:end+2])
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

func unquote(lit string) (string, error) {
	if strings.HasPrefix(lit, "`") {
		return strings.Trim(lit, "`"), nil
	}
	return strconv.Unquote(lit)
}

// loader type-checks testdata packages, resolving imports against
// testdata/src before the standard library.
type loader struct {
	root string // testdata dir
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*loadedPkg
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root: root,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*loadedPkg),
	}
}

func (ld *loader) load(pkgPath string) (*loadedPkg, error) {
	if lp, ok := ld.pkgs[pkgPath]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.root, "src", filepath.FromSlash(pkgPath))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, ent.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: importerFunc(ld.importPkg)}
	pkg, err := conf.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	ld.pkgs[pkgPath] = lp
	return lp, nil
}

func (ld *loader) importPkg(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(ld.root, "src", filepath.FromSlash(path))); err == nil {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return ld.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
