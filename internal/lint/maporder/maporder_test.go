package maporder_test

import (
	"testing"

	"conduit/internal/lint/analysistest"
	"conduit/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "a")
}
