// Package maporder implements the conduitlint analyzer that flags
// order-sensitive work driven directly by map iteration.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"conduit/internal/lint/analysis"
)

// Analyzer flags range-over-map loops whose bodies perform
// order-sensitive effects without a subsequent deterministic sort.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: `flag order-sensitive effects driven by map iteration order

Go randomizes map iteration order per loop, so any output a
range-over-map feeds directly — an emitted table row, a CSV line, an
appended slice that is never sorted, a string or float accumulator —
differs from run to run. That is precisely the bug class that breaks
this repository's byte-identical-report guarantees (concurrent == serial
sweeps, exact cluster merges, stable committed CSVs).

Inside the body of a range over a map the analyzer flags:
  - fmt print/Fprint calls and Write*/AddRow*-style emission methods,
  - sends on channels,
  - string or floating-point compound accumulation (+=, order changes
    concatenation; float addition is not associative),
  - appends to a slice declared outside the loop, unless the slice is
    later passed to a sort (sort.* or slices.Sort*) in the same
    function — the repository's canonical collect-keys-then-sort idiom.

Integer/counter accumulation and map-to-map copies are commutative and
are not flagged. Test files are skipped.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		// Walk function by function so "sorted later in the same
		// function" has a well-defined scope.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkRange(pass, body, rng)
		return true
	})
}

func checkRange(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range reports for itself.
			if n != rng {
				t := pass.TypesInfo.TypeOf(n.X)
				if t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.CallExpr:
			if name := emissionCall(pass, n); name != "" {
				pass.Reportf(n.Pos(),
					"%s inside range over map emits in nondeterministic order; iterate sorted keys instead", name)
				return true
			}
			if obj := appendTarget(pass, n, rng); obj != nil {
				if !sortedAfter(pass, fnBody, rng, obj) {
					pass.Reportf(n.Pos(),
						"append to %q inside range over map without a subsequent sort; collected order differs across runs", obj.Name())
				}
				return true
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside range over map delivers in nondeterministic order; iterate sorted keys instead")
		case *ast.AssignStmt:
			if n.Tok != token.ADD_ASSIGN || len(n.Lhs) != 1 {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil || within(obj.Pos(), rng) {
				return true
			}
			switch b := obj.Type().Underlying().(type) {
			case *types.Basic:
				switch {
				case b.Info()&types.IsString != 0:
					pass.Reportf(n.Pos(),
						"string concatenation into %q inside range over map depends on iteration order", id.Name)
				case b.Info()&types.IsFloat != 0:
					pass.Reportf(n.Pos(),
						"float accumulation into %q inside range over map: float addition is not associative, so the sum differs across runs; sum in sorted key order", id.Name)
				}
			}
		}
		return true
	})
}

// emissionCall reports a human-readable name if call writes output whose
// order the reader observes, else "".
func emissionCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	name := fn.Name()
	if fn.Type().(*types.Signature).Recv() == nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
			return "fmt." + name
		}
		return ""
	}
	// Order-observable sinks by method name: io/strings.Builder writers,
	// the repository's stats.Table row builders, and stream encoders.
	switch {
	case name == "Write", name == "WriteString", name == "WriteByte", name == "WriteRune",
		strings.HasPrefix(name, "AddRow"),
		name == "Encode",
		strings.HasPrefix(name, "Print"), strings.HasPrefix(name, "Fprint"):
		return "call to " + name
	}
	return ""
}

// appendTarget returns the object of v in `v = append(v, ...)` when v is
// declared outside the range statement, else nil.
func appendTarget(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	target, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(target)
	if obj == nil || within(obj.Pos(), rng) {
		return nil
	}
	return obj
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort*
// call positioned after rng within fnBody.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

func within(pos token.Pos, rng *ast.RangeStmt) bool {
	return pos >= rng.Pos() && pos <= rng.End()
}
