// Package a is maporder golden-test input: order-sensitive effects
// inside range-over-map must be flagged; the collect-then-sort idiom
// and commutative aggregation must not.
package a

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out" inside range over map without a subsequent sort`
	}
	return out
}

func appendSortedOK(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func appendSortSliceOK(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func emit(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside range over map emits in nondeterministic order`
	}
}

func print(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt.Println inside range over map emits in nondeterministic order`
	}
}

func build(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `call to WriteString inside range over map emits in nondeterministic order`
	}
	return b.String()
}

func send(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over map delivers in nondeterministic order`
	}
}

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into "sum" inside range over map`
	}
	return sum
}

func stringConcat(m map[string]int) string {
	var s string
	for k := range m {
		s += k // want `string concatenation into "s" inside range over map`
	}
	return s
}

func intSumOK(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

func mapCopyOK(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sliceRangeOK(s []string, w io.Writer) {
	for _, v := range s {
		fmt.Fprintln(w, v)
	}
}

func localAppendOK(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
