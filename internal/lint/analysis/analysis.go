// Package analysis defines the analyzer interface for conduitlint, the
// repository's static-analysis suite. It is a deliberately small,
// API-compatible subset of golang.org/x/tools/go/analysis — Name/Doc/Run
// on the analyzer, Fset/Files/Pkg/TypesInfo/Report on the pass — so that
// each checker reads like a stock go/analysis analyzer and could be
// ported to the upstream framework by changing one import. The subset
// exists because this module builds hermetically from the standard
// library alone: the toolchain image carries no x/tools module, and the
// determinism checkers must run on every build, not only where a module
// proxy is reachable.
//
// Drivers (internal/lint/driver for `go vet -vettool` and standalone
// use, internal/lint/analysistest for golden tests) load and type-check
// a package, construct a Pass per analyzer, and collect diagnostics.
// Facts, analyzer dependencies, and suggested fixes are intentionally
// out of scope: every conduitlint analyzer is package-local and
// report-only.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and the
	// allowlist. It must be a valid Go identifier.
	Name string

	// Doc is the help text: one summary line, a blank line, then detail.
	Doc string

	// Run applies the analyzer to a single type-checked package.
	// It reports findings via pass.Report and returns an error only for
	// internal failures, never for findings.
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with one type-checked package and a sink
// for its diagnostics. Analyzers must not retain the Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// IsTestFile reports whether filename is a Go test file. The conduitlint
// analyzers check invariants of shipped simulator code; tests assert
// those invariants from outside and are free to sleep, time, and seed.
func IsTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}

// Preorder calls fn for every node in every file of the pass, in
// depth-first source order. It is the traversal helper the upstream
// inspect.Analyzer would provide.
func (p *Pass) Preorder(fn func(ast.Node)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}
