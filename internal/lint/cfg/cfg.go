// Package cfg builds an intraprocedural control-flow graph over a
// function body's statement list, for the path-sensitive conduitlint
// analyzers (arenaowner, poolleak). It is a small, conservative analogue
// of golang.org/x/tools/go/cfg: blocks hold ast.Nodes in execution
// order, edges follow if/for/range/switch/select/branch control flow,
// and calls to provably non-returning functions (panic, os.Exit,
// log.Fatal*, runtime.Goexit, (*testing.common).Fatal*) terminate their
// path without reaching Exit — which is what lets clients reason about
// "all non-panic paths".
//
// The builder never guesses on constructs it does not model: a goto
// marks the graph Unsupported and clients skip the function rather than
// report on an unsound graph.
package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A Block is a straight-line sequence of nodes with explicit successors.
type Block struct {
	// Nodes are statements (and the cond/tag expressions of the control
	// statement that ends the block) in execution order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
	// Index is the block's position in Graph.Blocks.
	Index int
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // every non-panic path ends here
	Blocks []*Block
	// Unsupported is set when the body uses control flow the builder
	// does not model (goto). Clients must not draw conclusions from an
	// unsupported graph.
	Unsupported bool
}

// New builds the graph for body. info may be nil; with type information
// the builder recognizes non-returning calls (os.Exit, log.Fatal, ...)
// in addition to the builtin panic.
func New(body *ast.BlockStmt, info *types.Info) *Graph {
	b := &builder{g: &Graph{}, info: info}
	b.g.Exit = b.newBlock() // Exit first so it exists for early returns
	entry := b.newBlock()
	b.g.Entry = entry
	last := b.stmtList(body.List, entry)
	b.link(last, b.g.Exit)
	return b.g
}

type loopFrame struct {
	label          string
	breakTarget    *Block
	continueTarget *Block
}

type builder struct {
	g     *Graph
	info  *types.Info
	loops []loopFrame
	// pendingLabel is the label naming the next loop/switch statement.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// link adds an edge from from to to. A nil from means the predecessor
// path already terminated (return/panic/branch) and there is no edge.
func (b *builder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) stmtList(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt extends the graph with s starting at cur and returns the block
// where execution continues afterwards (nil if s never falls through).
func (b *builder) stmt(s ast.Stmt, cur *Block) *Block {
	if cur == nil {
		// Unreachable code after return/branch: give it a detached
		// block so its nodes still exist, but nothing links to it.
		cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		join := b.newBlock()
		thenEntry := b.newBlock()
		b.link(cur, thenEntry)
		b.link(b.stmtList(s.Body.List, thenEntry), join)
		if s.Else != nil {
			elseEntry := b.newBlock()
			b.link(cur, elseEntry)
			b.link(b.stmt(s.Else, elseEntry), join)
		} else {
			b.link(cur, join)
		}
		return join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		head := b.newBlock()
		exit := b.newBlock()
		post := b.newBlock()
		b.link(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.link(head, exit)
		}
		// With no cond the only way out is break (or return inside).
		bodyEntry := b.newBlock()
		b.link(head, bodyEntry)
		b.loops = append(b.loops, loopFrame{label, exit, post})
		bodyEnd := b.stmtList(s.Body.List, bodyEntry)
		b.loops = b.loops[:len(b.loops)-1]
		b.link(bodyEnd, post)
		if s.Post != nil {
			_ = b.stmt(s.Post, post)
		}
		b.link(post, head)
		return exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		cur.Nodes = append(cur.Nodes, s.X)
		head := b.newBlock()
		exit := b.newBlock()
		b.link(cur, head)
		b.link(head, exit) // range may be empty / exhausted
		if s.Key != nil {
			head.Nodes = append(head.Nodes, s.Key)
		}
		if s.Value != nil {
			head.Nodes = append(head.Nodes, s.Value)
		}
		bodyEntry := b.newBlock()
		b.link(head, bodyEntry)
		b.loops = append(b.loops, loopFrame{label, exit, head})
		bodyEnd := b.stmtList(s.Body.List, bodyEntry)
		b.loops = b.loops[:len(b.loops)-1]
		b.link(bodyEnd, head)
		return exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return b.switchStmt(s, cur)

	case *ast.SelectStmt:
		label := b.takeLabel()
		join := b.newBlock()
		b.loops = append(b.loops, loopFrame{label, join, nil})
		for _, clause := range s.Body.List {
			c := clause.(*ast.CommClause)
			entry := b.newBlock()
			b.link(cur, entry)
			if c.Comm != nil {
				entry = b.stmt(c.Comm, entry)
			}
			b.link(b.stmtList(c.Body, entry), join)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(s.Body.List) == 0 {
			// select{} blocks forever.
			return nil
		}
		return join

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.link(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, s)
		switch s.Tok {
		case token.GOTO:
			b.g.Unsupported = true
			return nil
		case token.BREAK:
			if t := b.findLoop(s.Label, true); t != nil {
				b.link(cur, t)
			}
			return nil
		case token.CONTINUE:
			if t := b.findLoop(s.Label, false); t != nil {
				b.link(cur, t)
			}
			return nil
		case token.FALLTHROUGH:
			// Handled by switchStmt via clause chaining; reaching here
			// (malformed position) just ends the path.
			return nil
		}
		return nil

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
			return b.stmt(s.Stmt, cur)
		}
		// A label on a plain statement exists only as a goto target.
		b.g.Unsupported = true
		return b.stmt(s.Stmt, cur)

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.noReturn(call) {
			return nil // panic path: never reaches Exit
		}
		return cur

	default:
		// Assignments, declarations, defer, go, send, inc/dec, empty.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

func (b *builder) switchStmt(s ast.Stmt, cur *Block) *Block {
	label := b.takeLabel()
	var init ast.Stmt
	var tag ast.Node
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, clauses = s.Init, s.Body.List
		if s.Tag != nil {
			tag = s.Tag
		}
	case *ast.TypeSwitchStmt:
		init, clauses = s.Init, s.Body.List
		tag = s.Assign
	}
	if init != nil {
		cur = b.stmt(init, cur)
	}
	if tag != nil {
		cur.Nodes = append(cur.Nodes, tag)
	}
	join := b.newBlock()
	b.loops = append(b.loops, loopFrame{label, join, nil})

	// Build every clause body first so fallthrough can chain into the
	// next clause's entry.
	entries := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		entries[i] = b.newBlock()
		b.link(cur, entries[i])
		if len(clauses[i].(*ast.CaseClause).List) == 0 {
			hasDefault = true
		}
	}
	for i, clause := range clauses {
		c := clause.(*ast.CaseClause)
		body := c.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		end := b.stmtList(body, entries[i])
		if fallsThrough && i+1 < len(entries) {
			b.link(end, entries[i+1])
		} else {
			b.link(end, join)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		b.link(cur, join) // no case may match
	}
	return join
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findLoop resolves a break (wantBreak) or continue target. Break also
// targets switch/select frames; continue skips them.
func (b *builder) findLoop(label *ast.Ident, wantBreak bool) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if label != nil && f.label != label.Name {
			continue
		}
		if wantBreak {
			return f.breakTarget
		}
		if f.continueTarget != nil {
			return f.continueTarget
		}
	}
	return nil
}

// noReturn reports whether call provably never returns.
func (b *builder) noReturn(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if fn.Name == "panic" && b.isBuiltin(fn) {
			return true
		}
	case *ast.SelectorExpr:
		if b.info == nil {
			return false
		}
		sel, ok := b.info.Selections[fn]
		if ok {
			// Method: (*testing.common).Fatal/Fatalf/FailNow/Skip* end
			// the goroutine via runtime.Goexit.
			obj := sel.Obj()
			if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "testing" {
				switch obj.Name() {
				case "Fatal", "Fatalf", "FailNow", "SkipNow", "Skipf", "Skip":
					return true
				}
			}
			return false
		}
		// Package-level function.
		if obj, ok := b.info.Uses[fn.Sel].(*types.Func); ok && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "os":
				return obj.Name() == "Exit"
			case "log":
				return strings.HasPrefix(obj.Name(), "Fatal") || strings.HasPrefix(obj.Name(), "Panic")
			case "runtime":
				return obj.Name() == "Goexit"
			}
		}
	}
	return false
}

func (b *builder) isBuiltin(id *ast.Ident) bool {
	if b.info == nil {
		return true // best effort without types
	}
	_, ok := b.info.Uses[id].(*types.Builtin)
	return ok
}
