// Package lint assembles the conduitlint analyzer suite.
//
// conduitlint machine-checks the invariants every headline claim of
// this reproduction rests on — byte-identical concurrent vs. serial
// sweeps, exact associative histogram and shard merges, the
// zero-allocation arena ownership rule, and drain-leaves-no-forks —
// so that the compiler-adjacent toolchain re-verifies them on every
// build instead of trusting example-based tests alone. It runs
// standalone (`conduitlint ./...`), or as a vet tool
// (`go vet -vettool=$(go env GOPATH)/bin/conduitlint ./...`); both
// modes apply the single committed allowlist (internal/lint/allow).
//
// See docs/ARCHITECTURE.md, "Static analysis & invariants", for the
// mapping from each analyzer to the determinism argument it guards.
package lint

import (
	"conduit/internal/lint/analysis"
	"conduit/internal/lint/arenaowner"
	"conduit/internal/lint/maporder"
	"conduit/internal/lint/nondeterm"
	"conduit/internal/lint/poolleak"
)

// Analyzers returns the full conduitlint suite in stable name order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		arenaowner.Analyzer,
		maporder.Analyzer,
		nondeterm.Analyzer,
		poolleak.Analyzer,
	}
}
