// Package allow parses and applies conduitlint's single committed
// allowlist. Exemptions from the determinism analyzers live in exactly
// one reviewed file — internal/lint/allow/conduitlint.allow, embedded
// into the conduitlint binary — never in inline pragmas scattered
// through the tree. Every entry must carry a justification, and the
// staleness meta-test in internal/lint fails if an entry no longer
// suppresses anything, so the list can only shrink as code is fixed.
package allow

import (
	_ "embed"
	"fmt"
	"path"
	"strings"
)

//go:embed conduitlint.allow
var embedded string

// An Entry exempts one (analyzer, package[, file]) from diagnostics.
type Entry struct {
	// Analyzer is the analyzer name the entry silences.
	Analyzer string
	// Pkg is the import path the entry covers; a trailing "/..." covers
	// the subtree (used for cmd/...).
	Pkg string
	// File optionally narrows the entry to one file basename.
	File string
	// Justification is the mandatory human reason after '#'.
	Justification string
	// Line is the 1-based line in the allowlist file, for messages.
	Line int
}

func (e Entry) String() string {
	s := e.Analyzer + " " + e.Pkg
	if e.File != "" {
		s += " " + e.File
	}
	return s
}

// A List is a parsed allowlist.
type List struct {
	entries []Entry
}

// Default returns the committed, compiled-in allowlist.
func Default() *List {
	l, err := Parse(embedded)
	if err != nil {
		// The committed list is validated by tests; an unparsable
		// embedded list is a build defect, not a runtime condition.
		panic(fmt.Sprintf("allow: embedded conduitlint.allow is invalid: %v", err))
	}
	return l
}

// Parse reads an allowlist. Each non-blank, non-comment line is
//
//	<analyzer> <import-path>[ <file.go>] # <justification>
//
// The justification is required: an exemption nobody can defend is an
// exemption that should not exist.
func Parse(src string) (*List, error) {
	l := &List{}
	for i, line := range strings.Split(src, "\n") {
		text, _, _ := strings.Cut(line, "#")
		just := ""
		if idx := strings.Index(line, "#"); idx >= 0 {
			just = strings.TrimSpace(line[idx+1:])
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue // blank or pure comment
		}
		if len(fields) > 3 {
			return nil, fmt.Errorf("line %d: want \"analyzer pkg [file.go] # justification\", got %q", i+1, line)
		}
		e := Entry{Analyzer: fields[0], Pkg: fields[1], Justification: just, Line: i + 1}
		if len(fields) == 3 {
			if !strings.HasSuffix(fields[2], ".go") {
				return nil, fmt.Errorf("line %d: third field %q must be a .go file basename", i+1, fields[2])
			}
			e.File = fields[2]
		}
		if e.Justification == "" {
			return nil, fmt.Errorf("line %d: entry %q has no justification comment", i+1, e)
		}
		l.entries = append(l.entries, e)
	}
	return l, nil
}

// Allows reports whether a diagnostic from analyzer in package pkgPath,
// file filename (basename or full path), is exempted.
func (l *List) Allows(analyzer, pkgPath, filename string) bool {
	return l.match(analyzer, pkgPath, filename) != nil
}

func (l *List) match(analyzer, pkgPath, filename string) *Entry {
	for i := range l.entries {
		if l.entries[i].Matches(analyzer, pkgPath, filename) {
			return &l.entries[i]
		}
	}
	return nil
}

// Matches reports whether e exempts a diagnostic from analyzer in
// package pkgPath, file filename (basename or full path). Exported so
// the staleness meta-test can ask which entries still suppress anything.
func (e Entry) Matches(analyzer, pkgPath, filename string) bool {
	if e.Analyzer != analyzer {
		return false
	}
	if !pkgMatch(e.Pkg, pkgPath) {
		return false
	}
	if e.File != "" && e.File != path.Base(strings.ReplaceAll(filename, "\\", "/")) {
		return false
	}
	return true
}

// Entries returns the parsed entries (for the staleness meta-test).
func (l *List) Entries() []Entry { return l.entries }

func pkgMatch(pattern, pkgPath string) bool {
	if sub, ok := strings.CutSuffix(pattern, "/..."); ok {
		return pkgPath == sub || strings.HasPrefix(pkgPath, sub+"/")
	}
	return pattern == pkgPath
}
