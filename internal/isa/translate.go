package isa

import "fmt"

// Resource identifies one of the three SSD computation resources the
// offloader chooses among (§4.3.2).
type Resource uint8

// SSD computation resources.
const (
	ResISP Resource = iota // embedded controller cores (ARM Cortex-R8 + MVE)
	ResPuD                 // processing-using-DRAM in the SSD DRAM
	ResIFP                 // in-flash processing in the NAND chips
	numResources
)

// NumResources is the number of SSD computation resources.
const NumResources = int(numResources)

// AllResources lists the resources in cost-function evaluation order.
var AllResources = [...]Resource{ResISP, ResPuD, ResIFP}

// String names the resource.
func (r Resource) String() string {
	switch r {
	case ResISP:
		return "ISP"
	case ResPuD:
		return "PuD-SSD"
	case ResIFP:
		return "IFP"
	default:
		return fmt.Sprintf("isa.Resource(%d)", uint8(r))
	}
}

// Supports reports whether resource r can execute op natively.
//
// The capability matrix follows §4.3.2: ISP executes the full instruction
// set (~300 ARM/MVE instructions); PuD-SSD supports 16 operations
// (bitwise, arithmetic, predication, relational, copy); IFP supports nine
// operations — six bulk bitwise operations via multi-wordline sensing plus
// addition, multiplication and shifting via the page-buffer latches.
func Supports(r Resource, op Op) bool {
	switch r {
	case ResISP:
		return true
	case ResPuD:
		switch op {
		case OpAnd, OpOr, OpXor, OpNot, OpNand, OpNor,
			OpAdd, OpSub, OpMul,
			OpLT, OpGT, OpEQ, OpMin, OpMax, OpSelect,
			OpCopy, OpBroadcast, OpShuffle, OpShl, OpShr:
			return true
		}
		return false
	case ResIFP:
		switch op {
		case OpAnd, OpOr, OpXor, OpNot, OpNand, OpNor,
			OpAdd, OpMul, OpShl, OpShr:
			return true
		}
		return false
	default:
		return false
	}
}

// Native returns the native-ISA mnemonic the instruction transformation
// unit emits for op on resource r (§4.3.2: MVE for ISP, bbop extensions
// from SIMDRAM/MIMDRAM/Proteus for PuD-SSD, MWS primitives from
// Flash-Cosmos and shift_and_add from Ares-Flash for IFP). It returns an
// error when r does not support op.
func Native(r Resource, op Op) (string, error) {
	if !Supports(r, op) {
		return "", fmt.Errorf("isa: %v does not support %v", r, op)
	}
	switch r {
	case ResISP:
		if op == OpScalar {
			return "arm.branchy", nil
		}
		return "mve.v" + op.String(), nil
	case ResPuD:
		return "bbop_" + op.String(), nil
	case ResIFP:
		switch op.Class() {
		case ClassBitwise:
			if op == OpShl || op == OpShr {
				return "latch_shift_" + op.String(), nil
			}
			return "mws_" + op.String(), nil
		default:
			return "shift_and_add_" + op.String(), nil
		}
	}
	return "", fmt.Errorf("isa: unknown resource %v", r)
}

// TranslationTable is the in-DRAM table the instruction transformation unit
// consults at runtime (§4.5): one four-byte entry per (operation, resource)
// pair that the resource supports.
type TranslationTable struct {
	entries map[uint16]string
}

// BuildTranslationTable precomputes all supported translations.
func BuildTranslationTable() *TranslationTable {
	t := &TranslationTable{entries: make(map[uint16]string)}
	for _, r := range AllResources {
		for op := Op(0); op < numOps; op++ {
			if n, err := Native(r, op); err == nil {
				t.entries[key(r, op)] = n
			}
		}
	}
	return t
}

func key(r Resource, op Op) uint16 { return uint16(r)<<8 | uint16(op) }

// Lookup returns the native mnemonic for (r, op), mirroring the 300 ns
// table lookup the paper charges for instruction transformation.
func (t *TranslationTable) Lookup(r Resource, op Op) (string, bool) {
	n, ok := t.entries[key(r, op)]
	return n, ok
}

// Entries reports the number of table entries.
func (t *TranslationTable) Entries() int { return len(t.entries) }

// SizeBytes reports the table's storage overhead in SSD DRAM at four bytes
// per entry (§4.5 reports ≈1.5 KiB for the full ~300-operation ISP set;
// our IR is the workload-covering subset of that set).
func (t *TranslationTable) SizeBytes() int { return 4 * len(t.entries) }
