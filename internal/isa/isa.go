package isa

import "fmt"

// Op is a vector IR operation.
type Op uint8

// Vector IR operations. The set covers the operations observed in the six
// evaluated workloads: bulk bitwise, integer arithmetic, predication and
// relational, data movement, reduction, shuffle, and opaque scalar
// (non-vectorizable control) work.
const (
	OpAnd Op = iota
	OpOr
	OpXor
	OpNot
	OpNand
	OpNor
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpShl
	OpShr
	OpLT
	OpGT
	OpEQ
	OpMin
	OpMax
	OpSelect
	OpCopy
	OpBroadcast
	OpReduceAdd
	OpShuffle
	OpScalar // opaque non-vectorized control/bookkeeping region
	numOps
)

// NumOps reports the size of the IR operation set.
const NumOps = int(numOps)

var opNames = [...]string{
	"and", "or", "xor", "not", "nand", "nor",
	"add", "sub", "mul", "div", "shl", "shr",
	"lt", "gt", "eq", "min", "max", "select",
	"copy", "broadcast", "reduce_add", "shuffle", "scalar",
}

// String names the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("isa.Op(%d)", uint8(o))
}

// Class groups operations the way the paper's cost function consumes them
// (Table 1, "operation type").
type Class uint8

// Operation classes.
const (
	ClassBitwise Class = iota
	ClassArithmetic
	ClassPredication
	ClassMove
	ClassReduction
	ClassControl
)

// String names the class.
func (c Class) String() string {
	return [...]string{"bitwise", "arithmetic", "predication", "move", "reduction", "control"}[c]
}

// Class reports the operation's class.
func (o Op) Class() Class {
	switch o {
	case OpAnd, OpOr, OpXor, OpNot, OpNand, OpNor, OpShl, OpShr:
		return ClassBitwise
	case OpAdd, OpSub, OpMul, OpDiv:
		return ClassArithmetic
	case OpLT, OpGT, OpEQ, OpMin, OpMax, OpSelect:
		return ClassPredication
	case OpCopy, OpBroadcast, OpShuffle:
		return ClassMove
	case OpReduceAdd:
		return ClassReduction
	case OpScalar:
		return ClassControl
	default:
		panic(fmt.Sprintf("isa: unclassified op %v", o))
	}
}

// LatencyBand is the workload-characterization band of Table 3.
type LatencyBand uint8

// Latency bands (Table 3: low = bitwise/logical, medium = add/predication,
// high = multiplication and other long operations).
const (
	LatencyLow LatencyBand = iota
	LatencyMedium
	LatencyHigh
)

// String names the band.
func (b LatencyBand) String() string {
	return [...]string{"low", "medium", "high"}[b]
}

// Band reports the operation's latency band.
func (o Op) Band() LatencyBand {
	switch o {
	case OpAnd, OpOr, OpXor, OpNot, OpNand, OpNor, OpShl, OpShr, OpCopy, OpBroadcast:
		return LatencyLow
	case OpAdd, OpSub, OpLT, OpGT, OpEQ, OpMin, OpMax, OpSelect, OpScalar, OpShuffle:
		return LatencyMedium
	case OpMul, OpDiv, OpReduceAdd:
		return LatencyHigh
	default:
		panic(fmt.Sprintf("isa: unbanded op %v", o))
	}
}

// Arity reports how many vector sources the operation consumes.
func (o Op) Arity() int {
	switch o {
	case OpNot, OpCopy, OpReduceAdd, OpShuffle:
		return 1
	case OpShl, OpShr: // shift amount is the immediate
		return 1
	case OpBroadcast, OpScalar:
		return 0
	case OpSelect:
		return 3
	default:
		return 2
	}
}

// ScalarCyclesPerLane is the controller-core cost of one un-vectorized
// lane operation (scalar load/op/store); shared by the compiler's work
// estimator and the ISP execution model.
const ScalarCyclesPerLane = 4

// ImmReplacesSrc reports whether UseImm substitutes the operation's last
// vector source with a broadcast immediate. For shifts and shuffles the
// immediate is an intrinsic parameter (shift amount, rotation) and does not
// replace a source.
func (o Op) ImmReplacesSrc() bool {
	switch o {
	case OpShl, OpShr, OpShuffle, OpBroadcast, OpScalar:
		return false
	default:
		return o.Arity() > 0
	}
}

// PageID is a logical page number in the SSD's logical address space. Every
// vector operand occupies exactly one logical page (the compile-time pass
// aligns vectors to the flash page size, §4.3.1).
type PageID int32

// NoPage marks an absent operand (e.g. the destination of scalar work).
const NoPage PageID = -1

// Meta is the lightweight metadata the compiler embeds with each vector
// operation to keep runtime offloading decisions cheap (§4.3.1).
type Meta struct {
	Class        Class // operation type feature of the cost function
	Unvectorized bool  // true for strip-mined remainders and loops the
	// vectorizer rejected: they execute lane-serially on the controller
	// cores (ISP), matching §7's auto-vectorization limits
	LoopID       int // source loop, for reporting
	OperandBytes int // total operand footprint in bytes
}

// Inst is one vector IR instruction.
type Inst struct {
	ID     int    // position in the program, used as the dependence key
	Op     Op     // operation
	Dst    PageID // destination logical page (NoPage for scalar work)
	Srcs   []PageID
	Imm    uint64 // immediate operand (shift amount, broadcast value, ...)
	UseImm bool   // when set, the last source lane input is the immediate
	Elem   int    // element size in bytes (1, 2 or 4)
	Lanes  int    // vector lanes; Lanes*Elem = vector footprint in bytes

	// ScalarCycles is the controller-core cycle cost of an OpScalar
	// region (control-intensive code that was not vectorized).
	ScalarCycles int64

	Deps []int // IDs of instructions producing this instruction's operands
	Meta Meta
}

// VectorBytes reports the instruction's vector footprint.
func (in *Inst) VectorBytes() int { return in.Lanes * in.Elem }

// Program is a compiled instruction stream plus its data layout.
type Program struct {
	Name  string
	Insts []Inst
	// Pages is the number of logical pages the program addresses; valid
	// PageIDs are [0, Pages).
	Pages int
	// InputPages lists pages holding application input data that reside
	// on flash when execution starts (§4.4: all application data resides
	// in the SSD at the start).
	InputPages []PageID
	// OutputPages lists pages whose final values the host may read back;
	// pages outside this set are compiler temporaries whose values die at
	// their last reference, which the runtime exploits to skip useless
	// write-backs.
	OutputPages []PageID
}

// Validate checks structural well-formedness: operand counts match the
// operation arity, page IDs are in range, dependence edges point backwards
// to real producers, and element/lane geometry is sane.
func (p *Program) Validate() error {
	producers := make(map[PageID]int)
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.ID != i {
			return fmt.Errorf("isa: inst %d has ID %d; IDs must be positional", i, in.ID)
		}
		if in.Op >= numOps {
			return fmt.Errorf("isa: inst %d has unknown op %d", i, uint8(in.Op))
		}
		if in.Op == OpScalar {
			if in.ScalarCycles <= 0 {
				return fmt.Errorf("isa: scalar inst %d needs positive cycle cost", i)
			}
		} else {
			if in.Elem != 1 && in.Elem != 2 && in.Elem != 4 {
				return fmt.Errorf("isa: inst %d has element size %d", i, in.Elem)
			}
			if in.Lanes <= 0 {
				return fmt.Errorf("isa: inst %d has %d lanes", i, in.Lanes)
			}
			if in.Dst == NoPage && in.Op != OpScalar {
				return fmt.Errorf("isa: inst %d (%v) lacks a destination", i, in.Op)
			}
		}
		wantSrcs := in.Op.Arity()
		if in.UseImm && in.Op.ImmReplacesSrc() {
			wantSrcs--
		}
		if in.Op != OpScalar && len(in.Srcs) != wantSrcs {
			return fmt.Errorf("isa: inst %d (%v) has %d sources, want %d",
				i, in.Op, len(in.Srcs), wantSrcs)
		}
		for _, s := range in.Srcs {
			if s < 0 || int(s) >= p.Pages {
				return fmt.Errorf("isa: inst %d source page %d out of range [0,%d)", i, s, p.Pages)
			}
		}
		if in.Dst != NoPage && int(in.Dst) >= p.Pages {
			return fmt.Errorf("isa: inst %d destination page %d out of range", i, in.Dst)
		}
		for _, d := range in.Deps {
			if d < 0 || d >= i {
				return fmt.Errorf("isa: inst %d dependence %d is not an earlier instruction", i, d)
			}
		}
		if in.Dst != NoPage {
			producers[in.Dst] = i
		}
	}
	return nil
}

// InferDeps fills in Deps from producer/consumer page relationships:
// an instruction depends on the most recent earlier instruction that wrote
// any of its source pages (RAW), and on the most recent earlier reader or
// writer of its destination page (WAR/WAW), which serializes page reuse.
func (p *Program) InferDeps() {
	lastWriter := make(map[PageID]int)
	lastAccess := make(map[PageID]int)
	for i := range p.Insts {
		in := &p.Insts[i]
		deps := map[int]bool{}
		for _, s := range in.Srcs {
			if w, ok := lastWriter[s]; ok {
				deps[w] = true
			}
		}
		if in.Dst != NoPage {
			if a, ok := lastAccess[in.Dst]; ok && a != i {
				deps[a] = true
			}
		}
		in.Deps = in.Deps[:0]
		for d := range deps {
			in.Deps = append(in.Deps, d)
		}
		sortInts(in.Deps)
		for _, s := range in.Srcs {
			lastAccess[s] = i
		}
		if in.Dst != NoPage {
			lastWriter[in.Dst] = i
			lastAccess[in.Dst] = i
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
