// Package isa defines Conduit's vector intermediate representation: the
// page-aligned SIMD instructions that the compile-time pass emits (§4.3.1)
// and the runtime offloader schedules (§4.3.2), together with the
// capability matrix of the three SSD computation resources and the
// instruction transformation tables that map each vector operation to the
// native ISA of its target resource (MVE for ISP, bbop for PuD-SSD,
// MWS/shift-and-add for IFP).
package isa
