package isa

import (
	"testing"
	"testing/quick"
)

func TestEveryOpHasNameClassBandArity(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has no name", op)
		}
		_ = op.Class() // panics on gap
		_ = op.Band()
		if a := op.Arity(); a < 0 || a > 3 {
			t.Errorf("%v arity %d out of range", op, a)
		}
	}
}

func TestClassAndBandAssignments(t *testing.T) {
	if OpAnd.Class() != ClassBitwise || OpAnd.Band() != LatencyLow {
		t.Error("AND should be low-latency bitwise")
	}
	if OpAdd.Class() != ClassArithmetic || OpAdd.Band() != LatencyMedium {
		t.Error("ADD should be medium-latency arithmetic")
	}
	if OpMul.Band() != LatencyHigh {
		t.Error("MUL should be high-latency (Table 3)")
	}
	if OpLT.Class() != ClassPredication {
		t.Error("LT should be predication")
	}
	if OpScalar.Class() != ClassControl {
		t.Error("scalar regions are control class")
	}
}

func TestCapabilityMatrix(t *testing.T) {
	// ISP runs everything.
	for op := Op(0); op < numOps; op++ {
		if !Supports(ResISP, op) {
			t.Errorf("ISP must support %v", op)
		}
	}
	// PuD-SSD supports its published compute set plus in-array data
	// movement (broadcast/shuffle as RowClone/LISA copies, shifts as
	// bit-serial row renames); notably not division, reductions, or
	// scalar control.
	for _, op := range []Op{OpDiv, OpReduceAdd, OpScalar} {
		if Supports(ResPuD, op) {
			t.Errorf("PuD-SSD must not support %v", op)
		}
	}
	pudCount := 0
	for op := Op(0); op < numOps; op++ {
		if Supports(ResPuD, op) {
			pudCount++
		}
	}
	if pudCount != 20 { // 16 published ops + 4 in-array movement forms
		t.Errorf("PuD supports %d ops, want 20", pudCount)
	}
	// IFP: six bitwise + add + mul + shifts; no sub/div/predication.
	ifpCount := 0
	for op := Op(0); op < numOps; op++ {
		if Supports(ResIFP, op) {
			ifpCount++
		}
	}
	if ifpCount != 10 {
		t.Errorf("IFP supports %d ops, want 10", ifpCount)
	}
	for _, op := range []Op{OpSub, OpDiv, OpLT, OpSelect, OpCopy, OpScalar} {
		if Supports(ResIFP, op) {
			t.Errorf("IFP must not support %v", op)
		}
	}
}

func TestNativeMnemonics(t *testing.T) {
	cases := []struct {
		r    Resource
		op   Op
		want string
	}{
		{ResISP, OpAdd, "mve.vadd"},
		{ResISP, OpScalar, "arm.branchy"},
		{ResPuD, OpMul, "bbop_mul"},
		{ResIFP, OpAnd, "mws_and"},
		{ResIFP, OpMul, "shift_and_add_mul"},
		{ResIFP, OpShl, "latch_shift_shl"},
	}
	for _, c := range cases {
		got, err := Native(c.r, c.op)
		if err != nil || got != c.want {
			t.Errorf("Native(%v,%v) = %q,%v want %q", c.r, c.op, got, err, c.want)
		}
	}
	if _, err := Native(ResIFP, OpDiv); err == nil {
		t.Error("unsupported translation should error")
	}
}

func TestTranslationTable(t *testing.T) {
	tab := BuildTranslationTable()
	// Every supported pair is present and matches Native.
	for _, r := range AllResources {
		for op := Op(0); op < numOps; op++ {
			n, ok := tab.Lookup(r, op)
			if Supports(r, op) != ok {
				t.Fatalf("table/Supports disagree for %v/%v", r, op)
			}
			if ok {
				want, _ := Native(r, op)
				if n != want {
					t.Fatalf("table entry %v/%v = %q, want %q", r, op, n, want)
				}
			}
		}
	}
	// §4.5: the table costs ~1.5 KiB; our subset must stay within that.
	if tab.SizeBytes() <= 0 || tab.SizeBytes() > 1536 {
		t.Errorf("translation table is %d bytes, want (0, 1536]", tab.SizeBytes())
	}
}

func validProgram() *Program {
	p := &Program{
		Name:  "t",
		Pages: 4,
		Insts: []Inst{
			{ID: 0, Op: OpBroadcast, Dst: 0, Imm: 7, UseImm: true, Elem: 1, Lanes: 64},
			{ID: 1, Op: OpAdd, Dst: 1, Srcs: []PageID{0, 0}, Elem: 1, Lanes: 64},
			{ID: 2, Op: OpMul, Dst: 2, Srcs: []PageID{1, 0}, Elem: 1, Lanes: 64},
			{ID: 3, Op: OpScalar, Dst: NoPage, ScalarCycles: 100},
		},
	}
	return p
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	p := validProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Program)
	}{
		{"bad id", func(p *Program) { p.Insts[1].ID = 5 }},
		{"bad elem", func(p *Program) { p.Insts[1].Elem = 3 }},
		{"no lanes", func(p *Program) { p.Insts[1].Lanes = 0 }},
		{"wrong arity", func(p *Program) { p.Insts[1].Srcs = p.Insts[1].Srcs[:1] }},
		{"page out of range", func(p *Program) { p.Insts[1].Srcs[0] = 99 }},
		{"dst out of range", func(p *Program) { p.Insts[1].Dst = 99 }},
		{"forward dep", func(p *Program) { p.Insts[1].Deps = []int{2} }},
		{"self dep", func(p *Program) { p.Insts[1].Deps = []int{1} }},
		{"scalar without cycles", func(p *Program) { p.Insts[3].ScalarCycles = 0 }},
		{"missing dst", func(p *Program) { p.Insts[1].Dst = NoPage }},
	}
	for _, m := range mutations {
		p := validProgram()
		m.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted broken program", m.name)
		}
	}
}

func TestInferDepsRAWAndWAW(t *testing.T) {
	p := &Program{
		Pages: 4,
		Insts: []Inst{
			{ID: 0, Op: OpBroadcast, Dst: 0, UseImm: true, Imm: 1, Elem: 1, Lanes: 8},
			{ID: 1, Op: OpBroadcast, Dst: 1, UseImm: true, Imm: 2, Elem: 1, Lanes: 8},
			{ID: 2, Op: OpAdd, Dst: 2, Srcs: []PageID{0, 1}, Elem: 1, Lanes: 8},       // RAW on 0,1
			{ID: 3, Op: OpAdd, Dst: 0, Srcs: []PageID{2, 1}, Elem: 1, Lanes: 8},       // RAW on 2; WAR on 0 (read by 2)
			{ID: 4, Op: OpBroadcast, Dst: 2, UseImm: true, Imm: 3, Elem: 1, Lanes: 8}, // WAW/WAR on 2
		},
	}
	p.InferDeps()
	wantDeps := [][]int{{}, {}, {0, 1}, {1, 2}, {3}}
	for i, want := range wantDeps {
		got := p.Insts[i].Deps
		if len(got) != len(want) {
			t.Fatalf("inst %d deps = %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("inst %d deps = %v, want %v", i, got, want)
			}
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid after InferDeps: %v", err)
	}
}

// Property: InferDeps always yields a program that passes validation, with
// all dependence edges pointing strictly backwards.
func TestInferDepsAlwaysBackwardProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := newRand(seed)
		count := int(n)%20 + 2
		p := &Program{Pages: 6}
		for i := 0; i < count; i++ {
			in := Inst{ID: i, Op: OpAdd, Elem: 1, Lanes: 8,
				Dst:  PageID(r(6)),
				Srcs: []PageID{PageID(r(6)), PageID(r(6))}}
			p.Insts = append(p.Insts, in)
		}
		p.InferDeps()
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// newRand returns a tiny deterministic generator for property tests.
func newRand(seed uint64) func(n int) int {
	state := seed
	return func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
}

func TestVectorBytes(t *testing.T) {
	in := Inst{Lanes: 4096, Elem: 4}
	if in.VectorBytes() != 16384 {
		t.Fatalf("VectorBytes = %d, want 16384", in.VectorBytes())
	}
}
