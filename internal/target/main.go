package target

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	conduit "conduit"
)

// Main is the conduit-target entry point, factored here so the wiretest
// harness can re-exec the test binary into a real target process. It
// prints "LISTENING <addr>" on stdout once the listener is bound (the
// contract harnesses and fleet scripts parse), serves until SIGTERM,
// SIGINT, or a Drain frame, and returns the process exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("conduit-target", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:0", "TCP listen address (port 0 picks a free port)")
	name := fs.String("name", "target", "target name reported in Hello and Snapshot frames")
	scale := fs.Int("scale", 1, "workload scale factor")
	shards := fs.Int("shards", 1, "simulated drives per workload (>1 registers sharded clusters)")
	mix := fs.String("mix", "all", "comma-separated workloads to register (\"all\" = evaluation suite)")
	concurrency := fs.Int("concurrency", 0, "simultaneously executing requests (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission-queue depth (0 = 4x concurrency)")
	prefork := fs.Int("prefork", 2, "pre-forked devices per application (0 disables pooling)")
	coalesce := fs.Bool("coalesce", true, "share one execution among identical in-flight requests")
	memoize := fs.Bool("memoize", false, "cache each (workload, policy) result for the whole run")
	faults := fs.Float64("faults", 0, "master injected-fault rate (0 disables chaos)")
	faultseed := fs.Uint64("faultseed", 42, "chaos RNG seed")
	retries := fs.Int("retries", 3, "max attempts per shard sub-run when recovery is active")
	hedge := fs.Bool("hedge", false, "hedge straggler shards with a duplicate dispatch")
	hedgethreshold := fs.Float64("hedgethreshold", 8, "straggler multiple that triggers a hedge")
	breaker := fs.Int("breaker", 0, "circuit-breaker consecutive-failure threshold per shard (0 disables)")
	fallback := fs.String("fallback", "", "policy served while a breaker is open (empty refuses)")
	faultlog := fs.String("faultlog", "", "write the injected-fault schedule as JSONL to `file` on drain")
	faultreplay := fs.String("faultreplay", "", "replay the recorded fault schedule in `file` instead of drawing from -faults")
	tracesample := fs.Int("tracesample", 0, "trace every Nth locally submitted request (0 = only wire-sampled requests)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := Options{
		Name:         *name,
		Scale:        *scale,
		Shards:       *shards,
		FaultLogPath: *faultlog,
		Serve: conduit.ServeOptions{
			Concurrency: *concurrency,
			QueueDepth:  *queue,
			Prefork:     *prefork,
			Coalesce:    *coalesce,
			Memoize:     *memoize,
			// Targets always arm the tracer so wire-sampled requests can be
			// recorded on demand, and always leave the wall clock unset: a
			// target's spans cross the wire, where only the deterministic
			// simulated timeline is welcome.
			Trace: &conduit.TraceOptions{SampleEvery: *tracesample},
		},
	}
	if *mix != "all" && *mix != "" {
		for _, w := range strings.Split(*mix, ",") {
			if w = strings.TrimSpace(w); w != "" {
				opts.Mix = append(opts.Mix, w)
			}
		}
	}
	chaos := *faults > 0 || *faultreplay != ""
	if chaos {
		opts.Serve.Recovery = conduit.RecoveryOptions{
			MaxAttempts:      *retries,
			Hedge:            *hedge,
			HedgeThreshold:   *hedgethreshold,
			BreakerThreshold: *breaker,
			FallbackPolicy:   *fallback,
		}
		if *fallback != "" && !conduit.KnownPolicy(*fallback) {
			fmt.Fprintf(stderr, "conduit-target: unknown -fallback policy %q\n", *fallback)
			return 2
		}
	}
	switch {
	case *faultreplay != "":
		rf, err := conduit.ReadFaultLog(*faultreplay)
		if err != nil {
			fmt.Fprintf(stderr, "conduit-target: faultreplay: %v\n", err)
			return 2
		}
		opts.Serve.ReplayFaults = rf
	case *faults > 0:
		cfg := conduit.FaultsAtRate(*faults, 0, *faultseed)
		opts.Serve.Faults = &cfg
	}

	s, err := New(*listen, opts)
	if err != nil {
		fmt.Fprintf(stderr, "conduit-target: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "LISTENING %s\n", s.Addr())
	fmt.Fprintf(stderr, "conduit-target %s: %d workload(s), %d shard(s); serving on %s\n",
		*name, len(s.Workloads()), *shards, s.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		<-sigc
		signal.Stop(sigc)
		fmt.Fprintf(stderr, "conduit-target %s: draining\n", *name)
		s.Drain()
	}()

	s.Serve()
	fmt.Fprintf(stderr, "conduit-target %s: drained\n", *name)
	return 0
}
