package target

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	conduit "conduit"
	"conduit/internal/metrics"
	"conduit/internal/serve"
	"conduit/internal/trace"
	"conduit/internal/wire"
	"conduit/internal/workloads"
)

// Options configures one target process.
type Options struct {
	// Name identifies the target in Hello and Snapshot frames.
	Name string
	// Scale is the workload scale factor.
	Scale int
	// Shards registers every workload as an N-device cluster when > 1.
	Shards int
	// Mix selects the registered workloads; empty registers the whole
	// evaluation suite.
	Mix []string
	// Serve tunes the wrapped conduit.Server (pools, batching, chaos,
	// recovery ladder).
	Serve conduit.ServeOptions
	// FaultLogPath, when set, writes the injected-fault schedule as
	// JSONL when the target drains.
	FaultLogPath string
}

// Server is one running target: a conduit.Server behind a TCP
// listener speaking the framed protocol.
type Server struct {
	opts  Options
	srv   *conduit.Server
	names []string // registered workloads, sorted
	ln    net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]bool
	draining bool

	reqWG  sync.WaitGroup // in-flight request responders
	connWG sync.WaitGroup // connection read loops
	done   chan struct{}  // closed when the drain has fully completed
}

// New registers the configured workloads on a fresh conduit.Server and
// binds the listener. Callers then run Serve (blocking) and eventually
// Drain.
func New(listen string, opts Options) (*Server, error) {
	if opts.Name == "" {
		opts.Name = "target"
	}
	if opts.Scale < 1 {
		opts.Scale = 1
	}
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	var chosen []workloads.Named
	if len(opts.Mix) == 0 {
		chosen = workloads.All(opts.Scale)
	} else {
		seen := make(map[string]bool)
		for _, name := range opts.Mix {
			w, ok := workloads.Find(name, opts.Scale)
			if !ok {
				return nil, fmt.Errorf("target: unknown workload %q", name)
			}
			if seen[w.Name] {
				continue
			}
			seen[w.Name] = true
			chosen = append(chosen, w)
		}
	}
	srv := conduit.NewServer(conduit.DefaultConfig(), opts.Serve)
	names := make([]string, 0, len(chosen))
	for _, w := range chosen {
		var err error
		if opts.Shards > 1 {
			err = srv.RegisterSharded(w.Name, w.Source, opts.Shards)
		} else {
			err = srv.Register(w.Name, w.Source)
		}
		if err != nil {
			srv.Drain()
			return nil, fmt.Errorf("target: register %s: %v", w.Name, err)
		}
		names = append(names, w.Name)
	}
	sort.Strings(names)
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		srv.Drain()
		return nil, err
	}
	return &Server{
		opts:  opts,
		srv:   srv,
		names: names,
		ln:    ln,
		conns: make(map[net.Conn]bool),
		done:  make(chan struct{}),
	}, nil
}

// Addr is the bound listen address (resolves ":0" for harnesses).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Workloads lists the registered workload names, sorted.
func (s *Server) Workloads() []string { return append([]string(nil), s.names...) }

// Serve accepts connections until Drain closes the listener. It
// returns after the drain has fully completed: every in-flight request
// answered, every pool closed, every connection torn down.
func (s *Server) Serve() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			break // listener closed by Drain
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
	<-s.done
	s.connWG.Wait()
}

// Drain performs the graceful shutdown: stop accepting, reject new
// requests with CodeDraining, wait out in-flight executions, close
// every device pool, persist the fault log if configured, and finally
// close every connection. Idempotent; concurrent callers all block
// until the one drain completes.
func (s *Server) Drain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		<-s.done
		return
	}
	s.ln.Close()
	// Drain the engine first: in-flight requests complete and their
	// responder goroutines write the responses; reqWG then guarantees
	// those writes happened before any connection is closed.
	s.srv.Drain()
	s.reqWG.Wait()
	if s.opts.FaultLogPath != "" {
		if log := s.srv.FaultLog(); log != nil {
			// Best effort: a target dying on a full disk should still
			// finish its drain.
			_ = conduit.WriteFaultLog(s.opts.FaultLogPath, log)
		}
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.conns = nil
	s.mu.Unlock()
	close(s.done)
}

// PoolRows reports the server's device-pool counters as wire rows —
// after Drain they are the "no leaked forks" evidence the DrainAck
// carries.
func (s *Server) PoolRows() []wire.PoolRow { return WirePools(s.srv.PoolStats()) }

// conn wraps one connection with a write lock: request responders
// complete concurrently and interleave whole frames, never bytes.
type connState struct {
	net.Conn
	wmu sync.Mutex
}

func (c *connState) writeFrame(f wire.Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return wire.WriteFrame(c.Conn, f)
}

func (s *Server) handleConn(raw net.Conn) {
	defer s.connWG.Done()
	c := &connState{Conn: raw}
	defer func() {
		s.mu.Lock()
		delete(s.conns, raw)
		s.mu.Unlock()
		raw.Close()
	}()
	if err := c.writeFrame(wire.Hello{
		Target:    s.opts.Name,
		Shards:    int64(s.opts.Shards),
		Workloads: s.names,
	}); err != nil {
		return
	}
	for {
		f, err := wire.ReadFrame(c.Conn)
		if err != nil {
			return // peer gone, protocol violation, or drain closed us
		}
		switch fr := f.(type) {
		case wire.Request:
			s.handleRequest(c, fr)
		case wire.SnapshotReq:
			if err := c.writeFrame(s.snapshot(fr.ID)); err != nil {
				return
			}
		case wire.MetricsReq:
			if err := c.writeFrame(wire.Metrics{
				ID:      fr.ID,
				Target:  s.opts.Name,
				Samples: metrics.ToWire(s.srv.Metrics()),
			}); err != nil {
				return
			}
		case wire.Drain:
			// Unregister this connection first so Drain's teardown loop
			// does not close it out from under the ack; the deferred
			// cleanup closes it after the ack is written.
			s.mu.Lock()
			delete(s.conns, raw)
			s.mu.Unlock()
			s.Drain()
			_ = c.writeFrame(wire.DrainAck{ID: fr.ID, Pools: s.PoolRows()})
			return
		default:
			// Targets never accept Hello/Response/Snapshot/DrainAck; a
			// peer sending one is broken, so hang up.
			return
		}
	}
}

// handleRequest validates and submits one request, answering from a
// responder goroutine when the open-loop execution completes.
func (s *Server) handleRequest(c *connState, req wire.Request) {
	if code, msg := s.validate(req); code != wire.CodeOK {
		_ = c.writeFrame(wire.Response{ID: req.ID, Code: code, Error: msg})
		return
	}
	ch, err := s.srv.Submit(conduit.Request{
		Tenant:   req.Tenant,
		Workload: req.Workload,
		Policy:   req.Policy,
		Deadline: time.Duration(req.DeadlineNS),
		Trace: conduit.TraceCtx{
			ID:      req.Trace.ID,
			Parent:  req.Trace.Parent,
			Sampled: req.Trace.Sampled,
		},
	})
	if err != nil {
		// Shed at admission or draining: answered inline, never executed.
		_ = c.writeFrame(WireResponse(req.ID, nil, err))
		return
	}
	s.reqWG.Add(1)
	go func() {
		defer s.reqWG.Done()
		resp := <-ch
		_ = c.writeFrame(WireResponse(req.ID, resp, resp.Err))
	}()
}

// validate rejects requests the protocol can see are wrong before they
// touch the serve engine (and its tenant accounting): unknown
// workloads and policies, and shard-sets that do not name exactly the
// shards this target owns. The shard-set field is placement metadata —
// a future router may split a request across partial owners, but a
// current target serves all its shards or none.
func (s *Server) validate(req wire.Request) (wire.Code, string) {
	if !s.serves(req.Workload) {
		return wire.CodeBadRequest, fmt.Sprintf("target %s: workload %q not registered", s.opts.Name, req.Workload)
	}
	if !conduit.KnownPolicy(req.Policy) {
		return wire.CodeBadRequest, fmt.Sprintf("target %s: unknown policy %q", s.opts.Name, req.Policy)
	}
	if len(req.Shards) > 0 {
		if len(req.Shards) != s.opts.Shards {
			return wire.CodeBadRequest, fmt.Sprintf("target %s: partial shard-set (%d of %d) unsupported",
				s.opts.Name, len(req.Shards), s.opts.Shards)
		}
		seen := make(map[uint32]bool, len(req.Shards))
		for _, sh := range req.Shards {
			if int(sh) >= s.opts.Shards || seen[sh] {
				return wire.CodeBadRequest, fmt.Sprintf("target %s: bad shard-set entry %d", s.opts.Name, sh)
			}
			seen[sh] = true
		}
	}
	return wire.CodeOK, ""
}

func (s *Server) serves(workload string) bool {
	i := sort.SearchStrings(s.names, workload)
	return i < len(s.names) && s.names[i] == workload
}

// snapshot renders the server's current accounting as a wire frame.
func (s *Server) snapshot(id uint64) wire.Snapshot {
	return wire.Snapshot{
		ID:      id,
		Target:  s.opts.Name,
		Tenants: WireTenants(s.srv.Tenants()),
		Pools:   s.PoolRows(),
		Wall:    s.srv.Latencies(),
	}
}

// ---- projections shared with the equivalence harness ----

// WireResponse projects one served response (or admission error) onto
// its outcome capsule. The projection keeps only deterministic fields —
// simulated elapsed time, energy, recovery accounting, the result
// summary, and the sampled spans' simulated timeline — so the capsule
// for a request is identical whether the serving engine ran in this
// process or across the wire, which is the identity wiretest pins.
func WireResponse(id uint64, resp *conduit.Response, err error) wire.Response {
	out := wire.Response{ID: id}
	if resp != nil {
		out.ElapsedSimNS = int64(resp.Outcome.Elapsed)
		out.EnergyJ = resp.Outcome.EnergyJ
		out.Recovery = wireRecovery(resp.Outcome.Recovery)
		if resp.Trace != nil {
			// Spans ride home on error responses too: a failed request's
			// retry and fault events are exactly what the trace is for.
			out.Spans = trace.ToWire(resp.Trace.Spans())
		}
	}
	if err != nil {
		out.Code = codeFor(err)
		msg := err.Error()
		if msg == "" {
			msg = "target: unspecified error"
		}
		if len(msg) > wire.MaxString {
			msg = msg[:wire.MaxString]
		}
		out.Error = msg
		return out
	}
	r := conduit.ResultOf(resp)
	if r == nil {
		out.Code = wire.CodeError
		out.Error = "target: response carried no result"
		return out
	}
	res := &wire.Result{
		Policy:          r.Policy,
		ComputeEnergyJ:  r.ComputeEnergy,
		MovementEnergyJ: r.MovementEnergy,
		OverheadNS:      int64(r.OverheadTime),
		Decisions:       int64(len(r.Decisions)),
	}
	if r.InstLatencies != nil {
		res.InstCount = int64(r.InstLatencies.Count())
		res.InstMeanNS = int64(r.InstLatencies.Mean())
	}
	if r.Counters != nil {
		for _, name := range r.Counters.Names() {
			res.Counters = append(res.Counters, wire.Counter{Name: name, Value: r.Counters.Get(name)})
		}
	}
	out.Code = wire.CodeOK
	out.Result = res
	return out
}

// codeFor maps the serving tier's typed errors onto response codes.
func codeFor(err error) wire.Code {
	switch {
	case errors.Is(err, conduit.ErrOverloaded):
		return wire.CodeOverloaded
	case errors.Is(err, conduit.ErrDeadlineExceeded):
		return wire.CodeDeadline
	case errors.Is(err, conduit.ErrDraining):
		return wire.CodeDraining
	case errors.Is(err, conduit.ErrCircuitOpen):
		return wire.CodeCircuitOpen
	}
	return wire.CodeError
}

// ErrFor reverses codeFor on the router side: typed conditions come
// back as the same sentinel errors in-process callers match on.
func ErrFor(code wire.Code, msg string) error {
	var base error
	switch code {
	case wire.CodeOK:
		return nil
	case wire.CodeOverloaded:
		base = conduit.ErrOverloaded
	case wire.CodeDeadline:
		base = conduit.ErrDeadlineExceeded
	case wire.CodeDraining:
		base = conduit.ErrDraining
	case wire.CodeCircuitOpen:
		base = conduit.ErrCircuitOpen
	default:
		return errors.New(msg)
	}
	if msg == base.Error() {
		return base
	}
	return fmt.Errorf("%s: %w", msg, base)
}

func wireRecovery(r serve.Recovery) wire.Recovery {
	return wire.Recovery{
		Attempts:     r.Attempts,
		Retries:      r.Retries,
		Hedges:       r.Hedges,
		HedgeWins:    r.HedgeWins,
		Fallbacks:    r.Fallbacks,
		Injected:     r.Injected,
		BackoffSimNS: int64(r.BackoffSim),
	}
}

// WireTenants projects per-tenant accounting snapshots onto their
// deterministic wire rows: every count, the recovery totals, simulated
// time, and energy — but no wall-clock percentile, which is the
// histogram's job.
func WireTenants(snaps []conduit.TenantSnapshot) []wire.TenantRow {
	rows := make([]wire.TenantRow, len(snaps))
	for i, t := range snaps {
		rows[i] = wire.TenantRow{
			Tenant:   t.Tenant,
			Requests: t.Requests,
			Errors:   t.Errors,
			Shed:     t.Shed,
			Expired:  t.Expired,
			Shared:   t.Shared,
			Attained: t.Attained,
			Recovery: wireRecovery(t.Recovery),
			SimNS:    int64(t.Sim),
			EnergyJ:  t.EnergyJ,
		}
	}
	return rows
}

// WirePools projects the pool-stats map onto name-sorted wire rows.
func WirePools(stats map[string]conduit.PoolStats) []wire.PoolRow {
	if len(stats) == 0 {
		return nil // canonical: matches what decoding an empty list yields
	}
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]wire.PoolRow, 0, len(names))
	for _, name := range names {
		p := stats[name]
		rows = append(rows, wire.PoolRow{
			Name:        name,
			Preforked:   p.Preforked,
			Hits:        p.Hits,
			Misses:      p.Misses,
			Quarantined: p.Quarantined,
			Repairs:     p.Repairs,
			Idle:        int64(p.Idle),
			Closed:      p.Closed,
		})
	}
	return rows
}
