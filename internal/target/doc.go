// Package target is the target half of the conduit wire tier: a TCP
// server that exposes one conduit.Server — its registered workloads,
// device pools, shard clusters, and PR8 recovery ladder — behind the
// framed protocol of internal/wire. cmd/conduit-target is its thin
// command wrapper; the wiretest harness spawns the same Main in child
// processes to prove routed serving equivalent to in-process serving.
//
// A connection begins with a Hello frame naming the target and the
// workloads it serves. Requests then dispatch through Server.Submit
// (the open-loop path: admission shedding and deadline expiry behave
// exactly as they do in process), and each response is written back as
// an outcome capsule when its execution completes — out of order under
// concurrency, correlated by request ID. SnapshotReq answers with the
// per-tenant deterministic accounting rows plus the target's mergeable
// wall-latency histogram; Drain (or SIGTERM/SIGINT) stops admission,
// waits out in-flight requests, closes every pool, and acknowledges
// with the final pool counters so the router can verify no fork
// leaked.
//
// The conversion from a served conduit.Response to a wire.Response
// (WireResponse) and from accounting snapshots to wire rows
// (WireTenants, WirePools) lives here precisely so the equivalence
// harness can apply the identical projection to an in-process server
// and compare encodings byte for byte.
package target
