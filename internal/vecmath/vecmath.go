package vecmath

import "fmt"

// CheckElem panics unless elem is a supported element size.
func CheckElem(elem int) {
	if elem != 1 && elem != 2 && elem != 4 {
		panic(fmt.Sprintf("vecmath: unsupported element size %d", elem))
	}
}

// Mask returns the value mask for an element of elem bytes.
func Mask(elem int) uint64 {
	return uint64(1)<<(8*elem) - 1
}

// Load reads element i from p.
func Load(p []byte, i, elem int) uint64 {
	off := i * elem
	var v uint64
	for b := 0; b < elem; b++ {
		v |= uint64(p[off+b]) << (8 * b)
	}
	return v
}

// Store writes element i of p, truncating v to the element size.
func Store(p []byte, i, elem int, v uint64) {
	off := i * elem
	v &= Mask(elem)
	for b := 0; b < elem; b++ {
		p[off+b] = byte(v >> (8 * b))
	}
}

// ToSigned reinterprets the low 8*elem bits of v as a signed integer.
func ToSigned(v uint64, elem int) int64 {
	shift := 64 - 8*elem
	return int64(v<<shift) >> shift
}

// FromSigned truncates a signed value into element representation.
func FromSigned(v int64, elem int) uint64 {
	return uint64(v) & Mask(elem)
}

// Binary applies f elementwise: dst[i] = f(a[i], b[i]). dst may alias a or
// b. All slices must share a length that is a multiple of elem.
func Binary(dst, a, b []byte, elem int, f func(x, y uint64) uint64) {
	CheckElem(elem)
	n := len(dst) / elem
	for i := 0; i < n; i++ {
		Store(dst, i, elem, f(Load(a, i, elem), Load(b, i, elem)))
	}
}

// Unary applies f elementwise: dst[i] = f(a[i]).
func Unary(dst, a []byte, elem int, f func(x uint64) uint64) {
	CheckElem(elem)
	n := len(dst) / elem
	for i := 0; i < n; i++ {
		Store(dst, i, elem, f(Load(a, i, elem)))
	}
}

// BinaryImm applies f elementwise against a broadcast immediate:
// dst[i] = f(a[i], imm).
func BinaryImm(dst, a []byte, elem int, imm uint64, f func(x, y uint64) uint64) {
	CheckElem(elem)
	n := len(dst) / elem
	for i := 0; i < n; i++ {
		Store(dst, i, elem, f(Load(a, i, elem), imm))
	}
}

// Broadcast fills dst with the immediate value v in every lane. The
// specialized implementation stores one lane and doubles it across the
// page; BroadcastGeneric is the lane-serial reference.
func Broadcast(dst []byte, elem int, v uint64) {
	CheckElem(elem)
	n := len(dst) / elem
	if n == 0 {
		return
	}
	Store(dst, 0, elem, v)
	total := n * elem
	for filled := elem; filled < total; filled *= 2 {
		copy(dst[filled:total], dst[:filled])
	}
}

// ReduceAdd sums all elements of a modulo the element width. The
// specialized implementation uses monomorphized typed loads;
// ReduceAddGeneric is the lane-serial reference.
func ReduceAdd(a []byte, elem int) uint64 {
	CheckElem(elem)
	var sum uint64
	switch elem {
	case 1:
		for _, v := range a {
			sum += uint64(v)
		}
	case 2:
		for i := 0; i+2 <= len(a); i += 2 {
			sum += uint64(le.Uint16(a[i:]))
		}
	default:
		for i := 0; i+4 <= len(a); i += 4 {
			sum += uint64(le.Uint32(a[i:]))
		}
	}
	return sum & Mask(elem)
}

// Bool converts a predicate to the canonical lane values used by the
// predication operations: all-ones for true, zero for false.
func Bool(b bool, elem int) uint64 {
	if b {
		return Mask(elem)
	}
	return 0
}
