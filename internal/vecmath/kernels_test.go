package vecmath

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// binaryOps is every operation with a specialized binary kernel.
var binaryOps = []Op{
	OpAnd, OpOr, OpXor, OpNand, OpNor,
	OpAdd, OpSub, OpMul, OpDiv, OpShl, OpShr,
	OpLT, OpGT, OpEQ, OpMin, OpMax,
}

// immOps is every operation with a specialized broadcast-immediate kernel.
var immOps = []Op{
	OpAnd, OpOr, OpXor, OpNand, OpNor,
	OpAdd, OpSub, OpMul, OpDiv,
	OpLT, OpGT, OpEQ, OpMin, OpMax,
}

var elems = []int{1, 2, 4}

// testLengths exercises word-kernel tails and odd element counts: zero,
// sub-word, non-multiples of 8, a prime number of elements, and
// page-like sizes. Lengths that are not element multiples additionally
// prove the trailing bytes stay untouched.
func testLengths(elem int) []int {
	return []int{0, elem, 3 * elem, 7 * elem, 13 * elem, 64, 96, 1 << 10, 1<<10 + elem, 1<<10 + 1, 37}
}

// edgeBytes seeds lane patterns around signed boundaries: MinInt, -1,
// zero, +1, MaxInt for every width, plus wraparound-prone values.
var edgeBytes = []byte{0x00, 0x01, 0x7F, 0x80, 0x81, 0xFF, 0xFE, 0x55, 0xAA}

func fillRand(r *rand.Rand, p []byte) {
	for i := range p {
		if r.Intn(3) == 0 {
			p[i] = edgeBytes[r.Intn(len(edgeBytes))]
		} else {
			p[i] = byte(r.Uint32())
		}
	}
}

// checkKernel runs one specialized call against its reference on
// identical inputs, including the guard bytes past the element region.
func checkKernel(t *testing.T, label string, n int,
	spec func(dst []byte), ref func(dst []byte)) {
	t.Helper()
	const guard = 0xC3
	got := make([]byte, n)
	want := make([]byte, n)
	for i := range got {
		got[i], want[i] = guard, guard
	}
	spec(got)
	ref(want)
	if !bytes.Equal(got, want) {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: byte %d: specialized %#02x != reference %#02x", label, i, got[i], want[i])
			}
		}
	}
}

func TestBinaryKernelsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, op := range binaryOps {
		for _, elem := range elems {
			for _, n := range testLengths(elem) {
				a := make([]byte, n)
				b := make([]byte, n)
				fillRand(r, a)
				fillRand(r, b)
				label := fmt.Sprintf("%v/elem=%d/n=%d", op, elem, n)
				checkKernel(t, label, n,
					func(dst []byte) { Apply(op, dst, a, b, elem) },
					func(dst []byte) { ApplyGeneric(op, dst, a, b, elem) })
			}
		}
	}
}

func TestImmKernelsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	imms := []uint64{0, 1, 2, 0x7F, 0x80, 0xFF, 0x8000, 0xFFFF, 0x7FFFFFFF, 0x80000000,
		0xFFFFFFFF, 0xDEADBEEFCAFEF00D, ^uint64(0)}
	for _, op := range immOps {
		for _, elem := range elems {
			for _, n := range testLengths(elem) {
				a := make([]byte, n)
				fillRand(r, a)
				for _, imm := range imms {
					label := fmt.Sprintf("%v/elem=%d/n=%d/imm=%#x", op, elem, n, imm)
					checkKernel(t, label, n,
						func(dst []byte) { ApplyImm(op, dst, a, elem, imm) },
						func(dst []byte) { ApplyImmGeneric(op, dst, a, elem, imm) })
				}
			}
		}
	}
}

func TestUnaryKernelsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// Shift counts deliberately include >= lane width and >= 64: the raw
	// count semantics must zero lanes identically on both paths.
	shifts := []uint64{0, 1, 3, 7, 8, 15, 16, 31, 32, 63, 64, 1000, ^uint64(0)}
	for _, op := range []Op{OpNot, OpShl, OpShr} {
		for _, elem := range elems {
			for _, n := range testLengths(elem) {
				a := make([]byte, n)
				fillRand(r, a)
				for _, imm := range shifts {
					label := fmt.Sprintf("%v/elem=%d/n=%d/imm=%d", op, elem, n, imm)
					checkKernel(t, label, n,
						func(dst []byte) { ApplyUnary(op, dst, a, elem, imm) },
						func(dst []byte) { ApplyUnaryGeneric(op, dst, a, elem, imm) })
					if op == OpNot {
						break // imm ignored
					}
				}
			}
		}
	}
}

func TestSelectKernelsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, elem := range elems {
		for _, n := range testLengths(elem) {
			mask := make([]byte, n)
			a := make([]byte, n)
			b := make([]byte, n)
			fillRand(r, a)
			fillRand(r, b)
			for i := range mask {
				if r.Intn(2) == 0 {
					mask[i] = byte(r.Uint32())
				}
			}
			label := fmt.Sprintf("select/elem=%d/n=%d", elem, n)
			checkKernel(t, label, n,
				func(dst []byte) { Select(dst, mask, a, b, elem) },
				func(dst []byte) { SelectGeneric(dst, mask, a, b, elem) })
			checkKernel(t, label+"/imm", n,
				func(dst []byte) { SelectImm(dst, mask, a, elem, 0x8081) },
				func(dst []byte) { SelectImmGeneric(dst, mask, a, elem, 0x8081) })
		}
	}
}

func TestShuffleBroadcastReduceMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, elem := range elems {
		for _, n := range []int{elem, 4 * elem, 13 * elem, 1 << 10} {
			a := make([]byte, n)
			fillRand(r, a)
			lanes := n / elem
			for _, rot := range []int{0, 1, lanes - 1, lanes, lanes + 3, 7 * lanes} {
				label := fmt.Sprintf("shuffle/elem=%d/n=%d/rot=%d", elem, n, rot)
				checkKernel(t, label, n,
					func(dst []byte) { Shuffle(dst, a, elem, rot) },
					func(dst []byte) { ShuffleGeneric(dst, a, elem, rot) })
			}
			checkKernel(t, fmt.Sprintf("broadcast/elem=%d/n=%d", elem, n), n,
				func(dst []byte) { Broadcast(dst, elem, 0xDEADBEEF) },
				func(dst []byte) { BroadcastGeneric(dst, elem, 0xDEADBEEF) })
			if got, want := ReduceAdd(a, elem), ReduceAddGeneric(a, elem); got != want {
				t.Fatalf("ReduceAdd(elem=%d,n=%d) = %#x, reference %#x", elem, n, got, want)
			}
		}
	}
}

// TestKernelAliasing proves dst == a and dst == b produce the same bytes
// as the reference under the same aliasing.
func TestKernelAliasing(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, op := range binaryOps {
		for _, elem := range elems {
			n := 24 * elem
			a0 := make([]byte, n)
			b0 := make([]byte, n)
			fillRand(r, a0)
			fillRand(r, b0)

			// dst aliases a.
			got := append([]byte(nil), a0...)
			Apply(op, got, got, b0, elem)
			want := append([]byte(nil), a0...)
			ApplyGeneric(op, want, want, b0, elem)
			if !bytes.Equal(got, want) {
				t.Fatalf("%v/elem=%d: dst==a alias mismatch", op, elem)
			}

			// dst aliases b.
			got = append([]byte(nil), b0...)
			Apply(op, a0, got, got, elem)
			want = append([]byte(nil), b0...)
			ApplyGeneric(op, a0, want, want, elem)
			if !bytes.Equal(got, want) {
				t.Fatalf("%v/elem=%d: dst==b alias mismatch", op, elem)
			}
		}
	}
	// In-place shuffle keeps the generic element-serial behavior.
	for _, elem := range elems {
		n := 16 * elem
		a := make([]byte, n)
		fillRand(r, a)
		got := append([]byte(nil), a...)
		Shuffle(got, got, elem, 5)
		want := append([]byte(nil), a...)
		ShuffleGeneric(want, want, elem, 5)
		if !bytes.Equal(got, want) {
			t.Fatalf("elem=%d: in-place shuffle mismatch", elem)
		}
	}
}

// TestKernelsQuick is the randomized property check: arbitrary operand
// bytes, operations, widths, and immediates, specialized == reference.
func TestKernelsQuick(t *testing.T) {
	f := func(seed int64, opSel, elemSel uint8, lanes uint8, imm uint64) bool {
		r := rand.New(rand.NewSource(seed))
		elem := elems[int(elemSel)%len(elems)]
		n := (int(lanes)%96 + 1) * elem
		a := make([]byte, n)
		b := make([]byte, n)
		fillRand(r, a)
		fillRand(r, b)

		op := binaryOps[int(opSel)%len(binaryOps)]
		got := make([]byte, n)
		want := make([]byte, n)
		Apply(op, got, a, b, elem)
		ApplyGeneric(op, want, a, b, elem)
		if !bytes.Equal(got, want) {
			t.Logf("binary %v elem=%d n=%d mismatch", op, elem, n)
			return false
		}

		iop := immOps[int(opSel)%len(immOps)]
		ApplyImm(iop, got, a, elem, imm)
		ApplyImmGeneric(iop, want, a, elem, imm)
		if !bytes.Equal(got, want) {
			t.Logf("imm %v elem=%d n=%d imm=%#x mismatch", iop, elem, n, imm)
			return false
		}
		return true
	}
	// Seeded so a failing case reproduces; nil Rand would be time-seeded.
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
