package vecmath

import (
	"encoding/binary"
	"fmt"
)

// This file holds the specialized data-plane kernels: per-operation,
// per-element-width loops dispatched once per page through kernel tables
// keyed by (op, elem). The bitwise family processes 8 bytes per iteration
// through uint64 loads (bit-serial substrates get their throughput from
// exactly this word-parallel trick — the simulator's functional model
// should too); the arithmetic/compare/select family uses monomorphized
// uint8/uint16/uint32 loops with sign-aware variants, eliminating the
// closure call and byte-at-a-time element assembly of the generic path.
//
// The closure-based generic primitives in vecmath.go remain the reference
// semantics; reference.go exposes them through the same Op-dispatched
// surface so differential tests can prove the kernels byte-identical.
//
// Aliasing contract (same as the generic path): dst may be exactly a or
// exactly b; partially overlapping buffers are not supported. All kernels
// process floor(len(dst)/elem) complete elements and leave trailing bytes
// untouched, matching the generic primitives.

var le = binary.LittleEndian

// Op identifies an elementwise operation with a specialized kernel. It is
// the shared functional vocabulary the substrate models (dram, cores,
// nand) and the compiler's reference interpreter translate their own
// operation enums into.
type Op uint8

// Kernel operations.
const (
	OpAnd Op = iota
	OpOr
	OpXor
	OpNand
	OpNor
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpShl
	OpShr
	OpLT
	OpGT
	OpEQ
	OpMin
	OpMax
	OpNot
	numKernelOps
)

var kernelOpNames = [...]string{
	"and", "or", "xor", "nand", "nor", "add", "sub", "mul", "div",
	"shl", "shr", "lt", "gt", "eq", "min", "max", "not",
}

// String names the operation.
func (o Op) String() string {
	if int(o) < len(kernelOpNames) {
		return kernelOpNames[o]
	}
	return fmt.Sprintf("vecmath.Op(%d)", uint8(o))
}

// elemIndex maps a validated element size to its kernel-table column.
func elemIndex(elem int) int { return elem >> 1 } // 1→0, 2→1, 4→2

// Apply computes dst[i] = op(a[i], b[i]) elementwise with the specialized
// kernel for (op, elem). Semantics are identical to the generic reference
// (ApplyGeneric): lane values are masked to the element width, division
// by zero saturates to all-ones, comparisons are signed (except EQ) and
// produce all-ones/zero lanes, and shifts use the b lane value as the
// shift count (counts >= the lane width yield zero).
func Apply(op Op, dst, a, b []byte, elem int) {
	CheckElem(elem)
	k := binKernels[op][elemIndex(elem)]
	if k == nil {
		panic(fmt.Sprintf("vecmath: %v has no binary kernel", op))
	}
	m := len(dst) - len(dst)%elem
	k(dst[:m], a[:m], b[:m])
}

// ApplyImm computes dst[i] = op(a[i], imm) elementwise, broadcasting the
// immediate as a lane value (truncated to the element width). Shift
// operations do not take this path: their immediate is a raw shift count,
// not a lane — use ApplyUnary.
func ApplyImm(op Op, dst, a []byte, elem int, imm uint64) {
	CheckElem(elem)
	k := immKernels[op][elemIndex(elem)]
	if k == nil {
		panic(fmt.Sprintf("vecmath: %v has no immediate kernel", op))
	}
	m := len(dst) - len(dst)%elem
	k(dst[:m], a[:m], imm&Mask(elem))
}

// ApplyUnary computes single-source operations: OpNot (imm ignored) and
// OpShl/OpShr, whose imm is the raw, unmasked shift count (counts >= the
// lane width yield zero lanes, exactly like the generic x<<imm path).
func ApplyUnary(op Op, dst, a []byte, elem int, imm uint64) {
	CheckElem(elem)
	m := len(dst) - len(dst)%elem
	dst, a = dst[:m], a[:m]
	switch op {
	case OpNot:
		notWords(dst, a)
	case OpShl:
		shlImmKernels[elemIndex(elem)](dst, a, imm)
	case OpShr:
		shrImmKernels[elemIndex(elem)](dst, a, imm)
	default:
		panic(fmt.Sprintf("vecmath: %v has no unary kernel", op))
	}
}

// Select computes dst[i] = a[i] where mask[i] != 0, else b[i]. dst may
// alias any operand exactly.
func Select(dst, mask, a, b []byte, elem int) {
	CheckElem(elem)
	m := len(dst) - len(dst)%elem
	selectKernels[elemIndex(elem)](dst[:m], mask[:m], a[:m], b[:m])
}

// SelectImm computes dst[i] = a[i] where mask[i] != 0, else the broadcast
// immediate (truncated to the element width).
func SelectImm(dst, mask, a []byte, elem int, imm uint64) {
	CheckElem(elem)
	m := len(dst) - len(dst)%elem
	selectImmKernels[elemIndex(elem)](dst[:m], mask[:m], a[:m], imm&Mask(elem))
}

// Shuffle rotates lanes: dst[i] = a[(i+rot)%n] over n = len(dst)/elem
// lanes. rot follows the substrates' raw semantics (int(imm) % n computed
// by the caller is accepted as-is; this function reduces it again, so
// passing the raw int(imm) is also fine). When dst aliases a, the
// element-serial order of the generic path is preserved exactly.
func Shuffle(dst, a []byte, elem int, rot int) {
	CheckElem(elem)
	n := len(dst) / elem
	r := rot % n // same divide-by-zero panic as the generic path when n==0
	if r < 0 || (len(a) > 0 && len(dst) > 0 && &dst[0] == &a[0]) {
		// Negative rotations and in-place rotations reproduce the generic
		// element-serial behavior bit for bit (including its panics).
		ShuffleGeneric(dst, a, elem, rot)
		return
	}
	m := (n - r) * elem
	copy(dst[:m], a[r*elem:n*elem])
	copy(dst[m:n*elem], a[:r*elem])
}

// --- kernel tables ----------------------------------------------------------

var binKernels = [numKernelOps][3]func(dst, a, b []byte){
	OpAnd:  {andWords, andWords, andWords},
	OpOr:   {orWords, orWords, orWords},
	OpXor:  {xorWords, xorWords, xorWords},
	OpNand: {nandWords, nandWords, nandWords},
	OpNor:  {norWords, norWords, norWords},
	OpAdd:  {add8, add16, add32},
	OpSub:  {sub8, sub16, sub32},
	OpMul:  {mul8, mul16, mul32},
	OpDiv:  {div8, div16, div32},
	OpShl:  {shl8, shl16, shl32},
	OpShr:  {shr8, shr16, shr32},
	OpLT:   {lt8, lt16, lt32},
	OpGT:   {gt8, gt16, gt32},
	OpEQ:   {eq8, eq16, eq32},
	OpMin:  {min8, min16, min32},
	OpMax:  {max8, max16, max32},
}

var immKernels = [numKernelOps][3]func(dst, a []byte, imm uint64){
	OpAnd:  {andImm1, andImm2, andImm4},
	OpOr:   {orImm1, orImm2, orImm4},
	OpXor:  {xorImm1, xorImm2, xorImm4},
	OpNand: {nandImm1, nandImm2, nandImm4},
	OpNor:  {norImm1, norImm2, norImm4},
	OpAdd:  {addImm8, addImm16, addImm32},
	OpSub:  {subImm8, subImm16, subImm32},
	OpMul:  {mulImm8, mulImm16, mulImm32},
	OpDiv:  {divImm8, divImm16, divImm32},
	OpLT:   {ltImm8, ltImm16, ltImm32},
	OpGT:   {gtImm8, gtImm16, gtImm32},
	OpEQ:   {eqImm8, eqImm16, eqImm32},
	OpMin:  {minImm8, minImm16, minImm32},
	OpMax:  {maxImm8, maxImm16, maxImm32},
}

var shlImmKernels = [3]func(dst, a []byte, imm uint64){shlImm8, shlImm16, shlImm32}
var shrImmKernels = [3]func(dst, a []byte, imm uint64){shrImm8, shrImm16, shrImm32}
var selectKernels = [3]func(dst, mask, a, b []byte){select8, select16, select32}
var selectImmKernels = [3]func(dst, mask, a []byte, imm uint64){selectImm8, selectImm16, selectImm32}

// --- bitwise family: 8 bytes per iteration ----------------------------------
//
// Bitwise operations are element-width-independent on little-endian lane
// layouts, so one uint64 kernel serves all three widths (the dispatchers
// trim the tail to a whole number of elements first).

func andWords(dst, a, b []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		le.PutUint64(dst[i:], le.Uint64(a[i:])&le.Uint64(b[i:]))
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] & b[i]
	}
}

func orWords(dst, a, b []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		le.PutUint64(dst[i:], le.Uint64(a[i:])|le.Uint64(b[i:]))
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] | b[i]
	}
}

func xorWords(dst, a, b []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		le.PutUint64(dst[i:], le.Uint64(a[i:])^le.Uint64(b[i:]))
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i]
	}
}

func nandWords(dst, a, b []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		le.PutUint64(dst[i:], ^(le.Uint64(a[i:]) & le.Uint64(b[i:])))
	}
	for ; i < len(dst); i++ {
		dst[i] = ^(a[i] & b[i])
	}
}

func norWords(dst, a, b []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		le.PutUint64(dst[i:], ^(le.Uint64(a[i:]) | le.Uint64(b[i:])))
	}
	for ; i < len(dst); i++ {
		dst[i] = ^(a[i] | b[i])
	}
}

func notWords(dst, a []byte) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		le.PutUint64(dst[i:], ^le.Uint64(a[i:]))
	}
	for ; i < len(dst); i++ {
		dst[i] = ^a[i]
	}
}

// repN replicates a masked lane immediate across a uint64 pattern word.

func rep1(imm uint64) uint64 { imm |= imm << 8; imm |= imm << 16; return imm | imm<<32 }
func rep2(imm uint64) uint64 { imm |= imm << 16; return imm | imm<<32 }
func rep4(imm uint64) uint64 { return imm | imm<<32 }

func andPat(dst, a []byte, w uint64) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		le.PutUint64(dst[i:], le.Uint64(a[i:])&w)
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] & byte(w>>(8*(i&7)))
	}
}

func orPat(dst, a []byte, w uint64) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		le.PutUint64(dst[i:], le.Uint64(a[i:])|w)
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] | byte(w>>(8*(i&7)))
	}
}

func xorPat(dst, a []byte, w uint64) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		le.PutUint64(dst[i:], le.Uint64(a[i:])^w)
	}
	for ; i < len(dst); i++ {
		dst[i] = a[i] ^ byte(w>>(8*(i&7)))
	}
}

func nandPat(dst, a []byte, w uint64) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		le.PutUint64(dst[i:], ^(le.Uint64(a[i:]) & w))
	}
	for ; i < len(dst); i++ {
		dst[i] = ^(a[i] & byte(w>>(8*(i&7))))
	}
}

func norPat(dst, a []byte, w uint64) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		le.PutUint64(dst[i:], ^(le.Uint64(a[i:]) | w))
	}
	for ; i < len(dst); i++ {
		dst[i] = ^(a[i] | byte(w>>(8*(i&7))))
	}
}

func andImm1(dst, a []byte, imm uint64)  { andPat(dst, a, rep1(imm)) }
func andImm2(dst, a []byte, imm uint64)  { andPat(dst, a, rep2(imm)) }
func andImm4(dst, a []byte, imm uint64)  { andPat(dst, a, rep4(imm)) }
func orImm1(dst, a []byte, imm uint64)   { orPat(dst, a, rep1(imm)) }
func orImm2(dst, a []byte, imm uint64)   { orPat(dst, a, rep2(imm)) }
func orImm4(dst, a []byte, imm uint64)   { orPat(dst, a, rep4(imm)) }
func xorImm1(dst, a []byte, imm uint64)  { xorPat(dst, a, rep1(imm)) }
func xorImm2(dst, a []byte, imm uint64)  { xorPat(dst, a, rep2(imm)) }
func xorImm4(dst, a []byte, imm uint64)  { xorPat(dst, a, rep4(imm)) }
func nandImm1(dst, a []byte, imm uint64) { nandPat(dst, a, rep1(imm)) }
func nandImm2(dst, a []byte, imm uint64) { nandPat(dst, a, rep2(imm)) }
func nandImm4(dst, a []byte, imm uint64) { nandPat(dst, a, rep4(imm)) }
func norImm1(dst, a []byte, imm uint64)  { norPat(dst, a, rep1(imm)) }
func norImm2(dst, a []byte, imm uint64)  { norPat(dst, a, rep2(imm)) }
func norImm4(dst, a []byte, imm uint64)  { norPat(dst, a, rep4(imm)) }

// --- arithmetic / compare family: monomorphized typed loops -----------------

func add8(dst, a, b []byte) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

func add16(dst, a, b []byte) {
	for i := 0; i+2 <= len(dst); i += 2 {
		le.PutUint16(dst[i:], le.Uint16(a[i:])+le.Uint16(b[i:]))
	}
}

func add32(dst, a, b []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		le.PutUint32(dst[i:], le.Uint32(a[i:])+le.Uint32(b[i:]))
	}
}

func sub8(dst, a, b []byte) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

func sub16(dst, a, b []byte) {
	for i := 0; i+2 <= len(dst); i += 2 {
		le.PutUint16(dst[i:], le.Uint16(a[i:])-le.Uint16(b[i:]))
	}
}

func sub32(dst, a, b []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		le.PutUint32(dst[i:], le.Uint32(a[i:])-le.Uint32(b[i:]))
	}
}

func mul8(dst, a, b []byte) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

func mul16(dst, a, b []byte) {
	for i := 0; i+2 <= len(dst); i += 2 {
		le.PutUint16(dst[i:], le.Uint16(a[i:])*le.Uint16(b[i:]))
	}
}

func mul32(dst, a, b []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		le.PutUint32(dst[i:], le.Uint32(a[i:])*le.Uint32(b[i:]))
	}
}

// Division by zero saturates to all-ones, matching the generic reference.

func div8(dst, a, b []byte) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		if b[i] == 0 {
			dst[i] = 0xFF
		} else {
			dst[i] = a[i] / b[i]
		}
	}
}

func div16(dst, a, b []byte) {
	for i := 0; i+2 <= len(dst); i += 2 {
		y := le.Uint16(b[i:])
		if y == 0 {
			le.PutUint16(dst[i:], 0xFFFF)
		} else {
			le.PutUint16(dst[i:], le.Uint16(a[i:])/y)
		}
	}
}

func div32(dst, a, b []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		y := le.Uint32(b[i:])
		if y == 0 {
			le.PutUint32(dst[i:], 0xFFFFFFFF)
		} else {
			le.PutUint32(dst[i:], le.Uint32(a[i:])/y)
		}
	}
}

// Binary shifts take the shift count from the b lane; counts >= the lane
// width produce zero, exactly like the masked-uint64 generic path.

func shl8(dst, a, b []byte) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] << b[i]
	}
}

func shl16(dst, a, b []byte) {
	for i := 0; i+2 <= len(dst); i += 2 {
		le.PutUint16(dst[i:], le.Uint16(a[i:])<<le.Uint16(b[i:]))
	}
}

func shl32(dst, a, b []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		le.PutUint32(dst[i:], le.Uint32(a[i:])<<le.Uint32(b[i:]))
	}
}

func shr8(dst, a, b []byte) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		dst[i] = a[i] >> b[i]
	}
}

func shr16(dst, a, b []byte) {
	for i := 0; i+2 <= len(dst); i += 2 {
		le.PutUint16(dst[i:], le.Uint16(a[i:])>>le.Uint16(b[i:]))
	}
}

func shr32(dst, a, b []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		le.PutUint32(dst[i:], le.Uint32(a[i:])>>le.Uint32(b[i:]))
	}
}

// Relational operations are signed (except EQ) and emit canonical
// all-ones/zero predicate lanes.

func lt8(dst, a, b []byte) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		if int8(a[i]) < int8(b[i]) {
			dst[i] = 0xFF
		} else {
			dst[i] = 0
		}
	}
}

func lt16(dst, a, b []byte) {
	for i := 0; i+2 <= len(dst); i += 2 {
		if int16(le.Uint16(a[i:])) < int16(le.Uint16(b[i:])) {
			le.PutUint16(dst[i:], 0xFFFF)
		} else {
			le.PutUint16(dst[i:], 0)
		}
	}
}

func lt32(dst, a, b []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		if int32(le.Uint32(a[i:])) < int32(le.Uint32(b[i:])) {
			le.PutUint32(dst[i:], 0xFFFFFFFF)
		} else {
			le.PutUint32(dst[i:], 0)
		}
	}
}

func gt8(dst, a, b []byte) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		if int8(a[i]) > int8(b[i]) {
			dst[i] = 0xFF
		} else {
			dst[i] = 0
		}
	}
}

func gt16(dst, a, b []byte) {
	for i := 0; i+2 <= len(dst); i += 2 {
		if int16(le.Uint16(a[i:])) > int16(le.Uint16(b[i:])) {
			le.PutUint16(dst[i:], 0xFFFF)
		} else {
			le.PutUint16(dst[i:], 0)
		}
	}
}

func gt32(dst, a, b []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		if int32(le.Uint32(a[i:])) > int32(le.Uint32(b[i:])) {
			le.PutUint32(dst[i:], 0xFFFFFFFF)
		} else {
			le.PutUint32(dst[i:], 0)
		}
	}
}

func eq8(dst, a, b []byte) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		if a[i] == b[i] {
			dst[i] = 0xFF
		} else {
			dst[i] = 0
		}
	}
}

func eq16(dst, a, b []byte) {
	for i := 0; i+2 <= len(dst); i += 2 {
		if le.Uint16(a[i:]) == le.Uint16(b[i:]) {
			le.PutUint16(dst[i:], 0xFFFF)
		} else {
			le.PutUint16(dst[i:], 0)
		}
	}
}

func eq32(dst, a, b []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		if le.Uint32(a[i:]) == le.Uint32(b[i:]) {
			le.PutUint32(dst[i:], 0xFFFFFFFF)
		} else {
			le.PutUint32(dst[i:], 0)
		}
	}
}

// Min/Max compare signed but return the original lane bits.

func min8(dst, a, b []byte) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		x, y := a[i], b[i]
		if int8(x) < int8(y) {
			dst[i] = x
		} else {
			dst[i] = y
		}
	}
}

func min16(dst, a, b []byte) {
	for i := 0; i+2 <= len(dst); i += 2 {
		x, y := le.Uint16(a[i:]), le.Uint16(b[i:])
		if int16(x) < int16(y) {
			le.PutUint16(dst[i:], x)
		} else {
			le.PutUint16(dst[i:], y)
		}
	}
}

func min32(dst, a, b []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		x, y := le.Uint32(a[i:]), le.Uint32(b[i:])
		if int32(x) < int32(y) {
			le.PutUint32(dst[i:], x)
		} else {
			le.PutUint32(dst[i:], y)
		}
	}
}

func max8(dst, a, b []byte) {
	a, b = a[:len(dst)], b[:len(dst)]
	for i := range dst {
		x, y := a[i], b[i]
		if int8(x) > int8(y) {
			dst[i] = x
		} else {
			dst[i] = y
		}
	}
}

func max16(dst, a, b []byte) {
	for i := 0; i+2 <= len(dst); i += 2 {
		x, y := le.Uint16(a[i:]), le.Uint16(b[i:])
		if int16(x) > int16(y) {
			le.PutUint16(dst[i:], x)
		} else {
			le.PutUint16(dst[i:], y)
		}
	}
}

func max32(dst, a, b []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		x, y := le.Uint32(a[i:]), le.Uint32(b[i:])
		if int32(x) > int32(y) {
			le.PutUint32(dst[i:], x)
		} else {
			le.PutUint32(dst[i:], y)
		}
	}
}

// --- immediate variants of the arithmetic / compare family ------------------
//
// The dispatcher masks the immediate to the element width before the call,
// so the typed truncation below is exact.

func addImm8(dst, a []byte, imm uint64) {
	y := byte(imm)
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = a[i] + y
	}
}

func addImm16(dst, a []byte, imm uint64) {
	y := uint16(imm)
	for i := 0; i+2 <= len(dst); i += 2 {
		le.PutUint16(dst[i:], le.Uint16(a[i:])+y)
	}
}

func addImm32(dst, a []byte, imm uint64) {
	y := uint32(imm)
	for i := 0; i+4 <= len(dst); i += 4 {
		le.PutUint32(dst[i:], le.Uint32(a[i:])+y)
	}
}

func subImm8(dst, a []byte, imm uint64) {
	y := byte(imm)
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = a[i] - y
	}
}

func subImm16(dst, a []byte, imm uint64) {
	y := uint16(imm)
	for i := 0; i+2 <= len(dst); i += 2 {
		le.PutUint16(dst[i:], le.Uint16(a[i:])-y)
	}
}

func subImm32(dst, a []byte, imm uint64) {
	y := uint32(imm)
	for i := 0; i+4 <= len(dst); i += 4 {
		le.PutUint32(dst[i:], le.Uint32(a[i:])-y)
	}
}

func mulImm8(dst, a []byte, imm uint64) {
	y := byte(imm)
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = a[i] * y
	}
}

func mulImm16(dst, a []byte, imm uint64) {
	y := uint16(imm)
	for i := 0; i+2 <= len(dst); i += 2 {
		le.PutUint16(dst[i:], le.Uint16(a[i:])*y)
	}
}

func mulImm32(dst, a []byte, imm uint64) {
	y := uint32(imm)
	for i := 0; i+4 <= len(dst); i += 4 {
		le.PutUint32(dst[i:], le.Uint32(a[i:])*y)
	}
}

func divImm8(dst, a []byte, imm uint64) {
	y := byte(imm)
	a = a[:len(dst)]
	if y == 0 {
		for i := range dst {
			dst[i] = 0xFF
		}
		return
	}
	for i := range dst {
		dst[i] = a[i] / y
	}
}

func divImm16(dst, a []byte, imm uint64) {
	y := uint16(imm)
	if y == 0 {
		for i := 0; i+2 <= len(dst); i += 2 {
			le.PutUint16(dst[i:], 0xFFFF)
		}
		return
	}
	for i := 0; i+2 <= len(dst); i += 2 {
		le.PutUint16(dst[i:], le.Uint16(a[i:])/y)
	}
}

func divImm32(dst, a []byte, imm uint64) {
	y := uint32(imm)
	if y == 0 {
		for i := 0; i+4 <= len(dst); i += 4 {
			le.PutUint32(dst[i:], 0xFFFFFFFF)
		}
		return
	}
	for i := 0; i+4 <= len(dst); i += 4 {
		le.PutUint32(dst[i:], le.Uint32(a[i:])/y)
	}
}

func ltImm8(dst, a []byte, imm uint64) {
	y := int8(byte(imm))
	a = a[:len(dst)]
	for i := range dst {
		if int8(a[i]) < y {
			dst[i] = 0xFF
		} else {
			dst[i] = 0
		}
	}
}

func ltImm16(dst, a []byte, imm uint64) {
	y := int16(uint16(imm))
	for i := 0; i+2 <= len(dst); i += 2 {
		if int16(le.Uint16(a[i:])) < y {
			le.PutUint16(dst[i:], 0xFFFF)
		} else {
			le.PutUint16(dst[i:], 0)
		}
	}
}

func ltImm32(dst, a []byte, imm uint64) {
	y := int32(uint32(imm))
	for i := 0; i+4 <= len(dst); i += 4 {
		if int32(le.Uint32(a[i:])) < y {
			le.PutUint32(dst[i:], 0xFFFFFFFF)
		} else {
			le.PutUint32(dst[i:], 0)
		}
	}
}

func gtImm8(dst, a []byte, imm uint64) {
	y := int8(byte(imm))
	a = a[:len(dst)]
	for i := range dst {
		if int8(a[i]) > y {
			dst[i] = 0xFF
		} else {
			dst[i] = 0
		}
	}
}

func gtImm16(dst, a []byte, imm uint64) {
	y := int16(uint16(imm))
	for i := 0; i+2 <= len(dst); i += 2 {
		if int16(le.Uint16(a[i:])) > y {
			le.PutUint16(dst[i:], 0xFFFF)
		} else {
			le.PutUint16(dst[i:], 0)
		}
	}
}

func gtImm32(dst, a []byte, imm uint64) {
	y := int32(uint32(imm))
	for i := 0; i+4 <= len(dst); i += 4 {
		if int32(le.Uint32(a[i:])) > y {
			le.PutUint32(dst[i:], 0xFFFFFFFF)
		} else {
			le.PutUint32(dst[i:], 0)
		}
	}
}

func eqImm8(dst, a []byte, imm uint64) {
	y := byte(imm)
	a = a[:len(dst)]
	for i := range dst {
		if a[i] == y {
			dst[i] = 0xFF
		} else {
			dst[i] = 0
		}
	}
}

func eqImm16(dst, a []byte, imm uint64) {
	y := uint16(imm)
	for i := 0; i+2 <= len(dst); i += 2 {
		if le.Uint16(a[i:]) == y {
			le.PutUint16(dst[i:], 0xFFFF)
		} else {
			le.PutUint16(dst[i:], 0)
		}
	}
}

func eqImm32(dst, a []byte, imm uint64) {
	y := uint32(imm)
	for i := 0; i+4 <= len(dst); i += 4 {
		if le.Uint32(a[i:]) == y {
			le.PutUint32(dst[i:], 0xFFFFFFFF)
		} else {
			le.PutUint32(dst[i:], 0)
		}
	}
}

func minImm8(dst, a []byte, imm uint64) {
	y := byte(imm)
	a = a[:len(dst)]
	for i := range dst {
		x := a[i]
		if int8(x) < int8(y) {
			dst[i] = x
		} else {
			dst[i] = y
		}
	}
}

func minImm16(dst, a []byte, imm uint64) {
	y := uint16(imm)
	for i := 0; i+2 <= len(dst); i += 2 {
		x := le.Uint16(a[i:])
		if int16(x) < int16(y) {
			le.PutUint16(dst[i:], x)
		} else {
			le.PutUint16(dst[i:], y)
		}
	}
}

func minImm32(dst, a []byte, imm uint64) {
	y := uint32(imm)
	for i := 0; i+4 <= len(dst); i += 4 {
		x := le.Uint32(a[i:])
		if int32(x) < int32(y) {
			le.PutUint32(dst[i:], x)
		} else {
			le.PutUint32(dst[i:], y)
		}
	}
}

func maxImm8(dst, a []byte, imm uint64) {
	y := byte(imm)
	a = a[:len(dst)]
	for i := range dst {
		x := a[i]
		if int8(x) > int8(y) {
			dst[i] = x
		} else {
			dst[i] = y
		}
	}
}

func maxImm16(dst, a []byte, imm uint64) {
	y := uint16(imm)
	for i := 0; i+2 <= len(dst); i += 2 {
		x := le.Uint16(a[i:])
		if int16(x) > int16(y) {
			le.PutUint16(dst[i:], x)
		} else {
			le.PutUint16(dst[i:], y)
		}
	}
}

func maxImm32(dst, a []byte, imm uint64) {
	y := uint32(imm)
	for i := 0; i+4 <= len(dst); i += 4 {
		x := le.Uint32(a[i:])
		if int32(x) > int32(y) {
			le.PutUint32(dst[i:], x)
		} else {
			le.PutUint32(dst[i:], y)
		}
	}
}

// --- immediate shifts (raw, unmasked shift counts) --------------------------

func shlImm8(dst, a []byte, imm uint64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = a[i] << imm
	}
}

func shlImm16(dst, a []byte, imm uint64) {
	for i := 0; i+2 <= len(dst); i += 2 {
		le.PutUint16(dst[i:], le.Uint16(a[i:])<<imm)
	}
}

func shlImm32(dst, a []byte, imm uint64) {
	for i := 0; i+4 <= len(dst); i += 4 {
		le.PutUint32(dst[i:], le.Uint32(a[i:])<<imm)
	}
}

func shrImm8(dst, a []byte, imm uint64) {
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = a[i] >> imm
	}
}

func shrImm16(dst, a []byte, imm uint64) {
	for i := 0; i+2 <= len(dst); i += 2 {
		le.PutUint16(dst[i:], le.Uint16(a[i:])>>imm)
	}
}

func shrImm32(dst, a []byte, imm uint64) {
	for i := 0; i+4 <= len(dst); i += 4 {
		le.PutUint32(dst[i:], le.Uint32(a[i:])>>imm)
	}
}

// --- predicated select ------------------------------------------------------

func select8(dst, mask, a, b []byte) {
	mask, a, b = mask[:len(dst)], a[:len(dst)], b[:len(dst)]
	for i := range dst {
		if mask[i] != 0 {
			dst[i] = a[i]
		} else {
			dst[i] = b[i]
		}
	}
}

func select16(dst, mask, a, b []byte) {
	for i := 0; i+2 <= len(dst); i += 2 {
		if le.Uint16(mask[i:]) != 0 {
			le.PutUint16(dst[i:], le.Uint16(a[i:]))
		} else {
			le.PutUint16(dst[i:], le.Uint16(b[i:]))
		}
	}
}

func select32(dst, mask, a, b []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		if le.Uint32(mask[i:]) != 0 {
			le.PutUint32(dst[i:], le.Uint32(a[i:]))
		} else {
			le.PutUint32(dst[i:], le.Uint32(b[i:]))
		}
	}
}

func selectImm8(dst, mask, a []byte, imm uint64) {
	y := byte(imm)
	mask, a = mask[:len(dst)], a[:len(dst)]
	for i := range dst {
		if mask[i] != 0 {
			dst[i] = a[i]
		} else {
			dst[i] = y
		}
	}
}

func selectImm16(dst, mask, a []byte, imm uint64) {
	y := uint16(imm)
	for i := 0; i+2 <= len(dst); i += 2 {
		if le.Uint16(mask[i:]) != 0 {
			le.PutUint16(dst[i:], le.Uint16(a[i:]))
		} else {
			le.PutUint16(dst[i:], y)
		}
	}
}

func selectImm32(dst, mask, a []byte, imm uint64) {
	y := uint32(imm)
	for i := 0; i+4 <= len(dst); i += 4 {
		if le.Uint32(mask[i:]) != 0 {
			le.PutUint32(dst[i:], le.Uint32(a[i:]))
		} else {
			le.PutUint32(dst[i:], y)
		}
	}
}
