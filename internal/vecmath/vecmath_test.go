package vecmath

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// quickCfg seeds testing/quick explicitly: a nil Config draws from a
// time-seeded generator, so failures would not reproduce run to run.
func quickCfg(seed int64) *quick.Config {
	return &quick.Config{Rand: rand.New(rand.NewSource(seed))}
}

func TestLoadStoreRoundTripProperty(t *testing.T) {
	f := func(v uint64, idx uint8, elemSel uint8) bool {
		elem := []int{1, 2, 4}[int(elemSel)%3]
		p := make([]byte, 64)
		i := int(idx) % (len(p) / elem)
		Store(p, i, elem, v)
		return Load(p, i, elem) == v&Mask(elem)
	}
	if err := quick.Check(f, quickCfg(11)); err != nil {
		t.Fatal(err)
	}
}

func TestToSigned(t *testing.T) {
	cases := []struct {
		v    uint64
		elem int
		want int64
	}{
		{0xFF, 1, -1},
		{0x7F, 1, 127},
		{0x80, 1, -128},
		{0xFFFF, 2, -1},
		{0x8000, 2, -32768},
		{0xFFFFFFFF, 4, -1},
		{0x7FFFFFFF, 4, 2147483647},
	}
	for _, c := range cases {
		if got := ToSigned(c.v, c.elem); got != c.want {
			t.Errorf("ToSigned(%#x, %d) = %d, want %d", c.v, c.elem, got, c.want)
		}
	}
}

func TestSignedRoundTripProperty(t *testing.T) {
	f := func(v uint32, elemSel uint8) bool {
		elem := []int{1, 2, 4}[int(elemSel)%3]
		u := uint64(v) & Mask(elem)
		return FromSigned(ToSigned(u, elem), elem) == u
	}
	if err := quick.Check(f, quickCfg(12)); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryAliasing(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	b := []byte{10, 20, 30, 40}
	Binary(a, a, b, 1, func(x, y uint64) uint64 { return x + y })
	want := []byte{11, 22, 33, 44}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("aliased binary = %v, want %v", a, want)
		}
	}
}

func TestUnaryAndBroadcast(t *testing.T) {
	p := make([]byte, 8)
	Broadcast(p, 2, 0x1234)
	for i := 0; i < 4; i++ {
		if Load(p, i, 2) != 0x1234 {
			t.Fatalf("broadcast lane %d = %#x", i, Load(p, i, 2))
		}
	}
	Unary(p, p, 2, func(x uint64) uint64 { return ^x })
	if Load(p, 0, 2) != (^uint64(0x1234))&Mask(2) {
		t.Fatal("unary NOT wrong")
	}
}

func TestBinaryImm(t *testing.T) {
	p := []byte{1, 2, 3, 4}
	out := make([]byte, 4)
	BinaryImm(out, p, 1, 10, func(x, y uint64) uint64 { return x * y })
	for i, want := range []byte{10, 20, 30, 40} {
		if out[i] != want {
			t.Fatalf("BinaryImm = %v", out)
		}
	}
}

func TestReduceAdd(t *testing.T) {
	p := []byte{1, 2, 3, 250}
	if got := ReduceAdd(p, 1); got != 0 { // 256 mod 256
		t.Fatalf("ReduceAdd = %d, want 0 (wraparound)", got)
	}
	if got := ReduceAdd([]byte{1, 0, 2, 0}, 2); got != 3 {
		t.Fatalf("ReduceAdd 16-bit = %d, want 3", got)
	}
}

func TestBool(t *testing.T) {
	if Bool(true, 1) != 0xFF || Bool(false, 4) != 0 {
		t.Fatal("Bool lane encoding wrong")
	}
}

func TestCheckElemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CheckElem(3) should panic")
		}
	}()
	CheckElem(3)
}
