package vecmath

import "fmt"

// This file is the retained generic reference implementation: the same
// Op-dispatched surface as the specialized kernels in kernels.go, built
// on the closure-per-element primitives (Binary, BinaryImm, Unary, Load,
// Store). It defines the semantics the kernels must reproduce bit for
// bit; the differential tests in kernels_test.go enforce that, and the
// kernel benchmarks measure against it.

// refFn returns the scalar semantics of op for elem-byte lanes. Inputs
// are masked lane values; the result is masked by Store.
func refFn(op Op, elem int) func(x, y uint64) uint64 {
	mask := Mask(elem)
	switch op {
	case OpAnd:
		return func(x, y uint64) uint64 { return x & y }
	case OpOr:
		return func(x, y uint64) uint64 { return x | y }
	case OpXor:
		return func(x, y uint64) uint64 { return x ^ y }
	case OpNand:
		return func(x, y uint64) uint64 { return ^(x & y) }
	case OpNor:
		return func(x, y uint64) uint64 { return ^(x | y) }
	case OpAdd:
		return func(x, y uint64) uint64 { return x + y }
	case OpSub:
		return func(x, y uint64) uint64 { return x - y }
	case OpMul:
		return func(x, y uint64) uint64 { return x * y }
	case OpDiv:
		return func(x, y uint64) uint64 {
			if y == 0 {
				return mask // saturate on division by zero
			}
			return x / y
		}
	case OpShl:
		return func(x, y uint64) uint64 { return x << y }
	case OpShr:
		return func(x, y uint64) uint64 { return x >> y }
	case OpLT:
		return func(x, y uint64) uint64 { return Bool(ToSigned(x, elem) < ToSigned(y, elem), elem) }
	case OpGT:
		return func(x, y uint64) uint64 { return Bool(ToSigned(x, elem) > ToSigned(y, elem), elem) }
	case OpEQ:
		return func(x, y uint64) uint64 { return Bool(x == y, elem) }
	case OpMin:
		return func(x, y uint64) uint64 {
			if ToSigned(x, elem) < ToSigned(y, elem) {
				return x
			}
			return y
		}
	case OpMax:
		return func(x, y uint64) uint64 {
			if ToSigned(x, elem) > ToSigned(y, elem) {
				return x
			}
			return y
		}
	default:
		panic(fmt.Sprintf("vecmath: %v has no binary reference semantics", op))
	}
}

// ApplyGeneric is the reference implementation of Apply.
func ApplyGeneric(op Op, dst, a, b []byte, elem int) {
	Binary(dst, a, b, elem, refFn(op, elem))
}

// ApplyImmGeneric is the reference implementation of ApplyImm: the
// immediate participates as a masked lane value.
func ApplyImmGeneric(op Op, dst, a []byte, elem int, imm uint64) {
	if op == OpShl || op == OpShr {
		panic("vecmath: shift immediates go through ApplyUnaryGeneric (raw shift-count semantics)")
	}
	BinaryImm(dst, a, elem, imm&Mask(elem), refFn(op, elem))
}

// ApplyUnaryGeneric is the reference implementation of ApplyUnary: OpNot
// ignores imm; OpShl/OpShr shift by the raw, unmasked count.
func ApplyUnaryGeneric(op Op, dst, a []byte, elem int, imm uint64) {
	switch op {
	case OpNot:
		Unary(dst, a, elem, func(x uint64) uint64 { return ^x })
	case OpShl:
		Unary(dst, a, elem, func(x uint64) uint64 { return x << imm })
	case OpShr:
		Unary(dst, a, elem, func(x uint64) uint64 { return x >> imm })
	default:
		panic(fmt.Sprintf("vecmath: %v has no unary reference semantics", op))
	}
}

// SelectGeneric is the reference implementation of Select.
func SelectGeneric(dst, mask, a, b []byte, elem int) {
	CheckElem(elem)
	n := len(dst) / elem
	for i := 0; i < n; i++ {
		if Load(mask, i, elem) != 0 {
			Store(dst, i, elem, Load(a, i, elem))
		} else {
			Store(dst, i, elem, Load(b, i, elem))
		}
	}
}

// SelectImmGeneric is the reference implementation of SelectImm.
func SelectImmGeneric(dst, mask, a []byte, elem int, imm uint64) {
	CheckElem(elem)
	imm &= Mask(elem)
	n := len(dst) / elem
	for i := 0; i < n; i++ {
		if Load(mask, i, elem) != 0 {
			Store(dst, i, elem, Load(a, i, elem))
		} else {
			Store(dst, i, elem, imm)
		}
	}
}

// ShuffleGeneric is the reference implementation of Shuffle: the
// element-serial lane rotation the substrates originally inlined,
// including its behavior on negative rotations and aliased buffers.
func ShuffleGeneric(dst, a []byte, elem int, rot int) {
	CheckElem(elem)
	n := len(dst) / elem
	r := rot % n
	for i := 0; i < n; i++ {
		Store(dst, i, elem, Load(a, (i+r)%n, elem))
	}
}

// BroadcastGeneric is the reference implementation of Broadcast.
func BroadcastGeneric(dst []byte, elem int, v uint64) {
	CheckElem(elem)
	n := len(dst) / elem
	for i := 0; i < n; i++ {
		Store(dst, i, elem, v)
	}
}

// ReduceAddGeneric is the reference implementation of ReduceAdd.
func ReduceAddGeneric(a []byte, elem int) uint64 {
	CheckElem(elem)
	var sum uint64
	n := len(a) / elem
	for i := 0; i < n; i++ {
		sum += Load(a, i, elem)
	}
	return sum & Mask(elem)
}
