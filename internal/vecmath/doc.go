// Package vecmath implements the functional (bit-accurate) elementwise
// vector arithmetic shared by every computation substrate in the simulator:
// the flash latch engine, the processing-using-DRAM engine, the controller
// MVE model, the host models, and the compiler's scalar reference
// interpreter. Centralizing it guarantees all substrates agree on
// semantics, which the cross-substrate equivalence tests rely on.
//
// Elements are little-endian unsigned integers of 1, 2 or 4 bytes; signed
// operations sign-extend explicitly.
package vecmath
