// Package vecmath implements the functional (bit-accurate) elementwise
// vector arithmetic shared by every computation substrate in the simulator:
// the flash latch engine, the processing-using-DRAM engine, the controller
// MVE model, the host models, and the compiler's scalar reference
// interpreter. Centralizing it guarantees all substrates agree on
// semantics, which the cross-substrate equivalence tests rely on.
//
// Elements are little-endian unsigned integers of 1, 2 or 4 bytes; signed
// operations sign-extend explicitly.
//
// The package exposes two surfaces with identical semantics. The generic
// primitives (Load, Store, Binary, Unary, BinaryImm, and the *Generic
// dispatchers in reference.go) assemble each element byte by byte and
// call a closure per element: they are the reference implementation. The
// specialized kernels (Apply, ApplyImm, ApplyUnary, Select, SelectImm,
// Shuffle, Broadcast, ReduceAdd) dispatch once per page through tables
// keyed by (op, elem): the bitwise family runs 8 bytes per iteration over
// uint64 words, everything else through monomorphized typed loops.
// Differential tests prove the two surfaces byte-identical; the hot paths
// use the kernels, the tests and benchmarks keep the reference honest.
package vecmath
