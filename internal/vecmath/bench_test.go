package vecmath

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkVecmathKernels measures the specialized kernels against the
// retained generic reference on a flash-page-sized operand (16 KiB, the
// default config's page). The bitwise family is the headline number: the
// uint64 word path must beat the closure-per-element reference by >= 3x
// (scripts/bench.sh records the ratio in the perf trajectory).
func BenchmarkVecmathKernels(b *testing.B) {
	const page = 16 << 10
	r := rand.New(rand.NewSource(7))
	a := make([]byte, page)
	bb := make([]byte, page)
	dst := make([]byte, page)
	fillRand(r, a)
	fillRand(r, bb)

	type variant struct {
		name string
		run  func(op Op, elem int)
	}
	variants := []variant{
		{"specialized", func(op Op, elem int) { Apply(op, dst, a, bb, elem) }},
		{"generic", func(op Op, elem int) { ApplyGeneric(op, dst, a, bb, elem) }},
	}

	cases := []struct {
		family string
		op     Op
		elem   int
	}{
		{"bitwise", OpAnd, 1},
		{"bitwise", OpXor, 4},
		{"bitwise", OpNor, 2},
		{"arith", OpAdd, 1},
		{"arith", OpAdd, 4},
		{"arith", OpMul, 2},
		{"compare", OpLT, 4},
		{"compare", OpMin, 2},
	}
	for _, c := range cases {
		for _, v := range variants {
			b.Run(fmt.Sprintf("%s/%v-%d/%s", c.family, c.op, c.elem, v.name), func(b *testing.B) {
				b.SetBytes(page)
				for i := 0; i < b.N; i++ {
					v.run(c.op, c.elem)
				}
			})
		}
	}

	b.Run("select/4/specialized", func(b *testing.B) {
		b.SetBytes(page)
		for i := 0; i < b.N; i++ {
			Select(dst, a, bb, a, 4)
		}
	})
	b.Run("select/4/generic", func(b *testing.B) {
		b.SetBytes(page)
		for i := 0; i < b.N; i++ {
			SelectGeneric(dst, a, bb, a, 4)
		}
	})
	b.Run("broadcast/4/specialized", func(b *testing.B) {
		b.SetBytes(page)
		for i := 0; i < b.N; i++ {
			Broadcast(dst, 4, 0xDEADBEEF)
		}
	})
	b.Run("broadcast/4/generic", func(b *testing.B) {
		b.SetBytes(page)
		for i := 0; i < b.N; i++ {
			BroadcastGeneric(dst, 4, 0xDEADBEEF)
		}
	})
}
