// Package stats collects and renders the measurements that the experiment
// harness reports: counters, latency distributions with exact tail
// percentiles (the paper reports p99 and p99.99 in Fig. 8), per-resource
// instruction fractions (Fig. 9), and per-instruction timelines (Fig. 10).
package stats
