package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"conduit/internal/sim"
)

// Reservoir records a full set of latency samples and computes exact
// percentiles. The evaluated instruction streams are small enough (at most
// a few hundred thousand samples) that keeping every sample exact is
// cheaper and more faithful than an approximating sketch.
//
// A Reservoir is safe for concurrent use: percentile queries sort lazily,
// so even read-only-looking accessors mutate internal state — and shared
// memoized results are read from many sweep goroutines at once.
type Reservoir struct {
	mu      sync.Mutex
	samples []sim.Time
	sorted  bool
}

// NewReservoir returns an empty reservoir.
func NewReservoir() *Reservoir { return &Reservoir{} }

// Add records one sample.
func (r *Reservoir) Add(v sim.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, v)
	r.sorted = false
}

// Count reports the number of samples.
func (r *Reservoir) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

func (r *Reservoir) sortIfNeeded() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}

// Percentile returns the p'th percentile (0 <= p <= 100) using the
// nearest-rank method. It returns 0 for an empty reservoir.
func (r *Reservoir) Percentile(p float64) sim.Time {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	r.sortIfNeeded()
	rank := int(math.Ceil(p/100*float64(len(r.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(r.samples) {
		rank = len(r.samples) - 1
	}
	return r.samples[rank]
}

// P99 is the 99th percentile.
func (r *Reservoir) P99() sim.Time { return r.Percentile(99) }

// P9999 is the 99.99th percentile.
func (r *Reservoir) P9999() sim.Time { return r.Percentile(99.99) }

// Max returns the largest sample (0 if empty).
func (r *Reservoir) Max() sim.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	r.sortIfNeeded()
	return r.samples[len(r.samples)-1]
}

// Mean returns the arithmetic mean rounded to the nearest unit (0 if
// empty). Samples are non-negative times, so half-up rounding suffices.
func (r *Reservoir) Mean() sim.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	var sum int64
	for _, s := range r.samples {
		sum += int64(s)
	}
	n := int64(len(r.samples))
	return sim.Time((sum + n/2) / n)
}

// Clone returns an independent copy of the reservoir. Results handed out
// by the harness hold cloned reservoirs so later device activity cannot
// mutate them.
func (r *Reservoir) Clone() *Reservoir {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Reservoir{
		samples: append([]sim.Time(nil), r.samples...),
		sorted:  r.sorted,
	}
}

// Sum returns the total of all samples.
func (r *Reservoir) Sum() sim.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum sim.Time
	for _, s := range r.samples {
		sum += s
	}
	return sum
}

// MergeReservoirs returns a new reservoir holding the union of every
// part's samples, concatenated in argument order. Percentile queries sort
// lazily, so the union is order-insensitive for every derived statistic —
// but the fixed concatenation order keeps the raw sample sequence (and
// therefore Clone snapshots of it) run-for-run deterministic, which is
// what lets a cluster's scatter-gather merge be byte-identical between
// concurrent and serial shard execution. Nil parts are skipped; the parts
// themselves are never mutated.
func MergeReservoirs(parts ...*Reservoir) *Reservoir {
	out := NewReservoir()
	for _, p := range parts {
		if p == nil {
			continue
		}
		p.mu.Lock()
		out.samples = append(out.samples, p.samples...)
		p.mu.Unlock()
	}
	return out
}

// Counters is a named set of monotonically increasing tallies.
type Counters struct {
	m     map[string]int64
	order []string
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Add increments name by delta.
func (c *Counters) Add(name string, delta int64) {
	if _, ok := c.m[name]; !ok {
		c.order = append(c.order, name)
	}
	c.m[name] += delta
}

// Get reports the value of name (0 if never added).
func (c *Counters) Get(name string) int64 { return c.m[name] }

// Clone returns an independent copy of the counter set.
func (c *Counters) Clone() *Counters {
	out := &Counters{
		m:     make(map[string]int64, len(c.m)),
		order: append([]string(nil), c.order...),
	}
	for k, v := range c.m {
		out.m[k] = v
	}
	return out
}

// Merge adds every counter of o into c, preserving c's first-use order
// and appending names new to c in o's order. Merging the per-shard
// counter sets of a cluster run in shard-index order therefore yields a
// deterministic summed set regardless of which shard finished first.
// A nil o is a no-op; o is never mutated.
func (c *Counters) Merge(o *Counters) {
	if o == nil {
		return
	}
	for _, name := range o.order {
		c.Add(name, o.m[name])
	}
}

// Names returns counter names in first-use order.
func (c *Counters) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// GeoMean returns the geometric mean of xs. It panics if any value is
// non-positive: speedups in the harness are always > 0, so a non-positive
// input indicates a broken experiment.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
