package stats

import (
	"testing"

	"conduit/internal/sim"
)

// TestReservoirNearestRankSemantics pins the exact nearest-rank
// definition the histogram's differential test (internal/histo) bounds
// itself against: Percentile(p) returns the rank-ceil(p/100*n) smallest
// sample, with rank clamped into [1, n]. Any change here silently shifts
// every latency figure, so the table spells the contract out case by
// case — p0 and p100, single samples, duplicates, even/odd counts, and
// percentiles that fall exactly on and between rank boundaries.
func TestReservoirNearestRankSemantics(t *testing.T) {
	cases := []struct {
		name    string
		samples []sim.Time
		p       float64
		want    sim.Time
	}{
		// Single sample: every percentile is that sample.
		{"single-p0", []sim.Time{7}, 0, 7},
		{"single-p50", []sim.Time{7}, 50, 7},
		{"single-p100", []sim.Time{7}, 100, 7},

		// p0 clamps the rank up to 1: the minimum, not an underflow.
		{"p0-is-min", []sim.Time{10, 20, 30, 40}, 0, 10},
		// p100 is the maximum (rank n exactly, no overflow).
		{"p100-is-max", []sim.Time{10, 20, 30, 40}, 100, 40},

		// Four samples: p25 -> ceil(1.0) = rank 1; p26 -> ceil(1.04) =
		// rank 2 — the boundary is inclusive on exact multiples.
		{"exact-boundary", []sim.Time{10, 20, 30, 40}, 25, 10},
		{"past-boundary", []sim.Time{10, 20, 30, 40}, 26, 20},
		{"p50-even", []sim.Time{10, 20, 30, 40}, 50, 20},
		{"p75-even", []sim.Time{10, 20, 30, 40}, 75, 30},

		// Odd count: p50 of 5 samples -> ceil(2.5) = rank 3, the true
		// median.
		{"p50-odd", []sim.Time{10, 20, 30, 40, 50}, 50, 30},

		// Nearest-rank never interpolates: p90 of {1..10} is sample 9,
		// p91 jumps to sample 10.
		{"no-interpolation-low", []sim.Time{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 90, 9},
		{"no-interpolation-high", []sim.Time{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 91, 10},

		// Duplicates occupy ranks individually.
		{"duplicates", []sim.Time{5, 5, 5, 9}, 75, 5},
		{"duplicates-top", []sim.Time{5, 5, 5, 9}, 76, 9},

		// Insertion order is irrelevant (sorting is internal).
		{"unsorted-input", []sim.Time{40, 10, 30, 20}, 50, 20},

		// Tail percentiles on a small set: p99 of 100 samples is the
		// 99th, p99.99 rounds up to the 100th.
		{"p99-of-100", seq(1, 100), 99, 99},
		{"p9999-of-100", seq(1, 100), 99.99, 100},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := NewReservoir()
			for _, s := range c.samples {
				r.Add(s)
			}
			if got := r.Percentile(c.p); got != c.want {
				t.Errorf("Percentile(%v) over %v = %v, want %v", c.p, c.samples, got, c.want)
			}
		})
	}

	// Empty reservoir: 0 for any percentile, no panic.
	empty := NewReservoir()
	for _, p := range []float64{0, 50, 100} {
		if got := empty.Percentile(p); got != 0 {
			t.Errorf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
	// Out-of-range percentiles panic (both sides).
	for _, bad := range []float64{-0.001, 100.001} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", bad)
				}
			}()
			NewReservoir().Percentile(bad)
		}()
	}
}

// seq returns the samples lo..hi inclusive.
func seq(lo, hi int) []sim.Time {
	out := make([]sim.Time, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, sim.Time(i))
	}
	return out
}
