package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table renders experiment results as aligned text, matching the row/series
// structure of the paper's tables and figures. Rows are emitted in insertion
// order so regenerated output is stable across runs.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond len(Columns) are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through, float64
// renders with 3 significant decimals, integers render plainly, and any
// fmt.Stringer uses its String method.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case fmt.Stringer:
			row = append(row, v.String())
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns the cell at (row, col); it panics on out-of-range indices.
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// Render writes the table to w as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Columns)
	for _, row := range t.rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		parts[i] = c
	}
	fmt.Fprintln(w, strings.Join(parts, ","))
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
