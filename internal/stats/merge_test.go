package stats

import (
	"reflect"
	"testing"

	"conduit/internal/sim"
)

func TestMergeReservoirsUnion(t *testing.T) {
	a := NewReservoir()
	b := NewReservoir()
	for i := 0; i < 5; i++ {
		a.Add(sim.Time(10 * (i + 1)))
		b.Add(sim.Time(7 * (i + 1)))
	}
	m := MergeReservoirs(a, nil, b)
	if got, want := m.Count(), a.Count()+b.Count(); got != want {
		t.Fatalf("merged count = %d, want %d", got, want)
	}
	if got, want := m.Sum(), a.Sum()+b.Sum(); got != want {
		t.Fatalf("merged sum = %d, want %d", got, want)
	}
	if got, want := m.Max(), b.Max(); got == 0 || got < want {
		t.Fatalf("merged max = %d, want >= %d", got, want)
	}
	// Parts are untouched (the merge copies, never steals).
	if a.Count() != 5 || b.Count() != 5 {
		t.Fatalf("merge mutated its parts: %d, %d", a.Count(), b.Count())
	}
}

// TestMergeReservoirsSingleIsClone: merging one reservoir must be
// statistically indistinguishable from the original — the 1-shard
// byte-identity proof leans on this.
func TestMergeReservoirsSingleIsClone(t *testing.T) {
	r := NewReservoir()
	for _, v := range []sim.Time{9, 3, 3, 12, 1} {
		r.Add(v)
	}
	m := MergeReservoirs(r)
	if m.Count() != r.Count() || m.Sum() != r.Sum() ||
		m.P99() != r.P99() || m.P9999() != r.P9999() ||
		m.Mean() != r.Mean() || m.Max() != r.Max() {
		t.Fatal("single-part merge differs from the original reservoir")
	}
}

// TestMergeReservoirsDeterministicSequence: the raw merged sample
// sequence follows argument order exactly.
func TestMergeReservoirsDeterministicSequence(t *testing.T) {
	a, b := NewReservoir(), NewReservoir()
	a.Add(5)
	a.Add(2)
	b.Add(8)
	m1 := MergeReservoirs(a, b)
	m2 := MergeReservoirs(a, b)
	if !reflect.DeepEqual(m1.samples, m2.samples) {
		t.Fatal("merge of identical parts produced different sequences")
	}
	if want := []sim.Time{5, 2, 8}; !reflect.DeepEqual(m1.samples, want) {
		t.Fatalf("merged sequence = %v, want %v", m1.samples, want)
	}
}

func TestCountersMerge(t *testing.T) {
	a := NewCounters()
	a.Add("flash.senses", 3)
	a.Add("dram.bbops", 2)
	b := NewCounters()
	b.Add("dram.bbops", 5)
	b.Add("core.cycles", 7)
	a.Merge(b)
	a.Merge(nil)
	if got := a.Get("dram.bbops"); got != 7 {
		t.Fatalf("dram.bbops = %d, want 7", got)
	}
	if got := a.Get("core.cycles"); got != 7 {
		t.Fatalf("core.cycles = %d, want 7", got)
	}
	if got := a.Get("flash.senses"); got != 3 {
		t.Fatalf("flash.senses = %d, want 3", got)
	}
	want := []string{"flash.senses", "dram.bbops", "core.cycles"}
	if !reflect.DeepEqual(a.Names(), want) {
		t.Fatalf("merged order = %v, want %v", a.Names(), want)
	}
	// The merged-from set is untouched.
	if b.Get("dram.bbops") != 5 || len(b.Names()) != 2 {
		t.Fatal("Merge mutated its argument")
	}
}
