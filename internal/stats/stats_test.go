package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"conduit/internal/sim"
)

func TestReservoirPercentiles(t *testing.T) {
	r := NewReservoir()
	for i := 1; i <= 100; i++ {
		r.Add(sim.Time(i))
	}
	if got := r.Percentile(50); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := r.P99(); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := r.P9999(); got != 100 {
		t.Errorf("p99.99 = %v, want 100", got)
	}
	if got := r.Max(); got != 100 {
		t.Errorf("max = %v, want 100", got)
	}
	if got := r.Mean(); got != 51 {
		// Exact mean is 50.5; Mean rounds to nearest, not down.
		t.Errorf("mean = %v, want 51", got)
	}
	if got := r.Sum(); got != 5050 {
		t.Errorf("sum = %v, want 5050", got)
	}
}

// TestReservoirMeanRounds locks in round-to-nearest semantics: the old
// integer division truncated (e.g. mean of {1, 2} reported 1).
func TestReservoirMeanRounds(t *testing.T) {
	cases := []struct {
		samples []sim.Time
		want    sim.Time
	}{
		{[]sim.Time{1, 2}, 2},           // 1.5 rounds up
		{[]sim.Time{1, 1, 2}, 1},        // 1.33 rounds down
		{[]sim.Time{2, 2, 3}, 2},        // 2.33 rounds down
		{[]sim.Time{0, 0, 0, 1}, 0},     // 0.25 rounds down
		{[]sim.Time{0, 1, 1, 1}, 1},     // 0.75 rounds up
		{[]sim.Time{10, 20, 30}, 20},    // exact
		{[]sim.Time{999, 1000, 1}, 667}, // 666.67 rounds up
	}
	for _, tc := range cases {
		r := NewReservoir()
		for _, s := range tc.samples {
			r.Add(s)
		}
		if got := r.Mean(); got != tc.want {
			t.Errorf("Mean(%v) = %v, want %v", tc.samples, got, tc.want)
		}
	}
}

func TestReservoirCloneIsIndependent(t *testing.T) {
	r := NewReservoir()
	r.Add(10)
	r.Add(20)
	c := r.Clone()
	r.Add(1000)
	if c.Count() != 2 || c.Max() != 20 {
		t.Fatalf("clone saw later samples: count=%d max=%v", c.Count(), c.Max())
	}
	c.Add(5)
	if r.Count() != 3 {
		t.Fatalf("original saw clone's samples: count=%d", r.Count())
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir()
	if r.P99() != 0 || r.Max() != 0 || r.Mean() != 0 || r.Count() != 0 {
		t.Fatal("empty reservoir should report zeros")
	}
}

func TestReservoirInterleavedAddAndQuery(t *testing.T) {
	r := NewReservoir()
	r.Add(10)
	if r.Percentile(100) != 10 {
		t.Fatal("single-sample percentile wrong")
	}
	r.Add(5) // must invalidate the sorted cache
	if got := r.Percentile(0); got != 5 {
		t.Fatalf("p0 after second add = %v, want 5", got)
	}
}

// Property: percentile is monotone in p and always one of the samples.
func TestReservoirPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		r := NewReservoir()
		set := map[sim.Time]bool{}
		for _, v := range vals {
			r.Add(sim.Time(v))
			set[sim.Time(v)] = true
		}
		prev := sim.Time(-1)
		for _, p := range []float64{0, 25, 50, 75, 90, 99, 99.99, 100} {
			got := r.Percentile(p)
			if got < prev || !set[got] {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("flash.reads", 3)
	c.Add("dram.bbops", 1)
	c.Add("flash.reads", 2)
	if c.Get("flash.reads") != 5 {
		t.Fatalf("flash.reads = %d, want 5", c.Get("flash.reads"))
	}
	if c.Get("missing") != 0 {
		t.Fatal("missing counter should be 0")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "flash.reads" || names[1] != "dram.bbops" {
		t.Fatalf("names = %v, want insertion order", names)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("GeoMean(1,4) = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean of non-positive value should panic")
		}
	}()
	GeoMean([]float64{0})
}

// Property: GeoMean lies between min and max of its inputs.
func TestGeoMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)/16 + 0.1 // strictly positive
		}
		g := GeoMean(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return g >= sorted[0]-1e-9 && g <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Fig X", "workload", "speedup")
	tb.AddRowf("AES", 1.25)
	tb.AddRowf("heat-3d", 4.0)
	out := tb.String()
	for _, want := range []string{"== Fig X ==", "workload", "AES", "1.250", "heat-3d", "4.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tb.NumRows())
	}
	if tb.Cell(0, 0) != "AES" {
		t.Fatalf("Cell(0,0) = %q", tb.Cell(0, 0))
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`x,y`, `q"z`)
	var b strings.Builder
	tb.CSV(&b)
	out := b.String()
	if !strings.Contains(out, `"x,y"`) || !strings.Contains(out, `"q""z"`) {
		t.Fatalf("CSV quoting wrong:\n%s", out)
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only-one")
	if tb.Cell(0, 2) != "" {
		t.Fatal("missing cells should render empty")
	}
	tb.AddRow("1", "2", "3", "4") // extra cell dropped
	if tb.Cell(1, 2) != "3" {
		t.Fatal("extra cells should be dropped")
	}
}
