package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEngineScheduleDrain measures raw event-queue throughput —
// schedule n events, drain them all — on both Oracle implementations,
// at three decades of queue depth and in two timestamp shapes:
// "coalesced" revisits each instant ~16 times in scattered order (the
// NAND-completion shape the bucket engine is built for — many plane
// operations finish at identical instants), "unique" gives every event
// its own instant (the adversarial shape, where the bucket engine
// degenerates to a heap of batches plus map traffic).
func BenchmarkEngineScheduleDrain(b *testing.B) {
	engines := []struct {
		name string
		make func() Oracle
	}{
		{"bucket", func() Oracle { return NewEngine() }},
		{"heap", func() Oracle { return NewHeapEngine() }},
	}
	shapes := []struct {
		name string
		at   func(i, n int) Time
	}{
		// 7919 is prime and larger than any n/16 used here, so the walk
		// scatters arrival order across the n/16 distinct instants.
		{"coalesced", func(i, n int) Time { return Time((i * 7919) % (n / 16) * 50) }},
		{"unique", func(i, n int) Time { return Time((i * 7919) % n * 50) }},
	}
	for _, shape := range shapes {
		for _, n := range []int{1e3, 1e5, 1e6} {
			// Precompute the timestamps so generation is not measured.
			times := make([]Time, n)
			for i := range times {
				times[i] = shape.at(i, n)
			}
			for _, eng := range engines {
				b.Run(fmt.Sprintf("%s/%s/%d", shape.name, eng.name, n), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						e := eng.make()
						sink := 0
						for _, at := range times {
							e.Schedule(at, func() { sink++ })
						}
						e.Run()
						if sink != n {
							b.Fatalf("drained %d events, want %d", sink, n)
						}
					}
				})
			}
		}
	}
}

// BenchmarkCalendarFastForward prices a long uncontended kernel stretch
// two ways: ReserveBatch's closed-form fast-forward versus the
// equivalent loop of single Reserves. The pair quantifies what the
// analytic path saves on exactly the stretches the engine fast path
// hands it.
func BenchmarkCalendarFastForward(b *testing.B) {
	const n = 4096
	b.Run("reserve-batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := NewCalendar("bench")
			c.ReserveBatch(0, 0, 100, n)
		}
	})
	b.Run("reserve-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := NewCalendar("bench")
			for j := 0; j < n; j++ {
				c.Reserve(0, 0, 100)
			}
		}
	})
}
