package sim

// Oracle is the discrete-event simulator contract. Two implementations
// exist and are required to be observationally identical:
//
//   - Engine, the fast path: a coalescing bucketed event queue that
//     batches same-timestamp completions into one calendar entry and
//     drains them as a unit.
//   - HeapEngine, the reference: the original binary-heap engine with an
//     explicit per-event FIFO sequence number.
//
// "Observationally identical" means: for any interleaving of Schedule,
// After, Step, Run, RunUntil, and Advance calls (including events that
// schedule further events from inside their callbacks), both
// implementations execute the same callbacks in the same order at the
// same clock readings, and report the same Now, Pending, and Steps at
// every point in between. The differential harness in
// internal/sim/simtest drives both through randomized schedules,
// recorded real-workload reservation traces, and adversarial
// same-timestamp storms to enforce exactly that; every engine test is
// written against Oracle so it runs on both paths.
type Oracle interface {
	// Now reports the current simulated time.
	Now() Time
	// Pending reports the number of scheduled events not yet executed.
	Pending() int
	// Steps reports the number of events executed so far.
	Steps() uint64
	// Schedule runs fn at absolute time at; scheduling in the past panics.
	Schedule(at Time, fn func())
	// After runs fn d nanoseconds from now; negative d panics.
	After(d Time, fn func())
	// Step executes the single earliest pending event (FIFO among equal
	// timestamps), advancing the clock to its timestamp. It reports
	// whether an event was executed.
	Step() bool
	// Run executes events until none remain.
	Run()
	// RunUntil executes events with timestamps <= t, then advances the
	// clock to exactly t.
	RunUntil(t Time)
	// Advance moves the clock forward by d, executing events timestamped
	// inside the window in order. Negative d panics.
	Advance(d Time)
}

var (
	_ Oracle = (*Engine)(nil)
	_ Oracle = (*HeapEngine)(nil)
)
