package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, in nanoseconds.
//
// Nanosecond granularity covers the full dynamic range of the simulated
// device: the fastest modeled operation is a 20 ns in-flash AND and the
// slowest is a 3.5 ms block erase.
type Time int64

// Common durations, as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time with an adaptive unit, e.g. "22.5µs".
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	steps  uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// Steps reports the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// it always indicates a modelling bug, never a recoverable condition.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// After runs fn d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now+d, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.steps++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t stay pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Advance moves the clock forward by d without executing events. It is used
// by sequential firmware models (e.g. the offloader loop) that consume time
// outside the event queue. Pending events timestamped inside the skipped
// window are still executed in order.
func (e *Engine) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %v", d))
	}
	e.RunUntil(e.now + d)
}
