package sim

import "fmt"

// batch is one calendar entry of the coalescing event queue: every event
// scheduled for one instant, in schedule (FIFO) order. pos is the drain
// cursor; executed slots are nilled so the recycled slice never pins
// closures.
type batch struct {
	fns []func()
	pos int
}

// Engine is the fast discrete-event simulator: a coalescing, bucketed
// event queue.
//
// Instead of a heap of individually sequenced events, the engine keeps
// one batch per distinct timestamp (many NAND plane operations complete
// at identical instants, so batches are the common case) and a small
// binary min-heap over the distinct timestamps only. Scheduling into an
// existing instant is an append — O(1), no heap churn, no per-event
// sequence number — and a whole instant drains as a unit in append
// order, which reproduces the reference engine's seq-number FIFO
// bit-for-bit: within one instant, schedule order is execution order.
//
// Events scheduled at the instant currently being drained (a callback
// scheduling at Now()) join the tail of the live batch, exactly where
// the reference engine's monotone sequence numbers would place them.
//
// HeapEngine is the retained reference implementation; both satisfy
// Oracle and the simtest differential harness holds them observationally
// identical.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	steps   uint64
	pending int

	buckets map[Time]*batch // queued instants, excluding the one draining
	times   []Time          // min-heap of distinct queued timestamps
	cur     *batch          // batch being drained (nil before first Step)
	curAt   Time
	free    []*batch // exhausted batches, recycled to avoid churn
}

// NewEngine returns a fast engine with the clock at zero and no pending
// events.
func NewEngine() *Engine {
	return &Engine{buckets: make(map[Time]*batch)}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return e.pending }

// Steps reports the number of events executed so far. Coalescing does not
// change the accounting: every callback counts as one step, exactly as in
// the reference engine.
func (e *Engine) Steps() uint64 { return e.steps }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// it always indicates a modelling bug, never a recoverable condition.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if e.cur != nil && at == e.curAt {
		// Joins the instant being drained, behind the events already
		// queued there — the position the reference engine's sequence
		// numbers assign.
		e.cur.fns = append(e.cur.fns, fn)
		e.pending++
		return
	}
	b, ok := e.buckets[at]
	if !ok {
		b = e.getBatch()
		e.buckets[at] = b
		e.pushTime(at)
	}
	b.fns = append(b.fns, fn)
	e.pending++
}

// After runs fn d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now+d, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.pending == 0 {
		return false
	}
	b := e.cur
	if b == nil || b.pos == len(b.fns) {
		// Current batch exhausted: open the earliest queued instant.
		if b != nil {
			e.recycle(b)
		}
		t := e.popTime()
		b = e.buckets[t]
		delete(e.buckets, t)
		e.cur, e.curAt = b, t
		e.now = t
	}
	fn := b.fns[b.pos]
	b.fns[b.pos] = nil
	b.pos++
	e.steps++
	e.pending--
	fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t stay pending.
func (e *Engine) RunUntil(t Time) {
	for e.pending > 0 {
		if e.cur != nil && e.cur.pos < len(e.cur.fns) {
			if e.curAt > t {
				break
			}
		} else if len(e.times) == 0 || e.times[0] > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Advance moves the clock forward by d without executing events. It is used
// by sequential firmware models (e.g. the offloader loop) that consume time
// outside the event queue. Pending events timestamped inside the skipped
// window are still executed in order.
func (e *Engine) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %v", d))
	}
	e.RunUntil(e.now + d)
}

func (e *Engine) getBatch() *batch {
	if n := len(e.free); n > 0 {
		b := e.free[n-1]
		e.free = e.free[:n-1]
		return b
	}
	return &batch{}
}

func (e *Engine) recycle(b *batch) {
	b.fns = b.fns[:0] // drained slots were nilled during Step
	b.pos = 0
	e.free = append(e.free, b)
}

// pushTime inserts a distinct timestamp into the min-heap. The heap is
// hand-rolled over []Time: no interface boxing, no per-push allocation.
func (e *Engine) pushTime(t Time) {
	e.times = append(e.times, t)
	i := len(e.times) - 1
	for i > 0 {
		p := (i - 1) / 2
		if e.times[p] <= e.times[i] {
			break
		}
		e.times[p], e.times[i] = e.times[i], e.times[p]
		i = p
	}
}

func (e *Engine) popTime() Time {
	t := e.times[0]
	n := len(e.times) - 1
	e.times[0] = e.times[n]
	e.times = e.times[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && e.times[r] < e.times[l] {
			m = r
		}
		if e.times[i] <= e.times[m] {
			break
		}
		e.times[i], e.times[m] = e.times[m], e.times[i]
		i = m
	}
	return t
}
