package sim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"conduit/internal/sim"
	"conduit/internal/sim/simtest"
)

// quickCfg returns a seeded testing/quick configuration: property
// failures replay bit-identically, matching the repo's determinism
// contract for everything under test.
func quickCfg(seed int64, max int) *quick.Config {
	return &quick.Config{Rand: rand.New(rand.NewSource(seed)), MaxCount: max}
}

// TestPropertyCoalescedDrainEqualsStepDrain: for any operation script,
// the coalescing engine's batched drain is observationally identical to
// the reference engine's one-event-at-a-time heap drain.
func TestPropertyCoalescedDrainEqualsStepDrain(t *testing.T) {
	f := func(raw []byte) bool {
		return simtest.Diff(simtest.DecodeOps(raw), 1024) == nil
	}
	if err := quick.Check(f, quickCfg(1, 300)); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyReserveMonotone: horizons never move backward, every
// reservation advances the horizon by at least its duration, and busy
// time never exceeds the horizon (work conservation).
func TestPropertyReserveMonotone(t *testing.T) {
	f := func(steps []uint32) bool {
		c := sim.NewCalendar("prop")
		var now sim.Time
		for _, s := range steps {
			now += sim.Time(s % 97)
			d := sim.Time((s >> 8) % 251)
			before := c.Horizon()
			_, end := c.Reserve(now, now, d)
			if c.Horizon() < before+d || end < now+d || c.BusyTime() > c.Horizon() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(2, 300)); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyQueueDelayConsistent: at every instant, QueueDelay reports
// exactly the clamped horizon distance, on calendars and on groups.
func TestPropertyQueueDelayConsistent(t *testing.T) {
	f := func(steps []uint32) bool {
		c := sim.NewCalendar("prop")
		g := sim.NewGroup("prop", 4)
		var now sim.Time
		for _, s := range steps {
			now += sim.Time(s % 97)
			d := sim.Time((s >> 8) % 251)
			c.Reserve(now, now, d)
			g.Reserve(now, now, d)
			want := c.Horizon() - now
			if want < 0 {
				want = 0
			}
			if c.QueueDelay(now) != want {
				return false
			}
			if g.QueueDelay(now) != g.Earliest().QueueDelay(now) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(3, 200)); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyReserveBatchEqualsLoop: the analytic closed form and the
// reservation loop are interchangeable at every observable point.
func TestPropertyReserveBatchEqualsLoop(t *testing.T) {
	f := func(preload []uint16, now, nb uint16, d uint16, nRaw uint8) bool {
		fast := sim.NewCalendar("fast")
		ref := sim.NewCalendar("ref")
		for _, p := range preload {
			fast.Reserve(0, 0, sim.Time(p%512))
			ref.Reserve(0, 0, sim.Time(p%512))
		}
		n := 1 + int(nRaw%32)
		var wantFirst, wantLast sim.Time
		for i := 0; i < n; i++ {
			s, e := ref.Reserve(sim.Time(now), sim.Time(nb), sim.Time(d))
			if i == 0 {
				wantFirst = s
			}
			wantLast = e
		}
		gotFirst, gotLast := fast.ReserveBatch(sim.Time(now), sim.Time(nb), sim.Time(d), n)
		return gotFirst == wantFirst && gotLast == wantLast &&
			fast.Horizon() == ref.Horizon() && fast.BusyTime() == ref.BusyTime()
	}
	if err := quick.Check(f, quickCfg(4, 500)); err != nil {
		t.Fatal(err)
	}
}
