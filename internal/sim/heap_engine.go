package sim

import (
	"container/heap"
	"fmt"
)

// event is one scheduled callback of the reference engine.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// HeapEngine is the reference discrete-event simulator: a binary heap of
// individually sequenced events, popped one at a time. It is the original
// engine implementation, kept verbatim as the differential oracle for the
// fast coalescing Engine — every behavioral question about the fast path
// ("what would the old engine have done?") is answered by running this
// one. See Oracle for the equivalence contract and internal/sim/simtest
// for the harness that enforces it.
//
// The zero value is not usable; call NewHeapEngine.
type HeapEngine struct {
	now    Time
	events eventHeap
	seq    uint64
	steps  uint64
}

// NewHeapEngine returns a reference engine with the clock at zero and no
// pending events.
func NewHeapEngine() *HeapEngine {
	return &HeapEngine{}
}

// Now reports the current simulated time.
func (e *HeapEngine) Now() Time { return e.now }

// Pending reports the number of scheduled events not yet executed.
func (e *HeapEngine) Pending() int { return len(e.events) }

// Steps reports the number of events executed so far.
func (e *HeapEngine) Steps() uint64 { return e.steps }

// Schedule runs fn at absolute time at. Scheduling in the past panics:
// it always indicates a modelling bug, never a recoverable condition.
func (e *HeapEngine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// After runs fn d nanoseconds from now. Negative d panics.
func (e *HeapEngine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now+d, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (e *HeapEngine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.steps++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *HeapEngine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t stay pending.
func (e *HeapEngine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Advance moves the clock forward by d without executing events. It is used
// by sequential firmware models (e.g. the offloader loop) that consume time
// outside the event queue. Pending events timestamped inside the skipped
// window are still executed in order.
func (e *HeapEngine) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %v", d))
	}
	e.RunUntil(e.now + d)
}
