package sim

import "fmt"

// Time is a point in simulated time, in nanoseconds.
//
// Nanosecond granularity covers the full dynamic range of the simulated
// device: the fastest modeled operation is a 20 ns in-flash AND and the
// slowest is a 3.5 ms block erase.
type Time int64

// Common durations, as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time with an adaptive unit, e.g. "22.5µs".
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }
