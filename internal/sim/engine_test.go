package sim

import (
	"testing"
	"testing/quick"
)

// forEachOracle runs a subtest against every Oracle implementation: the
// fast coalescing engine and the reference heap engine. Every behavioral
// engine test runs on both paths, per the Oracle identity contract.
func forEachOracle(t *testing.T, fn func(t *testing.T, e Oracle)) {
	t.Run("bucket", func(t *testing.T) { fn(t, NewEngine()) })
	t.Run("heap", func(t *testing.T) { fn(t, NewHeapEngine()) })
}

func TestEngineOrdersEventsByTime(t *testing.T) {
	forEachOracle(t, func(t *testing.T, e Oracle) {
		var got []int
		e.Schedule(30, func() { got = append(got, 3) })
		e.Schedule(10, func() { got = append(got, 1) })
		e.Schedule(20, func() { got = append(got, 2) })
		e.Run()
		if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Fatalf("events out of order: %v", got)
		}
		if e.Now() != 30 {
			t.Fatalf("clock = %v, want 30", e.Now())
		}
		if e.Steps() != 3 {
			t.Fatalf("steps = %d, want 3", e.Steps())
		}
	})
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	forEachOracle(t, func(t *testing.T, e Oracle) {
		var got []int
		for i := 0; i < 10; i++ {
			i := i
			e.Schedule(5, func() { got = append(got, i) })
		}
		e.Run()
		for i, v := range got {
			if v != i {
				t.Fatalf("same-instant events not FIFO: %v", got)
			}
		}
	})
}

func TestEngineNestedScheduling(t *testing.T) {
	forEachOracle(t, func(t *testing.T, e Oracle) {
		var fired []Time
		e.Schedule(10, func() {
			fired = append(fired, e.Now())
			e.After(5, func() { fired = append(fired, e.Now()) })
		})
		e.Run()
		if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
			t.Fatalf("nested schedule produced %v", fired)
		}
	})
}

// TestEngineNestedSameInstant pins the coalescing rule: an event scheduled
// from a callback at the very instant being drained still runs within that
// drain, after everything scheduled before it.
func TestEngineNestedSameInstant(t *testing.T) {
	forEachOracle(t, func(t *testing.T, e Oracle) {
		var got []int
		e.Schedule(5, func() {
			got = append(got, 0)
			e.Schedule(5, func() { got = append(got, 2) })
		})
		e.Schedule(5, func() { got = append(got, 1) })
		e.Run()
		if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
			t.Fatalf("same-instant nested events ran as %v, want [0 1 2]", got)
		}
	})
}

func TestEngineSchedulePastPanics(t *testing.T) {
	forEachOracle(t, func(t *testing.T, e Oracle) {
		e.Schedule(10, func() {})
		e.Run()
		defer func() {
			if recover() == nil {
				t.Fatal("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
}

func TestEngineRunUntil(t *testing.T) {
	forEachOracle(t, func(t *testing.T, e Oracle) {
		ran := 0
		e.Schedule(10, func() { ran++ })
		e.Schedule(20, func() { ran++ })
		e.Schedule(30, func() { ran++ })
		e.RunUntil(20)
		if ran != 2 {
			t.Fatalf("RunUntil(20) ran %d events, want 2", ran)
		}
		if e.Now() != 20 {
			t.Fatalf("clock = %v, want 20", e.Now())
		}
		if e.Pending() != 1 {
			t.Fatalf("pending = %d, want 1", e.Pending())
		}
	})
}

func TestEngineAdvanceExecutesInterveningEvents(t *testing.T) {
	forEachOracle(t, func(t *testing.T, e Oracle) {
		ran := false
		e.Schedule(7, func() { ran = true })
		e.Advance(10)
		if !ran {
			t.Fatal("Advance skipped an intervening event")
		}
		if e.Now() != 10 {
			t.Fatalf("clock = %v, want 10", e.Now())
		}
	})
}

// TestEngineStepAcrossBatches steps one event at a time across a batch
// boundary: the clock must land on each batch's timestamp exactly when its
// first event runs, and Step must report false only when drained.
func TestEngineStepAcrossBatches(t *testing.T) {
	forEachOracle(t, func(t *testing.T, e Oracle) {
		var at []Time
		e.Schedule(10, func() { at = append(at, e.Now()) })
		e.Schedule(10, func() { at = append(at, e.Now()) })
		e.Schedule(20, func() { at = append(at, e.Now()) })
		for i := 0; i < 3; i++ {
			if !e.Step() {
				t.Fatalf("Step %d returned false with %d pending", i, e.Pending())
			}
		}
		if e.Step() {
			t.Fatal("Step returned true on a drained queue")
		}
		want := []Time{10, 10, 20}
		for i, w := range want {
			if at[i] != w {
				t.Fatalf("event %d ran at %v, want %v (ran: %v)", i, at[i], w, at)
			}
		}
	})
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{20, "20ns"},
		{22500, "22.50µs"},
		{3500 * Microsecond, "3.500ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestCalendarQueueing(t *testing.T) {
	c := NewCalendar("bus")
	s, e := c.Reserve(0, 0, 100)
	if s != 0 || e != 100 {
		t.Fatalf("first reserve = [%v,%v), want [0,100)", s, e)
	}
	// Work arriving while busy queues behind.
	s, e = c.Reserve(50, 50, 100)
	if s != 100 || e != 200 {
		t.Fatalf("queued reserve = [%v,%v), want [100,200)", s, e)
	}
	if d := c.QueueDelay(150); d != 50 {
		t.Fatalf("QueueDelay(150) = %v, want 50", d)
	}
	// Work arriving after the horizon starts immediately.
	s, e = c.Reserve(500, 500, 10)
	if s != 500 || e != 510 {
		t.Fatalf("idle reserve = [%v,%v), want [500,510)", s, e)
	}
}

func TestCalendarNotBeforeConstraint(t *testing.T) {
	c := NewCalendar("bank")
	s, _ := c.Reserve(0, 42, 10)
	if s != 42 {
		t.Fatalf("start = %v, want 42 (operand availability)", s)
	}
}

func TestCalendarUtilization(t *testing.T) {
	c := NewCalendar("core")
	c.Reserve(0, 0, 250)
	if u := c.Utilization(1000); u != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
	if u := c.Utilization(0); u != 0 {
		t.Fatalf("utilization at t=0 = %v, want 0", u)
	}
}

func TestGroupPicksEarliestMember(t *testing.T) {
	g := NewGroup("die", 4)
	// Load members unevenly.
	g.Member(0).Reserve(0, 0, 100)
	g.Member(1).Reserve(0, 0, 50)
	g.Member(2).Reserve(0, 0, 75)
	// Member 3 is idle, so queue delay is 0 and a new reservation lands there.
	if d := g.QueueDelay(0); d != 0 {
		t.Fatalf("group queue delay = %v, want 0 while a member is idle", d)
	}
	s, _ := g.Reserve(10, 10, 5)
	if s != 10 {
		t.Fatalf("group reserve start = %v, want 10 (idle member)", s)
	}
	// All members now busy at t=0: delay is the smallest horizon (15).
	if d := g.QueueDelay(0); d != 15 {
		t.Fatalf("group queue delay = %v, want 15 once all members are busy", d)
	}
}

// Property: a calendar never books overlapping intervals, and intervals are
// handed out in non-decreasing start order for non-decreasing arrivals.
func TestCalendarNoOverlapProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		c := NewCalendar("p")
		var now, lastEnd Time
		for _, d := range durs {
			now += Time(d % 64) // arrivals move forward
			s, e := c.Reserve(now, now, Time(d%512))
			if s < lastEnd || e < s {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}
