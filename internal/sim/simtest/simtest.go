// Package simtest is the differential-oracle harness for the simulation
// core: it drives the fast coalescing engine (sim.Engine) and the
// reference heap engine (sim.HeapEngine) through identical scripts and
// demands observationally identical behavior — same callbacks, same
// order, same clock readings, same Steps and Pending accounting at every
// point. The license to rewrite the hot path is exactly this harness:
// any divergence from the reference engine, however small, is a bug in
// the fast path by definition.
//
// Scripts come from three sources, mirroring how the engines are used:
// randomized-but-seeded operation sequences (sim.RNG), reservation
// patterns recorded from real workload runs (per-instruction offloading
// decisions with their issue/completion times), and adversarial
// same-timestamp storms that maximize batch coalescing. The script
// encoding is a flat byte stream (DecodeOps) so the native fuzzer can
// mutate it directly (FuzzBucketQueue in internal/sim).
package simtest

import (
	"fmt"

	"conduit/internal/sim"
)

// Script operation kinds.
const (
	// KindSchedule schedules an event Delta after the current clock. When
	// the event fires it appends to the trace and spawns Spawn further
	// events SpawnDelta after its own timestamp (each spawning Spawn-1 in
	// turn) — nested scheduling from inside callbacks, the case that
	// distinguishes a live batch from a frozen one.
	KindSchedule byte = iota
	// KindStep executes at most one event.
	KindStep
	// KindRunUntil runs events for Delta more nanoseconds, then pins the
	// clock there.
	KindRunUntil
	// KindAdvance advances the clock by Delta, executing covered events.
	KindAdvance
	// KindRun drains the queue.
	KindRun
)

// Op is one scripted operation against an engine.
type Op struct {
	Kind       byte
	Delta      sim.Time
	Spawn      int
	SpawnDelta sim.Time
}

// Firing records one executed event: which schedule created it and what
// the clock read when it ran.
type Firing struct {
	ID int
	At sim.Time
}

// Mark snapshots the observable engine state after one script operation.
type Mark struct {
	Now     sim.Time
	Steps   uint64
	Pending int
}

// Trace is everything observable about a script execution.
type Trace struct {
	Fired []Firing
	Marks []Mark
}

// RunScript executes ops against e and returns the full observable trace.
// Event IDs are assigned in schedule order (including events scheduled
// from inside callbacks), so two engines that execute callbacks in
// different orders necessarily produce different traces. After the last
// op the queue is drained so leftover events are compared too. At most
// maxEvents events are ever scheduled; spawns beyond the cap are dropped
// (identically on every engine, since the cap triggers at the same point
// of the same deterministic order being asserted).
func RunScript(e sim.Oracle, ops []Op, maxEvents int) *Trace {
	tr := &Trace{}
	nextID := 0
	var schedule func(at sim.Time, spawn int, spawnDelta sim.Time)
	schedule = func(at sim.Time, spawn int, spawnDelta sim.Time) {
		if nextID >= maxEvents {
			return
		}
		id := nextID
		nextID++
		e.Schedule(at, func() {
			tr.Fired = append(tr.Fired, Firing{ID: id, At: e.Now()})
			for k := 0; k < spawn; k++ {
				schedule(e.Now()+spawnDelta, spawn-1, spawnDelta)
			}
		})
	}
	for _, op := range ops {
		switch op.Kind {
		case KindSchedule:
			schedule(e.Now()+op.Delta, op.Spawn, op.SpawnDelta)
		case KindStep:
			e.Step()
		case KindRunUntil:
			e.RunUntil(e.Now() + op.Delta)
		case KindAdvance:
			e.Advance(op.Delta)
		case KindRun:
			e.Run()
		}
		tr.Marks = append(tr.Marks, Mark{Now: e.Now(), Steps: e.Steps(), Pending: e.Pending()})
	}
	e.Run()
	tr.Marks = append(tr.Marks, Mark{Now: e.Now(), Steps: e.Steps(), Pending: e.Pending()})
	return tr
}

// Diff runs ops on a fresh fast engine and a fresh reference engine and
// returns a descriptive error on the first observable divergence, nil if
// the traces are identical.
func Diff(ops []Op, maxEvents int) error {
	fast := RunScript(sim.NewEngine(), ops, maxEvents)
	ref := RunScript(sim.NewHeapEngine(), ops, maxEvents)
	return Compare(fast, ref)
}

// Compare reports the first divergence between a fast-engine trace and a
// reference-engine trace, nil if none.
func Compare(fast, ref *Trace) error {
	if len(fast.Fired) != len(ref.Fired) {
		return fmt.Errorf("fired %d events, reference fired %d", len(fast.Fired), len(ref.Fired))
	}
	for i := range ref.Fired {
		if fast.Fired[i] != ref.Fired[i] {
			return fmt.Errorf("firing %d: fast ran event %d at %v, reference ran event %d at %v",
				i, fast.Fired[i].ID, fast.Fired[i].At, ref.Fired[i].ID, ref.Fired[i].At)
		}
	}
	if len(fast.Marks) != len(ref.Marks) {
		return fmt.Errorf("recorded %d marks, reference recorded %d", len(fast.Marks), len(ref.Marks))
	}
	for i := range ref.Marks {
		if fast.Marks[i] != ref.Marks[i] {
			return fmt.Errorf("after op %d: fast (now %v, steps %d, pending %d) != reference (now %v, steps %d, pending %d)",
				i, fast.Marks[i].Now, fast.Marks[i].Steps, fast.Marks[i].Pending,
				ref.Marks[i].Now, ref.Marks[i].Steps, ref.Marks[i].Pending)
		}
	}
	return nil
}

// DecodeOps turns a flat byte stream into a script, four bytes per op.
// Deltas are kept small so timestamps collide constantly — the densest
// coalescing regime is the most adversarial one for the fast engine.
// The encoding is total: every byte string is a valid script, which is
// what makes it directly fuzzable.
func DecodeOps(data []byte) []Op {
	var ops []Op
	for len(data) >= 4 {
		b0, b1, b2, b3 := data[0], data[1], data[2], data[3]
		data = data[4:]
		var op Op
		switch b0 % 8 {
		case 0, 1, 2, 3: // schedule-heavy mix
			op = Op{Kind: KindSchedule, Delta: sim.Time(b1 % 32), Spawn: int(b2 % 4), SpawnDelta: sim.Time(b3 % 8)}
		case 4:
			op = Op{Kind: KindStep}
		case 5:
			op = Op{Kind: KindRunUntil, Delta: sim.Time(b1 % 64)}
		case 6:
			op = Op{Kind: KindAdvance, Delta: sim.Time(b1 % 64)}
		case 7:
			op = Op{Kind: KindRun}
		}
		ops = append(ops, op)
	}
	return ops
}

// Reservation is one recorded calendar reservation: work of duration D
// arriving at Now, with operands ready at NotBefore.
type Reservation struct {
	Now       sim.Time
	NotBefore sim.Time
	D         sim.Time
}

// CalendarState is the full observable state of a calendar after a
// reservation sequence, plus the last reservation's returned interval.
type CalendarState struct {
	Horizon     sim.Time
	Busy        sim.Time
	QueueDelay  sim.Time
	Utilization float64
	LastStart   sim.Time
	LastEnd     sim.Time
}

// ReplayLoop replays rs one Reserve at a time — the reference path.
func ReplayLoop(c *sim.Calendar, rs []Reservation) CalendarState {
	var st CalendarState
	for _, r := range rs {
		st.LastStart, st.LastEnd = c.Reserve(r.Now, r.NotBefore, r.D)
	}
	return finishState(c, rs, st)
}

// ReplayBatched replays rs using ReserveBatch for every maximal stretch
// of identical (Now, NotBefore, D) tuples — the analytic fast-forward
// path. The returned state must be identical to ReplayLoop's.
func ReplayBatched(c *sim.Calendar, rs []Reservation) CalendarState {
	var st CalendarState
	for i := 0; i < len(rs); {
		j := i + 1
		for j < len(rs) && rs[j] == rs[i] {
			j++
		}
		if n := j - i; n > 1 {
			// Reserve returns end = start+d unconditionally, so the
			// loop's last interval is recoverable from the batch's last
			// end alone.
			_, last := c.ReserveBatch(rs[i].Now, rs[i].NotBefore, rs[i].D, n)
			st.LastStart = last - rs[i].D
			st.LastEnd = last
		} else {
			st.LastStart, st.LastEnd = c.Reserve(rs[i].Now, rs[i].NotBefore, rs[i].D)
		}
		i = j
	}
	return finishState(c, rs, st)
}

func finishState(c *sim.Calendar, rs []Reservation, st CalendarState) CalendarState {
	st.Horizon = c.Horizon()
	st.Busy = c.BusyTime()
	var last sim.Time
	if len(rs) > 0 {
		last = rs[len(rs)-1].Now
	}
	st.QueueDelay = c.QueueDelay(last)
	st.Utilization = c.Utilization(st.Horizon)
	return st
}
