package simtest_test

import (
	"testing"

	conduit "conduit"
	"conduit/internal/sim"
	"conduit/internal/sim/simtest"
	"conduit/internal/workloads"
)

// TestEnginesAgreeOnRandomSchedules drives both engines through
// randomized-but-seeded operation scripts: schedule/step/run-until mixes
// with nested scheduling from inside callbacks, deltas kept small so
// timestamps collide constantly.
func TestEnginesAgreeOnRandomSchedules(t *testing.T) {
	for seed := uint64(1); seed <= 16; seed++ {
		raw := make([]byte, 4*500)
		sim.NewRNG(seed).Bytes(raw)
		if err := simtest.Diff(simtest.DecodeOps(raw), 4096); err != nil {
			t.Fatalf("seed %d: engines diverged: %v", seed, err)
		}
	}
}

// TestEnginesAgreeOnSameTimestampStorms is the adversarial coalescing
// case: hundreds of events at one instant, callbacks that append more
// events to the very instant being drained, and RunUntil cuts landing
// exactly on the storm's timestamp.
func TestEnginesAgreeOnSameTimestampStorms(t *testing.T) {
	var ops []simtest.Op
	// A storm at t=10: plain events plus spawners that extend the live
	// batch (SpawnDelta 0) while it is draining.
	for i := 0; i < 100; i++ {
		ops = append(ops, simtest.Op{Kind: simtest.KindSchedule, Delta: 10, Spawn: i % 3, SpawnDelta: 0})
	}
	// Partial drains interleaved with more same-instant arrivals.
	ops = append(ops, simtest.Op{Kind: simtest.KindRunUntil, Delta: 10})
	for i := 0; i < 50; i++ {
		ops = append(ops,
			simtest.Op{Kind: simtest.KindSchedule, Delta: 0, Spawn: 1, SpawnDelta: 0},
			simtest.Op{Kind: simtest.KindStep})
	}
	// A second storm behind a sparse stretch, drained step by step across
	// the batch boundary.
	for i := 0; i < 100; i++ {
		ops = append(ops, simtest.Op{Kind: simtest.KindSchedule, Delta: 1000, Spawn: 2, SpawnDelta: 1})
	}
	for i := 0; i < 40; i++ {
		ops = append(ops, simtest.Op{Kind: simtest.KindStep})
	}
	ops = append(ops, simtest.Op{Kind: simtest.KindRun})
	if err := simtest.Diff(ops, 8192); err != nil {
		t.Fatalf("engines diverged: %v", err)
	}
}

// workloadReservations records a real run — every per-instruction
// offloading decision of a Conduit-policy execution — and converts it to
// the reservation pattern the timing substrate actually produced:
// work of duration Done-Issue arriving at Issue.
func workloadReservations(t *testing.T, name string) []simtest.Reservation {
	t.Helper()
	w, ok := workloads.Find(name, 1)
	if !ok {
		t.Fatalf("workload %s not found", name)
	}
	cfg := conduit.DefaultConfig()
	res, err := conduit.NewSystem(cfg).Run(w.Source, "Conduit")
	if err != nil {
		t.Fatalf("running %s: %v", name, err)
	}
	if len(res.Decisions) == 0 {
		t.Fatalf("workload %s produced no decisions", name)
	}
	rs := make([]simtest.Reservation, 0, len(res.Decisions))
	for _, d := range res.Decisions {
		if d.Done < d.Issue {
			t.Fatalf("decision %d completes before it issues", d.InstID)
		}
		rs = append(rs, simtest.Reservation{Now: d.Issue, NotBefore: d.Issue, D: d.Done - d.Issue})
	}
	return rs
}

// TestEnginesAgreeOnWorkloadTrace replays a recorded real-workload
// reservation pattern through both engines: each instruction schedules
// at its issue time and spawns its completion event Done-Issue later —
// the exact timestamp distribution (including the heavy same-instant
// completion clusters of parallel plane operations) a real run creates.
func TestEnginesAgreeOnWorkloadTrace(t *testing.T) {
	for _, name := range []string{"aes", "jacobi-1d"} {
		rs := workloadReservations(t, name)
		var ops []simtest.Op
		var prev sim.Time
		for _, r := range rs {
			// Issue times are nondecreasing in dispatch order; the clock
			// stays pinned between ops, so deltas are against prev.
			delta := r.Now - prev
			if delta < 0 {
				delta = 0
			}
			ops = append(ops, simtest.Op{Kind: simtest.KindSchedule, Delta: delta, Spawn: 1, SpawnDelta: r.D})
			// Drain incrementally so batches open and close mid-script.
			if len(ops)%7 == 0 {
				ops = append(ops, simtest.Op{Kind: simtest.KindStep})
			}
		}
		ops = append(ops, simtest.Op{Kind: simtest.KindRun})
		if err := simtest.Diff(ops, 3*len(rs)+16); err != nil {
			t.Fatalf("%s trace: engines diverged: %v", name, err)
		}
	}
}

// Clock note: KindSchedule deltas are applied against the engine's
// current clock, which only moves on Step/Run ops; interleaved drains
// make the effective absolute timestamps differ from the raw trace, but
// identically so for both engines — which is the property under test.

// TestReserveBatchMatchesLoopOnWorkloadTrace replays recorded
// reservation patterns through two calendars — one reservation at a time
// versus the ReserveBatch closed form on every uniform stretch — and
// demands identical horizons, busy time, queue delay, utilization, and
// returned intervals. Real traces are full of uniform stretches (page
// programs into one plane, per-round bbop work), which is exactly what
// the fast-forward prices analytically.
func TestReserveBatchMatchesLoopOnWorkloadTrace(t *testing.T) {
	rs := workloadReservations(t, "aes")
	// Amplify uniform stretches: repeat each recorded reservation as a
	// run of identical arrivals, as a kernel stretch on one resource does.
	var amplified []simtest.Reservation
	for i, r := range rs {
		n := 1 + i%5
		for k := 0; k < n; k++ {
			amplified = append(amplified, r)
		}
	}
	loop := simtest.ReplayLoop(sim.NewCalendar("loop"), amplified)
	batched := simtest.ReplayBatched(sim.NewCalendar("batched"), amplified)
	if loop != batched {
		t.Fatalf("batched replay diverged from loop replay:\nloop:    %+v\nbatched: %+v", loop, batched)
	}
}

// TestReserveBatchMatchesLoopRandom fuzzes the closed form against the
// loop with seeded random tuples, including zero durations and notBefore
// constraints far past the horizon.
func TestReserveBatchMatchesLoopRandom(t *testing.T) {
	rng := sim.NewRNG(42)
	for trial := 0; trial < 500; trial++ {
		now := sim.Time(rng.Intn(1000))
		notBefore := now + sim.Time(rng.Intn(2000)) - 500
		if notBefore < 0 {
			notBefore = 0
		}
		d := sim.Time(rng.Intn(300))
		n := 1 + rng.Intn(64)
		ref := sim.NewCalendar("ref")
		fast := sim.NewCalendar("fast")
		// Pre-load both with identical history.
		for i := 0; i < rng.Intn(4); i++ {
			pd := sim.Time(rng.Intn(500))
			ref.Reserve(0, 0, pd)
			fast.Reserve(0, 0, pd)
		}
		var wantFirst, wantLast sim.Time
		for i := 0; i < n; i++ {
			s, e := ref.Reserve(now, notBefore, d)
			if i == 0 {
				wantFirst = s
			}
			wantLast = e
		}
		gotFirst, gotLast := fast.ReserveBatch(now, notBefore, d, n)
		if gotFirst != wantFirst || gotLast != wantLast {
			t.Fatalf("trial %d: batch [%v,%v], loop [%v,%v]", trial, gotFirst, gotLast, wantFirst, wantLast)
		}
		if ref.Horizon() != fast.Horizon() || ref.BusyTime() != fast.BusyTime() {
			t.Fatalf("trial %d: horizon/busy diverged: loop (%v,%v) batch (%v,%v)",
				trial, ref.Horizon(), ref.BusyTime(), fast.Horizon(), fast.BusyTime())
		}
	}
}

// scanEarliest is the original full-scan member selection the indexed
// Group must reproduce exactly, FIFO ties included.
func scanEarliest(g *sim.Group) int {
	best := 0
	for i := 1; i < g.Size(); i++ {
		if g.Member(i).Horizon() < g.Member(best).Horizon() {
			best = i
		}
	}
	return best
}

// TestGroupSelectionMatchesScanOnTrace drives the winner-tree Group and
// a scan-reference twin with recorded real-workload durations plus
// tie-heavy zero-duration storms, direct member reservations, resets,
// and clones, and demands identical selection and timing throughout.
func TestGroupSelectionMatchesScanOnTrace(t *testing.T) {
	rs := workloadReservations(t, "aes")
	for _, size := range []int{2, 3, 8, 16} {
		g := sim.NewGroup("fast", size)
		ref := sim.NewGroup("ref", size)
		rng := sim.NewRNG(uint64(size))
		for i, r := range rs {
			d := r.D
			if i%11 == 0 {
				d = 0 // force FIFO ties
			}
			switch i % 5 {
			case 0, 1, 2:
				want := scanEarliest(ref)
				if got := g.Earliest(); got != g.Member(want) {
					t.Fatalf("size %d step %d: Earliest picked horizon %v, scan wants member %d", size, i, got.Horizon(), want)
				}
				s1, e1 := g.Reserve(r.Now, r.NotBefore, d)
				s2, e2 := ref.Member(want).Reserve(r.Now, r.NotBefore, d)
				if s1 != s2 || e1 != e2 {
					t.Fatalf("size %d step %d: group reserve [%v,%v) != reference [%v,%v)", size, i, s1, e1, s2, e2)
				}
			case 3: // direct member reservation behind the tree's back
				idx := rng.Intn(size)
				g.Member(idx).Reserve(r.Now, r.NotBefore, d)
				ref.Member(idx).Reserve(r.Now, r.NotBefore, d)
			case 4:
				if g.QueueDelay(r.Now) != ref.Member(scanEarliest(ref)).QueueDelay(r.Now) {
					t.Fatalf("size %d step %d: queue delay diverged", size, i)
				}
				if g.Utilization(r.Now) != ref.Utilization(r.Now) {
					t.Fatalf("size %d step %d: utilization diverged", size, i)
				}
			}
			if i == len(rs)/2 {
				g = g.Clone()
				ref = ref.Clone()
			}
		}
		g.Reset()
		ref.Reset()
		if got, want := g.Earliest(), scanEarliest(ref); got != g.Member(want) {
			t.Fatalf("size %d: post-reset Earliest != scan", size)
		}
	}
}
