// Package sim provides the discrete-event simulation core used by every
// timed model in the Conduit reproduction: a virtual clock, an event queue,
// and resource calendars that capture queueing delay on serial resources
// (flash channels, DRAM banks and buses, controller cores).
//
// The engine is deliberately single-threaded and deterministic: two runs
// with the same inputs produce identical timelines, which the experiment
// harness and the tests rely on.
package sim
