package sim

import "fmt"

// Calendar models a serial resource — a flash channel bus, a DRAM bank, a
// controller core, an execution queue — as a "busy until" horizon. Work
// reserved on the calendar executes strictly in FIFO order, which matches
// the per-resource execution queues in the simulated SSD (§4.3.2 of the
// paper: one dedicated execution queue per computation resource).
//
// Reserving d units of work at time now yields start = max(now, horizon)
// and pushes the horizon to start+d. The difference horizon-now is exactly
// the paper's resource queueing delay (delay_queue, Table 1), so offloading
// policies read it directly.
type Calendar struct {
	name    string
	horizon Time
	busy    Time // total busy time ever reserved, for utilization accounting
}

// NewCalendar returns an idle calendar. The name appears in diagnostics.
func NewCalendar(name string) *Calendar {
	return &Calendar{name: name}
}

// Name reports the resource name.
func (c *Calendar) Name() string { return c.name }

// Horizon reports the time at which the resource becomes free.
func (c *Calendar) Horizon() Time { return c.horizon }

// QueueDelay reports how long work arriving at time now would wait before
// starting: max(0, horizon-now).
func (c *Calendar) QueueDelay(now Time) Time {
	if c.horizon > now {
		return c.horizon - now
	}
	return 0
}

// Reserve books d units of serial work arriving at time now and returns the
// interval [start, end) it executes in. The earliest permitted start may be
// constrained further with notBefore (e.g. operand availability); pass now
// when there is no extra constraint.
//
// The resource is work-conserving: a reservation consumes d units of the
// resource's capacity from its arrival, but waiting for notBefore (operand
// availability) happens in a reservation buffer and does not block the
// resource — later independent work proceeds. This matches the paper's
// per-resource execution queues, whose dependence delays are tracked
// separately from queueing delays precisely because they overlap (Eqn. 1).
func (c *Calendar) Reserve(now, notBefore, d Time) (start, end Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: calendar %s: negative duration %v", c.name, d))
	}
	slot := now
	if c.horizon > slot {
		slot = c.horizon
	}
	c.horizon = slot + d
	start = slot
	if notBefore > start {
		start = notBefore
	}
	end = start + d
	c.busy += d
	return start, end
}

// BusyTime reports the cumulative busy time reserved on the resource.
func (c *Calendar) BusyTime() Time { return c.busy }

// Utilization reports busy time divided by elapsed time (0 when now is 0).
// Bandwidth-based offloading policies use this as their load signal.
func (c *Calendar) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	u := float64(c.busy) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears the calendar back to idle at time zero.
func (c *Calendar) Reset() {
	c.horizon = 0
	c.busy = 0
}

// Clone returns an independent copy of the calendar, preserving its
// horizon and accumulated busy time.
func (c *Calendar) Clone() *Calendar {
	cp := *c
	return &cp
}

// Group is a pool of identical parallel resources (e.g. the dies behind one
// channel, the banks of a DRAM rank) with FIFO selection of the earliest
// available member.
//
// The earliest member is cached between reservations: offloading policies
// read QueueDelay on every instruction, and rescanning a 16-wide group per
// read is pure waste when nothing was reserved in between. The cache is
// keyed on the cached member's horizon, which a reservation necessarily
// advances — so a Reserve (through the group or directly on the cached
// member) invalidates it, and since horizons only ever grow, a member that
// was not the minimum can never become it without the cached entry moving
// first. Resetting an individual member directly (Member(i).Reset())
// would violate that monotonicity; reset groups with Group.Reset.
type Group struct {
	name    string
	members []*Calendar

	minIdx int  // cached index of the earliest member, when minOK
	minHor Time // that member's horizon at cache time
	minOK  bool
}

// NewGroup creates a pool of n identical calendars.
func NewGroup(name string, n int) *Group {
	if n <= 0 {
		panic(fmt.Sprintf("sim: group %s must have at least one member, got %d", name, n))
	}
	g := &Group{name: name}
	for i := 0; i < n; i++ {
		g.members = append(g.members, NewCalendar(fmt.Sprintf("%s[%d]", name, i)))
	}
	return g
}

// Size reports the number of members.
func (g *Group) Size() int { return len(g.members) }

// Member returns the i'th member calendar.
func (g *Group) Member(i int) *Calendar { return g.members[i] }

// Earliest returns the member with the smallest horizon (FIFO tie-break:
// the lowest index among equal minima, identical to a full scan).
func (g *Group) Earliest() *Calendar {
	if g.minOK && g.members[g.minIdx].horizon == g.minHor {
		return g.members[g.minIdx]
	}
	best, bestIdx := g.members[0], 0
	for i, m := range g.members[1:] {
		if m.horizon < best.horizon {
			best, bestIdx = m, i+1
		}
	}
	g.minIdx, g.minHor, g.minOK = bestIdx, best.horizon, true
	return best
}

// QueueDelay reports the queueing delay of the least-loaded member.
func (g *Group) QueueDelay(now Time) Time {
	return g.Earliest().QueueDelay(now)
}

// Reserve books d units of work on the least-loaded member.
func (g *Group) Reserve(now, notBefore, d Time) (start, end Time) {
	return g.Earliest().Reserve(now, notBefore, d)
}

// Utilization reports the mean utilization across members.
func (g *Group) Utilization(now Time) float64 {
	var sum float64
	for _, m := range g.members {
		sum += m.Utilization(now)
	}
	return sum / float64(len(g.members))
}

// Reset clears every member and the earliest-member cache.
func (g *Group) Reset() {
	for _, m := range g.members {
		m.Reset()
	}
	g.minOK = false
}

// Clone returns an independent copy of the group and all its members. The
// cache carries over: the clone's members have identical horizons.
func (g *Group) Clone() *Group {
	ng := &Group{name: g.name, members: make([]*Calendar, len(g.members)),
		minIdx: g.minIdx, minHor: g.minHor, minOK: g.minOK}
	for i, m := range g.members {
		ng.members[i] = m.Clone()
	}
	return ng
}
