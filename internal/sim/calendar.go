package sim

import (
	"fmt"
	"math"
)

// Calendar models a serial resource — a flash channel bus, a DRAM bank, a
// controller core, an execution queue — as a "busy until" horizon. Work
// reserved on the calendar executes strictly in FIFO order, which matches
// the per-resource execution queues in the simulated SSD (§4.3.2 of the
// paper: one dedicated execution queue per computation resource).
//
// Reserving d units of work at time now yields start = max(now, horizon)
// and pushes the horizon to start+d. The difference horizon-now is exactly
// the paper's resource queueing delay (delay_queue, Table 1), so offloading
// policies read it directly.
type Calendar struct {
	name    string
	horizon Time
	busy    Time // total busy time ever reserved, for utilization accounting
}

// NewCalendar returns an idle calendar. The name appears in diagnostics.
func NewCalendar(name string) *Calendar {
	return &Calendar{name: name}
}

// Name reports the resource name.
func (c *Calendar) Name() string { return c.name }

// Horizon reports the time at which the resource becomes free.
func (c *Calendar) Horizon() Time { return c.horizon }

// QueueDelay reports how long work arriving at time now would wait before
// starting: max(0, horizon-now).
func (c *Calendar) QueueDelay(now Time) Time {
	if c.horizon > now {
		return c.horizon - now
	}
	return 0
}

// Reserve books d units of serial work arriving at time now and returns the
// interval [start, end) it executes in. The earliest permitted start may be
// constrained further with notBefore (e.g. operand availability); pass now
// when there is no extra constraint.
//
// The resource is work-conserving: a reservation consumes d units of the
// resource's capacity from its arrival, but waiting for notBefore (operand
// availability) happens in a reservation buffer and does not block the
// resource — later independent work proceeds. This matches the paper's
// per-resource execution queues, whose dependence delays are tracked
// separately from queueing delays precisely because they overlap (Eqn. 1).
func (c *Calendar) Reserve(now, notBefore, d Time) (start, end Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: calendar %s: negative duration %v", c.name, d))
	}
	slot := now
	if c.horizon > slot {
		slot = c.horizon
	}
	c.horizon = slot + d
	start = slot
	if notBefore > start {
		start = notBefore
	}
	end = start + d
	c.busy += d
	return start, end
}

// ReserveBatch books n back-to-back reservations of d units each, all
// arriving at time now under one notBefore constraint, in closed form —
// the analytic fast-forward for long uncontended kernel stretches (n
// uniform flash programs into one plane, n identical bbop rounds, ...).
//
// It is exactly equivalent to calling Reserve(now, notBefore, d) n times
// in a loop, by horizon arithmetic: the first reservation slots at
// slot = max(now, horizon), and every subsequent one arrives at the same
// now but finds the horizon already at slot+k*d >= now, so the k'th slot
// is slot+k*d with no interleaving possible — the stretch is uncontended
// by construction, because nothing else can reserve between the calls.
// Callers that interleave work on other resources between reservations
// (cross-resource dependence) must keep stepping reservation by
// reservation; this fast path is only for uniform single-resource runs.
// The simtest differential harness and FuzzCalendarReserve hold the
// closed form and the loop bit-identical.
//
// It returns the first reservation's start and the last one's end.
func (c *Calendar) ReserveBatch(now, notBefore, d Time, n int) (firstStart, lastEnd Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: calendar %s: negative duration %v", c.name, d))
	}
	if n <= 0 {
		panic(fmt.Sprintf("sim: calendar %s: batch of %d reservations", c.name, n))
	}
	slot := now
	if c.horizon > slot {
		slot = c.horizon
	}
	firstStart = slot
	if notBefore > firstStart {
		firstStart = notBefore
	}
	lastStart := slot + Time(n-1)*d
	if notBefore > lastStart {
		lastStart = notBefore
	}
	lastEnd = lastStart + d
	c.horizon = slot + Time(n)*d
	c.busy += Time(n) * d
	return firstStart, lastEnd
}

// BusyTime reports the cumulative busy time reserved on the resource.
func (c *Calendar) BusyTime() Time { return c.busy }

// Utilization reports busy time divided by elapsed time (0 when now is 0).
// Bandwidth-based offloading policies use this as their load signal.
func (c *Calendar) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	u := float64(c.busy) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears the calendar back to idle at time zero.
func (c *Calendar) Reset() {
	c.horizon = 0
	c.busy = 0
}

// Clone returns an independent copy of the calendar, preserving its
// horizon and accumulated busy time.
func (c *Calendar) Clone() *Calendar {
	cp := *c
	return &cp
}

// horizonInf pads winner-tree slots that hold no member.
const horizonInf = Time(math.MaxInt64)

// Group is a pool of identical parallel resources (e.g. the dies behind one
// channel, the banks of a DRAM rank) with FIFO selection of the earliest
// available member.
//
// Selection is indexed, not scanned: a winner tree over member horizons
// answers Earliest in O(1) when nothing changed and updates in O(log n)
// per group reservation, replacing the per-instruction min-horizon scan.
// Ties break to the lowest member index — identical to a full scan —
// because every comparison prefers the left child, and the left subtree
// always holds the lower indices.
//
// The tree tolerates horizons growing behind its back (a reservation made
// directly on Member(i), as tests do): alongside each cached winner it
// stores the horizon that winner had when the node was computed, and any
// node whose cached winner has since moved is recomputed on touch.
// Horizons only ever grow, so a node whose cached winner is unmoved is
// still correct — every other member of its subtree was >= that horizon
// when the node was computed and cannot have shrunk since. Resetting an
// individual member directly (Member(i).Reset()) violates exactly that
// monotonicity; reset groups with Group.Reset.
type Group struct {
	name    string
	members []*Calendar

	// Winner tree, 1-based: tree[1] is the root. Leaves sit at
	// [leaf0, leaf0+len(members)); tree holds member indices (-1 for
	// padding), thor the horizon the slot's winner had when computed.
	// Groups of one member skip the tree entirely.
	tree  []int32
	thor  []Time
	leaf0 int
}

// NewGroup creates a pool of n identical calendars.
func NewGroup(name string, n int) *Group {
	if n <= 0 {
		panic(fmt.Sprintf("sim: group %s must have at least one member, got %d", name, n))
	}
	g := &Group{name: name}
	for i := 0; i < n; i++ {
		g.members = append(g.members, NewCalendar(fmt.Sprintf("%s[%d]", name, i)))
	}
	if n > 1 {
		leaf0 := 1
		for leaf0 < n {
			leaf0 *= 2
		}
		g.leaf0 = leaf0
		g.tree = make([]int32, 2*leaf0)
		g.thor = make([]Time, 2*leaf0)
		g.rebuild()
	}
	return g
}

// rebuild recomputes the whole winner tree from current member horizons.
func (g *Group) rebuild() {
	for i := range g.members {
		g.tree[g.leaf0+i] = int32(i)
		g.thor[g.leaf0+i] = g.members[i].horizon
	}
	for i := g.leaf0 + len(g.members); i < 2*g.leaf0; i++ {
		g.tree[i] = -1
		g.thor[i] = horizonInf
	}
	for v := g.leaf0 - 1; v >= 1; v-- {
		g.play(v)
	}
}

// play recomputes internal node v from its (fresh) children. The left
// child wins ties, which keeps the lowest index among equal minima.
func (g *Group) play(v int) {
	l, r := 2*v, 2*v+1
	if g.thor[r] < g.thor[l] {
		g.tree[v], g.thor[v] = g.tree[r], g.thor[r]
	} else {
		g.tree[v], g.thor[v] = g.tree[l], g.thor[l]
	}
}

// ensure makes node v fresh: its cached winner's current horizon equals
// the stored one. A stale node is recomputed from its (ensured) children.
// Fresh nodes return in O(1); the cost of staleness lands on whoever
// mutated horizons behind the tree's back.
func (g *Group) ensure(v int) {
	idx := g.tree[v]
	if idx < 0 || g.members[idx].horizon == g.thor[v] {
		return
	}
	if v >= g.leaf0 {
		g.thor[v] = g.members[idx].horizon
		return
	}
	g.ensure(2 * v)
	g.ensure(2*v + 1)
	g.play(v)
}

// Size reports the number of members.
func (g *Group) Size() int { return len(g.members) }

// Member returns the i'th member calendar.
func (g *Group) Member(i int) *Calendar { return g.members[i] }

// earliestIdx returns the index of the member with the smallest horizon
// (FIFO tie-break: the lowest index among equal minima, identical to a
// full scan).
func (g *Group) earliestIdx() int {
	if len(g.members) == 1 {
		return 0
	}
	g.ensure(1)
	return int(g.tree[1])
}

// Earliest returns the member with the smallest horizon (FIFO tie-break:
// the lowest index among equal minima, identical to a full scan).
func (g *Group) Earliest() *Calendar {
	return g.members[g.earliestIdx()]
}

// QueueDelay reports the queueing delay of the least-loaded member.
func (g *Group) QueueDelay(now Time) Time {
	return g.Earliest().QueueDelay(now)
}

// Reserve books d units of work on the least-loaded member.
func (g *Group) Reserve(now, notBefore, d Time) (start, end Time) {
	idx := g.earliestIdx()
	start, end = g.members[idx].Reserve(now, notBefore, d)
	if len(g.members) > 1 {
		// Replay the reserved leaf's path to the root: O(log n). Sibling
		// subtrees are ensured in passing, so horizons grown behind the
		// tree's back are folded in before they can be compared stale.
		v := g.leaf0 + idx
		g.thor[v] = g.members[idx].horizon
		for v > 1 {
			v /= 2
			g.ensure(2 * v)
			g.ensure(2*v + 1)
			g.play(v)
		}
	}
	return start, end
}

// Utilization reports the mean utilization across members.
func (g *Group) Utilization(now Time) float64 {
	var sum float64
	for _, m := range g.members {
		sum += m.Utilization(now)
	}
	return sum / float64(len(g.members))
}

// Reset clears every member and rebuilds the selection tree.
func (g *Group) Reset() {
	for _, m := range g.members {
		m.Reset()
	}
	if len(g.members) > 1 {
		g.rebuild()
	}
}

// Clone returns an independent copy of the group and all its members,
// winner tree included: the clone selects exactly as the original would.
func (g *Group) Clone() *Group {
	ng := &Group{name: g.name, members: make([]*Calendar, len(g.members)), leaf0: g.leaf0}
	for i, m := range g.members {
		ng.members[i] = m.Clone()
	}
	if g.tree != nil {
		ng.tree = append([]int32(nil), g.tree...)
		ng.thor = append([]Time(nil), g.thor...)
	}
	return ng
}
