package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). Every stochastic element of the simulation draws from an
// explicitly seeded RNG so experiments replay bit-identically; the stdlib
// global generator is never used.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bytes fills p with random bytes.
func (r *RNG) Bytes(p []byte) {
	var v uint64
	for i := range p {
		if i%8 == 0 {
			v = r.Uint64()
		}
		p[i] = byte(v)
		v >>= 8
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
