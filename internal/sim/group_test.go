package sim

import (
	"testing"
	"testing/quick"
)

// naiveEarliest is the original full-scan selection the cached Earliest
// must reproduce exactly, FIFO ties (lowest index among minima) included.
func naiveEarliest(g *Group) int {
	best := 0
	for i := 1; i < g.Size(); i++ {
		if g.Member(i).Horizon() < g.Member(best).Horizon() {
			best = i
		}
	}
	return best
}

// TestGroupEarliestCacheMatchesScan drives a cached group and an uncached
// twin through identical operation sequences — reservations (with
// zero-duration ties), queue-delay reads, resets, and direct member
// reservations — and demands identical member selection and timing.
func TestGroupEarliestCacheMatchesScan(t *testing.T) {
	f := func(ops []uint16) bool {
		g := NewGroup("cached", 7)
		ref := NewGroup("ref", 7)
		now := Time(0)
		for _, o := range ops {
			kind := o % 5
			d := Time(o>>3) % 97 // durations include 0 for FIFO ties
			switch kind {
			case 0, 1: // group reserve
				wantIdx := naiveEarliest(ref)
				gotCal := g.Earliest()
				if gotCal != g.Member(wantIdx) {
					t.Logf("Earliest picked member with horizon %v, scan wants idx %d", gotCal.Horizon(), wantIdx)
					return false
				}
				s1, e1 := g.Reserve(now, now, d)
				s2, e2 := ref.Member(wantIdx).Reserve(now, now, d)
				if s1 != s2 || e1 != e2 {
					return false
				}
			case 2: // queue-delay read (cache hit path)
				if g.QueueDelay(now) != ref.Member(naiveEarliest(ref)).QueueDelay(now) {
					return false
				}
			case 3: // direct member reservation bypassing the group
				idx := int(o>>8) % g.Size()
				g.Member(idx).Reserve(now, now, d)
				ref.Member(idx).Reserve(now, now, d)
			case 4:
				if o%11 == 0 {
					g.Reset()
					ref.Reset()
					now = 0
				} else {
					now += d
				}
			}
			// Invariant: every member horizon matches the reference twin.
			for i := 0; i < g.Size(); i++ {
				if g.Member(i).Horizon() != ref.Member(i).Horizon() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCloneCarriesCache checks a cloned group selects the same
// members as its original from the same state.
func TestGroupCloneCarriesCache(t *testing.T) {
	g := NewGroup("orig", 4)
	g.Reserve(0, 0, 10)
	g.Reserve(0, 0, 20)
	g.Earliest() // populate cache
	c := g.Clone()
	for i := 0; i < 6; i++ {
		s1, e1 := g.Reserve(5, 5, 7)
		s2, e2 := c.Reserve(5, 5, 7)
		if s1 != s2 || e1 != e2 {
			t.Fatalf("reserve %d: original (%v,%v) != clone (%v,%v)", i, s1, e1, s2, e2)
		}
	}
}
