package sim_test

import (
	"testing"

	"conduit/internal/sim"
	"conduit/internal/sim/simtest"
)

// FuzzBucketQueue feeds arbitrary operation scripts to the fast
// coalescing engine and the reference heap engine and demands identical
// observable behavior: same callbacks in the same order at the same
// clock readings, same Now/Steps/Pending after every operation. In
// particular this pins coalesced-drain == one-by-one drain: scripts mix
// whole-queue Runs with single Steps and RunUntil cuts, so a batch that
// drains differently from individually popped events diverges
// immediately. Seed corpus lives in testdata/fuzz/FuzzBucketQueue.
func FuzzBucketQueue(f *testing.F) {
	// Same-timestamp storm: every event at one instant, spawners
	// appending to the batch being drained.
	f.Add([]byte{0, 5, 3, 0, 1, 5, 2, 0, 2, 5, 1, 0, 4, 0, 0, 0, 7, 0, 0, 0})
	// Sparse schedule drained via RunUntil boundaries.
	f.Add([]byte{0, 31, 0, 7, 3, 16, 0, 0, 5, 31, 0, 0, 6, 63, 0, 0})
	// Step-heavy: exercises batch open/close transitions.
	f.Add([]byte{0, 1, 1, 1, 4, 0, 0, 0, 4, 0, 0, 0, 0, 1, 2, 0, 4, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		if err := simtest.Diff(simtest.DecodeOps(data), 2048); err != nil {
			t.Fatalf("engines diverged: %v", err)
		}
	})
}

// FuzzCalendarReserve checks the calendar invariants and the
// ReserveBatch closed form on arbitrary reservation streams:
//
//   - Reserve monotonicity: the horizon never moves backward, and each
//     reservation advances it by at least its duration.
//   - Work conservation: cumulative busy time never exceeds the horizon
//     (the resource can't have done more work than time it was booked).
//   - Queue-delay consistency: QueueDelay(now) == max(0, horizon-now).
//   - Interval sanity: end == start+d, start >= now, start >= notBefore.
//   - Batch == loop: ReserveBatch(now, nb, d, n) leaves a calendar in
//     exactly the state n individual Reserves do, and returns the
//     first/last interval endpoints of that loop.
//
// Seed corpus lives in testdata/fuzz/FuzzCalendarReserve.
func FuzzCalendarReserve(f *testing.F) {
	f.Add([]byte{10, 0, 50, 3, 200, 255, 0, 1, 0, 0, 0, 8})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1})
	f.Add([]byte{255, 200, 100, 64, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		fast := sim.NewCalendar("fast")
		ref := sim.NewCalendar("ref")
		var now sim.Time
		for len(data) >= 4 {
			adv, nbOff, dRaw, nRaw := data[0], data[1], data[2], data[3]
			data = data[4:]
			now += sim.Time(adv % 64) // arrivals move forward
			notBefore := now + sim.Time(nbOff%128) - 32
			if notBefore < 0 {
				notBefore = 0
			}
			d := sim.Time(dRaw % 128)
			n := 1 + int(nRaw%16)

			prevHor, prevBusy := ref.Horizon(), ref.BusyTime()
			var wantFirst, wantLast sim.Time
			for i := 0; i < n; i++ {
				s, e := ref.Reserve(now, notBefore, d)
				if e != s+d {
					t.Fatalf("end %v != start %v + d %v", e, s, d)
				}
				if s < now || s < notBefore {
					t.Fatalf("start %v before now %v / notBefore %v", s, now, notBefore)
				}
				if i == 0 {
					wantFirst = s
				}
				wantLast = e
			}
			if ref.Horizon() < prevHor+sim.Time(n)*d {
				t.Fatalf("horizon %v advanced less than reserved work %v", ref.Horizon()-prevHor, sim.Time(n)*d)
			}
			if ref.BusyTime() != prevBusy+sim.Time(n)*d {
				t.Fatalf("busy advanced %v, want %v", ref.BusyTime()-prevBusy, sim.Time(n)*d)
			}
			if ref.BusyTime() > ref.Horizon() {
				t.Fatalf("busy %v exceeds horizon %v (work conservation)", ref.BusyTime(), ref.Horizon())
			}
			if got, want := ref.QueueDelay(now), ref.Horizon()-now; got != want && !(want < 0 && got == 0) {
				t.Fatalf("QueueDelay(%v) = %v, horizon %v", now, got, ref.Horizon())
			}

			gotFirst, gotLast := fast.ReserveBatch(now, notBefore, d, n)
			if gotFirst != wantFirst || gotLast != wantLast {
				t.Fatalf("batch [%v,%v] != loop [%v,%v]", gotFirst, gotLast, wantFirst, wantLast)
			}
			if fast.Horizon() != ref.Horizon() || fast.BusyTime() != ref.BusyTime() {
				t.Fatalf("batch calendar (hor %v, busy %v) != loop calendar (hor %v, busy %v)",
					fast.Horizon(), fast.BusyTime(), ref.Horizon(), ref.BusyTime())
			}
		}
	})
}
