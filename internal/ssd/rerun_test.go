package ssd

import (
	"reflect"
	"testing"

	"conduit/internal/isa"
	"conduit/internal/offload"
)

// TestRunConsumesLoadedImage locks in the fail-fast contract: execution
// mutates the loaded data image, so a second Run on the same device must
// refuse instead of silently computing on consumed state (and, before the
// fix, accumulating decisions/latencies/pageReady across runs).
func TestRunConsumesLoadedImage(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	d := newLoadedDevice(t, prog, inputs)
	if d.Consumed() {
		t.Fatal("freshly loaded device reports consumed")
	}
	if _, err := d.Run(offload.Conduit{}); err != nil {
		t.Fatal(err)
	}
	if !d.Consumed() {
		t.Fatal("device must report consumed after Run")
	}
	if _, err := d.Run(offload.Conduit{}); err == nil {
		t.Fatal("second Run on a consumed image must fail fast")
	}
	// Reloading restores runnability.
	d.ExitComputationMode()
	if err := d.LoadProgram(prog, inputs); err != nil {
		t.Fatal(err)
	}
	d.EnterComputationMode()
	if _, err := d.Run(offload.Conduit{}); err != nil {
		t.Fatalf("Run after reload: %v", err)
	}
}

// TestResultIsImmutableSnapshot is the regression test for the
// InstLatencies aliasing bug: the returned Result must not share mutable
// state with the device, so running a clone of the same pristine image
// cannot retroactively change an already returned result.
func TestResultIsImmutableSnapshot(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	master := newLoadedDevice(t, prog, inputs)

	d1 := master.Clone()
	res, err := d1.Run(offload.Conduit{})
	if err != nil {
		t.Fatal(err)
	}
	count := res.InstLatencies.Count()
	mean := res.InstLatencies.Mean()
	decisions := append([]Decision(nil), res.Decisions...)

	// Drive more work through another restored device; res must not move.
	d2 := master.Clone()
	if _, err := d2.Run(offload.AresFlash{}); err != nil {
		t.Fatal(err)
	}
	if res.InstLatencies.Count() != count || res.InstLatencies.Mean() != mean {
		t.Fatalf("result latencies mutated: count %d->%d mean %v->%v",
			count, res.InstLatencies.Count(), mean, res.InstLatencies.Mean())
	}
	if !reflect.DeepEqual(decisions, res.Decisions) {
		t.Fatal("result decisions mutated by a later run")
	}
}

// TestCloneRunsAreDeterministicAndIsolated is the snapshot-restore
// correctness property the deploy-amortized sweep engine rests on: every
// clone of a post-deploy device produces byte-identical results, and
// running a clone leaves the master pristine.
func TestCloneRunsAreDeterministicAndIsolated(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	master := newLoadedDevice(t, prog, inputs)

	run := func() *Result {
		t.Helper()
		res, err := master.Clone().Run(offload.Conduit{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Elapsed != r2.Elapsed {
		t.Fatalf("elapsed differs across clones: %v vs %v", r1.Elapsed, r2.Elapsed)
	}
	if !reflect.DeepEqual(r1.Decisions, r2.Decisions) {
		t.Fatal("decision traces differ across clones")
	}
	if r1.ComputeEnergy != r2.ComputeEnergy || r1.MovementEnergy != r2.MovementEnergy {
		t.Fatal("energy differs across clones")
	}
	if r1.OverheadTime != r2.OverheadTime || r1.Replays != r2.Replays {
		t.Fatal("overhead/replays differ across clones")
	}
	if !reflect.DeepEqual(r1.Counters, r2.Counters) {
		t.Fatal("counters differ across clones")
	}
	if r1.InstLatencies.Count() != r2.InstLatencies.Count() ||
		r1.InstLatencies.Sum() != r2.InstLatencies.Sum() ||
		r1.InstLatencies.P9999() != r2.InstLatencies.P9999() {
		t.Fatal("latency distributions differ across clones")
	}
	if master.Consumed() {
		t.Fatal("running clones consumed the master image")
	}
	// The master, run directly, still matches the functional reference —
	// nothing the clones did leaked back into it.
	if _, err := master.Run(offload.Conduit{}); err != nil {
		t.Fatal(err)
	}
	verifyAgainstReference(t, master, prog, inputs)
}

// TestCloneMatchesOriginalRun: a clone's run is byte-identical to running
// the original device itself — the restore path is indistinguishable from
// the fresh-deploy path.
func TestCloneMatchesOriginalRun(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	// Fresh policy instances per run: some baselines (IFP+ISP) carry
	// per-run selection state.
	for i, pol := range allPolicies() {
		master := newLoadedDevice(t, prog, inputs)
		clone := master.Clone()
		want, err := master.Run(pol)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		got, err := clone.Run(allPolicies()[i])
		if err != nil {
			t.Fatalf("%s clone: %v", pol.Name(), err)
		}
		if want.Elapsed != got.Elapsed || !reflect.DeepEqual(want.Decisions, got.Decisions) ||
			want.ComputeEnergy != got.ComputeEnergy || want.MovementEnergy != got.MovementEnergy {
			t.Fatalf("%s: clone run differs from original run", pol.Name())
		}
		verifyAgainstReference(t, clone, prog, inputs)
	}
}

// TestFaultReplayValidatesTranslation: the transient-fault replay path
// must subject its alternate resource to the same translation-table
// validation as the primary dispatch path, so every decision in the trace
// — replayed or not — names a resource with a native encoding for the op.
func TestFaultReplayValidatesTranslation(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	d := newLoadedDevice(t, prog, inputs)
	// Fail every vector instruction once, forcing a replay per inst.
	faults := 0
	for i := range prog.Insts {
		if prog.Insts[i].Op != isa.OpScalar {
			d.InjectFault(prog.Insts[i].ID, 1)
			faults++
		}
	}
	res, err := d.Run(offload.Conduit{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays != int64(faults) {
		t.Fatalf("replays = %d, want %d", res.Replays, faults)
	}
	table := isa.BuildTranslationTable()
	for _, dec := range res.Decisions {
		op := prog.Insts[dec.InstID].Op
		if op == isa.OpScalar {
			continue
		}
		if !isa.Supports(dec.Resource, op) {
			t.Errorf("inst %d: replayed %v onto %v, which does not support it", dec.InstID, op, dec.Resource)
		}
		if _, ok := table.Lookup(dec.Resource, op); !ok {
			t.Errorf("inst %d: %v dispatched to %v without a translation entry", dec.InstID, op, dec.Resource)
		}
	}
	// Replayed execution still computes correct bytes.
	verifyAgainstReference(t, d, prog, inputs)
}
