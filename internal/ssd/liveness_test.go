package ssd

import (
	"testing"

	"conduit/internal/config"
	"conduit/internal/ftl"
	"conduit/internal/isa"
	"conduit/internal/offload"
)

// Liveness-driven write-back elision: dead temporaries must never cost a
// flash program, while live (output or still-read) pages must survive.

func livenessProgram(t *testing.T, ps int) (*isa.Program, map[isa.PageID][]byte) {
	t.Helper()
	inputs := map[isa.PageID][]byte{
		0: randPage(1, ps),
		1: randPage(2, ps),
	}
	// Page 3 is a temp: written, read once, then overwritten (dead in
	// between). Page 4 is the output.
	prog := &isa.Program{
		Name:  "liveness",
		Pages: 6,
		Insts: []isa.Inst{
			{ID: 0, Op: isa.OpAdd, Dst: 3, Srcs: []isa.PageID{0, 1}, Elem: 1, Lanes: ps},
			{ID: 1, Op: isa.OpMul, Dst: 4, Srcs: []isa.PageID{3, 0}, Elem: 1, Lanes: ps},
			{ID: 2, Op: isa.OpAdd, Dst: 3, Srcs: []isa.PageID{1, 1}, Elem: 1, Lanes: ps}, // overwrites temp
			{ID: 3, Op: isa.OpXor, Dst: 4, Srcs: []isa.PageID{4, 3}, Elem: 1, Lanes: ps},
		},
		InputPages:  []isa.PageID{0, 1},
		OutputPages: []isa.PageID{4},
	}
	prog.InferDeps()
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	return prog, inputs
}

func TestDeadAfterSemantics(t *testing.T) {
	cfg := config.TestScale()
	prog, inputs := livenessProgram(t, cfg.SSD.PageSize)
	d := New(&cfg)
	if err := d.LoadProgram(prog, inputs); err != nil {
		t.Fatal(err)
	}
	// Page 3's value after inst 0 is read at inst 1: alive.
	if d.deadAfter(3, 0) {
		t.Error("temp is read at inst 1: alive after inst 0")
	}
	// After inst 1 it is only overwritten (inst 2): dead.
	if !d.deadAfter(3, 1) {
		t.Error("temp's next access is a write: dead after inst 1")
	}
	// After its last read (inst 3) it is dead (not an output).
	if !d.deadAfter(3, 3) {
		t.Error("temp has no further accesses and is not an output: dead")
	}
	// The output page is never dead at end of program.
	if d.deadAfter(4, 3) {
		t.Error("output page must stay live")
	}
	// But an output's stale version is dead when it will be overwritten
	// before any read (inst 1 writes page 4 fresh... page 4 read at 3).
	if d.deadAfter(4, 1) {
		t.Error("output read at inst 3: alive after inst 1")
	}
}

func TestLivenessMetadataOptional(t *testing.T) {
	cfg := config.TestScale()
	prog, inputs := livenessProgram(t, cfg.SSD.PageSize)
	prog.OutputPages = nil // no metadata: everything conservative-live
	d := New(&cfg)
	if err := d.LoadProgram(prog, inputs); err != nil {
		t.Fatal(err)
	}
	if d.deadAfter(3, 3) {
		t.Error("without liveness metadata every page must stay live at end")
	}
	// Intermediate overwrites still make versions dead (that is a
	// property of the access sequence, not of the output set).
	if !d.deadAfter(3, 1) {
		t.Error("overwritten-before-read is dead regardless of metadata")
	}
}

func TestOperandGroupsRespectBlockCap(t *testing.T) {
	// A chain touching more pages than one block can hold must be split,
	// not funneled into a single class.
	cfg := config.TestScale()
	ps := cfg.SSD.PageSize
	nPages := cfg.SSD.PagesPerBlock + 40
	inputs := map[isa.PageID][]byte{}
	var ids []isa.PageID
	var insts []isa.Inst
	for i := 0; i < nPages; i++ {
		inputs[isa.PageID(i)] = randPage(uint64(i), ps)
		ids = append(ids, isa.PageID(i))
	}
	// hub XORs chain every page together transitively.
	for i := 0; i+1 < nPages; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpXor,
			Dst:  isa.PageID(nPages),
			Srcs: []isa.PageID{isa.PageID(i), isa.PageID(i + 1)}, Elem: 1, Lanes: ps})
	}
	prog := buildProg(t, nPages+1, ids, insts)
	d := New(&cfg)
	if err := d.LoadProgram(prog, inputs); err != nil {
		t.Fatal(err)
	}
	// If everything landed in one class, loading would have failed (a
	// block holds PagesPerBlock pages) or all pages would share a plane.
	planes := map[int]bool{}
	geo := d.Flash.Geometry()
	for _, p := range ids {
		a, ok := d.FTL.PhysAddr(ftl.LPN(p))
		if !ok {
			t.Fatalf("page %d unmapped", p)
		}
		planes[geo.PlaneIndex(a)] = true
	}
	if len(planes) < 2 {
		t.Error("capped union must spread chains across planes")
	}
}

func TestFaultReplayPreservesLiveness(t *testing.T) {
	cfg := config.TestScale()
	prog, inputs := livenessProgram(t, cfg.SSD.PageSize)
	d := New(&cfg)
	if err := d.LoadProgram(prog, inputs); err != nil {
		t.Fatal(err)
	}
	d.EnterComputationMode()
	d.InjectFault(1, 1)
	if _, err := d.Run(offload.Conduit{}); err != nil {
		t.Fatal(err)
	}
	verifyAgainstReference(t, d, prog, inputs)
}
