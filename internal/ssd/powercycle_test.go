package ssd

import (
	"bytes"
	"testing"

	"conduit/internal/coherence"
	"conduit/internal/config"
	"conduit/internal/isa"
	"conduit/internal/offload"
)

func TestPowerCycleDurability(t *testing.T) {
	// Run the mixed program (results spread across DRAM slots and plane
	// buffers), power-cycle, and verify every output survives on flash.
	prog, inputs := mixProgram(t, 1)
	d := newLoadedDevice(t, prog, inputs)
	res, err := d.Run(offload.Conduit{})
	if err != nil {
		t.Fatal(err)
	}
	// Capture pre-cycle contents.
	want := map[int][]byte{}
	for i := range prog.Insts {
		dst := prog.Insts[i].Dst
		if dst < 0 {
			continue
		}
		b, err := d.PageBytes(dst)
		if err != nil {
			t.Fatal(err)
		}
		want[int(dst)] = b
	}

	done, err := d.PowerCycle(res.Elapsed)
	if err != nil {
		t.Fatal(err)
	}
	if done < res.Elapsed {
		t.Fatal("power-cycle flush cannot finish before it starts")
	}
	if d.Mode() != ModeIO {
		t.Fatal("drive must come back in I/O mode")
	}

	// Everything is flash-resident and clean now.
	for p, w := range want {
		e := d.Dir.Entry(p)
		if e.Owner != coherence.LocFlash || e.State != coherence.Clean || e.Version != 0 {
			t.Fatalf("page %d not committed after power cycle: %+v", p, e)
		}
		got, err := d.PageBytes(isa.PageID(p))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("page %d lost data across the power cycle", p)
		}
	}
	if d.Dir.SyncCount(coherence.SyncPowerCycle) == 0 {
		t.Fatal("power-cycle syncs must be recorded")
	}
}

func TestPowerCycleIdempotentOnCleanDrive(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	d := newLoadedDevice(t, prog, inputs)
	if _, err := d.PowerCycle(0); err != nil {
		t.Fatal(err)
	}
	// A second cycle has nothing dirty to flush.
	before := d.FTL.Stats()["migrations"]
	if _, err := d.PowerCycle(0); err != nil {
		t.Fatal(err)
	}
	if d.FTL.Stats()["migrations"] != before {
		t.Fatal("clean power cycle must not move data")
	}
}

func TestPowerCycleWithoutProgram(t *testing.T) {
	cfg := config.TestScale()
	d := New(&cfg)
	if _, err := d.PowerCycle(0); err != nil {
		t.Fatal("power cycle of an empty drive must be a no-op")
	}
}
