package ssd

import (
	"fmt"

	"conduit/internal/coherence"
	"conduit/internal/ftl"
	"conduit/internal/isa"
	"conduit/internal/sim"
)

// PowerCycle models the fifth §4.4 synchronization trigger: before power
// is lost, every page whose newest version lives in a volatile location
// (SSD DRAM or a plane's page-buffer latches) is committed to NAND flash;
// volatile state is then discarded. It returns the time at which the final
// commit completes.
//
// After a power cycle every page is flash-resident and clean, so a
// subsequent host read (or the next computation-mode run) sees exactly the
// data that was live before the cycle — the durability property the tests
// verify.
func (d *Device) PowerCycle(now sim.Time) (sim.Time, error) {
	if d.prog == nil {
		return now, nil
	}
	done := now
	for p := 0; p < d.Dir.Pages(); p++ {
		switch d.Dir.Owner(p) {
		case coherence.LocDRAM:
			slot, ok := d.dramSlot[isa.PageID(p)]
			if !ok {
				return 0, fmt.Errorf("ssd: page %d owned by DRAM without a slot", p)
			}
			data, rdone := d.DRAM.Read(now, maxT(now, d.pageReady[p]), slot)
			wdone, err := d.FTL.Write(rdone, ftl.LPN(p), data, -1)
			if err != nil {
				return 0, fmt.Errorf("ssd: power-cycle flush of page %d: %w", p, err)
			}
			if wdone > done {
				done = wdone
			}
			d.Dir.Sync(p, coherence.SyncPowerCycle)
		case coherence.LocBuffer:
			plane := d.bufferPlane(isa.PageID(p))
			if d.bufferTag[plane] != isa.PageID(p) {
				// The latch copy was already overwritten; the value was
				// dead (liveness) — nothing to preserve.
				d.Dir.Sync(p, coherence.SyncPowerCycle)
				continue
			}
			wdone, err := d.FTL.WriteBuffered(now, maxT(now, d.pageReady[p]), ftl.LPN(p), plane)
			if err != nil {
				return 0, fmt.Errorf("ssd: power-cycle flush of latched page %d: %w", p, err)
			}
			if wdone > done {
				done = wdone
			}
			d.Dir.Sync(p, coherence.SyncPowerCycle)
		}
	}
	// Volatile state is lost.
	for p, slot := range d.dramSlot {
		d.DRAM.Invalidate(slot)
		d.slotOwner[slot] = isa.NoPage
		delete(d.dramSlot, p)
	}
	for i := range d.bufferTag {
		d.bufferTag[i] = isa.NoPage
	}
	d.mode = ModeIO
	return done, nil
}
