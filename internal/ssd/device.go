package ssd

import (
	"fmt"

	"conduit/internal/coherence"
	"conduit/internal/config"
	"conduit/internal/cores"
	"conduit/internal/dram"
	"conduit/internal/energy"
	"conduit/internal/ftl"
	"conduit/internal/isa"
	"conduit/internal/nand"
	"conduit/internal/sim"
	"conduit/internal/stats"
)

// Mode is the drive's operating mode (§4.4, host-SSD communication).
type Mode uint8

// Operating modes.
const (
	// ModeIO serves regular host I/O; computation dispatch is refused.
	ModeIO Mode = iota
	// ModeComputation dedicates all resources to NDP; host I/O is
	// suspended until the host switches the drive back.
	ModeComputation
)

// Device is the simulated Conduit-capable SSD.
type Device struct {
	Cfg   *config.Config
	En    *energy.Account
	Flash *nand.Array
	DRAM  *dram.Module
	Core  *cores.Core
	FTL   *ftl.FTL
	Dir   *coherence.Directory

	mode  Mode
	prog  *isa.Program
	table *isa.TranslationTable

	// DRAM slot management. A fraction of the DRAM is reserved for FTL
	// metadata (the mapping cache); the rest caches/holds logical pages.
	dramSlot  map[isa.PageID]int
	slotOwner []isa.PageID // slot -> lpn (NoPage when free)
	slotClock []int64      // LRU stamps
	clock     int64

	// Plane page-buffer tags: which logical page each plane buffer holds
	// (NoPage when invalid/untracked).
	bufferTag []isa.PageID

	// Per-page availability time of the latest version.
	pageReady []sim.Time

	// Liveness, from compiler metadata: accesses[p] is the ordered list
	// of instruction indices touching page p, with reads and writes
	// distinguished. A page version is dead once its next access is a
	// write (the value can never be read again); output pages stay live
	// at end of program (the host may read them back).
	accesses map[isa.PageID][]access
	output   []bool

	firmware sim.Time // in-order decode front of the offloader pipeline

	// offloadCores models the controller cores that run feature
	// collection and instruction transformation (the cores not used for
	// computation or FTL work, §4.3.2 footnote 3).
	offloadCores *sim.Group

	// ifpCursor rotates the target plane for IFP work whose operands are
	// nowhere in flash, spreading latch-loaded operations across dies.
	ifpCursor int

	// curInst is the instruction currently being dispatched (liveness
	// queries during eviction).
	curInst int

	// srcScratch is the reusable operand-pointer slice of the execute
	// paths (cleared after each instruction; never cloned).
	srcScratch [][]byte

	// Fault injection: instruction ID -> remaining failures to inject.
	faults map[int]int

	// Measurement.
	decisions  []Decision
	instLat    *stats.Reservoir
	counters   *stats.Counters
	baseline   map[string]int64 // counter values at measurement reset
	loadedOnce bool

	// consumed marks that Run has executed (and mutated) the loaded data
	// image. A consumed device refuses further Runs: reload the program or
	// run on a Clone taken before consumption.
	consumed bool
}

// access is one reference to a page in program order.
type access struct {
	idx  int32
	read bool
}

// Decision records one offloading decision for Figs. 9 and 10.
type Decision struct {
	InstID   int
	Op       isa.Op
	Resource isa.Resource
	Issue    sim.Time
	Done     sim.Time
}

// New builds a device for cfg.
func New(cfg *config.Config) *Device {
	en := energy.NewAccount()
	arr := nand.NewArray(&cfg.SSD, en)
	d := &Device{
		Cfg:   cfg,
		En:    en,
		Flash: arr,
		DRAM:  dram.NewModule(&cfg.SSD, en),
		Core:  cores.New(&cfg.SSD, en),
		FTL:   ftl.New(&cfg.SSD, arr),
		table: isa.BuildTranslationTable(),

		dramSlot:  make(map[isa.PageID]int),
		bufferTag: make([]isa.PageID, cfg.SSD.Channels*cfg.SSD.DiesPerChannel*cfg.SSD.PlanesPerDie),
		faults:    make(map[int]int),
		instLat:   stats.NewReservoir(),
		counters:  stats.NewCounters(),
	}
	for i := range d.bufferTag {
		d.bufferTag[i] = isa.NoPage
	}
	offCores := cfg.SSD.Cores - 2 // one compute core, one FTL/host core
	if offCores < 1 {
		offCores = 1
	}
	d.offloadCores = sim.NewGroup("offload-core", offCores)
	// Reserve 1/8 of DRAM slots for FTL metadata (mapping cache et al.).
	usable := d.DRAM.Capacity() - d.DRAM.Capacity()/8
	d.slotOwner = make([]isa.PageID, usable)
	d.slotClock = make([]int64, usable)
	for i := range d.slotOwner {
		d.slotOwner[i] = isa.NoPage
	}
	return d
}

// Mode reports the current operating mode.
func (d *Device) Mode() Mode { return d.mode }

// EnterComputationMode suspends host I/O and dedicates all computation
// resources to NDP (§4.4).
func (d *Device) EnterComputationMode() { d.mode = ModeComputation }

// ExitComputationMode resumes regular host I/O service.
func (d *Device) ExitComputationMode() { d.mode = ModeIO }

// InjectFault makes instruction id fail count times before succeeding
// (transient-fault handling, §4.4: the scheduler replays the instruction
// on another resource using the latest data version).
func (d *Device) InjectFault(id, count int) { d.faults[id] = count }

// LoadProgram installs prog and its input data on the drive. Placement is
// NDP-aware (§4.4): pages that appear together as operands of IFP-capable
// instructions are co-located in one physical block of one plane so that
// multi-wordline operations need no migration; operand groups round-robin
// across planes to expose die-level parallelism.
//
// Loading happens before measurement: timing and energy are reset
// afterwards, matching the paper's assumption that all application data
// resides in the SSD when execution starts.
func (d *Device) LoadProgram(prog *isa.Program, inputs map[isa.PageID][]byte) error {
	if err := prog.Validate(); err != nil {
		return err
	}
	if prog.Pages > d.FTL.Capacity() {
		return fmt.Errorf("ssd: program needs %d pages, drive has %d", prog.Pages, d.FTL.Capacity())
	}
	d.prog = prog
	d.Dir = coherence.NewDirectory(prog.Pages)
	d.pageReady = make([]sim.Time, prog.Pages)
	d.accesses = make(map[isa.PageID][]access)
	d.output = make([]bool, prog.Pages)
	for i := range prog.Insts {
		in := &prog.Insts[i]
		for _, s := range in.Srcs {
			d.accesses[s] = append(d.accesses[s], access{idx: int32(i), read: true})
		}
		if in.Dst != isa.NoPage {
			d.accesses[in.Dst] = append(d.accesses[in.Dst], access{idx: int32(i)})
		}
	}
	if len(prog.OutputPages) == 0 {
		// No liveness metadata: conservatively keep everything live.
		for i := range d.output {
			d.output[i] = true
		}
	}
	for _, p := range prog.OutputPages {
		d.output[p] = true
	}

	// Pages read before ever being written behave as zero-filled inputs;
	// map them so flash reads are defined.
	effectiveInputs := append([]isa.PageID(nil), prog.InputPages...)
	inputSet := make(map[isa.PageID]bool, len(prog.InputPages))
	for _, p := range prog.InputPages {
		inputSet[p] = true
	}
	defined := make(map[isa.PageID]bool)
	for i := range prog.Insts {
		in := &prog.Insts[i]
		for _, s := range in.Srcs {
			if !inputSet[s] && !defined[s] {
				inputSet[s] = true
				effectiveInputs = append(effectiveInputs, s)
			}
		}
		if in.Dst != isa.NoPage {
			defined[in.Dst] = true
		}
	}

	groups := operandGroups(prog, effectiveInputs, inputSet, d.Cfg.SSD.PagesPerBlock)

	// Write each group contiguously into one block; spread groups across
	// planes round-robin.
	var now sim.Time
	plane := 0
	planes := d.FTL.Planes()
	written := make(map[isa.PageID]bool)
	for _, g := range groups {
		lpns := make([]ftl.LPN, len(g))
		data := make([][]byte, len(g))
		for i, p := range g {
			lpns[i] = ftl.LPN(p)
			data[i] = d.inputPage(inputs, p)
			written[p] = true
		}
		done, err := d.FTL.WriteRun(now, lpns, data, plane)
		if err != nil {
			return fmt.Errorf("ssd: loading operand group: %w", err)
		}
		now = done
		plane = (plane + 1) % planes
	}
	// Remaining input pages go round-robin, one at a time.
	for _, p := range effectiveInputs {
		if written[p] {
			continue
		}
		done, err := d.FTL.Write(now, ftl.LPN(p), d.inputPage(inputs, p), plane)
		if err != nil {
			return fmt.Errorf("ssd: loading input page %d: %w", p, err)
		}
		now = done
		plane = (plane + 1) % planes
	}

	d.resetMeasurement()
	d.loadedOnce = true
	d.consumed = false
	return nil
}

// Consumed reports whether the loaded data image has been consumed by a
// Run. A consumed device must be reloaded (or replaced by a pristine
// Clone) before it can run again.
func (d *Device) Consumed() bool { return d.consumed }

func (d *Device) inputPage(inputs map[isa.PageID][]byte, p isa.PageID) []byte {
	if data, ok := inputs[p]; ok {
		if len(data) != d.Cfg.SSD.PageSize {
			panic(fmt.Sprintf("ssd: input page %d has %d bytes, want %d", p, len(data), d.Cfg.SSD.PageSize))
		}
		return data
	}
	return make([]byte, d.Cfg.SSD.PageSize)
}

// resetMeasurement zeroes clocks, calendars, energy, and statistics so the
// measured run starts from a quiescent, loaded device.
func (d *Device) resetMeasurement() {
	d.En.Reset()
	d.firmware = 0
	d.decisions = d.decisions[:0]
	d.instLat = stats.NewReservoir()
	d.counters = stats.NewCounters()
	for i := range d.pageReady {
		d.pageReady[i] = 0
	}
	for i := 0; i < d.Cfg.SSD.TotalDies(); i++ {
		d.Flash.DieCalendar(i).Reset()
	}
	for c := 0; c < d.Cfg.SSD.Channels; c++ {
		d.Flash.BusCalendar(c).Reset()
	}
	d.DRAM.Bus().Reset()
	d.DRAM.Units().Reset()
	d.Core.Calendar().Reset()
	d.offloadCores.Reset()
	d.ifpCursor = 0
	d.baseline = d.rawCounters()
}

// rawCounters gathers the substrates' cumulative activity counters.
func (d *Device) rawCounters() map[string]int64 {
	out := make(map[string]int64)
	for k, v := range d.Flash.Stats() {
		out["flash."+k] = v
	}
	for k, v := range d.DRAM.Stats() {
		out["dram."+k] = v
	}
	for k, v := range d.Core.Stats() {
		out["core."+k] = v
	}
	for k, v := range d.FTL.Stats() {
		out["ftl."+k] = v
	}
	return out
}

// operandGroups unions the source pages of every IFP-capable instruction
// and chunks each union-find class to at most maxGroup pages (a physical
// block). Only input pages participate; temporaries are produced at run
// time and live wherever their producer leaves them.
func operandGroups(prog *isa.Program, inputOrder []isa.PageID, inputSet map[isa.PageID]bool, maxGroup int) [][]isa.PageID {
	parent := make(map[isa.PageID]isa.PageID)
	size := make(map[isa.PageID]int)
	var find func(p isa.PageID) isa.PageID
	find = func(p isa.PageID) isa.PageID {
		if parent[p] == p {
			return p
		}
		root := find(parent[p])
		parent[p] = root
		return root
	}
	union := func(a, b isa.PageID) {
		if _, ok := parent[a]; !ok {
			parent[a] = a
			size[a] = 1
		}
		if _, ok := parent[b]; !ok {
			parent[b] = b
			size[b] = 1
		}
		ra, rb := find(a), find(b)
		// Cap class growth at one physical block: beyond that,
		// co-location is impossible anyway, and unbounded transitive
		// closure (e.g. through a shared activation array) would funnel
		// whole workloads onto a handful of planes.
		if ra != rb && size[ra]+size[rb] <= maxGroup {
			parent[rb] = ra
			size[ra] += size[rb]
		}
	}
	for i := range prog.Insts {
		in := &prog.Insts[i]
		if !isa.Supports(isa.ResIFP, in.Op) {
			continue
		}
		// Union sources and destination so chains through temporaries
		// keep transitively-related input pages together.
		var prev isa.PageID = isa.NoPage
		pages := in.Srcs
		if in.Dst != isa.NoPage {
			pages = append(append([]isa.PageID(nil), in.Srcs...), in.Dst)
		}
		for _, s := range pages {
			if prev != isa.NoPage {
				union(prev, s)
			} else if _, ok := parent[s]; !ok {
				parent[s] = s
			}
			prev = s
		}
	}
	classes := make(map[isa.PageID][]isa.PageID)
	var roots []isa.PageID
	// Deterministic order: walk input pages in program order.
	seen := make(map[isa.PageID]bool)
	for _, p := range inputOrder {
		if _, ok := parent[p]; !ok || seen[p] {
			continue
		}
		seen[p] = true
		r := find(p)
		if len(classes[r]) == 0 {
			roots = append(roots, r)
		}
		classes[r] = append(classes[r], p)
	}
	var groups [][]isa.PageID
	for _, r := range roots {
		g := classes[r]
		for len(g) > maxGroup {
			groups = append(groups, g[:maxGroup])
			g = g[maxGroup:]
		}
		if len(g) > 1 {
			groups = append(groups, g)
		} else if len(g) == 1 {
			// Singletons gain nothing from co-location; let the
			// round-robin path place them.
			continue
		}
	}
	return groups
}

// PageBytes returns the current (coherence-resolved) contents of logical
// page p without timing effects — the verification hook tests use to
// compare against the reference interpreter.
func (d *Device) PageBytes(p isa.PageID) ([]byte, error) {
	if d.Cfg.SSD.TimingOnly {
		return nil, fmt.Errorf("ssd: page contents unavailable in timing-only mode; use a reference (functional) device")
	}
	if d.Dir == nil {
		return nil, fmt.Errorf("ssd: no program loaded")
	}
	switch d.Dir.Owner(int(p)) {
	case coherence.LocDRAM:
		slot, ok := d.dramSlot[p]
		if !ok {
			return nil, fmt.Errorf("ssd: page %d owned by DRAM but has no slot", p)
		}
		return d.DRAM.Data(slot), nil
	case coherence.LocBuffer:
		for plane, tag := range d.bufferTag {
			if tag == p {
				return d.planeBufferData(plane), nil
			}
		}
		return nil, fmt.Errorf("ssd: page %d owned by a plane buffer but not tagged", p)
	default:
		addr, ok := d.FTL.PhysAddr(ftl.LPN(p))
		if !ok {
			// Never written and never loaded: logical zero.
			return make([]byte, d.Cfg.SSD.PageSize), nil
		}
		return d.Flash.PageData(addr), nil
	}
}

func (d *Device) planeBufferData(plane int) []byte {
	addr := d.planeAddr(plane)
	return append([]byte(nil), d.Flash.PlaneBuffer(addr).Data...)
}

// planeAddr returns an address within the given flat plane index.
func (d *Device) planeAddr(plane int) nand.Addr {
	c := &d.Cfg.SSD
	a := nand.Addr{}
	a.Plane = plane % c.PlanesPerDie
	plane /= c.PlanesPerDie
	a.Die = plane % c.DiesPerChannel
	a.Channel = plane / c.DiesPerChannel
	return a
}

// Result is the outcome of one measured run.
type Result struct {
	Policy string
	// Elapsed is the end-to-end execution time: from the first dispatch
	// to the completion of the last instruction.
	Elapsed sim.Time
	// InstLatencies holds per-instruction latencies (dispatch to
	// completion) for tail-latency reporting (Fig. 8).
	InstLatencies *stats.Reservoir
	// Decisions is the per-instruction offloading trace (Figs. 9, 10).
	Decisions []Decision
	// Energy totals, split per Fig. 7(b).
	ComputeEnergy  float64
	MovementEnergy float64
	// Counters holds substrate activity (senses, bbops, migrations ...).
	Counters *stats.Counters
	// OverheadTime is the firmware time spent on feature collection and
	// instruction transformation (§4.5).
	OverheadTime sim.Time
	// Replays counts fault-triggered instruction replays.
	Replays int64
}

// Fractions reports the share of instructions offloaded to each resource
// (Fig. 9).
func (r *Result) Fractions() [isa.NumResources]float64 {
	var out [isa.NumResources]float64
	if len(r.Decisions) == 0 {
		return out
	}
	for _, d := range r.Decisions {
		out[d.Resource]++
	}
	for i := range out {
		out[i] /= float64(len(r.Decisions))
	}
	return out
}
