package ssd

import (
	"fmt"

	"conduit/internal/arena"
	"conduit/internal/cores"
	"conduit/internal/dram"
	"conduit/internal/ftl"
	"conduit/internal/isa"
	"conduit/internal/nand"
	"conduit/internal/sim"
	"conduit/internal/stats"
)

// RunIdeal executes the loaded program under the unrealizable Ideal policy
// of §5.3: (1) no queueing delay on any computation resource, (2) zero
// data-movement latency, and (3) each instruction on the resource with the
// lowest computation latency. Dependences still order execution — even an
// ideal machine cannot consume a value before it exists.
//
// The run is functional (results are computed for verification) and
// returns the final contents of every page alongside the timing result.
// In timing-only mode the functional pass is elided and the page map is
// nil; timing, decisions, and energy are unchanged because idealChoice
// and idealComputeEnergy never look at payloads.
func (d *Device) RunIdeal() (*Result, map[isa.PageID][]byte, error) {
	if d.prog == nil {
		return nil, nil, fmt.Errorf("ssd: no program loaded")
	}
	cfg := &d.Cfg.SSD
	// Page buffers are run-local (flash contents are copied in), so a
	// payload replaced by a later write to the same page is dead and goes
	// back to the pool. None of this exists in timing-only mode.
	var pool *arena.Pool
	var mem map[isa.PageID][]byte
	if !cfg.TimingOnly {
		pool = arena.New(cfg.PageSize)
		mem = make(map[isa.PageID][]byte, d.prog.Pages)
	}
	load := func(p isa.PageID) []byte {
		if b, ok := mem[p]; ok {
			return b
		}
		var b []byte
		if addr, ok := d.FTL.PhysAddr(ftl.LPN(p)); ok {
			b = d.Flash.PageData(addr)
		} else {
			b = pool.GetZeroed()
		}
		mem[p] = b
		return b
	}

	ready := make([]sim.Time, d.prog.Pages)
	var srcs [][]byte // reused operand-pointer scratch
	lat := stats.NewReservoir()
	decisions := make([]Decision, 0, len(d.prog.Insts))
	var elapsed sim.Time
	var computeEnergy float64

	for i := range d.prog.Insts {
		inst := &d.prog.Insts[i]
		var start sim.Time
		for _, s := range inst.Srcs {
			if ready[s] > start {
				start = ready[s]
			}
		}
		if inst.Dst != isa.NoPage && ready[inst.Dst] > start {
			start = ready[inst.Dst]
		}

		choice, comp := d.idealChoice(inst)
		computeEnergy += d.idealComputeEnergy(inst, choice)
		done := start + comp
		if inst.Dst != isa.NoPage {
			if !cfg.TimingOnly {
				// Functional execution via the shared kernels.
				srcs = srcs[:0]
				for _, s := range inst.Srcs {
					srcs = append(srcs, load(s))
				}
				out := pool.Get() // fully overwritten by Apply
				if err := cores.Apply(inst.Op, out, srcs, inst.Elem, inst.UseImm, inst.Imm); err != nil {
					return nil, nil, fmt.Errorf("ssd: ideal inst %d: %w", i, err)
				}
				if old, ok := mem[inst.Dst]; ok {
					pool.Put(old) // replaced value is dead (reads above are done)
				}
				mem[inst.Dst] = out
			}
			ready[inst.Dst] = done
		}
		decisions = append(decisions, Decision{
			InstID: inst.ID, Op: inst.Op, Resource: choice, Issue: start, Done: done,
		})
		lat.Add(comp)
		if done > elapsed {
			elapsed = done
		}
	}
	res := &Result{
		Policy:        "Ideal",
		Elapsed:       elapsed,
		InstLatencies: lat,
		Decisions:     decisions,
		ComputeEnergy: computeEnergy,
		Counters:      stats.NewCounters(),
	}
	return res, mem, nil
}

// idealChoice returns the resource with the lowest pure computation
// latency for inst, and that latency.
func (d *Device) idealChoice(inst *isa.Inst) (isa.Resource, sim.Time) {
	cfg := &d.Cfg.SSD
	if inst.Op == isa.OpScalar {
		return isa.ResISP, cfg.CoreCycles(inst.ScalarCycles)
	}
	if inst.Meta.Unvectorized {
		return isa.ResISP, cfg.CoreCycles(cores.UnvectorizedCycles(inst.Lanes))
	}
	best := isa.ResISP
	bestLat := cores.ExecLatency(cfg, inst.Op, inst.Lanes, inst.Elem)
	if op, ok := pudOp(inst.Op); ok && isa.Supports(isa.ResPuD, inst.Op) {
		if l := dram.ExecLatency(cfg, op, inst.Elem); l < bestLat {
			best, bestLat = isa.ResPuD, l
		}
	}
	if ifpSupported(inst) {
		// Ideal assumes perfectly placed operands: co-located for MWS.
		prof := nand.OperandProfile{Senses: len(inst.Srcs), MWS: true}
		var l sim.Time
		if bop, ok := ifpBitOp(inst.Op); ok {
			l = nand.EstimateBitwise(cfg, bop, prof)
		} else if aop, ok := ifpArithOp(inst.Op); ok {
			l, _, _ = nand.EstimateArith(cfg, aop, inst.Elem, prof)
		}
		if l > 0 && l < bestLat {
			best, bestLat = isa.ResIFP, l
		}
	}
	return best, bestLat
}

// idealComputeEnergy charges the pure computation energy of inst on r,
// matching the substrates' own accounting but without any movement.
func (d *Device) idealComputeEnergy(inst *isa.Inst, r isa.Resource) float64 {
	cfg := &d.Cfg.SSD
	kb := float64(cfg.PageSize) / 1024
	switch r {
	case isa.ResISP:
		if inst.Op == isa.OpScalar {
			return float64(inst.ScalarCycles) * cfg.ECorePerCycle
		}
		if inst.Meta.Unvectorized {
			return float64(cores.UnvectorizedCycles(inst.Lanes)) * cfg.ECorePerCycle
		}
		return float64(cores.Cycles(cfg, inst.Op, inst.Lanes, inst.Elem)) * cfg.ECorePerCycle
	case isa.ResPuD:
		op, _ := pudOp(inst.Op)
		return float64(dram.Rounds(op, inst.Elem)) * cfg.EBbop
	case isa.ResIFP:
		if bop, ok := ifpBitOp(inst.Op); ok {
			if bop == nand.BitXor || bop == nand.BitXnor {
				return float64(len(inst.Srcs))*cfg.EReadPerChannel + cfg.EXorPerKB*kb
			}
			return cfg.EReadPerChannel + cfg.EAndOrPerKB*kb
		}
		aop, _ := ifpArithOp(inst.Op)
		_, rounds, _ := nand.EstimateArith(cfg, aop, inst.Elem,
			nand.OperandProfile{Senses: len(inst.Srcs), MWS: true})
		return float64(len(inst.Srcs))*cfg.EReadPerChannel + float64(rounds)*cfg.ELatchPerKB*kb
	}
	return 0
}
