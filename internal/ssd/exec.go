package ssd

import (
	"fmt"

	"conduit/internal/coherence"
	"conduit/internal/ftl"
	"conduit/internal/isa"
	"conduit/internal/nand"
	"conduit/internal/sim"
)

// execute dispatches inst onto resource r at firmware time issue, performs
// the operand movement the placement rules require, executes functionally,
// updates coherence state, and returns the completion time.
func (d *Device) execute(inst *isa.Inst, r isa.Resource, issue sim.Time) (sim.Time, error) {
	// Operand availability (dependences resolved through page readiness).
	ready := issue
	for _, s := range inst.Srcs {
		if d.pageReady[s] > ready {
			ready = d.pageReady[s]
		}
	}
	if inst.Dst != isa.NoPage && d.pageReady[inst.Dst] > ready {
		ready = d.pageReady[inst.Dst]
	}

	var done sim.Time
	var err error
	switch {
	case inst.Op == isa.OpScalar:
		done, err = d.Core.ExecScalar(issue, ready, inst.ScalarCycles)
	case r == isa.ResISP:
		done, err = d.executeISP(inst, issue, ready)
	case r == isa.ResPuD:
		done, err = d.executePuD(inst, issue, ready)
	case r == isa.ResIFP:
		done, err = d.executeIFP(inst, issue, ready)
	default:
		err = fmt.Errorf("unknown resource %v", r)
	}
	if err != nil {
		return 0, err
	}
	if inst.Dst != isa.NoPage {
		d.pageReady[inst.Dst] = done
	}
	return done, nil
}

// --- shared movement helpers ----------------------------------------------

// ensureInDRAM stages page s into a DRAM slot, returning the slot and the
// time the copy is usable. Clean copies are reused for free.
func (d *Device) ensureInDRAM(now, ready sim.Time, s isa.PageID) (int, sim.Time, error) {
	if slot, ok := d.dramSlot[s]; ok {
		d.touchSlot(slot)
		return slot, ready, nil
	}
	var data []byte
	var avail sim.Time
	switch d.Dir.Owner(int(s)) {
	case coherence.LocFlash:
		var err error
		data, avail, err = d.FTL.Read(now, ready, ftl.LPN(s))
		if err != nil {
			return 0, 0, err
		}
	case coherence.LocBuffer:
		plane := d.bufferPlane(s)
		var err error
		data, avail, err = d.Flash.ReadBuffer(now, ready, d.planeAddr(plane))
		if err != nil {
			return 0, 0, err
		}
	default:
		return 0, 0, fmt.Errorf("ssd: page %d owned by DRAM without a slot", s)
	}
	slot, evictDone, err := d.allocSlot(now)
	if err != nil {
		return 0, 0, err
	}
	if evictDone > avail {
		avail = evictDone
	}
	done := d.DRAM.Write(now, avail, slot, data)
	d.DRAM.Recycle(data) // the DRAM write copied it
	d.dramSlot[s] = slot
	d.slotOwner[slot] = s
	d.touchSlot(slot)
	return slot, done, nil
}

// allocSlot returns a free DRAM slot, evicting the least-recently-used
// resident page when full. Evicting a dirty (DRAM-owned) page writes it
// back to flash — the §4.4 eviction synchronization trigger.
func (d *Device) allocSlot(now sim.Time) (int, sim.Time, error) {
	for i, owner := range d.slotOwner {
		if owner == isa.NoPage {
			return i, now, nil
		}
	}
	victim := 0
	for i := range d.slotOwner {
		if d.slotClock[i] < d.slotClock[victim] {
			victim = i
		}
	}
	page := d.slotOwner[victim]
	var done sim.Time = now
	// Dead temporaries are dropped without a write-back: nothing can read
	// them again (compiler liveness metadata).
	if d.Dir.Owner(int(page)) == coherence.LocDRAM && !d.deadAfter(page, d.curInst) {
		data, rdone := d.DRAM.Read(now, now, victim)
		wdone, err := d.FTL.Write(rdone, ftl.LPN(page), data, -1)
		if err != nil {
			return 0, 0, fmt.Errorf("ssd: evicting page %d: %w", page, err)
		}
		d.DRAM.Recycle(data) // the flash program copied it
		d.Dir.Sync(int(page), coherence.SyncEviction)
		if wdone > d.pageReady[page] {
			d.pageReady[page] = wdone
		}
		done = wdone
	}
	d.DRAM.Invalidate(victim)
	delete(d.dramSlot, page)
	d.slotOwner[victim] = isa.NoPage
	return victim, done, nil
}

func (d *Device) touchSlot(slot int) {
	d.clock++
	d.slotClock[slot] = d.clock
}

// claimDstSlot returns a DRAM slot for a destination page, reusing an
// existing resident copy's slot.
func (d *Device) claimDstSlot(now sim.Time, dst isa.PageID) (int, sim.Time, error) {
	if slot, ok := d.dramSlot[dst]; ok {
		d.touchSlot(slot)
		return slot, now, nil
	}
	slot, done, err := d.allocSlot(now)
	if err != nil {
		return 0, 0, err
	}
	d.dramSlot[dst] = slot
	d.slotOwner[slot] = dst
	d.touchSlot(slot)
	return slot, done, nil
}

// markModifiedDRAM records that dst's newest version now lives in DRAM:
// older flash and latch copies become stale.
func (d *Device) markModifiedDRAM(dst isa.PageID, done sim.Time) error {
	if d.Dir.NeedsFlush(int(dst)) {
		if err := d.flushBeforeWrap(dst); err != nil {
			return err
		}
	}
	d.Dir.Modify(int(dst), coherence.LocDRAM)
	d.clearBufferTag(dst)
	d.FTL.Invalidate(ftl.LPN(dst))
	return nil
}

// flushBeforeWrap commits a page whose version counter reached the wrap
// limit (§4.4 footnote 4). Timing is folded into the next operation via
// pageReady.
func (d *Device) flushBeforeWrap(p isa.PageID) error {
	switch d.Dir.Owner(int(p)) {
	case coherence.LocDRAM:
		slot := d.dramSlot[p]
		data, rdone := d.DRAM.Read(d.firmware, d.pageReady[p], slot)
		done, err := d.FTL.Write(rdone, ftl.LPN(p), data, -1)
		if err != nil {
			return err
		}
		d.DRAM.Recycle(data) // the flash program copied it
		d.pageReady[p] = done
	case coherence.LocBuffer:
		plane := d.bufferPlane(p)
		done, err := d.FTL.WriteBuffered(d.firmware, d.pageReady[p], ftl.LPN(p), plane)
		if err != nil {
			return err
		}
		d.bufferTag[plane] = isa.NoPage
		d.pageReady[p] = done
	}
	d.Dir.Sync(int(p), coherence.SyncEviction)
	return nil
}

func (d *Device) clearBufferTag(p isa.PageID) {
	for plane, tag := range d.bufferTag {
		if tag == p {
			d.bufferTag[plane] = isa.NoPage
		}
	}
}

// --- ISP --------------------------------------------------------------------

func (d *Device) executeISP(inst *isa.Inst, issue, ready sim.Time) (sim.Time, error) {
	srcs := d.srcScratch[:0]
	// Drop buffer references on every exit (including error returns) so
	// the scratch slice never pins a dead operand copy against GC.
	defer func() {
		for i := range srcs {
			srcs[i] = nil
		}
		d.srcScratch = srcs[:0]
	}()
	for _, s := range inst.Srcs {
		slot, avail, err := d.ensureInDRAM(issue, d.pageReady[s], s)
		if err != nil {
			return 0, err
		}
		// The core streams the operand over the DRAM bus.
		data, rdone := d.DRAM.Read(issue, avail, slot)
		srcs = append(srcs, data)
		if rdone > ready {
			ready = rdone
		}
	}
	var out []byte
	var done sim.Time
	var err error
	if inst.Meta.Unvectorized {
		out, done, err = d.Core.ExecUnvectorized(issue, ready, inst.Op, srcs, inst.Elem, inst.UseImm, inst.Imm)
	} else {
		// The in-order core is occupied while streaming operands in and
		// the result out over the DRAM bus.
		stream := sim.Time(len(srcs)+1) * d.Cfg.SSD.DRAMTransferTime(d.Cfg.SSD.PageSize)
		out, done, err = d.Core.ExecStreaming(issue, ready, inst.Op, srcs, inst.Elem, inst.UseImm, inst.Imm, stream)
	}
	if err != nil {
		return 0, err
	}
	// The operand copies are private to this instruction; the core has
	// consumed them, so they go back to the free list (the deferred
	// cleanup drops the references).
	for i := range srcs {
		d.DRAM.Recycle(srcs[i])
	}
	slot, evictDone, err := d.claimDstSlot(issue, inst.Dst)
	if err != nil {
		return 0, err
	}
	if evictDone > done {
		done = evictDone
	}
	done = d.DRAM.Write(issue, done, slot, out)
	d.Core.Recycle(out) // the DRAM write copied it
	if err := d.markModifiedDRAM(inst.Dst, done); err != nil {
		return 0, err
	}
	return done, nil
}

// --- PuD-SSD -----------------------------------------------------------------

func (d *Device) executePuD(inst *isa.Inst, issue, ready sim.Time) (sim.Time, error) {
	op, ok := pudOp(inst.Op)
	if !ok {
		return 0, fmt.Errorf("%v has no PuD mapping", inst.Op)
	}
	arity := op.Arity()
	slots := make([]int, 0, arity)
	for _, s := range inst.Srcs {
		slot, avail, err := d.ensureInDRAM(issue, d.pageReady[s], s)
		if err != nil {
			return 0, err
		}
		slots = append(slots, slot)
		if avail > ready {
			ready = avail
		}
	}
	useImm := inst.UseImm
	if inst.Op == isa.OpBroadcast {
		useImm = true
	}
	for len(slots) < arity {
		slots = append(slots, -1) // immediate placeholder
	}
	dstSlot, evictDone, err := d.claimDstSlot(issue, inst.Dst)
	if err != nil {
		return 0, err
	}
	if evictDone > ready {
		ready = evictDone
	}
	// A fresh destination slot must not alias an unpopulated source; the
	// Exec call writes dst last, so aliasing with sources is safe.
	done, err := d.DRAM.Exec(issue, ready, op, dstSlot, slots, inst.Elem, useImm, inst.Imm)
	if err != nil {
		return 0, err
	}
	if err := d.markModifiedDRAM(inst.Dst, done); err != nil {
		return 0, err
	}
	return done, nil
}

// --- IFP ---------------------------------------------------------------------

// executeIFP runs inst in the flash arrays. Operand staging follows the
// latch model of the IFP substrates: flash pages in the target plane are
// sensed (one multi-wordline sense when co-located); everything else —
// DRAM-resident pages, pages latched or stored in other planes — is
// fetched and DMA-loaded into a spare page-buffer latch over the channel.
// No flash program is ever needed to stage an operand.
func (d *Device) executeIFP(inst *isa.Inst, issue, ready sim.Time) (sim.Time, error) {
	plan := d.planIFP(inst)
	plane := plan.plane
	planeAddr := d.planeAddr(plane)
	geo := d.Flash.Geometry()

	operands := make([]nand.Operand, 0, len(inst.Srcs))
	usedBuffer := false
	bufferOperand := isa.NoPage
	for _, s := range inst.Srcs {
		owner := d.Dir.Owner(int(s))
		if owner == coherence.LocFlash {
			addr, ok := d.FTL.PhysAddr(ftl.LPN(s))
			if !ok {
				return 0, fmt.Errorf("flash operand %d unmapped", s)
			}
			if geo.PlaneIndex(addr) == plane {
				operands = append(operands, nand.Operand{Addr: addr})
				continue
			}
			// Cross-plane: read out of the source plane and latch-load
			// into the target (channel traffic on both sides).
			data, rdone := d.Flash.Read(issue, d.pageReady[s], addr)
			ldone := d.latchTransferIn(issue, rdone, plane)
			if ldone > ready {
				ready = ldone
			}
			operands = append(operands, nand.Operand{Addr: planeAddr, Data: data, Latched: true})
			continue
		}
		if owner == coherence.LocBuffer {
			p := d.bufferPlane(s)
			if p == plane && d.bufferTag[p] == s && !usedBuffer {
				// The operation will overwrite the latches, destroying
				// this operand's only copy; preserve it in DRAM first —
				// unless the value is dead after this instruction.
				if _, cached := d.dramSlot[s]; !cached && !d.deadAfter(s, inst.ID) {
					data, rdone, err := d.Flash.ReadBuffer(issue, d.pageReady[s], planeAddr)
					if err != nil {
						return 0, err
					}
					slot, edone, err := d.allocSlot(issue)
					if err != nil {
						return 0, err
					}
					wdone := d.DRAM.Write(issue, maxT(rdone, edone), slot, data)
					d.DRAM.Recycle(data) // the DRAM write copied it
					d.dramSlot[s] = slot
					d.slotOwner[slot] = s
					d.touchSlot(slot)
					if wdone > ready {
						ready = wdone
					}
				}
				operands = append(operands, nand.Operand{Addr: planeAddr, InBuffer: true})
				usedBuffer = true
				bufferOperand = s
				continue
			}
			// Latched in another plane: read it out and latch-load here.
			data, rdone, err := d.Flash.ReadBuffer(issue, d.pageReady[s], d.planeAddr(p))
			if err != nil {
				return 0, err
			}
			ldone := d.latchTransferIn(issue, rdone, plane)
			if ldone > ready {
				ready = ldone
			}
			operands = append(operands, nand.Operand{Addr: planeAddr, Data: data, Latched: true})
			continue
		}
		// DRAM-resident: stream over the DRAM bus and latch-load.
		slot, ok := d.dramSlot[s]
		if !ok {
			return 0, fmt.Errorf("page %d owned by DRAM without a slot", s)
		}
		data, rdone := d.DRAM.Read(issue, d.pageReady[s], slot)
		ldone := d.latchTransferIn(issue, rdone, plane)
		if ldone > ready {
			ready = ldone
		}
		operands = append(operands, nand.Operand{Addr: planeAddr, Data: data, Latched: true})
	}

	// The target plane's buffer may hold another live page (that is not
	// our latched operand); save it to DRAM before the operation
	// overwrites the latches. A copy-out over the channel is far cheaper
	// than a flash program and keeps coherence lazy.
	if tag := d.bufferTag[plane]; tag != isa.NoPage && tag != inst.Dst && tag != bufferOperand &&
		d.Dir.Owner(int(tag)) == coherence.LocBuffer && !d.deadAfter(tag, inst.ID-1) {
		if _, cached := d.dramSlot[tag]; !cached {
			data, rdone, err := d.Flash.ReadBuffer(issue, maxT(ready, d.pageReady[tag]), planeAddr)
			if err != nil {
				return 0, err
			}
			slot, edone, err := d.allocSlot(issue)
			if err != nil {
				return 0, err
			}
			wdone := d.DRAM.Write(issue, maxT(rdone, edone), slot, data)
			d.DRAM.Recycle(data) // the DRAM write copied it
			d.dramSlot[tag] = slot
			d.slotOwner[slot] = tag
			d.touchSlot(slot)
			d.pageReady[tag] = wdone
			if wdone > ready {
				ready = wdone
			}
		}
		d.Dir.Relocate(int(tag), coherence.LocDRAM)
		d.bufferTag[plane] = isa.NoPage
	} else if tag := d.bufferTag[plane]; tag != isa.NoPage && tag != inst.Dst && tag != bufferOperand {
		// Dead temporary: drop it.
		d.bufferTag[plane] = isa.NoPage
	}

	var done sim.Time
	var err error
	if bop, ok := ifpBitOp(inst.Op); ok {
		done, err = d.Flash.Bitwise(issue, ready, bop, operands)
	} else if aop, ok := ifpArithOp(inst.Op); ok {
		x := operands[0]
		y := nand.Operand{Addr: planeAddr}
		if len(operands) > 1 {
			y = operands[1]
		}
		done, err = d.Flash.Arith(issue, ready, aop, x, y, inst.Elem, uint(inst.Imm))
	} else {
		err = fmt.Errorf("%v has no IFP mapping", inst.Op)
	}
	if err != nil {
		return 0, err
	}
	// The latch-loaded operand copies are private to this instruction and
	// have been consumed by the in-flash operation.
	for i := range operands {
		if operands[i].Data != nil {
			d.DRAM.Recycle(operands[i].Data)
			operands[i].Data = nil
		}
	}

	// The consumed latch operand's latest version now lives in its DRAM
	// copy (saved above).
	if bufferOperand != isa.NoPage && bufferOperand != inst.Dst {
		d.Dir.Relocate(int(bufferOperand), coherence.LocDRAM)
	}

	// The result lives in the plane buffer under lazy coherence.
	if d.Dir.NeedsFlush(int(inst.Dst)) {
		if err := d.flushBeforeWrap(inst.Dst); err != nil {
			return 0, err
		}
	}
	d.clearBufferTag(inst.Dst)
	if slot, ok := d.dramSlot[inst.Dst]; ok {
		d.DRAM.Invalidate(slot)
		d.slotOwner[slot] = isa.NoPage
		delete(d.dramSlot, inst.Dst)
	}
	d.FTL.Invalidate(ftl.LPN(inst.Dst))
	d.Dir.Modify(int(inst.Dst), coherence.LocBuffer)
	d.bufferTag[plane] = inst.Dst
	return done, nil
}

// deadAfter reports whether page p's current value is unneeded after
// instruction id: its next access (if any) overwrites it before any read,
// or it is a compiler temporary with no further references. The runtime
// skips write-backs of dead values — the lazy coherence protocol only
// preserves data someone can still request.
func (d *Device) deadAfter(p isa.PageID, id int) bool {
	evs := d.accesses[p]
	// Binary search the first event strictly after id.
	lo, hi := 0, len(evs)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(evs[mid].idx) <= id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for _, ev := range evs[lo:] {
		if ev.read {
			return false // someone still reads this value
		}
		if int(ev.idx) > id {
			return true // overwritten before any read
		}
	}
	// No further access: dead unless the host may read it back.
	return !d.output[p]
}

// latchTransferIn books the channel transfer that carries latch-load data
// into the target plane's die and charges its movement energy. The
// page-buffer DMA itself is timed inside the nand primitives.
func (d *Device) latchTransferIn(now, ready sim.Time, plane int) sim.Time {
	addr := d.planeAddr(plane)
	_, done := d.Flash.BusCalendar(addr.Channel).Reserve(now, ready,
		d.Cfg.SSD.ChannelTransferTime(d.Cfg.SSD.PageSize))
	d.En.Move("flash-channel", d.Cfg.SSD.EDMAPerChannel)
	return done
}

func maxT(ts ...sim.Time) sim.Time {
	var m sim.Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}
