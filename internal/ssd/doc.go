// Package ssd assembles the simulated drive and implements Conduit's
// runtime half (§4.3.2): the SSD offloader that collects the cost-function
// features for each vectorized instruction, asks a policy for the target
// computation resource, transforms the instruction into that resource's
// native ISA, moves operands as the data-mapping rules of §4.4 require, and
// dispatches the work onto the resource's execution queue.
//
// The device is functional as well as timed: running a program produces
// both a timeline (per-instruction latencies, total runtime, energy) and
// the actual computed bytes, which tests check against the compiler's
// scalar reference interpreter.
package ssd
