package ssd

import (
	"bytes"
	"testing"

	"conduit/internal/coherence"
	"conduit/internal/config"
	"conduit/internal/cores"
	"conduit/internal/ftl"
	"conduit/internal/isa"
	"conduit/internal/nand"
	"conduit/internal/offload"
	"conduit/internal/sim"
)

// refRun executes a program with a plain map-based interpreter — the
// oracle all device runs must match bit-for-bit.
func refRun(t *testing.T, prog *isa.Program, inputs map[isa.PageID][]byte, pageSize int) map[isa.PageID][]byte {
	t.Helper()
	mem := make(map[isa.PageID][]byte)
	load := func(p isa.PageID) []byte {
		if b, ok := mem[p]; ok {
			return b
		}
		if b, ok := inputs[p]; ok {
			cp := append([]byte(nil), b...)
			mem[p] = cp
			return cp
		}
		b := make([]byte, pageSize)
		mem[p] = b
		return b
	}
	for i := range prog.Insts {
		in := &prog.Insts[i]
		if in.Op == isa.OpScalar {
			continue
		}
		srcs := make([][]byte, 0, len(in.Srcs))
		for _, s := range in.Srcs {
			srcs = append(srcs, load(s))
		}
		out := make([]byte, pageSize)
		if err := cores.Apply(in.Op, out, srcs, in.Elem, in.UseImm, in.Imm); err != nil {
			t.Fatalf("reference inst %d: %v", i, err)
		}
		mem[in.Dst] = out
	}
	return mem
}

// buildProg assembles a program, inferring deps and validating.
func buildProg(t *testing.T, pages int, inputs []isa.PageID, insts []isa.Inst) *isa.Program {
	t.Helper()
	for i := range insts {
		insts[i].ID = i
	}
	p := &isa.Program{Name: "test", Pages: pages, Insts: insts, InputPages: inputs}
	p.InferDeps()
	if err := p.Validate(); err != nil {
		t.Fatalf("test program invalid: %v", err)
	}
	return p
}

func randPage(seed uint64, size int) []byte {
	r := sim.NewRNG(seed)
	p := make([]byte, size)
	r.Bytes(p)
	return p
}

// mixProgram exercises every resource: XOR chains (IFP-friendly),
// multiplications (PuD-friendly), division and shuffle (ISP-only), and a
// scalar region.
func mixProgram(t *testing.T, lanesElem int) (*isa.Program, map[isa.PageID][]byte) {
	t.Helper()
	cfg := config.TestScale()
	ps := cfg.SSD.PageSize
	lanes := ps / lanesElem
	inputs := map[isa.PageID][]byte{}
	var inputIDs []isa.PageID
	for p := isa.PageID(0); p < 4; p++ {
		inputs[p] = randPage(uint64(p)+1, ps)
		inputIDs = append(inputIDs, p)
	}
	v := func(op isa.Op, dst isa.PageID, srcs ...isa.PageID) isa.Inst {
		return isa.Inst{Op: op, Dst: dst, Srcs: srcs, Elem: lanesElem, Lanes: lanes,
			Meta: isa.Meta{Class: op.Class()}}
	}
	insts := []isa.Inst{
		v(isa.OpXor, 4, 0, 1),        // IFP-friendly
		v(isa.OpXor, 5, 4, 2),        // chained on the previous result
		v(isa.OpMul, 6, 2, 3),        // PuD-friendly
		v(isa.OpAdd, 7, 6, 0),        // arithmetic on a fresh result
		v(isa.OpDiv, 8, 7, 1),        // ISP-only
		v(isa.OpLT, 9, 8, 2),         // predication
		v(isa.OpSelect, 10, 9, 7, 6), // three-operand predication
		{Op: isa.OpScalar, Dst: isa.NoPage, ScalarCycles: 5000},
		v(isa.OpAnd, 11, 0, 1),     // co-located inputs: MWS AND
		v(isa.OpReduceAdd, 12, 10), // ISP-only reduction
	}
	return buildProg(t, 13, inputIDs, insts), inputs
}

func newLoadedDevice(t *testing.T, prog *isa.Program, inputs map[isa.PageID][]byte) *Device {
	t.Helper()
	cfg := config.TestScale()
	d := New(&cfg)
	if err := d.LoadProgram(prog, inputs); err != nil {
		t.Fatal(err)
	}
	d.EnterComputationMode()
	return d
}

func verifyAgainstReference(t *testing.T, d *Device, prog *isa.Program, inputs map[isa.PageID][]byte) {
	t.Helper()
	want := refRun(t, prog, inputs, d.Cfg.SSD.PageSize)
	for i := range prog.Insts {
		dst := prog.Insts[i].Dst
		if dst == isa.NoPage {
			continue
		}
		got, err := d.PageBytes(dst)
		if err != nil {
			t.Fatalf("page %d: %v", dst, err)
		}
		if !bytes.Equal(got, want[dst]) {
			t.Fatalf("page %d differs from reference (inst %d, op %v)", dst, i, prog.Insts[i].Op)
		}
	}
}

func allPolicies() []offload.Policy {
	return []offload.Policy{
		offload.Conduit{},
		offload.DMOffloading{},
		offload.BWOffloading{},
		offload.ISPOnly{},
		offload.PuDSSD{},
		offload.FlashCosmos{},
		offload.AresFlash{},
		&offload.NaiveCombo{},
	}
}

func TestRunRequiresComputationMode(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	cfg := config.TestScale()
	d := New(&cfg)
	if err := d.LoadProgram(prog, inputs); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(offload.Conduit{}); err == nil {
		t.Fatal("Run in I/O mode must fail (§4.4 operating modes)")
	}
	d.EnterComputationMode()
	if _, err := d.Run(offload.Conduit{}); err != nil {
		t.Fatal(err)
	}
	d.ExitComputationMode()
	if d.Mode() != ModeIO {
		t.Fatal("mode did not revert")
	}
}

func TestEveryPolicyMatchesReference(t *testing.T) {
	for _, pol := range allPolicies() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			prog, inputs := mixProgram(t, 1)
			d := newLoadedDevice(t, prog, inputs)
			res, err := d.Run(pol)
			if err != nil {
				t.Fatal(err)
			}
			if res.Elapsed <= 0 {
				t.Fatal("execution must take time")
			}
			verifyAgainstReference(t, d, prog, inputs)
		})
	}
}

func TestEveryPolicyMatchesReference32Bit(t *testing.T) {
	for _, pol := range []offload.Policy{offload.Conduit{}, offload.AresFlash{}, offload.PuDSSD{}} {
		prog, inputs := mixProgram(t, 4)
		d := newLoadedDevice(t, prog, inputs)
		if _, err := d.Run(pol); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		verifyAgainstReference(t, d, prog, inputs)
	}
}

func TestIdealMatchesReferenceAndIsFastest(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	d := newLoadedDevice(t, prog, inputs)
	ideal, mem, err := d.RunIdeal()
	if err != nil {
		t.Fatal(err)
	}
	want := refRun(t, prog, inputs, d.Cfg.SSD.PageSize)
	for p, w := range want {
		if got, ok := mem[p]; ok && !bytes.Equal(got, w) {
			t.Fatalf("ideal page %d differs from reference", p)
		}
	}
	// A fresh device under any real policy must be no faster than Ideal.
	for _, pol := range allPolicies() {
		prog2, inputs2 := mixProgram(t, 1)
		d2 := newLoadedDevice(t, prog2, inputs2)
		res, err := d2.Run(pol)
		if err != nil {
			t.Fatal(err)
		}
		if res.Elapsed < ideal.Elapsed {
			t.Fatalf("%s (%v) beat Ideal (%v)", pol.Name(), res.Elapsed, ideal.Elapsed)
		}
	}
}

func TestDecisionsRespectSupportMatrix(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	d := newLoadedDevice(t, prog, inputs)
	res, err := d.Run(offload.Conduit{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != len(prog.Insts) {
		t.Fatalf("decisions = %d, want one per instruction", len(res.Decisions))
	}
	for _, dec := range res.Decisions {
		op := prog.Insts[dec.InstID].Op
		if op == isa.OpScalar {
			if dec.Resource != isa.ResISP {
				t.Fatalf("scalar region on %v", dec.Resource)
			}
			continue
		}
		if !isa.Supports(dec.Resource, op) {
			t.Fatalf("%v dispatched to %v which does not support it", op, dec.Resource)
		}
	}
}

func TestXorChainReusesLatchedResult(t *testing.T) {
	// A chain of XORs whose intermediate stays in the plane buffer should
	// execute later links with a single sense (cheaper than the first).
	cfg := config.TestScale()
	ps := cfg.SSD.PageSize
	inputs := map[isa.PageID][]byte{0: randPage(1, ps), 1: randPage(2, ps), 2: randPage(3, ps)}
	v := func(dst isa.PageID, a, b isa.PageID) isa.Inst {
		return isa.Inst{Op: isa.OpXor, Dst: dst, Srcs: []isa.PageID{a, b}, Elem: 1, Lanes: ps}
	}
	prog := buildProg(t, 5, []isa.PageID{0, 1, 2}, []isa.Inst{
		v(3, 0, 1),
		v(4, 3, 2), // 3 is latched in the plane buffer
	})
	d := newLoadedDevice(t, prog, inputs)
	res, err := d.Run(offload.AresFlash{})
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstReference(t, d, prog, inputs)
	// Compare pure execution cost: time beyond operand readiness (the
	// second XOR cannot start before the first finishes).
	first := res.Decisions[0].Done - res.Decisions[0].Issue
	second := res.Decisions[1].Done - res.Decisions[0].Done
	if second >= first {
		t.Fatalf("chained XOR (%v) should be cheaper than the first (%v): latch reuse", second, first)
	}
	// The chained result's owner is the plane buffer (lazy coherence).
	if d.Dir.Owner(4) != coherence.LocBuffer {
		t.Fatalf("chain result owner = %v, want buffer", d.Dir.Owner(4))
	}
}

func TestCrossResourceCoherence(t *testing.T) {
	// IFP produces a result into the plane buffer; an ISP-only op then
	// consumes it. The read must see the buffer version.
	cfg := config.TestScale()
	ps := cfg.SSD.PageSize
	inputs := map[isa.PageID][]byte{0: randPage(7, ps), 1: randPage(8, ps)}
	prog := buildProg(t, 4, []isa.PageID{0, 1}, []isa.Inst{
		{Op: isa.OpXor, Dst: 2, Srcs: []isa.PageID{0, 1}, Elem: 1, Lanes: ps},
		{Op: isa.OpDiv, Dst: 3, Srcs: []isa.PageID{2, 1}, Elem: 1, Lanes: ps},
	})
	d := newLoadedDevice(t, prog, inputs)
	if _, err := d.Run(offload.AresFlash{}); err != nil {
		t.Fatal(err)
	}
	verifyAgainstReference(t, d, prog, inputs)
}

func TestScatteredOperandsUseLatchLoads(t *testing.T) {
	// Build a program whose AND operands are NOT co-located at load time
	// (each appears alone in IFP-capable ops before they meet), then force
	// IFP execution: the runtime stages the cross-plane operand through a
	// latch load — no flash program or page migration — and still computes
	// correctly.
	cfg := config.TestScale()
	ps := cfg.SSD.PageSize
	inputs := map[isa.PageID][]byte{}
	for p := isa.PageID(0); p < 8; p++ {
		inputs[p] = randPage(uint64(p)+20, ps)
	}
	// The two NOT results live in plane buffers (or DRAM after eviction);
	// the AND must stage at least one of them through a latch load.
	prog := buildProg(t, 12, []isa.PageID{0, 1, 2, 3, 4, 5, 6, 7}, []isa.Inst{
		{Op: isa.OpNot, Dst: 8, Srcs: []isa.PageID{2}, Elem: 1, Lanes: ps},
		{Op: isa.OpNot, Dst: 9, Srcs: []isa.PageID{6}, Elem: 1, Lanes: ps},
		{Op: isa.OpAnd, Dst: 10, Srcs: []isa.PageID{8, 9}, Elem: 1, Lanes: ps},
	})
	d := newLoadedDevice(t, prog, inputs)
	res, err := d.Run(offload.AresFlash{})
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstReference(t, d, prog, inputs)
	if res.Counters.Get("ftl.migrations") != 0 {
		t.Fatal("latch-load staging must not migrate pages")
	}
	if res.Counters.Get("flash.programs") != 0 {
		t.Fatal("operand staging must not program flash pages")
	}
	if res.Counters.Get("flash.fc_transfers") == 0 {
		t.Fatal("cross-plane operand must be latch-loaded")
	}
}

func TestFaultReplayOnAnotherResource(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	d := newLoadedDevice(t, prog, inputs)
	d.InjectFault(0, 1) // first instruction fails once
	res, err := d.Run(offload.Conduit{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays != 1 {
		t.Fatalf("replays = %d, want 1", res.Replays)
	}
	verifyAgainstReference(t, d, prog, inputs)
}

func TestOverheadAccounting(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	d := newLoadedDevice(t, prog, inputs)
	res, err := d.Run(offload.Conduit{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OverheadTime <= 0 {
		t.Fatal("offloader overhead must be accounted")
	}
	perInst := res.OverheadTime / sim.Time(len(prog.Insts))
	// §4.5: 3.77µs average, up to 33µs.
	if perInst < sim.Microsecond || perInst > 40*sim.Microsecond {
		t.Fatalf("per-instruction overhead %v outside the paper's envelope", perInst)
	}
}

func TestEnergySplitRecorded(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	d := newLoadedDevice(t, prog, inputs)
	res, err := d.Run(offload.Conduit{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ComputeEnergy <= 0 || res.MovementEnergy <= 0 {
		t.Fatalf("energy split %v/%v must both be positive", res.ComputeEnergy, res.MovementEnergy)
	}
}

func TestFractionsSumToOne(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	d := newLoadedDevice(t, prog, inputs)
	res, err := d.Run(offload.Conduit{})
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Fractions()
	sum := fr[0] + fr[1] + fr[2]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestISPOnlyNeverTouchesOtherResources(t *testing.T) {
	prog, inputs := mixProgram(t, 1)
	d := newLoadedDevice(t, prog, inputs)
	res, err := d.Run(offload.ISPOnly{})
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Fractions()
	if fr[isa.ResISP] != 1 {
		t.Fatalf("ISP fraction = %v, want 1", fr[isa.ResISP])
	}
	if res.Counters.Get("dram.bbops") != 0 {
		t.Fatal("ISP-only run must not execute PuD operations")
	}
	if res.Counters.Get("flash.mws_ops") != 0 {
		t.Fatal("ISP-only run must not execute MWS operations")
	}
}

func TestDRAMCapacityPressureCausesEviction(t *testing.T) {
	// Touch more pages than the DRAM has slots; evictions must occur and
	// results must stay correct.
	cfg := config.TestScale()
	cfg.SSD.DRAMSize = int64(8 * cfg.SSD.PageSize) // 8 slots, 7 usable
	ps := cfg.SSD.PageSize
	inputs := map[isa.PageID][]byte{}
	var ids []isa.PageID
	var insts []isa.Inst
	const n = 12
	for i := 0; i < n; i++ {
		p := isa.PageID(i)
		inputs[p] = randPage(uint64(i)+1, ps)
		ids = append(ids, p)
	}
	for i := 0; i < n; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpMul, Dst: isa.PageID(n + i),
			Srcs: []isa.PageID{isa.PageID(i), isa.PageID((i + 1) % n)}, Elem: 1, Lanes: ps})
	}
	prog := buildProg(t, 2*n, ids, insts)
	d := New(&cfg)
	if err := d.LoadProgram(prog, inputs); err != nil {
		t.Fatal(err)
	}
	d.EnterComputationMode()
	if _, err := d.Run(offload.PuDSSD{}); err != nil {
		t.Fatal(err)
	}
	verifyAgainstReference(t, d, prog, inputs)
	// Eviction syncs dirty pages back to flash.
	if d.Dir.SyncCount(coherence.SyncEviction) == 0 {
		t.Fatal("capacity pressure must evict (and sync) DRAM pages")
	}
}

func TestVersionCounterFlushBeforeWrap(t *testing.T) {
	// Accumulate into one page 300 times: the version counter must flush
	// before wrapping (§4.4 footnote 4) and the value must stay correct.
	cfg := config.TestScale()
	ps := cfg.SSD.PageSize
	inputs := map[isa.PageID][]byte{0: randPage(5, ps)}
	var insts []isa.Inst
	for i := 0; i < 300; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpAdd, Dst: 1,
			Srcs: []isa.PageID{1, 0}, Elem: 1, Lanes: ps})
	}
	prog := buildProg(t, 2, []isa.PageID{0}, insts)
	d := New(&cfg)
	if err := d.LoadProgram(prog, inputs); err != nil {
		t.Fatal(err)
	}
	d.EnterComputationMode()
	if _, err := d.Run(offload.PuDSSD{}); err != nil {
		t.Fatal(err)
	}
	got, err := d.PageBytes(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ps; i++ {
		want := byte(300 * int(inputs[0][i]))
		if got[i] != want {
			t.Fatalf("lane %d = %d, want %d", i, got[i], want)
		}
	}
}

func TestLoadProgramColocatesIFPOperands(t *testing.T) {
	cfg := config.TestScale()
	ps := cfg.SSD.PageSize
	inputs := map[isa.PageID][]byte{0: randPage(1, ps), 1: randPage(2, ps), 2: randPage(3, ps)}
	prog := buildProg(t, 4, []isa.PageID{0, 1, 2}, []isa.Inst{
		{Op: isa.OpAnd, Dst: 3, Srcs: []isa.PageID{0, 1}, Elem: 1, Lanes: ps},
		{Op: isa.OpXor, Dst: 3, Srcs: []isa.PageID{1, 2}, Elem: 1, Lanes: ps},
	})
	d := newLoadedDevice(t, prog, inputs)
	if !d.FTL.SameBlock([]ftl.LPN{0, 1}) {
		t.Fatal("AND co-operands must be loaded into one block")
	}
	if !d.FTL.SamePlane([]ftl.LPN{1, 2}) {
		t.Fatal("XOR co-operands must share a plane")
	}
}

func TestECCFaultsOnTheIOPath(t *testing.T) {
	// Correctable raw-bit errors on an operand page are fixed by the FC
	// transparently (with counted corrections); uncorrectable ones
	// surface as a run error — there is no other copy to replay from.
	build := func() (*Device, *isa.Program, map[isa.PageID][]byte) {
		cfg := config.TestScale()
		ps := cfg.SSD.PageSize
		inputs := map[isa.PageID][]byte{0: randPage(1, ps), 1: randPage(2, ps)}
		prog := buildProg(t, 3, []isa.PageID{0, 1}, []isa.Inst{
			// Division forces the ISP path, which stages operands through
			// the checked FTL read.
			{Op: isa.OpDiv, Dst: 2, Srcs: []isa.PageID{0, 1}, Elem: 1, Lanes: ps},
		})
		d := New(&cfg)
		if err := d.LoadProgram(prog, inputs); err != nil {
			t.Fatal(err)
		}
		d.EnterComputationMode()
		return d, prog, inputs
	}

	d, prog, inputs := build()
	addr, ok := d.FTL.PhysAddr(0)
	if !ok {
		t.Fatal("input page unmapped")
	}
	d.Flash.InjectBitErrors(addr, nand.ECCCorrectableBits)
	res, err := d.Run(offload.Conduit{})
	if err != nil {
		t.Fatalf("correctable errors must not fail the run: %v", err)
	}
	if res.Counters.Get("flash.ecc_corrections") == 0 {
		t.Fatal("correction must be counted")
	}
	verifyAgainstReference(t, d, prog, inputs)

	d2, _, _ := build()
	addr2, _ := d2.FTL.PhysAddr(0)
	d2.Flash.InjectBitErrors(addr2, nand.ECCCorrectableBits*4)
	if _, err := d2.Run(offload.Conduit{}); err == nil {
		t.Fatal("uncorrectable page must fail the run")
	}
}
