package ssd

import (
	"conduit/internal/isa"
	"conduit/internal/sim"
)

// Clone returns an independent deep copy of the device: flash contents and
// page states, FTL mapping and allocation state (including the mapping
// cache's exact LRU order), DRAM slots, plane-buffer tags, the coherence
// directory, calendars, energy account, fault injections, and all
// measurement state.
//
// Clone is the deploy-amortization primitive: deploying a compiled program
// over the NVMe path (per-page I/O writes, chunked fw-download, fw-commit)
// costs far more than copying the resulting device state, so a policy
// sweep deploys once, keeps the post-deploy device as a pristine master,
// and runs every policy on its own Clone. A clone restored this way
// behaves byte-identically to a freshly deployed device.
//
// The clone shares only immutable state with the original — the
// configuration, the translation table, the loaded program, and the
// compiler's liveness metadata, none of which Run mutates — so the clone
// and the original may be driven concurrently from different goroutines.
// The Device itself is still single-goroutine: clone once per worker.
// Freeze marks the device's large mutable tables copy-on-write (see
// ftl.FTL.Freeze): subsequent Clones alias them and pay only for what
// they write. Call it once on a pristine post-deploy master.
func (d *Device) Freeze() { d.FTL.Freeze() }

func (d *Device) Clone() *Device {
	en := d.En.Clone()
	arr := d.Flash.Clone(en)
	c := &Device{
		Cfg:   d.Cfg,
		En:    en,
		Flash: arr,
		DRAM:  d.DRAM.Clone(en),
		Core:  d.Core.Clone(en),
		FTL:   d.FTL.Clone(arr),

		mode:  d.mode,
		prog:  d.prog,  // immutable after LoadProgram
		table: d.table, // read-only after construction

		dramSlot:  make(map[isa.PageID]int, len(d.dramSlot)),
		slotOwner: append([]isa.PageID(nil), d.slotOwner...),
		slotClock: append([]int64(nil), d.slotClock...),
		clock:     d.clock,

		bufferTag: append([]isa.PageID(nil), d.bufferTag...),
		pageReady: append([]sim.Time(nil), d.pageReady...),

		accesses: d.accesses, // read-only after LoadProgram
		output:   d.output,   // read-only after LoadProgram

		firmware:     d.firmware,
		offloadCores: d.offloadCores.Clone(),
		ifpCursor:    d.ifpCursor,
		curInst:      d.curInst,

		faults: make(map[int]int, len(d.faults)),

		decisions:  append([]Decision(nil), d.decisions...),
		instLat:    d.instLat.Clone(),
		counters:   d.counters.Clone(),
		baseline:   make(map[string]int64, len(d.baseline)),
		loadedOnce: d.loadedOnce,
		consumed:   d.consumed,
	}
	if d.Dir != nil {
		c.Dir = d.Dir.Clone()
	}
	for p, slot := range d.dramSlot {
		c.dramSlot[p] = slot
	}
	for id, n := range d.faults {
		c.faults[id] = n
	}
	for k, v := range d.baseline {
		c.baseline[k] = v
	}
	return c
}
