package ssd

import (
	"fmt"
	"sort"

	"conduit/internal/coherence"
	"conduit/internal/cores"
	"conduit/internal/dram"
	"conduit/internal/ftl"
	"conduit/internal/isa"
	"conduit/internal/nand"
	"conduit/internal/offload"
	"conduit/internal/sim"
	"conduit/internal/stats"
)

// pudOp maps a vector IR operation onto the PuD-SSD native set.
func pudOp(op isa.Op) (dram.Op, bool) {
	switch op {
	case isa.OpAnd:
		return dram.OpAnd, true
	case isa.OpOr:
		return dram.OpOr, true
	case isa.OpNot:
		return dram.OpNot, true
	case isa.OpXor:
		return dram.OpXor, true
	case isa.OpNand:
		return dram.OpNand, true
	case isa.OpNor:
		return dram.OpNor, true
	case isa.OpAdd:
		return dram.OpAdd, true
	case isa.OpSub:
		return dram.OpSub, true
	case isa.OpMul:
		return dram.OpMul, true
	case isa.OpLT:
		return dram.OpLT, true
	case isa.OpGT:
		return dram.OpGT, true
	case isa.OpEQ:
		return dram.OpEQ, true
	case isa.OpMin:
		return dram.OpMin, true
	case isa.OpMax:
		return dram.OpMax, true
	case isa.OpSelect:
		return dram.OpSelect, true
	case isa.OpCopy, isa.OpBroadcast:
		return dram.OpCopy, true
	case isa.OpShuffle:
		return dram.OpShuffle, true
	case isa.OpShl:
		return dram.OpShl, true
	case isa.OpShr:
		return dram.OpShr, true
	default:
		return 0, false
	}
}

// ifpBitOp maps a vector IR operation onto the MWS/latch bitwise set.
func ifpBitOp(op isa.Op) (nand.BitOp, bool) {
	switch op {
	case isa.OpAnd:
		return nand.BitAnd, true
	case isa.OpOr:
		return nand.BitOr, true
	case isa.OpNand:
		return nand.BitNand, true
	case isa.OpNor:
		return nand.BitNor, true
	case isa.OpXor:
		return nand.BitXor, true
	case isa.OpNot:
		return nand.BitNot, true
	default:
		return 0, false
	}
}

// ifpArithOp maps a vector IR operation onto the shift-and-add set.
func ifpArithOp(op isa.Op) (nand.ArithOp, bool) {
	switch op {
	case isa.OpAdd:
		return nand.ArithAdd, true
	case isa.OpMul:
		return nand.ArithMul, true
	case isa.OpShl:
		return nand.ArithShl, true
	case isa.OpShr:
		return nand.ArithShr, true
	default:
		return 0, false
	}
}

// ifpSupported reports whether the device can run inst in flash: the IR op
// must map to an IFP primitive, and immediates only make sense as shift
// amounts (materializing a broadcast page in NAND is never worth it).
func ifpSupported(inst *isa.Inst) bool {
	if !isa.Supports(isa.ResIFP, inst.Op) {
		return false
	}
	if inst.UseImm && inst.Op != isa.OpShl && inst.Op != isa.OpShr {
		return false
	}
	return true
}

// Run executes the loaded program under policy, returning the measured
// result. The device must be in computation mode. Each Run consumes the
// loaded data image (execution mutates pages, calendars, and coherence
// state), so a second Run on the same device fails fast: reload the
// program, or Clone the device before running and keep the original as a
// pristine snapshot. The returned Result is an immutable value snapshot —
// nothing the device does afterwards can change it.
func (d *Device) Run(policy offload.Policy) (*Result, error) {
	if d.prog == nil {
		return nil, fmt.Errorf("ssd: no program loaded")
	}
	if d.mode != ModeComputation {
		return nil, fmt.Errorf("ssd: device is in I/O mode; enter computation mode first (§4.4)")
	}
	if d.consumed {
		return nil, fmt.Errorf("ssd: loaded image already consumed by a previous Run; reload the program or run on a Clone of the post-deploy device")
	}
	d.consumed = true
	// Per-run measurement state starts clean even if an earlier Run
	// errored out partway.
	d.decisions = d.decisions[:0]
	d.instLat = stats.NewReservoir()
	var overhead sim.Time
	var elapsed sim.Time
	var replays int64

	for i := range d.prog.Insts {
		inst := &d.prog.Insts[i]
		d.curInst = i

		// Feature collection (§4.5): L2P lookups per operand, dependence
		// and queue tracking, movement and computation table lookups, and
		// the transformation-table lookup. The work pipelines across the
		// controller cores reserved for offloading (§4.3.2 footnote 3),
		// so the per-instruction latency below is not a serial bottleneck.
		var collect sim.Time
		for _, s := range inst.Srcs {
			if d.Dir.Owner(int(s)) == coherence.LocFlash {
				_, lat, err := d.FTL.Lookup(ftl.LPN(s))
				if err != nil {
					return nil, fmt.Errorf("ssd: inst %d operand %d: %w", i, s, err)
				}
				collect += lat
			} else {
				collect += d.Cfg.SSD.TL2PLookupDRAM
			}
		}
		collect += d.Cfg.SSD.TDepTrack + d.Cfg.SSD.TQueueTrack +
			d.Cfg.SSD.TDMLookup + d.Cfg.SSD.TCompLookup + d.Cfg.SSD.TTranslate
		// Each instruction's collection occupies the next free offload
		// core (FIFO); decode of instruction i+1 overlaps i's — only
		// same-core occupancy serializes.
		_, decoded := d.offloadCores.Reserve(0, 0, collect)
		if decoded > d.firmware {
			d.firmware = decoded
		}
		overhead += collect

		f := d.features(inst)
		choice := policy.Select(f)
		if !f.Supported[choice] {
			return nil, fmt.Errorf("ssd: policy %s chose %v for unsupported %v", policy.Name(), choice, inst.Op)
		}
		if _, ok := d.table.Lookup(choice, inst.Op); !ok && inst.Op != isa.OpScalar {
			return nil, fmt.Errorf("ssd: no translation for %v on %v", inst.Op, choice)
		}

		issue := d.firmware
		// Transient-fault handling (§4.4): a failed attempt burns the
		// expected execution time, then the scheduler replays the
		// instruction on another resource using the latest data version.
		if n := d.faults[inst.ID]; n > 0 {
			d.faults[inst.ID] = n - 1
			replays++
			f.Supported[choice] = false
			alt := choice
			if anySupported(f) {
				alt = policy.Select(f)
				if !f.Supported[alt] {
					alt = isa.ResISP
				}
			} else {
				// No other resource supports this op (e.g. division is
				// ISP-only): the replay re-runs on the same resource.
				f.Supported[choice] = true
			}
			// The replayed choice goes through the same translation-table
			// validation as the primary path: dispatching an instruction a
			// resource has no native encoding for is a bug regardless of
			// which path selected the resource.
			if _, ok := d.table.Lookup(alt, inst.Op); !ok && inst.Op != isa.OpScalar {
				return nil, fmt.Errorf("ssd: replay of inst %d: no translation for %v on %v", i, inst.Op, alt)
			}
			d.firmware += f.CompLatency[choice] // timeout window
			choice = alt
		}

		done, err := d.execute(inst, choice, issue)
		if err != nil {
			return nil, fmt.Errorf("ssd: inst %d (%v) on %v: %w", i, inst.Op, choice, err)
		}
		d.decisions = append(d.decisions, Decision{
			InstID: inst.ID, Op: inst.Op, Resource: choice, Issue: issue, Done: done,
		})
		d.instLat.Add(done - issue)
		if done > elapsed {
			elapsed = done
		}
	}

	res := &Result{
		Policy:         policy.Name(),
		Elapsed:        elapsed,
		InstLatencies:  d.instLat.Clone(),
		Decisions:      append([]Decision(nil), d.decisions...),
		ComputeEnergy:  d.En.ComputeTotal(),
		MovementEnergy: d.En.MovementTotal(),
		Counters:       d.snapshotCounters(),
		OverheadTime:   overhead,
		Replays:        replays,
	}
	return res, nil
}

// anySupported reports whether any resource can execute the featured
// instruction.
func anySupported(f *offload.Features) bool {
	for _, s := range f.Supported {
		if s {
			return true
		}
	}
	return false
}

// snapshotCounters reports substrate activity since the last measurement
// reset (excluding program-load provisioning). Counters are recorded in
// sorted key order so results are deterministic run-for-run (map
// iteration order is not).
func (d *Device) snapshotCounters() *stats.Counters {
	raw := d.rawCounters()
	keys := make([]string, 0, len(raw))
	for k := range raw {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	c := stats.NewCounters()
	for _, k := range keys {
		c.Add(k, raw[k]-d.baseline[k])
	}
	return c
}

// features gathers the six cost-function inputs for inst (Table 1).
func (d *Device) features(inst *isa.Inst) *offload.Features {
	f := &offload.Features{Inst: inst}
	now := d.firmware

	// Dependence delay: when the newest versions of the operands (and the
	// destination, for WAR/WAW ordering) become available.
	var ready sim.Time
	for _, s := range inst.Srcs {
		if d.pageReady[s] > ready {
			ready = d.pageReady[s]
		}
	}
	if inst.Dst != isa.NoPage && d.pageReady[inst.Dst] > ready {
		ready = d.pageReady[inst.Dst]
	}
	if ready > now {
		f.DepDelay = ready - now
	}

	if inst.Op == isa.OpScalar {
		f.Supported[isa.ResISP] = true
		f.CompLatency[isa.ResISP] = d.Cfg.SSD.CoreCycles(inst.ScalarCycles)
		f.QueueDelay[isa.ResISP] = d.Core.Calendar().QueueDelay(now)
		f.BWUtil[isa.ResISP] = d.Core.Calendar().Utilization(now)
		return f
	}

	lanes, elem := inst.Lanes, inst.Elem

	// The SSD-internal shared buses are prone to contention (§4.2); work
	// that must cross the DRAM bus queues behind its backlog, so the
	// queueing-delay feature of bus-dependent resources includes it.
	busDelay := d.DRAM.Bus().QueueDelay(now)

	// ISP: always supported; operands stream through SSD DRAM.
	stageCost, stageChDelay := d.moveEstimateDRAM(inst)
	f.Supported[isa.ResISP] = true
	f.CompLatency[isa.ResISP] = cores.ExecLatency(&d.Cfg.SSD, inst.Op, lanes, elem)
	f.MoveLatency[isa.ResISP] = stageCost + d.coreTraffic(inst)
	f.QueueDelay[isa.ResISP] = maxT(d.Core.Calendar().QueueDelay(now), busDelay)
	if stageCost > 0 {
		f.QueueDelay[isa.ResISP] = maxT(f.QueueDelay[isa.ResISP], stageChDelay)
	}
	f.BWUtil[isa.ResISP] = d.Core.Calendar().Utilization(now)

	// Un-vectorized loops execute lane-serially and only the
	// general-purpose cores can run them (§7, applicability discussion).
	if inst.Meta.Unvectorized {
		f.CompLatency[isa.ResISP] = d.Cfg.SSD.CoreCycles(cores.UnvectorizedCycles(lanes))
		return f
	}

	// PuD-SSD. Operand staging crosses the DRAM bus, so its backlog
	// gates PuD work whenever operands are not already resident.
	if op, ok := pudOp(inst.Op); ok && isa.Supports(isa.ResPuD, inst.Op) {
		f.Supported[isa.ResPuD] = true
		f.CompLatency[isa.ResPuD] = dram.ExecLatency(&d.Cfg.SSD, op, elem)
		f.MoveLatency[isa.ResPuD] = stageCost
		f.QueueDelay[isa.ResPuD] = d.DRAM.Units().QueueDelay(now)
		if stageCost > 0 {
			f.QueueDelay[isa.ResPuD] = maxT(f.QueueDelay[isa.ResPuD], busDelay, stageChDelay)
		}
		f.BWUtil[isa.ResPuD] = d.DRAM.Units().Utilization(now)
	}

	// IFP.
	if ifpSupported(inst) {
		f.Supported[isa.ResIFP] = true
		plan := d.planIFP(inst)
		if bop, ok := ifpBitOp(inst.Op); ok {
			f.CompLatency[isa.ResIFP] = nand.EstimateBitwise(&d.Cfg.SSD, bop, plan.profile)
		} else if aop, ok := ifpArithOp(inst.Op); ok {
			lat, _, _ := nand.EstimateArith(&d.Cfg.SSD, aop, elem, plan.profile)
			f.CompLatency[isa.ResIFP] = lat
		}
		f.MoveLatency[isa.ResIFP] = plan.moveCost
		f.ResultMove[isa.ResIFP] = plan.resultCost
		f.QueueDelay[isa.ResIFP] = d.Flash.DieCalendar(plan.die).QueueDelay(now)
		if plan.profile.Loads > 0 {
			ch := d.planeAddr(plan.plane).Channel
			f.QueueDelay[isa.ResIFP] = maxT(f.QueueDelay[isa.ResIFP],
				d.Flash.BusCalendar(ch).QueueDelay(now))
		}
		f.BWUtil[isa.ResIFP] = d.Flash.DieCalendar(plan.die).Utilization(now)
	}
	return f
}

// moveEstimateDRAM is the static, contention-free cost of staging all
// operands of inst into SSD DRAM (the shared prerequisite of ISP and PuD
// execution). Per §4.3.2, the precomputed data-movement feature captures
// the transfer cost over the SSD's internal interconnects — the flash
// channels and the DRAM bus — not the flash sensing latency, which
// overlaps on otherwise-idle dies.
func (d *Device) moveEstimateDRAM(inst *isa.Inst) (sim.Time, sim.Time) {
	cfg := &d.Cfg.SSD
	now := d.firmware
	var t, chDelay sim.Time
	for _, s := range inst.Srcs {
		if _, cached := d.dramSlot[s]; cached {
			continue
		}
		switch d.Dir.Owner(int(s)) {
		case coherence.LocFlash, coherence.LocBuffer:
			t += cfg.ChannelTransferTime(cfg.PageSize) + cfg.DRAMTransferTime(cfg.PageSize)
			if a, ok := d.FTL.PhysAddr(ftl.LPN(s)); ok {
				if qd := d.Flash.BusCalendar(a.Channel).QueueDelay(now); qd > chDelay {
					chDelay = qd
				}
			}
		}
	}
	return t, chDelay
}

// coreTraffic is the extra DRAM-bus traffic of ISP execution: the core
// streams every operand in and the result out.
func (d *Device) coreTraffic(inst *isa.Inst) sim.Time {
	cfg := &d.Cfg.SSD
	n := len(inst.Srcs) + 1 // sources in, result out
	return sim.Time(n) * cfg.DRAMTransferTime(inst.VectorBytes())
}

func (d *Device) meanDieUtil(now sim.Time) float64 {
	var sum float64
	n := d.Cfg.SSD.TotalDies()
	for i := 0; i < n; i++ {
		sum += d.Flash.DieCalendar(i).Utilization(now)
	}
	return sum / float64(n)
}

// ifpPlan describes how inst would execute in flash: the target plane and
// die, the operand profile (senses vs latch loads), and the contention-free
// movement cost of staging non-resident operands.
type ifpPlan struct {
	plane      int
	die        int
	profile    nand.OperandProfile
	moveCost   sim.Time // operand staging over the interconnects
	resultCost sim.Time // copying a live result out of the latches
}

// planIFP computes the placement plan and static movement estimate for
// executing inst in flash, mirroring executeIFP's latch-load staging.
func (d *Device) planIFP(inst *isa.Inst) ifpPlan {
	cfg := &d.Cfg.SSD
	geo := d.Flash.Geometry()
	plan := ifpPlan{plane: -1}

	// Prefer the plane whose buffer already latches an operand (free
	// chained reuse), else the first flash-resident operand's plane, else
	// a rotating cursor that spreads latch-loaded work across dies.
	var flashAddrs []nand.Addr
	for _, s := range inst.Srcs {
		switch d.Dir.Owner(int(s)) {
		case coherence.LocBuffer:
			if plan.plane == -1 && d.bufferTag[d.bufferPlane(s)] == s {
				plan.plane = d.bufferPlane(s)
			}
		case coherence.LocFlash:
			if a, ok := d.FTL.PhysAddr(ftl.LPN(s)); ok {
				flashAddrs = append(flashAddrs, a)
			}
		}
	}
	if plan.plane == -1 && len(flashAddrs) > 0 {
		plan.plane = geo.PlaneIndex(flashAddrs[0])
	}
	if plan.plane == -1 {
		plan.plane = d.ifpCursor
		d.ifpCursor = (d.ifpCursor + 1) % len(d.bufferTag)
	}
	plan.die = plan.plane / cfg.PlanesPerDie

	pageMove := cfg.ChannelTransferTime(cfg.PageSize)
	sameBlock := true
	var firstInPlane *nand.Addr
	for _, s := range inst.Srcs {
		switch d.Dir.Owner(int(s)) {
		case coherence.LocFlash:
			a, _ := d.FTL.PhysAddr(ftl.LPN(s))
			if geo.PlaneIndex(a) == plan.plane {
				plan.profile.Senses++
				if firstInPlane == nil {
					cp := a
					firstInPlane = &cp
				} else if geo.BlockIndex(a) != geo.BlockIndex(*firstInPlane) {
					sameBlock = false
				}
			} else {
				// Cross-plane: read out and load in (two channel hops;
				// the source sense overlaps on its own die).
				plan.profile.Loads++
				plan.moveCost += 2 * pageMove
			}
		case coherence.LocBuffer:
			if d.bufferPlane(s) == plan.plane && d.bufferTag[plan.plane] == s && plan.profile.Latched == 0 {
				plan.profile.Latched++
			} else {
				plan.profile.Loads++
				plan.moveCost += 2 * pageMove
			}
		case coherence.LocDRAM:
			plan.profile.Loads++
			plan.moveCost += cfg.DRAMTransferTime(cfg.PageSize) + pageMove
		}
	}
	if plan.profile.Senses > 1 && sameBlock {
		switch inst.Op {
		case isa.OpAnd, isa.OpNand, isa.OpOr, isa.OpNor:
			plan.profile.MWS = true
		}
	}
	// Result placement is data movement too: an in-flash result lands in
	// the plane buffer, and if its page stays live it must eventually be
	// copied out (channel + DRAM bus) before the latches are reused. Dead
	// temporaries (compiler liveness metadata) cost nothing. This is kept
	// separate from operand movement: Conduit's holistic cost function
	// prices it, the prior DM model does not (§3.2).
	if inst.Dst != isa.NoPage && !d.deadAfter(inst.Dst, inst.ID) {
		plan.resultCost = pageMove + cfg.DRAMTransferTime(cfg.PageSize)
	}
	return plan
}

// bufferPlane returns the flat plane index whose buffer holds page s, or 0.
func (d *Device) bufferPlane(s isa.PageID) int {
	for plane, tag := range d.bufferTag {
		if tag == s {
			return plane
		}
	}
	return 0
}
