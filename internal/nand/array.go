package nand

import (
	"fmt"

	"conduit/internal/config"
	"conduit/internal/energy"
	"conduit/internal/sim"
	"conduit/internal/vecmath"
)

// pageState tracks the lifecycle of one physical page.
type pageState uint8

const (
	pageErased pageState = iota
	pageProgrammed
)

// Buffer is the per-plane page-buffer latch set. IFP primitives leave their
// result here; it stays until the next operation on the plane overwrites it,
// it is flushed to a flash page, or it is read out over the channel.
type Buffer struct {
	Data  []byte
	Valid bool
	// Tag identifies what the buffer holds; the SSD runtime uses it to
	// reuse latched results (the paper's data-reuse amortization).
	Tag int64
}

// Operand names one input to an in-flash operation: a programmed flash
// page (sensed), the current contents of the plane's page buffer (chained
// result reuse), or data loaded into a spare page-buffer latch over the
// channel (ParaBit/Ares-Flash style latch operands — how DRAM-resident or
// cross-plane data participates without a flash program).
type Operand struct {
	Addr     Addr
	InBuffer bool   // take the plane buffer instead of sensing Addr
	Data     []byte // latch-loaded data; Addr is ignored when set
	// Latched marks a latch-loaded operand independently of Data, so a
	// timing-only array (config.SSD.TimingOnly) classifies operands
	// identically with the payload elided. Functional callers may leave it
	// unset; a non-nil Data implies it.
	Latched bool
}

// BitOp enumerates the bulk bitwise operations IFP supports
// (Flash-Cosmos multi-wordline sensing plus latch-based XOR).
type BitOp int

// Bitwise operation kinds.
const (
	BitAnd BitOp = iota
	BitOr
	BitNand
	BitNor
	BitXor
	BitXnor
	BitNot
)

// ArithOp enumerates the latch-based integer arithmetic operations
// (Ares-Flash shift-and-add).
type ArithOp int

// Arithmetic operation kinds.
const (
	ArithAdd ArithOp = iota
	ArithSub
	ArithMul
	ArithShl
	ArithShr
)

// Array is the functional + timed NAND flash subsystem. With
// cfg.TimingOnly set it elides the data plane: page payloads are never
// stored and results never computed, while timing, energy, counters, and
// every validation error path stay identical to a functional array.
type Array struct {
	cfg    *config.SSD
	geo    Geometry
	en     *energy.Account
	timing bool
	dies   []*sim.Calendar // one per die: senses/programs/erases/latch ops serialize here
	bus    []*sim.Calendar // one per channel: data transfers serialize here

	data      map[int][]byte // flat page index -> bytes (lazy; erased pages read as 0xFF)
	state     []pageState
	erases    []int       // per block
	buffers   []*Buffer   // per plane
	bitErrors map[int]int // injected raw-cell bit flips per page (see ecc.go)

	// Counters for experiment reporting.
	senses, programs, eraseOps, mwsOps, latchRounds, fcTransfers int64
	bytesOut, bytesIn                                            int64
	eccCorrections, eccFailures                                  int64

	eProg, eErase float64 // derived energies (see NewArray)
}

// NewArray builds the flash subsystem for cfg, charging energy to en.
func NewArray(cfg *config.SSD, en *energy.Account) *Array {
	geo := NewGeometry(cfg)
	a := &Array{
		cfg:       cfg,
		geo:       geo,
		en:        en,
		timing:    cfg.TimingOnly,
		data:      make(map[int][]byte),
		bitErrors: make(map[int]int),
		state:     make([]pageState, cfg.TotalPages()),
		erases:    make([]int, geo.TotalBlocks()),
		buffers:   make([]*Buffer, cfg.Channels*cfg.DiesPerChannel*cfg.PlanesPerDie),
	}
	for i := range a.buffers {
		a.buffers[i] = &Buffer{}
	}
	for d := 0; d < cfg.TotalDies(); d++ {
		a.dies = append(a.dies, sim.NewCalendar(fmt.Sprintf("die%d", d)))
	}
	for c := 0; c < cfg.Channels; c++ {
		a.bus = append(a.bus, sim.NewCalendar(fmt.Sprintf("flashch%d", c)))
	}
	// Table 2 gives no program/erase energies; scale the sense energy by
	// the latency ratio, which matches published NAND power envelopes.
	a.eProg = cfg.EReadPerChannel * float64(cfg.TProg) / float64(cfg.TRead)
	a.eErase = cfg.EReadPerChannel * float64(cfg.TErase) / float64(cfg.TRead)
	return a
}

// Geometry exposes the address arithmetic of the array.
func (a *Array) Geometry() Geometry { return a.geo }

// DieCalendar returns the timing calendar of die d (flattened index), used
// by offloading policies to observe IFP queueing delay.
func (a *Array) DieCalendar(d int) *sim.Calendar { return a.dies[d] }

// BusCalendar returns the timing calendar of channel c.
func (a *Array) BusCalendar(c int) *sim.Calendar { return a.bus[c] }

// PlaneBuffer returns the page buffer of the plane holding addr.
func (a *Array) PlaneBuffer(addr Addr) *Buffer { return a.buffers[a.geo.PlaneIndex(addr)] }

// EraseCount reports how many times block b (flat index) has been erased.
func (a *Array) EraseCount(b int) int { return a.erases[b] }

// PageData returns the stored bytes of addr without timing effects (test
// and verification hook). Erased pages read as 0xFF.
func (a *Array) PageData(addr Addr) []byte {
	return append([]byte(nil), a.raw(addr)...)
}

// IsProgrammed reports whether addr holds data.
func (a *Array) IsProgrammed(addr Addr) bool {
	return a.state[a.geo.PageIndex(addr)] == pageProgrammed
}

func (a *Array) raw(addr Addr) []byte {
	idx := a.geo.PageIndex(addr)
	if d, ok := a.data[idx]; ok {
		return d
	}
	erased := make([]byte, a.cfg.PageSize)
	for i := range erased {
		erased[i] = 0xFF
	}
	return erased
}

// --- Basic I/O operations -------------------------------------------------

// Read senses addr and transfers the page to the flash controller. It
// returns a copy of the data and the completion time. ready constrains the
// earliest start (operand availability). Read does not run the FC's ECC
// decode; the storage I/O path uses ReadChecked.
func (a *Array) Read(now, ready sim.Time, addr Addr) ([]byte, sim.Time) {
	die := a.dies[a.geo.DieIndex(addr)]
	_, sensed := die.Reserve(now, ready, a.cfg.TRead)
	_, done := a.bus[addr.Channel].Reserve(now, sensed, a.cfg.ChannelTransferTime(a.cfg.PageSize))
	a.senses++
	a.bytesOut += int64(a.cfg.PageSize)
	a.en.Compute("ifp", a.cfg.EReadPerChannel)
	a.en.Move("flash-channel", a.cfg.EDMAPerChannel)
	if a.timing {
		return nil, done
	}
	return a.PageData(addr), done
}

// ReadChecked is the storage I/O read path: Read plus the flash
// controller's ECC decode (§2.1). Correctable raw-bit errors add the
// decode latency; uncorrectable pages return ErrUncorrectable, which the
// runtime surfaces through the §4.4 transient-fault path.
func (a *Array) ReadChecked(now, ready sim.Time, addr Addr) ([]byte, sim.Time, error) {
	data, done := a.Read(now, ready, addr)
	lat, err := a.eccCheck(addr)
	if err != nil {
		return nil, 0, err
	}
	return data, done + lat, nil
}

// Program writes data to the erased page addr, transferring it over the
// channel first. It panics on a program to a non-erased page: the FTL must
// erase first, and violating that is always a bug above us.
func (a *Array) Program(now, ready sim.Time, addr Addr, data []byte) sim.Time {
	idx := a.geo.PageIndex(addr)
	if a.state[idx] == pageProgrammed {
		panic(fmt.Sprintf("nand: program to programmed page %v", addr))
	}
	// A timing-only array accepts an elided (nil) payload; any payload
	// actually supplied must still be page-sized.
	if len(data) != a.cfg.PageSize && !(a.timing && data == nil) {
		panic(fmt.Sprintf("nand: program size %d != page size %d", len(data), a.cfg.PageSize))
	}
	// Programs always move whole pages, so the transfer is sized by the
	// page, not the payload — identical with the payload elided.
	_, moved := a.bus[addr.Channel].Reserve(now, ready, a.cfg.ChannelTransferTime(a.cfg.PageSize))
	die := a.dies[a.geo.DieIndex(addr)]
	_, done := die.Reserve(now, moved, a.cfg.TProg)
	if !a.timing {
		a.data[idx] = append([]byte(nil), data...)
	}
	delete(a.bitErrors, idx)
	a.state[idx] = pageProgrammed
	a.programs++
	a.bytesIn += int64(a.cfg.PageSize)
	a.en.Compute("ifp", a.eProg)
	a.en.Move("flash-channel", a.cfg.EDMAPerChannel)
	return done
}

// Erase erases the block containing addr, resetting all its pages.
func (a *Array) Erase(now sim.Time, addr Addr) sim.Time {
	die := a.dies[a.geo.DieIndex(addr)]
	_, done := die.Reserve(now, now, a.cfg.TErase)
	base := addr
	for p := 0; p < a.cfg.PagesPerBlock; p++ {
		base.Page = p
		idx := a.geo.PageIndex(base)
		delete(a.data, idx)
		delete(a.bitErrors, idx)
		a.state[idx] = pageErased
	}
	a.erases[a.geo.BlockIndex(addr)]++
	a.eraseOps++
	a.en.Compute("ifp", a.eErase)
	return done
}

// --- In-flash processing primitives ---------------------------------------

// MaxAndOperands is the Flash-Cosmos limit on simultaneously sensed
// wordlines within a block (48-WL-layer 3D NAND).
const MaxAndOperands = 48

// MaxOrOperands is the Flash-Cosmos limit on simultaneously sensed blocks
// within a plane.
const MaxOrOperands = 4

// Bitwise performs a bulk bitwise operation across the operands and leaves
// the result in the plane's page buffer. Flash-resident operands must share
// one plane; AND/NAND within one block (or OR/NOR across up to four blocks)
// complete in a single multi-wordline sense, other flash operands are
// sensed serially into the latches. InBuffer operands consume the current
// plane buffer; Data operands were latch-loaded over the channel.
//
// The returned time is when the result is latched; no data leaves the chip.
func (a *Array) Bitwise(now, ready sim.Time, op BitOp, ops []Operand) (sim.Time, error) {
	if len(ops) == 0 {
		return 0, fmt.Errorf("nand: bitwise %v with no operands", op)
	}
	switch op {
	case BitAnd, BitNand, BitOr, BitNor, BitXor, BitXnor:
	case BitNot:
		if len(ops) != 1 {
			return 0, fmt.Errorf("nand: NOT takes one operand, got %d", len(ops))
		}
	default:
		return 0, fmt.Errorf("nand: unknown bitwise op %d", op)
	}
	prof, err := profileOperands(a.geo, op, ops)
	if err != nil {
		return 0, err
	}
	home := homeAddr(ops)
	buf := a.PlaneBuffer(home)
	die := a.dies[a.geo.DieIndex(home)]

	// Gather operand values; verify buffer operands are actually latched.
	// Validation is identical in timing-only mode; only the payload
	// references are skipped.
	var vals [][]byte
	if !a.timing {
		vals = make([][]byte, len(ops))
	}
	for i, o := range ops {
		switch {
		case o.Latched || o.Data != nil:
			if o.Data != nil && len(o.Data) != a.cfg.PageSize {
				return 0, fmt.Errorf("nand: latch operand %d is %d bytes", i, len(o.Data))
			}
			if !a.timing {
				vals[i] = o.Data
			}
		case o.InBuffer:
			if !buf.Valid {
				return 0, fmt.Errorf("nand: operand %d expects plane buffer, which is empty", i)
			}
			if !a.timing {
				vals[i] = buf.Data
			}
		default:
			if !a.IsProgrammed(o.Addr) {
				return 0, fmt.Errorf("nand: operand %d page %v not programmed", i, o.Addr)
			}
			if !a.timing {
				vals[i] = a.raw(o.Addr)
			}
		}
	}

	dur := EstimateBitwise(a.cfg, op, prof)
	switch op {
	case BitXor, BitXnor:
		a.en.Compute("ifp", float64(prof.Senses)*a.cfg.EReadPerChannel+a.cfg.EXorPerKB*float64(a.cfg.PageSize)/1024)
	default:
		a.en.Compute("ifp", float64(prof.Senses)*a.cfg.EReadPerChannel+a.cfg.EAndOrPerKB*float64(a.cfg.PageSize)/1024)
	}
	a.senses += int64(prof.Senses)
	a.fcTransfers += int64(prof.Loads)
	if prof.Loads > 0 {
		a.en.Move("flash-channel", float64(prof.Loads)*a.cfg.EDMAPerChannel)
	}
	a.mwsOps++
	_, done := die.Reserve(now, ready, dur)
	if a.timing {
		buf.Data = nil
		buf.Valid = true
		return done, nil
	}

	// Functional result, through the word-parallel vecmath kernels
	// (bitwise operations are element-width independent).
	out := make([]byte, a.cfg.PageSize)
	copy(out, vals[0])
	for _, v := range vals[1:] {
		switch op {
		case BitAnd, BitNand:
			vecmath.Apply(vecmath.OpAnd, out, out, v, 1)
		case BitOr, BitNor:
			vecmath.Apply(vecmath.OpOr, out, out, v, 1)
		case BitXor, BitXnor:
			vecmath.Apply(vecmath.OpXor, out, out, v, 1)
		}
	}
	switch op {
	case BitNand, BitNor, BitXnor, BitNot:
		vecmath.ApplyUnary(vecmath.OpNot, out, out, 1, 0)
	}
	buf.Data = out
	buf.Valid = true
	return done, nil
}

// Arith performs elementwise integer arithmetic in the page-buffer latches
// (Ares-Flash shift-and-add) and leaves the result in the plane buffer.
// elem is the element size in bytes (1, 2 or 4); imm is the shift amount
// for ArithShl/ArithShr, whose second operand is ignored.
//
// Multiplication is deliberately expensive: each of the elem*8 partial-
// product rounds needs a shift through the flash controller (one DMA
// round-trip), which is why the paper's policies avoid IFP for
// multiplication-heavy phases (§6.4/§6.5).
func (a *Array) Arith(now, ready sim.Time, op ArithOp, x, y Operand, elem int, imm uint) (sim.Time, error) {
	if elem != 1 && elem != 2 && elem != 4 {
		return 0, fmt.Errorf("nand: unsupported element size %d", elem)
	}
	switch op {
	case ArithAdd, ArithSub, ArithMul, ArithShl, ArithShr:
	default:
		return 0, fmt.Errorf("nand: unknown arith op %d", op)
	}
	operands := []Operand{x}
	if op != ArithShl && op != ArithShr {
		operands = append(operands, y)
	}
	// Arithmetic is latch-serial: XOR-style profiling (no MWS).
	prof, err := profileOperands(a.geo, BitXor, operands)
	if err != nil {
		return 0, err
	}
	home := homeAddr(operands)
	buf := a.PlaneBuffer(home)
	die := a.dies[a.geo.DieIndex(home)]

	var vals [][]byte
	if !a.timing {
		vals = make([][]byte, len(operands))
	}
	for i, o := range operands {
		switch {
		case o.Latched || o.Data != nil:
			if o.Data != nil && len(o.Data) != a.cfg.PageSize {
				return 0, fmt.Errorf("nand: latch operand %d is %d bytes", i, len(o.Data))
			}
			if !a.timing {
				vals[i] = o.Data
			}
		case o.InBuffer:
			if !buf.Valid {
				return 0, fmt.Errorf("nand: operand %d expects plane buffer, which is empty", i)
			}
			if !a.timing {
				vals[i] = buf.Data
			}
		default:
			if !a.IsProgrammed(o.Addr) {
				return 0, fmt.Errorf("nand: operand %d page %v not programmed", i, o.Addr)
			}
			if !a.timing {
				vals[i] = a.raw(o.Addr)
			}
		}
	}

	dur, rounds, fcTransfers := EstimateArith(a.cfg, op, elem, prof)
	if fcTransfers > 0 {
		a.fcTransfers += fcTransfers
		a.en.Move("flash-channel", float64(fcTransfers)*a.cfg.EDMAPerChannel)
	}
	a.latchRounds += rounds
	a.senses += int64(prof.Senses)
	a.en.Compute("ifp",
		float64(prof.Senses)*a.cfg.EReadPerChannel+
			float64(rounds)*a.cfg.ELatchPerKB*float64(a.cfg.PageSize)/1024)
	_, done := die.Reserve(now, ready, dur)
	if a.timing {
		buf.Data = nil
		buf.Valid = true
		return done, nil
	}

	// Functional result, through the monomorphized vecmath kernels.
	out := make([]byte, a.cfg.PageSize)
	switch op {
	case ArithAdd:
		vecmath.Apply(vecmath.OpAdd, out, vals[0], vals[1], elem)
	case ArithSub:
		vecmath.Apply(vecmath.OpSub, out, vals[0], vals[1], elem)
	case ArithMul:
		vecmath.Apply(vecmath.OpMul, out, vals[0], vals[1], elem)
	case ArithShl:
		vecmath.ApplyUnary(vecmath.OpShl, out, vals[0], elem, uint64(imm))
	case ArithShr:
		vecmath.ApplyUnary(vecmath.OpShr, out, vals[0], elem, uint64(imm))
	}
	buf.Data = out
	buf.Valid = true
	return done, nil
}

// FlushBuffer programs the plane buffer into the erased page dst.
func (a *Array) FlushBuffer(now, ready sim.Time, dst Addr) (sim.Time, error) {
	buf := a.PlaneBuffer(dst)
	if !buf.Valid {
		return 0, fmt.Errorf("nand: flush of empty plane buffer at %v", dst)
	}
	idx := a.geo.PageIndex(dst)
	if a.state[idx] == pageProgrammed {
		return 0, fmt.Errorf("nand: flush to programmed page %v", dst)
	}
	die := a.dies[a.geo.DieIndex(dst)]
	_, done := die.Reserve(now, ready, a.cfg.TProg)
	if !a.timing {
		a.data[idx] = append([]byte(nil), buf.Data...)
	}
	a.state[idx] = pageProgrammed
	a.programs++
	a.en.Compute("ifp", a.eProg)
	return done, nil
}

// ReadBuffer transfers the plane buffer out over the channel to the flash
// controller, returning a copy and the completion time.
func (a *Array) ReadBuffer(now, ready sim.Time, plane Addr) ([]byte, sim.Time, error) {
	buf := a.PlaneBuffer(plane)
	if !buf.Valid {
		return nil, 0, fmt.Errorf("nand: read of empty plane buffer at %v", plane)
	}
	_, done := a.bus[plane.Channel].Reserve(now, ready, a.cfg.ChannelTransferTime(a.cfg.PageSize))
	a.bytesOut += int64(a.cfg.PageSize)
	a.en.Move("flash-channel", a.cfg.EDMAPerChannel)
	if a.timing {
		return nil, done, nil
	}
	return append([]byte(nil), buf.Data...), done, nil
}

// SetPageForTest force-writes page contents without timing, for building
// test fixtures. It marks the page programmed.
func (a *Array) SetPageForTest(addr Addr, data []byte) {
	if len(data) != a.cfg.PageSize {
		panic("nand: SetPageForTest size mismatch")
	}
	idx := a.geo.PageIndex(addr)
	a.data[idx] = append([]byte(nil), data...)
	a.state[idx] = pageProgrammed
}

// Clone returns an independent copy of the array — page contents, page
// states, erase counts, plane buffers, injected bit errors, calendars, and
// activity counters — charging future energy to en. Clones share only
// immutable state, so a clone and its original can be driven from
// different goroutines.
//
// Page payloads (the []byte values in data and the plane buffers) are
// shared, not copied: every mutation path in this package (Program,
// Erase, FlushBuffer, Bitwise, Arith, SetPageForTest) replaces the stored
// slice with a freshly allocated one rather than writing into it, so a
// stored payload is immutable for its lifetime and restoring a deployed
// image costs O(pages) map entries instead of O(bytes).
func (a *Array) Clone(en *energy.Account) *Array {
	c := &Array{
		cfg:            a.cfg,
		geo:            a.geo,
		en:             en,
		timing:         a.timing,
		data:           make(map[int][]byte, len(a.data)),
		bitErrors:      make(map[int]int, len(a.bitErrors)),
		state:          append([]pageState(nil), a.state...),
		erases:         append([]int(nil), a.erases...),
		buffers:        make([]*Buffer, len(a.buffers)),
		senses:         a.senses,
		programs:       a.programs,
		eraseOps:       a.eraseOps,
		mwsOps:         a.mwsOps,
		latchRounds:    a.latchRounds,
		fcTransfers:    a.fcTransfers,
		bytesOut:       a.bytesOut,
		bytesIn:        a.bytesIn,
		eccCorrections: a.eccCorrections,
		eccFailures:    a.eccFailures,
		eProg:          a.eProg,
		eErase:         a.eErase,
	}
	for idx, d := range a.data {
		c.data[idx] = d // payloads are replace-on-write; see doc comment
	}
	for idx, n := range a.bitErrors {
		c.bitErrors[idx] = n
	}
	for i, b := range a.buffers {
		c.buffers[i] = &Buffer{Data: b.Data, Valid: b.Valid, Tag: b.Tag}
	}
	for _, d := range a.dies {
		c.dies = append(c.dies, d.Clone())
	}
	for _, b := range a.bus {
		c.bus = append(c.bus, b.Clone())
	}
	return c
}

// Stats reports operation counts for experiment tables.
func (a *Array) Stats() map[string]int64 {
	return map[string]int64{
		"senses":          a.senses,
		"programs":        a.programs,
		"erases":          a.eraseOps,
		"mws_ops":         a.mwsOps,
		"latch_rounds":    a.latchRounds,
		"fc_transfers":    a.fcTransfers,
		"bytes_out":       a.bytesOut,
		"bytes_in":        a.bytesIn,
		"ecc_corrections": a.eccCorrections,
		"ecc_failures":    a.eccFailures,
	}
}

// loadElem and storeElem are the lane-serial element accessors retained
// for the package tests' independent functional oracle.

func loadElem(p []byte, i, elem int) uint64 {
	off := i * elem
	var v uint64
	for b := 0; b < elem; b++ {
		v |= uint64(p[off+b]) << (8 * b)
	}
	return v
}

func storeElem(p []byte, i, elem int, v uint64) {
	off := i * elem
	mask := uint64(1)<<(8*elem) - 1
	if elem == 8 {
		mask = ^uint64(0)
	}
	v &= mask
	for b := 0; b < elem; b++ {
		p[off+b] = byte(v >> (8 * b))
	}
}
