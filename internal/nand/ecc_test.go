package nand

import (
	"bytes"
	"errors"
	"testing"

	"conduit/internal/energy"
	"conduit/internal/sim"
)

func newTestAccount() *energy.Account { return energy.NewAccount() }

func sim1ms() sim.Time { return sim.Millisecond }

func TestECCCorrectsFewBitErrors(t *testing.T) {
	a, cfg, _ := newTestArray()
	addr := Addr{Block: 1, Page: 0}
	data := fill(cfg, 0x77)
	a.Program(0, 0, addr, data)
	a.InjectBitErrors(addr, ECCCorrectableBits)

	got, done, err := a.ReadChecked(0, 0, addr)
	if err != nil {
		t.Fatalf("correctable read failed: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corrected read returned wrong data")
	}
	// Correction costs decode latency on top of a clean read.
	b := NewArray(cfg, newTestAccount())
	b.Program(0, 0, addr, data)
	_, clean, _ := b.ReadChecked(0, 0, addr)
	if done <= clean {
		t.Fatalf("corrected read (%v) must be slower than clean read (%v)", done, clean)
	}
	if a.ECCCorrections() != 1 || a.ECCFailures() != 0 {
		t.Fatalf("correction counters = %d/%d", a.ECCCorrections(), a.ECCFailures())
	}
}

func TestECCUncorrectable(t *testing.T) {
	a, cfg, _ := newTestArray()
	addr := Addr{Block: 1, Page: 0}
	a.Program(0, 0, addr, fill(cfg, 1))
	a.InjectBitErrors(addr, ECCCorrectableBits+1)

	_, _, err := a.ReadChecked(0, 0, addr)
	var ue *ErrUncorrectable
	if !errors.As(err, &ue) {
		t.Fatalf("want ErrUncorrectable, got %v", err)
	}
	if ue.Bits != ECCCorrectableBits+1 {
		t.Fatalf("error reports %d bits", ue.Bits)
	}
	if a.ECCFailures() != 1 {
		t.Fatal("failure must be counted")
	}
}

func TestBitErrorsAccumulateAndClear(t *testing.T) {
	a, cfg, _ := newTestArray()
	addr := Addr{Block: 2, Page: 0}
	a.Program(0, 0, addr, fill(cfg, 1))
	a.InjectBitErrors(addr, 5)
	a.InjectBitErrors(addr, 5) // accumulates past the budget
	if _, _, err := a.ReadChecked(0, 0, addr); err == nil {
		t.Fatal("accumulated errors must become uncorrectable")
	}
	// Erase clears raw-cell damage bookkeeping; a reprogram is clean.
	a.Erase(0, addr)
	a.Program(sim1ms(), sim1ms(), addr, fill(cfg, 2))
	if _, _, err := a.ReadChecked(sim1ms(), sim1ms(), addr); err != nil {
		t.Fatalf("reprogrammed page must read clean: %v", err)
	}
}

func TestUncheckedReadIgnoresECC(t *testing.T) {
	// In-flash computation senses raw cells: it neither pays for nor
	// benefits from FC-side ECC (a documented IFP limitation).
	a, cfg, _ := newTestArray()
	addr := Addr{Block: 3, Page: 0}
	a.Program(0, 0, addr, fill(cfg, 0x0F))
	a.InjectBitErrors(addr, 100)
	if _, err := a.Bitwise(0, 0, BitNot, []Operand{{Addr: addr}}); err != nil {
		t.Fatalf("in-flash op must not consult FC ECC: %v", err)
	}
}
