package nand

import (
	"fmt"

	"conduit/internal/config"
)

// Addr identifies one physical flash page.
type Addr struct {
	Channel int
	Die     int
	Plane   int
	Block   int
	Page    int
}

// String renders the address as ch/die/plane/block/page.
func (a Addr) String() string {
	return fmt.Sprintf("c%d.d%d.p%d.b%d.pg%d", a.Channel, a.Die, a.Plane, a.Block, a.Page)
}

// Geometry flattens and validates physical flash addresses for a given SSD
// configuration.
type Geometry struct {
	cfg *config.SSD
}

// NewGeometry returns address arithmetic for cfg.
func NewGeometry(cfg *config.SSD) Geometry { return Geometry{cfg: cfg} }

// Valid reports whether every coordinate of a is in range.
func (g Geometry) Valid(a Addr) bool {
	c := g.cfg
	return a.Channel >= 0 && a.Channel < c.Channels &&
		a.Die >= 0 && a.Die < c.DiesPerChannel &&
		a.Plane >= 0 && a.Plane < c.PlanesPerDie &&
		a.Block >= 0 && a.Block < c.BlocksPerPlane &&
		a.Page >= 0 && a.Page < c.PagesPerBlock
}

// PageIndex flattens a to a dense index in [0, TotalPages).
func (g Geometry) PageIndex(a Addr) int {
	c := g.cfg
	if !g.Valid(a) {
		panic(fmt.Sprintf("nand: invalid address %v", a))
	}
	idx := a.Channel
	idx = idx*c.DiesPerChannel + a.Die
	idx = idx*c.PlanesPerDie + a.Plane
	idx = idx*c.BlocksPerPlane + a.Block
	idx = idx*c.PagesPerBlock + a.Page
	return idx
}

// AddrOf inverts PageIndex.
func (g Geometry) AddrOf(idx int) Addr {
	c := g.cfg
	if idx < 0 || idx >= c.TotalPages() {
		panic(fmt.Sprintf("nand: page index %d out of range", idx))
	}
	a := Addr{}
	a.Page = idx % c.PagesPerBlock
	idx /= c.PagesPerBlock
	a.Block = idx % c.BlocksPerPlane
	idx /= c.BlocksPerPlane
	a.Plane = idx % c.PlanesPerDie
	idx /= c.PlanesPerDie
	a.Die = idx % c.DiesPerChannel
	idx /= c.DiesPerChannel
	a.Channel = idx
	return a
}

// BlockIndex flattens the block coordinates of a (ignoring Page) to a dense
// index in [0, TotalBlocks).
func (g Geometry) BlockIndex(a Addr) int {
	c := g.cfg
	idx := a.Channel
	idx = idx*c.DiesPerChannel + a.Die
	idx = idx*c.PlanesPerDie + a.Plane
	idx = idx*c.BlocksPerPlane + a.Block
	return idx
}

// BlockAddrOf inverts BlockIndex (the returned Addr has Page 0).
func (g Geometry) BlockAddrOf(idx int) Addr {
	c := g.cfg
	if idx < 0 || idx >= g.TotalBlocks() {
		panic(fmt.Sprintf("nand: block index %d out of range", idx))
	}
	a := Addr{}
	a.Block = idx % c.BlocksPerPlane
	idx /= c.BlocksPerPlane
	a.Plane = idx % c.PlanesPerDie
	idx /= c.PlanesPerDie
	a.Die = idx % c.DiesPerChannel
	idx /= c.DiesPerChannel
	a.Channel = idx
	return a
}

// TotalBlocks reports the number of physical blocks.
func (g Geometry) TotalBlocks() int {
	c := g.cfg
	return c.Channels * c.DiesPerChannel * c.PlanesPerDie * c.BlocksPerPlane
}

// PlaneIndex flattens the plane coordinates of a to a dense index.
func (g Geometry) PlaneIndex(a Addr) int {
	c := g.cfg
	idx := a.Channel
	idx = idx*c.DiesPerChannel + a.Die
	idx = idx*c.PlanesPerDie + a.Plane
	return idx
}

// DieIndex flattens the die coordinates of a to a dense index.
func (g Geometry) DieIndex(a Addr) int {
	return a.Channel*g.cfg.DiesPerChannel + a.Die
}

// SameBlock reports whether all addresses share one physical block —
// the placement constraint for Flash-Cosmos multi-wordline AND.
func (g Geometry) SameBlock(addrs []Addr) bool {
	if len(addrs) == 0 {
		return false
	}
	b := g.BlockIndex(addrs[0])
	for _, a := range addrs[1:] {
		if g.BlockIndex(a) != b {
			return false
		}
	}
	return true
}

// SamePlane reports whether all addresses share one plane — the placement
// constraint for Flash-Cosmos inter-block OR.
func (g Geometry) SamePlane(addrs []Addr) bool {
	if len(addrs) == 0 {
		return false
	}
	p := g.PlaneIndex(addrs[0])
	for _, a := range addrs[1:] {
		if g.PlaneIndex(a) != p {
			return false
		}
	}
	return true
}
