// Package nand models the NAND flash subsystem of the simulated SSD: the
// channel/die/plane/block/page hierarchy, SLC-mode read/program/erase
// timing, the per-channel shared bus, and the in-flash processing (IFP)
// primitives the paper builds on — Flash-Cosmos multi-wordline sensing for
// bulk bitwise AND/OR, latch-based XOR, and Ares-Flash shift-and-add
// integer arithmetic in the page-buffer latches.
//
// The model is functional as well as timed: pages carry real bytes and
// every primitive computes real results, so higher layers can verify that
// offloaded execution is semantically correct.
package nand
