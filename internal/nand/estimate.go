package nand

import (
	"fmt"

	"conduit/internal/config"
	"conduit/internal/sim"
)

// OperandProfile classifies the inputs of an in-flash operation for timing
// purposes: how many flash pages must be sensed (and whether one
// multi-wordline sense covers them all), how many operands arrive through
// latch loads over the channel, and how many are already latched.
type OperandProfile struct {
	Senses  int  // flash pages to sense
	MWS     bool // a single multi-wordline sense covers every flash operand
	Loads   int  // operands DMA-loaded into spare latches
	Latched int  // operands already in the plane buffer
}

// SenseTime is the total sensing time of the profile: one tR under MWS,
// otherwise one per sensed page.
func (p OperandProfile) SenseTime(cfg *config.SSD) sim.Time {
	switch {
	case p.Senses == 0:
		return 0
	case p.MWS:
		return cfg.TRead
	default:
		return sim.Time(p.Senses) * cfg.TRead
	}
}

// LoadTime is the latch-load time of the profile: one page-buffer DMA per
// loaded operand (the channel transfer itself is booked on the channel bus
// by the caller that fetched the data).
func (p OperandProfile) LoadTime(cfg *config.SSD) sim.Time {
	return sim.Time(p.Loads) * cfg.TDMA
}

// profileOperands validates placement and classifies operands.
//
// Placement rules (§4.4 and the Flash-Cosmos/ParaBit substrates):
//   - all flash-resident operands must share one plane (hard requirement:
//     sensing happens in that plane's page buffer);
//   - AND/NAND of up to MaxAndOperands pages within one block, or OR/NOR
//     across up to MaxOrOperands blocks, complete in a single
//     multi-wordline sense; otherwise each flash operand is sensed
//     serially into the latches (ParaBit-style);
//   - at most two latch slots exist beyond the sensing latch, bounding
//     buffer/loaded operands.
func profileOperands(geo Geometry, op BitOp, ops []Operand) (OperandProfile, error) {
	var p OperandProfile
	var flashAddrs []Addr
	for _, o := range ops {
		switch {
		case o.Latched || o.Data != nil:
			p.Loads++
		case o.InBuffer:
			p.Latched++
		default:
			flashAddrs = append(flashAddrs, o.Addr)
		}
	}
	if p.Loads+p.Latched > 2 {
		return p, fmt.Errorf("nand: %d latch operands exceed the two spare latches", p.Loads+p.Latched)
	}
	p.Senses = len(flashAddrs)
	if len(flashAddrs) > 1 {
		if !geo.SamePlane(flashAddrs) {
			return p, fmt.Errorf("nand: flash operands span planes: %v", flashAddrs)
		}
		switch op {
		case BitAnd, BitNand:
			if geo.SameBlock(flashAddrs) && len(flashAddrs) <= MaxAndOperands {
				p.MWS = true
			}
		case BitOr, BitNor:
			if len(flashAddrs) <= MaxOrOperands {
				p.MWS = true
			}
		}
		if !p.MWS && len(flashAddrs) > 3 {
			return p, fmt.Errorf("nand: %d serially sensed operands exceed latch capacity", len(flashAddrs))
		}
	}
	return p, nil
}

// homeAddr picks the address that identifies the operation's plane: the
// first flash operand, else the first buffer operand's address.
func homeAddr(ops []Operand) Addr {
	for _, o := range ops {
		if !o.Latched && o.Data == nil && !o.InBuffer {
			return o.Addr
		}
	}
	for _, o := range ops {
		if o.InBuffer {
			return o.Addr
		}
	}
	return ops[0].Addr
}

// EstimateBitwise is the contention-free latency of an in-flash bitwise
// operation with the given operand profile. It is the IFP entry of the
// offloader's precomputed computation-latency table (§4.5); the Array uses
// it internally so estimate and execution can never drift.
func EstimateBitwise(cfg *config.SSD, op BitOp, p OperandProfile) sim.Time {
	dur := p.SenseTime(cfg) + p.LoadTime(cfg)
	switch op {
	case BitXor, BitXnor:
		dur += cfg.TXor
	default:
		dur += cfg.TAndOr
	}
	return dur
}

// EstimateArith is the contention-free latency of latch-based in-flash
// arithmetic (Ares-Flash shift-and-add) on elem-byte lanes with the given
// operand profile. rounds is the latch-transfer count and fcTransfers the
// page-buffer<->flash-controller DMA count, both of which the Array also
// uses for energy accounting.
func EstimateArith(cfg *config.SSD, op ArithOp, elem int, p OperandProfile) (dur sim.Time, rounds, fcTransfers int64) {
	bits := elem * 8
	dur = p.SenseTime(cfg) + p.LoadTime(cfg)
	fcTransfers = int64(p.Loads)
	switch op {
	case ArithAdd, ArithSub:
		// Bit-serial carry chain: ~3 latch transfers per bit.
		rounds = int64(3 * bits)
		dur += sim.Time(rounds) * cfg.TLatchTransfer
	case ArithMul:
		// Per output bit: one AND (partial product), a bit-serial
		// accumulate, and one shift through the flash controller. The
		// controller round-trips are what make IFP multiplication
		// unattractive (§6.4).
		rounds = int64(bits) * int64(3*bits+1)
		fcTransfers += int64(bits)
		dur += sim.Time(bits) * (cfg.TAndOr + sim.Time(3*bits)*cfg.TLatchTransfer + cfg.TDMA)
	case ArithShl, ArithShr:
		// One round-trip through the flash controller.
		rounds = 1
		fcTransfers += 2
		dur += 2 * cfg.TDMA
	}
	return dur, rounds, fcTransfers
}
