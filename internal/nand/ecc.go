package nand

import (
	"fmt"

	"conduit/internal/sim"
)

// The flash controller protects every page with an error-correcting code
// (§2.1: ECC encoding/decoding is one of the FC's three functions). The
// model keeps the stored bytes authoritative and represents raw-cell
// errors as an injected bit-flip overlay: on read, the FC decodes —
// correcting up to ECCCorrectableBits flips at a fixed decode latency —
// or reports an uncorrectable page, which the upper layers turn into the
// §4.4 transient-fault replay path.

// ECCCorrectableBits is the per-page correction strength (a typical
// BCH/LDPC budget for 16 KiB pages in SLC mode).
const ECCCorrectableBits = 8

// eccDecodeLatency is the FC decode time charged when a read needs
// correction.
const eccDecodeLatency = 2 * sim.Microsecond

// ErrUncorrectable reports a page whose raw-bit errors exceed the ECC
// correction strength.
type ErrUncorrectable struct {
	Addr Addr
	Bits int
}

// Error implements error.
func (e *ErrUncorrectable) Error() string {
	return fmt.Sprintf("nand: %v: %d bit errors exceed ECC strength %d", e.Addr, e.Bits, ECCCorrectableBits)
}

// InjectBitErrors adds n raw-cell bit flips to the stored page (test and
// fault-injection hook). Flips accumulate across calls until the page is
// erased or reprogrammed.
func (a *Array) InjectBitErrors(addr Addr, n int) {
	idx := a.geo.PageIndex(addr)
	a.bitErrors[idx] += n
}

// eccCheck applies the FC decode to a read of addr: it returns the extra
// decode latency and an error when the page is uncorrectable. Corrected
// reads are counted.
func (a *Array) eccCheck(addr Addr) (sim.Time, error) {
	idx := a.geo.PageIndex(addr)
	bits := a.bitErrors[idx]
	if bits == 0 {
		return 0, nil
	}
	if bits > ECCCorrectableBits {
		a.eccFailures++
		return 0, &ErrUncorrectable{Addr: addr, Bits: bits}
	}
	a.eccCorrections++
	return eccDecodeLatency, nil
}

// ECCCorrections reports how many reads needed (and got) correction.
func (a *Array) ECCCorrections() int64 { return a.eccCorrections }

// ECCFailures reports how many reads exceeded the correction strength.
func (a *Array) ECCFailures() int64 { return a.eccFailures }
