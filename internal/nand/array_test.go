package nand

import (
	"bytes"
	"testing"
	"testing/quick"

	"conduit/internal/config"
	"conduit/internal/energy"
	"conduit/internal/sim"
)

func newTestArray() (*Array, *config.SSD, *energy.Account) {
	cfg := config.TestScale()
	en := energy.NewAccount()
	return NewArray(&cfg.SSD, en), &cfg.SSD, en
}

func fill(cfg *config.SSD, b byte) []byte {
	p := make([]byte, cfg.PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestGeometryRoundTrip(t *testing.T) {
	cfg := config.TestScale()
	g := NewGeometry(&cfg.SSD)
	for _, idx := range []int{0, 1, 100, cfg.SSD.TotalPages() - 1} {
		a := g.AddrOf(idx)
		if got := g.PageIndex(a); got != idx {
			t.Fatalf("PageIndex(AddrOf(%d)) = %d", idx, got)
		}
	}
}

func TestGeometryRoundTripProperty(t *testing.T) {
	cfg := config.TestScale()
	g := NewGeometry(&cfg.SSD)
	total := cfg.SSD.TotalPages()
	f := func(raw uint32) bool {
		idx := int(raw) % total
		return g.PageIndex(g.AddrOf(idx)) == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryBlockRoundTripProperty(t *testing.T) {
	cfg := config.TestScale()
	g := NewGeometry(&cfg.SSD)
	total := g.TotalBlocks()
	f := func(raw uint32) bool {
		idx := int(raw) % total
		return g.BlockIndex(g.BlockAddrOf(idx)) == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryPlacementPredicates(t *testing.T) {
	cfg := config.TestScale()
	g := NewGeometry(&cfg.SSD)
	a := Addr{Channel: 1, Die: 2, Plane: 0, Block: 3, Page: 0}
	b := a
	b.Page = 5
	if !g.SameBlock([]Addr{a, b}) {
		t.Error("pages of one block should be SameBlock")
	}
	c := a
	c.Block = 4
	if g.SameBlock([]Addr{a, c}) {
		t.Error("different blocks must not be SameBlock")
	}
	if !g.SamePlane([]Addr{a, c}) {
		t.Error("same plane different block should be SamePlane")
	}
	d := a
	d.Plane = 1
	if g.SamePlane([]Addr{a, d}) {
		t.Error("different planes must not be SamePlane")
	}
	if g.SameBlock(nil) || g.SamePlane(nil) {
		t.Error("empty address lists are neither SameBlock nor SamePlane")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	a, cfg, _ := newTestArray()
	addr := Addr{Channel: 0, Die: 0, Plane: 0, Block: 0, Page: 0}
	data := fill(cfg, 0xA5)
	done := a.Program(0, 0, addr, data)
	if done < cfg.TProg {
		t.Fatalf("program done at %v, want >= tProg %v", done, cfg.TProg)
	}
	got, rdone := a.Read(done, done, addr)
	if !bytes.Equal(got, data) {
		t.Fatal("read returned different data than programmed")
	}
	wantMin := done + cfg.TRead + cfg.ChannelTransferTime(cfg.PageSize)
	if rdone < wantMin {
		t.Fatalf("read done at %v, want >= %v (sense+transfer)", rdone, wantMin)
	}
}

func TestErasedPageReadsFF(t *testing.T) {
	a, cfg, _ := newTestArray()
	got, _ := a.Read(0, 0, Addr{})
	if !bytes.Equal(got, fill(cfg, 0xFF)) {
		t.Fatal("erased page should read as 0xFF")
	}
}

func TestDoubleProgramPanics(t *testing.T) {
	a, cfg, _ := newTestArray()
	addr := Addr{}
	a.Program(0, 0, addr, fill(cfg, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("double program should panic")
		}
	}()
	a.Program(0, 0, addr, fill(cfg, 2))
}

func TestEraseResetsBlockAndCounts(t *testing.T) {
	a, cfg, _ := newTestArray()
	addr := Addr{Block: 2, Page: 3}
	a.Program(0, 0, addr, fill(cfg, 0x42))
	blk := a.Geometry().BlockIndex(addr)
	done := a.Erase(sim.Second, addr)
	if done != sim.Second+cfg.TErase {
		t.Fatalf("erase done at %v, want now+tBERS", done)
	}
	if a.IsProgrammed(addr) {
		t.Fatal("page still programmed after erase")
	}
	if a.EraseCount(blk) != 1 {
		t.Fatalf("erase count = %d, want 1", a.EraseCount(blk))
	}
	got, _ := a.Read(done, done, addr)
	if !bytes.Equal(got, fill(cfg, 0xFF)) {
		t.Fatal("erased page should read 0xFF")
	}
	// The page can be programmed again.
	a.Program(done, done, addr, fill(cfg, 0x99))
}

func TestMWSAndComputesAndOfOperands(t *testing.T) {
	a, cfg, _ := newTestArray()
	base := Addr{Block: 1}
	ops := make([]Operand, 3)
	patterns := []byte{0xFF, 0xF0, 0xCC}
	for i, p := range patterns {
		addr := base
		addr.Page = i
		a.SetPageForTest(addr, fill(cfg, p))
		ops[i] = Operand{Addr: addr}
	}
	done, err := a.Bitwise(0, 0, BitAnd, ops)
	if err != nil {
		t.Fatal(err)
	}
	buf := a.PlaneBuffer(base)
	if !buf.Valid || !bytes.Equal(buf.Data, fill(cfg, 0xFF&0xF0&0xCC)) {
		t.Fatal("MWS AND result wrong")
	}
	// Single multi-wordline sense regardless of operand count.
	if done != cfg.TRead+cfg.TAndOr {
		t.Fatalf("AND latency = %v, want tR+tAND = %v", done, cfg.TRead+cfg.TAndOr)
	}
}

func TestMWSOrAcrossBlocks(t *testing.T) {
	a, cfg, _ := newTestArray()
	ops := make([]Operand, 2)
	for i, p := range []byte{0x0F, 0xF0} {
		addr := Addr{Block: i, Page: 0}
		a.SetPageForTest(addr, fill(cfg, p))
		ops[i] = Operand{Addr: addr}
	}
	if _, err := a.Bitwise(0, 0, BitOr, ops); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.PlaneBuffer(ops[0].Addr).Data, fill(cfg, 0xFF)) {
		t.Fatal("MWS OR result wrong")
	}
}

func TestBitwisePlacementConstraints(t *testing.T) {
	a, cfg, _ := newTestArray()
	inBlock0 := Addr{Block: 0, Page: 0}
	inBlock1 := Addr{Block: 1, Page: 0}
	otherPlane := Addr{Plane: 1, Block: 0, Page: 0}
	for _, addr := range []Addr{inBlock0, inBlock1, otherPlane} {
		a.SetPageForTest(addr, fill(cfg, 1))
	}
	// AND across blocks in one plane is legal but loses the single
	// multi-wordline sense: it costs one tR per operand.
	acrossDone, err := a.Bitwise(0, 0, BitAnd, []Operand{{Addr: inBlock0}, {Addr: inBlock1}})
	if err != nil {
		t.Fatalf("AND across blocks (serial sensing): %v", err)
	}
	if want := 2*cfg.TRead + cfg.TAndOr; acrossDone != want {
		t.Errorf("cross-block AND latency = %v, want %v (two senses)", acrossDone, want)
	}
	// Anything across planes is rejected.
	if _, err := a.Bitwise(0, 0, BitOr, []Operand{{Addr: inBlock0}, {Addr: otherPlane}}); err == nil {
		t.Error("bitwise across planes should fail")
	}
	// Operand-count limits.
	tooMany := make([]Operand, MaxOrOperands+1)
	for i := range tooMany {
		addr := Addr{Block: i % cfg.BlocksPerPlane, Page: 0}
		a.SetPageForTest(addr, fill(cfg, 1))
		tooMany[i] = Operand{Addr: addr}
	}
	if _, err := a.Bitwise(0, 0, BitOr, tooMany); err == nil {
		t.Error("OR beyond MaxOrOperands should fail")
	}
	// Unprogrammed operand rejected.
	if _, err := a.Bitwise(0, 0, BitNot, []Operand{{Addr: Addr{Block: 5, Page: 7}}}); err == nil {
		t.Error("bitwise on erased page should fail")
	}
}

func TestXorUsesBufferOperandWithoutSense(t *testing.T) {
	a, cfg, _ := newTestArray()
	x := Addr{Block: 0, Page: 0}
	y := Addr{Block: 0, Page: 1}
	a.SetPageForTest(x, fill(cfg, 0xAA))
	a.SetPageForTest(y, fill(cfg, 0x0F))
	// First XOR: two senses.
	d1, err := a.Bitwise(0, 0, BitXor, []Operand{{Addr: x}, {Addr: y}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*cfg.TRead + cfg.TXor; d1 != want {
		t.Fatalf("fresh XOR latency = %v, want %v", d1, want)
	}
	if !bytes.Equal(a.PlaneBuffer(x).Data, fill(cfg, 0xAA^0x0F)) {
		t.Fatal("XOR result wrong")
	}
	// Chained XOR with latched partial result: one sense only.
	d2, err := a.Bitwise(d1, d1, BitXor, []Operand{{Addr: x, InBuffer: true}, {Addr: y}})
	if err != nil {
		t.Fatal(err)
	}
	if want := d1 + cfg.TRead + cfg.TXor; d2 != want {
		t.Fatalf("chained XOR latency = %v, want %v (one sense)", d2, want)
	}
	if !bytes.Equal(a.PlaneBuffer(x).Data, fill(cfg, 0xAA^0x0F^0x0F)) {
		t.Fatal("chained XOR result wrong")
	}
}

func TestArithAddFunctional(t *testing.T) {
	a, cfg, _ := newTestArray()
	x := Addr{Block: 0, Page: 0}
	y := Addr{Block: 0, Page: 1}
	px := make([]byte, cfg.PageSize)
	py := make([]byte, cfg.PageSize)
	for i := range px {
		px[i] = byte(i * 7)
		py[i] = byte(255 - i)
	}
	a.SetPageForTest(x, px)
	a.SetPageForTest(y, py)
	done, err := a.Arith(0, 0, ArithAdd, Operand{Addr: x}, Operand{Addr: y}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := a.PlaneBuffer(x)
	for i := 0; i < cfg.PageSize; i++ {
		if buf.Data[i] != px[i]+py[i] {
			t.Fatalf("add[%d] = %d, want %d", i, buf.Data[i], px[i]+py[i])
		}
	}
	// Two senses + 24 latch transfers for INT8.
	want := 2*cfg.TRead + 24*cfg.TLatchTransfer
	if done != want {
		t.Fatalf("add latency = %v, want %v", done, want)
	}
}

func TestArithMulExpensiveAndCorrect(t *testing.T) {
	a, cfg, _ := newTestArray()
	x := Addr{Block: 0, Page: 0}
	y := Addr{Block: 0, Page: 1}
	px := make([]byte, cfg.PageSize)
	py := make([]byte, cfg.PageSize)
	for i := range px {
		px[i] = byte(i)
		py[i] = 3
	}
	a.SetPageForTest(x, px)
	a.SetPageForTest(y, py)
	mulDone, err := a.Arith(0, 0, ArithMul, Operand{Addr: x}, Operand{Addr: y}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := a.PlaneBuffer(x)
	for i := 0; i < cfg.PageSize; i++ {
		if buf.Data[i] != byte(i)*3 {
			t.Fatalf("mul[%d] = %d, want %d", i, buf.Data[i], byte(i)*3)
		}
	}
	// MUL must cost dramatically more than ADD (FC transfers per bit),
	// which is what drives policies away from IFP multiplication.
	b := NewArray(cfg, energy.NewAccount())
	b.SetPageForTest(x, px)
	b.SetPageForTest(y, py)
	addDone, _ := b.Arith(0, 0, ArithAdd, Operand{Addr: x}, Operand{Addr: y}, 1, 0)
	mulCompute := mulDone - 2*cfg.TRead
	addCompute := addDone - 2*cfg.TRead
	if mulCompute < 10*addCompute {
		t.Fatalf("IFP mul compute (%v) should dwarf add compute (%v)", mulCompute, addCompute)
	}
}

func TestArithShiftAndWideElements(t *testing.T) {
	a, cfg, _ := newTestArray()
	x := Addr{Block: 0, Page: 0}
	px := make([]byte, cfg.PageSize)
	for i := range px {
		px[i] = byte(i)
	}
	a.SetPageForTest(x, px)
	if _, err := a.Arith(0, 0, ArithShl, Operand{Addr: x}, Operand{}, 4, 8); err != nil {
		t.Fatal(err)
	}
	buf := a.PlaneBuffer(x)
	// Check one 32-bit element: little-endian shift by 8.
	want := (uint64(px[0]) | uint64(px[1])<<8 | uint64(px[2])<<16 | uint64(px[3])<<24) << 8 & 0xFFFFFFFF
	got := uint64(buf.Data[0]) | uint64(buf.Data[1])<<8 | uint64(buf.Data[2])<<16 | uint64(buf.Data[3])<<24
	if got != want {
		t.Fatalf("shl32 = %x, want %x", got, want)
	}
	if _, err := a.Arith(0, 0, ArithAdd, Operand{Addr: x}, Operand{Addr: x}, 3, 0); err == nil {
		t.Error("element size 3 should be rejected")
	}
}

func TestLatchLoadedOperands(t *testing.T) {
	a, cfg, _ := newTestArray()
	x := Addr{Block: 0, Page: 0}
	a.SetPageForTest(x, fill(cfg, 0xF0))
	loaded := fill(cfg, 0x3C)
	// XOR of a sensed page with channel-loaded data: one sense plus one
	// latch-load DMA.
	done, err := a.Bitwise(0, 0, BitXor, []Operand{{Addr: x}, {Data: loaded}})
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.TRead + cfg.TDMA + cfg.TXor; done != want {
		t.Fatalf("latch-operand XOR latency = %v, want %v", done, want)
	}
	if !bytes.Equal(a.PlaneBuffer(x).Data, fill(cfg, 0xF0^0x3C)) {
		t.Fatal("latch-operand XOR result wrong")
	}
	// Arithmetic with both operands loaded: zero senses.
	b := NewArray(cfg, energy.NewAccount())
	add, err := b.Arith(0, 0, ArithAdd, Operand{Addr: x, Data: fill(cfg, 5)},
		Operand{Addr: x, Data: fill(cfg, 7)}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if add >= cfg.TRead {
		t.Fatalf("all-loaded add (%v) must avoid sensing (tR %v)", add, cfg.TRead)
	}
	if !bytes.Equal(b.PlaneBuffer(x).Data, fill(cfg, 12)) {
		t.Fatal("all-loaded add result wrong")
	}
	// Latch capacity: more than two loaded operands is impossible.
	if _, err := b.Bitwise(0, 0, BitAnd, []Operand{
		{Addr: x, Data: loaded}, {Addr: x, Data: loaded}, {Addr: x, Data: loaded}}); err == nil {
		t.Error("three latch-loaded operands must be rejected")
	}
	// Wrong-size loaded data rejected.
	if _, err := b.Bitwise(0, 0, BitNot, []Operand{{Addr: x, Data: []byte{1}}}); err == nil {
		t.Error("short latch data must be rejected")
	}
}

func TestFlushAndReadBuffer(t *testing.T) {
	a, cfg, _ := newTestArray()
	x := Addr{Block: 0, Page: 0}
	a.SetPageForTest(x, fill(cfg, 0x3C))
	if _, err := a.Bitwise(0, 0, BitNot, []Operand{{Addr: x}}); err != nil {
		t.Fatal(err)
	}
	dst := Addr{Block: 0, Page: 10}
	if _, err := a.FlushBuffer(0, 0, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.PageData(dst), fill(cfg, ^byte(0x3C))) {
		t.Fatal("flushed page does not match buffer")
	}
	data, _, err := a.ReadBuffer(0, 0, x)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, fill(cfg, ^byte(0x3C))) {
		t.Fatal("ReadBuffer returned wrong data")
	}
	// Flush to a programmed page is refused.
	if _, err := a.FlushBuffer(0, 0, dst); err == nil {
		t.Error("flush onto programmed page should fail")
	}
	// Empty-buffer operations are refused.
	other := Addr{Channel: 1}
	if _, _, err := a.ReadBuffer(0, 0, other); err == nil {
		t.Error("reading empty buffer should fail")
	}
	if _, err := a.FlushBuffer(0, 0, other); err == nil {
		t.Error("flushing empty buffer should fail")
	}
}

func TestDieSerializationAndChannelContention(t *testing.T) {
	a, cfg, _ := newTestArray()
	sameDie0 := Addr{Block: 0, Page: 0}
	sameDie1 := Addr{Block: 1, Page: 0}
	otherDie := Addr{Die: 1, Block: 0, Page: 0}
	for _, addr := range []Addr{sameDie0, sameDie1, otherDie} {
		a.SetPageForTest(addr, fill(cfg, 1))
	}
	// Two reads on the same die serialize their senses.
	_, d1 := a.Read(0, 0, sameDie0)
	_, d2 := a.Read(0, 0, sameDie1)
	if d2 < d1+cfg.TRead {
		t.Fatalf("same-die reads did not serialize: %v then %v", d1, d2)
	}
	// Reads on different dies of the same channel overlap their senses
	// and share only the channel's bandwidth, so the pair finishes no
	// later than two same-die reads.
	b := NewArray(cfg, energy.NewAccount())
	b.SetPageForTest(sameDie0, fill(cfg, 1))
	b.SetPageForTest(otherDie, fill(cfg, 1))
	_, e1 := b.Read(0, 0, sameDie0)
	_, e2 := b.Read(0, 0, otherDie)
	if e2 > d2 {
		t.Fatalf("parallel-die reads (%v) should beat same-die reads (%v)", e2, d2)
	}
	if e2 < e1 {
		t.Fatalf("channel work must still be conserved: %v then %v", e1, e2)
	}
}

func TestEnergyAccounting(t *testing.T) {
	a, cfg, en := newTestArray()
	addr := Addr{}
	a.Program(0, 0, addr, fill(cfg, 1))
	a.Read(0, 0, addr)
	if en.ComputeBy("ifp") <= 0 {
		t.Fatal("flash operations should record compute energy")
	}
	if en.MoveBy("flash-channel") <= 0 {
		t.Fatal("flash transfers should record movement energy")
	}
	st := a.Stats()
	if st["senses"] != 1 || st["programs"] != 1 {
		t.Fatalf("stats = %v", st)
	}
}

// Property: MWS-AND equals the bytewise AND of the operand pages for random
// contents and random operand counts within one block.
func TestMWSAndProperty(t *testing.T) {
	cfg := config.TestScale()
	f := func(seed uint64, nOps uint8) bool {
		n := int(nOps)%4 + 2
		a := NewArray(&cfg.SSD, energy.NewAccount())
		r := sim.NewRNG(seed)
		want := fill(&cfg.SSD, 0xFF)
		ops := make([]Operand, n)
		for i := 0; i < n; i++ {
			p := make([]byte, cfg.SSD.PageSize)
			r.Bytes(p)
			addr := Addr{Block: 3, Page: i}
			a.SetPageForTest(addr, p)
			ops[i] = Operand{Addr: addr}
			for j := range want {
				want[j] &= p[j]
			}
		}
		if _, err := a.Bitwise(0, 0, BitAnd, ops); err != nil {
			return false
		}
		return bytes.Equal(a.PlaneBuffer(ops[0].Addr).Data, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: latch arithmetic matches Go integer arithmetic elementwise for
// random pages across element sizes.
func TestArithProperty(t *testing.T) {
	cfg := config.TestScale()
	f := func(seed uint64, opSel, elemSel uint8) bool {
		ops := []ArithOp{ArithAdd, ArithSub, ArithMul}
		elems := []int{1, 2, 4}
		op := ops[int(opSel)%len(ops)]
		elem := elems[int(elemSel)%len(elems)]
		a := NewArray(&cfg.SSD, energy.NewAccount())
		r := sim.NewRNG(seed)
		px := make([]byte, cfg.SSD.PageSize)
		py := make([]byte, cfg.SSD.PageSize)
		r.Bytes(px)
		r.Bytes(py)
		x := Addr{Block: 0, Page: 0}
		y := Addr{Block: 0, Page: 1}
		a.SetPageForTest(x, px)
		a.SetPageForTest(y, py)
		if _, err := a.Arith(0, 0, op, Operand{Addr: x}, Operand{Addr: y}, elem, 0); err != nil {
			return false
		}
		got := a.PlaneBuffer(x).Data
		mask := uint64(1)<<(8*elem) - 1
		for i := 0; i < cfg.SSD.PageSize/elem; i++ {
			xv := loadElem(px, i, elem)
			yv := loadElem(py, i, elem)
			var want uint64
			switch op {
			case ArithAdd:
				want = (xv + yv) & mask
			case ArithSub:
				want = (xv - yv) & mask
			case ArithMul:
				want = (xv * yv) & mask
			}
			if loadElem(got, i, elem) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
