package nvme

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"conduit/internal/coherence"
	"conduit/internal/ftl"
	"conduit/internal/isa"
	"conduit/internal/sim"
	"conduit/internal/ssd"
)

// Controller is the NVMe-facing view of the simulated drive.
type Controller struct {
	dev *ssd.Device

	fwImage   bytes.Buffer
	committed *isa.Program

	staged map[isa.PageID][]byte // host writes staged before commit
}

// NewController wraps dev.
func NewController(dev *ssd.Device) *Controller {
	return &Controller{dev: dev, staged: make(map[isa.PageID][]byte)}
}

// Device exposes the underlying drive.
func (c *Controller) Device() *ssd.Device { return c.dev }

// MarshalProgram serializes a vector IR program into a firmware image.
func MarshalProgram(p *isa.Program) ([]byte, error) {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(p); err != nil {
		return nil, fmt.Errorf("nvme: encoding program: %w", err)
	}
	return b.Bytes(), nil
}

// FWDownload stages one chunk of the firmware image at offset (NVMe
// Firmware Image Download). Chunks must arrive in order.
func (c *Controller) FWDownload(chunk []byte, offset int) error {
	if offset != c.fwImage.Len() {
		return fmt.Errorf("nvme: out-of-order fw chunk at %d (have %d)", offset, c.fwImage.Len())
	}
	c.fwImage.Write(chunk)
	return nil
}

// FWCommit activates the downloaded image (NVMe Firmware Commit). With
// conduitBinary set — the paper's added flag — the image is interpreted as
// a Conduit program, installed together with any staged host data, and the
// device performs its NDP-aware placement. Without the flag the image is
// treated as vendor firmware and merely accepted.
func (c *Controller) FWCommit(conduitBinary bool) error {
	if c.dev.Mode() == ssd.ModeComputation {
		return fmt.Errorf("nvme: firmware commit refused in computation mode")
	}
	if !conduitBinary {
		c.fwImage.Reset()
		return nil // vendor firmware path: accept and discard in the model
	}
	var prog isa.Program
	if err := gob.NewDecoder(bytes.NewReader(c.fwImage.Bytes())).Decode(&prog); err != nil {
		return fmt.Errorf("nvme: decoding Conduit binary: %w", err)
	}
	c.fwImage.Reset()
	if err := c.dev.LoadProgram(&prog, c.staged); err != nil {
		return err
	}
	c.committed = &prog
	return nil
}

// Committed reports the active Conduit program, if any.
func (c *Controller) Committed() *isa.Program { return c.committed }

// WritePage is a host I/O write of one logical page. Before a program is
// committed, writes stage input data; afterwards they are refused while
// the drive computes (§4.4: host I/O is suspended in computation mode).
func (c *Controller) WritePage(p isa.PageID, data []byte) error {
	if c.dev.Mode() == ssd.ModeComputation {
		return fmt.Errorf("nvme: write refused in computation mode")
	}
	c.staged[p] = append([]byte(nil), data...)
	return nil
}

// ReadPage is a host I/O read of one logical page. Reading a page that a
// computation resource owns triggers the host-transfer synchronization of
// §4.4: the page is committed to flash before the data leaves the drive.
func (c *Controller) ReadPage(p isa.PageID) ([]byte, error) {
	if c.dev.Mode() == ssd.ModeComputation {
		return nil, fmt.Errorf("nvme: read refused in computation mode")
	}
	if c.committed == nil {
		if d, ok := c.staged[p]; ok {
			return append([]byte(nil), d...), nil
		}
		return nil, fmt.Errorf("nvme: page %d not staged", p)
	}
	data, err := c.dev.PageBytes(p)
	if err != nil {
		return nil, err
	}
	if c.dev.Dir.Owner(int(p)) != coherence.LocFlash {
		// Commit the latest version to flash and hand it to the host.
		if c.dev.Dir.Sync(int(p), coherence.SyncHostTransfer) {
			if _, werr := c.dev.FTL.Write(0, ftl.LPN(p), data, -1); werr != nil {
				return nil, werr
			}
		}
	}
	return data, nil
}

// HostRead is a timed host I/O read in regular I/O mode: the §4.4
// host-transfer synchronization (committing a computation result to flash)
// plus the flash read and the PCIe transfer to the host. It returns the
// data and the completion time — the I/O-latency path of the storage
// stack.
func (c *Controller) HostRead(now sim.Time, p isa.PageID) ([]byte, sim.Time, error) {
	data, err := c.ReadPage(p) // performs the coherence sync bookkeeping
	if err != nil {
		return nil, 0, err
	}
	dev := c.dev
	cfg := &dev.Cfg.SSD
	done := now
	if _, lat, err := dev.FTL.Lookup(ftl.LPN(p)); err == nil {
		// Flash-resident: sense + channel transfer.
		_, rdone, rerr := dev.FTL.Read(now, now+lat, ftl.LPN(p))
		if rerr == nil {
			_ = rdone
			done = rdone
		}
	}
	done += cfg.PCIeTransferTime(cfg.PageSize)
	return data, done, nil
}

// EnterComputationMode switches the drive into computation mode.
func (c *Controller) EnterComputationMode() { c.dev.EnterComputationMode() }

// ExitComputationMode resumes host I/O service.
func (c *Controller) ExitComputationMode() { c.dev.ExitComputationMode() }
