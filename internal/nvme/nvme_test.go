package nvme

import (
	"bytes"
	"testing"

	"conduit/internal/config"
	"conduit/internal/isa"
	"conduit/internal/offload"
	"conduit/internal/sim"
	"conduit/internal/ssd"
)

func testProgram(ps int) (*isa.Program, map[isa.PageID][]byte) {
	r := sim.NewRNG(42)
	a := make([]byte, ps)
	b := make([]byte, ps)
	r.Bytes(a)
	r.Bytes(b)
	prog := &isa.Program{
		Name:  "nvme-test",
		Pages: 3,
		Insts: []isa.Inst{
			{ID: 0, Op: isa.OpXor, Dst: 2, Srcs: []isa.PageID{0, 1}, Elem: 1, Lanes: ps},
		},
		InputPages: []isa.PageID{0, 1},
	}
	prog.InferDeps()
	return prog, map[isa.PageID][]byte{0: a, 1: b}
}

func newController(t *testing.T) (*Controller, *config.Config) {
	t.Helper()
	cfg := config.TestScale()
	return NewController(ssd.New(&cfg)), &cfg
}

func TestFullHostFlow(t *testing.T) {
	c, cfg := newController(t)
	prog, inputs := testProgram(cfg.SSD.PageSize)

	// 1. Host writes input data via regular I/O.
	for p, d := range inputs {
		if err := c.WritePage(p, d); err != nil {
			t.Fatal(err)
		}
	}
	// 2. Host transfers the Conduit binary in chunks.
	img, err := MarshalProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	half := len(img) / 2
	if err := c.FWDownload(img[:half], 0); err != nil {
		t.Fatal(err)
	}
	if err := c.FWDownload(img[half:], half); err != nil {
		t.Fatal(err)
	}
	// 3. Commit with the Conduit flag installs the program.
	if err := c.FWCommit(true); err != nil {
		t.Fatal(err)
	}
	if c.Committed() == nil {
		t.Fatal("no committed program")
	}
	// 4. Computation mode: host I/O refused, program runs.
	c.EnterComputationMode()
	if err := c.WritePage(0, inputs[0]); err == nil {
		t.Fatal("write must be refused in computation mode")
	}
	if _, err := c.ReadPage(2); err == nil {
		t.Fatal("read must be refused in computation mode")
	}
	if _, err := c.Device().Run(offload.Conduit{}); err != nil {
		t.Fatal(err)
	}
	// 5. Back to I/O mode: result readable, with host-transfer sync.
	c.ExitComputationMode()
	got, err := c.ReadPage(2)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, cfg.SSD.PageSize)
	for i := range want {
		want[i] = inputs[0][i] ^ inputs[1][i]
	}
	if !bytes.Equal(got, want) {
		t.Fatal("host read returned wrong result")
	}
}

func TestHostReadTimedPath(t *testing.T) {
	c, cfg := newController(t)
	prog, inputs := testProgram(cfg.SSD.PageSize)
	for p, d := range inputs {
		if err := c.WritePage(p, d); err != nil {
			t.Fatal(err)
		}
	}
	img, _ := MarshalProgram(prog)
	if err := c.FWDownload(img, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.FWCommit(true); err != nil {
		t.Fatal(err)
	}
	c.EnterComputationMode()
	if _, err := c.Device().Run(offload.Conduit{}); err != nil {
		t.Fatal(err)
	}
	c.ExitComputationMode()
	data, done, err := c.HostRead(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Latency must cover at least a flash sense plus the PCIe transfer.
	min := cfg.SSD.TRead + cfg.SSD.PCIeTransferTime(cfg.SSD.PageSize)
	if done < min {
		t.Fatalf("host read latency %v below physical floor %v", done, min)
	}
	want := make([]byte, cfg.SSD.PageSize)
	for i := range want {
		want[i] = inputs[0][i] ^ inputs[1][i]
	}
	if !bytes.Equal(data, want) {
		t.Fatal("host read returned wrong data")
	}
}

func TestOutOfOrderDownloadRejected(t *testing.T) {
	c, _ := newController(t)
	if err := c.FWDownload([]byte{1, 2, 3}, 5); err == nil {
		t.Fatal("out-of-order chunk must be rejected")
	}
}

func TestVendorFirmwarePathIgnored(t *testing.T) {
	c, _ := newController(t)
	if err := c.FWDownload([]byte("vendor-blob"), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.FWCommit(false); err != nil {
		t.Fatal("vendor firmware commit should be accepted")
	}
	if c.Committed() != nil {
		t.Fatal("vendor firmware must not install a Conduit program")
	}
}

func TestCorruptBinaryRejected(t *testing.T) {
	c, _ := newController(t)
	if err := c.FWDownload([]byte("garbage"), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.FWCommit(true); err == nil {
		t.Fatal("corrupt Conduit binary must be rejected")
	}
}

func TestCommitRefusedInComputationMode(t *testing.T) {
	c, cfg := newController(t)
	prog, _ := testProgram(cfg.SSD.PageSize)
	img, _ := MarshalProgram(prog)
	if err := c.FWDownload(img, 0); err != nil {
		t.Fatal(err)
	}
	c.EnterComputationMode()
	if err := c.FWCommit(true); err == nil {
		t.Fatal("commit must be refused in computation mode")
	}
}

func TestReadUnstagedPage(t *testing.T) {
	c, _ := newController(t)
	if _, err := c.ReadPage(7); err == nil {
		t.Fatal("reading an unstaged page before commit must fail")
	}
}
