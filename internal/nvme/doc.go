// Package nvme models the host-SSD command surface Conduit relies on
// (§4.4): regular I/O reads and writes, and the repurposed firmware-update
// admin commands (fw-download / fw-commit) that transfer Conduit's
// compiled binary to the drive. The commit command carries the paper's
// added flag distinguishing a Conduit binary from vendor FTL firmware.
//
// The "binary" is the serialized vector IR program (encoding/gob), staged
// in chunks exactly as NVMe firmware images are.
package nvme
