package offload

import (
	"fmt"

	"conduit/internal/isa"
	"conduit/internal/sim"
)

// Features is the per-instruction snapshot of the six cost-function inputs
// (Table 1): operation type (on Inst.Meta / Inst.Op), operand location
// (folded into MoveLatency, as §4.3.2 describes), data dependence delay,
// per-resource queueing delay, data movement latency, and expected
// computation latency. BWUtil carries the bandwidth-utilization signal that
// BW-Offloading uses instead.
type Features struct {
	Inst *isa.Inst

	Supported   [isa.NumResources]bool
	CompLatency [isa.NumResources]sim.Time // expected computation latency
	MoveLatency [isa.NumResources]sim.Time // operand movement to reach the resource
	// ResultMove is the interconnect cost of placing the result where a
	// consumer can use it (e.g. copying an in-flash result out of the
	// plane latches). Conduit's holistic cost function prices it;
	// DM-Offloading — which only minimizes operand movement — does not,
	// which is one of the blind spots §3.2 identifies.
	ResultMove [isa.NumResources]sim.Time
	QueueDelay [isa.NumResources]sim.Time // pending work in the resource's queue
	DepDelay   sim.Time                   // time until operands are produced
	BWUtil     [isa.NumResources]float64  // utilization of the resource's data path
}

// TotalLatency evaluates Eqn. 1 for resource r:
//
//	total = latency_comp + latency_dm + max(delay_dd, delay_queue)
//
// The dependence and queueing delays overlap — an instruction starts when
// both its operands and its resource are ready — hence the max.
func (f *Features) TotalLatency(r isa.Resource) sim.Time {
	wait := f.DepDelay
	if f.QueueDelay[r] > wait {
		wait = f.QueueDelay[r]
	}
	return f.CompLatency[r] + f.MoveLatency[r] + f.ResultMove[r] + wait
}

// Policy selects a computation resource for each vector instruction.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Select returns the chosen resource. At least one resource always
	// supports the instruction (ISP executes the full ISA).
	Select(f *Features) isa.Resource
}

// supportedFallback returns the first supported resource, preferring ISP
// (which supports everything by construction).
func supportedFallback(f *Features) isa.Resource {
	if f.Supported[isa.ResISP] {
		return isa.ResISP
	}
	for _, r := range isa.AllResources {
		if f.Supported[r] {
			return r
		}
	}
	panic(fmt.Sprintf("offload: no resource supports %v", f.Inst.Op))
}

// argminOver picks the supported resource minimizing cost, breaking ties
// toward the earlier resource in isa.AllResources order (deterministic).
func argminOver(f *Features, cost func(isa.Resource) sim.Time) isa.Resource {
	best := isa.Resource(255)
	var bestCost sim.Time
	for _, r := range isa.AllResources {
		if !f.Supported[r] {
			continue
		}
		c := cost(r)
		if best == 255 || c < bestCost {
			best, bestCost = r, c
		}
	}
	if best == 255 {
		return supportedFallback(f)
	}
	return best
}

// Conduit is the paper's policy: argmin over resources of Eqn. 1.
type Conduit struct{}

// Name implements Policy.
func (Conduit) Name() string { return "Conduit" }

// Select implements Eqn. 2: offloading_target = argmin(total_latency_i).
func (Conduit) Select(f *Features) isa.Resource {
	return argminOver(f, f.TotalLatency)
}

// DMOffloading models prior data-movement-minimizing offloaders
// (e.g. ALP-style): it offloads each instruction to the resource that
// minimizes operand data movement, ignoring resource utilization and
// dependence delays. Ties break toward lower computation latency.
type DMOffloading struct{}

// Name implements Policy.
func (DMOffloading) Name() string { return "DM-Offloading" }

// Select implements Policy.
func (DMOffloading) Select(f *Features) isa.Resource {
	// Scale movement latency so it strictly dominates the compute
	// tie-breaker.
	return argminOver(f, func(r isa.Resource) sim.Time {
		return f.MoveLatency[r]*1024 + f.CompLatency[r]
	})
}

// BWOffloading models prior bandwidth-utilization-based offloaders
// (e.g. TOM-style): it offloads each instruction to the least
// bandwidth-utilized resource, ignoring movement cost.
type BWOffloading struct{}

// Name implements Policy.
func (BWOffloading) Name() string { return "BW-Offloading" }

// Select implements Policy.
func (BWOffloading) Select(f *Features) isa.Resource {
	best := isa.Resource(255)
	bestUtil := 0.0
	for _, r := range isa.AllResources {
		if !f.Supported[r] {
			continue
		}
		if best == 255 || f.BWUtil[r] < bestUtil {
			best, bestUtil = r, f.BWUtil[r]
		}
	}
	if best == 255 {
		return supportedFallback(f)
	}
	return best
}

// Ideal is the unrealizable upper bound (§5.3): no queueing delays, zero
// data movement, and the resource with the least computation latency. The
// runtime honors the same assumptions when executing under Ideal.
type Ideal struct{}

// Name implements Policy.
func (Ideal) Name() string { return "Ideal" }

// Select implements Policy.
func (Ideal) Select(f *Features) isa.Resource {
	return argminOver(f, func(r isa.Resource) sim.Time {
		return f.CompLatency[r]
	})
}

// ISPOnly executes everything on the SSD controller cores.
type ISPOnly struct{}

// Name implements Policy.
func (ISPOnly) Name() string { return "ISP" }

// Select implements Policy.
func (ISPOnly) Select(*Features) isa.Resource { return isa.ResISP }

// PuDSSD models the MIMDRAM-based PuD-SSD baseline: DRAM for every
// operation it supports, controller cores for the rest.
type PuDSSD struct{}

// Name implements Policy.
func (PuDSSD) Name() string { return "PuD-SSD" }

// Select implements Policy.
func (PuDSSD) Select(f *Features) isa.Resource {
	if f.Supported[isa.ResPuD] {
		return isa.ResPuD
	}
	return isa.ResISP
}

// FlashCosmos models the Flash-Cosmos baseline: bulk bitwise operations in
// the flash arrays via multi-wordline sensing; everything else on the
// controller cores (§5.3: baselines leverage the controller cores for
// computations they do not support).
type FlashCosmos struct{}

// Name implements Policy.
func (FlashCosmos) Name() string { return "Flash-Cosmos" }

// Select implements Policy.
func (FlashCosmos) Select(f *Features) isa.Resource {
	if f.Inst.Op.Class() == isa.ClassBitwise && f.Supported[isa.ResIFP] {
		return isa.ResIFP
	}
	return isa.ResISP
}

// AresFlash models the Ares-Flash baseline: bulk bitwise and integer
// arithmetic in flash; the rest on the controller cores.
type AresFlash struct{}

// Name implements Policy.
func (AresFlash) Name() string { return "Ares-Flash" }

// Select implements Policy.
func (AresFlash) Select(f *Features) isa.Resource {
	if f.Supported[isa.ResIFP] {
		return isa.ResIFP
	}
	return isa.ResISP
}

// NaiveCombo is the case-study strawman of §3.1 ("naively combining IFP
// and ISP"): it alternates IFP-capable instructions between flash and the
// controller cores without considering where the operands live, inducing
// the inter-resource ping-pong the case study measures.
type NaiveCombo struct {
	flip bool
}

// Name implements Policy.
func (*NaiveCombo) Name() string { return "IFP+ISP" }

// Select implements Policy.
func (n *NaiveCombo) Select(f *Features) isa.Resource {
	if !f.Supported[isa.ResIFP] {
		return isa.ResISP
	}
	n.flip = !n.flip
	if n.flip {
		return isa.ResIFP
	}
	return isa.ResISP
}

// Ablated is Conduit with selected cost-function terms removed; the
// ablation benches quantify each term's contribution.
type Ablated struct {
	// DropQueue removes the resource-queueing-delay term.
	DropQueue bool
	// DropDep removes the data-dependence-delay term.
	DropDep bool
	// DropMove removes the data-movement-latency term.
	DropMove bool
}

// Name implements Policy.
func (a Ablated) Name() string {
	n := "Conduit"
	if a.DropQueue {
		n += "-noqueue"
	}
	if a.DropDep {
		n += "-nodep"
	}
	if a.DropMove {
		n += "-nomove"
	}
	return n
}

// Select implements Policy.
func (a Ablated) Select(f *Features) isa.Resource {
	return argminOver(f, func(r isa.Resource) sim.Time {
		var wait sim.Time
		if !a.DropDep {
			wait = f.DepDelay
		}
		if !a.DropQueue && f.QueueDelay[r] > wait {
			wait = f.QueueDelay[r]
		}
		total := f.CompLatency[r] + wait
		if !a.DropMove {
			total += f.MoveLatency[r] + f.ResultMove[r]
		}
		return total
	})
}
