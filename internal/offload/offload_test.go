package offload

import (
	"testing"
	"testing/quick"

	"conduit/internal/isa"
	"conduit/internal/sim"
)

// feat builds a Features snapshot for an add with the given per-resource
// numbers (order: ISP, PuD, IFP).
func feat(op isa.Op, comp, move, queue [3]sim.Time, dep sim.Time) *Features {
	f := &Features{
		Inst:     &isa.Inst{Op: op, Elem: 1, Lanes: 64},
		DepDelay: dep,
	}
	for _, r := range isa.AllResources {
		f.Supported[r] = isa.Supports(r, op)
		f.CompLatency[r] = comp[r]
		f.MoveLatency[r] = move[r]
		f.QueueDelay[r] = queue[r]
	}
	return f
}

func TestTotalLatencyEquation1(t *testing.T) {
	f := feat(isa.OpAdd, [3]sim.Time{100, 200, 300}, [3]sim.Time{10, 20, 30},
		[3]sim.Time{5, 500, 5}, 50)
	// ISP: comp 100 + move 10 + max(dep 50, queue 5) = 160.
	if got := f.TotalLatency(isa.ResISP); got != 160 {
		t.Errorf("ISP total = %v, want 160", got)
	}
	// PuD: 200 + 20 + max(50, 500) = 720 (queueing dominates dependence).
	if got := f.TotalLatency(isa.ResPuD); got != 720 {
		t.Errorf("PuD total = %v, want 720", got)
	}
}

func TestConduitPicksArgmin(t *testing.T) {
	f := feat(isa.OpAdd, [3]sim.Time{100, 200, 300}, [3]sim.Time{10, 20, 30},
		[3]sim.Time{5, 500, 5}, 50)
	if got := (Conduit{}).Select(f); got != isa.ResISP {
		t.Errorf("Conduit chose %v, want ISP", got)
	}
	// Load ISP's queue heavily: Conduit must move away.
	f.QueueDelay[isa.ResISP] = 10 * sim.Millisecond
	if got := (Conduit{}).Select(f); got != isa.ResIFP {
		t.Errorf("Conduit chose %v under ISP congestion, want IFP", got)
	}
}

func TestConduitRespectsSupportMatrix(t *testing.T) {
	// Division: only ISP supports it, whatever the costs say.
	f := feat(isa.OpDiv, [3]sim.Time{1000, 1, 1}, [3]sim.Time{0, 0, 0},
		[3]sim.Time{0, 0, 0}, 0)
	if got := (Conduit{}).Select(f); got != isa.ResISP {
		t.Errorf("Conduit chose %v for div, want ISP", got)
	}
}

func TestDMOffloadingIgnoresQueueing(t *testing.T) {
	// IFP has zero movement but a massive queue; DM-Offloading still picks
	// it — exactly the failure mode §3.2 describes.
	f := feat(isa.OpAdd, [3]sim.Time{100, 100, 100}, [3]sim.Time{500, 500, 0},
		[3]sim.Time{0, 0, 100 * sim.Millisecond}, 0)
	if got := (DMOffloading{}).Select(f); got != isa.ResIFP {
		t.Errorf("DM chose %v, want IFP (movement-blind to queues)", got)
	}
	if got := (Conduit{}).Select(f); got == isa.ResIFP {
		t.Error("Conduit should avoid the congested IFP queue")
	}
}

func TestDMOffloadingTieBreaksOnCompute(t *testing.T) {
	f := feat(isa.OpAdd, [3]sim.Time{50, 10, 100}, [3]sim.Time{7, 7, 7},
		[3]sim.Time{0, 0, 0}, 0)
	if got := (DMOffloading{}).Select(f); got != isa.ResPuD {
		t.Errorf("DM tie-break chose %v, want PuD (cheapest compute)", got)
	}
}

func TestBWOffloadingPicksLeastUtilized(t *testing.T) {
	f := feat(isa.OpAdd, [3]sim.Time{1, 1, 1}, [3]sim.Time{1000, 1000, 1000},
		[3]sim.Time{0, 0, 0}, 0)
	f.BWUtil = [3]float64{0.9, 0.2, 0.5}
	if got := (BWOffloading{}).Select(f); got != isa.ResPuD {
		t.Errorf("BW chose %v, want PuD (lowest utilization)", got)
	}
	// Unsupported resources are skipped even if least utilized.
	f2 := feat(isa.OpDiv, [3]sim.Time{1, 1, 1}, [3]sim.Time{0, 0, 0},
		[3]sim.Time{0, 0, 0}, 0)
	f2.BWUtil = [3]float64{0.9, 0.0, 0.0}
	if got := (BWOffloading{}).Select(f2); got != isa.ResISP {
		t.Errorf("BW chose %v for div, want ISP", got)
	}
}

func TestIdealPicksLowestCompute(t *testing.T) {
	f := feat(isa.OpAdd, [3]sim.Time{300, 100, 200},
		[3]sim.Time{0, 10 * sim.Millisecond, 0},
		[3]sim.Time{0, 10 * sim.Millisecond, 0}, 10*sim.Millisecond)
	if got := (Ideal{}).Select(f); got != isa.ResPuD {
		t.Errorf("Ideal chose %v, want PuD regardless of movement/queues", got)
	}
}

func TestStaticPolicies(t *testing.T) {
	add := feat(isa.OpAdd, [3]sim.Time{1, 1, 1}, [3]sim.Time{0, 0, 0}, [3]sim.Time{0, 0, 0}, 0)
	xor := feat(isa.OpXor, [3]sim.Time{1, 1, 1}, [3]sim.Time{0, 0, 0}, [3]sim.Time{0, 0, 0}, 0)
	mul := feat(isa.OpMul, [3]sim.Time{1, 1, 1}, [3]sim.Time{0, 0, 0}, [3]sim.Time{0, 0, 0}, 0)
	div := feat(isa.OpDiv, [3]sim.Time{1, 1, 1}, [3]sim.Time{0, 0, 0}, [3]sim.Time{0, 0, 0}, 0)
	sub := feat(isa.OpSub, [3]sim.Time{1, 1, 1}, [3]sim.Time{0, 0, 0}, [3]sim.Time{0, 0, 0}, 0)

	if (ISPOnly{}).Select(xor) != isa.ResISP {
		t.Error("ISPOnly must always pick ISP")
	}
	if (PuDSSD{}).Select(add) != isa.ResPuD || (PuDSSD{}).Select(div) != isa.ResISP {
		t.Error("PuD-SSD picks DRAM when supported, else ISP")
	}
	// Flash-Cosmos: bitwise to flash, arithmetic to cores.
	if (FlashCosmos{}).Select(xor) != isa.ResIFP {
		t.Error("Flash-Cosmos must put XOR in flash")
	}
	if (FlashCosmos{}).Select(add) != isa.ResISP || (FlashCosmos{}).Select(mul) != isa.ResISP {
		t.Error("Flash-Cosmos must put arithmetic on cores")
	}
	// Ares-Flash adds in-flash arithmetic.
	if (AresFlash{}).Select(add) != isa.ResIFP || (AresFlash{}).Select(mul) != isa.ResIFP {
		t.Error("Ares-Flash must put add/mul in flash")
	}
	if (AresFlash{}).Select(sub) != isa.ResISP {
		t.Error("Ares-Flash must fall back to ISP for subtraction")
	}
}

func TestNaiveComboAlternates(t *testing.T) {
	n := &NaiveCombo{}
	xor := feat(isa.OpXor, [3]sim.Time{1, 1, 1}, [3]sim.Time{0, 0, 0}, [3]sim.Time{0, 0, 0}, 0)
	first := n.Select(xor)
	second := n.Select(xor)
	if first == second {
		t.Error("naive combo must alternate IFP and ISP")
	}
	div := feat(isa.OpDiv, [3]sim.Time{1, 1, 1}, [3]sim.Time{0, 0, 0}, [3]sim.Time{0, 0, 0}, 0)
	if n.Select(div) != isa.ResISP {
		t.Error("naive combo must not send unsupported ops to flash")
	}
}

func TestAblatedDropsTerms(t *testing.T) {
	// Queue congestion on IFP: full Conduit avoids it, queue-ablated walks
	// right into it (it looks free otherwise).
	f := feat(isa.OpAdd, [3]sim.Time{100, 100, 10}, [3]sim.Time{50, 50, 0},
		[3]sim.Time{0, 0, sim.Second}, 0)
	if got := (Conduit{}).Select(f); got == isa.ResIFP {
		t.Error("full Conduit should dodge the congested queue")
	}
	if got := (Ablated{DropQueue: true}).Select(f); got != isa.ResIFP {
		t.Errorf("queue-ablated chose %v, want IFP", got)
	}
	// Movement-ablated ignores a huge movement cost.
	f2 := feat(isa.OpAdd, [3]sim.Time{100, 10, 100}, [3]sim.Time{0, sim.Second, 0},
		[3]sim.Time{0, 0, 0}, 0)
	if got := (Ablated{DropMove: true}).Select(f2); got != isa.ResPuD {
		t.Errorf("move-ablated chose %v, want PuD", got)
	}
	if got := (Conduit{}).Select(f2); got == isa.ResPuD {
		t.Error("full Conduit should price the movement")
	}
	if name := (Ablated{DropQueue: true, DropMove: true}).Name(); name != "Conduit-noqueue-nomove" {
		t.Errorf("ablation name = %q", name)
	}
}

// Property: Conduit's choice always achieves the minimum Eqn-1 cost among
// supported resources, and never selects an unsupported resource.
func TestConduitArgminProperty(t *testing.T) {
	ops := []isa.Op{isa.OpAdd, isa.OpMul, isa.OpXor, isa.OpDiv, isa.OpSub, isa.OpLT, isa.OpShuffle}
	f := func(seed uint64, opSel uint8) bool {
		r := sim.NewRNG(seed)
		op := ops[int(opSel)%len(ops)]
		var comp, move, queue [3]sim.Time
		for i := 0; i < 3; i++ {
			comp[i] = sim.Time(r.Intn(1000000))
			move[i] = sim.Time(r.Intn(1000000))
			queue[i] = sim.Time(r.Intn(1000000))
		}
		ft := feat(op, comp, move, queue, sim.Time(r.Intn(1000000)))
		choice := (Conduit{}).Select(ft)
		if !ft.Supported[choice] {
			return false
		}
		for _, res := range isa.AllResources {
			if ft.Supported[res] && ft.TotalLatency(res) < ft.TotalLatency(choice) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]Policy{
		"Conduit":       Conduit{},
		"DM-Offloading": DMOffloading{},
		"BW-Offloading": BWOffloading{},
		"Ideal":         Ideal{},
		"ISP":           ISPOnly{},
		"PuD-SSD":       PuDSSD{},
		"Flash-Cosmos":  FlashCosmos{},
		"Ares-Flash":    AresFlash{},
		"IFP+ISP":       &NaiveCombo{},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("policy name %q, want %q", p.Name(), want)
		}
	}
}
