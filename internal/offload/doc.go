// Package offload implements Conduit's runtime offloading decision — the
// holistic cost function of §4.3.2 (Table 1 features, Eqn. 1–2) — together
// with every prior policy the paper evaluates against it: bandwidth-based
// offloading (BW-Offloading), data-movement-based offloading
// (DM-Offloading), the unrealizable Ideal policy, and the four
// single-resource techniques (ISP, PuD-SSD, Flash-Cosmos, Ares-Flash).
//
// Policies are pure functions of a Features snapshot; the SSD runtime
// gathers the features (charging the §4.5 collection latencies) and then
// executes whatever the chosen policy returns. This mirrors the paper's
// split between the SSD offloader and its cost function.
package offload
