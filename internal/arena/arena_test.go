package arena

import "testing"

func TestGetPutReuse(t *testing.T) {
	p := New(64)
	b := p.Get()
	if len(b) != 64 {
		t.Fatalf("Get returned %d bytes, want 64", len(b))
	}
	b[0] = 0xAB
	p.Put(b)
	if p.Idle() != 1 {
		t.Fatalf("Idle = %d after one Put, want 1", p.Idle())
	}
	b2 := p.Get()
	if &b2[0] != &b[0] {
		t.Fatal("Get did not reuse the freed buffer")
	}
	if b2[0] != 0xAB {
		t.Fatal("Get must return buffers with arbitrary (stale) contents")
	}
}

func TestGetZeroedClearsStaleContents(t *testing.T) {
	p := New(16)
	b := p.Get()
	for i := range b {
		b[i] = 0xFF
	}
	p.Put(b)
	z := p.GetZeroed()
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed byte %d = %#x, want 0", i, v)
		}
	}
}

func TestGetCopy(t *testing.T) {
	p := New(4)
	src := []byte{1, 2, 3, 4}
	c := p.GetCopy(src)
	src[0] = 99
	if c[0] != 1 || c[3] != 4 {
		t.Fatalf("GetCopy = %v, want independent copy of [1 2 3 4]", c)
	}
}

func TestPutRejectsWrongSizeAndNil(t *testing.T) {
	p := New(8)
	p.Put(nil)
	p.Put(make([]byte, 7))
	p.Put(make([]byte, 9))
	if p.Idle() != 0 {
		t.Fatalf("Idle = %d, want 0: wrong-size buffers must be rejected", p.Idle())
	}
	var nilPool *Pool
	nilPool.Put(make([]byte, 8)) // must not panic
}

func TestRetentionCap(t *testing.T) {
	p := New(8)
	for i := 0; i < maxFree+10; i++ {
		p.Put(make([]byte, 8))
	}
	if p.Idle() != maxFree {
		t.Fatalf("Idle = %d, want cap %d", p.Idle(), maxFree)
	}
}
