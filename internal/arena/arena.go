// Package arena provides a fixed-size page-buffer free list for the
// simulator's data plane. Every computation substrate produces its results
// into freshly allocated page-sized buffers (the replace-on-write
// discipline that keeps Device.Clone cheap); the arena lets a run reuse
// the buffers it has proven dead — a replaced functional result, a
// streamed operand copy after its operation retires — instead of leaving
// one garbage page behind every operation.
//
// A Pool is intentionally not safe for concurrent use: it belongs to
// exactly one module instance (or one run), matching the simulator's
// one-goroutine-per-device discipline. Cloning a module must create a
// fresh Pool for the clone; free buffers are dead by definition and are
// never shared.
package arena

// maxFree bounds how many dead buffers a pool retains. Beyond this the
// pool lets the garbage collector take over; the cap keeps worst-case
// retention (e.g. a burst of DRAM-slot invalidations) to a few MiB of
// page-sized buffers rather than a whole device image.
const maxFree = 256

// Pool is a LIFO free list of same-sized byte buffers.
type Pool struct {
	size int
	free [][]byte
}

// New returns an empty pool of size-byte buffers.
func New(size int) *Pool {
	if size <= 0 {
		panic("arena: pool buffer size must be positive")
	}
	return &Pool{size: size}
}

// Size reports the pool's buffer size in bytes.
func (p *Pool) Size() int { return p.size }

// Idle reports how many dead buffers the pool currently holds.
func (p *Pool) Idle() int { return len(p.free) }

// Get returns a buffer of the pool's size. Its contents are arbitrary
// (stale data from a previous life): the caller must fully overwrite it
// or use GetZeroed.
func (p *Pool) Get() []byte {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return b
	}
	return make([]byte, p.size)
}

// GetZeroed returns a buffer of the pool's size with every byte zero.
func (p *Pool) GetZeroed() []byte {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		clear(b)
		return b
	}
	return make([]byte, p.size)
}

// GetCopy returns a buffer holding a copy of src. src must be exactly the
// pool's size.
func (p *Pool) GetCopy(src []byte) []byte {
	b := p.Get()
	copy(b, src)
	return b
}

// Put returns a dead buffer to the pool. The caller asserts nothing else
// references b — in this codebase that means b was freshly allocated by
// the current run and has either never been stored, or was stored and has
// since been replaced with no Clone taken in between. Buffers of the
// wrong size (and nil) are ignored, so callers can Put buffers of unknown
// provenance unconditionally.
func (p *Pool) Put(b []byte) {
	if p == nil || len(b) != p.size || len(p.free) >= maxFree {
		return
	}
	p.free = append(p.free, b)
}
