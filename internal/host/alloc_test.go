package host

import (
	"testing"

	"conduit/internal/config"
	"conduit/internal/isa"
	"conduit/internal/sim"
)

// TestRunSteadyStateAllocsPerOp pins the per-instruction allocation
// behavior of the OSP functional path: result pages come from the
// run-local free list and replaced page values are recycled, so a long
// instruction stream must average well under one heap allocation per
// instruction (fixed per-run setup — maps, the latency reservoir — is
// amortized across the stream). Before buffer reuse this path allocated
// at least one page-sized buffer and one operand slice per instruction.
func TestRunSteadyStateAllocsPerOp(t *testing.T) {
	cfg := config.TestScale()
	ps := cfg.SSD.PageSize
	const nInputs = 4
	const nOps = 400

	inputs := map[isa.PageID][]byte{}
	var ids []isa.PageID
	r := sim.NewRNG(3)
	for i := 0; i < nInputs; i++ {
		p := make([]byte, ps)
		r.Bytes(p)
		inputs[isa.PageID(i)] = p
		ids = append(ids, isa.PageID(i))
	}
	// Every instruction overwrites the same destination page: the replaced
	// value is dead and must be recycled, not leaked to the collector.
	insts := make([]isa.Inst, 0, nOps)
	for i := 0; i < nOps; i++ {
		insts = append(insts, isa.Inst{ID: i, Op: isa.OpXor,
			Dst:  isa.PageID(nInputs),
			Srcs: []isa.PageID{isa.PageID(i % nInputs), isa.PageID((i + 1) % nInputs)},
			Elem: 1, Lanes: ps})
	}
	prog := &isa.Program{Name: "alloc", Pages: nInputs + 1, Insts: insts, InputPages: ids}
	prog.InferDeps()
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}

	m := New(&cfg, CPU)
	run := func() {
		if _, _, err := m.Run(prog, inputs); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm caches unrelated to the per-op path
	perRun := testing.AllocsPerRun(5, run)
	perOp := perRun / nOps
	if perOp > 0.5 {
		t.Fatalf("host Run allocates %.2f objects per instruction (%.0f per run), want < 0.5", perOp, perRun)
	}
}
