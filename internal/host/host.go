package host

import (
	"fmt"

	"conduit/internal/arena"
	"conduit/internal/config"
	"conduit/internal/cores"
	"conduit/internal/energy"
	"conduit/internal/isa"
	"conduit/internal/sim"
	"conduit/internal/stats"
)

// Kind selects the OSP engine.
type Kind uint8

// Host engines.
const (
	CPU Kind = iota
	GPU
)

// String names the engine.
func (k Kind) String() string {
	if k == CPU {
		return "CPU"
	}
	return "GPU"
}

// kernelLaunchOverhead is the per-offload-region launch cost on the GPU.
const kernelLaunchOverhead = 5 * sim.Microsecond

// Result is the outcome of an OSP run.
type Result struct {
	Kind           Kind
	Elapsed        sim.Time
	ComputeEnergy  float64
	MovementEnergy float64
	PCIeBytes      int64
	InstLatencies  *stats.Reservoir
}

// Model is a functional + timed OSP engine.
type Model struct {
	cfg  *config.Config
	kind Kind
}

// New returns an OSP model of the given kind.
func New(cfg *config.Config, kind Kind) *Model {
	return &Model{cfg: cfg, kind: kind}
}

// computeTime is the pure compute term of the roofline for one vector
// instruction.
func (m *Model) computeTime(inst *isa.Inst) sim.Time {
	h := &m.cfg.Host
	if inst.Op == isa.OpScalar {
		// Control regions run on the CPU in either case; GPU execution
		// additionally pays a kernel-boundary overhead.
		t := sim.Time(float64(inst.ScalarCycles) / h.CPUClockHz * 1e9)
		if m.kind == GPU {
			t += kernelLaunchOverhead
		}
		return t
	}
	if inst.Meta.Unvectorized {
		// Loops the vectorizer rejected run lane-serially on the host
		// CPU too (the dependence is a property of the code, not the
		// machine); GPU execution falls back through the host core.
		t := sim.Time(float64(int64(inst.Lanes)*isa.ScalarCyclesPerLane) / h.CPUClockHz * 1e9)
		if m.kind == GPU {
			t += kernelLaunchOverhead
		}
		return t
	}
	beat := beatCost(inst.Op)
	switch m.kind {
	case CPU:
		bytes := float64(inst.VectorBytes())
		perSec := float64(h.CPUCores*h.CPUSIMDBytes) * h.CPUClockHz
		return sim.Time(bytes * beat / perSec * 1e9)
	default:
		lanes := float64(inst.Lanes)
		perSec := float64(h.GPUSMs*h.GPULanesPerSM) * h.GPUClockHz
		return sim.Time(lanes*beat/perSec*1e9) + kernelLaunchOverhead/16
	}
}

// beatCost mirrors the relative instruction costs of the device substrates
// so op-mix effects carry through to the host models.
func beatCost(op isa.Op) float64 {
	switch op {
	case isa.OpMul:
		return 2
	case isa.OpDiv:
		return 12
	case isa.OpSelect, isa.OpShuffle:
		return 2
	default:
		return 1
	}
}

// Run executes prog on the host, streaming pages from the SSD on demand.
func (m *Model) Run(prog *isa.Program, inputs map[isa.PageID][]byte) (*Result, map[isa.PageID][]byte, error) {
	if err := prog.Validate(); err != nil {
		return nil, nil, err
	}
	cfg := &m.cfg.SSD
	h := &m.cfg.Host
	en := energy.NewAccount()
	lat := stats.NewReservoir()

	// Host page cache. The paper sizes workload footprints to exceed
	// memory capacity (§5.4), so only a small fraction of the dataset is
	// ever resident; we model host DRAM as holding 1/16 of the touched
	// pages, preserving that pressure at simulation scale.
	cacheCap := prog.Pages / 16
	if cacheCap < 4 {
		cacheCap = 4
	}
	cached := make(map[isa.PageID]int64, cacheCap)
	var tick int64

	// Page buffers are run-local: every mem payload is allocated by this
	// run (inputs are copied in), so a payload replaced by a later write
	// to the same page is dead and goes back to the pool. Timing-only
	// runs skip the functional pass entirely; every latency above and
	// below is data-independent, so the Result is unchanged.
	var pool *arena.Pool
	var mem map[isa.PageID][]byte
	if !cfg.TimingOnly {
		pool = arena.New(cfg.PageSize)
		mem = make(map[isa.PageID][]byte, prog.Pages)
	}
	load := func(p isa.PageID) []byte {
		if b, ok := mem[p]; ok {
			return b
		}
		var b []byte
		if in, ok := inputs[p]; ok && len(in) == cfg.PageSize {
			b = pool.GetCopy(in)
		} else if ok {
			b = pool.GetZeroed()
			copy(b, in)
		} else {
			b = pool.GetZeroed()
		}
		mem[p] = b
		return b
	}
	touch := func(p isa.PageID) (hit bool) {
		tick++
		if _, ok := cached[p]; ok {
			cached[p] = tick
			return true
		}
		if len(cached) >= cacheCap {
			var victim isa.PageID
			oldest := int64(1<<62 - 1)
			for q, at := range cached {
				if at < oldest {
					victim, oldest = q, at
				}
			}
			delete(cached, victim)
		}
		cached[p] = tick
		return false
	}

	var elapsed sim.Time
	var pcieBytes int64
	var srcs [][]byte // reused operand-pointer scratch
	for i := range prog.Insts {
		inst := &prog.Insts[i]
		var pcie, hostMem sim.Time
		if inst.Op != isa.OpScalar {
			// Resident data streams from host DRAM (CPU) or HBM (GPU).
			memBW := h.MemBandwidth
			if m.kind == GPU {
				memBW = h.HBMBandwidth
			}
			for _, s := range inst.Srcs {
				if !touch(s) {
					// Page fault to the SSD: a demand miss overlaps
					// with a limited number of in-flight reads (the I/O
					// queue depth the blocked computation sustains), so
					// the flash sense amortizes over ~8 outstanding
					// requests, plus PCIe and channel bandwidth.
					const lookahead = 8
					pcie += cfg.PCIeTransferTime(cfg.PageSize) +
						cfg.ChannelTransferTime(cfg.PageSize)/sim.Time(cfg.Channels) +
						cfg.TRead/lookahead
					pcieBytes += int64(cfg.PageSize)
					en.Move("pcie", float64(cfg.PageSize)*h.EPCIePerByte)
				}
				hostMem += sim.Time(float64(inst.VectorBytes()) / memBW * 1e9)
				en.Move("host-dram", float64(inst.VectorBytes())*h.EHostPerByte)
			}
			if inst.Dst != isa.NoPage {
				touch(inst.Dst)
				hostMem += sim.Time(float64(inst.VectorBytes()) / memBW * 1e9)
				en.Move("host-dram", float64(inst.VectorBytes())*h.EHostPerByte)
			}
		}
		comp := m.computeTime(inst)
		t := comp
		if pcie > t {
			t = pcie
		}
		if hostMem > t {
			t = hostMem
		}
		elapsed += t
		lat.Add(t)

		// Functional execution for verification.
		if !cfg.TimingOnly && inst.Op != isa.OpScalar && inst.Dst != isa.NoPage {
			srcs = srcs[:0]
			for _, s := range inst.Srcs {
				srcs = append(srcs, load(s))
			}
			out := pool.Get() // fully overwritten by Apply
			if err := cores.Apply(inst.Op, out, srcs, inst.Elem, inst.UseImm, inst.Imm); err != nil {
				return nil, nil, fmt.Errorf("host: inst %d: %w", i, err)
			}
			if old, ok := mem[inst.Dst]; ok {
				pool.Put(old) // replaced value is dead (reads above are done)
			}
			mem[inst.Dst] = out
		}
	}
	// The host burns package/board power for the whole run, stalled or
	// not — which is why OSP loses the energy comparison so badly in the
	// paper (Fig. 7b): data movement keeps an expensive machine waiting.
	power := h.CPUPowerWatts
	if m.kind == GPU {
		power = h.GPUPowerWatts
	}
	en.Compute(m.kind.String(), elapsed.Seconds()*power)

	return &Result{
		Kind:           m.kind,
		Elapsed:        elapsed,
		ComputeEnergy:  en.ComputeTotal(),
		MovementEnergy: en.MovementTotal(),
		PCIeBytes:      pcieBytes,
		InstLatencies:  lat,
	}, mem, nil
}
