// Package host models outside-storage processing (OSP): executing the
// workload on the host CPU or GPU with operands streamed from the SSD over
// the NVMe/PCIe link. The paper evaluates the hosts on real hardware
// combined with simulated SSD-to-host transfers (§5.3); we substitute
// calibrated roofline models of the same machines (Xeon Gold 5118,
// NVIDIA A100) fed by the same instruction stream — see DESIGN.md.
//
// Per instruction, execution time is the roofline maximum of three terms:
// PCIe transfer of non-resident operands, host-memory traffic, and compute
// throughput. A host-side page cache models data reuse; its capacity is
// half the workload footprint, per the paper's workload sizing ("the
// memory footprint of each workload exceeds the [memory] capacity by 2x",
// §5.4), which is what keeps OSP data-movement-bound.
package host
