package host

import (
	"bytes"
	"testing"

	"conduit/internal/config"
	"conduit/internal/cores"
	"conduit/internal/isa"
	"conduit/internal/sim"
)

func streamProg(t *testing.T, nPages int, op isa.Op) (*isa.Program, map[isa.PageID][]byte) {
	t.Helper()
	cfg := config.TestScale()
	ps := cfg.SSD.PageSize
	inputs := map[isa.PageID][]byte{}
	var ids []isa.PageID
	var insts []isa.Inst
	r := sim.NewRNG(11)
	for i := 0; i < nPages; i++ {
		p := make([]byte, ps)
		r.Bytes(p)
		inputs[isa.PageID(i)] = p
		ids = append(ids, isa.PageID(i))
	}
	for i := 0; i < nPages; i++ {
		insts = append(insts, isa.Inst{ID: i, Op: op,
			Dst:  isa.PageID(nPages + i),
			Srcs: []isa.PageID{isa.PageID(i), isa.PageID((i + 1) % nPages)},
			Elem: 1, Lanes: ps})
	}
	prog := &isa.Program{Name: "stream", Pages: 2 * nPages, Insts: insts, InputPages: ids}
	prog.InferDeps()
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	return prog, inputs
}

func TestCPUFunctionalCorrectness(t *testing.T) {
	cfg := config.TestScale()
	prog, inputs := streamProg(t, 8, isa.OpAdd)
	m := New(&cfg, CPU)
	res, mem, err := m.Run(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("CPU run must take time")
	}
	// Independent check of one output page.
	want := make([]byte, cfg.SSD.PageSize)
	if err := cores.Apply(isa.OpAdd, want, [][]byte{inputs[0], inputs[1]}, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mem[isa.PageID(8)], want) {
		t.Fatal("CPU functional result wrong")
	}
}

func TestGPUFasterThanCPUOnParallelCompute(t *testing.T) {
	cfg := config.TestScale()
	prog, inputs := streamProg(t, 8, isa.OpMul)
	cpuRes, _, err := New(&cfg, CPU).Run(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	gpuRes, _, err := New(&cfg, GPU).Run(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if gpuRes.Elapsed > cpuRes.Elapsed {
		t.Fatalf("GPU (%v) should not lose to CPU (%v) on data-parallel mul", gpuRes.Elapsed, cpuRes.Elapsed)
	}
}

func TestStreamingIsPCIeBound(t *testing.T) {
	// With a cold cache and no reuse, every operand crosses PCIe; the
	// movement share of the runtime must dominate compute on the GPU.
	cfg := config.TestScale()
	prog, inputs := streamProg(t, 16, isa.OpXor)
	res, _, err := New(&cfg, GPU).Run(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if res.PCIeBytes == 0 {
		t.Fatal("cold-cache run must move data over PCIe")
	}
	if res.MovementEnergy <= 0 || res.ComputeEnergy <= 0 {
		t.Fatal("both energy components must be recorded")
	}
}

func TestCacheReuseReducesPCIeTraffic(t *testing.T) {
	cfg := config.TestScale()
	ps := cfg.SSD.PageSize
	// 3 input pages reused 32 times: with the destination they fit the
	// minimum cache, so only the first touches miss.
	inputs := map[isa.PageID][]byte{}
	var ids []isa.PageID
	for i := 0; i < 3; i++ {
		inputs[isa.PageID(i)] = make([]byte, ps)
		ids = append(ids, isa.PageID(i))
	}
	var insts []isa.Inst
	for i := 0; i < 32; i++ {
		insts = append(insts, isa.Inst{ID: i, Op: isa.OpAdd, Dst: 3,
			Srcs: []isa.PageID{isa.PageID(i % 3), isa.PageID((i + 1) % 3)},
			Elem: 1, Lanes: ps})
	}
	prog := &isa.Program{Name: "reuse", Pages: 16, Insts: insts, InputPages: ids}
	prog.InferDeps()
	reuse, _, err := New(&cfg, CPU).Run(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	stream, inputsS := streamProg(t, 32, isa.OpAdd)
	streamRes, _, err := New(&cfg, CPU).Run(stream, inputsS)
	if err != nil {
		t.Fatal(err)
	}
	if reuse.PCIeBytes >= streamRes.PCIeBytes {
		t.Fatalf("high-reuse PCIe traffic (%d) should undercut streaming (%d)",
			reuse.PCIeBytes, streamRes.PCIeBytes)
	}
}

func TestScalarRegions(t *testing.T) {
	cfg := config.TestScale()
	prog := &isa.Program{Name: "scalar", Pages: 1, Insts: []isa.Inst{
		{ID: 0, Op: isa.OpScalar, Dst: isa.NoPage, ScalarCycles: 3200},
	}}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	cpuRes, _, err := New(&cfg, CPU).Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 3200 cycles at 3.2 GHz = 1 µs.
	if cpuRes.Elapsed != sim.Microsecond {
		t.Fatalf("CPU scalar = %v, want 1µs", cpuRes.Elapsed)
	}
	gpuRes, _, err := New(&cfg, GPU).Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gpuRes.Elapsed <= cpuRes.Elapsed {
		t.Fatal("GPU must pay a launch penalty on control regions")
	}
}

func TestKindString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Fatal("kind names wrong")
	}
}

func TestGPUBenefitsFromHBMOnResidentData(t *testing.T) {
	// With data resident (high reuse, small set), the GPU's HBM term is
	// far below the CPU's host-DRAM term, so the GPU pulls ahead even on
	// bandwidth-bound single-cycle ops.
	cfg := config.TestScale()
	ps := cfg.SSD.PageSize
	inputs := map[isa.PageID][]byte{0: make([]byte, ps), 1: make([]byte, ps)}
	var insts []isa.Inst
	for i := 0; i < 64; i++ {
		insts = append(insts, isa.Inst{ID: i, Op: isa.OpAdd, Dst: 2,
			Srcs: []isa.PageID{0, 1}, Elem: 1, Lanes: ps})
	}
	prog := &isa.Program{Name: "hot", Pages: 3, Insts: insts, InputPages: []isa.PageID{0, 1}}
	prog.InferDeps()
	cpu, _, err := New(&cfg, CPU).Run(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	gpu, _, err := New(&cfg, GPU).Run(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Elapsed >= cpu.Elapsed {
		t.Fatalf("GPU on resident data (%v) should beat CPU (%v): HBM vs DDR4", gpu.Elapsed, cpu.Elapsed)
	}
}

func TestHostEnergyIsPowerTimesElapsed(t *testing.T) {
	cfg := config.TestScale()
	prog, inputs := streamProg(t, 8, isa.OpAdd)
	res, _, err := New(&cfg, CPU).Run(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Elapsed.Seconds() * cfg.Host.CPUPowerWatts
	if diff := res.ComputeEnergy - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("CPU compute energy %v, want power x elapsed = %v", res.ComputeEnergy, want)
	}
}
