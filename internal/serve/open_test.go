package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"conduit/internal/trace"
)

// gateRunner blocks every execution until the gate opens, and counts how
// many executions ever started — the probe that proves shed and expired
// requests never reach the backend.
type gateRunner struct {
	gate    chan struct{}
	started chan string // receives the workload of each execution as it starts
	execs   int64
}

func newGateRunner() *gateRunner {
	return &gateRunner{gate: make(chan struct{}), started: make(chan string, 64)}
}

func (g *gateRunner) RunCell(workload, policy string, _ *trace.Span) (Outcome, error) {
	atomic.AddInt64(&g.execs, 1)
	g.started <- workload
	<-g.gate
	return Outcome{Value: workload + "/" + policy}, nil
}

// TestSubmitServesOpenLoop: Submit admits without blocking, responses
// arrive on the returned channel, and accounting matches Do's.
func TestSubmitServesOpenLoop(t *testing.T) {
	r := &countingRunner{}
	e := NewEngine(r, Config{Concurrency: 4, QueueDepth: 64})
	defer e.Drain()

	const n = 20
	chans := make([]<-chan *Response, 0, n)
	for i := 0; i < n; i++ {
		c, err := e.Submit(Request{Tenant: "open", Workload: fmt.Sprint("w", i), Policy: "p"})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, c)
	}
	for i, c := range chans {
		resp := <-c
		if resp.Err != nil {
			t.Fatalf("response %d: %v", i, resp.Err)
		}
		if want := fmt.Sprintf("w%d/p", i); resp.Outcome.Value != want {
			t.Fatalf("response %d: got %v, want %v", i, resp.Outcome.Value, want)
		}
		if resp.Request.Workload != fmt.Sprint("w", i) {
			t.Fatalf("response %d lost its request", i)
		}
	}
	total := e.Total()
	if total.Requests != n || total.Shed != 0 || total.Errors != 0 || total.Attained != n {
		t.Fatalf("totals after open-loop run: %+v", total)
	}
	if total.P50 <= 0 || total.Max < total.P50 {
		t.Fatalf("histogram percentiles malformed: %+v", total)
	}
}

// TestSubmitShedsAtFullQueueAndShedNeverExecutes is the overload
// contract: with one busy worker and a one-slot queue, further Submits
// are rejected with ErrOverloaded, the backend never sees them, and they
// are accounted as shed — not as requests.
func TestSubmitShedsAtFullQueueAndShedNeverExecutes(t *testing.T) {
	g := newGateRunner()
	e := NewEngine(g, Config{Concurrency: 1, QueueDepth: 1})

	// First request occupies the worker (wait until it really started).
	c1, err := e.Submit(Request{Tenant: "t", Workload: "busy", Policy: "p"})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	// Second request fills the single queue slot.
	c2, err := e.Submit(Request{Tenant: "t", Workload: "queued", Policy: "p"})
	if err != nil {
		t.Fatal(err)
	}
	// Everything beyond that must shed.
	const floods = 5
	for i := 0; i < floods; i++ {
		if _, err := e.Submit(Request{Tenant: "t", Workload: fmt.Sprint("flood", i), Policy: "p"}); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("flood %d: err=%v, want ErrOverloaded", i, err)
		}
	}
	close(g.gate)
	if resp := <-c1; resp.Err != nil {
		t.Fatalf("busy request: %v", resp.Err)
	}
	if resp := <-c2; resp.Err != nil {
		t.Fatalf("queued request: %v", resp.Err)
	}
	e.Drain()

	if n := atomic.LoadInt64(&g.execs); n != 2 {
		t.Fatalf("backend executed %d requests, want 2 (shed requests must never execute)", n)
	}
	total := e.Total()
	if total.Shed != floods || total.Requests != 2 || total.Errors != 0 {
		t.Fatalf("shed accounting: %+v", total)
	}
	// Attainment charges shed against offered load: 2 served of 7 offered.
	if got, want := total.Attainment(), 2.0/7.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("attainment %v, want %v", got, want)
	}
}

// TestDeadlineExpiresInQueueWithoutExecuting: requests whose budget is
// gone by dispatch fail with ErrDeadlineExceeded and never invoke the
// backend — and therefore can never consume a pooled fork.
func TestDeadlineExpiresInQueueWithoutExecuting(t *testing.T) {
	g := newGateRunner()
	e := NewEngine(g, Config{Concurrency: 1, QueueDepth: 8})

	c1, err := e.Submit(Request{Tenant: "t", Workload: "busy", Policy: "p"})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	// Queued behind the busy worker with a 1ns budget: expired long
	// before dispatch.
	const doomed = 4
	chans := make([]<-chan *Response, 0, doomed)
	for i := 0; i < doomed; i++ {
		c, err := e.Submit(Request{Tenant: "t", Workload: "doomed", Policy: "p", Deadline: time.Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, c)
	}
	close(g.gate)
	if resp := <-c1; resp.Err != nil {
		t.Fatal(resp.Err)
	}
	for i, c := range chans {
		resp := <-c
		if !errors.Is(resp.Err, ErrDeadlineExceeded) {
			t.Fatalf("doomed %d: err=%v, want ErrDeadlineExceeded", i, resp.Err)
		}
	}
	e.Drain()
	if n := atomic.LoadInt64(&g.execs); n != 1 {
		t.Fatalf("backend executed %d requests, want 1 (expired requests must never execute)", n)
	}
	total := e.Total()
	if total.Expired != doomed || total.Errors != 0 || total.Requests != 1+doomed {
		t.Fatalf("expiry accounting: %+v", total)
	}
}

// TestSLOAttainmentSplitsOnDeadline: a served request attains its SLO iff
// it finishes within its deadline; requests without a deadline always
// attain.
func TestSLOAttainmentSplitsOnDeadline(t *testing.T) {
	r := &countingRunner{delay: 10 * time.Millisecond}
	e := NewEngine(r, Config{Concurrency: 1})
	defer e.Drain()

	cases := []struct {
		deadline time.Duration
		attained bool
	}{
		{0, true},                     // no SLO: counts as attained
		{time.Second, true},           // generous budget
		{5 * time.Millisecond, false}, // tighter than the 10ms backend
		{10 * time.Second, true},      // generous again
	}
	for i, c := range cases {
		resp, err := e.Do(Request{Tenant: "t", Workload: fmt.Sprint("w", i), Policy: "p", Deadline: c.deadline})
		// A missed SLO on a *served* request is not an error — the
		// response arrived, late.
		if err != nil && !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("case %d: %v", i, err)
		}
		if err == nil && c.deadline > 0 && resp.Latency > c.deadline && c.attained {
			t.Fatalf("case %d: expected attainment but latency %v > deadline %v", i, resp.Latency, c.deadline)
		}
	}
	total := e.Total()
	// Cases 0, 1, 3 attain; case 2 either misses (served late) or expired
	// in queue — both cost attainment.
	if total.Attained != 3 {
		t.Fatalf("attained %d of %d, want 3 (totals %+v)", total.Attained, total.Requests, total)
	}
	rep := e.Report().String()
	for _, col := range []string{"shed", "expired", "slo_pct", "p50_ms", "p999_ms"} {
		if !strings.Contains(rep, col) {
			t.Fatalf("report missing column %q:\n%s", col, rep)
		}
	}
}

// TestSubmitAfterDrain: open-loop admission closes with ErrDraining, and
// a draining engine still delivers every admitted response.
func TestSubmitAfterDrain(t *testing.T) {
	r := &countingRunner{}
	e := NewEngine(r, Config{Concurrency: 2})
	c, err := e.Submit(Request{Tenant: "t", Workload: "w", Policy: "p"})
	if err != nil {
		t.Fatal(err)
	}
	e.Drain()
	select {
	case resp := <-c:
		if resp.Err != nil {
			t.Fatalf("admitted request failed across drain: %v", resp.Err)
		}
	default:
		t.Fatal("drained engine did not deliver the admitted response")
	}
	if _, err := e.Submit(Request{Tenant: "t", Workload: "w", Policy: "p"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Drain: err=%v, want ErrDraining", err)
	}
}
