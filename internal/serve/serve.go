package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"conduit/internal/histo"
	"conduit/internal/metrics"
	"conduit/internal/sim"
	"conduit/internal/stats"
	"conduit/internal/trace"
)

// Request names one offload execution issued on behalf of a tenant.
type Request struct {
	// Tenant is the accounting principal the request is billed to.
	Tenant string
	// Workload names a registered application.
	Workload string
	// Policy is the execution policy (see conduit.Policies and
	// conduit.AblationPolicies).
	Policy string
	// Deadline is the request's latency budget measured from submission
	// (its SLO); 0 means none. A request still queued when its budget is
	// exhausted is dropped at dispatch with ErrDeadlineExceeded — it never
	// reaches the backend, so an expired request never consumes a pooled
	// fork. A served request that finishes within Deadline counts toward
	// the tenant's SLO attainment.
	Deadline time.Duration
	// Trace is the issuer's trace context for a request that arrived
	// over the wire: when Sampled is set the engine records spans into
	// the issuer's trace instead of consulting its own sampler.
	Trace trace.Ctx
}

// key is the batching identity: requests with equal keys compute the same
// deterministic result and may share one execution.
func (r Request) key() string { return r.Workload + "|" + r.Policy }

// Outcome is the backend's product for one executed (workload, policy)
// cell. It carries the simulated cost alongside the opaque result so the
// engine can keep energy/latency accounts without depending on the
// backend's result type.
type Outcome struct {
	// Value is the backend result (the conduit facade stores a
	// *conduit.RunResult here).
	Value interface{}
	// Elapsed is the simulated execution time of the cell, including
	// any simulated-time retry backoff the backend charged.
	Elapsed sim.Time
	// EnergyJ is the cell's total consumed energy in joules.
	EnergyJ float64
	// Recovery carries the fault-tolerance accounting of the execution
	// (zero for a clean first-attempt run on a fault-free backend).
	Recovery Recovery
}

// Recovery is the fault-tolerance accounting of one served execution:
// how much extra work the retry/hedge/breaker machinery spent to
// produce the response. A zero Recovery is a clean first-try success.
type Recovery struct {
	// Attempts counts executed run attempts, across every shard
	// (1 per shard = clean).
	Attempts int64
	// Retries counts re-attempts after a failed attempt.
	Retries int64
	// Hedges counts duplicate dispatches issued against slow shards;
	// HedgeWins counts those whose duplicate beat the primary.
	Hedges    int64
	HedgeWins int64
	// Fallbacks counts shard executions served by the degraded
	// fallback policy because a circuit breaker was open.
	Fallbacks int64
	// Injected counts faults the chaos layer injected into this
	// execution.
	Injected int64
	// BackoffSim is the simulated-time retry backoff charged into the
	// response's Elapsed.
	BackoffSim sim.Time
}

// Merge accumulates o into r; backends assemble a request's Recovery
// from per-shard pieces with it, and the accountant folds per-response
// recovery into tenant totals.
func (r *Recovery) Merge(o Recovery) {
	r.Attempts += o.Attempts
	r.Retries += o.Retries
	r.Hedges += o.Hedges
	r.HedgeWins += o.HedgeWins
	r.Fallbacks += o.Fallbacks
	r.Injected += o.Injected
	r.BackoffSim += o.BackoffSim
}

// Runner executes one (workload, policy) cell. Implementations must be
// safe for concurrent use; the engine calls RunCell from many workers.
// sp is the request's execution span — nil unless the request is
// sampled — and backends annotate it with child spans and events
// (shard scatter, pool activity, recovery work) on the request's
// simulated timeline.
type Runner interface {
	RunCell(workload, policy string, sp *trace.Span) (Outcome, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(workload, policy string, sp *trace.Span) (Outcome, error)

// RunCell implements Runner.
func (f RunnerFunc) RunCell(workload, policy string, sp *trace.Span) (Outcome, error) {
	return f(workload, policy, sp)
}

// Config tunes an Engine.
type Config struct {
	// Concurrency bounds the number of simultaneously executing
	// requests; < 1 selects GOMAXPROCS.
	Concurrency int
	// QueueDepth is the admission-queue capacity; < 1 selects
	// 4 x Concurrency. When the queue is full, Do blocks for space
	// (closed-loop admission) rather than rejecting.
	QueueDepth int
	// Coalesce shares one backend execution among requests for the same
	// (workload, policy) that are in flight at the same time. Because the
	// backend is deterministic this is observationally identical to a
	// private execution per request.
	Coalesce bool
	// Memoize caches cell results for the lifetime of the engine, so at
	// most one execution per distinct (workload, policy) ever runs. It
	// subsumes Coalesce.
	Memoize bool
	// Tracer, when non-nil, records per-request spans. Requests are
	// sampled by admission sequence (Tracer's SampleEvery) or by an
	// incoming wire trace context; with a nil Tracer every tracing site
	// degenerates to a nil check.
	Tracer *trace.Tracer
}

// Response is the served result of one request.
type Response struct {
	Request Request
	Outcome Outcome
	// Err is the backend error, if the cell failed.
	Err error
	// Queued is the wall-clock time spent waiting in the admission queue.
	Queued time.Duration
	// Latency is the wall-clock time from submission to completion.
	Latency time.Duration
	// Shared marks a response served by an execution (or memoized result)
	// that another request started.
	Shared bool
	// Trace is the request's recorded trace; nil unless the request was
	// sampled.
	Trace *trace.Trace
}

// ErrDraining is returned by Do and Submit once Drain has begun.
var ErrDraining = errors.New("serve: engine is draining")

// ErrOverloaded is returned by Submit when the admission queue is full:
// the request is shed at the door — never queued, never executed — which
// is what keeps an open-loop overload from growing the queue (and every
// queued request's latency) without bound.
var ErrOverloaded = errors.New("serve: overloaded, admission queue full")

// ErrDeadlineExceeded is the Response.Err of a request whose Deadline
// passed while it waited in the admission queue. The backend is never
// invoked for such a request.
var ErrDeadlineExceeded = errors.New("serve: deadline exceeded before dispatch")

// Engine multiplexes concurrent requests over a bounded worker set with
// optional same-cell batching and per-tenant accounting. All methods are
// safe for concurrent use.
type Engine struct {
	cfg    Config
	runner Runner

	queue   chan *pending
	workers sync.WaitGroup

	admit   sync.Mutex // guards closed and seq; admitWG.Add races with Drain
	closed  bool
	seq     uint64         // 1-based admission sequence; drives trace sampling
	admitWG sync.WaitGroup // Do calls between admission and completion

	flight FlightGroup

	acct    sync.Mutex
	tenants map[string]*tenantAccount
	all     tenantAccount
}

type pending struct {
	req       Request
	submitted time.Time
	// seq is the request's 1-based admission sequence, stamped under the
	// admission lock. Sheds never consume a sequence number, so the
	// sampled set of an open-loop schedule does not depend on which
	// submissions happened to shed.
	seq  uint64
	resp Response
	done chan struct{}
	// root is the request's root span; nil unless sampled.
	root *trace.Span
	// notify, when non-nil (Submit), receives the finished response; it
	// is buffered so completion never blocks on a slow collector.
	notify chan *Response
}

// tenantAccount attributes served work to a tenant. Simulated time and
// energy are billed per response — a shared (coalesced/memoized) response
// bills the full cell cost to every tenant that received it, so the
// columns read as attributed demand, not device-side consumption; the
// shared count times the per-cell cost is the saving batching bought.
//
// Wall-clock latency lives in a bounded log-linear histogram, not a
// Reservoir: the open-loop path produces an unbounded sample stream, and
// the histogram admits it in O(1) space with a fixed relative error
// (histo.RelativeError) while staying exactly mergeable. Reservoirs
// remain authoritative for simulated-time experiment statistics, where
// sample counts are bounded and figures want exact percentiles.
type tenantAccount struct {
	requests int64 // completed responses (served, failed, or expired)
	errors   int64 // backend failures
	shed     int64 // rejected at admission (ErrOverloaded); not in requests
	expired  int64 // dropped at dispatch (ErrDeadlineExceeded)
	shared   int64
	attained int64            // served within their deadline (or with none)
	recovery Recovery         // fault-tolerance work behind served responses
	wall     *histo.Histogram // wall-clock latency of completed responses, ns
	sim      sim.Time         // simulated time attributed to the tenant
	energyJ  float64          // simulated energy attributed to the tenant
}

func newTenantAccount() *tenantAccount {
	return &tenantAccount{wall: histo.New()}
}

// NewEngine starts an engine with cfg.Concurrency workers draining the
// admission queue. Callers must Drain it when done.
func NewEngine(r Runner, cfg Config) *Engine {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 4 * cfg.Concurrency
	}
	e := &Engine{
		cfg:     cfg,
		runner:  r,
		queue:   make(chan *pending, cfg.QueueDepth),
		tenants: make(map[string]*tenantAccount),
	}
	e.all.wall = histo.New()
	for i := 0; i < cfg.Concurrency; i++ {
		e.workers.Add(1)
		go func() {
			defer e.workers.Done()
			for p := range e.queue {
				e.serveOne(p)
			}
		}()
	}
	return e
}

// Do submits req and blocks until it is served — the closed-loop client
// primitive. The returned error is ErrDraining if admission is closed,
// otherwise it equals Response.Err (the response carries timing and
// accounting detail either way).
func (e *Engine) Do(req Request) (*Response, error) {
	p := &pending{req: req, submitted: time.Now(), done: make(chan struct{})}
	e.admit.Lock()
	if e.closed {
		e.admit.Unlock()
		return nil, ErrDraining
	}
	e.seq++
	p.seq = e.seq
	e.admitWG.Add(1)
	e.admit.Unlock()
	defer e.admitWG.Done()
	e.queue <- p
	<-p.done
	return &p.resp, p.resp.Err
}

// Submit admits req without blocking — the open-loop client primitive: a
// load generator paces submissions off a schedule, not off completions,
// so admission must shed instead of exerting back-pressure. If the
// admission queue is full the request is rejected with ErrOverloaded
// (counted against the tenant as shed; the backend never sees it). After
// Drain the error is ErrDraining. Otherwise Submit returns a buffered
// channel that delivers the finished Response; an admitted request's
// response is always delivered, even if its deadline expires in the
// queue (Response.Err is then ErrDeadlineExceeded).
func (e *Engine) Submit(req Request) (<-chan *Response, error) {
	p := &pending{
		req:       req,
		submitted: time.Now(),
		done:      make(chan struct{}),
		notify:    make(chan *Response, 1),
	}
	e.admit.Lock()
	if e.closed {
		e.admit.Unlock()
		return nil, ErrDraining
	}
	// The try-send happens under the admission lock, so it is ordered
	// against Drain's closed=true (same lock) and therefore can never
	// race close(e.queue). The sequence number is committed only on
	// admission, so a shed never burns one.
	p.seq = e.seq + 1
	select {
	case e.queue <- p:
		e.seq++
		e.admit.Unlock()
		return p.notify, nil
	default:
		e.admit.Unlock()
		e.accountShed(req.Tenant)
		return nil, ErrOverloaded
	}
}

// serveOne executes one admitted request on the calling worker. A
// panicking backend is contained: the request fails with an error instead
// of crashing the serving process, and the worker keeps serving.
//
// Under Coalesce/Memoize a joined request does not hold its worker while
// the in-flight execution finishes — the wait moves to a goroutine and
// the slot immediately serves other queued cells, so batching frees
// capacity instead of head-of-line blocking distinct cells behind a hot
// one.
func (e *Engine) serveOne(p *pending) {
	start := time.Now()
	p.resp.Queued = start.Sub(p.submitted)
	e.startTrace(p)
	// Deadline gate: a request whose budget expired in the queue is
	// dropped here, before the backend — and in particular before the
	// coalescing flight group — so an expired request can neither consume
	// a pooled fork nor lead an execution other requests join.
	if p.req.Deadline > 0 && p.resp.Queued > p.req.Deadline {
		p.root.Event("deadline_expired", 0)
		e.finish(p, nil, ErrDeadlineExceeded, false)
		return
	}
	exec := func() (v interface{}, err error) {
		run := p.root.Child("serve.run", "", 0)
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: %s under %s panicked: %v",
					p.req.Workload, p.req.Policy, r)
			}
		}()
		out, err := e.runner.RunCell(p.req.Workload, p.req.Policy, run)
		run.End(int64(out.Elapsed))
		// The outcome travels even with a non-nil error: a failed request
		// may still carry recovery accounting (retries attempted, backoff
		// charged) that the tenant's books must not lose.
		return out, err
	}
	if !e.cfg.Memoize && !e.cfg.Coalesce {
		v, err := exec()
		e.finish(p, v, err, false)
		return
	}
	key := p.req.key()
	c, leader := e.flight.begin(key)
	if !leader {
		select {
		case <-c.done:
			// Already complete (memoized hit): serve inline, no goroutine.
			e.finish(p, c.val, c.err, true)
		default:
			go func() {
				<-c.done
				e.finish(p, c.val, c.err, true)
			}()
		}
		return
	}
	v, err := exec()
	e.flight.complete(key, c, v, err, !e.cfg.Memoize)
	e.finish(p, v, err, false)
}

// startTrace decides whether the admitted request is sampled and, if
// so, opens its trace and root span. A wire context with the Sampled
// bit continues the issuer's trace under the issuer's trace ID; a
// locally sampled request starts a fresh trace whose ID is its
// admission sequence — deterministic for a given schedule.
func (e *Engine) startTrace(p *pending) {
	t := e.cfg.Tracer
	if t == nil {
		return
	}
	var tr *trace.Trace
	switch {
	case p.req.Trace.Sampled && p.req.Trace.ID != 0:
		tr = t.Start(p.req.Trace.ID)
	case t.ShouldSample(p.seq):
		tr = t.Start(p.seq)
	default:
		return
	}
	p.resp.Trace = tr
	p.root = tr.Root("serve.request", p.req.Trace.Parent, 0)
	p.root.SetAttr("tenant", p.req.Tenant)
	p.root.SetAttr("workload", p.req.Workload)
	p.root.SetAttr("policy", p.req.Policy)
}

// finish completes a request: record the outcome, account it, release
// the blocked Do, and deliver the response to an open-loop submitter.
func (e *Engine) finish(p *pending, v interface{}, err error, shared bool) {
	if o, ok := v.(Outcome); ok {
		p.resp.Outcome = o
	}
	p.resp.Request = p.req
	p.resp.Err = err
	p.resp.Shared = shared
	p.resp.Latency = time.Since(p.submitted)
	if shared {
		p.root.Event("coalesced", 0)
	}
	p.root.End(int64(p.resp.Outcome.Elapsed))
	e.account(&p.resp, p.req.Tenant)
	close(p.done)
	if p.notify != nil {
		p.notify <- &p.resp
	}
}

// tenant returns (creating if needed) the account for tenant; the caller
// holds e.acct.
func (e *Engine) tenant(tenant string) *tenantAccount {
	t := e.tenants[tenant]
	if t == nil {
		t = newTenantAccount()
		e.tenants[tenant] = t
	}
	return t
}

// accountShed bills an admission rejection: the request never completed,
// so it joins no latency sample and no request count — only the shed
// tally, which SLO attainment treats as an offered-but-missed request.
func (e *Engine) accountShed(tenant string) {
	e.acct.Lock()
	defer e.acct.Unlock()
	e.tenant(tenant).shed++
	e.all.shed++
}

func (e *Engine) account(r *Response, tenant string) {
	e.acct.Lock()
	defer e.acct.Unlock()
	t := e.tenant(tenant)
	for _, a := range [...]*tenantAccount{t, &e.all} {
		a.requests++
		a.wall.Add(r.Latency.Nanoseconds())
		// Recovery accounting lands regardless of the final verdict: a
		// request that exhausted its retries still attempted them.
		a.recovery.Merge(r.Outcome.Recovery)
		switch {
		case errors.Is(r.Err, ErrDeadlineExceeded):
			a.expired++
			continue
		case r.Err != nil:
			a.errors++
			continue
		}
		if r.Shared {
			a.shared++
		}
		if r.Request.Deadline == 0 || r.Latency <= r.Request.Deadline {
			a.attained++
		}
		a.sim += r.Outcome.Elapsed
		a.energyJ += r.Outcome.EnergyJ
	}
}

// Drain closes admission, waits for every in-flight request to be served,
// and stops the workers. It is idempotent; after it returns no request is
// outstanding and Do returns ErrDraining.
func (e *Engine) Drain() {
	e.admit.Lock()
	already := e.closed
	e.closed = true
	e.admit.Unlock()
	if !already {
		e.admitWG.Wait()
		close(e.queue)
	}
	e.workers.Wait()
}

// TenantSnapshot is one tenant's accounting totals (see Snapshot). Sim
// and EnergyJ are attributed demand: shared responses bill the full cell
// cost to each recipient. Latency percentiles come from the tenant's
// bounded histogram (relative error histo.RelativeError) over completed
// responses; shed requests never completed and appear only in Shed.
type TenantSnapshot struct {
	Tenant   string
	Requests int64 // completed responses
	Errors   int64
	Shed     int64 // rejected at admission (ErrOverloaded)
	Expired  int64 // dropped at dispatch (ErrDeadlineExceeded)
	Shared   int64 // responses served by a coalesced/memoized execution
	Attained int64 // served within their deadline (or with none set)
	// Recovery aggregates the fault-tolerance work (retries, hedges,
	// breaker fallbacks, injected faults, charged backoff) behind the
	// tenant's served responses.
	Recovery Recovery
	P50      time.Duration
	P99      time.Duration
	P999     time.Duration
	Max      time.Duration
	Sim      sim.Time
	EnergyJ  float64
}

// Attainment is the tenant's SLO attainment over *offered* load: the
// fraction of all admission attempts (completed + shed) that were served
// within their deadline. Shedding therefore costs attainment — exactly
// the accounting that makes an overloaded open-loop run legible.
func (s TenantSnapshot) Attainment() float64 {
	offered := s.Requests + s.Shed
	if offered == 0 {
		return 0
	}
	return float64(s.Attained) / float64(offered)
}

// snapshotOf renders one account; the caller holds e.acct.
func snapshotOf(name string, t *tenantAccount) TenantSnapshot {
	return TenantSnapshot{
		Tenant:   name,
		Requests: t.requests,
		Errors:   t.errors,
		Shed:     t.shed,
		Expired:  t.expired,
		Shared:   t.shared,
		Attained: t.attained,
		Recovery: t.recovery,
		P50:      time.Duration(t.wall.P50()),
		P99:      time.Duration(t.wall.P99()),
		P999:     time.Duration(t.wall.P999()),
		Max:      time.Duration(t.wall.Max()),
		Sim:      t.sim,
		EnergyJ:  t.energyJ,
	}
}

// Snapshot returns per-tenant accounting totals sorted by tenant name.
func (e *Engine) Snapshot() []TenantSnapshot {
	e.acct.Lock()
	defer e.acct.Unlock()
	out := make([]TenantSnapshot, 0, len(e.tenants))
	for name, t := range e.tenants {
		out = append(out, snapshotOf(name, t))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Total returns the all-tenants aggregate account.
func (e *Engine) Total() TenantSnapshot {
	e.acct.Lock()
	defer e.acct.Unlock()
	return snapshotOf("TOTAL", &e.all)
}

// Wall returns an independent copy of the all-tenants wall-clock latency
// histogram (completed responses, nanosecond samples). Copies taken from
// several engines — or from per-collector histograms a load generator
// keeps — merge exactly with Histogram.Merge.
func (e *Engine) Wall() *histo.Histogram {
	e.acct.Lock()
	defer e.acct.Unlock()
	return e.all.wall.Clone()
}

// Report renders the per-tenant service metrics as a table: request,
// error, shed, and deadline-expiry counts, how many responses rode on a
// shared execution, the recovery work behind served responses (retries,
// hedges, breaker fallbacks), SLO attainment over offered load, wall-clock latency
// percentiles from the bounded histogram, and the simulated time/energy
// attributed to the tenant (shared responses bill the full cell cost to
// each recipient — see tenantAccount). Tenants sort lexically; a TOTAL
// row closes the table.
func (e *Engine) Report() *stats.Table {
	e.acct.Lock()
	defer e.acct.Unlock()
	names := make([]string, 0, len(e.tenants))
	for name := range e.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	t := stats.NewTable("conduit-serve: per-tenant service report",
		"tenant", "requests", "errors", "shed", "expired", "shared",
		"retries", "hedges", "fallback", "slo_pct",
		"p50_ms", "p99_ms", "p999_ms", "max_ms", "sim_ms", "energy_J")
	row := func(name string, a *tenantAccount) {
		s := snapshotOf(name, a)
		t.AddRowf(name, a.requests, a.errors, a.shed, a.expired, a.shared,
			a.recovery.Retries, a.recovery.Hedges, a.recovery.Fallbacks,
			fmt.Sprintf("%.1f", 100*s.Attainment()),
			float64(s.P50)/1e6,
			float64(s.P99)/1e6,
			float64(s.P999)/1e6,
			float64(s.Max)/1e6,
			float64(a.sim)/1e6,
			fmt.Sprintf("%.3g", a.energyJ))
	}
	for _, name := range names {
		row(name, e.tenants[name])
	}
	row("TOTAL", &e.all)
	return t
}

// FillMetrics exposes the engine's accounting as named, labeled series
// in reg: per-tenant counters for the request ledger and recovery work,
// a per-tenant energy gauge, and wall-clock latency histograms (one per
// tenant plus the all-tenants aggregate). The registry is filled at
// scrape time from the same books Report renders, so the hot path pays
// nothing for the metrics surface.
func (e *Engine) FillMetrics(reg *metrics.Registry) {
	e.acct.Lock()
	defer e.acct.Unlock()
	for name, t := range e.tenants {
		lbl := metrics.Label{Key: "tenant", Value: name}
		reg.Count("conduit_serve_requests_total", t.requests, lbl)
		reg.Count("conduit_serve_errors_total", t.errors, lbl)
		reg.Count("conduit_serve_shed_total", t.shed, lbl)
		reg.Count("conduit_serve_expired_total", t.expired, lbl)
		reg.Count("conduit_serve_shared_total", t.shared, lbl)
		reg.Count("conduit_serve_attained_total", t.attained, lbl)
		reg.Count("conduit_serve_retries_total", t.recovery.Retries, lbl)
		reg.Count("conduit_serve_hedges_total", t.recovery.Hedges, lbl)
		reg.Count("conduit_serve_fallbacks_total", t.recovery.Fallbacks, lbl)
		reg.Count("conduit_serve_faults_injected_total", t.recovery.Injected, lbl)
		reg.Count("conduit_serve_sim_ns_total", int64(t.sim), lbl)
		reg.SetGauge("conduit_serve_energy_joules", t.energyJ, lbl)
		reg.MergeHist("conduit_serve_latency_wall_ns", t.wall, lbl)
	}
	reg.MergeHist("conduit_serve_latency_wall_ns", e.all.wall)
}
