package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"conduit/internal/sim"
	"conduit/internal/stats"
)

// Request names one offload execution issued on behalf of a tenant.
type Request struct {
	// Tenant is the accounting principal the request is billed to.
	Tenant string
	// Workload names a registered application.
	Workload string
	// Policy is the execution policy (see conduit.Policies and
	// conduit.AblationPolicies).
	Policy string
}

// key is the batching identity: requests with equal keys compute the same
// deterministic result and may share one execution.
func (r Request) key() string { return r.Workload + "|" + r.Policy }

// Outcome is the backend's product for one executed (workload, policy)
// cell. It carries the simulated cost alongside the opaque result so the
// engine can keep energy/latency accounts without depending on the
// backend's result type.
type Outcome struct {
	// Value is the backend result (the conduit facade stores a
	// *conduit.RunResult here).
	Value interface{}
	// Elapsed is the simulated execution time of the cell.
	Elapsed sim.Time
	// EnergyJ is the cell's total consumed energy in joules.
	EnergyJ float64
}

// Runner executes one (workload, policy) cell. Implementations must be
// safe for concurrent use; the engine calls RunCell from many workers.
type Runner interface {
	RunCell(workload, policy string) (Outcome, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(workload, policy string) (Outcome, error)

// RunCell implements Runner.
func (f RunnerFunc) RunCell(workload, policy string) (Outcome, error) {
	return f(workload, policy)
}

// Config tunes an Engine.
type Config struct {
	// Concurrency bounds the number of simultaneously executing
	// requests; < 1 selects GOMAXPROCS.
	Concurrency int
	// QueueDepth is the admission-queue capacity; < 1 selects
	// 4 x Concurrency. When the queue is full, Do blocks for space
	// (closed-loop admission) rather than rejecting.
	QueueDepth int
	// Coalesce shares one backend execution among requests for the same
	// (workload, policy) that are in flight at the same time. Because the
	// backend is deterministic this is observationally identical to a
	// private execution per request.
	Coalesce bool
	// Memoize caches cell results for the lifetime of the engine, so at
	// most one execution per distinct (workload, policy) ever runs. It
	// subsumes Coalesce.
	Memoize bool
}

// Response is the served result of one request.
type Response struct {
	Request Request
	Outcome Outcome
	// Err is the backend error, if the cell failed.
	Err error
	// Queued is the wall-clock time spent waiting in the admission queue.
	Queued time.Duration
	// Latency is the wall-clock time from submission to completion.
	Latency time.Duration
	// Shared marks a response served by an execution (or memoized result)
	// that another request started.
	Shared bool
}

// ErrDraining is returned by Do once Drain has begun.
var ErrDraining = errors.New("serve: engine is draining")

// Engine multiplexes concurrent requests over a bounded worker set with
// optional same-cell batching and per-tenant accounting. All methods are
// safe for concurrent use.
type Engine struct {
	cfg    Config
	runner Runner

	queue   chan *pending
	workers sync.WaitGroup

	admit   sync.Mutex // guards closed; admitWG.Add races with Drain
	closed  bool
	admitWG sync.WaitGroup // Do calls between admission and completion

	flight FlightGroup

	acct    sync.Mutex
	tenants map[string]*tenantAccount
	all     tenantAccount
}

type pending struct {
	req       Request
	submitted time.Time
	resp      Response
	done      chan struct{}
}

// tenantAccount attributes served work to a tenant. Simulated time and
// energy are billed per response — a shared (coalesced/memoized) response
// bills the full cell cost to every tenant that received it, so the
// columns read as attributed demand, not device-side consumption; the
// shared count times the per-cell cost is the saving batching bought.
type tenantAccount struct {
	requests int64
	errors   int64
	shared   int64
	wall     *stats.Reservoir // wall-clock latency samples, ns
	sim      sim.Time         // simulated time attributed to the tenant
	energyJ  float64          // simulated energy attributed to the tenant
}

// NewEngine starts an engine with cfg.Concurrency workers draining the
// admission queue. Callers must Drain it when done.
func NewEngine(r Runner, cfg Config) *Engine {
	if cfg.Concurrency < 1 {
		cfg.Concurrency = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 4 * cfg.Concurrency
	}
	e := &Engine{
		cfg:     cfg,
		runner:  r,
		queue:   make(chan *pending, cfg.QueueDepth),
		tenants: make(map[string]*tenantAccount),
	}
	e.all.wall = stats.NewReservoir()
	for i := 0; i < cfg.Concurrency; i++ {
		e.workers.Add(1)
		go func() {
			defer e.workers.Done()
			for p := range e.queue {
				e.serveOne(p)
			}
		}()
	}
	return e
}

// Do submits req and blocks until it is served — the closed-loop client
// primitive. The returned error is ErrDraining if admission is closed,
// otherwise it equals Response.Err (the response carries timing and
// accounting detail either way).
func (e *Engine) Do(req Request) (*Response, error) {
	p := &pending{req: req, submitted: time.Now(), done: make(chan struct{})}
	e.admit.Lock()
	if e.closed {
		e.admit.Unlock()
		return nil, ErrDraining
	}
	e.admitWG.Add(1)
	e.admit.Unlock()
	defer e.admitWG.Done()
	e.queue <- p
	<-p.done
	p.resp.Request = req
	return &p.resp, p.resp.Err
}

// serveOne executes one admitted request on the calling worker. A
// panicking backend is contained: the request fails with an error instead
// of crashing the serving process, and the worker keeps serving.
//
// Under Coalesce/Memoize a joined request does not hold its worker while
// the in-flight execution finishes — the wait moves to a goroutine and
// the slot immediately serves other queued cells, so batching frees
// capacity instead of head-of-line blocking distinct cells behind a hot
// one.
func (e *Engine) serveOne(p *pending) {
	start := time.Now()
	p.resp.Queued = start.Sub(p.submitted)
	exec := func() (v interface{}, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: %s under %s panicked: %v",
					p.req.Workload, p.req.Policy, r)
			}
		}()
		out, err := e.runner.RunCell(p.req.Workload, p.req.Policy)
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	if !e.cfg.Memoize && !e.cfg.Coalesce {
		v, err := exec()
		e.finish(p, v, err, false)
		return
	}
	key := p.req.key()
	c, leader := e.flight.begin(key)
	if !leader {
		select {
		case <-c.done:
			// Already complete (memoized hit): serve inline, no goroutine.
			e.finish(p, c.val, c.err, true)
		default:
			go func() {
				<-c.done
				e.finish(p, c.val, c.err, true)
			}()
		}
		return
	}
	v, err := exec()
	e.flight.complete(key, c, v, err, !e.cfg.Memoize)
	e.finish(p, v, err, false)
}

// finish completes a request: record the outcome, account it, and release
// the blocked Do.
func (e *Engine) finish(p *pending, v interface{}, err error, shared bool) {
	if err == nil {
		p.resp.Outcome = v.(Outcome)
	}
	p.resp.Err = err
	p.resp.Shared = shared
	p.resp.Latency = time.Since(p.submitted)
	e.account(&p.resp, p.req.Tenant)
	close(p.done)
}

func (e *Engine) account(r *Response, tenant string) {
	e.acct.Lock()
	defer e.acct.Unlock()
	t := e.tenants[tenant]
	if t == nil {
		t = &tenantAccount{wall: stats.NewReservoir()}
		e.tenants[tenant] = t
	}
	for _, a := range [...]*tenantAccount{t, &e.all} {
		a.requests++
		a.wall.Add(sim.Time(r.Latency.Nanoseconds()))
		if r.Err != nil {
			a.errors++
			continue
		}
		if r.Shared {
			a.shared++
		}
		a.sim += r.Outcome.Elapsed
		a.energyJ += r.Outcome.EnergyJ
	}
}

// Drain closes admission, waits for every in-flight request to be served,
// and stops the workers. It is idempotent; after it returns no request is
// outstanding and Do returns ErrDraining.
func (e *Engine) Drain() {
	e.admit.Lock()
	already := e.closed
	e.closed = true
	e.admit.Unlock()
	if !already {
		e.admitWG.Wait()
		close(e.queue)
	}
	e.workers.Wait()
}

// TenantSnapshot is one tenant's accounting totals (see Snapshot). Sim
// and EnergyJ are attributed demand: shared responses bill the full cell
// cost to each recipient.
type TenantSnapshot struct {
	Tenant   string
	Requests int64
	Errors   int64
	Shared   int64 // responses served by a coalesced/memoized execution
	Sim      sim.Time
	EnergyJ  float64
}

// Snapshot returns per-tenant accounting totals sorted by tenant name.
func (e *Engine) Snapshot() []TenantSnapshot {
	e.acct.Lock()
	defer e.acct.Unlock()
	out := make([]TenantSnapshot, 0, len(e.tenants))
	for name, t := range e.tenants {
		out = append(out, TenantSnapshot{
			Tenant:   name,
			Requests: t.requests,
			Errors:   t.errors,
			Shared:   t.shared,
			Sim:      t.sim,
			EnergyJ:  t.energyJ,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Report renders the per-tenant service metrics as a table: request and
// error counts, how many responses rode on a shared execution, wall-clock
// latency percentiles, and the simulated time/energy attributed to the
// tenant (shared responses bill the full cell cost to each recipient —
// see tenantAccount). Tenants sort lexically; a TOTAL row closes the
// table.
func (e *Engine) Report() *stats.Table {
	e.acct.Lock()
	defer e.acct.Unlock()
	names := make([]string, 0, len(e.tenants))
	for name := range e.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	t := stats.NewTable("conduit-serve: per-tenant service report",
		"tenant", "requests", "errors", "shared", "mean_ms", "p99_ms", "max_ms", "sim_ms", "energy_J")
	row := func(name string, a *tenantAccount) {
		t.AddRowf(name, a.requests, a.errors, a.shared,
			float64(a.wall.Mean())/1e6,
			float64(a.wall.P99())/1e6,
			float64(a.wall.Max())/1e6,
			float64(a.sim)/1e6,
			fmt.Sprintf("%.3g", a.energyJ))
	}
	for _, name := range names {
		row(name, e.tenants[name])
	}
	row("TOTAL", &e.all)
	return t
}
