package serve

import (
	"fmt"
	"sync"
)

// FlightGroup memoizes keyed computations with singleflight semantics:
// concurrent callers of one key share a single execution, successes are
// cached forever, failures are not cached (a later caller retries). The
// zero value is ready to use.
//
// It is shared machinery: the Experiments sweep harness uses Do to give
// figure sweeps their run-once-per-cell guarantee, and the serving Engine
// uses DoShared to batch identical concurrent requests onto one fork
// without caching across the lifetime of the service.
type FlightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  interface{}
	err  error
}

// Do executes fn once per key, memoizing the result: concurrent callers of
// one key share a single execution, and later callers are served from the
// cache. joined reports whether this call was served by an execution (or
// cached success) another caller started.
func (g *FlightGroup) Do(key string, fn func() (interface{}, error)) (v interface{}, joined bool, err error) {
	return g.do(key, fn, false)
}

// DoShared coalesces without the forever-cache: callers that arrive while
// an execution of key is in flight share its result, but once it completes
// the key is forgotten and the next caller executes afresh. joined reports
// whether this call rode on an execution another caller started.
func (g *FlightGroup) DoShared(key string, fn func() (interface{}, error)) (v interface{}, joined bool, err error) {
	return g.do(key, fn, true)
}

func (g *FlightGroup) do(key string, fn func() (interface{}, error), forget bool) (interface{}, bool, error) {
	c, leader := g.begin(key)
	if !leader {
		<-c.done
		return c.val, true, c.err
	}

	// A panicking fn must not poison the key: waiters blocked on c.done
	// would hang forever and every later caller would join them. Record
	// the panic as the call's error, unblock everyone, then re-panic so
	// the executing caller still fails loudly.
	finished := false
	defer func() {
		if !finished {
			g.complete(key, c, nil, fmt.Errorf("serve: flight call %q panicked", key), forget)
		}
	}()
	v, err := fn()
	finished = true
	g.complete(key, c, v, err, forget)
	return v, false, err
}

// begin registers key, returning its call and whether the caller is the
// leader. The leader must execute the work and call complete; joiners
// wait on call.done (on whatever goroutine suits them) and then read
// call.val / call.err.
func (g *FlightGroup) begin(key string) (call *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// complete records the leader's result and unblocks every joiner. With
// forget set (or on error) the key is removed so the next begin leads
// afresh; otherwise the result stays cached.
func (g *FlightGroup) complete(key string, c *flightCall, v interface{}, err error, forget bool) {
	c.val, c.err = v, err
	if forget || err != nil {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
	}
	close(c.done)
}
