// Package serve is the request-serving engine that turns the one-shot
// experiment harness into a multi-tenant service: it multiplexes many
// concurrent offload requests over a bounded pool of executing workers,
// coalesces identical in-flight requests onto one backend execution, keeps
// per-tenant latency/energy accounts, and drains gracefully on shutdown.
//
// The package is deliberately backend-agnostic — an Engine drives any
// Runner that can execute one (workload, policy) cell — so the same
// machinery serves the simulated Conduit SSD today and could front a
// different device model tomorrow. The root conduit package provides the
// typed facade (conduit.Server) that wires an Engine to pooled
// Deployment forks; cmd/conduit-serve adds a closed-loop load generator
// on top.
//
// Determinism contract: the simulator is a deterministic function of
// (workload, policy), so coalescing or memoizing cells is observationally
// identical to running each request on its own fork — responses are
// byte-identical to a serial loop. The engine's own accounting (wall-clock
// queueing and service latency) is operational telemetry and naturally
// varies run to run.
package serve
