// Package serve is the request-serving engine that turns the one-shot
// experiment harness into a multi-tenant service: it multiplexes many
// concurrent offload requests over a bounded pool of executing workers,
// coalesces identical in-flight requests onto one backend execution, keeps
// per-tenant latency/energy accounts, and drains gracefully on shutdown.
//
// Admission is two-mode. Do is closed-loop: it blocks for queue space and
// then for the response, so offered load self-throttles to service
// capacity. Submit is open-loop: it never blocks — a full admission queue
// sheds the request with ErrOverloaded, and a request whose Deadline
// expires while queued is dropped at dispatch with ErrDeadlineExceeded
// before the backend (and thus any pooled device fork) is touched. Shed
// and expired requests are accounted per tenant, and SLO attainment is
// measured against offered load, so an overloaded run reads as exactly
// what it is. Wall-clock latency is tracked in bounded, exactly-mergeable
// log-linear histograms (internal/histo) rather than full-sample
// reservoirs, because an open-loop source generates samples without
// bound.
//
// The package is deliberately backend-agnostic — an Engine drives any
// Runner that can execute one (workload, policy) cell — so the same
// machinery serves the simulated Conduit SSD today and could front a
// different device model tomorrow. The root conduit package provides the
// typed facade (conduit.Server) that wires an Engine to pooled
// Deployment forks; cmd/conduit-serve adds a closed-loop load generator
// on top.
//
// Determinism contract: the simulator is a deterministic function of
// (workload, policy), so coalescing or memoizing cells is observationally
// identical to running each request on its own fork — responses are
// byte-identical to a serial loop. The engine's own accounting (wall-clock
// queueing and service latency) is operational telemetry and naturally
// varies run to run.
package serve
