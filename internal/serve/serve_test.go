package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"conduit/internal/sim"
	"conduit/internal/trace"
)

// countingRunner counts executions per key and returns a deterministic
// outcome derived from the key.
type countingRunner struct {
	execs int64
	delay time.Duration
	fail  map[string]error
}

func (r *countingRunner) RunCell(workload, policy string, _ *trace.Span) (Outcome, error) {
	atomic.AddInt64(&r.execs, 1)
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	if err := r.fail[workload+"|"+policy]; err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Value:   workload + "/" + policy,
		Elapsed: sim.Time(simTimeOf(workload, policy)),
		EnergyJ: 0.5,
	}, nil
}

func simTimeOf(workload, policy string) (t int64) {
	for _, c := range []byte(workload + policy) {
		t += int64(c)
	}
	return t
}

func TestEngineServesAndAccounts(t *testing.T) {
	r := &countingRunner{}
	e := NewEngine(r, Config{Concurrency: 4})
	defer e.Drain()

	const perTenant = 5
	var wg sync.WaitGroup
	for _, tenant := range []string{"a", "b", "c"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string, i int) {
				defer wg.Done()
				resp, err := e.Do(Request{Tenant: tenant, Workload: fmt.Sprint("w", i), Policy: "Conduit"})
				if err != nil {
					t.Errorf("%s/%d: %v", tenant, i, err)
					return
				}
				want := fmt.Sprintf("w%d/Conduit", i)
				if resp.Outcome.Value != want {
					t.Errorf("%s/%d: got %v, want %v", tenant, i, resp.Outcome.Value, want)
				}
				if resp.Outcome.Elapsed <= 0 || resp.Latency <= 0 {
					t.Errorf("%s/%d: missing timing", tenant, i)
				}
			}(tenant, i)
		}
	}
	wg.Wait()

	snaps := e.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("got %d tenants, want 3", len(snaps))
	}
	for _, s := range snaps {
		if s.Requests != perTenant || s.Errors != 0 {
			t.Errorf("tenant %s: requests=%d errors=%d, want %d/0", s.Tenant, s.Requests, s.Errors, perTenant)
		}
		if s.EnergyJ != 0.5*perTenant {
			t.Errorf("tenant %s: energy %v, want %v", s.Tenant, s.EnergyJ, 0.5*perTenant)
		}
	}
	rep := e.Report().String()
	for _, want := range []string{"tenant", "TOTAL", "a", "b", "c"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestEngineMemoizeRunsEachCellOnce: with Memoize, sequential identical
// requests execute the backend exactly once; later responses are marked
// Shared.
func TestEngineMemoizeRunsEachCellOnce(t *testing.T) {
	r := &countingRunner{}
	e := NewEngine(r, Config{Concurrency: 2, Memoize: true})
	defer e.Drain()

	for i := 0; i < 4; i++ {
		resp, err := e.Do(Request{Tenant: "t", Workload: "w", Policy: "p"})
		if err != nil {
			t.Fatal(err)
		}
		if shared := resp.Shared; shared != (i > 0) {
			t.Errorf("request %d: shared=%v", i, shared)
		}
	}
	if n := atomic.LoadInt64(&r.execs); n != 1 {
		t.Fatalf("memoized cell executed %d times, want 1", n)
	}
	// A distinct cell still executes.
	if _, err := e.Do(Request{Tenant: "t", Workload: "w2", Policy: "p"}); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt64(&r.execs); n != 2 {
		t.Fatalf("distinct cell did not execute (execs=%d)", n)
	}
}

// TestEngineCoalesceBatchesConcurrentIdenticalRequests: concurrent
// same-cell requests share executions while one is in flight, but the
// result is not cached — a request issued after completion re-executes.
func TestEngineCoalesceBatchesConcurrentIdenticalRequests(t *testing.T) {
	r := &countingRunner{delay: 20 * time.Millisecond}
	e := NewEngine(r, Config{Concurrency: 8, Coalesce: true})
	defer e.Drain()

	const n = 8
	var wg sync.WaitGroup
	var shared int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := e.Do(Request{Tenant: "t", Workload: "w", Policy: "p"})
			if err != nil {
				t.Error(err)
				return
			}
			if resp.Shared {
				atomic.AddInt64(&shared, 1)
			}
		}()
	}
	wg.Wait()
	execs := atomic.LoadInt64(&r.execs)
	if execs+shared != n {
		t.Fatalf("conservation violated: execs=%d shared=%d, want sum %d", execs, shared, n)
	}
	if execs >= n {
		t.Fatalf("no batching: %d executions for %d concurrent identical requests", execs, n)
	}
	// Coalescing is not a cache: a later lone request executes afresh.
	before := atomic.LoadInt64(&r.execs)
	if _, err := e.Do(Request{Tenant: "t", Workload: "w", Policy: "p"}); err != nil {
		t.Fatal(err)
	}
	if after := atomic.LoadInt64(&r.execs); after != before+1 {
		t.Fatalf("post-completion request did not re-execute (execs %d -> %d)", before, after)
	}
}

func TestEngineDrainRejectsAndCompletes(t *testing.T) {
	r := &countingRunner{delay: 5 * time.Millisecond}
	e := NewEngine(r, Config{Concurrency: 2})

	const n = 10
	var ok int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := e.Do(Request{Tenant: "t", Workload: fmt.Sprint("w", i), Policy: "p"}); err == nil {
				atomic.AddInt64(&ok, 1)
			} else if !errors.Is(err, ErrDraining) {
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	e.Drain()
	e.Drain() // idempotent

	if _, err := e.Do(Request{Tenant: "t", Workload: "late", Policy: "p"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Do after Drain: err=%v, want ErrDraining", err)
	}
	// Every admitted request was actually executed and accounted.
	var accounted int64
	for _, s := range e.Snapshot() {
		accounted += s.Requests
	}
	if accounted != atomic.LoadInt64(&ok) {
		t.Fatalf("accounted %d requests, %d clients got responses", accounted, ok)
	}
}

// TestEngineContainsBackendPanics: a panicking backend fails the request
// (and any coalesced joiners) with an error instead of crashing the
// server; the worker keeps serving.
func TestEngineContainsBackendPanics(t *testing.T) {
	bomb := int64(1)
	r := RunnerFunc(func(workload, policy string, _ *trace.Span) (Outcome, error) {
		if workload == "bomb" && atomic.AddInt64(&bomb, -1) >= 0 {
			panic("backend exploded")
		}
		return Outcome{Value: workload}, nil
	})
	e := NewEngine(r, Config{Concurrency: 1, Coalesce: true})
	defer e.Drain()

	if _, err := e.Do(Request{Tenant: "t", Workload: "bomb", Policy: "p"}); err == nil ||
		!strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking cell: err=%v, want panic error", err)
	}
	resp, err := e.Do(Request{Tenant: "t", Workload: "fine", Policy: "p"})
	if err != nil || resp.Outcome.Value != "fine" {
		t.Fatalf("engine did not survive backend panic: resp=%v err=%v", resp, err)
	}
	snaps := e.Snapshot()
	if len(snaps) != 1 || snaps[0].Errors != 1 || snaps[0].Requests != 2 {
		t.Fatalf("accounting after panic: %+v", snaps)
	}
}

func TestEngineBackendErrorsAreReturnedAndCounted(t *testing.T) {
	boom := errors.New("boom")
	r := &countingRunner{fail: map[string]error{"w|bad": boom}}
	e := NewEngine(r, Config{Concurrency: 2})
	defer e.Drain()

	resp, err := e.Do(Request{Tenant: "t", Workload: "w", Policy: "bad"})
	if !errors.Is(err, boom) || !errors.Is(resp.Err, boom) {
		t.Fatalf("err=%v resp.Err=%v, want boom", err, resp.Err)
	}
	if _, err := e.Do(Request{Tenant: "t", Workload: "w", Policy: "good"}); err != nil {
		t.Fatal(err)
	}
	snaps := e.Snapshot()
	if len(snaps) != 1 || snaps[0].Errors != 1 || snaps[0].Requests != 2 {
		t.Fatalf("error accounting: %+v", snaps)
	}
}

// TestFlightGroupSemantics locks in the two sharing modes the engine and
// the experiment harness build on.
func TestFlightGroupSemantics(t *testing.T) {
	var g FlightGroup
	calls := 0
	fn := func() (interface{}, error) { calls++; return calls, nil }

	// Do memoizes successes forever.
	v, joined, err := g.Do("k", fn)
	if v != 1 || joined || err != nil {
		t.Fatalf("first Do: v=%v joined=%v err=%v", v, joined, err)
	}
	v, joined, err = g.Do("k", fn)
	if v != 1 || !joined || err != nil {
		t.Fatalf("second Do must hit cache: v=%v joined=%v err=%v", v, joined, err)
	}

	// DoShared forgets the key after completion.
	v, _, _ = g.DoShared("s", fn)
	v2, joined, _ := g.DoShared("s", fn)
	if v == v2 || joined {
		t.Fatalf("DoShared must re-execute after completion: %v then %v (joined=%v)", v, v2, joined)
	}

	// Failures are not cached.
	fails := 0
	failing := func() (interface{}, error) {
		fails++
		if fails == 1 {
			return nil, errors.New("transient")
		}
		return "ok", nil
	}
	if _, _, err := g.Do("f", failing); err == nil {
		t.Fatal("first call must fail")
	}
	if v, _, err := g.Do("f", failing); err != nil || v != "ok" {
		t.Fatalf("retry after failure: v=%v err=%v", v, err)
	}
}

// recoveryRunner returns a fixed Recovery on every execution, failing
// the cells listed in fail — with the Recovery still attached, the way
// the fault-tolerant dispatcher reports exhausted retries.
type recoveryRunner struct {
	rec  Recovery
	fail map[string]error
}

func (r *recoveryRunner) RunCell(workload, policy string, _ *trace.Span) (Outcome, error) {
	if err := r.fail[workload+"|"+policy]; err != nil {
		return Outcome{Recovery: r.rec}, err
	}
	return Outcome{Value: workload, Elapsed: 10, EnergyJ: 1, Recovery: r.rec}, nil
}

// TestEngineAccountsRecovery: per-request Recovery merges into the
// tenant and global accounts — for failed requests too, whose burnt
// retries are real work — and surfaces in the report columns.
func TestEngineAccountsRecovery(t *testing.T) {
	rec := Recovery{Attempts: 2, Retries: 1, Hedges: 1, HedgeWins: 1, Fallbacks: 1, BackoffSim: 100}
	r := &recoveryRunner{rec: rec, fail: map[string]error{"bad|p": errors.New("exhausted")}}
	e := NewEngine(r, Config{Concurrency: 1})
	defer e.Drain()
	for i := 0; i < 3; i++ {
		if _, err := e.Do(Request{Tenant: "a", Workload: "ok", Policy: "p"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Do(Request{Tenant: "a", Workload: "bad", Policy: "p"}); err == nil {
		t.Fatal("failing cell served")
	}
	total := e.Total()
	// 4 requests total, each carrying one copy of rec — including the
	// failed one.
	if total.Recovery.Retries != 4 || total.Recovery.Attempts != 8 {
		t.Errorf("total recovery = %+v, want 4 requests' worth of %+v", total.Recovery, rec)
	}
	if total.Recovery.BackoffSim != 400 {
		t.Errorf("BackoffSim = %v, want 400", total.Recovery.BackoffSim)
	}
	report := e.Report().String()
	for _, col := range []string{"retries", "hedges", "fallback"} {
		if !strings.Contains(report, col) {
			t.Errorf("report is missing the %q column:\n%s", col, report)
		}
	}
}
