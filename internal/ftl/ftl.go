package ftl

import (
	"fmt"

	"conduit/internal/config"
	"conduit/internal/nand"
	"conduit/internal/sim"
)

// LPN is a logical page number.
type LPN int32

// FTL owns the logical address space of the drive.
type FTL struct {
	cfg *config.SSD
	geo nand.Geometry
	arr *nand.Array

	// Page-granular tables, chunked copy-on-write so deployment forks
	// share unwritten chunks with the frozen master (see cow.go).
	l2p   cowTable[int32] // LPN -> flat physical page index, -1 if unmapped
	p2l   cowTable[LPN]   // physical page -> LPN, -1 if free/invalid
	valid cowTable[bool]

	// Per-plane allocation state.
	freeBlocks  [][]int // free block flat-indices per plane
	activeBlock []int   // current write block per plane, -1 if none
	nextPage    []int   // next page offset within the active block
	validCount  []int   // valid pages per block

	cache *mappingCache

	nextPlane int // round-robin cursor for unconstrained allocation

	gcRuns, migrations, mapMisses, mapHits int64
}

// New builds an FTL over arr.
func New(cfg *config.SSD, arr *nand.Array) *FTL {
	geo := arr.Geometry()
	planes := cfg.Channels * cfg.DiesPerChannel * cfg.PlanesPerDie
	f := &FTL{
		cfg:         cfg,
		geo:         geo,
		arr:         arr,
		l2p:         newCOWTable[int32](cfg.UsablePages(), -1),
		p2l:         newCOWTable[LPN](cfg.TotalPages(), -1),
		valid:       newCOWTable[bool](cfg.TotalPages(), false),
		freeBlocks:  make([][]int, planes),
		activeBlock: make([]int, planes),
		nextPage:    make([]int, planes),
		validCount:  make([]int, geo.TotalBlocks()),
		cache:       newMappingCache(int(float64(cfg.UsablePages()) * cfg.MappingCacheRatio)),
	}
	for p := 0; p < planes; p++ {
		f.activeBlock[p] = -1
	}
	// Seed per-plane free lists with every block.
	for b := 0; b < geo.TotalBlocks(); b++ {
		addr := geo.BlockAddrOf(b)
		plane := geo.PlaneIndex(addr)
		f.freeBlocks[plane] = append(f.freeBlocks[plane], b)
	}
	return f
}

// Planes reports the number of allocation planes.
func (f *FTL) Planes() int { return len(f.freeBlocks) }

// Capacity reports the logical capacity in pages.
func (f *FTL) Capacity() int { return f.l2p.Len() }

// IsMapped reports whether lpn currently has a physical page.
func (f *FTL) IsMapped(lpn LPN) bool {
	return f.l2p.At(f.checkLPN(lpn)) != -1
}

func (f *FTL) checkLPN(lpn LPN) int {
	if lpn < 0 || int(lpn) >= f.l2p.Len() {
		panic(fmt.Sprintf("ftl: LPN %d out of range [0,%d)", lpn, f.l2p.Len()))
	}
	return int(lpn)
}

// Lookup translates lpn and reports the translation latency: a cached
// mapping entry costs TL2PLookupDRAM; a miss fetches the entry from flash
// (TL2PLookupFlash) and installs it in the cache (DFTL demand caching).
func (f *FTL) Lookup(lpn LPN) (nand.Addr, sim.Time, error) {
	i := f.checkLPN(lpn)
	if f.l2p.At(i) == -1 {
		return nand.Addr{}, 0, fmt.Errorf("ftl: LPN %d is unmapped", lpn)
	}
	var lat sim.Time
	if f.cache.touch(lpn) {
		f.mapHits++
		lat = f.cfg.TL2PLookupDRAM
	} else {
		f.mapMisses++
		lat = f.cfg.TL2PLookupFlash
		f.cache.insert(lpn)
	}
	return f.geo.AddrOf(int(f.l2p.At(i))), lat, nil
}

// PhysAddr translates lpn without modelling lookup latency (internal and
// test use).
func (f *FTL) PhysAddr(lpn LPN) (nand.Addr, bool) {
	i := f.checkLPN(lpn)
	if f.l2p.At(i) == -1 {
		return nand.Addr{}, false
	}
	return f.geo.AddrOf(int(f.l2p.At(i))), true
}

// Write stores data for lpn on flash: it allocates a page (running GC if
// needed), programs it, remaps the LPN and invalidates any previous copy.
// plane >= 0 pins the allocation to that plane; pass -1 for round-robin.
// It returns the program completion time.
func (f *FTL) Write(now sim.Time, lpn LPN, data []byte, plane int) (sim.Time, error) {
	f.checkLPN(lpn)
	addr, done, err := f.allocate(now, plane)
	if err != nil {
		return 0, err
	}
	done = f.arr.Program(now, done, addr, data)
	f.commitMapping(lpn, addr)
	return done, nil
}

// WriteRun stores a group of logical pages contiguously in one physical
// block of one plane — the placement constraint for Flash-Cosmos AND
// operands (§4.4). All pages are programmed sequentially; the returned time
// is the last program's completion.
func (f *FTL) WriteRun(now sim.Time, lpns []LPN, data [][]byte, plane int) (sim.Time, error) {
	if len(lpns) != len(data) {
		return 0, fmt.Errorf("ftl: WriteRun got %d LPNs but %d pages", len(lpns), len(data))
	}
	if len(lpns) > f.cfg.PagesPerBlock {
		return 0, fmt.Errorf("ftl: run of %d pages exceeds block size %d", len(lpns), f.cfg.PagesPerBlock)
	}
	if plane < 0 {
		plane = f.nextPlane
		f.nextPlane = (f.nextPlane + 1) % f.Planes()
	}
	// Ensure the active block has room for the whole run; otherwise turn
	// over to a fresh block so the run cannot straddle blocks.
	done := now
	if f.activeBlock[plane] == -1 || f.nextPage[plane]+len(lpns) > f.cfg.PagesPerBlock {
		var err error
		done, err = f.openBlock(now, plane)
		if err != nil {
			return 0, err
		}
	}
	for i, lpn := range lpns {
		f.checkLPN(lpn)
		addr, adone, err := f.allocate(now, plane)
		if err != nil {
			return 0, err
		}
		if adone > done {
			done = adone
		}
		done = f.arr.Program(now, done, addr, data[i])
		f.commitMapping(lpn, addr)
	}
	return done, nil
}

// WriteBuffered programs the current page-buffer contents of plane into a
// fresh page of that plane and maps it to lpn. This is the commit path for
// in-flash computation results (§4.4): no channel transfer happens, only
// the program itself.
func (f *FTL) WriteBuffered(now, ready sim.Time, lpn LPN, plane int) (sim.Time, error) {
	f.checkLPN(lpn)
	addr, adone, err := f.allocate(now, plane)
	if err != nil {
		return 0, err
	}
	done, err := f.arr.FlushBuffer(now, maxTime(ready, adone), addr)
	if err != nil {
		return 0, err
	}
	f.commitMapping(lpn, addr)
	return done, nil
}

// Read fetches lpn's flash copy, including L2P lookup latency.
func (f *FTL) Read(now, ready sim.Time, lpn LPN) ([]byte, sim.Time, error) {
	addr, lookupLat, err := f.Lookup(lpn)
	if err != nil {
		return nil, 0, err
	}
	data, done, err := f.arr.ReadChecked(now, maxTime(ready, now+lookupLat), addr)
	if err != nil {
		return nil, 0, fmt.Errorf("ftl: LPN %d: %w", lpn, err)
	}
	return data, done, nil
}

// Invalidate drops lpn's mapping (e.g. when the latest copy now lives in
// DRAM under the lazy-coherence protocol and the flash copy is stale).
func (f *FTL) Invalidate(lpn LPN) {
	i := f.checkLPN(lpn)
	if f.l2p.At(i) == -1 {
		return
	}
	f.invalidatePhys(int(f.l2p.At(i)))
	f.l2p.Set(i, -1)
}

func (f *FTL) invalidatePhys(phys int) {
	if f.valid.At(phys) {
		f.valid.Set(phys, false)
		f.p2l.Set(phys, -1)
		f.validCount[phys/f.cfg.PagesPerBlock]--
	}
}

func (f *FTL) commitMapping(lpn LPN, addr nand.Addr) {
	i := f.checkLPN(lpn)
	if f.l2p.At(i) != -1 {
		f.invalidatePhys(int(f.l2p.At(i)))
	}
	phys := f.geo.PageIndex(addr)
	f.l2p.Set(i, int32(phys))
	f.p2l.Set(phys, lpn)
	f.valid.Set(phys, true)
	f.validCount[f.geo.BlockIndex(addr)]++
	f.cache.insert(lpn)
}

// allocate returns the next erased page to program in plane (or the
// round-robin plane for plane < 0), opening fresh blocks and running GC as
// needed. The returned time covers any GC work that had to complete first.
func (f *FTL) allocate(now sim.Time, plane int) (nand.Addr, sim.Time, error) {
	if plane < 0 {
		plane = f.nextPlane
		f.nextPlane = (f.nextPlane + 1) % f.Planes()
	}
	if plane >= f.Planes() {
		return nand.Addr{}, 0, fmt.Errorf("ftl: plane %d out of range", plane)
	}
	done := now
	if f.activeBlock[plane] == -1 || f.nextPage[plane] >= f.cfg.PagesPerBlock {
		var err error
		done, err = f.openBlock(now, plane)
		if err != nil {
			return nand.Addr{}, 0, err
		}
	}
	addr := f.geo.BlockAddrOf(f.activeBlock[plane])
	addr.Page = f.nextPage[plane]
	f.nextPage[plane]++
	return addr, done, nil
}

// reserveBlocks is the per-plane free-pool floor that triggers GC. At
// least one block stays free at all times so collection always has a
// migration target.
func (f *FTL) reserveBlocks() int {
	r := int(f.cfg.GCThreshold * float64(f.cfg.BlocksPerPlane))
	if r < 1 {
		r = 1
	}
	return r
}

// popFreeBlock removes and returns the least-erased free block of plane
// (wear-aware allocation).
func (f *FTL) popFreeBlock(plane int) int {
	best := 0
	for i, b := range f.freeBlocks[plane] {
		if f.arr.EraseCount(b) < f.arr.EraseCount(f.freeBlocks[plane][best]) {
			best = i
		}
	}
	blk := f.freeBlocks[plane][best]
	f.freeBlocks[plane] = append(f.freeBlocks[plane][:best], f.freeBlocks[plane][best+1:]...)
	return blk
}

// openBlock makes an active block with free pages available on plane.
// While the free pool is healthy it simply opens a fresh block; when the
// pool is at the reserve floor it garbage-collects instead, and the GC
// target block (partially filled with migrated pages) becomes the active
// block.
func (f *FTL) openBlock(now sim.Time, plane int) (sim.Time, error) {
	if len(f.freeBlocks[plane]) > f.reserveBlocks() {
		f.activeBlock[plane] = f.popFreeBlock(plane)
		f.nextPage[plane] = 0
		return now, nil
	}
	return f.collect(now, plane)
}

// collect runs greedy garbage collection on plane: it picks the block with
// the fewest valid pages (ties broken toward lower erase count for wear
// leveling), migrates its valid pages into a fresh target block, erases the
// victim, and installs the target as the plane's active block.
//
// collect never recurses into allocation: the migration target comes
// straight from the free pool, whose reserve floor guarantees one exists.
func (f *FTL) collect(now sim.Time, plane int) (sim.Time, error) {
	victim := -1
	for b := 0; b < f.cfg.BlocksPerPlane; b++ {
		blk := f.planeBlock(plane, b)
		if blk == f.activeBlock[plane] || f.isFree(plane, blk) {
			continue
		}
		if victim == -1 ||
			f.validCount[blk] < f.validCount[victim] ||
			(f.validCount[blk] == f.validCount[victim] &&
				f.arr.EraseCount(blk) < f.arr.EraseCount(victim)) {
			victim = blk
		}
	}
	if victim == -1 {
		return 0, fmt.Errorf("ftl: plane %d has no GC victim", plane)
	}
	if f.validCount[victim] >= f.cfg.PagesPerBlock {
		return 0, fmt.Errorf("ftl: plane %d full of live data (no reclaimable space)", plane)
	}
	if len(f.freeBlocks[plane]) == 0 {
		return 0, fmt.Errorf("ftl: plane %d has no free migration target", plane)
	}
	f.gcRuns++
	target := f.popFreeBlock(plane)
	f.activeBlock[plane] = target
	f.nextPage[plane] = 0

	done := now
	base := f.geo.BlockAddrOf(victim)
	targetBase := f.geo.BlockAddrOf(target)
	for p := 0; p < f.cfg.PagesPerBlock; p++ {
		src := base
		src.Page = p
		phys := f.geo.PageIndex(src)
		if !f.valid.At(phys) {
			continue
		}
		lpn := f.p2l.At(phys)
		data, rdone := f.arr.Read(now, done, src)
		dst := targetBase
		dst.Page = f.nextPage[plane]
		f.nextPage[plane]++
		done = f.arr.Program(now, rdone, dst, data)
		f.commitMapping(lpn, dst)
		f.migrations++
	}
	done = f.arr.Erase(done, base)
	f.freeBlocks[plane] = append(f.freeBlocks[plane], victim)
	return done, nil
}

func (f *FTL) planeBlock(plane, b int) int {
	return plane*f.cfg.BlocksPerPlane + b
}

func (f *FTL) isFree(plane, blk int) bool {
	for _, b := range f.freeBlocks[plane] {
		if b == blk {
			return true
		}
	}
	return false
}

// SameBlock reports whether all LPNs are mapped into one physical block
// (the IFP-AND placement precondition).
func (f *FTL) SameBlock(lpns []LPN) bool {
	addrs := make([]nand.Addr, 0, len(lpns))
	for _, lpn := range lpns {
		a, ok := f.PhysAddr(lpn)
		if !ok {
			return false
		}
		addrs = append(addrs, a)
	}
	return f.geo.SameBlock(addrs)
}

// SamePlane reports whether all LPNs are mapped into one plane
// (the IFP-OR / latch-arithmetic placement precondition).
func (f *FTL) SamePlane(lpns []LPN) bool {
	addrs := make([]nand.Addr, 0, len(lpns))
	for _, lpn := range lpns {
		a, ok := f.PhysAddr(lpn)
		if !ok {
			return false
		}
		addrs = append(addrs, a)
	}
	return f.geo.SamePlane(addrs)
}

// Migrate rewrites the given logical pages into a single block of one
// plane, reading each current copy and programming it into a fresh run.
// The runtime uses it when an offloading decision requires a placement the
// current layout violates; the cost function prices exactly this work.
func (f *FTL) Migrate(now sim.Time, lpns []LPN, plane int) (sim.Time, error) {
	data := make([][]byte, len(lpns))
	ready := now
	for i, lpn := range lpns {
		d, done, err := f.Read(now, now, lpn)
		if err != nil {
			return 0, err
		}
		data[i] = d
		if done > ready {
			ready = done
		}
	}
	done, err := f.WriteRun(ready, lpns, data, plane)
	if err != nil {
		return 0, err
	}
	f.migrations += int64(len(lpns))
	return done, nil
}

// Clone returns a deep copy of the FTL bound to arr (normally a Clone of
// the original's array): the L2P/P2L maps, per-plane allocation state, the
// mapping cache with its exact LRU order (cache order determines lookup
// latencies, so restoring it is required for run-for-run determinism), and
// the activity counters.
func (f *FTL) Clone(arr *nand.Array) *FTL {
	c := &FTL{
		cfg:         f.cfg,
		geo:         f.geo,
		arr:         arr,
		l2p:         f.l2p.Clone(),
		p2l:         f.p2l.Clone(),
		valid:       f.valid.Clone(),
		freeBlocks:  make([][]int, len(f.freeBlocks)),
		activeBlock: append([]int(nil), f.activeBlock...),
		nextPage:    append([]int(nil), f.nextPage...),
		validCount:  append([]int(nil), f.validCount...),
		cache:       f.cache.clone(),
		nextPlane:   f.nextPlane,
		gcRuns:      f.gcRuns,
		migrations:  f.migrations,
		mapMisses:   f.mapMisses,
		mapHits:     f.mapHits,
	}
	for p, blocks := range f.freeBlocks {
		c.freeBlocks[p] = append([]int(nil), blocks...)
	}
	return c
}

// Freeze releases ownership of the page-granular tables so subsequent
// Clones alias their chunks copy-on-write instead of copying them. Call
// it on a pristine master that will be cloned many times; Clone itself
// never mutates the parent, so a frozen FTL may be cloned from multiple
// goroutines concurrently.
func (f *FTL) Freeze() {
	f.l2p.Freeze()
	f.p2l.Freeze()
	f.valid.Freeze()
}

// Stats reports FTL activity counters.
func (f *FTL) Stats() map[string]int64 {
	return map[string]int64{
		"gc_runs":    f.gcRuns,
		"migrations": f.migrations,
		"map_hits":   f.mapHits,
		"map_misses": f.mapMisses,
	}
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// mappingCache is a fixed-capacity LRU of cached L2P entries (the DFTL
// cached mapping table). Nodes live in a flat slab indexed by int32 and
// linked by slab index rather than by pointer: cloning the cache — which
// Device.Clone does on every deployment fork — is then one slice copy
// plus one map copy instead of an allocation per cached entry, and the
// slab stays dense (freed slots are recycled through a free list
// threaded over next).
type mappingCache struct {
	capacity int
	index    map[LPN]int32 // lpn -> slab slot
	nodes    []cacheNode
	head     int32 // most recent, -1 if empty
	tail     int32 // least recent, -1 if empty
	free     int32 // free-slot list head (threaded through next), -1 if none
}

type cacheNode struct {
	lpn        LPN
	prev, next int32
}

func newMappingCache(capacity int) *mappingCache {
	if capacity < 1 {
		capacity = 1
	}
	return &mappingCache{
		capacity: capacity,
		index:    make(map[LPN]int32),
		head:     -1, tail: -1, free: -1,
	}
}

// clone copies the cache preserving the exact recency order.
func (c *mappingCache) clone() *mappingCache {
	nc := *c
	nc.index = make(map[LPN]int32, len(c.index))
	for k, v := range c.index {
		nc.index[k] = v
	}
	nc.nodes = append([]cacheNode(nil), c.nodes...)
	return &nc
}

// alloc returns a free slab slot, growing the slab if none is free.
func (c *mappingCache) alloc() int32 {
	if c.free != -1 {
		i := c.free
		c.free = c.nodes[i].next
		return i
	}
	c.nodes = append(c.nodes, cacheNode{})
	return int32(len(c.nodes) - 1)
}

// touch reports whether lpn is cached, refreshing its recency.
func (c *mappingCache) touch(lpn LPN) bool {
	i, ok := c.index[lpn]
	if !ok {
		return false
	}
	c.unlink(i)
	c.pushFront(i)
	return true
}

// insert caches lpn, evicting the least-recently-used entry if full.
func (c *mappingCache) insert(lpn LPN) {
	if c.touch(lpn) {
		return
	}
	if len(c.index) >= c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.index, c.nodes[lru].lpn)
		c.nodes[lru].next = c.free
		c.free = lru
	}
	i := c.alloc()
	c.nodes[i] = cacheNode{lpn: lpn}
	c.index[lpn] = i
	c.pushFront(i)
}

func (c *mappingCache) unlink(i int32) {
	n := &c.nodes[i]
	if n.prev != -1 {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next != -1 {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = -1, -1
}

func (c *mappingCache) pushFront(i int32) {
	n := &c.nodes[i]
	n.prev, n.next = -1, c.head
	if c.head != -1 {
		c.nodes[c.head].prev = i
	}
	c.head = i
	if c.tail == -1 {
		c.tail = i
	}
}
