package ftl

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"conduit/internal/config"
	"conduit/internal/energy"
	"conduit/internal/nand"
	"conduit/internal/sim"
)

func newTestFTL() (*FTL, *nand.Array, *config.SSD) {
	cfg := config.TestScale()
	arr := nand.NewArray(&cfg.SSD, energy.NewAccount())
	return New(&cfg.SSD, arr), arr, &cfg.SSD
}

func page(cfg *config.SSD, b byte) []byte {
	p := make([]byte, cfg.PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestWriteReadRoundTrip(t *testing.T) {
	f, _, cfg := newTestFTL()
	data := page(cfg, 0x5A)
	done, err := f.Write(0, 3, data, -1)
	if err != nil {
		t.Fatal(err)
	}
	got, rdone, err := f.Read(done, done, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back different data")
	}
	if rdone <= done {
		t.Fatal("read must consume time")
	}
}

func TestOverwriteRemapsAndInvalidates(t *testing.T) {
	f, _, cfg := newTestFTL()
	if _, err := f.Write(0, 1, page(cfg, 1), -1); err != nil {
		t.Fatal(err)
	}
	first, _ := f.PhysAddr(1)
	if _, err := f.Write(0, 1, page(cfg, 2), -1); err != nil {
		t.Fatal(err)
	}
	second, _ := f.PhysAddr(1)
	if first == second {
		t.Fatal("overwrite must map to a new physical page (no in-place update)")
	}
	got, _, _ := f.Read(0, 0, 1)
	if got[0] != 2 {
		t.Fatal("read did not return latest copy")
	}
}

func TestUnmappedRead(t *testing.T) {
	f, _, _ := newTestFTL()
	if _, _, err := f.Read(0, 0, 9); err == nil {
		t.Fatal("reading unmapped LPN should fail")
	}
	if f.IsMapped(9) {
		t.Fatal("LPN 9 should be unmapped")
	}
}

func TestLookupLatencyCacheHitVsMiss(t *testing.T) {
	f, _, cfg := newTestFTL()
	if _, err := f.Write(0, 0, page(cfg, 1), -1); err != nil {
		t.Fatal(err)
	}
	// The write warmed the cache, so the first lookup hits.
	_, lat, err := f.Lookup(0)
	if err != nil {
		t.Fatal(err)
	}
	if lat != cfg.TL2PLookupDRAM {
		t.Fatalf("warm lookup = %v, want DRAM latency %v", lat, cfg.TL2PLookupDRAM)
	}
	// Flood the cache with other entries to evict LPN 0.
	capEntries := int(float64(cfg.UsablePages()) * cfg.MappingCacheRatio)
	for i := 1; i <= capEntries+1; i++ {
		f.cache.insert(LPN(i))
	}
	_, lat, err = f.Lookup(0)
	if err != nil {
		t.Fatal(err)
	}
	if lat != cfg.TL2PLookupFlash {
		t.Fatalf("cold lookup = %v, want flash latency %v", lat, cfg.TL2PLookupFlash)
	}
	st := f.Stats()
	if st["map_hits"] < 1 || st["map_misses"] < 1 {
		t.Fatalf("stats = %v", st)
	}
}

func TestWriteRunPlacesSameBlock(t *testing.T) {
	f, _, cfg := newTestFTL()
	lpns := []LPN{10, 11, 12, 13}
	data := make([][]byte, len(lpns))
	for i := range data {
		data[i] = page(cfg, byte(i))
	}
	if _, err := f.WriteRun(0, lpns, data, 2); err != nil {
		t.Fatal(err)
	}
	if !f.SameBlock(lpns) {
		t.Fatal("WriteRun must co-locate pages in one block")
	}
	if !f.SamePlane(lpns) {
		t.Fatal("WriteRun pages must share a plane")
	}
	a, _ := f.PhysAddr(lpns[0])
	if pl := f.Planes(); pl > 0 {
		geo := nand.NewGeometry(cfg)
		if geo.PlaneIndex(a) != 2 {
			t.Fatalf("run landed on plane %d, want 2", geo.PlaneIndex(a))
		}
	}
}

func TestWriteRunNeverStraddlesBlocks(t *testing.T) {
	f, _, cfg := newTestFTL()
	// Fill most of a block on plane 0, then request a run that would not
	// fit in the remainder.
	fillCount := cfg.PagesPerBlock - 2
	for i := 0; i < fillCount; i++ {
		if _, err := f.Write(0, LPN(i), page(cfg, 1), 0); err != nil {
			t.Fatal(err)
		}
	}
	lpns := []LPN{100, 101, 102, 103}
	data := [][]byte{page(cfg, 1), page(cfg, 2), page(cfg, 3), page(cfg, 4)}
	if _, err := f.WriteRun(0, lpns, data, 0); err != nil {
		t.Fatal(err)
	}
	if !f.SameBlock(lpns) {
		t.Fatal("run straddled a block boundary")
	}
	// A run larger than a block is impossible.
	big := make([]LPN, cfg.PagesPerBlock+1)
	bigData := make([][]byte, len(big))
	for i := range big {
		big[i] = LPN(200 + i)
		bigData[i] = page(cfg, 0)
	}
	if _, err := f.WriteRun(0, big, bigData, 0); err == nil {
		t.Fatal("run larger than a block should fail")
	}
}

func TestGarbageCollectionReclaimsSpace(t *testing.T) {
	f, arr, cfg := newTestFTL()
	// Keep overwriting a small working set on one plane until GC must run
	// to keep the plane writable. Logical data must survive.
	workingSet := 8
	writes := cfg.BlocksPerPlane*cfg.PagesPerBlock + 50
	expect := map[LPN]byte{}
	var now sim.Time
	for w := 0; w < writes; w++ {
		lpn := LPN(w % workingSet)
		done, err := f.Write(now, lpn, page(cfg, byte(w)), 0)
		if err != nil {
			t.Fatalf("write %d: %v", w, err)
		}
		now = done
		expect[lpn] = byte(w)
	}
	if f.Stats()["gc_runs"] == 0 {
		t.Fatal("GC never ran despite write pressure")
	}
	// Verify the latest contents survived GC relocation.
	for lpn, want := range expect {
		got, _, err := f.Read(now, now, lpn)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want {
			t.Fatalf("LPN %d = %d after GC, want %d", lpn, got[0], want)
		}
	}
	// Some blocks must have been erased more than once.
	erased := 0
	for b := 0; b < cfg.BlocksPerPlane; b++ {
		if arr.EraseCount(b) > 0 {
			erased++
		}
	}
	if erased == 0 {
		t.Fatal("no block was ever erased")
	}
}

func TestWearLevelingPrefersLeastErased(t *testing.T) {
	f, arr, cfg := newTestFTL()
	// Hammer one plane long enough for several GC cycles.
	writes := 3 * cfg.BlocksPerPlane * cfg.PagesPerBlock
	var now sim.Time
	for w := 0; w < writes; w++ {
		done, err := f.Write(now, LPN(w%4), page(cfg, byte(w)), 0)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	// Wear must be spread: max/min erase spread across the plane's blocks
	// should stay small because allocation prefers least-erased blocks.
	minE, maxE := 1<<30, 0
	for b := 0; b < cfg.BlocksPerPlane; b++ {
		e := arr.EraseCount(b)
		if e < minE {
			minE = e
		}
		if e > maxE {
			maxE = e
		}
	}
	if maxE-minE > 3 {
		t.Fatalf("wear spread too high: min %d max %d", minE, maxE)
	}
}

func TestMigrateColocatesScatteredPages(t *testing.T) {
	f, _, cfg := newTestFTL()
	lpns := []LPN{20, 21, 22}
	// Scatter across planes.
	for i, lpn := range lpns {
		if _, err := f.Write(0, lpn, page(cfg, byte(10+i)), i%f.Planes()); err != nil {
			t.Fatal(err)
		}
	}
	if f.SameBlock(lpns) {
		t.Fatal("fixture should start scattered")
	}
	done, err := f.Migrate(0, lpns, 1)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("migration must take time")
	}
	if !f.SameBlock(lpns) {
		t.Fatal("Migrate must co-locate the pages")
	}
	for i, lpn := range lpns {
		got, _, _ := f.Read(done, done, lpn)
		if got[0] != byte(10+i) {
			t.Fatalf("LPN %d lost its data in migration", lpn)
		}
	}
}

func TestInvalidateUnmaps(t *testing.T) {
	f, _, cfg := newTestFTL()
	if _, err := f.Write(0, 5, page(cfg, 1), -1); err != nil {
		t.Fatal(err)
	}
	f.Invalidate(5)
	if f.IsMapped(5) {
		t.Fatal("invalidate should unmap")
	}
	f.Invalidate(5) // idempotent
}

// Property: under random writes and overwrites, the L2P map stays
// injective (no two LPNs share a physical page) and reads always return
// the last written value.
func TestL2PInjectivityUnderWriteStorm(t *testing.T) {
	cfg := config.TestScale()
	f := func(seed uint64) bool {
		arr := nand.NewArray(&cfg.SSD, energy.NewAccount())
		ftl := New(&cfg.SSD, arr)
		r := sim.NewRNG(seed)
		latest := map[LPN]byte{}
		var now sim.Time
		for w := 0; w < 400; w++ {
			lpn := LPN(r.Intn(16))
			val := byte(r.Intn(256))
			done, err := ftl.Write(now, lpn, page(&cfg.SSD, val), r.Intn(ftl.Planes()+1)-1)
			if err != nil {
				return false
			}
			now = done
			latest[lpn] = val
		}
		// Injectivity.
		seen := map[string]bool{}
		for lpn := range latest {
			a, ok := ftl.PhysAddr(lpn)
			if !ok {
				return false
			}
			k := fmt.Sprint(a)
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		// Durability.
		for lpn, val := range latest {
			got, _, err := ftl.Read(now, now, lpn)
			if err != nil || got[0] != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDriveFullError(t *testing.T) {
	cfg := config.TestScale()
	// Tiny geometry so the plane fills fast even after GC.
	cfg.SSD.BlocksPerPlane = 2
	cfg.SSD.PagesPerBlock = 4
	arr := nand.NewArray(&cfg.SSD, energy.NewAccount())
	f := New(&cfg.SSD, arr)
	var now sim.Time
	var sawErr bool
	for w := 0; w < 64; w++ {
		done, err := f.Write(now, LPN(w), page(&cfg.SSD, 1), 0) // unique LPNs: nothing to reclaim
		if err != nil {
			sawErr = true
			break
		}
		now = done
	}
	if !sawErr {
		t.Fatal("filling a plane with live data must eventually error, not wedge")
	}
}
