package ftl

// The FTL's page-granular tables (L2P, P2L, valid bitmap) are the bulk
// of a device clone: several megabytes each at default geometry, copied
// on every deployment fork. cowTable stores them as fixed-size chunks
// with per-chunk ownership so a clone can alias unowned chunks instead
// of copying them. A chunk is written in place only while owned; the
// first write to an unowned chunk copies it first (copy-on-write), so
// aliased chunks are immutable and clones may run concurrently.
//
// Freeze releases ownership of every chunk. Freezing the pristine
// post-deploy master makes each subsequent fork O(chunks) pointer
// copies; forks then pay only for the chunks they actually write,
// which is proportional to the program footprint rather than the
// drive capacity.

const (
	cowShift = 14 // 16K entries per chunk
	cowChunk = 1 << cowShift
	cowMask  = cowChunk - 1
)

// cowTable is a chunked copy-on-write array of n elements.
type cowTable[T comparable] struct {
	n      int
	chunks [][]T
	owned  []bool // owned[c]: chunks[c] is exclusively ours, writable in place
}

func newCOWTable[T comparable](n int, fill T) cowTable[T] {
	nc := (n + cowChunk - 1) / cowChunk
	t := cowTable[T]{n: n, chunks: make([][]T, nc), owned: make([]bool, nc)}
	var zero T
	for c := range t.chunks {
		size := cowChunk
		if c == nc-1 {
			size = n - c*cowChunk
		}
		ch := make([]T, size)
		if fill != zero {
			for i := range ch {
				ch[i] = fill
			}
		}
		t.chunks[c] = ch
		t.owned[c] = true
	}
	return t
}

// Len reports the element count.
func (t *cowTable[T]) Len() int { return t.n }

// At reads element i.
func (t *cowTable[T]) At(i int) T { return t.chunks[i>>cowShift][i&cowMask] }

// Set writes element i, copying the containing chunk first if it is
// shared with another table.
func (t *cowTable[T]) Set(i int, v T) {
	c := i >> cowShift
	if !t.owned[c] {
		t.chunks[c] = append([]T(nil), t.chunks[c]...)
		t.owned[c] = true
	}
	t.chunks[c][i&cowMask] = v
}

// Freeze releases ownership of every chunk: the table keeps its
// contents but the next write to any chunk copies it first. A frozen
// table clones in O(chunks) and is safe to clone from multiple
// goroutines concurrently, since Clone never mutates the parent.
func (t *cowTable[T]) Freeze() {
	for c := range t.owned {
		t.owned[c] = false
	}
}

// Clone returns an independent table: chunks the parent owns are deep
// copied (the parent may still write them in place); unowned chunks are
// aliased and protected by copy-on-write on both sides.
func (t *cowTable[T]) Clone() cowTable[T] {
	nt := cowTable[T]{
		n:      t.n,
		chunks: append([][]T(nil), t.chunks...),
		owned:  make([]bool, len(t.owned)),
	}
	for c, own := range t.owned {
		if own {
			nt.chunks[c] = append([]T(nil), t.chunks[c]...)
			nt.owned[c] = true
		}
	}
	return nt
}
