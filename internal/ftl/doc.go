// Package ftl implements the flash translation layer of the simulated SSD:
// page-level logical-to-physical (L2P) mapping with a DFTL-style demand
// mapping cache, greedy garbage collection, wear-aware block allocation,
// and the NDP-aware placement the paper's runtime relies on (§4.4) — e.g.
// co-locating the operands of an in-flash AND in one physical block.
package ftl
