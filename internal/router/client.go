package router

import (
	"fmt"
	"net"
	"sync"

	"conduit/internal/wire"
)

// A Client is one target connection: it multiplexes concurrent
// requests over a single framed TCP stream, correlating out-of-order
// responses by ID. A transport or protocol error is sticky — every
// pending and future call fails, and the router fails the target over.
type Client struct {
	addr  string
	conn  net.Conn
	hello wire.Hello

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan wire.Frame
	err     error
	closed  bool
}

// Dial connects to a target and consumes its Hello frame.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient wraps an established connection (the target side speaks
// first with Hello) and starts the response dispatcher.
func NewClient(conn net.Conn) (*Client, error) {
	f, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("router: reading hello: %w", err)
	}
	hello, ok := f.(wire.Hello)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("router: target opened with %T, want Hello", f)
	}
	c := &Client{
		addr:    conn.RemoteAddr().String(),
		conn:    conn,
		hello:   hello,
		pending: make(map[uint64]chan wire.Frame),
	}
	go c.readLoop()
	return c, nil
}

// Name is the target's self-reported name from Hello.
func (c *Client) Name() string { return c.hello.Target }

// Addr is the remote address of the connection.
func (c *Client) Addr() string { return c.addr }

// Workloads lists the workloads the target's Hello advertised.
func (c *Client) Workloads() []string { return append([]string(nil), c.hello.Workloads...) }

// Shards is the target's advertised shard count per workload.
func (c *Client) Shards() int64 { return c.hello.Shards }

// Err returns the sticky transport error, or nil while healthy.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the connection down; pending calls fail with "closed".
func (c *Client) Close() { c.fail(fmt.Errorf("router: client closed")) }

func (c *Client) readLoop() {
	for {
		f, err := wire.ReadFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("router: target %s: %w", c.hello.Target, err))
			return
		}
		var id uint64
		switch fr := f.(type) {
		case wire.Response:
			id = fr.ID
		case wire.Snapshot:
			id = fr.ID
		case wire.DrainAck:
			id = fr.ID
		case wire.Metrics:
			id = fr.ID
		default:
			c.fail(fmt.Errorf("router: target %s sent unexpected %T", c.hello.Target, f))
			return
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- f // buffered; never blocks the dispatcher
		}
	}
}

// fail makes err sticky, closes every pending channel (closure — not a
// frame — is the "target gone" signal), and closes the socket.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	pending := c.pending
	c.pending = make(map[uint64]chan wire.Frame)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
	c.conn.Close()
}

// start registers a fresh ID, stamps it into the frame via stamp, and
// writes the frame. The returned channel yields exactly one reply frame
// — or closes if the connection dies first.
func (c *Client) start(stamp func(id uint64) wire.Frame) (<-chan wire.Frame, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan wire.Frame, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := wire.WriteFrame(c.conn, stamp(id))
	c.wmu.Unlock()
	if err != nil {
		err = fmt.Errorf("router: target %s: %w", c.hello.Target, err)
		c.fail(err)
		return nil, err
	}
	return ch, nil
}

// Submit sends a request (its ID field is assigned here) and returns
// the channel its response will arrive on.
func (c *Client) Submit(req wire.Request) (<-chan wire.Frame, error) {
	return c.start(func(id uint64) wire.Frame { req.ID = id; return req })
}

// AwaitResponse resolves a Submit channel into the response, turning a
// closed channel into the client's sticky error.
func (c *Client) AwaitResponse(ch <-chan wire.Frame) (wire.Response, error) {
	f, ok := <-ch
	if !ok {
		return wire.Response{}, c.Err()
	}
	resp, ok := f.(wire.Response)
	if !ok {
		err := fmt.Errorf("router: target %s answered a request with %T", c.hello.Target, f)
		c.fail(err)
		return wire.Response{}, err
	}
	return resp, nil
}

// Do is Submit + AwaitResponse.
func (c *Client) Do(req wire.Request) (wire.Response, error) {
	ch, err := c.Submit(req)
	if err != nil {
		return wire.Response{}, err
	}
	return c.AwaitResponse(ch)
}

// Snapshot fetches the target's current accounting snapshot.
func (c *Client) Snapshot() (wire.Snapshot, error) {
	ch, err := c.start(func(id uint64) wire.Frame { return wire.SnapshotReq{ID: id} })
	if err != nil {
		return wire.Snapshot{}, err
	}
	f, ok := <-ch
	if !ok {
		return wire.Snapshot{}, c.Err()
	}
	snap, ok := f.(wire.Snapshot)
	if !ok {
		err := fmt.Errorf("router: target %s answered SnapshotReq with %T", c.hello.Target, f)
		c.fail(err)
		return wire.Snapshot{}, err
	}
	return snap, nil
}

// Metrics fetches the target's current metrics snapshot.
func (c *Client) Metrics() (wire.Metrics, error) {
	ch, err := c.start(func(id uint64) wire.Frame { return wire.MetricsReq{ID: id} })
	if err != nil {
		return wire.Metrics{}, err
	}
	f, ok := <-ch
	if !ok {
		return wire.Metrics{}, c.Err()
	}
	m, ok := f.(wire.Metrics)
	if !ok {
		err := fmt.Errorf("router: target %s answered MetricsReq with %T", c.hello.Target, f)
		c.fail(err)
		return wire.Metrics{}, err
	}
	return m, nil
}

// Drain asks the target to drain and waits for its acknowledgement
// with the final pool counters. The connection is dead afterwards.
func (c *Client) Drain() (wire.DrainAck, error) {
	ch, err := c.start(func(id uint64) wire.Frame { return wire.Drain{ID: id} })
	if err != nil {
		return wire.DrainAck{}, err
	}
	f, ok := <-ch
	if !ok {
		return wire.DrainAck{}, c.Err()
	}
	ack, ok := f.(wire.DrainAck)
	if !ok {
		err := fmt.Errorf("router: target %s answered Drain with %T", c.hello.Target, f)
		c.fail(err)
		return wire.DrainAck{}, err
	}
	c.fail(fmt.Errorf("router: target %s drained", c.hello.Target))
	return ack, nil
}
