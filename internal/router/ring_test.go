package router

import (
	"reflect"
	"testing"

	"conduit/internal/wire"
)

func TestRingOrderCoversEveryTargetOnce(t *testing.T) {
	targets := []string{"t0", "t1", "t2", "t3"}
	r, err := NewRing(targets, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"AES", "jacobi-1d", "heat-3d", "", "LLM Training"} {
		order := r.Order(key)
		if len(order) != len(targets) {
			t.Fatalf("Order(%q) = %v, want every target exactly once", key, order)
		}
		seen := map[int]bool{}
		for _, idx := range order {
			if idx < 0 || idx >= len(targets) || seen[idx] {
				t.Fatalf("Order(%q) = %v: bad or repeated index %d", key, order, idx)
			}
			seen[idx] = true
		}
	}
}

func TestRingIsDeterministicAndOrderIndependent(t *testing.T) {
	// Placement is a pure function of (target set, key): shuffling the
	// registration order or rebuilding the ring must not move any
	// workload's home target.
	a, err := NewRing([]string{"t0", "t1", "t2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"t2", "t0", "t1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"AES", "XOR Filter", "jacobi-1d", "heat-3d"} {
		got := b.Targets()[b.Home(key)]
		want := a.Targets()[a.Home(key)]
		if got != want {
			t.Errorf("Home(%q) depends on registration order: %s vs %s", key, got, want)
		}
		if !reflect.DeepEqual(a.Order(key), a.Order(key)) {
			t.Errorf("Order(%q) is not stable across calls", key)
		}
	}
}

func TestRingKeysSurviveTargetRemoval(t *testing.T) {
	// The point of consistent hashing: dropping one target of four moves
	// only the keys it owned, never keys homed elsewhere.
	full, err := NewRing([]string{"t0", "t1", "t2", "t3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"t0", "t1", "t2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"AES", "XOR Filter", "jacobi-1d", "heat-3d", "LlaMA2 Inference", "LLM Training"}
	for _, key := range keys {
		home := full.Targets()[full.Home(key)]
		if home == "t3" {
			continue // owned by the removed target; allowed to move
		}
		if got := reduced.Targets()[reduced.Home(key)]; got != home {
			t.Errorf("removing t3 moved %q from %s to %s", key, home, got)
		}
	}
}

func TestNewRingRejectsBadFleets(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewRing([]string{"t0", "t0"}, 0); err == nil {
		t.Error("duplicate target name accepted")
	}
}

func TestMergeTenantsSumsAndSorts(t *testing.T) {
	a := []wire.TenantRow{
		{Tenant: "b", Requests: 2, Attained: 2, SimNS: 30, EnergyJ: 1.5, Recovery: wire.Recovery{Attempts: 2}},
		{Tenant: "a", Requests: 1, Attained: 1, SimNS: 10},
	}
	b := []wire.TenantRow{
		{Tenant: "b", Requests: 3, Errors: 1, Shed: 1, Attained: 1, SimNS: 20, EnergyJ: 0.5, Recovery: wire.Recovery{Attempts: 3, Retries: 1}},
		{Tenant: "c", Requests: 4, Attained: 4, SimNS: 40},
	}
	got := MergeTenants(a, b)
	want := []wire.TenantRow{
		{Tenant: "a", Requests: 1, Attained: 1, SimNS: 10},
		{Tenant: "b", Requests: 5, Errors: 1, Shed: 1, Attained: 3, SimNS: 50, EnergyJ: 2, Recovery: wire.Recovery{Attempts: 5, Retries: 1}},
		{Tenant: "c", Requests: 4, Attained: 4, SimNS: 40},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeTenants:\ngot  %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(MergeTenants(b, a), want) {
		t.Error("MergeTenants is not commutative")
	}
}
