package router

import (
	"fmt"
	"sort"
)

// defaultVnodes is the virtual-node fan-out per target; 64 keeps the
// keyspace split within a few percent of even for small fleets while
// the ring stays tiny.
const defaultVnodes = 64

// Ring is a consistent-hash ring over target names. It is immutable
// after construction: placement is a pure function of (target set,
// workload), so every router over the same fleet routes identically.
type Ring struct {
	targets []string
	entries []ringEntry
}

type ringEntry struct {
	hash   uint64
	target int // index into targets
}

// NewRing builds the ring. vnodes < 1 selects defaultVnodes. Target
// names must be distinct — placement hashes them, and two targets with
// one name would shadow each other.
func NewRing(targets []string, vnodes int) (*Ring, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("router: ring needs at least one target")
	}
	if vnodes < 1 {
		vnodes = defaultVnodes
	}
	seen := make(map[string]bool, len(targets))
	r := &Ring{
		targets: append([]string(nil), targets...),
		entries: make([]ringEntry, 0, len(targets)*vnodes),
	}
	for i, name := range targets {
		if seen[name] {
			return nil, fmt.Errorf("router: duplicate target name %q", name)
		}
		seen[name] = true
		for v := 0; v < vnodes; v++ {
			r.entries = append(r.entries, ringEntry{
				hash:   fnv64(fmt.Sprintf("%s|%d", name, v)),
				target: i,
			})
		}
	}
	sort.Slice(r.entries, func(a, b int) bool {
		if r.entries[a].hash != r.entries[b].hash {
			return r.entries[a].hash < r.entries[b].hash
		}
		return r.entries[a].target < r.entries[b].target
	})
	return r, nil
}

// Targets returns the ring's target names in registration order.
func (r *Ring) Targets() []string { return append([]string(nil), r.targets...) }

// Order returns the preference order for a key: the home target (first
// virtual node at or clockwise of the key's hash), then each distinct
// successor. Every target appears exactly once, so Order doubles as the
// failover walk.
func (r *Ring) Order(key string) []int {
	h := fnv64(key)
	start := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].hash >= h })
	order := make([]int, 0, len(r.targets))
	seen := make(map[int]bool, len(r.targets))
	for i := 0; i < len(r.entries) && len(order) < len(r.targets); i++ {
		e := r.entries[(start+i)%len(r.entries)]
		if !seen[e.target] {
			seen[e.target] = true
			order = append(order, e.target)
		}
	}
	return order
}

// Home returns the home target index for a key: Order(key)[0].
func (r *Ring) Home(key string) int { return r.Order(key)[0] }

// fnv64 is FNV-1a, inlined so ring placement is self-contained and
// frozen: a stdlib hash change could silently re-place every workload.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
